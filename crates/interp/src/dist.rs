//! Distributed scattered interpolation with the paper's five phases.

use std::time::Instant;

use claire_grid::workspace::{WsCat, REAL_POOL};
use claire_grid::{ghost, Real, ScalarField, VectorField};
use claire_mpi::{AlltoallMethod, Comm, CommCat};
use claire_par::timing::{self, Kernel};
use claire_par::{par_map_collect, par_map_collect_work, par_parts, SharedSlice};

use crate::kernel::{interp_ghost, to_index, IpOrder};

/// Wall/modeled seconds of the five phases of Table 2.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Ghost-layer exchange of the interpolated field(s).
    pub ghost_comm: f64,
    /// Returning interpolated values to the requesting rank.
    pub interp_comm: f64,
    /// Shipping query points to their owner rank.
    pub scatter_comm: f64,
    /// Local stencil evaluation.
    pub interp_kernel: f64,
    /// Building the per-destination MPI buffers (thrust::copy_if analogue).
    pub scatter_mpi_buffer: f64,
}

impl PhaseTimes {
    /// Sum of all phases.
    pub fn total(&self) -> f64 {
        self.ghost_comm
            + self.interp_comm
            + self.scatter_comm
            + self.interp_kernel
            + self.scatter_mpi_buffer
    }

    /// (label, value) pairs in the paper's Table 2 row order.
    pub fn rows(&self) -> [(&'static str, f64); 5] {
        [
            ("ghost_comm", self.ghost_comm),
            ("interp_comm", self.interp_comm),
            ("scatter_comm", self.scatter_comm),
            ("interp_kernel", self.interp_kernel),
            ("scatter_mpi_buffer", self.scatter_mpi_buffer),
        ]
    }
}

/// Accumulated phase statistics (wall-clock and modeled).
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseStats {
    /// Measured wall time on this host.
    pub wall: PhaseTimes,
    /// Modeled time on the virtual V100 cluster.
    pub modeled: PhaseTimes,
}

/// Distributed scattered interpolator.
///
/// Routes each query point to the rank owning its x1 plane, evaluates the
/// stencil there using ghost layers for slab-boundary support, and returns
/// values to the requester — the workflow of paper §3.1. Accumulates
/// [`PhaseStats`] across calls for Table 2 reporting.
pub struct Interpolator {
    /// Stencil order (GPU-TXTLIN / GPU-TXTLAG).
    pub order: IpOrder,
    /// Accumulated phase timings.
    pub stats: PhaseStats,
}

impl Interpolator {
    /// New interpolator with zeroed stats.
    pub fn new(order: IpOrder) -> Interpolator {
        Interpolator { order, stats: PhaseStats::default() }
    }

    /// Zero the accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats = PhaseStats::default();
    }

    /// Interpolate several fields (sharing one layout) at the same query
    /// points; returns one value vector per field, in query order.
    ///
    /// Collective: every rank passes its own queries.
    pub fn interp_many(
        &mut self,
        fields: &[&ScalarField],
        queries: &[[Real; 3]],
        comm: &mut Comm,
    ) -> Vec<Vec<Real>> {
        let mut out: Vec<Vec<Real>> =
            (0..fields.len()).map(|_| vec![0.0 as Real; queries.len()]).collect();
        let mut slices: Vec<&mut [Real]> = out.iter_mut().map(|v| v.as_mut_slice()).collect();
        self.interp_many_into(fields, queries, comm, &mut slices);
        out
    }

    /// Single-rank fast path: no routing, no packing, no value return — one
    /// pooled ghost exchange per field and direct stencil evaluation into
    /// the caller's buffer. Allocation-free at steady state.
    fn interp_many_solo(
        &mut self,
        fields: &[&ScalarField],
        queries: &[[Real; 3]],
        comm: &mut Comm,
        outs: &mut [&mut [Real]],
    ) {
        let order = self.order;
        let weight = (order.flops_per_query() / 8).max(1);
        let nq = queries.len();
        for (fi, f) in fields.iter().enumerate() {
            let t0 = Instant::now();
            let m0 = comm.stats().cat(CommCat::Ghost).modeled_secs;
            let g = ghost::exchange(f, IpOrder::GHOST_WIDTH, comm);
            self.stats.wall.ghost_comm += t0.elapsed().as_secs_f64();
            self.stats.modeled.ghost_comm += comm.stats().cat(CommCat::Ghost).modeled_secs - m0;

            let t0 = Instant::now();
            timing::time(Kernel::Interp, || {
                let shared = SharedSlice::new(outs[fi]);
                par_parts(nq, nq * weight, |range| {
                    // SAFETY: worker ranges are disjoint.
                    let dst = unsafe { shared.slice_mut(range.clone()) };
                    for (o, qi) in dst.iter_mut().zip(range) {
                        *o = interp_ghost(&g, order, queries[qi]);
                    }
                });
            });
            let flops = nq * order.flops_per_query();
            let bytes = nq * 2 * std::mem::size_of::<Real>();
            comm.advance_kernel(bytes, flops);
            self.stats.wall.interp_kernel += t0.elapsed().as_secs_f64();
            self.stats.modeled.interp_kernel += comm.device().kernel_time(bytes, flops);
        }
    }

    /// [`Interpolator::interp_many`] writing into caller-provided buffers
    /// (one per field, each of `queries.len()` values). On a single rank
    /// this takes an allocation-free fast path.
    ///
    /// Collective: every rank passes its own queries.
    pub fn interp_many_into(
        &mut self,
        fields: &[&ScalarField],
        queries: &[[Real; 3]],
        comm: &mut Comm,
        outs: &mut [&mut [Real]],
    ) {
        assert!(!fields.is_empty());
        assert_eq!(outs.len(), fields.len(), "one output buffer per field");
        for o in outs.iter() {
            assert_eq!(o.len(), queries.len(), "output buffer/query size mismatch");
        }
        let layout = *fields[0].layout();
        for f in fields {
            assert_eq!(*f.layout(), layout, "all fields must share a layout");
        }
        if comm.size() == 1 {
            return self.interp_many_solo(fields, queries, comm, outs);
        }
        let p = comm.size();
        let nf = fields.len();
        let n1 = layout.grid.n[0];

        // ---- phase: scatter_mpi_buffer (partition queries by owner) ----
        let t0 = Instant::now();
        // owner lookup per query in parallel (the copy_if predicate);
        // bucketing stays serial to keep per-owner query order stable
        let owners: Vec<u32> = par_map_collect(queries.len(), |qi| {
            let u1 = to_index(queries[qi][0], n1);
            let plane = (u1 as usize).min(n1 - 1);
            layout.owner_of_plane(plane) as u32
        });
        let mut dest_queries: Vec<Vec<[Real; 3]>> = (0..p).map(|_| Vec::new()).collect();
        let mut dest_origin: Vec<Vec<u32>> = (0..p).map(|_| Vec::new()).collect();
        for (qi, (q, &owner)) in queries.iter().zip(&owners).enumerate() {
            dest_queries[owner as usize].push(*q);
            dest_origin[owner as usize].push(qi as u32);
        }
        // modeled: one streaming pass over the query list (copy_if analogue)
        comm.advance_kernel(std::mem::size_of_val(queries) * 2, 4 * queries.len());
        let buf_kernel_secs = queries.len() as f64 * 2.0 * std::mem::size_of::<[Real; 3]>() as f64
            / comm.device().dram_bw
            + comm.device().launch_overhead;
        self.stats.wall.scatter_mpi_buffer += t0.elapsed().as_secs_f64();
        self.stats.modeled.scatter_mpi_buffer += buf_kernel_secs;

        // ---- phase: scatter_comm (ship query points) ----
        let t0 = Instant::now();
        let m0 = comm.stats().cat(CommCat::Scatter).modeled_secs;
        let incoming = comm.alltoallv(&dest_queries, CommCat::Scatter, AlltoallMethod::Auto);
        self.stats.wall.scatter_comm += t0.elapsed().as_secs_f64();
        self.stats.modeled.scatter_comm += comm.stats().cat(CommCat::Scatter).modeled_secs - m0;

        // ---- phase: ghost_comm (halo exchange of the fields) ----
        let t0 = Instant::now();
        let m0 = comm.stats().cat(CommCat::Ghost).modeled_secs;
        let ghosts: Vec<ghost::GhostField> =
            fields.iter().map(|f| ghost::exchange(f, IpOrder::GHOST_WIDTH, comm)).collect();
        self.stats.wall.ghost_comm += t0.elapsed().as_secs_f64();
        self.stats.modeled.ghost_comm += comm.stats().cat(CommCat::Ghost).modeled_secs - m0;

        // ---- phase: interp_kernel (local stencil evaluation) ----
        let t0 = Instant::now();
        // every (field, query) evaluation is independent — the GPU version
        // runs one thread per query; here the flattened field-major batch is
        // split across workers, preserving the serial value order
        let order = self.order;
        let mut value_bufs: Vec<Vec<Real>> = Vec::with_capacity(p);
        let mut nq_local = 0usize;
        timing::time(Kernel::Interp, || {
            // weight ≈ stencil flops relative to a ~8-op element-wise point
            let weight = (order.flops_per_query() / 8).max(1);
            for part in &incoming {
                let nq = part.len();
                let vals = par_map_collect_work(nf * nq, weight, |t| {
                    interp_ghost(&ghosts[t / nq], order, part[t % nq])
                });
                nq_local += nq;
                value_bufs.push(vals);
            }
        });
        let flops = nq_local * nf * self.order.flops_per_query();
        let bytes = nq_local * nf * 2 * std::mem::size_of::<Real>();
        comm.advance_kernel(bytes, flops);
        self.stats.wall.interp_kernel += t0.elapsed().as_secs_f64();
        self.stats.modeled.interp_kernel += comm.device().kernel_time(bytes, flops);

        // ---- phase: interp_comm (return values) ----
        let t0 = Instant::now();
        let m0 = comm.stats().cat(CommCat::InterpValues).modeled_secs;
        let returned = comm.alltoallv(&value_bufs, CommCat::InterpValues, AlltoallMethod::Auto);
        self.stats.wall.interp_comm += t0.elapsed().as_secs_f64();
        self.stats.modeled.interp_comm += comm.stats().cat(CommCat::InterpValues).modeled_secs - m0;

        // reassemble into query order
        for (src, vals) in returned.iter().enumerate() {
            let origin = &dest_origin[src];
            assert_eq!(vals.len(), origin.len() * nf, "returned value count mismatch");
            for (fi, out_f) in outs.iter_mut().enumerate() {
                let chunk = &vals[fi * origin.len()..(fi + 1) * origin.len()];
                for (&oi, &v) in origin.iter().zip(chunk) {
                    out_f[oi as usize] = v;
                }
            }
        }
    }

    /// Interpolate one scalar field.
    pub fn interp(
        &mut self,
        field: &ScalarField,
        queries: &[[Real; 3]],
        comm: &mut Comm,
    ) -> Vec<Real> {
        self.interp_many(&[field], queries, comm).pop().unwrap()
    }

    /// Interpolate one scalar field into a caller-provided buffer.
    pub fn interp_into(
        &mut self,
        field: &ScalarField,
        queries: &[[Real; 3]],
        comm: &mut Comm,
        out: &mut [Real],
    ) {
        self.interp_many_into(&[field], queries, comm, &mut [out]);
    }

    /// Interpolate a vector field; returns per-query 3-vectors.
    pub fn interp_vector(
        &mut self,
        v: &VectorField,
        queries: &[[Real; 3]],
        comm: &mut Comm,
    ) -> Vec<[Real; 3]> {
        let mut out = vec![[0.0 as Real; 3]; queries.len()];
        self.interp_vector_into(v, queries, comm, &mut out);
        out
    }

    /// Interpolate a vector field into a caller-provided buffer of per-query
    /// 3-vectors (pooled component staging, µSL budget).
    pub fn interp_vector_into(
        &mut self,
        v: &VectorField,
        queries: &[[Real; 3]],
        comm: &mut Comm,
        out: &mut [[Real; 3]],
    ) {
        assert_eq!(out.len(), queries.len(), "output buffer/query size mismatch");
        let nq = queries.len();
        let mut c0 = REAL_POOL.checkout_filled(nq, 0.0 as Real, WsCat::Sl);
        let mut c1 = REAL_POOL.checkout_filled(nq, 0.0 as Real, WsCat::Sl);
        let mut c2 = REAL_POOL.checkout_filled(nq, 0.0 as Real, WsCat::Sl);
        self.interp_many_into(
            &[&v.c[0], &v.c[1], &v.c[2]],
            queries,
            comm,
            &mut [&mut c0, &mut c1, &mut c2],
        );
        for (i, o) in out.iter_mut().enumerate() {
            *o = [c0[i], c1[i], c2[i]];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::interp_serial;
    use claire_grid::{Grid, Layout, TWO_PI};
    use claire_mpi::{run_cluster, Topology};

    fn test_fn(x: Real, y: Real, z: Real) -> Real {
        (x).sin() * (y).cos() + (0.5 * z).sin() + 0.2
    }

    fn make_queries(n: usize, seed: u64) -> Vec<[Real; 3]> {
        (0..n)
            .map(|i| {
                let r = |s: u64| {
                    let a = (i as u64 + 1)
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add(seed.wrapping_mul(31).wrapping_add(s));
                    ((a >> 16) % 100_000) as Real / 100_000.0 * TWO_PI
                };
                [r(1), r(2), r(3)]
            })
            .collect()
    }

    #[test]
    fn distributed_matches_serial_interpolation() {
        let grid = Grid::new([16, 8, 8]);
        let serial_f = ScalarField::from_fn(Layout::serial(grid), test_fn);
        let queries = make_queries(64, 7);
        for order in [IpOrder::Linear, IpOrder::Cubic] {
            let expect: Vec<Real> =
                queries.iter().map(|&q| interp_serial(&serial_f, order, q)).collect();
            for p in [1usize, 2, 3, 4] {
                let queries = queries.clone();
                let expect = expect.clone();
                let res = run_cluster(Topology::new(p, 4), move |comm| {
                    let layout = Layout::distributed(grid, comm);
                    let f = ScalarField::from_fn(layout, test_fn);
                    let mut ip = Interpolator::new(order);
                    // split queries over ranks to exercise routing
                    let chunk = queries.len() / comm.size();
                    let lo = comm.rank() * chunk;
                    let hi =
                        if comm.rank() + 1 == comm.size() { queries.len() } else { lo + chunk };
                    let got = ip.interp(&f, &queries[lo..hi], comm);
                    let exp = &expect[lo..hi];
                    got.iter().zip(exp).map(|(&a, &b)| (a - b).abs()).fold(0.0, f64::max)
                });
                for (r, &e) in res.outputs.iter().enumerate() {
                    assert!(e < 1e-10, "{order:?} p={p} rank={r}: err {e}");
                }
            }
        }
    }

    #[test]
    fn interpolation_matches_over_socket_transport() {
        // Scattered cubic interpolation routes queries to owner ranks and
        // ships coefficients back — all of it must be transport-invariant.
        let grid = Grid::new([16, 8, 8]);
        let queries = make_queries(48, 11);
        let f = move |comm: &mut Comm| {
            let layout = Layout::distributed(grid, comm);
            let f = ScalarField::from_fn(layout, test_fn);
            let mut ip = Interpolator::new(IpOrder::Cubic);
            let chunk = queries.len() / comm.size();
            let lo = comm.rank() * chunk;
            let hi = if comm.rank() + 1 == comm.size() { queries.len() } else { lo + chunk };
            ip.interp(&f, &queries[lo..hi], comm).iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        };
        let chan = run_cluster(Topology::new(3, 4), &f);
        let sock = claire_ipc::run_socket_cluster(Topology::new(3, 4), &f);
        assert_eq!(chan.outputs, sock.outputs, "transports must agree bitwise");
    }

    #[test]
    fn phase_stats_populated() {
        let grid = Grid::new([8, 8, 8]);
        let res = run_cluster(Topology::new(4, 4), move |comm| {
            let layout = Layout::distributed(grid, comm);
            let f = ScalarField::from_fn(layout, test_fn);
            let mut ip = Interpolator::new(IpOrder::Cubic);
            let queries = make_queries(32, comm.rank() as u64);
            let _ = ip.interp(&f, &queries, comm);
            ip.stats
        });
        for s in &res.outputs {
            assert!(s.modeled.interp_kernel > 0.0);
            assert!(s.modeled.ghost_comm > 0.0, "ghost exchange should be modeled");
            assert!(s.wall.total() > 0.0);
        }
    }

    #[test]
    fn vector_interpolation_groups_components() {
        let grid = Grid::cube(16);
        let mut comm = Comm::solo();
        let layout = Layout::serial(grid);
        let v = VectorField::from_fns(layout, |x, _, _| x.sin(), |_, y, _| y.cos(), |_, _, z| z);
        let mut ip = Interpolator::new(IpOrder::Cubic);
        let queries = make_queries(10, 3);
        let vals = ip.interp_vector(&v, &queries, &mut comm);
        for (q, val) in queries.iter().zip(&vals) {
            assert!((val[0] - q[0].sin()).abs() < 2e-3);
            assert!((val[1] - q[1].cos()).abs() < 2e-3);
        }
    }

    #[test]
    fn empty_query_list() {
        let grid = Grid::cube(8);
        let mut comm = Comm::solo();
        let f = ScalarField::from_fn(Layout::serial(grid), test_fn);
        let mut ip = Interpolator::new(IpOrder::Linear);
        let out = ip.interp(&f, &[], &mut comm);
        assert!(out.is_empty());
    }
}
