//! Scattered-data interpolation for the semi-Lagrangian scheme (paper §3.1).
//!
//! The semi-Lagrangian transport solver evaluates fields at the off-grid
//! end points of backward characteristics. On the paper's multi-GPU systems
//! this is the most important kernel; its distributed workflow has five
//! instrumented phases that Table 2 reports:
//!
//! 1. `scatter_mpi_buffer` — partition the query points by owning rank
//!    (the paper uses `thrust::copy_if` on the GPU);
//! 2. `scatter_comm` — ship off-rank query points to their owners;
//! 3. `ghost_comm` — exchange the x1 ghost layers of the interpolated field
//!    needed by stencils near slab boundaries;
//! 4. `interp_kernel` — evaluate the interpolation stencils locally;
//! 5. `interp_comm` — return interpolated values to the requesting ranks.
//!
//! Two kernels are provided, mirroring the paper's production choices:
//! trilinear (`GPU-TXTLIN`, cost ~30 flop/query) and cubic Lagrange
//! (`GPU-TXTLAG`, ~482 flop/query). The paper prefers GPU-TXTLAG over the
//! prefiltered spline kernel in the distributed setting because the latter
//! would need an extra ghost exchange for the prefilter.

pub mod dist;
pub mod kernel;

pub use dist::{Interpolator, PhaseStats};
pub use kernel::IpOrder;
