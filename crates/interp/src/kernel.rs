//! Local interpolation stencils (trilinear and cubic Lagrange).

use claire_grid::{ghost::GhostField, Real, ScalarField, TWO_PI};

/// Interpolation order, named after the paper's GPU kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IpOrder {
    /// Trilinear (`GPU-TXTLIN`): 8-point support, ~30 flop/query. The
    /// paper's choice for the large-scale runs (Tables 6 and 7).
    Linear,
    /// Cubic Lagrange (`GPU-TXTLAG`): 64-point support, ~482 flop/query.
    /// The paper's choice when accuracy matters (Table 2 uses it).
    Cubic,
    /// Cubic B-spline (`GPU-TXTSPL`): same 64-point support evaluated on
    /// *prefiltered* coefficients. The fastest kernel on a single GPU
    /// (hardware-trilinear trick of [14]), but the paper rejects it for
    /// the distributed solver because the prefilter needs an extra global
    /// data exchange — see
    /// [`bspline_prefilter`](crate::kernel::lagrange_weights) docs and
    /// `claire-diff`'s spectral prefilter.
    CubicSpline,
}

impl IpOrder {
    /// Ghost-layer width needed along x1 (both kernels fit in 2 planes:
    /// linear needs (0, +1), cubic needs (−1, +2)).
    pub const GHOST_WIDTH: usize = 2;

    /// Approximate flop count per scalar query (paper §3.1: 30 vs 482;
    /// TXTSPL evaluates via 8 hardware-trilinear fetches on the GPU,
    /// substantially cheaper than TXTLAG).
    pub fn flops_per_query(self) -> usize {
        match self {
            IpOrder::Linear => 30,
            IpOrder::Cubic => 482,
            IpOrder::CubicSpline => 160,
        }
    }

    /// Human-readable kernel name as used in the paper.
    pub fn kernel_name(self) -> &'static str {
        match self {
            IpOrder::Linear => "GPU-TXTLIN",
            IpOrder::Cubic => "GPU-TXTLAG",
            IpOrder::CubicSpline => "GPU-TXTSPL",
        }
    }

    /// Whether the field must be converted to B-spline coefficients before
    /// this kernel reads it (the paper's prefilter step).
    pub fn needs_prefilter(self) -> bool {
        self == IpOrder::CubicSpline
    }
}

/// Cubic B-spline basis weights at fraction `t ∈ [0,1)` for node offsets
/// `{−1, 0, 1, 2}` (partition of unity; C² smooth).
#[inline]
pub fn bspline_weights(t: Real) -> [Real; 4] {
    let t2 = t * t;
    let t3 = t2 * t;
    let one_m = 1.0 - t;
    [
        one_m * one_m * one_m / 6.0,
        (3.0 * t3 - 6.0 * t2 + 4.0) / 6.0,
        (-3.0 * t3 + 3.0 * t2 + 3.0 * t + 1.0) / 6.0,
        t3 / 6.0,
    ]
}

/// Cubic Lagrange basis weights at fraction `t ∈ [0,1)` for node offsets
/// `{−1, 0, 1, 2}`. Dispatches to the active SIMD backend (one vector of
/// four polynomial evaluations on AVX2).
#[inline]
pub fn lagrange_weights(t: Real) -> [Real; 4] {
    claire_simd::lagrange_weights(t)
}

/// Wrap a physical coordinate into `[0, 2π)` and convert to continuous grid
/// index `u = x/h ∈ [0, n)`.
#[inline]
pub fn to_index(x: Real, n: usize) -> Real {
    let nr = n as Real;
    let mut u = x * nr / TWO_PI;
    u %= nr;
    if u < 0.0 {
        u += nr;
    }
    if u >= nr {
        u = 0.0; // guard against x == 2π after rounding
    }
    u
}

/// Split a continuous index into (integer base, fraction).
#[inline]
fn split(u: Real) -> (isize, Real) {
    let f = u.floor();
    (f as isize, u - f)
}

/// Interpolate a ghost-extended field at a physical point `x`.
///
/// The x1 coordinate must fall inside the owned slab (the distributed
/// driver routes queries so this holds); x2/x3 wrap locally since those
/// dimensions are not decomposed.
pub fn interp_ghost(gf: &GhostField, order: IpOrder, x: [Real; 3]) -> Real {
    let layout = gf.layout();
    let g = layout.grid;
    let u1 = to_index(x[0], g.n[0]);
    let u2 = to_index(x[1], g.n[1]);
    let u3 = to_index(x[2], g.n[2]);
    let (b1g, t1) = split(u1);
    let (b2, t2) = split(u2);
    let (b3, t3) = split(u3);
    // slab-relative x1 base plane
    let b1 = b1g - layout.slab.i0 as isize;
    let n2 = g.n[1] as isize;
    let n3 = g.n[2] as isize;

    match order {
        IpOrder::Linear => {
            let w1 = [1.0 - t1, t1];
            let w2 = [1.0 - t2, t2];
            let w3 = [1.0 - t3, t3];
            let mut acc = 0.0 as Real;
            for (a, &wa) in w1.iter().enumerate() {
                let ii = b1 + a as isize;
                for (b, &wb) in w2.iter().enumerate() {
                    let jj = ((b2 + b as isize) % n2 + n2) % n2;
                    for (c, &wc) in w3.iter().enumerate() {
                        let kk = ((b3 + c as isize) % n3 + n3) % n3;
                        acc += wa * wb * wc * gf.at(ii, jj as usize, kk as usize);
                    }
                }
            }
            acc
        }
        IpOrder::Cubic | IpOrder::CubicSpline => {
            let (w1, w2, w3) = if order == IpOrder::Cubic {
                (lagrange_weights(t1), lagrange_weights(t2), lagrange_weights(t3))
            } else {
                (bspline_weights(t1), bspline_weights(t2), bspline_weights(t3))
            };
            // Fast path: when the 4×4×4 support does not cross the periodic
            // seam in x2/x3 (the overwhelmingly common case away from the
            // domain boundary), the 16 stencil rows are contiguous in the
            // ghost storage and the whole 64-point accumulation runs as one
            // SIMD kernel. x1 never wraps here — the slab's ghost layer
            // (width 2) covers the cubic support by construction.
            if b2 >= 1 && b2 + 2 < n2 && b3 >= 1 && b3 + 2 < n3 {
                let width = gf.width() as isize;
                let base = (((b1 - 1 + width) * n2 + (b2 - 1)) * n3 + (b3 - 1)) as usize;
                return claire_simd::cubic_accumulate(
                    gf.data(),
                    base,
                    (n2 * n3) as usize,
                    n3 as usize,
                    &w1,
                    &w2,
                    &w3,
                );
            }
            let mut acc = 0.0 as Real;
            for (a, &wa) in w1.iter().enumerate() {
                let ii = b1 + a as isize - 1;
                for (b, &wb) in w2.iter().enumerate() {
                    let jj = ((b2 + b as isize - 1) % n2 + n2) % n2;
                    let wab = wa * wb;
                    for (c, &wc) in w3.iter().enumerate() {
                        let kk = ((b3 + c as isize - 1) % n3 + n3) % n3;
                        acc += wab * wc * gf.at(ii, jj as usize, kk as usize);
                    }
                }
            }
            acc
        }
    }
}

/// Serial convenience: interpolate a full (serial-layout) field at `x`.
pub fn interp_serial(f: &ScalarField, order: IpOrder, x: [Real; 3]) -> Real {
    assert!(f.layout().is_serial(), "interp_serial needs a serial-layout field");
    let mut comm = claire_mpi::Comm::solo();
    let gf = claire_grid::ghost::exchange(f, IpOrder::GHOST_WIDTH, &mut comm);
    interp_ghost(&gf, order, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_grid::{Grid, Layout};

    #[test]
    fn lagrange_weights_partition_of_unity() {
        for &t in &[0.0 as Real, 0.25, 0.5, 0.9] {
            let w = lagrange_weights(t);
            let s: Real = w.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "t={t}: sum {s}");
        }
        // at t = 0 the weights collapse to the node
        let w0 = lagrange_weights(0.0);
        assert!((w0[1] - 1.0).abs() < 1e-6);
        assert!(w0[0].abs() < 1e-6 && w0[2].abs() < 1e-6 && w0[3].abs() < 1e-6);
    }

    #[test]
    fn exact_at_grid_points() {
        let grid = Grid::new([8, 8, 8]);
        let f = ScalarField::from_fn(Layout::serial(grid), |x, y, z| x.sin() + (y * z).cos());
        let h = grid.spacing();
        for order in [IpOrder::Linear, IpOrder::Cubic] {
            for &(i, j, k) in &[(0usize, 0usize, 0usize), (3, 5, 7), (7, 7, 7)] {
                let x = [i as Real * h[0], j as Real * h[1], k as Real * h[2]];
                let v = interp_serial(&f, order, x);
                assert!(
                    ((v - f.at(i, j, k)) as f64).abs() < 1e-10,
                    "{order:?} at ({i},{j},{k}): {v} vs {}",
                    f.at(i, j, k)
                );
            }
        }
    }

    #[test]
    fn cubic_reproduces_smooth_functions() {
        let grid = Grid::cube(32);
        let f = ScalarField::from_fn(Layout::serial(grid), |x, y, z| {
            (x).sin() * (y).cos() + (0.5 * z).sin()
        });
        let probe = [1.234 as Real, 2.345, 3.456];
        let exact = (probe[0]).sin() * (probe[1]).cos() + (0.5 * probe[2]).sin();
        let lin = interp_serial(&f, IpOrder::Linear, probe) as f64;
        let cub = interp_serial(&f, IpOrder::Cubic, probe) as f64;
        assert!((cub - exact).abs() < 5e-5, "cubic err {}", (cub - exact).abs());
        assert!(
            (cub - exact).abs() < (lin - exact).abs(),
            "cubic ({cub}) should beat linear ({lin}) against {exact}"
        );
    }

    #[test]
    fn periodic_wrap_queries() {
        let grid = Grid::cube(8);
        let f = ScalarField::from_fn(Layout::serial(grid), |x, _, _| x.cos());
        // a point just below 2π interpolates across the periodic seam
        let x = [TWO_PI - 0.01, 0.0, 0.0];
        let v = interp_serial(&f, IpOrder::Cubic, x) as f64;
        assert!((v - (TWO_PI - 0.01).cos()).abs() < 1e-3, "v = {v}");
        // negative coordinates wrap too
        let v2 = interp_serial(&f, IpOrder::Cubic, [-0.01, 0.0, 0.0]) as f64;
        assert!((v - v2).abs() < 1e-6);
    }

    #[test]
    fn fourth_order_convergence_of_cubic() {
        let mut errs = Vec::new();
        for &n in &[16usize, 32] {
            let grid = Grid::cube(n);
            let f = ScalarField::from_fn(Layout::serial(grid), |x, _, _| (2.0 * x).sin());
            let mut comm = claire_mpi::Comm::solo();
            let gf = claire_grid::ghost::exchange(&f, IpOrder::GHOST_WIDTH, &mut comm);
            let mut e = 0.0f64;
            for q in 0..50 {
                let x = 0.123 as Real + q as Real * 0.11;
                let x = x % TWO_PI;
                let v = interp_ghost(&gf, IpOrder::Cubic, [x, 0.0, 0.0]) as f64;
                e = e.max((v - (2.0 * x).sin()).abs());
            }
            errs.push(e);
        }
        let order = (errs[0] / errs[1]).log2();
        assert!(order > 3.5, "cubic should be ~4th order, got {order} ({errs:?})");
    }
}
