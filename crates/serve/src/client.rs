//! Blocking TCP client for a [`NetServer`](crate::server::NetServer).
//!
//! [`Client::connect`] performs the `Hello` handshake (refusing servers
//! that speak a different [`PROTOCOL_VERSION`]) and then exposes the
//! request envelope as plain methods: [`Client::submit`],
//! [`Client::status`], [`Client::cancel`], [`Client::wait`], and
//! [`Client::stream`]. One `Client` is one connection; requests on it are
//! strictly sequential (submit many jobs first, then wait on each — the
//! server executes them concurrently regardless).

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::job::{JobId, JobStatus};
use crate::wire::{
    decode_response, read_frame, send, ErrorCode, RemoteJobResult, Request, Response, StreamEvent,
    WireError, WireJobSpec, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};

/// Outcome of a remote submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteAdmission {
    /// Server-assigned job id.
    pub id: JobId,
    /// Whether the result was served from the server's content-hash cache
    /// (the job is already terminal; no solve will run).
    pub cached: bool,
}

/// A blocking connection to a claire-serve network server.
pub struct Client {
    stream: TcpStream,
    /// Server identification from the handshake.
    server: String,
}

impl Client {
    /// Connect and perform the version handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, WireError> {
        Self::connect_as(addr, "claire-client")
    }

    /// [`Client::connect`] with an explicit client identification string.
    pub fn connect_as(addr: impl ToSocketAddrs, name: &str) -> Result<Client, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Client { stream, server: String::new() };
        client.send(&Request::Hello { protocol: PROTOCOL_VERSION, client: name.to_string() })?;
        match client.recv(None)? {
            Response::Hello { protocol, server } if protocol == PROTOCOL_VERSION => {
                client.server = server;
                Ok(client)
            }
            Response::Hello { protocol, .. } => {
                Err(WireError::VersionMismatch { ours: PROTOCOL_VERSION, theirs: protocol })
            }
            Response::Error { code: ErrorCode::VersionMismatch, message } => {
                Err(WireError::Protocol(message))
            }
            other => Err(WireError::Protocol(format!("unexpected handshake reply: {other:?}"))),
        }
    }

    /// Server identification string from the handshake.
    pub fn server_name(&self) -> &str {
        &self.server
    }

    /// Submit a job; returns its id and whether it was a cache hit.
    pub fn submit(&mut self, spec: &WireJobSpec) -> Result<RemoteAdmission, WireError> {
        self.send(&Request::Submit { spec: spec.clone() })?;
        match self.recv(None)? {
            Response::Submitted { id, cached } => Ok(RemoteAdmission { id, cached }),
            other => Err(unexpected(other)),
        }
    }

    /// Query a job's lifecycle status.
    pub fn status(&mut self, id: JobId) -> Result<JobStatus, WireError> {
        self.send(&Request::Status { id })?;
        match self.recv(None)? {
            Response::Status { id: got, status } if got == id => Ok(status),
            other => Err(unexpected(other)),
        }
    }

    /// Request cancellation; returns whether a live job was reached.
    pub fn cancel(&mut self, id: JobId) -> Result<bool, WireError> {
        self.send(&Request::Cancel { id })?;
        match self.recv(None)? {
            Response::Cancelled { id: got, delivered } if got == id => Ok(delivered),
            other => Err(unexpected(other)),
        }
    }

    /// Block until the job is terminal and fetch its full result.
    pub fn wait(&mut self, id: JobId) -> Result<RemoteJobResult, WireError> {
        self.send(&Request::Result { id })?;
        match self.recv(None)? {
            Response::Result { result } => Ok(result),
            other => Err(unexpected(other)),
        }
    }

    /// Subscribe to a job's status stream, invoking `on_event` for every
    /// event until the terminal one (inclusive). Returns the terminal
    /// status.
    pub fn stream(
        &mut self,
        id: JobId,
        mut on_event: impl FnMut(StreamEvent),
    ) -> Result<JobStatus, WireError> {
        self.send(&Request::Stream { id })?;
        loop {
            match self.recv(None)? {
                Response::Event { id: got, event } if got == id => {
                    on_event(event);
                    if let StreamEvent::Terminal { status } = event {
                        return Ok(status);
                    }
                }
                other => return Err(unexpected(other)),
            }
        }
    }

    fn send<T: serde::Serialize + ?Sized>(&mut self, msg: &T) -> Result<(), WireError> {
        send(&mut self.stream, msg)
    }

    /// Receive one response, surfacing server-side `Error` frames as
    /// [`WireError::Remote`]. `timeout` bounds the wait (None = forever).
    fn recv(&mut self, timeout: Option<Duration>) -> Result<Response, WireError> {
        self.stream.set_read_timeout(timeout)?;
        match decode_response(&read_frame(&mut self.stream, MAX_FRAME_BYTES)?)? {
            Response::Error { code, message } => Err(WireError::Remote { code, message }),
            resp => Ok(resp),
        }
    }
}

fn unexpected(resp: Response) -> WireError {
    WireError::Protocol(format!("unexpected response: {resp:?}"))
}
