//! The registration job service: admission, scheduling, execution,
//! shutdown.
//!
//! A [`RegistrationService`] owns a worker pool and a bounded priority
//! queue. Jobs are validated and assigned a [`JobId`] at admission;
//! [`RegistrationService::try_submit`] rejects when the queue is full
//! (open-loop backpressure) while [`RegistrationService::submit`] blocks
//! (closed-loop). Each worker pins a share of the machine's thread budget
//! via `claire_par::set_local_threads`, so `workers × per-worker threads`
//! never oversubscribes the cores the kernels would otherwise assume are
//! all theirs. Deadlines are armed on the job's [`CancelToken`] at
//! submission — queue wait counts against the budget — and the solver polls
//! the token at every Gauss–Newton iteration boundary, so cancellation
//! takes effect within one iteration. A panicking solve is caught and
//! reported as [`JobStatus::Failed`] without poisoning the pool.

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use claire_core::{CancelToken, Claire, ClaireError, RegistrationReport, SolverHooks};
use claire_mpi::{CollOp, Comm, CommCat};
use claire_obs::metrics::{Counter, Gauge, Histogram};
use claire_obs::report::{
    CollectiveEntry, CommPhaseEntry, PhaseShares, RunReport, RunSummary, SchedulingInfo,
};
use claire_obs::span;

use crate::job::{JobId, JobInput, JobResult, JobSpec, JobStatus};
use crate::queue::{BoundedQueue, PushError};

static QUEUE_DEPTH: Gauge = Gauge::new("serve.queue.depth");
static QUEUE_WAIT: Histogram = Histogram::new("serve.queue.wait_secs");
static SUBMITTED: Counter = Counter::new("serve.jobs.submitted");
static REJECTED: Counter = Counter::new("serve.jobs.rejected");
static COMPLETED: Counter = Counter::new("serve.jobs.completed");
static CANCELLED: Counter = Counter::new("serve.jobs.cancelled");
static DEADLINE_EXPIRED: Counter = Counter::new("serve.jobs.deadline_expired");
static FAILED: Counter = Counter::new("serve.jobs.failed");

/// Why a submission was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity (only from
    /// [`RegistrationService::try_submit`]).
    QueueFull,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// The spec failed admission validation.
    Invalid(ClaireError),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "admission queue is full"),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
            SubmitError::Invalid(e) => write!(f, "invalid job spec: {e}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Service sizing and behaviour.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Concurrent worker threads (each runs one job at a time).
    pub workers: usize,
    /// Admission-queue capacity shared across priority lanes.
    pub queue_capacity: usize,
    /// Machine thread budget partitioned across workers; 0 means "use
    /// `claire_par::num_threads()`" (the ambient resolution).
    pub total_threads: usize,
    /// Whether workers assemble a per-job [`RunReport`] (spans, comm
    /// volume, scheduling metadata) for succeeded jobs.
    pub collect_reports: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { workers: 1, queue_capacity: 16, total_threads: 0, collect_reports: true }
    }
}

impl ServiceConfig {
    /// Set the worker count (clamped to ≥ 1 at start).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Set the admission-queue capacity (clamped to ≥ 1 at start).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Set the machine thread budget to partition across workers.
    pub fn total_threads(mut self, n: usize) -> Self {
        self.total_threads = n;
        self
    }

    /// Enable or disable per-job [`RunReport`] assembly.
    pub fn collect_reports(mut self, on: bool) -> Self {
        self.collect_reports = on;
        self
    }
}

/// A job admitted to the queue.
struct QueuedJob {
    id: u64,
    spec: JobSpec,
    token: CancelToken,
    submitted: Instant,
    deadline: Option<Duration>,
}

struct JobEntry {
    status: JobStatus,
    token: CancelToken,
    result: Option<JobResult>,
}

struct Shared {
    queue: BoundedQueue<QueuedJob>,
    jobs: Mutex<HashMap<u64, JobEntry>>,
    done: Condvar,
    accepting: AtomicBool,
    next_id: AtomicU64,
}

impl Shared {
    fn finish(&self, id: u64, result: JobResult) {
        match result.status {
            JobStatus::Succeeded => COMPLETED.inc(),
            JobStatus::Cancelled => CANCELLED.inc(),
            JobStatus::DeadlineExpired => DEADLINE_EXPIRED.inc(),
            _ => FAILED.inc(),
        }
        let mut jobs = self.jobs.lock().unwrap();
        if let Some(entry) = jobs.get_mut(&id) {
            entry.status = result.status;
            entry.result = Some(result);
        }
        drop(jobs);
        self.done.notify_all();
    }

    fn set_status(&self, id: u64, status: JobStatus) {
        if let Some(entry) = self.jobs.lock().unwrap().get_mut(&id) {
            entry.status = status;
        }
    }
}

/// An in-process multi-tenant registration job service.
///
/// Dropping the service performs an immediate shutdown (cancelling queued
/// and running jobs); call [`RegistrationService::shutdown`] for a graceful
/// drain.
pub struct RegistrationService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    per_worker_threads: usize,
}

impl RegistrationService {
    /// Start the worker pool.
    pub fn start(cfg: ServiceConfig) -> RegistrationService {
        let workers = cfg.workers.max(1);
        let capacity = cfg.queue_capacity.max(1);
        let machine =
            if cfg.total_threads > 0 { cfg.total_threads } else { claire_par::num_threads() };
        let per_worker = (machine / workers).max(1);

        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(capacity),
            jobs: Mutex::new(HashMap::new()),
            done: Condvar::new(),
            accepting: AtomicBool::new(true),
            next_id: AtomicU64::new(1),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = shared.clone();
                let collect = cfg.collect_reports;
                std::thread::Builder::new()
                    .name(format!("claire-serve-{w}"))
                    .spawn(move || worker_loop(w, per_worker, collect, &shared))
                    .expect("spawning a service worker thread")
            })
            .collect();
        RegistrationService { shared, workers: handles, per_worker_threads: per_worker }
    }

    /// Threads each worker pins for its kernels.
    pub fn per_worker_threads(&self) -> usize {
        self.per_worker_threads
    }

    /// Jobs currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Non-blocking submission: validates, then fails fast with
    /// [`SubmitError::QueueFull`] under backpressure.
    pub fn try_submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        self.admit(spec, false)
    }

    /// Blocking submission: validates, then waits for queue capacity.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        self.admit(spec, true)
    }

    fn admit(&self, spec: JobSpec, block: bool) -> Result<JobId, SubmitError> {
        if !self.shared.accepting.load(Ordering::Acquire) {
            REJECTED.inc();
            return Err(SubmitError::ShuttingDown);
        }
        if let Err(e) = spec.validate() {
            REJECTED.inc();
            return Err(SubmitError::Invalid(e));
        }

        // A caller-provided token is the cancellation seam for tests and
        // remote cancellation; otherwise the job gets a private one.
        let token = spec.hooks.cancel.clone().unwrap_or_default();
        if let Some(d) = spec.deadline {
            token.set_deadline_in(d);
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        self.shared
            .jobs
            .lock()
            .unwrap()
            .insert(id, JobEntry { status: JobStatus::Queued, token: token.clone(), result: None });

        let lane = spec.priority.index();
        let deadline = spec.deadline;
        let job = QueuedJob { id, spec, token, submitted: Instant::now(), deadline };
        let pushed = if block {
            self.shared.queue.push(job, lane)
        } else {
            self.shared.queue.try_push(job, lane)
        };
        match pushed {
            Ok(()) => {
                SUBMITTED.inc();
                QUEUE_DEPTH.set(self.shared.queue.len() as f64);
                Ok(JobId(id))
            }
            Err(err) => {
                self.shared.jobs.lock().unwrap().remove(&id);
                REJECTED.inc();
                Err(match err {
                    PushError::Full(_) => SubmitError::QueueFull,
                    PushError::Closed(_) => SubmitError::ShuttingDown,
                })
            }
        }
    }

    /// Request cancellation of a job. Returns `true` if the job exists and
    /// was not already terminal; takes effect within one Gauss–Newton
    /// iteration if the job is running, immediately if still queued.
    pub fn cancel(&self, id: JobId) -> bool {
        let jobs = self.shared.jobs.lock().unwrap();
        match jobs.get(&id.0) {
            Some(entry) if !entry.status.is_terminal() => {
                entry.token.cancel();
                true
            }
            _ => false,
        }
    }

    /// Current status, or `None` for an unknown id.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.shared.jobs.lock().unwrap().get(&id.0).map(|e| e.status)
    }

    /// Block until the job reaches a terminal status; returns its result
    /// (`None` for an unknown id).
    pub fn wait(&self, id: JobId) -> Option<JobResult> {
        let mut jobs = self.shared.jobs.lock().unwrap();
        loop {
            match jobs.get(&id.0) {
                None => return None,
                Some(entry) => {
                    if let Some(result) = &entry.result {
                        return Some(result.clone());
                    }
                }
            }
            jobs = self.shared.done.wait(jobs).unwrap();
        }
    }

    /// Graceful shutdown: stop accepting, let workers drain every admitted
    /// job, join the pool, and return all results sorted by id. Idempotent.
    pub fn shutdown(&mut self) -> Vec<JobResult> {
        self.stop(false)
    }

    /// Immediate shutdown: additionally trips every non-terminal job's
    /// cancel token, so queued jobs finish as `Cancelled` and running jobs
    /// stop at their next iteration boundary. Idempotent.
    pub fn shutdown_now(&mut self) -> Vec<JobResult> {
        self.stop(true)
    }

    fn stop(&mut self, cancel_pending: bool) -> Vec<JobResult> {
        self.shared.accepting.store(false, Ordering::Release);
        if cancel_pending {
            for entry in self.shared.jobs.lock().unwrap().values() {
                if !entry.status.is_terminal() {
                    entry.token.cancel();
                }
            }
        }
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        let jobs = self.shared.jobs.lock().unwrap();
        let mut results: Vec<JobResult> = jobs.values().filter_map(|e| e.result.clone()).collect();
        results.sort_by_key(|r| r.id);
        results
    }
}

impl Drop for RegistrationService {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_now();
        }
    }
}

fn worker_loop(worker: usize, budget: usize, collect_reports: bool, shared: &Shared) {
    // Partition the machine: this worker's kernels see only its share.
    claire_par::set_local_threads(budget);
    while let Some(job) = shared.queue.pop() {
        QUEUE_DEPTH.set(shared.queue.len() as f64);
        let queue_wait = job.submitted.elapsed();
        QUEUE_WAIT.record(queue_wait.as_secs_f64());
        execute(worker, collect_reports, shared, job, queue_wait);
    }
}

fn execute(
    worker: usize,
    collect_reports: bool,
    shared: &Shared,
    job: QueuedJob,
    queue_wait: Duration,
) {
    let QueuedJob { id, spec, token, submitted, deadline } = job;
    let label = spec.label.clone();
    let mut result = JobResult {
        id: JobId(id),
        label: label.clone(),
        status: JobStatus::Failed,
        report: None,
        run: None,
        error: None,
        queue_wait,
        run_time: Duration::ZERO,
        total: Duration::ZERO,
    };

    // The deadline may already have expired (or the job been cancelled)
    // while it sat in the queue — don't start a doomed solve.
    if let Some(reason) = token.stop_reason() {
        result.status = match reason {
            claire_core::StopReason::Cancelled => JobStatus::Cancelled,
            claire_core::StopReason::DeadlineExpired => JobStatus::DeadlineExpired,
        };
        result.error = Some(format!("{} before execution started", reason.label()));
        result.total = submitted.elapsed();
        shared.finish(id, result);
        return;
    }

    shared.set_status(id, JobStatus::Running);
    let started = Instant::now();
    let config = spec.config;
    let prio = spec.priority;
    let solve = catch_unwind(AssertUnwindSafe(|| run_solve(spec, &token)));
    result.run_time = started.elapsed();
    result.total = submitted.elapsed();

    match solve {
        Ok(Ok((report, comm))) => {
            result.status = JobStatus::Succeeded;
            if collect_reports {
                let scheduling = SchedulingInfo {
                    job_id: id,
                    priority: prio.label().to_string(),
                    worker,
                    queue_wait_secs: queue_wait.as_secs_f64(),
                    run_secs: result.run_time.as_secs_f64(),
                    total_secs: result.total.as_secs_f64(),
                    deadline_secs: deadline.map(|d| d.as_secs_f64()).unwrap_or(0.0),
                };
                result.run = Some(job_run_report(&label, &report, &config, &comm, scheduling));
            }
            result.report = Some(report);
        }
        Ok(Err(e)) => {
            // Cancellation precedence mirrors the token: an explicit cancel
            // wins even when the deadline also expired.
            result.status = match &e {
                ClaireError::Cancelled { .. } if token.is_cancelled() => JobStatus::Cancelled,
                ClaireError::Cancelled { .. } if token.deadline_expired() => {
                    JobStatus::DeadlineExpired
                }
                ClaireError::Cancelled { .. } => JobStatus::Cancelled,
                _ => JobStatus::Failed,
            };
            result.error = Some(e.to_string());
        }
        Err(payload) => {
            let text = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("solver panicked");
            result.status = JobStatus::Failed;
            result.error = Some(format!("solver panicked: {text}"));
        }
    }
    // Spans are thread-local; drain them after every job so one tenant's
    // trace never leaks into the next job on this worker.
    let spans = span::take_spans();
    if let Some(run) = &mut result.run {
        run.spans = spans;
    }
    shared.finish(id, result);
}

/// Run one registration on the calling worker thread.
fn run_solve(
    spec: JobSpec,
    token: &CancelToken,
) -> Result<(RegistrationReport, Comm), ClaireError> {
    let mut comm = Comm::solo();
    let (template, reference) = match spec.input {
        JobInput::Pair { template, reference } => (template, reference),
        JobInput::Synthetic { n } => {
            let p = claire_data::syn_problem(n, &mut comm);
            (p.template, p.reference)
        }
    };
    let hooks = SolverHooks { cancel: Some(token.clone()), on_gn_iter: spec.hooks.on_gn_iter };
    let mut claire = Claire::with_hooks(spec.config, hooks);
    let (_, report) =
        claire.try_register_from(&template, &reference, None, &spec.label, &mut comm)?;
    Ok((report, comm))
}

/// Assemble the per-job [`RunReport`]. Unlike
/// `claire_core::observe::collect_run_report`, this only uses *per-job*
/// telemetry sources — the job's own `Comm` and the worker-thread span tree
/// — because the global metrics registry and kernel timers are shared by
/// every concurrently running job.
fn job_run_report(
    label: &str,
    report: &RegistrationReport,
    config: &claire_core::RegistrationConfig,
    comm: &Comm,
    scheduling: SchedulingInfo,
) -> RunReport {
    let mut run = RunReport::new(label);
    run.grid = report.grid;
    run.nranks = report.nranks;
    run.nt = report.nt;
    run.precond = report.pc.clone();
    run.backend = claire_simd::active_backend().label().to_string();
    run.summary = RunSummary {
        gn_iters: report.gn_iters,
        pcg_iters: report.pcg_iters,
        obj_evals: 0,
        hess_applies: 0,
        rel_mismatch: report.rel_mismatch,
        grad_rel: report.grad_rel,
        jac_det_min: report.jac_det_min,
        jac_det_max: report.jac_det_max,
        time_total: report.time_total,
        modeled_total: report.modeled_total,
        converged: report.grad_rel <= config.grad_rtol,
    };
    run.scheduling = scheduling;
    run.phases = PhaseShares::from_kernels(&[], report.time_total);

    let stats = comm.stats();
    run.comm = CommCat::ALL
        .iter()
        .map(|&c| {
            let s = stats.cat(c);
            CommPhaseEntry {
                phase: c.label().to_string(),
                bytes: s.bytes_sent,
                msgs: s.msgs_sent,
                modeled_secs: s.modeled_secs,
            }
        })
        .filter(|e| e.bytes > 0 || e.msgs > 0)
        .collect();
    run.collectives = CollOp::ALL
        .iter()
        .map(|&op| {
            let s = stats.coll(op);
            CollectiveEntry { op: op.label().to_string(), calls: s.calls, bytes: s.bytes }
        })
        .filter(|e| e.calls > 0)
        .collect();
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_core::{PrecondKind, RegistrationConfig};

    fn tiny_config() -> RegistrationConfig {
        RegistrationConfig {
            nt: 2,
            max_gn_iter: 2,
            max_pcg_iter: 4,
            continuation: false,
            precond: PrecondKind::InvA,
            ..Default::default()
        }
    }

    fn tiny_spec(label: &str) -> JobSpec {
        JobSpec::new(label, tiny_config(), JobInput::Synthetic { n: [8, 8, 8] })
    }

    #[test]
    fn submits_run_and_report_scheduling_metadata() {
        let mut svc = RegistrationService::start(ServiceConfig::default().workers(1));
        let id = svc.try_submit(tiny_spec("syn-8")).unwrap();
        let res = svc.wait(id).expect("job must be known");
        assert_eq!(res.status, JobStatus::Succeeded, "{:?}", res.error);
        let report = res.report.expect("succeeded job carries a report");
        assert!(report.gn_iters >= 1);
        let run = res.run.expect("collect_reports defaults to on");
        assert_eq!(run.scheduling.job_id, id.as_u64());
        assert_eq!(run.scheduling.priority, "normal");
        assert!(run.scheduling.total_secs >= run.scheduling.run_secs);
        assert!(run.to_json().contains("\"scheduling\""));
        let drained = svc.shutdown();
        assert_eq!(drained.len(), 1);
    }

    #[test]
    fn invalid_spec_is_rejected_at_admission() {
        let mut svc = RegistrationService::start(ServiceConfig::default());
        let mut spec = tiny_spec("bad");
        spec.config.nt = 0;
        match svc.try_submit(spec) {
            Err(SubmitError::Invalid(e)) => assert!(e.to_string().contains("nt"), "{e}"),
            other => panic!("expected Invalid, got {other:?}"),
        }
        let zero = JobSpec::new("zero", tiny_config(), JobInput::Synthetic { n: [0, 8, 8] });
        assert!(matches!(svc.try_submit(zero), Err(SubmitError::Invalid(_))));
        svc.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let mut svc = RegistrationService::start(ServiceConfig::default());
        svc.shutdown();
        assert_eq!(svc.try_submit(tiny_spec("late")), Err(SubmitError::ShuttingDown));
        assert_eq!(svc.submit(tiny_spec("late-2")), Err(SubmitError::ShuttingDown));
        // idempotent
        assert!(svc.shutdown().is_empty());
    }

    #[test]
    fn deadline_expired_in_queue_is_terminal_without_running() {
        let mut svc = RegistrationService::start(ServiceConfig::default().workers(1));
        let spec = tiny_spec("doomed").deadline(Duration::ZERO);
        let id = svc.try_submit(spec).unwrap();
        let res = svc.wait(id).unwrap();
        assert_eq!(res.status, JobStatus::DeadlineExpired);
        assert!(res.report.is_none());
        assert!(res.error.unwrap().contains("deadline"));
        // the pool survives: a healthy job still runs afterwards
        let ok = svc.try_submit(tiny_spec("healthy")).unwrap();
        assert_eq!(svc.wait(ok).unwrap().status, JobStatus::Succeeded);
        svc.shutdown();
    }

    #[test]
    fn unknown_ids_are_handled() {
        let mut svc = RegistrationService::start(ServiceConfig::default());
        let ghost = JobId(999);
        assert_eq!(svc.status(ghost), None);
        assert!(svc.wait(ghost).is_none());
        assert!(!svc.cancel(ghost));
        svc.shutdown();
    }
}
