//! A sharding router over several claire-serve workers.
//!
//! [`Router`] owns one [`Client`] connection per backend worker and places
//! every submission by **consistent-hashing its solver fingerprint**
//! ([`crate::wire::solver_fingerprint`]): same grid + same solver config →
//! same worker, so the worker-local batch coalescer still finds
//! same-fingerprint peers even when the fleet is fronted by one address.
//! Identity fields (label, tenant, priority) do not move a job between
//! shards.
//!
//! Each backend gets ~[`VNODES`] points on the hash ring, so adding or
//! losing one worker remaps only `1/N` of the fingerprint space. When a
//! backend dies mid-flight (transport error after one reconnect attempt),
//! the router marks it dead, re-submits the job's stored spec to the next
//! alive backend on the ring, and counts the event in
//! [`Router::rerouted`].
//!
//! The router speaks plain wire protocol on both sides, so it composes:
//! `claire-router` (the binary) is itself a valid submission target for
//! another router.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::client::{Client, RemoteAdmission};
use crate::job::{JobId, JobStatus};
use crate::wire::{solver_fingerprint, Fnv, RemoteJobResult, WireError, WireJobSpec};

/// Ring points per backend. ~40 vnodes keeps the shard-size spread under a
/// few percent for small fleets without making ring lookups expensive.
const VNODES: usize = 40;

struct Backend {
    addr: String,
    alive: AtomicBool,
    conn: Mutex<Option<Client>>,
}

impl Backend {
    /// Run `op` on this backend's pooled connection, reconnecting once on
    /// a transport error. A second transport failure marks the backend
    /// dead and surfaces the error.
    fn call<T>(&self, op: impl Fn(&mut Client) -> Result<T, WireError>) -> Result<T, WireError> {
        let mut slot = self.conn.lock().unwrap();
        for attempt in 0..2 {
            if slot.is_none() {
                match Client::connect_as(&self.addr[..], "claire-router") {
                    Ok(c) => *slot = Some(c),
                    Err(e) if e.is_transport() && attempt == 0 => continue,
                    Err(e) => {
                        if e.is_transport() {
                            self.alive.store(false, Ordering::SeqCst);
                        }
                        return Err(e);
                    }
                }
            }
            match op(slot.as_mut().expect("connection just ensured")) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transport() => {
                    *slot = None; // poisoned stream; retry with a fresh one
                    if attempt == 1 {
                        self.alive.store(false, Ordering::SeqCst);
                        return Err(e);
                    }
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on its last attempt")
    }
}

/// In-flight job bookkeeping: where it went and what was sent (kept until
/// the result is fetched, so a dead worker's jobs can be re-submitted).
struct Placement {
    backend: usize,
    remote: JobId,
    spec: WireJobSpec,
}

/// A consistent-hash sharding front door over claire-serve workers.
pub struct Router {
    backends: Vec<Backend>,
    /// Sorted `(point, backend index)` ring.
    ring: Vec<(u64, usize)>,
    jobs: Mutex<HashMap<u64, Placement>>,
    next_id: AtomicU64,
    rerouted: AtomicU64,
}

impl Router {
    /// Build a router over `addrs` (connections are opened lazily).
    ///
    /// Returns an error only when `addrs` is empty — a worker that is down
    /// at construction time is discovered (and skipped) at first use.
    pub fn new<S: AsRef<str>>(addrs: &[S]) -> Result<Router, WireError> {
        if addrs.is_empty() {
            return Err(WireError::Protocol("router needs at least one backend".into()));
        }
        let backends: Vec<Backend> = addrs
            .iter()
            .map(|a| Backend {
                addr: a.as_ref().to_string(),
                alive: AtomicBool::new(true),
                conn: Mutex::new(None),
            })
            .collect();
        let mut ring = Vec::with_capacity(backends.len() * VNODES);
        for (b, backend) in backends.iter().enumerate() {
            for v in 0..VNODES {
                let mut h = Fnv::new();
                h.write(backend.addr.as_bytes());
                h.write(b"#");
                h.write_u64(v as u64);
                ring.push((h.0, b));
            }
        }
        ring.sort_unstable();
        Ok(Router {
            backends,
            ring,
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            rerouted: AtomicU64::new(0),
        })
    }

    /// The backend index a spec's solver fingerprint lands on right now
    /// (dead backends skipped). Exposed so tests and operators can check
    /// co-location without submitting.
    pub fn shard_of(&self, spec: &WireJobSpec) -> Option<usize> {
        self.successors(solver_fingerprint(spec)).next()
    }

    /// Backend addresses in construction order.
    pub fn backend_addrs(&self) -> Vec<&str> {
        self.backends.iter().map(|b| b.addr.as_str()).collect()
    }

    /// Backends currently considered alive.
    pub fn alive_backends(&self) -> usize {
        self.backends.iter().filter(|b| b.alive.load(Ordering::SeqCst)).count()
    }

    /// Jobs re-submitted to another worker after their first worker died.
    pub fn rerouted(&self) -> u64 {
        self.rerouted.load(Ordering::SeqCst)
    }

    /// Alive backend indices in ring order starting at `point`, each at
    /// most once.
    fn successors(&self, point: u64) -> impl Iterator<Item = usize> + '_ {
        let start = self.ring.partition_point(|&(p, _)| p < point);
        let n = self.ring.len();
        let mut seen = vec![false; self.backends.len()];
        (0..n).filter_map(move |i| {
            let (_, b) = self.ring[(start + i) % n];
            if seen[b] || !self.backends[b].alive.load(Ordering::SeqCst) {
                return None;
            }
            seen[b] = true;
            Some(b)
        })
    }

    /// Submit `spec` to its shard, failing over along the ring. Returns a
    /// **router-scoped** admission: the id lives in the router's id space
    /// and must be redeemed through this router.
    pub fn submit(&self, spec: &WireJobSpec) -> Result<RemoteAdmission, WireError> {
        let (backend, adm) = self.place(spec, None)?;
        let local = JobId::from_u64(self.next_id.fetch_add(1, Ordering::SeqCst));
        self.jobs
            .lock()
            .unwrap()
            .insert(local.as_u64(), Placement { backend, remote: adm.id, spec: spec.clone() });
        Ok(RemoteAdmission { id: local, cached: adm.cached })
    }

    /// Try the shard and then every alive successor; `skip` (a just-died
    /// backend) is rerouted around without being retried.
    fn place(
        &self,
        spec: &WireJobSpec,
        skip: Option<usize>,
    ) -> Result<(usize, RemoteAdmission), WireError> {
        let point = solver_fingerprint(spec);
        let mut last = WireError::Protocol("no alive backend".into());
        let candidates: Vec<usize> = self.successors(point).collect();
        for b in candidates {
            if Some(b) == skip {
                continue;
            }
            match self.backends[b].call(|c| c.submit(spec)) {
                Ok(adm) => return Ok((b, adm)),
                Err(e) if e.is_transport() => last = e, // backend marked dead; next
                Err(e) => return Err(e),                // server-side refusal is final
            }
        }
        Err(last)
    }

    /// Status of a routed job.
    pub fn status(&self, id: JobId) -> Result<JobStatus, WireError> {
        let (backend, remote) = self.lookup(id)?;
        self.backends[backend].call(|c| c.status(remote))
    }

    /// Cancel a routed job.
    pub fn cancel(&self, id: JobId) -> Result<bool, WireError> {
        let (backend, remote) = self.lookup(id)?;
        self.backends[backend].call(|c| c.cancel(remote))
    }

    /// Block until the routed job is terminal and fetch its result. If the
    /// job's worker dies first, the stored spec is re-submitted to the
    /// next alive backend on the ring and the wait continues there; the
    /// returned result keeps the router-scoped id.
    pub fn wait(&self, id: JobId) -> Result<RemoteJobResult, WireError> {
        loop {
            let (backend, remote) = self.lookup(id)?;
            match self.backends[backend].call(|c| c.wait(remote)) {
                Ok(mut result) => {
                    self.jobs.lock().unwrap().remove(&id.as_u64());
                    result.id = id;
                    return Ok(result);
                }
                Err(e) if e.is_transport() => {
                    // The worker died with the job on it: reroute.
                    let spec = {
                        let jobs = self.jobs.lock().unwrap();
                        jobs.get(&id.as_u64()).map(|p| p.spec.clone())
                    }
                    .ok_or_else(|| WireError::Protocol(format!("job {id} not routed here")))?;
                    let (nb, adm) = self.place(&spec, Some(backend))?;
                    self.rerouted.fetch_add(1, Ordering::SeqCst);
                    let mut jobs = self.jobs.lock().unwrap();
                    if let Some(p) = jobs.get_mut(&id.as_u64()) {
                        p.backend = nb;
                        p.remote = adm.id;
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn lookup(&self, id: JobId) -> Result<(usize, JobId), WireError> {
        self.jobs
            .lock()
            .unwrap()
            .get(&id.as_u64())
            .map(|p| (p.backend, p.remote))
            .ok_or_else(|| WireError::Protocol(format!("job {id} not routed here")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(n: usize, gn: usize) -> WireJobSpec {
        let cfg = claire_core::RegistrationConfig { max_gn_iter: gn, ..Default::default() };
        WireJobSpec {
            label: "x".into(),
            tenant: String::new(),
            config: cfg,
            input: crate::wire::WireInput::Synthetic { n: [n, n, n] },
            priority: crate::job::Priority::Normal,
            deadline_ms: None,
        }
    }

    #[test]
    fn sharding_is_stable_and_ignores_identity() {
        let r = Router::new(&["a:1", "b:2", "c:3"]).unwrap();
        let base = spec(8, 5);
        let shard = r.shard_of(&base).unwrap();
        let mut relabeled = base.clone();
        relabeled.label = "other".into();
        relabeled.tenant = "someone".into();
        assert_eq!(r.shard_of(&relabeled), Some(shard), "identity must not move a job");
        let moved = (4..32).any(|n| r.shard_of(&spec(n, 5)) != r.shard_of(&spec(n, 6)));
        assert!(moved, "solver config must influence placement somewhere");
    }

    #[test]
    fn dead_backends_are_skipped() {
        let r = Router::new(&["a:1", "b:2"]).unwrap();
        let s = spec(8, 5);
        let first = r.shard_of(&s).unwrap();
        r.backends[first].alive.store(false, Ordering::SeqCst);
        let second = r.shard_of(&s).unwrap();
        assert_ne!(first, second);
        assert_eq!(r.alive_backends(), 1);
        r.backends[second].alive.store(false, Ordering::SeqCst);
        assert_eq!(r.shard_of(&s), None);
    }

    #[test]
    fn vnode_spread_is_reasonable() {
        let r = Router::new(&["a:1", "b:2", "c:3", "d:4"]).unwrap();
        let mut counts = [0usize; 4];
        for n in 4..132 {
            counts[r.shard_of(&spec(n, 5)).unwrap()] += 1;
        }
        for (b, &c) in counts.iter().enumerate() {
            assert!(c > 0, "backend {b} received nothing across 128 fingerprints");
        }
    }
}
