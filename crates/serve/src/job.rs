//! Typed job descriptions and results for the registration service.
//!
//! A [`JobSpec`] bundles everything one registration needs — the
//! [`RegistrationConfig`], the input images (or a synthetic problem size),
//! a priority class, an optional deadline, and optional [`SolverHooks`] —
//! and is validated *at admission*, so malformed work is rejected before it
//! occupies queue capacity. A finished job yields a [`JobResult`] carrying
//! the Table 6-style [`RegistrationReport`] plus the per-job
//! [`RunReport`](claire_obs::report::RunReport) with scheduling metadata.

use std::fmt;
use std::time::Duration;

use claire_core::{ClaireError, ClaireResult, RegistrationConfig, RegistrationReport, SolverHooks};
use claire_grid::ScalarField;
use claire_obs::report::RunReport;

/// Service-assigned job identifier, unique for the lifetime of one
/// [`RegistrationService`](crate::RegistrationService).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub(crate) u64);

impl JobId {
    /// The raw numeric id (also recorded in the report's scheduling block).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Reconstruct an id from its raw numeric form (e.g. out of a report's
    /// scheduling block). The service only knows ids it assigned itself;
    /// fabricated ids are simply unknown.
    pub fn from_u64(raw: u64) -> JobId {
        JobId(raw)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Error from parsing a [`JobId`]'s string form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseJobIdError(String);

impl fmt::Display for ParseJobIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid job id `{}` (expected `job-<number>`)", self.0)
    }
}

impl std::error::Error for ParseJobIdError {}

impl std::str::FromStr for JobId {
    type Err = ParseJobIdError;

    /// Parse the stable string form `job-<number>` produced by `Display`,
    /// so ids round-trip through the wire protocol and logs.
    fn from_str(s: &str) -> Result<JobId, ParseJobIdError> {
        s.strip_prefix("job-")
            .and_then(|raw| raw.parse::<u64>().ok())
            .map(JobId)
            .ok_or_else(|| ParseJobIdError(s.to_string()))
    }
}

/// Admission priority class. Within the queue, every `High` job runs before
/// any `Normal` job, which runs before any `Low` job; within a class, order
/// is FIFO.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive work (drained first).
    High,
    /// The default class.
    #[default]
    Normal,
    /// Background/batch work (drained last).
    Low,
}

impl Priority {
    /// Queue-lane index: 0 (high) … 2 (low).
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Lower-case label used in reports and the CLI manifest.
    pub fn label(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parse a manifest label (`high`/`normal`/`low`, case-insensitive).
    pub fn parse(s: &str) -> Option<Priority> {
        match s.to_ascii_lowercase().as_str() {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }
}

/// What a job registers.
pub enum JobInput {
    /// A concrete template/reference image pair (layouts must match).
    Pair {
        /// Template image `m0`.
        template: ScalarField,
        /// Reference image `m1`.
        reference: ScalarField,
    },
    /// The paper's analytic SYN problem at the given grid size, generated
    /// by the worker (useful for benchmarks and smoke tests).
    Synthetic {
        /// Grid extents n₁ × n₂ × n₃ (all must be nonzero).
        n: [usize; 3],
    },
}

impl JobInput {
    /// Grid extents of the input.
    pub fn grid(&self) -> [usize; 3] {
        match self {
            JobInput::Pair { template, .. } => template.layout().grid.n,
            JobInput::Synthetic { n } => *n,
        }
    }
}

/// A complete, self-contained description of one registration job.
pub struct JobSpec {
    /// Free-form label (dataset or experiment name; used in reports).
    pub label: String,
    /// Tenant name for quota accounting and the report's scheduling block
    /// (empty = the default tenant). Deliberately *not* part of the
    /// coalescing fingerprint or the result-cache key: a registration is a
    /// pure function of its images and config.
    pub tenant: String,
    /// Solver configuration.
    pub config: RegistrationConfig,
    /// Input images.
    pub input: JobInput,
    /// Admission priority class.
    pub priority: Priority,
    /// Wall-clock budget from *submission* (queue wait counts against it).
    pub deadline: Option<Duration>,
    /// Caller-supplied hooks. A caller-provided cancel token is honoured
    /// (the service arms the deadline on it and polls it); otherwise the
    /// service creates its own. `on_gn_iter` observers are forwarded.
    pub hooks: SolverHooks,
}

impl JobSpec {
    /// A normal-priority job with no deadline and no hooks.
    pub fn new(label: impl Into<String>, config: RegistrationConfig, input: JobInput) -> JobSpec {
        JobSpec {
            label: label.into(),
            tenant: String::new(),
            config,
            input,
            priority: Priority::default(),
            deadline: None,
            hooks: SolverHooks::default(),
        }
    }

    /// Set the tenant name for quota accounting.
    pub fn tenant(mut self, tenant: impl Into<String>) -> JobSpec {
        self.tenant = tenant.into();
        self
    }

    /// Set the priority class.
    pub fn priority(mut self, p: Priority) -> JobSpec {
        self.priority = p;
        self
    }

    /// Set a wall-clock deadline measured from submission.
    pub fn deadline(mut self, d: Duration) -> JobSpec {
        self.deadline = Some(d);
        self
    }

    /// Attach solver hooks (external cancel token and/or GN observer).
    pub fn hooks(mut self, hooks: SolverHooks) -> JobSpec {
        self.hooks = hooks;
        self
    }

    /// Admission-time validation: solver config plus input well-formedness.
    pub fn validate(&self) -> ClaireResult<()> {
        self.config.validate()?;
        match &self.input {
            JobInput::Synthetic { n } => {
                // Grid::new asserts >= 2 points per dim; reject at admission
                if n.iter().any(|&d| d < 2) {
                    return Err(ClaireError::Config {
                        param: "grid",
                        message: format!("extents must all be >= 2, got {n:?}"),
                    });
                }
            }
            JobInput::Pair { template, reference } => {
                if template.layout() != reference.layout() {
                    return Err(ClaireError::LayoutMismatch {
                        context: "JobSpec::validate",
                        message: format!(
                            "template grid {:?} vs reference grid {:?}",
                            template.layout().grid.n,
                            reference.layout().grid.n
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Lifecycle state of a job. Terminal states are permanent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting in the queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished with a registration result.
    Succeeded,
    /// Finished with an error (including a panicking solve).
    Failed,
    /// Stopped through its cancel token before producing a result.
    Cancelled,
    /// Stopped because its deadline passed (possibly while still queued).
    DeadlineExpired,
}

impl JobStatus {
    /// Whether this state is final.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running)
    }

    /// Parse a wire/report label back into a status.
    pub fn parse(s: &str) -> Option<JobStatus> {
        match s {
            "queued" => Some(JobStatus::Queued),
            "running" => Some(JobStatus::Running),
            "succeeded" => Some(JobStatus::Succeeded),
            "failed" => Some(JobStatus::Failed),
            "cancelled" => Some(JobStatus::Cancelled),
            "deadline_expired" => Some(JobStatus::DeadlineExpired),
            _ => None,
        }
    }

    /// Lower-case label used in reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Succeeded => "succeeded",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::DeadlineExpired => "deadline_expired",
        }
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Outcome of one job. The velocity field itself is *not* retained — it can
/// be several GiB at paper scale; callers who need it should register
/// directly through [`Claire`](claire_core::Claire).
#[derive(Clone)]
pub struct JobResult {
    /// The id assigned at submission.
    pub id: JobId,
    /// The spec's label.
    pub label: String,
    /// Terminal status.
    pub status: JobStatus,
    /// Table 6-style solve report (`Succeeded` only).
    pub report: Option<RegistrationReport>,
    /// Unified per-job run report with scheduling metadata (`Succeeded`
    /// only, and only when the service collects reports).
    pub run: Option<RunReport>,
    /// Error text (`Failed`/`Cancelled`/`DeadlineExpired`).
    pub error: Option<String>,
    /// Whether this result was served from the content-hash result cache
    /// (a verbatim clone of an earlier solve, no new solver run).
    pub from_cache: bool,
    /// Time spent queued between submission and execution start.
    pub queue_wait: Duration,
    /// Time spent executing on the worker.
    pub run_time: Duration,
    /// End-to-end time from submission to the terminal status.
    pub total: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(input: JobInput) -> JobSpec {
        JobSpec::new("unit", RegistrationConfig::default(), input)
    }

    #[test]
    fn priority_lanes_and_labels() {
        assert_eq!(Priority::High.index(), 0);
        assert_eq!(Priority::Normal.index(), 1);
        assert_eq!(Priority::Low.index(), 2);
        for p in [Priority::High, Priority::Normal, Priority::Low] {
            assert_eq!(Priority::parse(p.label()), Some(p));
        }
        assert_eq!(Priority::parse("HIGH"), Some(Priority::High));
        assert_eq!(Priority::parse("urgent"), None);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn job_id_string_form_round_trips() {
        let id = JobId::from_u64(42);
        assert_eq!(id.to_string(), "job-42");
        assert_eq!("job-42".parse::<JobId>().unwrap(), id);
        assert_eq!("job-0".parse::<JobId>().unwrap().as_u64(), 0);
        for bad in ["42", "job-", "job--3", "job-1x", "JOB-42", " job-42"] {
            let err = bad.parse::<JobId>().unwrap_err();
            assert!(err.to_string().contains(bad.trim()), "{err}");
        }
    }

    #[test]
    fn status_labels_round_trip() {
        for s in [
            JobStatus::Queued,
            JobStatus::Running,
            JobStatus::Succeeded,
            JobStatus::Failed,
            JobStatus::Cancelled,
            JobStatus::DeadlineExpired,
        ] {
            assert_eq!(JobStatus::parse(s.label()), Some(s));
        }
        assert_eq!(JobStatus::parse("exploded"), None);
    }

    #[test]
    fn terminal_states() {
        assert!(!JobStatus::Queued.is_terminal());
        assert!(!JobStatus::Running.is_terminal());
        for s in [
            JobStatus::Succeeded,
            JobStatus::Failed,
            JobStatus::Cancelled,
            JobStatus::DeadlineExpired,
        ] {
            assert!(s.is_terminal(), "{s} must be terminal");
        }
    }

    #[test]
    fn validate_rejects_zero_grid_and_bad_config() {
        let err = spec(JobInput::Synthetic { n: [8, 0, 8] }).validate().unwrap_err();
        assert!(err.to_string().contains(">= 2"), "{err}");
        assert!(spec(JobInput::Synthetic { n: [8, 8, 1] }).validate().is_err());

        let mut bad = spec(JobInput::Synthetic { n: [8, 8, 8] });
        bad.config.nt = 0;
        assert!(bad.validate().is_err(), "invalid solver config must be rejected");
    }

    #[test]
    fn validate_rejects_mismatched_pair() {
        use claire_grid::{Grid, Layout};
        let a = ScalarField::zeros(Layout::serial(Grid::cube(8)));
        let b = ScalarField::zeros(Layout::serial(Grid::cube(16)));
        let err = spec(JobInput::Pair { template: a, reference: b }).validate().unwrap_err();
        assert!(matches!(err, ClaireError::LayoutMismatch { .. }), "{err}");
    }
}
