//! Per-tenant token-bucket admission quotas.
//!
//! Layered *in front of* the 3-lane priority queue: a submission first
//! spends one token from its tenant's bucket, then competes for queue
//! capacity like any other job. Buckets refill continuously at
//! [`QuotaConfig::per_sec`] up to a burst capacity, so a tenant can spike
//! to `burst` back-to-back submissions but sustains only `per_sec` jobs per
//! second — one greedy tenant cannot starve the queue for everyone else.
//! Tenants are identified by [`JobSpec::tenant`](crate::JobSpec::tenant);
//! the empty string is the (shared) default tenant.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Token-bucket parameters applied to every tenant independently.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QuotaConfig {
    /// Bucket capacity: submissions a tenant may burst back-to-back.
    pub burst: f64,
    /// Sustained refill rate in submissions per second.
    pub per_sec: f64,
}

impl QuotaConfig {
    /// A quota allowing `burst` back-to-back jobs refilling at `per_sec`.
    pub fn new(burst: f64, per_sec: f64) -> QuotaConfig {
        QuotaConfig { burst, per_sec }
    }
}

struct Bucket {
    tokens: f64,
    refreshed: Instant,
}

/// One token bucket per tenant, created lazily at first submission.
pub struct TenantQuotas {
    cfg: QuotaConfig,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TenantQuotas {
    /// Empty ledger with the given per-tenant parameters.
    pub fn new(cfg: QuotaConfig) -> TenantQuotas {
        TenantQuotas { cfg, buckets: Mutex::new(HashMap::new()) }
    }

    /// Spend one token from `tenant`'s bucket. On an empty bucket, returns
    /// the duration until one token will have refilled (a retry-after
    /// hint); the bucket is left untouched.
    pub fn try_take(&self, tenant: &str) -> Result<(), Duration> {
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap();
        let bucket = buckets
            .entry(tenant.to_string())
            .or_insert_with(|| Bucket { tokens: self.cfg.burst, refreshed: now });
        let elapsed = now.saturating_duration_since(bucket.refreshed).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.cfg.per_sec).min(self.cfg.burst);
        bucket.refreshed = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else if self.cfg.per_sec > 0.0 {
            Err(Duration::from_secs_f64((1.0 - bucket.tokens) / self.cfg.per_sec))
        } else {
            Err(Duration::MAX)
        }
    }

    /// Tokens currently available to `tenant` (diagnostics; does not spend).
    pub fn available(&self, tenant: &str) -> f64 {
        let now = Instant::now();
        let buckets = self.buckets.lock().unwrap();
        match buckets.get(tenant) {
            None => self.cfg.burst,
            Some(b) => {
                let elapsed = now.saturating_duration_since(b.refreshed).as_secs_f64();
                (b.tokens + elapsed * self.cfg.per_sec).min(self.cfg.burst)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_refusal_with_retry_hint() {
        let q = TenantQuotas::new(QuotaConfig::new(3.0, 10.0));
        for _ in 0..3 {
            assert!(q.try_take("t").is_ok());
        }
        let retry = q.try_take("t").unwrap_err();
        // a full token refills in 1/per_sec = 100 ms
        assert!(retry <= Duration::from_millis(150), "retry-after {retry:?}");
        assert!(retry > Duration::ZERO);
    }

    #[test]
    fn tenants_are_isolated() {
        let q = TenantQuotas::new(QuotaConfig::new(1.0, 0.001));
        assert!(q.try_take("a").is_ok());
        assert!(q.try_take("a").is_err(), "tenant a exhausted");
        assert!(q.try_take("b").is_ok(), "tenant b unaffected");
        assert!(q.try_take("").is_ok(), "default tenant unaffected");
    }

    #[test]
    fn bucket_refills_over_time() {
        let q = TenantQuotas::new(QuotaConfig::new(1.0, 1000.0));
        assert!(q.try_take("t").is_ok());
        // at 1000 tokens/s even a short sleep fully refills
        std::thread::sleep(Duration::from_millis(5));
        assert!(q.try_take("t").is_ok());
        assert!(q.available("t") <= 1.0);
    }

    #[test]
    fn zero_rate_never_refills() {
        let q = TenantQuotas::new(QuotaConfig::new(1.0, 0.0));
        assert!(q.try_take("t").is_ok());
        assert_eq!(q.try_take("t").unwrap_err(), Duration::MAX);
    }
}
