//! claire-serve: an in-process multi-tenant registration job service.
//!
//! The paper runs CLAIRE as a batch solver — one registration per
//! invocation. Real deployments (clinical pipelines, atlas construction,
//! the paper's §1 "registering hundreds of images" motivation) need many
//! registrations multiplexed over one machine's cores. This crate provides
//! that layer on plain std threads and channels:
//!
//! * **Typed jobs** — [`JobSpec`] (config + inputs + priority + deadline +
//!   hooks) in, [`JobResult`] (status + reports + latency breakdown) out;
//! * **Bounded admission** — a capacity-limited priority queue;
//!   [`RegistrationService::try_submit`] rejects under overload (open-loop
//!   backpressure), [`RegistrationService::submit`] blocks (closed-loop);
//! * **Deadlines & cancellation** — armed on the job's
//!   [`CancelToken`](claire_core::CancelToken) at submission and polled by
//!   the solver at every Gauss–Newton iteration boundary, so a cancel takes
//!   effect within one iteration without poisoning the worker;
//! * **Thread partitioning** — each worker pins
//!   `total_threads / workers` kernel threads via
//!   `claire_par::set_local_threads`, so concurrent jobs never
//!   oversubscribe the machine;
//! * **Graceful shutdown** — [`RegistrationService::shutdown`] drains every
//!   admitted job and rejects new ones; `shutdown_now` cancels instead.
//!
//! ```no_run
//! use claire_serve::{JobInput, JobSpec, RegistrationService, ServiceConfig};
//! let cfg = claire_core::RegistrationConfig::default();
//! let mut svc = RegistrationService::start(ServiceConfig::default().workers(2));
//! let id = svc
//!     .submit(JobSpec::new("syn-64", cfg, JobInput::Synthetic { n: [64, 64, 64] }))
//!     .expect("admission");
//! let result = svc.wait(id).expect("known job");
//! println!("{}: {}", result.label, result.status);
//! svc.shutdown();
//! ```

pub mod job;
pub mod queue;
pub mod service;

pub use job::{JobId, JobInput, JobResult, JobSpec, JobStatus, Priority};
pub use queue::{BoundedQueue, PushError};
pub use service::{RegistrationService, ServiceConfig, SubmitError};
