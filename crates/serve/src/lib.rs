//! claire-serve: a multi-tenant registration job service, in-process or
//! over TCP.
//!
//! The paper runs CLAIRE as a batch solver — one registration per
//! invocation. Real deployments (clinical pipelines, atlas construction,
//! the paper's §1 "registering hundreds of images" motivation) need many
//! registrations multiplexed over machines. This crate provides that layer
//! on plain std threads, channels, and sockets:
//!
//! * **Typed jobs** — [`JobSpec`] (config + inputs + priority + deadline +
//!   hooks) in, [`JobResult`] (status + reports + latency breakdown) out;
//! * **Bounded admission** — a capacity-limited priority queue;
//!   [`RegistrationService::try_submit`] rejects under overload (open-loop
//!   backpressure), [`RegistrationService::submit`] blocks (closed-loop);
//! * **Deadlines & cancellation** — armed on the job's
//!   [`CancelToken`](claire_core::CancelToken) at submission and polled by
//!   the solver at every Gauss–Newton iteration boundary;
//! * **Result cache & quotas** — a content-hash [`cache`] that serves
//!   repeated identical registrations without solving, and per-tenant
//!   token-bucket [`quota`]s checked at admission;
//! * **Networking** — [`server::NetServer`] puts the service behind a
//!   length-framed, versioned JSON protocol ([`wire`]); [`client::Client`]
//!   is the matching blocking client; [`router::Router`] shards jobs
//!   across several servers by consistent-hashing the solver fingerprint
//!   so batch coalescing keeps working fleet-wide.
//!
//! The crate splits server from client: embed
//! [`server::RegistrationService`] (or [`server::NetServer`]) in a daemon;
//! link only [`client::Client`] + [`wire`] types in tools that submit.
//!
//! ```no_run
//! use claire_serve::{JobInput, JobSpec, RegistrationService, ServiceConfig};
//! let cfg = claire_core::RegistrationConfig::default();
//! let mut svc = RegistrationService::start(ServiceConfig::default().workers(2));
//! let id = svc
//!     .submit(JobSpec::new("syn-64", cfg, JobInput::Synthetic { n: [64, 64, 64] }))
//!     .expect("admission");
//! let result = svc.wait(id).expect("known job");
//! println!("{}: {}", result.label, result.status);
//! svc.shutdown();
//! ```

pub mod cache;
pub mod client;
pub mod job;
pub mod queue;
pub mod quota;
pub mod router;
pub mod server;
pub mod wire;

/// Pre-split location of the service types (moved to [`server::service`]).
#[deprecated(note = "use `claire_serve::server::service` (or the root re-exports)")]
pub mod service {
    pub use crate::server::service::*;
}

pub use cache::ResultCacheStats;
pub use client::{Client, RemoteAdmission};
pub use job::{JobId, JobInput, JobResult, JobSpec, JobStatus, ParseJobIdError, Priority};
pub use queue::{BoundedQueue, PushError};
pub use quota::QuotaConfig;
pub use router::Router;
pub use server::{
    Admission, NetServer, NetServerConfig, RegistrationService, ServiceConfig, SubmitError,
};
pub use wire::{
    ErrorCode, RemoteJobResult, Request, Response, StreamEvent, WireError, WireInput, WireJobSpec,
    PROTOCOL_VERSION,
};
