//! Server half of the claire-serve split.
//!
//! [`service`] is the in-process engine — worker pool, bounded priority
//! queue, batching, cache, quotas. [`net`] puts that engine behind a TCP
//! listener speaking the versioned frame protocol in [`crate::wire`], so
//! remote [`crate::client::Client`]s can submit work.

pub mod net;
pub mod service;

pub use net::{NetServer, NetServerConfig};
pub use service::{Admission, RegistrationService, ServiceConfig, SubmitError};
