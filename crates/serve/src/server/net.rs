//! TCP front door for a [`RegistrationService`].
//!
//! [`NetServer`] binds a listener, performs the [`crate::wire`] `Hello`
//! handshake on every connection (refusing incompatible
//! [`PROTOCOL_VERSION`]s with a typed error), and serves the full request
//! envelope: `Submit`, `Status`, `Cancel`, `Result`, and `Stream`.
//!
//! Streaming rides the solver's [`SolverHooks::on_gn_iter`] seam: at
//! submission the server splices a hook that publishes each Gauss–Newton
//! iteration index into a per-job [`Hub`]; a later `Stream` request replays
//! the buffered iterations and then follows live until the job is
//! terminal, so subscribers see `Queued → Running → GnIter* → Terminal`
//! regardless of when they attach. Cache hits skip the solver entirely and
//! stream straight to `Terminal`.
//!
//! One thread per connection, 100 ms read timeouts as poll ticks, and a
//! stop flag checked on every tick make shutdown deterministic: stop the
//! accept loop, join the connection threads, then drain the service.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use claire_core::SolverHooks;

use crate::job::{JobId, JobStatus};
use crate::server::service::{RegistrationService, ServiceConfig, SubmitError};
use crate::wire::{
    decode_request, read_frame, send, ErrorCode, RemoteJobResult, Request, Response, StreamEvent,
    WireError, PROTOCOL_VERSION,
};

/// Poll tick for connection reads and stream waits.
const TICK: Duration = Duration::from_millis(100);

/// How a [`NetServer`] is sized and identified.
#[derive(Clone, Debug)]
pub struct NetServerConfig {
    /// Configuration for the embedded [`RegistrationService`].
    pub service: ServiceConfig,
    /// Server identification returned in the `Hello` handshake.
    pub name: String,
    /// Largest request frame accepted (guards allocation; see
    /// [`crate::wire::MAX_FRAME_BYTES`] for the protocol ceiling).
    pub max_frame_bytes: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            service: ServiceConfig::default(),
            name: "claire-serve".to_string(),
            max_frame_bytes: crate::wire::MAX_FRAME_BYTES,
        }
    }
}

impl NetServerConfig {
    /// Set the embedded service configuration.
    pub fn service(mut self, cfg: ServiceConfig) -> Self {
        self.service = cfg;
        self
    }

    /// Set the handshake server name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Cap accepted request frames at `bytes`.
    pub fn max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }
}

/// Per-job event hub: the solver-side hook pushes Gauss–Newton iteration
/// indices, stream subscribers replay and then follow.
struct Hub {
    iters: Mutex<Vec<usize>>,
    cv: Condvar,
}

impl Hub {
    fn new() -> Hub {
        Hub { iters: Mutex::new(Vec::new()), cv: Condvar::new() }
    }

    fn push(&self, iter: usize) {
        self.iters.lock().unwrap().push(iter);
        self.cv.notify_all();
    }

    /// Copy iterations `[from..]`, waiting up to `timeout` if none are new.
    fn drain_from(&self, from: usize, timeout: Duration) -> Vec<usize> {
        let mut iters = self.iters.lock().unwrap();
        if iters.len() <= from {
            let (guard, _) = self.cv.wait_timeout(iters, timeout).unwrap();
            iters = guard;
        }
        iters.get(from..).map(<[usize]>::to_vec).unwrap_or_default()
    }
}

/// State shared between the accept loop and every connection thread.
struct NetShared {
    svc: RegistrationService,
    hubs: Mutex<HashMap<u64, Arc<Hub>>>,
    stop: AtomicBool,
    name: String,
    max_frame: usize,
}

/// A TCP server wrapping a [`RegistrationService`].
///
/// ```no_run
/// use claire_serve::server::{NetServer, NetServerConfig};
/// let mut srv = NetServer::bind("127.0.0.1:0", NetServerConfig::default()).unwrap();
/// println!("listening on {}", srv.local_addr());
/// // ... clients connect ...
/// srv.shutdown();
/// ```
pub struct NetServer {
    shared: Arc<NetShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Bind `addr`, start the embedded service, and begin accepting.
    pub fn bind(addr: impl ToSocketAddrs, cfg: NetServerConfig) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(NetShared {
            svc: RegistrationService::start(cfg.service),
            hubs: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
            name: cfg.name,
            max_frame: cfg.max_frame_bytes,
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            thread::Builder::new()
                .name("claire-net-accept".into())
                .spawn(move || accept_loop(listener, shared, conns))
                .expect("spawn accept thread")
        };
        Ok(NetServer { shared, addr: local, accept: Some(accept), conns })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The embedded service (counters, cache stats, direct submission).
    pub fn service(&self) -> &RegistrationService {
        &self.shared.svc
    }

    /// Stop accepting, join connection threads, drain the service.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.conns.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        // Every connection thread has dropped its Arc, so the service can
        // be drained in place; if a clone somehow leaked, dropping the
        // server still shuts the pool down via RegistrationService::drop.
        if let Some(shared) = Arc::get_mut(&mut self.shared) {
            shared.svc.shutdown();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shutdown();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<NetShared>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(&shared);
                let handle = thread::Builder::new()
                    .name("claire-net-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, &shared);
                    })
                    .expect("spawn connection thread");
                conns.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Run one connection to completion: handshake, then a request loop.
fn serve_connection(mut stream: TcpStream, shared: &NetShared) -> Result<(), WireError> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(TICK))?;

    // Handshake: the first frame must be a version-compatible Hello.
    loop {
        match read_frame(&mut stream, shared.max_frame) {
            Ok(bytes) => match decode_request(&bytes) {
                Ok(Request::Hello { protocol, client: _ }) if protocol == PROTOCOL_VERSION => {
                    send(
                        &mut stream,
                        &Response::Hello {
                            protocol: PROTOCOL_VERSION,
                            server: shared.name.clone(),
                        },
                    )?;
                    break;
                }
                Ok(Request::Hello { protocol, .. }) => {
                    send(
                        &mut stream,
                        &Response::Error {
                            code: ErrorCode::VersionMismatch,
                            message: format!(
                                "server speaks protocol {PROTOCOL_VERSION}, client sent {protocol}"
                            ),
                        },
                    )?;
                    return Err(WireError::VersionMismatch {
                        ours: PROTOCOL_VERSION,
                        theirs: protocol,
                    });
                }
                Ok(_) => {
                    send(
                        &mut stream,
                        &Response::Error {
                            code: ErrorCode::Unsupported,
                            message: "first frame must be Hello".into(),
                        },
                    )?;
                    return Err(WireError::Protocol("first frame must be Hello".into()));
                }
                Err(e) => {
                    send(
                        &mut stream,
                        &Response::Error { code: ErrorCode::Malformed, message: e.to_string() },
                    )?;
                    return Err(e);
                }
            },
            Err(WireError::Timeout) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(WireError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        }
    }

    // Request loop.
    loop {
        let bytes = match read_frame(&mut stream, shared.max_frame) {
            Ok(b) => b,
            Err(WireError::Timeout) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(WireError::Closed) => return Ok(()),
            Err(e) => return Err(e),
        };
        let req = match decode_request(&bytes) {
            Ok(r) => r,
            Err(e) => {
                send(
                    &mut stream,
                    &Response::Error { code: ErrorCode::Malformed, message: e.to_string() },
                )?;
                continue;
            }
        };
        match req {
            Request::Hello { .. } => {
                // Idempotent re-greeting is harmless; re-acknowledge.
                send(
                    &mut stream,
                    &Response::Hello { protocol: PROTOCOL_VERSION, server: shared.name.clone() },
                )?;
            }
            Request::Submit { spec } => handle_submit(&mut stream, shared, spec)?,
            Request::Status { id } => match shared.svc.status(id) {
                Some(status) => send(&mut stream, &Response::Status { id, status })?,
                None => send_unknown(&mut stream, id)?,
            },
            Request::Cancel { id } => {
                let delivered = shared.svc.cancel(id);
                send(&mut stream, &Response::Cancelled { id, delivered })?;
            }
            Request::Result { id } => match wait_result(shared, id) {
                Some(result) => {
                    shared.hubs.lock().unwrap().remove(&id.as_u64());
                    send(&mut stream, &Response::Result { result })?;
                }
                None => send_unknown(&mut stream, id)?,
            },
            Request::Stream { id } => handle_stream(&mut stream, shared, id)?,
        }
    }
}

fn send_unknown(stream: &mut TcpStream, id: JobId) -> Result<(), WireError> {
    send(stream, &Response::Error { code: ErrorCode::UnknownJob, message: format!("no job {id}") })
}

fn handle_submit(
    stream: &mut TcpStream,
    shared: &NetShared,
    spec: crate::wire::WireJobSpec,
) -> Result<(), WireError> {
    let mut spec = match spec.into_spec() {
        Ok(s) => s,
        Err(e) => {
            return send(
                stream,
                &Response::Error { code: ErrorCode::InvalidSpec, message: e.to_string() },
            );
        }
    };
    // Splice the streaming hook before admission so no iteration is lost.
    let hub = Arc::new(Hub::new());
    let publish = Arc::clone(&hub);
    spec.hooks =
        SolverHooks { cancel: None, on_gn_iter: Some(Arc::new(move |iter| publish.push(iter))) };
    match shared.svc.try_submit_traced(spec) {
        Ok(adm) => {
            if !adm.cached {
                shared.hubs.lock().unwrap().insert(adm.id.as_u64(), hub);
            }
            send(stream, &Response::Submitted { id: adm.id, cached: adm.cached })
        }
        Err(e) => {
            let code = match &e {
                SubmitError::QueueFull => ErrorCode::QueueFull,
                SubmitError::ShuttingDown => ErrorCode::ShuttingDown,
                SubmitError::Invalid(_) => ErrorCode::InvalidSpec,
                SubmitError::QuotaExceeded { .. } => ErrorCode::QuotaExceeded,
            };
            send(stream, &Response::Error { code, message: e.to_string() })
        }
    }
}

/// Wait for a terminal result, bounded by the stop flag.
fn wait_result(shared: &NetShared, id: JobId) -> Option<crate::wire::RemoteJobResult> {
    shared.svc.wait(id).map(|r| RemoteJobResult::from_result(&r))
}

fn handle_stream(stream: &mut TcpStream, shared: &NetShared, id: JobId) -> Result<(), WireError> {
    if shared.svc.status(id).is_none() {
        return send_unknown(stream, id);
    }
    let hub = shared.hubs.lock().unwrap().get(&id.as_u64()).cloned();
    send(stream, &Response::Event { id, event: StreamEvent::Queued })?;
    let mut sent_running = false;
    let mut next = 0usize;
    loop {
        // Read the status *before* draining the hub: iterations published
        // before the job went terminal are still replayed afterwards.
        let status = shared
            .svc
            .status(id)
            .ok_or_else(|| WireError::Protocol(format!("job {id} vanished mid-stream")))?;
        if !sent_running && status != JobStatus::Queued {
            sent_running = true;
            send(stream, &Response::Event { id, event: StreamEvent::Running })?;
        }
        // Iterations are only relayed once `Running` went out; nothing is
        // lost because the hub replays from `next` on the following tick.
        let fresh = if sent_running {
            match &hub {
                Some(hub) if status.is_terminal() => hub.drain_from(next, Duration::ZERO),
                Some(hub) => hub.drain_from(next, TICK),
                None => Vec::new(),
            }
        } else {
            Vec::new()
        };
        for iter in fresh {
            next += 1;
            send(stream, &Response::Event { id, event: StreamEvent::GnIter { iter } })?;
        }
        if status.is_terminal() {
            return send(stream, &Response::Event { id, event: StreamEvent::Terminal { status } });
        }
        if !sent_running || hub.is_none() {
            std::thread::sleep(TICK);
        }
        if shared.stop.load(Ordering::SeqCst) {
            return send(
                stream,
                &Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "server shutting down".into(),
                },
            );
        }
    }
}
