//! The registration job service: admission, scheduling, execution,
//! shutdown.
//!
//! A [`RegistrationService`] owns a worker pool and a bounded priority
//! queue. Jobs are validated and assigned a [`JobId`] at admission;
//! [`RegistrationService::try_submit`] rejects when the queue is full
//! (open-loop backpressure) while [`RegistrationService::submit`] blocks
//! (closed-loop). Each worker pins a share of the machine's thread budget
//! via `claire_par::set_local_threads`, so `workers × per-worker threads`
//! never oversubscribes the cores the kernels would otherwise assume are
//! all theirs. Deadlines are armed on the job's [`CancelToken`] at
//! submission — queue wait counts against the budget — and the solver polls
//! the token at every Gauss–Newton iteration boundary, so cancellation
//! takes effect within one iteration. A panicking solve is caught and
//! reported as [`JobStatus::Failed`] without poisoning the pool.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use claire_core::{
    BatchPair, BatchSolver, CancelToken, Claire, ClaireError, MemberMemStats, RegistrationConfig,
    RegistrationReport, SolverHooks,
};
use claire_fft::cache as fft_cache;
use claire_grid::workspace;
use claire_mpi::{CollOp, Comm, CommCat};
use claire_obs::metrics::{Counter, Gauge, Histogram};
use claire_obs::report::{
    CollectiveEntry, CommPhaseEntry, MemoryCatEntry, MemoryInfo, PhaseShares, RooflineInfo,
    RunReport, RunSummary, SchedulingInfo,
};
use claire_obs::span;

use crate::cache::{content_key, ResultCache, ResultCacheStats};
use crate::job::{JobId, JobInput, JobResult, JobSpec, JobStatus, Priority};
use crate::queue::{BoundedQueue, PushError};
use crate::quota::{QuotaConfig, TenantQuotas};

static QUEUE_DEPTH: Gauge = Gauge::new("serve.queue.depth");
static QUEUE_WAIT: Histogram = Histogram::new("serve.queue.wait_secs");
static SUBMITTED: Counter = Counter::new("serve.jobs.submitted");
static REJECTED: Counter = Counter::new("serve.jobs.rejected");
static COMPLETED: Counter = Counter::new("serve.jobs.completed");
static CANCELLED: Counter = Counter::new("serve.jobs.cancelled");
static DEADLINE_EXPIRED: Counter = Counter::new("serve.jobs.deadline_expired");
static FAILED: Counter = Counter::new("serve.jobs.failed");
static BATCHES: Counter = Counter::new("serve.batches.executed");
static BATCHED_JOBS: Counter = Counter::new("serve.batches.jobs");
static CACHE_HITS: Counter = Counter::new("serve.cache.hits");
static CACHE_MISSES: Counter = Counter::new("serve.cache.misses");
static QUOTA_REJECTED: Counter = Counter::new("serve.jobs.quota_rejected");
static SOLVER_RUNS: Counter = Counter::new("serve.solver.runs");

/// Why a submission was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is at capacity (only from
    /// [`RegistrationService::try_submit`]).
    QueueFull,
    /// The service is shutting down and no longer accepts work.
    ShuttingDown,
    /// The spec failed admission validation.
    Invalid(ClaireError),
    /// The tenant's token bucket is empty; retry after the hinted duration.
    QuotaExceeded {
        /// Tenant whose bucket ran dry.
        tenant: String,
        /// Time until one token will have refilled.
        retry_after: Duration,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "admission queue is full"),
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
            SubmitError::Invalid(e) => write!(f, "invalid job spec: {e}"),
            SubmitError::QuotaExceeded { tenant, retry_after } => write!(
                f,
                "tenant `{tenant}` exceeded its submission quota; retry in {:.3} s",
                retry_after.as_secs_f64()
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Service sizing and behaviour.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Concurrent worker threads (each runs one job at a time).
    pub workers: usize,
    /// Admission-queue capacity shared across priority lanes.
    pub queue_capacity: usize,
    /// Machine thread budget partitioned across workers; 0 means "use
    /// `claire_par::num_threads()`" (the ambient resolution).
    pub total_threads: usize,
    /// Whether workers assemble a per-job [`RunReport`] (spans, comm
    /// volume, scheduling metadata) for succeeded jobs.
    pub collect_reports: bool,
    /// Batch-aware scheduling: when a worker pops a job it also drains
    /// queued jobs with the same grid/config fingerprint from the *same*
    /// priority lane and solves them as one
    /// [`BatchSolver`](claire_core::BatchSolver) run — amortizing FFT
    /// planning, pool warm-up, and preconditioner scaffolding, and
    /// interleaving the Gauss–Newton iterations. Per-job deadlines,
    /// cancellation, priorities, and [`RunReport`]s are preserved; results
    /// are bitwise identical to solo runs.
    pub batching: bool,
    /// Largest batch one worker coalesces (≥ 2 to ever coalesce; the head
    /// job counts). Only read when `batching` is on.
    pub max_batch: usize,
    /// Content-hash result-cache capacity in entries (0 disables the
    /// cache). When on, a submission whose images and config hash to a
    /// previously *succeeded* job's content key completes immediately with
    /// a clone of the cached result — no queueing, no solve. Off by
    /// default: in-process callers often submit identical specs on purpose
    /// (benchmarks, coalescing); the network front door enables it.
    pub result_cache: usize,
    /// Per-tenant token-bucket admission quota (None = unlimited). Checked
    /// before queue capacity and before the result cache, so a tenant
    /// cannot launder load through cache hits.
    pub quota: Option<QuotaConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            total_threads: 0,
            collect_reports: true,
            batching: false,
            max_batch: 8,
            result_cache: 0,
            quota: None,
        }
    }
}

impl ServiceConfig {
    /// Set the worker count (clamped to ≥ 1 at start).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Set the admission-queue capacity (clamped to ≥ 1 at start).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Set the machine thread budget to partition across workers.
    pub fn total_threads(mut self, n: usize) -> Self {
        self.total_threads = n;
        self
    }

    /// Enable or disable per-job [`RunReport`] assembly.
    pub fn collect_reports(mut self, on: bool) -> Self {
        self.collect_reports = on;
        self
    }

    /// Enable or disable batch-aware scheduling (job coalescing).
    pub fn batching(mut self, on: bool) -> Self {
        self.batching = on;
        self
    }

    /// Set the largest batch one worker coalesces.
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n;
        self
    }

    /// Set the result-cache capacity (0 disables).
    pub fn result_cache(mut self, entries: usize) -> Self {
        self.result_cache = entries;
        self
    }

    /// Set the per-tenant admission quota.
    pub fn quota(mut self, q: QuotaConfig) -> Self {
        self.quota = Some(q);
        self
    }
}

/// What a (traced) submission produced: the assigned id, and whether the
/// result was served straight from the content-hash cache (in which case
/// the job is already terminal).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Admission {
    /// Service-assigned job id.
    pub id: JobId,
    /// `true` when the result came from the cache without queueing.
    pub cached: bool,
}

/// A job admitted to the queue.
struct QueuedJob {
    id: u64,
    spec: JobSpec,
    token: CancelToken,
    submitted: Instant,
    deadline: Option<Duration>,
    /// Content key computed at admission (Some iff the cache is enabled);
    /// a succeeded result is stored under it.
    cache_key: Option<u128>,
}

struct JobEntry {
    status: JobStatus,
    token: CancelToken,
    result: Option<JobResult>,
}

struct Shared {
    queue: BoundedQueue<QueuedJob>,
    jobs: Mutex<HashMap<u64, JobEntry>>,
    done: Condvar,
    accepting: AtomicBool,
    next_id: AtomicU64,
    next_batch_id: AtomicU64,
    cache: Option<ResultCache>,
    quotas: Option<TenantQuotas>,
    /// Solver invocations (batched runs count once) — the counter the
    /// cache-bypass tests assert against. Per-service, unlike the obs
    /// counters, which are global and gated on observability being on.
    solver_runs: AtomicU64,
}

impl Shared {
    fn finish(&self, id: u64, result: JobResult) {
        match result.status {
            JobStatus::Succeeded => COMPLETED.inc(),
            JobStatus::Cancelled => CANCELLED.inc(),
            JobStatus::DeadlineExpired => DEADLINE_EXPIRED.inc(),
            _ => FAILED.inc(),
        }
        let mut jobs = self.jobs.lock().unwrap();
        if let Some(entry) = jobs.get_mut(&id) {
            entry.status = result.status;
            entry.result = Some(result);
        }
        drop(jobs);
        self.done.notify_all();
    }

    fn set_status(&self, id: u64, status: JobStatus) {
        if let Some(entry) = self.jobs.lock().unwrap().get_mut(&id) {
            entry.status = status;
        }
    }
}

/// An in-process multi-tenant registration job service.
///
/// Dropping the service performs an immediate shutdown (cancelling queued
/// and running jobs); call [`RegistrationService::shutdown`] for a graceful
/// drain.
pub struct RegistrationService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    per_worker_threads: usize,
}

impl RegistrationService {
    /// Start the worker pool.
    pub fn start(cfg: ServiceConfig) -> RegistrationService {
        let workers = cfg.workers.max(1);
        let capacity = cfg.queue_capacity.max(1);
        let machine =
            if cfg.total_threads > 0 { cfg.total_threads } else { claire_par::num_threads() };
        let per_worker = (machine / workers).max(1);

        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(capacity),
            jobs: Mutex::new(HashMap::new()),
            done: Condvar::new(),
            accepting: AtomicBool::new(true),
            next_id: AtomicU64::new(1),
            next_batch_id: AtomicU64::new(1),
            cache: (cfg.result_cache > 0).then(|| ResultCache::new(cfg.result_cache)),
            quotas: cfg.quota.map(TenantQuotas::new),
            solver_runs: AtomicU64::new(0),
        });
        let max_batch = if cfg.batching { cfg.max_batch.max(1) } else { 1 };
        let handles = (0..workers)
            .map(|w| {
                let shared = shared.clone();
                let collect = cfg.collect_reports;
                std::thread::Builder::new()
                    .name(format!("claire-serve-{w}"))
                    .spawn(move || worker_loop(w, per_worker, collect, max_batch, &shared))
                    .expect("spawning a service worker thread")
            })
            .collect();
        RegistrationService { shared, workers: handles, per_worker_threads: per_worker }
    }

    /// Threads each worker pins for its kernels.
    pub fn per_worker_threads(&self) -> usize {
        self.per_worker_threads
    }

    /// Jobs currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Non-blocking submission: validates, then fails fast with
    /// [`SubmitError::QueueFull`] under backpressure.
    pub fn try_submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        self.admit(spec, false).map(|a| a.id)
    }

    /// Blocking submission: validates, then waits for queue capacity.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, SubmitError> {
        self.admit(spec, true).map(|a| a.id)
    }

    /// [`RegistrationService::try_submit`], additionally reporting whether
    /// the result came straight from the content-hash cache.
    pub fn try_submit_traced(&self, spec: JobSpec) -> Result<Admission, SubmitError> {
        self.admit(spec, false)
    }

    /// [`RegistrationService::submit`], additionally reporting whether the
    /// result came straight from the content-hash cache.
    pub fn submit_traced(&self, spec: JobSpec) -> Result<Admission, SubmitError> {
        self.admit(spec, true)
    }

    fn admit(&self, spec: JobSpec, block: bool) -> Result<Admission, SubmitError> {
        if !self.shared.accepting.load(Ordering::Acquire) {
            REJECTED.inc();
            return Err(SubmitError::ShuttingDown);
        }
        if let Err(e) = spec.validate() {
            REJECTED.inc();
            return Err(SubmitError::Invalid(e));
        }
        // Quota before queue capacity and before the cache: admission is
        // the unit the token pays for, hit or miss.
        if let Some(quotas) = &self.shared.quotas {
            if let Err(retry_after) = quotas.try_take(&spec.tenant) {
                QUOTA_REJECTED.inc();
                REJECTED.inc();
                return Err(SubmitError::QuotaExceeded { tenant: spec.tenant, retry_after });
            }
        }

        // Content-hash cache: an identical registration that already
        // succeeded is served as a terminal job without touching the queue.
        let cache_key = self.shared.cache.as_ref().map(|_| content_key(&spec));
        if let (Some(cache), Some(key)) = (&self.shared.cache, cache_key) {
            if let Some(hit) = cache.lookup(key) {
                CACHE_HITS.inc();
                SUBMITTED.inc();
                let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
                let result = cached_result(id, &spec, hit);
                let token = spec.hooks.cancel.clone().unwrap_or_default();
                self.shared.jobs.lock().unwrap().insert(
                    id,
                    JobEntry { status: JobStatus::Succeeded, token, result: Some(result) },
                );
                COMPLETED.inc();
                self.shared.done.notify_all();
                return Ok(Admission { id: JobId(id), cached: true });
            }
            CACHE_MISSES.inc();
        }

        // A caller-provided token is the cancellation seam for tests and
        // remote cancellation; otherwise the job gets a private one.
        let token = spec.hooks.cancel.clone().unwrap_or_default();
        if let Some(d) = spec.deadline {
            token.set_deadline_in(d);
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        self.shared
            .jobs
            .lock()
            .unwrap()
            .insert(id, JobEntry { status: JobStatus::Queued, token: token.clone(), result: None });

        let lane = spec.priority.index();
        let deadline = spec.deadline;
        let job = QueuedJob { id, spec, token, submitted: Instant::now(), deadline, cache_key };
        let pushed = if block {
            self.shared.queue.push(job, lane)
        } else {
            self.shared.queue.try_push(job, lane)
        };
        match pushed {
            Ok(()) => {
                SUBMITTED.inc();
                QUEUE_DEPTH.set(self.shared.queue.len() as f64);
                Ok(Admission { id: JobId(id), cached: false })
            }
            Err(err) => {
                self.shared.jobs.lock().unwrap().remove(&id);
                REJECTED.inc();
                Err(match err {
                    PushError::Full(_) => SubmitError::QueueFull,
                    PushError::Closed(_) => SubmitError::ShuttingDown,
                })
            }
        }
    }

    /// Solver invocations so far (a coalesced batch counts once). A cache
    /// hit leaves this untouched — the seam the cache tests assert on.
    pub fn solver_invocations(&self) -> u64 {
        self.shared.solver_runs.load(Ordering::Relaxed)
    }

    /// Result-cache counters (all zero when the cache is disabled).
    pub fn cache_stats(&self) -> ResultCacheStats {
        self.shared.cache.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// Request cancellation of a job. Returns `true` if the job exists and
    /// was not already terminal; takes effect within one Gauss–Newton
    /// iteration if the job is running, immediately if still queued.
    pub fn cancel(&self, id: JobId) -> bool {
        let jobs = self.shared.jobs.lock().unwrap();
        match jobs.get(&id.0) {
            Some(entry) if !entry.status.is_terminal() => {
                entry.token.cancel();
                true
            }
            _ => false,
        }
    }

    /// Current status, or `None` for an unknown id.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        self.shared.jobs.lock().unwrap().get(&id.0).map(|e| e.status)
    }

    /// Block until the job reaches a terminal status; returns its result
    /// (`None` for an unknown id).
    pub fn wait(&self, id: JobId) -> Option<JobResult> {
        let mut jobs = self.shared.jobs.lock().unwrap();
        loop {
            match jobs.get(&id.0) {
                None => return None,
                Some(entry) => {
                    if let Some(result) = &entry.result {
                        return Some(result.clone());
                    }
                }
            }
            jobs = self.shared.done.wait(jobs).unwrap();
        }
    }

    /// Graceful shutdown: stop accepting, let workers drain every admitted
    /// job, join the pool, and return all results sorted by id. Idempotent.
    pub fn shutdown(&mut self) -> Vec<JobResult> {
        self.stop(false)
    }

    /// Immediate shutdown: additionally trips every non-terminal job's
    /// cancel token, so queued jobs finish as `Cancelled` and running jobs
    /// stop at their next iteration boundary. Idempotent.
    pub fn shutdown_now(&mut self) -> Vec<JobResult> {
        self.stop(true)
    }

    fn stop(&mut self, cancel_pending: bool) -> Vec<JobResult> {
        self.shared.accepting.store(false, Ordering::Release);
        if cancel_pending {
            for entry in self.shared.jobs.lock().unwrap().values() {
                if !entry.status.is_terminal() {
                    entry.token.cancel();
                }
            }
        }
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        let jobs = self.shared.jobs.lock().unwrap();
        let mut results: Vec<JobResult> = jobs.values().filter_map(|e| e.result.clone()).collect();
        results.sort_by_key(|r| r.id);
        results
    }
}

impl Drop for RegistrationService {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_now();
        }
    }
}

fn worker_loop(
    worker: usize,
    budget: usize,
    collect_reports: bool,
    max_batch: usize,
    shared: &Shared,
) {
    // Partition the machine: this worker's kernels see only its share.
    claire_par::set_local_threads(budget);
    while let Some(job) = shared.queue.pop() {
        // Batch-aware scheduling: drain compatible companions from the
        // popped job's own lane (never across lanes, so priorities hold).
        let mut companions = Vec::new();
        if max_batch > 1 {
            let fp = fingerprint(&job.spec);
            let lane = job.spec.priority.index();
            companions =
                shared.queue.take_matching(lane, max_batch - 1, |j| fingerprint(&j.spec) == fp);
        }
        QUEUE_DEPTH.set(shared.queue.len() as f64);
        if companions.is_empty() {
            let queue_wait = job.submitted.elapsed();
            QUEUE_WAIT.record(queue_wait.as_secs_f64());
            execute(worker, collect_reports, shared, job, queue_wait);
        } else {
            let mut batch = Vec::with_capacity(1 + companions.len());
            batch.push(job);
            batch.append(&mut companions);
            execute_batch(worker, budget, collect_reports, shared, batch);
        }
    }
}

/// Coalescing compatibility key: jobs may share one `BatchSolver` run only
/// when their grid extents and every solver-relevant configuration field
/// agree — the batch then provably runs each member through the same
/// arithmetic as a solo solve. Labels, priorities, deadlines, and hooks are
/// deliberately *not* part of the key; they stay per-job inside the batch.
fn fingerprint(spec: &JobSpec) -> u64 {
    let mut h = DefaultHasher::new();
    spec.input.grid().hash(&mut h);
    let c: &RegistrationConfig = &spec.config;
    c.nt.hash(&mut h);
    std::mem::discriminant(&c.ip_order).hash(&mut h);
    c.store_grad.hash(&mut h);
    std::mem::discriminant(&c.precond).hash(&mut h);
    c.beta_target.to_bits().hash(&mut h);
    c.beta_init.to_bits().hash(&mut h);
    c.beta_reduction.to_bits().hash(&mut h);
    c.continuation.hash(&mut h);
    c.grid_continuation.hash(&mut h);
    c.eps_h0.to_bits().hash(&mut h);
    c.beta_floor.to_bits().hash(&mut h);
    c.grad_rtol.to_bits().hash(&mut h);
    c.max_gn_iter.hash(&mut h);
    c.max_pcg_iter.hash(&mut h);
    c.max_inner_iter.hash(&mut h);
    c.fixed_pcg.hash(&mut h);
    c.verbose.hash(&mut h);
    std::mem::discriminant(&c.precision).hash(&mut h);
    h.finish()
}

/// Run a coalesced batch on the calling worker thread: pre-screen doomed
/// members, solve the rest through one [`BatchSolver`] (interleaved
/// Gauss–Newton, shared scaffolding), then finish every member with its own
/// per-job result and report.
fn execute_batch(
    worker: usize,
    budget: usize,
    collect_reports: bool,
    shared: &Shared,
    batch: Vec<QueuedJob>,
) {
    // A deadline may have expired (or a cancel landed) while a member sat
    // in the queue — retire those without letting them hold up the batch.
    let mut live: Vec<QueuedJob> = Vec::with_capacity(batch.len());
    for job in batch {
        let queue_wait = job.submitted.elapsed();
        QUEUE_WAIT.record(queue_wait.as_secs_f64());
        if let Some(reason) = job.token.stop_reason() {
            let status = match reason {
                claire_core::StopReason::Cancelled => JobStatus::Cancelled,
                claire_core::StopReason::DeadlineExpired => JobStatus::DeadlineExpired,
            };
            shared.finish(
                job.id,
                JobResult {
                    id: JobId(job.id),
                    label: job.spec.label.clone(),
                    status,
                    report: None,
                    run: None,
                    error: Some(format!("{} before execution started", reason.label())),
                    from_cache: false,
                    queue_wait,
                    run_time: Duration::ZERO,
                    total: job.submitted.elapsed(),
                },
            );
        } else {
            live.push(job);
        }
    }
    match live.len() {
        0 => return,
        1 => {
            // everyone else was doomed in the queue; no batch to amortize
            let job = live.pop().expect("len checked");
            let queue_wait = job.submitted.elapsed();
            execute(worker, collect_reports, shared, job, queue_wait);
            return;
        }
        _ => {}
    }

    let batch_id = shared.next_batch_id.fetch_add(1, Ordering::Relaxed);
    let batch_size = live.len();
    BATCHES.inc();
    BATCHED_JOBS.add(batch_size as u64);

    let mut comm = Comm::solo();
    let mut pairs = Vec::with_capacity(batch_size);
    let mut meta = Vec::with_capacity(batch_size);
    let config = live[0].spec.config;
    for job in live {
        let QueuedJob { id, spec, token, submitted, deadline, cache_key } = job;
        shared.set_status(id, JobStatus::Running);
        let (template, reference) = match spec.input {
            JobInput::Pair { template, reference } => (template, reference),
            JobInput::Synthetic { n } => {
                let p = claire_data::syn_problem(n, &mut comm);
                (p.template, p.reference)
            }
        };
        let hooks =
            SolverHooks { cancel: Some(token.clone()), on_gn_iter: spec.hooks.on_gn_iter.clone() };
        pairs.push(BatchPair::new(spec.label.clone(), template, reference).with_hooks(hooks));
        meta.push((
            id,
            spec.label,
            spec.priority,
            deadline,
            token,
            submitted,
            spec.tenant,
            cache_key,
        ));
    }

    let started = Instant::now();
    shared.solver_runs.fetch_add(1, Ordering::Relaxed);
    SOLVER_RUNS.inc();
    // The batch is ONE unit of schedulable work: hand it this worker's
    // exact thread slice so K coalesced jobs never oversubscribe claire-par
    // (K × per-worker threads would, under the one-job-per-worker split).
    let solver = BatchSolver::new(config).with_thread_budget(budget);
    let solve = catch_unwind(AssertUnwindSafe(|| solver.solve(pairs)));
    let run_time = started.elapsed();
    // Spans cover the whole interleaved batch; every member gets the tree.
    let spans = span::take_spans();

    let items = match solve {
        Ok(Ok(outcome)) => outcome.items,
        Ok(Err(e)) => {
            fail_batch(shared, &meta, run_time, &e.to_string());
            return;
        }
        Err(payload) => {
            let text = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("solver panicked");
            fail_batch(shared, &meta, run_time, &format!("solver panicked: {text}"));
            return;
        }
    };

    for (item, (id, label, priority, deadline, token, submitted, tenant, cache_key)) in
        items.into_iter().zip(meta)
    {
        let queue_wait = started.duration_since(submitted);
        let mut result = JobResult {
            id: JobId(id),
            label: label.clone(),
            status: JobStatus::Failed,
            report: None,
            run: None,
            error: None,
            from_cache: false,
            queue_wait,
            run_time,
            total: submitted.elapsed(),
        };
        match item.outcome {
            Ok((_, report)) => {
                result.status = JobStatus::Succeeded;
                if collect_reports {
                    let scheduling = SchedulingInfo {
                        job_id: id,
                        priority: priority.label().to_string(),
                        worker,
                        queue_wait_secs: queue_wait.as_secs_f64(),
                        run_secs: run_time.as_secs_f64(),
                        total_secs: result.total.as_secs_f64(),
                        deadline_secs: deadline.map(|d| d.as_secs_f64()).unwrap_or(0.0),
                        batch_id,
                        batch_size,
                        tenant,
                        from_cache: false,
                    };
                    let mut run =
                        job_run_report(&label, &report, &config, &comm, scheduling, &item.memory);
                    run.spans = spans.clone();
                    if cache_key.is_some() {
                        run.memory.result_cache_misses = 1;
                    }
                    result.run = Some(run);
                }
                result.report = Some(report);
            }
            Err(e) => {
                result.status = match &e {
                    ClaireError::Cancelled { .. } if token.is_cancelled() => JobStatus::Cancelled,
                    ClaireError::Cancelled { .. } if token.deadline_expired() => {
                        JobStatus::DeadlineExpired
                    }
                    ClaireError::Cancelled { .. } => JobStatus::Cancelled,
                    _ => JobStatus::Failed,
                };
                result.error = Some(e.to_string());
            }
        }
        if let (Some(cache), Some(key)) = (&shared.cache, cache_key) {
            cache.insert(key, &result);
        }
        shared.finish(id, result);
    }
}

type BatchMeta =
    (u64, String, Priority, Option<Duration>, CancelToken, Instant, String, Option<u128>);

/// Finish every batch member as `Failed` with the same batch-level error
/// (whole-batch misuse or a panicking solve).
fn fail_batch(shared: &Shared, meta: &[BatchMeta], run_time: Duration, error: &str) {
    for (id, label, _, _, _, submitted, _, _) in meta {
        shared.finish(
            *id,
            JobResult {
                id: JobId(*id),
                label: label.clone(),
                status: JobStatus::Failed,
                report: None,
                run: None,
                error: Some(error.to_string()),
                from_cache: false,
                queue_wait: Duration::ZERO,
                run_time,
                total: submitted.elapsed(),
            },
        );
    }
}

fn execute(
    worker: usize,
    collect_reports: bool,
    shared: &Shared,
    job: QueuedJob,
    queue_wait: Duration,
) {
    let QueuedJob { id, spec, token, submitted, deadline, cache_key } = job;
    let label = spec.label.clone();
    let tenant = spec.tenant.clone();
    let mut result = JobResult {
        id: JobId(id),
        label: label.clone(),
        status: JobStatus::Failed,
        report: None,
        run: None,
        error: None,
        from_cache: false,
        queue_wait,
        run_time: Duration::ZERO,
        total: Duration::ZERO,
    };

    // The deadline may already have expired (or the job been cancelled)
    // while it sat in the queue — don't start a doomed solve.
    if let Some(reason) = token.stop_reason() {
        result.status = match reason {
            claire_core::StopReason::Cancelled => JobStatus::Cancelled,
            claire_core::StopReason::DeadlineExpired => JobStatus::DeadlineExpired,
        };
        result.error = Some(format!("{} before execution started", reason.label()));
        result.total = submitted.elapsed();
        shared.finish(id, result);
        return;
    }

    shared.set_status(id, JobStatus::Running);
    let started = Instant::now();
    let config = spec.config;
    let prio = spec.priority;
    // Sample the shared pool/plan-cache counters around the solve: the
    // delta is this job's own activity (exact when no other worker runs
    // concurrently; an upper bound otherwise).
    let ws0 = workspace::stats();
    let fft0 = fft_cache::stats();
    shared.solver_runs.fetch_add(1, Ordering::Relaxed);
    SOLVER_RUNS.inc();
    let solve = catch_unwind(AssertUnwindSafe(|| run_solve(spec, &token)));
    let mut mem = MemberMemStats::default();
    mem_delta(&mut mem, &ws0, fft0);
    result.run_time = started.elapsed();
    result.total = submitted.elapsed();

    match solve {
        Ok(Ok((report, comm))) => {
            result.status = JobStatus::Succeeded;
            if collect_reports {
                let scheduling = SchedulingInfo {
                    job_id: id,
                    priority: prio.label().to_string(),
                    worker,
                    queue_wait_secs: queue_wait.as_secs_f64(),
                    run_secs: result.run_time.as_secs_f64(),
                    total_secs: result.total.as_secs_f64(),
                    deadline_secs: deadline.map(|d| d.as_secs_f64()).unwrap_or(0.0),
                    batch_id: 0,
                    batch_size: 0,
                    tenant,
                    from_cache: false,
                };
                let mut run = job_run_report(&label, &report, &config, &comm, scheduling, &mem);
                if cache_key.is_some() {
                    run.memory.result_cache_misses = 1;
                }
                result.run = Some(run);
            }
            result.report = Some(report);
        }
        Ok(Err(e)) => {
            // Cancellation precedence mirrors the token: an explicit cancel
            // wins even when the deadline also expired.
            result.status = match &e {
                ClaireError::Cancelled { .. } if token.is_cancelled() => JobStatus::Cancelled,
                ClaireError::Cancelled { .. } if token.deadline_expired() => {
                    JobStatus::DeadlineExpired
                }
                ClaireError::Cancelled { .. } => JobStatus::Cancelled,
                _ => JobStatus::Failed,
            };
            result.error = Some(e.to_string());
        }
        Err(payload) => {
            let text = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("solver panicked");
            result.status = JobStatus::Failed;
            result.error = Some(format!("solver panicked: {text}"));
        }
    }
    // Spans are thread-local; drain them after every job so one tenant's
    // trace never leaks into the next job on this worker.
    let spans = span::take_spans();
    if let Some(run) = &mut result.run {
        run.spans = spans;
    }
    if let (Some(cache), Some(key)) = (&shared.cache, cache_key) {
        cache.insert(key, &result);
    }
    shared.finish(id, result);
}

/// Rewrite a cached result as this submission's own terminal outcome: new
/// id/label and scheduling identity, zero latencies, cache counters set to
/// "hit". The solve artifacts themselves — `report`, the run's summary,
/// traces, and memory event counts — are a verbatim clone of the original
/// run, so the registration numbers are bitwise-identical to solving again
/// (`report.data` keeps the original submission's label: it is part of the
/// cached artifact).
fn cached_result(id: u64, spec: &JobSpec, mut hit: JobResult) -> JobResult {
    hit.id = JobId(id);
    hit.label = spec.label.clone();
    hit.error = None;
    hit.from_cache = true;
    hit.queue_wait = Duration::ZERO;
    hit.run_time = Duration::ZERO;
    hit.total = Duration::ZERO;
    if let Some(run) = &mut hit.run {
        run.label = spec.label.clone();
        run.scheduling.job_id = id;
        run.scheduling.priority = spec.priority.label().to_string();
        run.scheduling.tenant = spec.tenant.clone();
        run.scheduling.from_cache = true;
        run.scheduling.queue_wait_secs = 0.0;
        run.scheduling.run_secs = 0.0;
        run.scheduling.total_secs = 0.0;
        run.scheduling.batch_id = 0;
        run.scheduling.batch_size = 0;
        run.memory.result_cache_hits = 1;
        run.memory.result_cache_misses = 0;
    }
    hit
}

/// Run one registration on the calling worker thread.
fn run_solve(
    spec: JobSpec,
    token: &CancelToken,
) -> Result<(RegistrationReport, Comm), ClaireError> {
    let mut comm = Comm::solo();
    let (template, reference) = match spec.input {
        JobInput::Pair { template, reference } => (template, reference),
        JobInput::Synthetic { n } => {
            let p = claire_data::syn_problem(n, &mut comm);
            (p.template, p.reference)
        }
    };
    let hooks = SolverHooks { cancel: Some(token.clone()), on_gn_iter: spec.hooks.on_gn_iter };
    let mut claire = Claire::with_hooks(spec.config, hooks);
    let (_, report) =
        claire.try_register_from(&template, &reference, None, &spec.label, &mut comm)?;
    Ok((report, comm))
}

/// Accumulate the shared-counter movement since the `(ws0, fft0)` snapshot
/// into `mem` — the same delta arithmetic `BatchSolver` uses per member.
fn mem_delta(
    mem: &mut MemberMemStats,
    ws0: &[workspace::CatStats; 6],
    fft0: fft_cache::CacheStats,
) {
    let ws1 = workspace::stats();
    let fft1 = fft_cache::stats();
    for i in 0..6 {
        mem.cat_checkouts[i] += ws1[i].checkouts.saturating_sub(ws0[i].checkouts);
        mem.cat_misses[i] += ws1[i].misses.saturating_sub(ws0[i].misses);
    }
    mem.fft_plan_hits += fft1.hits.saturating_sub(fft0.hits);
    mem.fft_plan_misses += fft1.misses.saturating_sub(fft0.misses);
}

/// Build the report's memory block from this job's own counter deltas
/// (event counts) plus the shared family's current byte levels — see the
/// sharing-semantics note on [`MemoryInfo`].
fn job_memory(mem: &MemberMemStats, modeled_bytes: u64) -> MemoryInfo {
    let ws = workspace::stats();
    let total = workspace::total_stats();
    let fft = fft_cache::stats();
    MemoryInfo {
        pool_checkouts: mem.pool_checkouts(),
        pool_misses: mem.pool_misses(),
        pool_peak_bytes: total.peak_bytes,
        pool_in_use_bytes: total.in_use_bytes,
        categories: workspace::WsCat::ALL
            .iter()
            .enumerate()
            .map(|(i, cat)| MemoryCatEntry {
                cat: cat.label().to_string(),
                checkouts: mem.cat_checkouts[i],
                misses: mem.cat_misses[i],
                peak_bytes: ws[i].peak_bytes,
            })
            .filter(|c| c.checkouts > 0)
            .collect(),
        fft_plans: fft.plans,
        fft_plan_hits: mem.fft_plan_hits,
        fft_plan_misses: mem.fft_plan_misses,
        modeled_bytes,
        result_cache_hits: 0,
        result_cache_misses: 0,
    }
}

/// Assemble the per-job [`RunReport`]. Unlike
/// `claire_core::observe::collect_run_report`, this only uses *per-job*
/// telemetry sources — the job's own `Comm`, the worker-thread span tree,
/// and the job's own pool/plan-cache counter deltas — because the global
/// metrics registry and kernel timers are shared by every concurrently
/// running job.
fn job_run_report(
    label: &str,
    report: &RegistrationReport,
    config: &claire_core::RegistrationConfig,
    comm: &Comm,
    scheduling: SchedulingInfo,
    mem: &MemberMemStats,
) -> RunReport {
    let mut run = RunReport::new(label);
    run.grid = report.grid;
    run.nranks = report.nranks;
    run.nt = report.nt;
    run.precond = report.pc.clone();
    run.backend = claire_simd::active_backend().label().to_string();
    run.transport = comm.transport_kind().to_string();
    run.precision = report.precision.clone();
    run.summary = RunSummary {
        gn_iters: report.gn_iters,
        pcg_iters: report.pcg_iters,
        obj_evals: 0,
        hess_applies: 0,
        rel_mismatch: report.rel_mismatch,
        grad_rel: report.grad_rel,
        jac_det_min: report.jac_det_min,
        jac_det_max: report.jac_det_max,
        time_total: report.time_total,
        modeled_total: report.modeled_total,
        converged: report.grad_rel <= config.grad_rtol,
    };
    run.scheduling = scheduling;
    run.phases = PhaseShares::from_kernels(&[], report.time_total);
    run.memory = job_memory(mem, report.memory_bytes_per_rank);
    // Kernel timers are process-global, so per-kernel roofline entries are
    // unattributable here; the host DRAM calibration is still per-process
    // valid and lets report consumers see the same peak as solo runs.
    let host = claire_perf::machine::host_roofline();
    run.roofline =
        RooflineInfo { dram_peak_bps: host.dram_bw, probed: host.probed, kernels: Vec::new() };

    let stats = comm.stats();
    run.comm = CommCat::ALL
        .iter()
        .map(|&c| {
            let s = stats.cat(c);
            CommPhaseEntry {
                phase: c.label().to_string(),
                bytes: s.bytes_sent,
                msgs: s.msgs_sent,
                wire_bytes: s.wire_bytes,
                modeled_secs: s.modeled_secs,
            }
        })
        .filter(|e| e.bytes > 0 || e.msgs > 0 || e.wire_bytes > 0)
        .collect();
    run.collectives = CollOp::ALL
        .iter()
        .map(|&op| {
            let s = stats.coll(op);
            CollectiveEntry { op: op.label().to_string(), calls: s.calls, bytes: s.bytes }
        })
        .filter(|e| e.calls > 0)
        .collect();
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_core::{PrecondKind, RegistrationConfig};

    fn tiny_config() -> RegistrationConfig {
        RegistrationConfig {
            nt: 2,
            max_gn_iter: 2,
            max_pcg_iter: 4,
            continuation: false,
            precond: PrecondKind::InvA,
            ..Default::default()
        }
    }

    fn tiny_spec(label: &str) -> JobSpec {
        JobSpec::new(label, tiny_config(), JobInput::Synthetic { n: [8, 8, 8] })
    }

    #[test]
    fn submits_run_and_report_scheduling_metadata() {
        let mut svc = RegistrationService::start(ServiceConfig::default().workers(1));
        let id = svc.try_submit(tiny_spec("syn-8")).unwrap();
        let res = svc.wait(id).expect("job must be known");
        assert_eq!(res.status, JobStatus::Succeeded, "{:?}", res.error);
        let report = res.report.expect("succeeded job carries a report");
        assert!(report.gn_iters >= 1);
        let run = res.run.expect("collect_reports defaults to on");
        assert_eq!(run.scheduling.job_id, id.as_u64());
        assert_eq!(run.scheduling.priority, "normal");
        assert!(run.scheduling.total_secs >= run.scheduling.run_secs);
        assert!(run.to_json().contains("\"scheduling\""));
        let drained = svc.shutdown();
        assert_eq!(drained.len(), 1);
    }

    #[test]
    fn served_job_report_carries_precision_and_precision_splits_batches() {
        use claire_core::Precision;
        let mut mixed_cfg = tiny_config();
        mixed_cfg.precision = Precision::Mixed;
        let mut f64_cfg = tiny_config();
        f64_cfg.precision = Precision::F64;

        // jobs differing only in precision run different arithmetic — they
        // must never coalesce into one BatchSolver
        let a = JobSpec::new("m", mixed_cfg, JobInput::Synthetic { n: [8, 8, 8] });
        let b = JobSpec::new("d", f64_cfg, JobInput::Synthetic { n: [8, 8, 8] });
        assert_ne!(fingerprint(&a), fingerprint(&b));

        let mut svc = RegistrationService::start(ServiceConfig::default().workers(1));
        let id = svc.try_submit(a).unwrap();
        let res = svc.wait(id).unwrap();
        assert_eq!(res.status, JobStatus::Succeeded, "{:?}", res.error);
        assert_eq!(res.run.expect("run report").precision, "mixed");
        let id = svc.try_submit(b).unwrap();
        let res = svc.wait(id).unwrap();
        assert_eq!(res.run.expect("run report").precision, "f64");
        svc.shutdown();
    }

    #[test]
    fn invalid_spec_is_rejected_at_admission() {
        let mut svc = RegistrationService::start(ServiceConfig::default());
        let mut spec = tiny_spec("bad");
        spec.config.nt = 0;
        match svc.try_submit(spec) {
            Err(SubmitError::Invalid(e)) => assert!(e.to_string().contains("nt"), "{e}"),
            other => panic!("expected Invalid, got {other:?}"),
        }
        let zero = JobSpec::new("zero", tiny_config(), JobInput::Synthetic { n: [0, 8, 8] });
        assert!(matches!(svc.try_submit(zero), Err(SubmitError::Invalid(_))));
        svc.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let mut svc = RegistrationService::start(ServiceConfig::default());
        svc.shutdown();
        assert_eq!(svc.try_submit(tiny_spec("late")), Err(SubmitError::ShuttingDown));
        assert_eq!(svc.submit(tiny_spec("late-2")), Err(SubmitError::ShuttingDown));
        // idempotent
        assert!(svc.shutdown().is_empty());
    }

    #[test]
    fn deadline_expired_in_queue_is_terminal_without_running() {
        let mut svc = RegistrationService::start(ServiceConfig::default().workers(1));
        let spec = tiny_spec("doomed").deadline(Duration::ZERO);
        let id = svc.try_submit(spec).unwrap();
        let res = svc.wait(id).unwrap();
        assert_eq!(res.status, JobStatus::DeadlineExpired);
        assert!(res.report.is_none());
        assert!(res.error.unwrap().contains("deadline"));
        // the pool survives: a healthy job still runs afterwards
        let ok = svc.try_submit(tiny_spec("healthy")).unwrap();
        assert_eq!(svc.wait(ok).unwrap().status, JobStatus::Succeeded);
        svc.shutdown();
    }

    /// A job whose `on_gn_iter` hook blocks until released — keeps the
    /// single worker busy so later submissions pile up in the queue and the
    /// coalescing path is exercised deterministically.
    fn blocking_spec(label: &str) -> (JobSpec, Arc<(Mutex<bool>, Condvar)>) {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = gate.clone();
        let hooks = SolverHooks {
            cancel: None,
            on_gn_iter: Some(Arc::new(move |_| {
                let (lock, cv) = &*waiter;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            })),
        };
        // a different grid size than tiny_spec ⇒ never coalesces with it
        let spec =
            JobSpec::new(label, tiny_config(), JobInput::Synthetic { n: [4, 4, 4] }).hooks(hooks);
        (spec, gate)
    }

    fn open_gate(gate: &Arc<(Mutex<bool>, Condvar)>) {
        let (lock, cv) = &**gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }

    #[test]
    fn compatible_queued_jobs_coalesce_into_one_batch() {
        let mut svc =
            RegistrationService::start(ServiceConfig::default().workers(1).batching(true));
        let (blocker, gate) = blocking_spec("blocker");
        let b = svc.try_submit(blocker).unwrap();
        let ids: Vec<_> =
            (0..3).map(|i| svc.try_submit(tiny_spec(&format!("m{i}"))).unwrap()).collect();
        open_gate(&gate);

        assert_eq!(svc.wait(b).unwrap().status, JobStatus::Succeeded);
        let runs: Vec<_> = ids
            .iter()
            .map(|&id| {
                let res = svc.wait(id).unwrap();
                assert_eq!(res.status, JobStatus::Succeeded, "{:?}", res.error);
                assert!(res.report.is_some());
                res.run.expect("collect_reports defaults to on")
            })
            .collect();
        let batch_id = runs[0].scheduling.batch_id;
        assert!(batch_id > 0, "coalesced members carry a nonzero batch id");
        for run in &runs {
            assert_eq!(run.scheduling.batch_id, batch_id, "one batch for all three");
            assert_eq!(run.scheduling.batch_size, 3);
            assert!(
                run.memory.pool_checkouts > 0,
                "per-member memory attribution must see this member's checkouts"
            );
        }
        // members attribute disjoint event deltas — no double counting
        let total: u64 = runs.iter().map(|r| r.memory.pool_checkouts).sum();
        assert!(
            total > runs[0].memory.pool_checkouts,
            "deltas are per member, not the batch total"
        );
        svc.shutdown();
    }

    #[test]
    fn coalescing_never_crosses_priority_lanes() {
        let mut svc =
            RegistrationService::start(ServiceConfig::default().workers(1).batching(true));
        let (blocker, gate) = blocking_spec("blocker");
        let b = svc.try_submit(blocker).unwrap();
        let hi = svc.try_submit(tiny_spec("hi").priority(Priority::High)).unwrap();
        let n1 = svc.try_submit(tiny_spec("n1")).unwrap();
        let n2 = svc.try_submit(tiny_spec("n2")).unwrap();
        open_gate(&gate);

        svc.wait(b).unwrap();
        let hi_run = svc.wait(hi).unwrap().run.unwrap();
        assert_eq!(hi_run.scheduling.batch_id, 0, "the lone high job runs solo");
        let r1 = svc.wait(n1).unwrap().run.unwrap();
        let r2 = svc.wait(n2).unwrap().run.unwrap();
        assert!(r1.scheduling.batch_id > 0);
        assert_eq!(r1.scheduling.batch_id, r2.scheduling.batch_id);
        assert_eq!(r1.scheduling.batch_size, 2);
        svc.shutdown();
    }

    #[test]
    fn expired_member_retires_without_holding_up_its_batch() {
        let mut svc =
            RegistrationService::start(ServiceConfig::default().workers(1).batching(true));
        let (blocker, gate) = blocking_spec("blocker");
        let b = svc.try_submit(blocker).unwrap();
        let doomed = svc.try_submit(tiny_spec("doomed").deadline(Duration::ZERO)).unwrap();
        let ok1 = svc.try_submit(tiny_spec("ok1")).unwrap();
        let ok2 = svc.try_submit(tiny_spec("ok2")).unwrap();
        open_gate(&gate);

        svc.wait(b).unwrap();
        let res = svc.wait(doomed).unwrap();
        assert_eq!(res.status, JobStatus::DeadlineExpired);
        assert!(res.error.unwrap().contains("before execution started"));
        for id in [ok1, ok2] {
            let res = svc.wait(id).unwrap();
            assert_eq!(res.status, JobStatus::Succeeded, "{:?}", res.error);
        }
        svc.shutdown();
    }

    #[test]
    fn batched_and_solo_runs_agree_bitwise() {
        // the scheduler seam must not change arithmetic: a job solved in a
        // coalesced batch reports the same mismatch as the same spec solo
        let mut solo_svc = RegistrationService::start(ServiceConfig::default().workers(1));
        let id = solo_svc.try_submit(tiny_spec("ref")).unwrap();
        let solo = solo_svc.wait(id).unwrap().report.unwrap();
        solo_svc.shutdown();

        let mut svc =
            RegistrationService::start(ServiceConfig::default().workers(1).batching(true));
        let (blocker, gate) = blocking_spec("blocker");
        svc.try_submit(blocker).unwrap();
        let a = svc.try_submit(tiny_spec("a")).unwrap();
        let b = svc.try_submit(tiny_spec("b")).unwrap();
        open_gate(&gate);
        for id in [a, b] {
            let res = svc.wait(id).unwrap();
            let report = res.report.unwrap();
            assert_eq!(
                report.rel_mismatch.to_bits(),
                solo.rel_mismatch.to_bits(),
                "batched member must match the solo solve bitwise"
            );
            assert!(res.run.unwrap().scheduling.batch_id > 0, "actually took the batch path");
        }
        svc.shutdown();
    }

    #[test]
    fn cache_hit_skips_the_solver_and_is_bitwise_identical() {
        let mut svc =
            RegistrationService::start(ServiceConfig::default().workers(1).result_cache(8));
        let first = svc.try_submit_traced(tiny_spec("orig").tenant("t1")).unwrap();
        assert!(!first.cached);
        let a = svc.wait(first.id).unwrap();
        assert_eq!(a.status, JobStatus::Succeeded, "{:?}", a.error);
        assert_eq!(svc.solver_invocations(), 1);
        assert_eq!(a.run.as_ref().unwrap().memory.result_cache_misses, 1);

        // different label/tenant, same content → hit, no solver run
        let second = svc.try_submit_traced(tiny_spec("replay").tenant("t2")).unwrap();
        assert!(second.cached, "identical content must be served from the cache");
        assert_ne!(second.id, first.id, "every submission keeps its own id");
        let b = svc.wait(second.id).unwrap();
        assert_eq!(svc.solver_invocations(), 1, "cache hit must not run the solver");
        assert_eq!(b.status, JobStatus::Succeeded);
        assert_eq!(b.label, "replay");
        let (ra, rb) = (a.report.unwrap(), b.report.unwrap());
        assert_eq!(ra, rb, "cached report must be a verbatim clone");
        assert_eq!(ra.rel_mismatch.to_bits(), rb.rel_mismatch.to_bits());
        let run = b.run.unwrap();
        assert!(run.scheduling.from_cache);
        assert_eq!(run.scheduling.tenant, "t2");
        assert_eq!(run.memory.result_cache_hits, 1);
        let stats = svc.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        svc.shutdown();
    }

    #[test]
    fn distinct_content_misses_the_cache() {
        let mut svc =
            RegistrationService::start(ServiceConfig::default().workers(1).result_cache(8));
        let a = svc.try_submit_traced(tiny_spec("a")).unwrap();
        svc.wait(a.id).unwrap();
        let mut spec = tiny_spec("b");
        spec.config.max_gn_iter = 1;
        let b = svc.try_submit_traced(spec).unwrap();
        assert!(!b.cached);
        svc.wait(b.id).unwrap();
        assert_eq!(svc.solver_invocations(), 2);
        svc.shutdown();
    }

    #[test]
    fn quota_rejects_with_retry_hint_and_isolates_tenants() {
        let mut svc = RegistrationService::start(
            ServiceConfig::default()
                .workers(1)
                .queue_capacity(16)
                .quota(QuotaConfig::new(2.0, 0.01)),
        );
        let ids: Vec<_> = (0..2)
            .map(|i| svc.try_submit(tiny_spec(&format!("q{i}")).tenant("greedy")).unwrap())
            .collect();
        match svc.try_submit(tiny_spec("q2").tenant("greedy")) {
            Err(SubmitError::QuotaExceeded { tenant, retry_after }) => {
                assert_eq!(tenant, "greedy");
                assert!(retry_after > Duration::ZERO);
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        // another tenant (and the default tenant) still get in
        let other = svc.try_submit(tiny_spec("polite").tenant("polite")).unwrap();
        let default = svc.try_submit(tiny_spec("default")).unwrap();
        for id in ids.into_iter().chain([other, default]) {
            assert_eq!(svc.wait(id).unwrap().status, JobStatus::Succeeded);
        }
        svc.shutdown();
    }

    #[test]
    fn unknown_ids_are_handled() {
        let mut svc = RegistrationService::start(ServiceConfig::default());
        let ghost = JobId(999);
        assert_eq!(svc.status(ghost), None);
        assert!(svc.wait(ghost).is_none());
        assert!(!svc.cancel(ghost));
        svc.shutdown();
    }
}
