//! Bounded, priority-laned, closable MPMC queue built on `Mutex`/`Condvar`.
//!
//! The admission queue is the service's backpressure mechanism: capacity is
//! shared across the three [`Priority`](crate::Priority) lanes, `try_push`
//! fails fast when full (open-loop producers observe rejections), `push`
//! blocks (closed-loop producers observe latency). Consumers always drain
//! the highest-priority non-empty lane; within a lane order is FIFO.
//! Closing the queue rejects further pushes while letting consumers drain
//! what was already admitted — the graceful-shutdown half of the service.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Number of priority lanes ([`Priority`](crate::Priority) variants).
pub const LANES: usize = 3;

/// Why a push was refused. The rejected item is handed back so callers can
/// roll back admission state without cloning.
pub enum PushError<T> {
    /// The queue was at capacity (only from [`BoundedQueue::try_push`]).
    Full(T),
    /// The queue was closed.
    Closed(T),
}

struct State<T> {
    lanes: [VecDeque<T>; LANES],
    len: usize,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer queue with priority lanes.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` items across all lanes.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity >= 1, "queue capacity must be >= 1");
        BoundedQueue {
            state: Mutex::new(State {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                len: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Total capacity across lanes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (all lanes).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    /// Non-blocking push into `lane`: fails fast with [`PushError::Full`]
    /// under backpressure instead of waiting.
    pub fn try_push(&self, item: T, lane: usize) -> Result<(), PushError<T>> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.len >= self.capacity {
            return Err(PushError::Full(item));
        }
        st.lanes[lane].push_back(item);
        st.len += 1;
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push into `lane`: waits for capacity (backpressure) and only
    /// fails if the queue closes while waiting.
    pub fn push(&self, item: T, lane: usize) -> Result<(), PushError<T>> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.closed {
                return Err(PushError::Closed(item));
            }
            if st.len < self.capacity {
                st.lanes[lane].push_back(item);
                st.len += 1;
                drop(st);
                self.not_empty.notify_one();
                return Ok(());
            }
            st = self.not_full.wait(st).unwrap();
        }
    }

    /// Blocking pop: the front of the highest-priority non-empty lane.
    /// Returns `None` only once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.len > 0 {
                let item = st
                    .lanes
                    .iter_mut()
                    .find_map(VecDeque::pop_front)
                    .expect("len > 0 implies a non-empty lane");
                st.len -= 1;
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// Non-blocking scan of one lane: extract up to `max` items matching
    /// `pred`, preserving FIFO order among both the taken items and the
    /// survivors. This is the coalescing primitive for batch scheduling — a
    /// worker that popped a job calls this to pull compatible companions
    /// out of the *same* priority lane (so coalescing never promotes or
    /// demotes work across lanes) without blocking producers.
    pub fn take_matching(
        &self,
        lane: usize,
        max: usize,
        mut pred: impl FnMut(&T) -> bool,
    ) -> Vec<T> {
        if max == 0 {
            return Vec::new();
        }
        let mut st = self.state.lock().unwrap();
        let mut taken = Vec::new();
        let mut rest = VecDeque::with_capacity(st.lanes[lane].len());
        while let Some(item) = st.lanes[lane].pop_front() {
            if taken.len() < max && pred(&item) {
                taken.push(item);
            } else {
                rest.push_back(item);
            }
        }
        st.lanes[lane] = rest;
        st.len -= taken.len();
        drop(st);
        // freed capacity wakes blocked producers
        for _ in &taken {
            self.not_full.notify_one();
        }
        taken
    }

    /// Close the queue: further pushes fail, blocked pushers wake with
    /// [`PushError::Closed`], and consumers drain the remaining items before
    /// seeing `None`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn pops_highest_priority_lane_first_fifo_within_lane() {
        let q = BoundedQueue::new(8);
        q.try_push("low-1", 2).ok().unwrap();
        q.try_push("norm-1", 1).ok().unwrap();
        q.try_push("high-1", 0).ok().unwrap();
        q.try_push("high-2", 0).ok().unwrap();
        q.try_push("norm-2", 1).ok().unwrap();
        let order: Vec<_> = (0..5).map(|_| q.pop().unwrap()).collect();
        assert_eq!(order, ["high-1", "high-2", "norm-1", "norm-2", "low-1"]);
    }

    #[test]
    fn try_push_fails_fast_at_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1, 1).ok().unwrap();
        q.try_push(2, 1).ok().unwrap();
        match q.try_push(3, 1) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            _ => panic!("push beyond capacity must report Full"),
        }
        q.pop().unwrap();
        q.try_push(3, 1).ok().unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_rejects_pushes_but_drains_consumers() {
        let q = BoundedQueue::new(4);
        q.try_push(1, 1).ok().unwrap();
        q.try_push(2, 0).ok().unwrap();
        q.close();
        assert!(matches!(q.try_push(3, 1), Err(PushError::Closed(3))));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_waits_for_capacity() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(1u32, 1).ok().unwrap();
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || q.push(2, 1).is_ok())
        };
        // the producer is blocked on a full queue; popping frees a slot
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        assert!(producer.join().unwrap(), "blocked push must complete after a pop");
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn take_matching_extracts_in_order_and_preserves_survivors() {
        let q = BoundedQueue::new(8);
        for v in [1, 2, 3, 4, 5, 6] {
            q.try_push(v, 1).ok().unwrap();
        }
        let evens = q.take_matching(1, 2, |v| v % 2 == 0);
        assert_eq!(evens, [2, 4], "takes at most max, in FIFO order");
        assert_eq!(q.len(), 4);
        let order: Vec<_> = (0..4).map(|_| q.pop().unwrap()).collect();
        assert_eq!(order, [1, 3, 5, 6], "survivors keep their relative order");
        assert!(q.take_matching(1, 4, |_| true).is_empty(), "empty lane yields nothing");
    }

    #[test]
    fn blocked_push_wakes_on_close() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(1u32, 1).ok().unwrap();
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || matches!(q.push(2, 1), Err(PushError::Closed(2))))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(producer.join().unwrap(), "blocked push must fail Closed after close()");
    }
}
