//! The versioned claire-serve wire protocol.
//!
//! Frames are `4-byte big-endian length ‖ JSON payload` over any byte
//! stream (TCP in practice). Every message is a tagged JSON object
//! (`{"type": "...", ...}`); [`Request`] and [`Response`] are the two
//! envelope enums, both `#[non_exhaustive]` so variants can be added
//! without breaking downstream matches. A connection starts with a
//! [`Request::Hello`] / [`Response::Hello`] exchange carrying
//! [`PROTOCOL_VERSION`]; a server refuses mismatched clients with a typed
//! [`ErrorCode::VersionMismatch`] before any job traffic.
//!
//! Numbers survive the trip bitwise: the vendored `serde_json` renders
//! `f64` with Rust's shortest-roundtrip formatting, so image data and
//! report metrics decode to the exact bits that were encoded (non-finite
//! values are not wire-safe — they render as `null`, like serde_json).

use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

use claire_core::config::IpOrder;
use claire_core::{Precision, PrecondKind, RegistrationConfig, RegistrationReport};
use claire_grid::{Grid, Layout, Real, ScalarField};
use serde::{Serialize, Value};

use crate::job::{JobId, JobInput, JobResult, JobSpec, JobStatus, Priority};

/// Protocol revision negotiated in `Hello`. Bump on any change to frame
/// layout or message schemas that an old peer cannot ignore.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard upper bound on one frame's payload (guards against a hostile or
/// corrupt length prefix allocating unbounded memory). Large enough for a
/// 256³ image pair with slack. Shared with the socket transport's binary
/// protocol — one framing discipline per workspace.
pub use claire_ipc::frame::MAX_FRAME_BYTES;

/// Typed wire failure. Transport-level variants (`Io`, `Timeout`,
/// `Closed`, `Truncated`) mean the byte stream itself broke; the rest mean
/// the peer sent something this implementation refuses.
#[derive(Debug)]
#[non_exhaustive]
pub enum WireError {
    /// Underlying socket/stream error.
    Io(io::Error),
    /// A read timed out with no frame started (idle poll tick).
    Timeout,
    /// Clean EOF on a frame boundary (peer closed the connection).
    Closed,
    /// The stream ended mid-frame.
    Truncated {
        /// Bytes the frame promised.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// The length prefix exceeds the receiver's frame cap.
    FrameTooLarge {
        /// Announced payload length.
        len: usize,
        /// Receiver's cap.
        max: usize,
    },
    /// The payload is not valid JSON or not a valid message schema.
    Malformed(String),
    /// `Hello` carried an incompatible [`PROTOCOL_VERSION`].
    VersionMismatch {
        /// Our version.
        ours: u32,
        /// The peer's version.
        theirs: u32,
    },
    /// A well-formed message arrived where the protocol forbids it.
    Protocol(String),
    /// The remote peer reported a typed error.
    Remote {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl WireError {
    /// Whether the failure broke the byte stream (reconnect-worthy) as
    /// opposed to a per-request refusal on a healthy connection.
    pub fn is_transport(&self) -> bool {
        matches!(
            self,
            WireError::Io(_) | WireError::Timeout | WireError::Closed | WireError::Truncated { .. }
        )
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Timeout => write!(f, "read timed out before a frame started"),
            WireError::Closed => write!(f, "connection closed"),
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Malformed(m) => write!(f, "malformed message: {m}"),
            WireError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, peer {theirs}")
            }
            WireError::Protocol(m) => write!(f, "protocol violation: {m}"),
            WireError::Remote { code, message } => {
                write!(f, "remote error [{}]: {message}", code.as_str())
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Machine-readable error class carried by [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorCode {
    /// Handshake refused: incompatible [`PROTOCOL_VERSION`].
    VersionMismatch,
    /// The request frame did not decode.
    Malformed,
    /// The request type is not supported by this server.
    Unsupported,
    /// Admission queue at capacity (open-loop backpressure).
    QueueFull,
    /// The server is shutting down.
    ShuttingDown,
    /// The job spec failed admission validation.
    InvalidSpec,
    /// The tenant's token bucket is empty.
    QuotaExceeded,
    /// No job with the given id.
    UnknownJob,
    /// Anything else (worker panic, internal invariant).
    Internal,
}

impl ErrorCode {
    /// Stable wire label.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::VersionMismatch => "version_mismatch",
            ErrorCode::Malformed => "malformed",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::InvalidSpec => "invalid_spec",
            ErrorCode::QuotaExceeded => "quota_exceeded",
            ErrorCode::UnknownJob => "unknown_job",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parse a wire label; unknown labels map to [`ErrorCode::Internal`] so
    /// a newer server's codes degrade instead of failing the decode.
    pub fn parse(s: &str) -> ErrorCode {
        match s {
            "version_mismatch" => ErrorCode::VersionMismatch,
            "malformed" => ErrorCode::Malformed,
            "unsupported" => ErrorCode::Unsupported,
            "queue_full" => ErrorCode::QueueFull,
            "shutting_down" => ErrorCode::ShuttingDown,
            "invalid_spec" => ErrorCode::InvalidSpec,
            "quota_exceeded" => ErrorCode::QuotaExceeded,
            "unknown_job" => ErrorCode::UnknownJob,
            _ => ErrorCode::Internal,
        }
    }
}

// ---------------------------------------------------------------------------
// framing — the byte-level codec lives in `claire_ipc::frame`, shared with
// the socket transport's binary rank protocol; these wrappers keep the
// serve-facing API and map the codec's typed errors onto `WireError`
// ---------------------------------------------------------------------------

impl From<claire_ipc::FrameError> for WireError {
    fn from(e: claire_ipc::FrameError) -> Self {
        use claire_ipc::FrameError as F;
        match e {
            F::Io(e) => WireError::Io(e),
            F::Timeout => WireError::Timeout,
            F::Closed => WireError::Closed,
            F::Truncated { expected, got } => WireError::Truncated { expected, got },
            F::TooLarge { len, max } => WireError::FrameTooLarge { len, max },
        }
    }
}

/// Write one frame: 4-byte big-endian payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    claire_ipc::frame::write_frame(w, payload).map_err(WireError::from)
}

/// Read one frame's payload, enforcing `max` against the length prefix
/// *before* allocating. A clean EOF on the frame boundary is
/// [`WireError::Closed`]; a read timeout before any header byte is
/// [`WireError::Timeout`] (so pollers can use short socket timeouts as
/// idle ticks); EOF mid-frame is [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>, WireError> {
    claire_ipc::frame::read_frame(r, max).map_err(WireError::from)
}

/// Serialize any wire message to its frame payload.
pub fn encode<T: Serialize + ?Sized>(msg: &T) -> Vec<u8> {
    serde_json::to_string(msg).expect("wire serialization is total").into_bytes()
}

/// Write one message as a frame.
pub fn send<T: Serialize + ?Sized>(w: &mut impl Write, msg: &T) -> Result<(), WireError> {
    write_frame(w, &encode(msg))
}

// ---------------------------------------------------------------------------
// envelopes
// ---------------------------------------------------------------------------

/// Client → server messages.
///
/// `Submit` dwarfs the control variants by design: images travel inline in
/// the envelope, and boxing them would only add indirection on a path that
/// immediately serializes.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
#[allow(clippy::large_enum_variant)]
pub enum Request {
    /// Connection opener; must precede anything else.
    Hello {
        /// Client's [`PROTOCOL_VERSION`].
        protocol: u32,
        /// Free-form client identification (logged, never parsed).
        client: String,
    },
    /// Submit a job for execution.
    Submit {
        /// The job, images inline.
        spec: WireJobSpec,
    },
    /// Query a job's lifecycle status.
    Status {
        /// Target job.
        id: JobId,
    },
    /// Request cancellation (effective within one GN iteration).
    Cancel {
        /// Target job.
        id: JobId,
    },
    /// Block until terminal and return the full result.
    Result {
        /// Target job.
        id: JobId,
    },
    /// Subscribe to status events until the job is terminal.
    Stream {
        /// Target job.
        id: JobId,
    },
}

/// Server → client messages.
///
/// `Result` carries the full report inline for the same reason
/// [`Request::Submit`] carries images inline.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
#[allow(clippy::large_enum_variant)]
pub enum Response {
    /// Handshake acceptance.
    Hello {
        /// Server's [`PROTOCOL_VERSION`].
        protocol: u32,
        /// Free-form server identification.
        server: String,
    },
    /// Job admitted (possibly straight from the result cache).
    Submitted {
        /// Server-assigned id.
        id: JobId,
        /// Whether the result was served from the content-hash cache
        /// without queueing a solve.
        cached: bool,
    },
    /// Answer to [`Request::Status`].
    Status {
        /// Queried job.
        id: JobId,
        /// Its current lifecycle state.
        status: JobStatus,
    },
    /// Answer to [`Request::Cancel`].
    Cancelled {
        /// Target job.
        id: JobId,
        /// Whether the cancel reached a live (non-terminal) job.
        delivered: bool,
    },
    /// Answer to [`Request::Result`].
    Result {
        /// The terminal result, reports inline.
        result: RemoteJobResult,
    },
    /// One streamed status event (answer stream to [`Request::Stream`]).
    Event {
        /// Subscribed job.
        id: JobId,
        /// What happened.
        event: StreamEvent,
    },
    /// Typed refusal.
    Error {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// One entry in a [`Request::Stream`] subscription. The stream always ends
/// with exactly one `Terminal`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum StreamEvent {
    /// The job is waiting in the admission queue.
    Queued,
    /// A worker started executing the job.
    Running,
    /// The solver finished Gauss–Newton iteration `iter` (0-based,
    /// monotone within one job).
    GnIter {
        /// Iteration index.
        iter: usize,
    },
    /// The job reached a terminal status; the stream is over.
    Terminal {
        /// The terminal status.
        status: JobStatus,
    },
}

// ---------------------------------------------------------------------------
// job spec / result payloads
// ---------------------------------------------------------------------------

/// A [`JobSpec`] in wire form: images inline as flat `f64` arrays, the
/// config fully spelled out, hooks (not serializable) left behind — the
/// server installs its own cancel token and streaming hook.
#[derive(Clone, Debug, PartialEq)]
pub struct WireJobSpec {
    /// Free-form label (used in reports).
    pub label: String,
    /// Tenant name for quota accounting (empty = the default tenant).
    pub tenant: String,
    /// Full solver configuration.
    pub config: RegistrationConfig,
    /// Input images or synthetic problem size.
    pub input: WireInput,
    /// Admission priority class.
    pub priority: Priority,
    /// Deadline in milliseconds from server-side admission (None = none).
    pub deadline_ms: Option<u64>,
}

/// Wire form of [`JobInput`].
#[derive(Clone, Debug, PartialEq)]
pub enum WireInput {
    /// Generate the analytic SYN pair server-side.
    Synthetic {
        /// Grid extents.
        n: [usize; 3],
    },
    /// Concrete images, row-major over the serial layout of `n`.
    Pair {
        /// Grid extents.
        n: [usize; 3],
        /// Template image `m0`.
        template: Vec<Real>,
        /// Reference image `m1`.
        reference: Vec<Real>,
    },
}

impl WireJobSpec {
    /// Lower an in-process spec (image data is copied; hooks are dropped —
    /// they cannot cross the wire).
    pub fn from_spec(spec: &JobSpec) -> WireJobSpec {
        let input = match &spec.input {
            JobInput::Synthetic { n } => WireInput::Synthetic { n: *n },
            JobInput::Pair { template, reference } => WireInput::Pair {
                n: template.layout().grid.n,
                template: template.data().to_vec(),
                reference: reference.data().to_vec(),
            },
        };
        WireJobSpec {
            label: spec.label.clone(),
            tenant: spec.tenant.clone(),
            config: spec.config,
            input,
            priority: spec.priority,
            deadline_ms: spec.deadline.map(|d| d.as_millis() as u64),
        }
    }

    /// Rehydrate into an in-process [`JobSpec`] (serial layout; the service
    /// validates the rest at admission).
    pub fn into_spec(self) -> Result<JobSpec, WireError> {
        let input = match self.input {
            WireInput::Synthetic { n } => JobInput::Synthetic { n },
            WireInput::Pair { n, template, reference } => {
                if n.iter().any(|&d| d < 2) {
                    return Err(WireError::Malformed(format!(
                        "pair grid extents must all be >= 2, got {n:?}"
                    )));
                }
                let layout = Layout::serial(Grid::new(n));
                let expect = layout.local_len();
                for (name, data) in [("template", &template), ("reference", &reference)] {
                    if data.len() != expect {
                        return Err(WireError::Malformed(format!(
                            "{name} carries {} samples, grid {n:?} needs {expect}",
                            data.len()
                        )));
                    }
                }
                JobInput::Pair {
                    template: ScalarField::from_data(layout, template),
                    reference: ScalarField::from_data(layout, reference),
                }
            }
        };
        let mut spec = JobSpec::new(self.label, self.config, input)
            .tenant(self.tenant)
            .priority(self.priority);
        if let Some(ms) = self.deadline_ms {
            spec = spec.deadline(Duration::from_millis(ms));
        }
        Ok(spec)
    }
}

/// A [`JobResult`] in wire form. The `RunReport` travels as an opaque JSON
/// document (`run`): it is a reporting artifact, not an API type, so the
/// client hands it through without imposing a schema.
#[derive(Clone, Debug, PartialEq)]
pub struct RemoteJobResult {
    /// Server-assigned id.
    pub id: JobId,
    /// The spec's label.
    pub label: String,
    /// Terminal status.
    pub status: JobStatus,
    /// Table 6-style solve report (`Succeeded` only).
    pub report: Option<RegistrationReport>,
    /// Per-job `RunReport` JSON document (when the server collects them).
    pub run: Option<Value>,
    /// Error text for non-succeeded statuses.
    pub error: Option<String>,
    /// Seconds queued server-side.
    pub queue_wait_secs: f64,
    /// Seconds executing server-side.
    pub run_secs: f64,
    /// End-to-end server-side seconds.
    pub total_secs: f64,
    /// Whether this result came from the content-hash cache.
    pub cached: bool,
}

impl RemoteJobResult {
    /// Lower a service result for the wire.
    pub fn from_result(r: &JobResult) -> RemoteJobResult {
        RemoteJobResult {
            id: r.id,
            label: r.label.clone(),
            status: r.status,
            report: r.report.clone(),
            run: r.run.as_ref().map(|run| run.to_value()),
            error: r.error.clone(),
            queue_wait_secs: r.queue_wait.as_secs_f64(),
            run_secs: r.run_time.as_secs_f64(),
            total_secs: r.total.as_secs_f64(),
            cached: r.from_cache,
        }
    }
}

// ---------------------------------------------------------------------------
// encoding (Serialize impls)
// ---------------------------------------------------------------------------

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn tagged(tag: &str, mut rest: Vec<(&str, Value)>) -> Value {
    let mut pairs = vec![("type", Value::Str(tag.to_string()))];
    pairs.append(&mut rest);
    obj(pairs)
}

impl Serialize for JobId {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        match self {
            Request::Hello { protocol, client } => tagged(
                "hello",
                vec![("protocol", Value::UInt(*protocol as u64)), ("client", client.to_value())],
            ),
            Request::Submit { spec } => tagged("submit", vec![("spec", spec.to_value())]),
            Request::Status { id } => tagged("status", vec![("id", id.to_value())]),
            Request::Cancel { id } => tagged("cancel", vec![("id", id.to_value())]),
            Request::Result { id } => tagged("result", vec![("id", id.to_value())]),
            Request::Stream { id } => tagged("stream", vec![("id", id.to_value())]),
        }
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        match self {
            Response::Hello { protocol, server } => tagged(
                "hello",
                vec![("protocol", Value::UInt(*protocol as u64)), ("server", server.to_value())],
            ),
            Response::Submitted { id, cached } => {
                tagged("submitted", vec![("id", id.to_value()), ("cached", Value::Bool(*cached))])
            }
            Response::Status { id, status } => tagged(
                "status",
                vec![("id", id.to_value()), ("status", Value::Str(status.label().into()))],
            ),
            Response::Cancelled { id, delivered } => tagged(
                "cancelled",
                vec![("id", id.to_value()), ("delivered", Value::Bool(*delivered))],
            ),
            Response::Result { result } => tagged("result", vec![("result", result.to_value())]),
            Response::Event { id, event } => {
                let mut fields = vec![("id", id.to_value())];
                match event {
                    StreamEvent::Queued => fields.push(("event", Value::Str("queued".into()))),
                    StreamEvent::Running => fields.push(("event", Value::Str("running".into()))),
                    StreamEvent::GnIter { iter } => {
                        fields.push(("event", Value::Str("gn_iter".into())));
                        fields.push(("iter", Value::UInt(*iter as u64)));
                    }
                    StreamEvent::Terminal { status } => {
                        fields.push(("event", Value::Str("terminal".into())));
                        fields.push(("status", Value::Str(status.label().into())));
                    }
                }
                tagged("event", fields)
            }
            Response::Error { code, message } => tagged(
                "error",
                vec![("code", Value::Str(code.as_str().into())), ("message", message.to_value())],
            ),
        }
    }
}

fn ip_order_label(order: IpOrder) -> &'static str {
    match order {
        IpOrder::Linear => "linear",
        IpOrder::Cubic => "cubic",
        IpOrder::CubicSpline => "cubic_spline",
    }
}

fn ip_order_parse(s: &str) -> Option<IpOrder> {
    match s {
        "linear" => Some(IpOrder::Linear),
        "cubic" => Some(IpOrder::Cubic),
        "cubic_spline" => Some(IpOrder::CubicSpline),
        _ => None,
    }
}

fn precond_parse(s: &str) -> Option<PrecondKind> {
    match s {
        "InvA" => Some(PrecondKind::InvA),
        "InvH0" => Some(PrecondKind::InvH0),
        "2LInvH0" => Some(PrecondKind::TwoLevelInvH0),
        _ => None,
    }
}

fn precision_parse(s: &str) -> Option<Precision> {
    match s {
        "f64" => Some(Precision::F64),
        "mixed" => Some(Precision::Mixed),
        _ => None,
    }
}

fn config_to_value(c: &RegistrationConfig) -> Value {
    obj(vec![
        ("nt", Value::UInt(c.nt as u64)),
        ("ip_order", Value::Str(ip_order_label(c.ip_order).into())),
        ("store_grad", Value::Bool(c.store_grad)),
        ("precond", Value::Str(c.precond.label().into())),
        ("beta_target", Value::Num(c.beta_target)),
        ("beta_init", Value::Num(c.beta_init)),
        ("beta_reduction", Value::Num(c.beta_reduction)),
        ("continuation", Value::Bool(c.continuation)),
        ("grid_continuation", Value::Bool(c.grid_continuation)),
        ("eps_h0", Value::Num(c.eps_h0)),
        ("beta_floor", Value::Num(c.beta_floor)),
        ("grad_rtol", Value::Num(c.grad_rtol)),
        ("max_gn_iter", Value::UInt(c.max_gn_iter as u64)),
        ("max_pcg_iter", Value::UInt(c.max_pcg_iter as u64)),
        ("max_inner_iter", Value::UInt(c.max_inner_iter as u64)),
        ("fixed_pcg", c.fixed_pcg.map(|n| n as u64).to_value()),
        ("precision", Value::Str(c.precision.label().into())),
        ("verbose", Value::Bool(c.verbose)),
    ])
}

impl Serialize for WireInput {
    fn to_value(&self) -> Value {
        match self {
            WireInput::Synthetic { n } => {
                obj(vec![("kind", Value::Str("synthetic".into())), ("n", n.to_value())])
            }
            WireInput::Pair { n, template, reference } => obj(vec![
                ("kind", Value::Str("pair".into())),
                ("n", n.to_value()),
                ("template", real_array(template)),
                ("reference", real_array(reference)),
            ]),
        }
    }
}

fn real_array(data: &[Real]) -> Value {
    Value::Array(data.iter().map(|&x| Value::Num(x)).collect())
}

impl Serialize for WireJobSpec {
    fn to_value(&self) -> Value {
        obj(vec![
            ("label", self.label.to_value()),
            ("tenant", self.tenant.to_value()),
            ("priority", Value::Str(self.priority.label().into())),
            ("deadline_ms", self.deadline_ms.to_value()),
            ("config", config_to_value(&self.config)),
            ("input", self.input.to_value()),
        ])
    }
}

impl Serialize for RemoteJobResult {
    fn to_value(&self) -> Value {
        obj(vec![
            ("id", self.id.to_value()),
            ("label", self.label.to_value()),
            ("status", Value::Str(self.status.label().into())),
            ("report", self.report.as_ref().map(|r| r.to_value()).to_value()),
            ("run", self.run.to_value()),
            ("error", self.error.to_value()),
            ("queue_wait_secs", Value::Num(self.queue_wait_secs)),
            ("run_secs", Value::Num(self.run_secs)),
            ("total_secs", Value::Num(self.total_secs)),
            ("cached", Value::Bool(self.cached)),
        ])
    }
}

// ---------------------------------------------------------------------------
// decoding
// ---------------------------------------------------------------------------

fn bad(msg: impl Into<String>) -> WireError {
    WireError::Malformed(msg.into())
}

fn as_obj(v: &Value) -> Result<&[(String, Value)], WireError> {
    match v {
        Value::Object(pairs) => Ok(pairs),
        other => Err(bad(format!("expected an object, got {other:?}"))),
    }
}

fn field<'a>(o: &'a [(String, Value)], key: &str) -> Result<&'a Value, WireError> {
    o.iter().find(|(k, _)| k == key).map(|(_, v)| v).ok_or_else(|| bad(format!("missing `{key}`")))
}

fn opt_field<'a>(o: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    o.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn as_str(v: &Value, key: &str) -> Result<String, WireError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        other => Err(bad(format!("`{key}` must be a string, got {other:?}"))),
    }
}

fn as_bool(v: &Value, key: &str) -> Result<bool, WireError> {
    match v {
        Value::Bool(b) => Ok(*b),
        other => Err(bad(format!("`{key}` must be a bool, got {other:?}"))),
    }
}

fn as_u64(v: &Value, key: &str) -> Result<u64, WireError> {
    match v {
        Value::UInt(n) => Ok(*n),
        Value::Int(n) if *n >= 0 => Ok(*n as u64),
        Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => Ok(*x as u64),
        other => Err(bad(format!("`{key}` must be a non-negative integer, got {other:?}"))),
    }
}

fn as_usize(v: &Value, key: &str) -> Result<usize, WireError> {
    Ok(as_u64(v, key)? as usize)
}

fn as_f64(v: &Value, key: &str) -> Result<f64, WireError> {
    match v {
        Value::Num(x) => Ok(*x),
        Value::UInt(n) => Ok(*n as f64),
        Value::Int(n) => Ok(*n as f64),
        other => Err(bad(format!("`{key}` must be a number, got {other:?}"))),
    }
}

fn as_array<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], WireError> {
    match v {
        Value::Array(items) => Ok(items),
        other => Err(bad(format!("`{key}` must be an array, got {other:?}"))),
    }
}

fn extents(v: &Value) -> Result<[usize; 3], WireError> {
    let items = as_array(v, "n")?;
    if items.len() != 3 {
        return Err(bad(format!("`n` must have 3 extents, got {}", items.len())));
    }
    Ok([as_usize(&items[0], "n")?, as_usize(&items[1], "n")?, as_usize(&items[2], "n")?])
}

fn reals(v: &Value, key: &str) -> Result<Vec<Real>, WireError> {
    as_array(v, key)?.iter().map(|x| as_f64(x, key).map(|f| f as Real)).collect()
}

fn job_id(v: &Value) -> Result<JobId, WireError> {
    let s = as_str(v, "id")?;
    s.parse().map_err(|e: crate::job::ParseJobIdError| bad(e.to_string()))
}

fn job_status(v: &Value, key: &str) -> Result<JobStatus, WireError> {
    let s = as_str(v, key)?;
    JobStatus::parse(&s).ok_or_else(|| bad(format!("unknown job status `{s}`")))
}

fn parse_json(bytes: &[u8]) -> Result<Value, WireError> {
    let text = std::str::from_utf8(bytes).map_err(|e| bad(format!("invalid UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| bad(e.to_string()))
}

fn message_type(o: &[(String, Value)]) -> Result<String, WireError> {
    as_str(field(o, "type")?, "type")
}

/// Decode one frame payload as a [`Request`].
pub fn decode_request(bytes: &[u8]) -> Result<Request, WireError> {
    let v = parse_json(bytes)?;
    let o = as_obj(&v)?;
    match message_type(o)?.as_str() {
        "hello" => Ok(Request::Hello {
            protocol: as_u64(field(o, "protocol")?, "protocol")? as u32,
            client: as_str(field(o, "client")?, "client")?,
        }),
        "submit" => Ok(Request::Submit { spec: decode_spec(field(o, "spec")?)? }),
        "status" => Ok(Request::Status { id: job_id(field(o, "id")?)? }),
        "cancel" => Ok(Request::Cancel { id: job_id(field(o, "id")?)? }),
        "result" => Ok(Request::Result { id: job_id(field(o, "id")?)? }),
        "stream" => Ok(Request::Stream { id: job_id(field(o, "id")?)? }),
        other => Err(WireError::Protocol(format!("unsupported request type `{other}`"))),
    }
}

/// Decode one frame payload as a [`Response`].
pub fn decode_response(bytes: &[u8]) -> Result<Response, WireError> {
    let v = parse_json(bytes)?;
    let o = as_obj(&v)?;
    match message_type(o)?.as_str() {
        "hello" => Ok(Response::Hello {
            protocol: as_u64(field(o, "protocol")?, "protocol")? as u32,
            server: as_str(field(o, "server")?, "server")?,
        }),
        "submitted" => Ok(Response::Submitted {
            id: job_id(field(o, "id")?)?,
            cached: as_bool(field(o, "cached")?, "cached")?,
        }),
        "status" => Ok(Response::Status {
            id: job_id(field(o, "id")?)?,
            status: job_status(field(o, "status")?, "status")?,
        }),
        "cancelled" => Ok(Response::Cancelled {
            id: job_id(field(o, "id")?)?,
            delivered: as_bool(field(o, "delivered")?, "delivered")?,
        }),
        "result" => Ok(Response::Result { result: decode_result(field(o, "result")?)? }),
        "event" => {
            let id = job_id(field(o, "id")?)?;
            let event = match as_str(field(o, "event")?, "event")?.as_str() {
                "queued" => StreamEvent::Queued,
                "running" => StreamEvent::Running,
                "gn_iter" => StreamEvent::GnIter { iter: as_usize(field(o, "iter")?, "iter")? },
                "terminal" => {
                    StreamEvent::Terminal { status: job_status(field(o, "status")?, "status")? }
                }
                other => return Err(bad(format!("unknown stream event `{other}`"))),
            };
            Ok(Response::Event { id, event })
        }
        "error" => Ok(Response::Error {
            code: ErrorCode::parse(&as_str(field(o, "code")?, "code")?),
            message: as_str(field(o, "message")?, "message")?,
        }),
        other => Err(WireError::Protocol(format!("unsupported response type `{other}`"))),
    }
}

fn decode_config(v: &Value) -> Result<RegistrationConfig, WireError> {
    let o = as_obj(v)?;
    let ip = as_str(field(o, "ip_order")?, "ip_order")?;
    let pc = as_str(field(o, "precond")?, "precond")?;
    Ok(RegistrationConfig {
        nt: as_usize(field(o, "nt")?, "nt")?,
        ip_order: ip_order_parse(&ip).ok_or_else(|| bad(format!("unknown ip_order `{ip}`")))?,
        store_grad: as_bool(field(o, "store_grad")?, "store_grad")?,
        precond: precond_parse(&pc).ok_or_else(|| bad(format!("unknown precond `{pc}`")))?,
        beta_target: as_f64(field(o, "beta_target")?, "beta_target")?,
        beta_init: as_f64(field(o, "beta_init")?, "beta_init")?,
        beta_reduction: as_f64(field(o, "beta_reduction")?, "beta_reduction")?,
        continuation: as_bool(field(o, "continuation")?, "continuation")?,
        grid_continuation: as_bool(field(o, "grid_continuation")?, "grid_continuation")?,
        eps_h0: as_f64(field(o, "eps_h0")?, "eps_h0")?,
        beta_floor: as_f64(field(o, "beta_floor")?, "beta_floor")?,
        grad_rtol: as_f64(field(o, "grad_rtol")?, "grad_rtol")?,
        max_gn_iter: as_usize(field(o, "max_gn_iter")?, "max_gn_iter")?,
        max_pcg_iter: as_usize(field(o, "max_pcg_iter")?, "max_pcg_iter")?,
        max_inner_iter: as_usize(field(o, "max_inner_iter")?, "max_inner_iter")?,
        fixed_pcg: match field(o, "fixed_pcg")? {
            Value::Null => None,
            v => Some(as_usize(v, "fixed_pcg")?),
        },
        // Absent on pre-precision peers: default to the full-width path.
        precision: opt_field(o, "precision")
            .map(|v| as_str(v, "precision"))
            .transpose()?
            .map(|s| precision_parse(&s).ok_or_else(|| bad(format!("unknown precision `{s}`"))))
            .transpose()?
            .unwrap_or(Precision::F64),
        verbose: as_bool(field(o, "verbose")?, "verbose")?,
    })
}

fn decode_spec(v: &Value) -> Result<WireJobSpec, WireError> {
    let o = as_obj(v)?;
    let prio = as_str(field(o, "priority")?, "priority")?;
    let input_o = as_obj(field(o, "input")?)?;
    let input = match as_str(field(input_o, "kind")?, "kind")?.as_str() {
        "synthetic" => WireInput::Synthetic { n: extents(field(input_o, "n")?)? },
        "pair" => WireInput::Pair {
            n: extents(field(input_o, "n")?)?,
            template: reals(field(input_o, "template")?, "template")?,
            reference: reals(field(input_o, "reference")?, "reference")?,
        },
        other => return Err(bad(format!("unknown input kind `{other}`"))),
    };
    Ok(WireJobSpec {
        label: as_str(field(o, "label")?, "label")?,
        tenant: as_str(field(o, "tenant")?, "tenant")?,
        config: decode_config(field(o, "config")?)?,
        input,
        priority: Priority::parse(&prio)
            .ok_or_else(|| bad(format!("unknown priority `{prio}`")))?,
        deadline_ms: match field(o, "deadline_ms")? {
            Value::Null => None,
            v => Some(as_u64(v, "deadline_ms")?),
        },
    })
}

fn decode_report(v: &Value) -> Result<RegistrationReport, WireError> {
    let o = as_obj(v)?;
    let grid_v = as_array(field(o, "grid")?, "grid")?;
    if grid_v.len() != 3 {
        return Err(bad("`grid` must have 3 extents"));
    }
    Ok(RegistrationReport {
        data: as_str(field(o, "data")?, "data")?,
        pc: as_str(field(o, "pc")?, "pc")?,
        precision: opt_field(o, "precision")
            .map(|v| as_str(v, "precision"))
            .transpose()?
            .unwrap_or_else(|| "f64".into()),
        grid: [
            as_usize(&grid_v[0], "grid")?,
            as_usize(&grid_v[1], "grid")?,
            as_usize(&grid_v[2], "grid")?,
        ],
        nt: as_usize(field(o, "nt")?, "nt")?,
        nranks: as_usize(field(o, "nranks")?, "nranks")?,
        gn_iters: as_usize(field(o, "gn_iters")?, "gn_iters")?,
        pcg_iters: as_usize(field(o, "pcg_iters")?, "pcg_iters")?,
        rel_mismatch: as_f64(field(o, "rel_mismatch")?, "rel_mismatch")?,
        grad_rel: as_f64(field(o, "grad_rel")?, "grad_rel")?,
        n_inva: as_usize(field(o, "n_inva")?, "n_inva")?,
        n_invh0: as_usize(field(o, "n_invh0")?, "n_invh0")?,
        inner_cg_total: as_usize(field(o, "inner_cg_total")?, "inner_cg_total")?,
        inner_cg_avg: as_f64(field(o, "inner_cg_avg")?, "inner_cg_avg")?,
        time_pc: as_f64(field(o, "time_pc")?, "time_pc")?,
        time_obj: as_f64(field(o, "time_obj")?, "time_obj")?,
        time_grad: as_f64(field(o, "time_grad")?, "time_grad")?,
        time_hess: as_f64(field(o, "time_hess")?, "time_hess")?,
        time_total: as_f64(field(o, "time_total")?, "time_total")?,
        modeled_pc: as_f64(field(o, "modeled_pc")?, "modeled_pc")?,
        modeled_obj: as_f64(field(o, "modeled_obj")?, "modeled_obj")?,
        modeled_grad: as_f64(field(o, "modeled_grad")?, "modeled_grad")?,
        modeled_hess: as_f64(field(o, "modeled_hess")?, "modeled_hess")?,
        modeled_total: as_f64(field(o, "modeled_total")?, "modeled_total")?,
        jac_det_min: as_f64(field(o, "jac_det_min")?, "jac_det_min")?,
        jac_det_max: as_f64(field(o, "jac_det_max")?, "jac_det_max")?,
        memory_bytes_per_rank: as_u64(field(o, "memory_bytes_per_rank")?, "memory_bytes_per_rank")?,
    })
}

fn decode_result(v: &Value) -> Result<RemoteJobResult, WireError> {
    let o = as_obj(v)?;
    Ok(RemoteJobResult {
        id: job_id(field(o, "id")?)?,
        label: as_str(field(o, "label")?, "label")?,
        status: job_status(field(o, "status")?, "status")?,
        report: match field(o, "report")? {
            Value::Null => None,
            v => Some(decode_report(v)?),
        },
        run: match field(o, "run")? {
            Value::Null => None,
            v => Some(v.clone()),
        },
        error: match field(o, "error")? {
            Value::Null => None,
            v => Some(as_str(v, "error")?),
        },
        queue_wait_secs: as_f64(field(o, "queue_wait_secs")?, "queue_wait_secs")?,
        run_secs: as_f64(field(o, "run_secs")?, "run_secs")?,
        total_secs: as_f64(field(o, "total_secs")?, "total_secs")?,
        cached: opt_field(o, "cached").map(|v| as_bool(v, "cached")).transpose()?.unwrap_or(false),
    })
}

// ---------------------------------------------------------------------------
// fingerprints
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Incremental 64-bit FNV-1a (stable across processes and builds, unlike
/// `DefaultHasher`).
#[derive(Clone, Copy)]
pub(crate) struct Fnv(pub(crate) u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }
}

pub(crate) fn hash_config(h: &mut Fnv, n: [usize; 3], c: &RegistrationConfig) {
    for d in n {
        h.write_u64(d as u64);
    }
    h.write_u64(c.nt as u64);
    h.write(ip_order_label(c.ip_order).as_bytes());
    h.write_u64(c.store_grad as u64);
    h.write(c.precond.label().as_bytes());
    h.write_u64(c.beta_target.to_bits());
    h.write_u64(c.beta_init.to_bits());
    h.write_u64(c.beta_reduction.to_bits());
    h.write_u64(c.continuation as u64);
    h.write_u64(c.grid_continuation as u64);
    h.write_u64(c.eps_h0.to_bits());
    h.write_u64(c.beta_floor.to_bits());
    h.write_u64(c.grad_rtol.to_bits());
    h.write_u64(c.max_gn_iter as u64);
    h.write_u64(c.max_pcg_iter as u64);
    h.write_u64(c.max_inner_iter as u64);
    match c.fixed_pcg {
        Some(k) => {
            h.write_u64(1);
            h.write_u64(k as u64);
        }
        None => h.write_u64(0),
    }
    h.write_u64(c.verbose as u64);
}

/// Deterministic solver fingerprint of a wire spec: grid extents plus every
/// solver-relevant configuration field (exactly the fields the service's
/// coalescing key uses), *excluding* image data, labels, tenants,
/// priorities, and deadlines. Two jobs with equal fingerprints can share
/// one `BatchSolver` run — the router shards on this so same-fingerprint
/// jobs land on the same worker process and coalescing still finds peers.
pub fn solver_fingerprint(spec: &WireJobSpec) -> u64 {
    let n = match &spec.input {
        WireInput::Synthetic { n } => *n,
        WireInput::Pair { n, .. } => *n,
    };
    let mut h = Fnv::new();
    hash_config(&mut h, n, &spec.config);
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WireJobSpec {
        WireJobSpec {
            label: "unit".into(),
            tenant: "t0".into(),
            config: RegistrationConfig::default(),
            input: WireInput::Synthetic { n: [8, 8, 8] },
            priority: Priority::High,
            deadline_ms: Some(1500),
        }
    }

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(&buf[..4], &5u32.to_be_bytes());
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap(), b"hello");
        assert!(matches!(read_frame(&mut r, MAX_FRAME_BYTES), Err(WireError::Closed)));
    }

    #[test]
    fn oversized_and_truncated_frames_are_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 64]).unwrap();
        let err = read_frame(&mut io::Cursor::new(&buf), 16).unwrap_err();
        assert!(matches!(err, WireError::FrameTooLarge { len: 64, max: 16 }), "{err}");

        let err = read_frame(&mut io::Cursor::new(&buf[..buf.len() - 10]), 1024).unwrap_err();
        assert!(matches!(err, WireError::Truncated { expected: 64, got: 54 }), "{err}");

        // header itself cut short
        let err = read_frame(&mut io::Cursor::new(&buf[..2]), 1024).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }), "{err}");
    }

    #[test]
    fn request_envelopes_round_trip() {
        let id: JobId = "job-42".parse().unwrap();
        let reqs = vec![
            Request::Hello { protocol: PROTOCOL_VERSION, client: "test".into() },
            Request::Submit { spec: spec() },
            Request::Status { id },
            Request::Cancel { id },
            Request::Result { id },
            Request::Stream { id },
        ];
        for req in reqs {
            let back = decode_request(&encode(&req)).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_envelopes_round_trip() {
        let id: JobId = "job-7".parse().unwrap();
        let resps = vec![
            Response::Hello { protocol: PROTOCOL_VERSION, server: "srv".into() },
            Response::Submitted { id, cached: true },
            Response::Status { id, status: JobStatus::Running },
            Response::Cancelled { id, delivered: false },
            Response::Event { id, event: StreamEvent::Queued },
            Response::Event { id, event: StreamEvent::GnIter { iter: 3 } },
            Response::Event { id, event: StreamEvent::Terminal { status: JobStatus::Succeeded } },
            Response::Error { code: ErrorCode::QuotaExceeded, message: "slow down".into() },
        ];
        for resp in resps {
            let back = decode_response(&encode(&resp)).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn garbage_payloads_are_malformed() {
        assert!(matches!(decode_request(b"not json"), Err(WireError::Malformed(_))));
        assert!(matches!(decode_request(b"[1,2,3]"), Err(WireError::Malformed(_))));
        assert!(matches!(decode_request(b"{\"no\":\"type\"}"), Err(WireError::Malformed(_))));
        assert!(matches!(decode_request(b"{\"type\":\"warp\"}"), Err(WireError::Protocol(_))));
        assert!(matches!(decode_response(&[0xff, 0xfe]), Err(WireError::Malformed(_))));
    }

    #[test]
    fn pair_spec_survives_bitwise() {
        let data: Vec<Real> = (0..8 * 8 * 8).map(|i| (i as Real).sin() * 1e-3).collect();
        let w = WireJobSpec {
            input: WireInput::Pair {
                n: [8, 8, 8],
                template: data.clone(),
                reference: data.iter().map(|x| x * 0.5).collect(),
            },
            ..spec()
        };
        let Request::Submit { spec: back } =
            decode_request(&encode(&Request::Submit { spec: w.clone() })).unwrap()
        else {
            panic!("wrong variant");
        };
        assert_eq!(back, w);
        let (WireInput::Pair { template: a, .. }, WireInput::Pair { template: b, .. }) =
            (&back.input, &w.input)
        else {
            panic!("wrong input kind");
        };
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "image samples must survive bitwise");
        }
    }

    #[test]
    fn into_spec_validates_sample_counts() {
        let w = WireJobSpec {
            input: WireInput::Pair { n: [8, 8, 8], template: vec![0.0; 5], reference: vec![] },
            ..spec()
        };
        assert!(matches!(w.into_spec(), Err(WireError::Malformed(_))));
    }

    #[test]
    fn fingerprint_ignores_identity_but_not_solver_fields() {
        let a = spec();
        let mut b = spec();
        b.label = "other".into();
        b.tenant = "t9".into();
        b.priority = Priority::Low;
        b.deadline_ms = None;
        assert_eq!(solver_fingerprint(&a), solver_fingerprint(&b));

        let mut c = spec();
        c.config.nt += 1;
        assert_ne!(solver_fingerprint(&a), solver_fingerprint(&c));
        let mut d = spec();
        d.input = WireInput::Synthetic { n: [16, 8, 8] };
        assert_ne!(solver_fingerprint(&a), solver_fingerprint(&d));
    }
}
