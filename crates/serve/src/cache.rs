//! Content-hash result cache: identical registrations served without
//! solving.
//!
//! A registration is a pure function of its input images and solver
//! configuration, so two jobs whose *content* agrees bitwise must produce
//! bitwise-identical results — the batch-equivalence tests prove the solver
//! holds that invariant. The cache keys on a 128-bit FNV-1a digest of the
//! grid extents, every solver-relevant config field (the same field set as
//! the coalescing fingerprint), and the raw `f64` bits of both images
//! (synthetic inputs hash their extents — the generator is deterministic).
//! Labels, tenants, priorities, and deadlines are *not* part of the key;
//! they are identity, not content.
//!
//! Only `Succeeded` results are stored (a cancelled or failed run says
//! nothing about what the solve would have produced). Eviction is FIFO at
//! a fixed capacity — registrations are expensive enough that even a small
//! cache pays for itself, and FIFO keeps the structure allocation-light.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::job::{JobInput, JobResult, JobSpec, JobStatus};
use crate::wire::{hash_config, Fnv};

/// Cache hit/miss/occupancy counters (monotone over the service lifetime,
/// except `entries`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (the job went on to solve).
    pub misses: u64,
    /// Results currently stored.
    pub entries: usize,
}

/// 128-bit content key: two independent FNV-1a streams (different offset
/// bases) over the same byte sequence, so single-stream collisions don't
/// collide the pair.
pub fn content_key(spec: &JobSpec) -> u128 {
    let n = spec.input.grid();
    let mut lo = Fnv::new();
    let mut hi = Fnv(0x6c62272e07bb0142); // FNV-1a 128 offset basis, high half
    for h in [&mut lo, &mut hi] {
        hash_config(h, n, &spec.config);
        match &spec.input {
            JobInput::Synthetic { .. } => h.write(b"synthetic"),
            JobInput::Pair { template, reference } => {
                h.write(b"pair");
                for field in [template, reference] {
                    for &x in field.data() {
                        h.write_u64(x.to_bits());
                    }
                }
            }
        }
    }
    ((hi.0 as u128) << 64) | lo.0 as u128
}

struct Inner {
    map: HashMap<u128, JobResult>,
    order: VecDeque<u128>,
}

/// Bounded FIFO map from content key to the succeeded [`JobResult`].
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` results.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::with_capacity(capacity.min(64)),
                order: VecDeque::with_capacity(capacity.min(64)),
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up a content key, counting the hit or miss.
    pub fn lookup(&self, key: u128) -> Option<JobResult> {
        let inner = self.inner.lock().unwrap();
        match inner.map.get(&key) {
            Some(result) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(result.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a succeeded result (anything else is ignored). Overwrites an
    /// existing entry for the same key without disturbing FIFO order.
    pub fn insert(&self, key: u128, result: &JobResult) {
        if result.status != JobStatus::Succeeded {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        if inner.map.insert(key, result.clone()).is_none() {
            inner.order.push_back(key);
            while inner.order.len() > self.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> ResultCacheStats {
        ResultCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.inner.lock().unwrap().map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use claire_core::RegistrationConfig;
    use claire_grid::{Grid, Layout, Real, ScalarField};
    use std::time::Duration;

    fn result(label: &str, status: JobStatus) -> JobResult {
        JobResult {
            id: JobId::from_u64(1),
            label: label.into(),
            status,
            report: None,
            run: None,
            error: None,
            from_cache: false,
            queue_wait: Duration::ZERO,
            run_time: Duration::ZERO,
            total: Duration::ZERO,
        }
    }

    fn syn_spec(label: &str, n: usize) -> JobSpec {
        JobSpec::new(label, RegistrationConfig::default(), JobInput::Synthetic { n: [n; 3] })
    }

    #[test]
    fn key_ignores_identity_fields() {
        let a = syn_spec("a", 8).tenant("t1").deadline(Duration::from_secs(1));
        let b = syn_spec("b", 8);
        assert_eq!(content_key(&a), content_key(&b));
        assert_ne!(content_key(&a), content_key(&syn_spec("a", 16)));
        let mut c = syn_spec("a", 8);
        c.config.max_gn_iter += 1;
        assert_ne!(content_key(&a), content_key(&c));
    }

    #[test]
    fn key_sees_image_bits() {
        let layout = Layout::serial(Grid::cube(4));
        let mk = |bump: Real| {
            let mut t = ScalarField::zeros(layout);
            t.data_mut()[7] = 0.25 + bump;
            let r = ScalarField::zeros(layout);
            JobSpec::new(
                "pair",
                RegistrationConfig::default(),
                JobInput::Pair { template: t, reference: r },
            )
        };
        assert_eq!(content_key(&mk(0.0)), content_key(&mk(0.0)));
        // one ulp of one voxel changes the key
        assert_ne!(content_key(&mk(0.0)), content_key(&mk(Real::EPSILON)));
    }

    #[test]
    fn fifo_eviction_and_counters() {
        let cache = ResultCache::new(2);
        assert!(cache.lookup(1).is_none());
        cache.insert(1, &result("one", JobStatus::Succeeded));
        cache.insert(2, &result("two", JobStatus::Succeeded));
        cache.insert(3, &result("three", JobStatus::Succeeded));
        assert!(cache.lookup(1).is_none(), "oldest entry evicted");
        assert_eq!(cache.lookup(2).unwrap().label, "two");
        assert_eq!(cache.lookup(3).unwrap().label, "three");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 2, 2));
    }

    #[test]
    fn only_successes_are_stored() {
        let cache = ResultCache::new(4);
        for status in [JobStatus::Failed, JobStatus::Cancelled, JobStatus::DeadlineExpired] {
            cache.insert(9, &result("nope", status));
        }
        assert!(cache.lookup(9).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
