//! Global grid geometry.

use crate::real::{Real, TWO_PI};

/// A regular periodic grid on `Ω = [0, 2π)³`.
///
/// `n = [n1, n2, n3]` are the numbers of grid points per dimension; the grid
/// spacing is `h_i = 2π / n_i` and grid point `(i, j, k)` sits at
/// `(i·h1, j·h2, k·h3)`. Periodicity means index arithmetic wraps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid {
    /// Points per dimension `[n1, n2, n3]` (x1 outermost / slowest).
    pub n: [usize; 3],
}

impl Grid {
    /// Create a grid; every dimension must have at least 2 points.
    pub fn new(n: [usize; 3]) -> Self {
        assert!(n.iter().all(|&ni| ni >= 2), "grid needs >= 2 points per dim: {n:?}");
        Self { n }
    }

    /// Cubic grid `n × n × n`.
    pub fn cube(n: usize) -> Self {
        Self::new([n, n, n])
    }

    /// Total number of grid points `N = n1·n2·n3`.
    pub fn len(&self) -> usize {
        self.n[0] * self.n[1] * self.n[2]
    }

    /// True if the grid is degenerate (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Grid spacing `h = [2π/n1, 2π/n2, 2π/n3]`.
    pub fn spacing(&self) -> [Real; 3] {
        [TWO_PI / self.n[0] as Real, TWO_PI / self.n[1] as Real, TWO_PI / self.n[2] as Real]
    }

    /// Volume element `h1·h2·h3` of the midpoint quadrature used for all
    /// integrals over Ω.
    pub fn cell_volume(&self) -> Real {
        let h = self.spacing();
        h[0] * h[1] * h[2]
    }

    /// Physical coordinates of grid point `(i, j, k)`.
    pub fn coords(&self, i: usize, j: usize, k: usize) -> [Real; 3] {
        let h = self.spacing();
        [i as Real * h[0], j as Real * h[1], k as Real * h[2]]
    }

    /// Linear index of global point `(i, j, k)` in row-major x3-fastest order.
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.n[0] && j < self.n[1] && k < self.n[2]);
        (i * self.n[1] + j) * self.n[2] + k
    }

    /// Inverse of [`Grid::idx`].
    pub fn unidx(&self, idx: usize) -> [usize; 3] {
        let k = idx % self.n[2];
        let j = (idx / self.n[2]) % self.n[1];
        let i = idx / (self.n[1] * self.n[2]);
        [i, j, k]
    }

    /// Wrap a (possibly negative) index into `0..n[dim]` periodically.
    pub fn wrap(&self, dim: usize, i: isize) -> usize {
        let n = self.n[dim] as isize;
        (((i % n) + n) % n) as usize
    }

    /// Coarsen by a factor of two per dimension (for the two-level
    /// preconditioner). Requires even dimensions.
    pub fn coarsen(&self) -> Grid {
        assert!(
            self.n.iter().all(|&ni| ni % 2 == 0 && ni >= 4),
            "coarsening needs even dims >= 4: {:?}",
            self.n
        );
        Grid::new([self.n[0] / 2, self.n[1] / 2, self.n[2] / 2])
    }

    /// Signed spectral wavenumber for index `i` in dimension `dim`:
    /// `0, 1, …, n/2, -(n/2-1), …, -1` (the `n/2` Nyquist mode is positive).
    pub fn wavenumber(&self, dim: usize, i: usize) -> isize {
        let n = self.n[dim];
        debug_assert!(i < n);
        if i <= n / 2 {
            i as isize
        } else {
            i as isize - n as isize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_roundtrip() {
        let g = Grid::new([4, 6, 8]);
        for idx in 0..g.len() {
            let [i, j, k] = g.unidx(idx);
            assert_eq!(g.idx(i, j, k), idx);
        }
    }

    #[test]
    fn spacing_and_volume() {
        let g = Grid::cube(8);
        let h = g.spacing();
        assert!((h[0] - TWO_PI / 8.0).abs() < 1e-12);
        let vol_total = g.cell_volume() * g.len() as Real;
        assert!((vol_total - TWO_PI.powi(3)).abs() < 1e-6 * TWO_PI.powi(3));
    }

    #[test]
    fn wrap_negative_and_large() {
        let g = Grid::cube(8);
        assert_eq!(g.wrap(0, -1), 7);
        assert_eq!(g.wrap(0, 8), 0);
        assert_eq!(g.wrap(0, -9), 7);
        assert_eq!(g.wrap(0, 17), 1);
    }

    #[test]
    fn wavenumbers_symmetric() {
        let g = Grid::cube(8);
        let ks: Vec<isize> = (0..8).map(|i| g.wavenumber(0, i)).collect();
        assert_eq!(ks, vec![0, 1, 2, 3, 4, -3, -2, -1]);
    }

    #[test]
    fn coarsen_halves() {
        let g = Grid::new([8, 16, 4]);
        assert_eq!(g.coarsen().n, [4, 8, 2]);
    }

    #[test]
    #[should_panic(expected = "grid needs")]
    fn tiny_grid_rejected() {
        Grid::new([1, 4, 4]);
    }
}
