//! x1-slab decomposition of the global grid over ranks.
//!
//! The paper's multi-GPU implementation decomposes the spatial domain "in
//! the outer-most dimension (i.e., x1)" (§3.3). Rank `r` owns the contiguous
//! x1-plane range `[i0, i0 + ni)`; planes are distributed as evenly as
//! possible (the first `n1 mod p` ranks get one extra plane).

use claire_mpi::Comm;

use crate::grid::Grid;

/// The x1-plane range owned by one rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Slab {
    /// First owned global x1 index.
    pub i0: usize,
    /// Number of owned x1 planes.
    pub ni: usize,
}

impl Slab {
    /// The slab owned by `rank` among `nranks` for `n1` planes.
    pub fn of_rank(n1: usize, nranks: usize, rank: usize) -> Slab {
        assert!(rank < nranks);
        assert!(nranks <= n1, "more ranks ({nranks}) than x1 planes ({n1}): slab would be empty");
        let base = n1 / nranks;
        let extra = n1 % nranks;
        let ni = base + usize::from(rank < extra);
        let i0 = rank * base + rank.min(extra);
        Slab { i0, ni }
    }

    /// Whole-grid slab (serial execution).
    pub fn full(n1: usize) -> Slab {
        Slab { i0: 0, ni: n1 }
    }

    /// One past the last owned plane.
    pub fn i_end(&self) -> usize {
        self.i0 + self.ni
    }

    /// Whether global plane `i` belongs to this slab.
    pub fn owns(&self, i: usize) -> bool {
        i >= self.i0 && i < self.i_end()
    }

    /// The rank owning global plane `i` under the balanced distribution.
    pub fn owner_of(n1: usize, nranks: usize, i: usize) -> usize {
        debug_assert!(i < n1);
        let base = n1 / nranks;
        let extra = n1 % nranks;
        let cutoff = extra * (base + 1);
        if i < cutoff {
            i / (base + 1)
        } else {
            extra + (i - cutoff) / base
        }
    }
}

/// A grid together with the slab this rank holds of it.
///
/// A serial field is a `Layout` whose slab covers the whole grid, so kernels
/// need only one code path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    /// Global grid.
    pub grid: Grid,
    /// Locally owned slab.
    pub slab: Slab,
    /// Number of ranks the grid is distributed over.
    pub nranks: usize,
    /// This rank's id.
    pub rank: usize,
}

impl Layout {
    /// Serial layout: one rank owning everything.
    pub fn serial(grid: Grid) -> Layout {
        Layout { grid, slab: Slab::full(grid.n[0]), nranks: 1, rank: 0 }
    }

    /// Distributed layout for the calling rank of `comm`.
    pub fn distributed(grid: Grid, comm: &Comm) -> Layout {
        Layout {
            grid,
            slab: Slab::of_rank(grid.n[0], comm.size(), comm.rank()),
            nranks: comm.size(),
            rank: comm.rank(),
        }
    }

    /// Local dims `[ni, n2, n3]`.
    pub fn local_dims(&self) -> [usize; 3] {
        [self.slab.ni, self.grid.n[1], self.grid.n[2]]
    }

    /// Number of locally stored points.
    pub fn local_len(&self) -> usize {
        self.slab.ni * self.grid.n[1] * self.grid.n[2]
    }

    /// Local linear index of (local plane `il`, `j`, `k`).
    pub fn local_idx(&self, il: usize, j: usize, k: usize) -> usize {
        debug_assert!(il < self.slab.ni && j < self.grid.n[1] && k < self.grid.n[2]);
        (il * self.grid.n[1] + j) * self.grid.n[2] + k
    }

    /// The slab of any rank in this layout.
    pub fn slab_of(&self, rank: usize) -> Slab {
        Slab::of_rank(self.grid.n[0], self.nranks, rank)
    }

    /// The rank owning global x1 plane `i`.
    pub fn owner_of_plane(&self, i: usize) -> usize {
        Slab::owner_of(self.grid.n[0], self.nranks, i)
    }

    /// Whether this layout spans a single rank.
    pub fn is_serial(&self) -> bool {
        self.nranks == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn balanced_partition() {
        // 10 planes over 4 ranks -> 3,3,2,2
        let slabs: Vec<Slab> = (0..4).map(|r| Slab::of_rank(10, 4, r)).collect();
        assert_eq!(slabs[0], Slab { i0: 0, ni: 3 });
        assert_eq!(slabs[1], Slab { i0: 3, ni: 3 });
        assert_eq!(slabs[2], Slab { i0: 6, ni: 2 });
        assert_eq!(slabs[3], Slab { i0: 8, ni: 2 });
    }

    #[test]
    #[should_panic(expected = "more ranks")]
    fn empty_slab_rejected() {
        Slab::of_rank(4, 8, 0);
    }

    proptest! {
        #[test]
        fn partition_of_unity(n1 in 1usize..200, p in 1usize..32) {
            prop_assume!(p <= n1);
            let mut covered = 0;
            for r in 0..p {
                let s = Slab::of_rank(n1, p, r);
                prop_assert_eq!(s.i0, covered, "slabs must be contiguous");
                covered += s.ni;
                prop_assert!(s.ni >= n1 / p);
                prop_assert!(s.ni <= n1 / p + 1);
            }
            prop_assert_eq!(covered, n1);
        }

        #[test]
        fn owner_matches_slab(n1 in 1usize..200, p in 1usize..32, i in 0usize..200) {
            prop_assume!(p <= n1 && i < n1);
            let owner = Slab::owner_of(n1, p, i);
            prop_assert!(Slab::of_rank(n1, p, owner).owns(i));
        }
    }

    #[test]
    fn serial_layout_covers_grid() {
        let l = Layout::serial(Grid::cube(8));
        assert_eq!(l.local_len(), 512);
        assert!(l.is_serial());
        assert_eq!(l.owner_of_plane(5), 0);
    }
}
