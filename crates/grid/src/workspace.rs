//! Solver-wide workspace buffer pool.
//!
//! The paper's solver is memory-bound: its §3 model budgets every buffer
//! (`µtotal ≈ (74 + Nt)·N·µ0/p + µIP`) into the categories µPDE, µFFT, µFD,
//! µSL, and µGN/CG, and the GPU implementation pre-allocates all of them
//! once so the steady-state Gauss–Newton iteration performs no allocations.
//! This module reproduces that discipline for the Rust port: a [`Pool`]
//! keeps checked-in buffers on shelves keyed by capacity, and a checkout
//! returns a [`PoolVec`] that checks itself back in on drop. After a warm-up
//! iteration has populated the shelves, every further checkout is a reuse —
//! the hot path stops touching the system allocator entirely (enforced by
//! the `zero_alloc` tier-1 test).
//!
//! Accounting is per *category* ([`WsCat`], mirroring the paper's budget
//! terms) and global across pools: [`stats`] reports checkouts, misses
//! (fresh allocations), bytes currently charged, and the high-water mark,
//! which `claire-obs` exposes in the RunReport `memory` block so the
//! measured footprint can be compared against the analytic model in
//! `claire-core::memory`.

use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::field::{ScalarField, VectorField};
use crate::real::Real;

/// Workspace budget category, mirroring the paper's §3 memory model terms.
///
/// Categories are an *accounting* dimension only: buffers live on shared
/// per-pool shelves and move freely between categories across checkouts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WsCat {
    /// PDE state storage (µPDE): state/adjoint time series, velocity fields.
    Pde,
    /// FFT work buffers (µFFT): spectral data, per-worker transform scratch.
    Fft,
    /// Finite-difference work buffers (µFD): ghost layers, stencil temps.
    Fd,
    /// Semi-Lagrangian buffers (µSL): characteristic feet, RK2 stages.
    Sl,
    /// Gauss–Newton/Krylov vectors (µGN/CG).
    GnCg,
    /// Anything outside the paper's named budgets.
    Other,
}

impl WsCat {
    /// Every category, in the paper's §3 order.
    pub const ALL: [WsCat; 6] =
        [WsCat::Pde, WsCat::Fft, WsCat::Fd, WsCat::Sl, WsCat::GnCg, WsCat::Other];

    /// Stable label used in reports (`pde`, `fft`, `fd`, `sl`, `gn_cg`,
    /// `other`).
    pub fn label(self) -> &'static str {
        match self {
            WsCat::Pde => "pde",
            WsCat::Fft => "fft",
            WsCat::Fd => "fd",
            WsCat::Sl => "sl",
            WsCat::GnCg => "gn_cg",
            WsCat::Other => "other",
        }
    }

    fn idx(self) -> usize {
        match self {
            WsCat::Pde => 0,
            WsCat::Fft => 1,
            WsCat::Fd => 2,
            WsCat::Sl => 3,
            WsCat::GnCg => 4,
            WsCat::Other => 5,
        }
    }
}

struct CatCounters {
    checkouts: AtomicU64,
    misses: AtomicU64,
    in_use: AtomicU64,
    peak: AtomicU64,
}

impl CatCounters {
    const fn new() -> CatCounters {
        CatCounters {
            checkouts: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            in_use: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const CAT_COUNTERS_INIT: CatCounters = CatCounters::new();
static STATS: [CatCounters; 6] = [CAT_COUNTERS_INIT; 6];

/// Snapshot of one category's accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct CatStats {
    /// Buffers handed out (hits + misses).
    pub checkouts: u64,
    /// Checkouts that had to allocate fresh memory.
    pub misses: u64,
    /// Bytes currently checked out (charged at checkout capacity).
    pub in_use_bytes: u64,
    /// High-water mark of `in_use_bytes`.
    pub peak_bytes: u64,
}

/// Per-category stats snapshot, in [`WsCat::ALL`] order.
pub fn stats() -> [CatStats; 6] {
    std::array::from_fn(|i| {
        let c = &STATS[i];
        CatStats {
            checkouts: c.checkouts.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            in_use_bytes: c.in_use.load(Ordering::Relaxed),
            peak_bytes: c.peak.load(Ordering::Relaxed),
        }
    })
}

/// Sum of [`stats`] over all categories.
pub fn total_stats() -> CatStats {
    let mut t = CatStats::default();
    for s in stats() {
        t.checkouts += s.checkouts;
        t.misses += s.misses;
        t.in_use_bytes += s.in_use_bytes;
        t.peak_bytes += s.peak_bytes;
    }
    t
}

/// Reset checkout/miss counters and the high-water mark (to the current
/// in-use level) — called by `observe::begin` so each run reports its own
/// numbers. Buffers already on shelves stay there (warm pools are the
/// point).
pub fn reset_stats() {
    for c in &STATS {
        c.checkouts.store(0, Ordering::Relaxed);
        c.misses.store(0, Ordering::Relaxed);
        c.peak.store(c.in_use.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

fn charge(cat: WsCat, bytes: usize) {
    let c = &STATS[cat.idx()];
    c.checkouts.fetch_add(1, Ordering::Relaxed);
    let now = c.in_use.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
    c.peak.fetch_max(now, Ordering::Relaxed);
}

fn uncharge(cat: WsCat, bytes: usize) {
    STATS[cat.idx()].in_use.fetch_sub(bytes as u64, Ordering::Relaxed);
}

/// Per-capacity shelf depth cap: bounds pool growth if a workload churns
/// through many buffers of one size (excess check-ins are simply freed).
const MAX_SHELF: usize = 64;

/// A buffer pool for `Vec<T>` work buffers, keyed by capacity.
///
/// `checkout` returns the smallest shelved buffer whose capacity covers the
/// request (allocating fresh on a miss); dropping the returned [`PoolVec`]
/// clears it and puts it back. Pools are declared as `static`s (they must
/// outlive every buffer) and are safe to use from the scoped worker threads
/// of `claire-par` — concurrent checkouts never alias, each returns a
/// distinct buffer.
pub struct Pool<T: Send + 'static> {
    shelf: Mutex<BTreeMap<usize, Vec<Vec<T>>>>,
}

impl<T: Send + 'static> Default for Pool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + 'static> Pool<T> {
    /// An empty pool (const, so pools can be `static`s).
    pub const fn new() -> Pool<T> {
        Pool { shelf: Mutex::new(BTreeMap::new()) }
    }

    /// Check out an *empty* buffer with `capacity >= cap`, charged to `cat`.
    pub fn checkout(&'static self, cap: usize, cat: WsCat) -> PoolVec<T> {
        let reused = {
            // Emptied size-class stacks are deliberately left in the map:
            // removing them would free a BTreeMap node (and the stack's own
            // spine) that the matching check-in immediately re-allocates,
            // breaking the zero-allocation steady state.
            let mut shelf = self.shelf.lock().unwrap();
            let key = shelf.range(cap..).find(|(_, s)| !s.is_empty()).map(|(&k, _)| k);
            key.and_then(|k| shelf.get_mut(&k).and_then(Vec::pop))
        };
        let buf = match reused {
            Some(b) => b,
            None => {
                STATS[cat.idx()].misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(cap)
            }
        };
        let charged = buf.capacity() * std::mem::size_of::<T>();
        charge(cat, charged);
        PoolVec { buf, cat, charged, pool: self }
    }

    /// Wrap an existing vector so it migrates into the pool on drop.
    pub fn adopt(&'static self, buf: Vec<T>, cat: WsCat) -> PoolVec<T> {
        let charged = buf.capacity() * std::mem::size_of::<T>();
        charge(cat, charged);
        PoolVec { buf, cat, charged, pool: self }
    }

    fn checkin(&self, mut buf: Vec<T>) {
        buf.clear(); // drop elements before taking the shelf lock
        if buf.capacity() == 0 {
            return;
        }
        let mut shelf = self.shelf.lock().unwrap();
        let stack = shelf.entry(buf.capacity()).or_default();
        if stack.len() < MAX_SHELF {
            stack.push(buf);
        }
    }

    /// Number of buffers currently shelved (idle) in this pool.
    pub fn idle_buffers(&self) -> usize {
        self.shelf.lock().unwrap().values().map(Vec::len).sum()
    }

    /// Free every shelved buffer.
    pub fn drain(&self) {
        self.shelf.lock().unwrap().clear();
    }
}

impl<T: Copy + Send + 'static> Pool<T> {
    /// Check out a buffer of exactly `len` elements, every one set to
    /// `fill` (stale contents from previous users are overwritten).
    pub fn checkout_filled(&'static self, len: usize, fill: T, cat: WsCat) -> PoolVec<T> {
        let mut v = self.checkout(len, cat);
        v.resize(len, fill);
        v
    }
}

/// An RAII pooled buffer: derefs to `Vec<T>`, checks back into its pool on
/// drop. The bytes charged to its [`WsCat`] are fixed at checkout (growing
/// the vector afterwards is not re-charged).
pub struct PoolVec<T: Send + 'static> {
    buf: Vec<T>,
    cat: WsCat,
    charged: usize,
    pool: &'static Pool<T>,
}

impl<T: Send + 'static> PoolVec<T> {
    /// The category this buffer is charged to.
    pub fn category(&self) -> WsCat {
        self.cat
    }

    /// Extract the inner vector; the pool never sees this buffer again.
    pub fn into_vec(mut self) -> Vec<T> {
        std::mem::take(&mut self.buf) // drop checks in the empty husk (no-op)
    }
}

impl<T: Send + 'static> Drop for PoolVec<T> {
    fn drop(&mut self) {
        uncharge(self.cat, self.charged);
        if self.buf.capacity() > 0 {
            self.pool.checkin(std::mem::take(&mut self.buf));
        }
    }
}

impl<T: Send + 'static> Deref for PoolVec<T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        &self.buf
    }
}

impl<T: Send + 'static> DerefMut for PoolVec<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.buf
    }
}

impl<'a, T: Send + 'static> IntoIterator for &'a PoolVec<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter()
    }
}

impl<'a, T: Send + 'static> IntoIterator for &'a mut PoolVec<T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter_mut()
    }
}

impl<T: Clone + Send + 'static> Clone for PoolVec<T> {
    fn clone(&self) -> Self {
        let mut out = self.pool.checkout(self.buf.len(), self.cat);
        out.extend_from_slice(&self.buf);
        out
    }
}

impl<T: std::fmt::Debug + Send + 'static> std::fmt::Debug for PoolVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.buf.fmt(f)
    }
}

impl<T: PartialEq + Send + 'static> PartialEq for PoolVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.buf == other.buf
    }
}

// ----- the solver's shared pools --------------------------------------------

/// Scalar samples: field storage, interpolation values, FD ghost layers.
pub static REAL_POOL: Pool<Real> = Pool::new();
/// Off-width scalar samples for the mixed-precision inner solve: f32 PCG
/// vectors and spectral scratch in a default (f64) build. Kept separate
/// from [`REAL_POOL`] so pool shelves stay keyed by element size and the
/// memory accounting reflects the halved footprint.
#[cfg(not(feature = "single"))]
pub static REAL32_POOL: Pool<f32> = Pool::new();
/// Off-width (f64) pool under the `single` feature — cold path, exists so
/// the precision seam compiles in both field widths.
#[cfg(feature = "single")]
pub static REAL64_POOL: Pool<f64> = Pool::new();
/// Points/displacements `[x1, x2, x3]`: characteristic feet, RK2 stages.
pub static R3_POOL: Pool<[Real; 3]> = Pool::new();
/// Time-series containers of scalar fields (state/adjoint trajectories).
pub static SCALAR_FIELDS: Pool<ScalarField> = Pool::new();
/// Time-series containers of vector fields (stored state gradients).
pub static VECTOR_FIELDS: Pool<VectorField> = Pool::new();

/// A scalar element field storage can be generic over: [`claire_simd::Elem`]
/// (the dispatched kernel seam) plus a binding to the solver-wide pool that
/// shelves buffers of this width. Implemented for exactly `f64` and `f32`.
pub trait FieldElem: claire_simd::Elem + Send {
    /// The solver-wide pool backing fields of this element width.
    fn pool() -> &'static Pool<Self>;
}

impl FieldElem for Real {
    fn pool() -> &'static Pool<Real> {
        &REAL_POOL
    }
}

#[cfg(not(feature = "single"))]
impl FieldElem for f32 {
    fn pool() -> &'static Pool<f32> {
        &REAL32_POOL
    }
}

#[cfg(feature = "single")]
impl FieldElem for f64 {
    fn pool() -> &'static Pool<f64> {
        &REAL64_POOL
    }
}

/// Checked-out zeroed scalar buffer of length `len`.
pub fn real_zeroed(len: usize, cat: WsCat) -> PoolVec<Real> {
    REAL_POOL.checkout_filled(len, 0.0 as Real, cat)
}

/// Free every shelved buffer in all solver pools. Checked-out buffers
/// are unaffected. This exists for benchmarks that model a cold process
/// (e.g. `bench_batch`'s sequential baseline) — production code should
/// never need it.
pub fn drain_all() {
    REAL_POOL.drain();
    #[cfg(not(feature = "single"))]
    REAL32_POOL.drain();
    #[cfg(feature = "single")]
    REAL64_POOL.drain();
    R3_POOL.drain();
    SCALAR_FIELDS.drain();
    VECTOR_FIELDS.drain();
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    static TEST_POOL: Pool<u64> = Pool::new();

    #[test]
    fn checkout_roundtrip_reuses_capacity() {
        let ptr;
        {
            let mut v = TEST_POOL.checkout(100, WsCat::Other);
            v.extend(0..100u64);
            ptr = v.as_ptr();
        } // checked back in
        let v2 = TEST_POOL.checkout(80, WsCat::Other);
        assert!(v2.is_empty(), "reused buffers come back empty");
        assert!(v2.capacity() >= 100);
        assert_eq!(v2.as_ptr(), ptr, "the shelved buffer should be reused");
    }

    #[test]
    fn checkout_filled_zeroes_stale_contents() {
        {
            let mut v = TEST_POOL.checkout(64, WsCat::Other);
            v.extend(std::iter::repeat_n(u64::MAX, 64));
        }
        let v = TEST_POOL.checkout_filled(64, 0u64, WsCat::Other);
        assert_eq!(v.len(), 64);
        assert!(v.iter().all(|&x| x == 0), "stale contents must be overwritten");
    }

    #[test]
    fn into_vec_detaches_from_pool() {
        static DETACH: Pool<u8> = Pool::new();
        let v = DETACH.checkout_filled(16, 7u8, WsCat::Other);
        let raw = v.into_vec();
        assert_eq!(raw, vec![7u8; 16]);
        assert_eq!(DETACH.idle_buffers(), 0, "into_vec must not check in");
    }

    #[test]
    fn concurrent_checkouts_never_alias() {
        static CONC: Pool<u64> = Pool::new();
        // warm the shelf with a few buffers
        let warm: Vec<_> = (0..4).map(|_| CONC.checkout(256, WsCat::Other)).collect();
        drop(warm);
        let ptrs = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut v = CONC.checkout(256, WsCat::Other);
                    v.push(1);
                    ptrs.lock().unwrap().push(v.as_ptr() as usize);
                    std::thread::yield_now();
                    // hold the buffer until every thread has recorded its ptr
                    while ptrs.lock().unwrap().len() < 8 {
                        std::thread::yield_now();
                    }
                });
            }
        });
        let mut p = ptrs.into_inner().unwrap();
        p.sort_unstable();
        p.dedup();
        assert_eq!(p.len(), 8, "every concurrent checkout must get a distinct buffer");
    }

    #[test]
    fn stats_track_in_use_and_peak() {
        reset_stats();
        let before = stats()[WsCat::GnCg.idx()];
        let v = REAL_POOL.checkout_filled(1000, 0.0, WsCat::GnCg);
        let during = stats()[WsCat::GnCg.idx()];
        assert_eq!(during.checkouts, before.checkouts + 1);
        assert!(during.in_use_bytes >= before.in_use_bytes + 1000 * 8);
        drop(v);
        let after = stats()[WsCat::GnCg.idx()];
        assert!(after.in_use_bytes <= during.in_use_bytes - 1000 * 8 + 8);
        assert!(after.peak_bytes >= during.in_use_bytes, "peak keeps the high-water mark");
    }

    proptest! {
        #[test]
        fn roundtrip_preserves_len_and_zeroing(len in 1usize..2000, rounds in 1usize..12) {
            static PROP: Pool<u64> = Pool::new();
            for round in 0..rounds {
                // vary the requested length so shelves of several size
                // classes get exercised within one case
                let want = 1 + (len + 131 * round) % 2000;
                let mut v = PROP.checkout_filled(want, 0u64, WsCat::Other);
                prop_assert_eq!(v.len(), want);
                prop_assert!(v.iter().all(|&x| x == 0));
                // dirty it so the next checkout would see stale data without the fill
                for x in v.iter_mut() { *x = 0xDEAD_BEEF; }
            }
        }
    }
}
