//! Workspace-wide typed error for fallible public constructors.
//!
//! `claire-grid` is the foundation every solver crate builds on, so the
//! error type lives here and is re-exported from `claire-fft`, `claire-core`
//! and the umbrella `claire` crate. Constructors that used to `assert!` on
//! caller mistakes (layout mismatches, invalid decompositions, bad
//! configuration values) return `ClaireResult` instead; the panicking
//! convenience wrappers remain but panic with the typed error's message.

use std::fmt;

/// Typed error for invalid inputs to CLAIRE-rs public APIs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClaireError {
    /// A configuration parameter is out of its valid range.
    Config {
        /// Parameter name (e.g. `nt`, `beta_target`).
        param: &'static str,
        /// What was wrong with it.
        message: String,
    },
    /// Two fields/grids that must share a layout do not.
    LayoutMismatch {
        /// Operation that required the match (e.g. `RegProblem::new`).
        context: &'static str,
        /// What differed.
        message: String,
    },
    /// A grid cannot be decomposed as requested (slab counts, halo widths,
    /// FFT plan sizes).
    Decomposition {
        /// Operation that rejected the decomposition (e.g. `DistFft::new`).
        context: &'static str,
        /// Why.
        message: String,
    },
    /// An I/O-layer failure surfaced through a CLAIRE API.
    Io {
        /// Operation that failed.
        context: &'static str,
        /// Underlying error text.
        message: String,
    },
    /// A solve stopped early through its cancel token (explicit cancellation
    /// or a deadline expiring) before producing a result.
    Cancelled {
        /// Operation that was interrupted (e.g. `Claire::register`).
        context: &'static str,
        /// Why it stopped (`cancelled`, `deadline expired`).
        message: String,
    },
    /// One rank of a distributed run died (panicked thread or dead worker
    /// process); the remaining ranks were reaped instead of left to hang.
    RankFailed {
        /// The rank that failed first.
        rank: usize,
        /// Description of the failure (panic message, exit status, or
        /// transport error).
        message: String,
    },
}

impl fmt::Display for ClaireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClaireError::Config { param, message } => {
                write!(f, "invalid configuration: `{param}` {message}")
            }
            ClaireError::LayoutMismatch { context, message } => {
                write!(f, "layout mismatch in {context}: {message}")
            }
            ClaireError::Decomposition { context, message } => {
                write!(f, "invalid decomposition in {context}: {message}")
            }
            ClaireError::Io { context, message } => {
                write!(f, "I/O error in {context}: {message}")
            }
            ClaireError::Cancelled { context, message } => {
                write!(f, "{context} stopped early: {message}")
            }
            ClaireError::RankFailed { rank, message } => {
                write!(f, "rank {rank} failed: {message}")
            }
        }
    }
}

impl std::error::Error for ClaireError {}

impl From<claire_mpi::ClusterError> for ClaireError {
    fn from(e: claire_mpi::ClusterError) -> Self {
        ClaireError::RankFailed { rank: e.rank, message: e.detail }
    }
}

/// Result alias used by fallible CLAIRE-rs constructors.
pub type ClaireResult<T> = Result<T, ClaireError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = ClaireError::Config { param: "nt", message: "must be >= 1 (got 0)".into() };
        assert_eq!(e.to_string(), "invalid configuration: `nt` must be >= 1 (got 0)");
        let e = ClaireError::Decomposition {
            context: "DistFft::new",
            message: "slab decomposition needs p <= min(n1, n2)".into(),
        };
        assert!(e.to_string().contains("DistFft::new"));
    }

    #[test]
    fn cluster_error_converts_to_rank_failed() {
        let ce = claire_mpi::ClusterError { rank: 3, detail: "socket reset".into() };
        let e: ClaireError = ce.into();
        assert_eq!(e, ClaireError::RankFailed { rank: 3, message: "socket reset".into() });
        assert_eq!(e.to_string(), "rank 3 failed: socket reset");
    }
}
