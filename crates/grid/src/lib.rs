//! Periodic grids, fields, and slab decomposition for CLAIRE-rs.
//!
//! CLAIRE discretizes the domain `Ω = [0, 2π)³` on a regular grid with
//! periodic boundary conditions. The multi-GPU implementation of the paper
//! partitions the grid into *slabs* along the outermost dimension `x1`
//! (§3.2–3.3): rank `r` owns a contiguous range of `x1`-planes. This crate
//! provides:
//!
//! * [`Grid`] — global grid geometry (dims, spacing, coordinates);
//! * [`Slab`]/[`Layout`] — the x1-slab decomposition, with the convention
//!   that a *serial* field is just a slab covering the whole grid, so every
//!   kernel has a single code path for 1 and many ranks;
//! * [`ScalarField`]/[`VectorField`] — owned field storage with local and
//!   communicator-aware (distributed) reductions;
//! * [`ghost`] — periodic ghost-layer exchange along `x1`, the communication
//!   primitive behind the paper's `ghost_comm` phase (Tables 2 and 3);
//! * [`redist`] — gather/scatter/replication of fields between ranks for
//!   I/O and testing;
//! * [`workspace`] — the solver-wide buffer pool backing field storage and
//!   kernel scratch, mirroring the paper's §3 memory budget categories so a
//!   steady-state Gauss–Newton iteration performs no heap allocations.
//!
//! Storage order is row-major with `x3` fastest: `idx = (i·n2 + j)·n3 + k`,
//! matching the paper's layout ("the inner-most x3 dimension is always
//! continuous in memory").

pub mod error;
pub mod field;
pub mod ghost;
pub mod grid;
pub mod real;
pub mod redist;
pub mod slab;
pub mod workspace;

pub use error::{ClaireError, ClaireResult};
pub use field::{ScalarField, ScalarFieldT, VectorField, VectorFieldT};
pub use grid::Grid;
pub use real::{Real, PI, TWO_PI};
pub use slab::{Layout, Slab};
pub use workspace::{FieldElem, Pool, PoolVec, WsCat};
