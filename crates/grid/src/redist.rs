//! Redistribution of fields between serial and slab layouts.
//!
//! Because the slab dimension `x1` is outermost, each rank's slab is a
//! contiguous chunk of the global row-major array; gather/scatter are pure
//! concatenations/splits. Traffic is accounted under
//! [`CommCat::FieldRedist`].

use claire_mpi::{Comm, CommCat};

use crate::field::{ScalarField, VectorField};
use crate::grid::Grid;
use crate::slab::Layout;

/// Gather a distributed field to a serial-layout field on rank 0.
///
/// Returns `Some` on rank 0, `None` elsewhere. Collective.
pub fn gather(field: &ScalarField, comm: &mut Comm) -> Option<ScalarField> {
    let grid = field.layout().grid;
    let parts = comm.gatherv(0, field.data(), CommCat::FieldRedist)?;
    let mut data = Vec::with_capacity(grid.len());
    for part in parts {
        data.extend_from_slice(&part);
    }
    Some(ScalarField::from_data(Layout::serial(grid), data))
}

/// Scatter a serial-layout field on rank 0 to the slab layout of `comm`.
///
/// Rank 0 passes `Some(global)`; other ranks pass `None`. Collective.
pub fn scatter(global: Option<&ScalarField>, grid: Grid, comm: &mut Comm) -> ScalarField {
    let layout = Layout::distributed(grid, comm);
    let parts: Option<Vec<Vec<crate::real::Real>>> = global.map(|gf| {
        assert_eq!(gf.layout().grid, grid, "global field grid mismatch");
        assert!(gf.layout().is_serial(), "scatter expects a serial-layout source");
        let plane = grid.n[1] * grid.n[2];
        (0..comm.size())
            .map(|r| {
                let slab = layout.slab_of(r);
                gf.data()[slab.i0 * plane..slab.i_end() * plane].to_vec()
            })
            .collect()
    });
    if comm.rank() == 0 {
        assert!(parts.is_some(), "rank 0 must provide the global field");
    }
    let mine = comm.scatterv(0, parts.as_deref(), CommCat::FieldRedist);
    ScalarField::from_data(layout, mine)
}

/// Give every rank a full serial-layout copy of a distributed field.
///
/// Used by tests and by coarse-grid operations on few ranks. Collective.
pub fn replicate(field: &ScalarField, comm: &mut Comm) -> ScalarField {
    let grid = field.layout().grid;
    if field.layout().is_serial() && comm.is_solo() {
        return field.clone();
    }
    let gathered = gather(field, comm);
    let mut data = match gathered {
        Some(f) => f.into_data(),
        None => Vec::new(),
    };
    comm.broadcast(0, &mut data);
    ScalarField::from_data(Layout::serial(grid), data)
}

/// Gather a vector field to rank 0.
pub fn gather_vector(v: &VectorField, comm: &mut Comm) -> Option<VectorField> {
    let parts: Vec<Option<ScalarField>> = v.c.iter().map(|c| gather(c, comm)).collect();
    let mut it = parts.into_iter();
    match (it.next().unwrap(), it.next().unwrap(), it.next().unwrap()) {
        (Some(a), Some(b), Some(c)) => Some(VectorField { c: [a, b, c] }),
        _ => None,
    }
}

/// Scatter a serial vector field on rank 0 to slab layout.
pub fn scatter_vector(global: Option<&VectorField>, grid: Grid, comm: &mut Comm) -> VectorField {
    let comps: Vec<ScalarField> =
        (0..3).map(|d| scatter(global.map(|v| &v.c[d]), grid, comm)).collect();
    let mut it = comps.into_iter();
    VectorField { c: [it.next().unwrap(), it.next().unwrap(), it.next().unwrap()] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_mpi::{run_cluster, Topology};

    #[test]
    fn gather_scatter_roundtrip() {
        let grid = Grid::new([8, 4, 4]);
        let res = run_cluster(Topology::new(3, 4), move |comm| {
            let layout = Layout::distributed(grid, comm);
            let f = ScalarField::from_fn(layout, |x, y, z| x + 2.0 * y + 3.0 * z);
            let g = gather(&f, comm);
            let back = scatter(g.as_ref(), grid, comm);
            back == f
        });
        assert!(res.outputs.iter().all(|&ok| ok));
    }

    #[test]
    fn replicate_matches_serial_sampling() {
        let grid = Grid::new([8, 4, 4]);
        let res = run_cluster(Topology::new(4, 4), move |comm| {
            let layout = Layout::distributed(grid, comm);
            let f = ScalarField::from_fn(layout, |x, y, z| (x * y).sin() + z);
            let full = replicate(&f, comm);
            let reference = ScalarField::from_fn(Layout::serial(grid), |x, y, z| (x * y).sin() + z);
            full == reference
        });
        assert!(res.outputs.iter().all(|&ok| ok));
    }

    #[test]
    fn solo_roundtrip_without_cluster() {
        let grid = Grid::cube(4);
        let mut comm = Comm::solo();
        let f = ScalarField::from_fn(Layout::serial(grid), |x, _, _| x);
        let g = gather(&f, &mut comm).unwrap();
        assert_eq!(g, f);
        let s = scatter(Some(&g), grid, &mut comm);
        assert_eq!(s, f);
        let r = replicate(&f, &mut comm);
        assert_eq!(r, f);
    }

    #[test]
    fn redistribution_matches_over_socket_transport() {
        let grid = Grid::new([8, 4, 4]);
        let f = move |comm: &mut Comm| {
            let layout = Layout::distributed(grid, comm);
            let f = ScalarField::from_fn(layout, |x, y, z| (x * y).sin() + 3.0 * z);
            let full = replicate(&f, comm);
            let back = scatter(gather(&f, comm).as_ref(), grid, comm);
            full.data().iter().chain(back.data()).map(|x| x.to_bits()).collect::<Vec<_>>()
        };
        let chan = run_cluster(Topology::new(3, 4), f);
        let sock = claire_ipc::run_socket_cluster(Topology::new(3, 4), f);
        assert_eq!(chan.outputs, sock.outputs, "transports must agree bitwise");
    }

    #[test]
    fn vector_roundtrip() {
        let grid = Grid::new([6, 4, 4]);
        let res = run_cluster(Topology::new(2, 4), move |comm| {
            let layout = Layout::distributed(grid, comm);
            let v = VectorField::from_fns(layout, |x, _, _| x.sin(), |_, y, _| y, |_, _, z| z * z);
            let g = gather_vector(&v, comm);
            let back = scatter_vector(g.as_ref(), grid, comm);
            back == v
        });
        assert!(res.outputs.iter().all(|&ok| ok));
    }
}
