//! Scalar and vector fields on (possibly distributed) periodic grids.
//!
//! Element-wise ops and reductions run on the runtime-dispatched SIMD
//! layer (`claire-simd`): each `claire-par` worker applies the vectorized
//! kernel to its fixed-size chunk, so thread-level and data-level
//! parallelism compose and block boundaries (hence reduction order) stay
//! independent of both thread count and backend.

// Reductions accumulate in f64 even when `Real = f32` (the `single`
// feature); the casts are load-bearing there, so the lint is off.
#![allow(clippy::unnecessary_cast)]

use claire_mpi::Comm;
use claire_par::timing::{self, Kernel};
use claire_par::{par_chunks_mut, par_chunks_mut_sum, par_max_blocks, par_sum_blocks, SUM_BLOCK};

use crate::real::Real;
use crate::slab::Layout;
use crate::workspace::{PoolVec, WsCat, REAL_POOL};

/// Per-chunk element count for parallel element-wise loops. Matches the
/// reduction block so element-wise and reduction passes stream the same
/// cache-sized tiles.
const ELEM_CHUNK: usize = SUM_BLOCK;

/// Per-block max-abs partials with thread-count-independent block boundaries
/// (same contract as [`par_sum_blocks`]; max is reorder-safe anyway, but
/// keeping every reduction deterministic keeps the equivalence tests exact).
fn par_max_abs(d: &[Real]) -> f64 {
    par_max_blocks(d.len(), |r| claire_simd::max_abs(&d[r])).max(0.0)
}

/// A scalar field: this rank's slab of samples of a function on Ω.
///
/// Storage comes from the workspace pool ([`crate::workspace::REAL_POOL`]):
/// constructing a field checks a buffer out, dropping one checks it back
/// in, so field churn in the solver hot path recycles memory instead of
/// allocating.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalarField {
    layout: Layout,
    data: PoolVec<Real>,
}

impl ScalarField {
    /// Zero field with the given layout (pooled, charged to µPDE).
    pub fn zeros(layout: Layout) -> Self {
        Self::zeros_in(layout, WsCat::Pde)
    }

    /// Zero field charged to an explicit workspace category.
    pub fn zeros_in(layout: Layout, cat: WsCat) -> Self {
        Self { layout, data: REAL_POOL.checkout_filled(layout.local_len(), 0.0 as Real, cat) }
    }

    /// Field from existing local data (must match the layout's local length).
    /// The vector migrates into the workspace pool when the field drops.
    pub fn from_data(layout: Layout, data: Vec<Real>) -> Self {
        assert_eq!(data.len(), layout.local_len(), "data/layout size mismatch");
        Self { layout, data: REAL_POOL.adopt(data, WsCat::Pde) }
    }

    /// Sample an analytic function `f(x1, x2, x3)` at the owned grid points.
    /// Rows (fixed `il`, `j`) are sampled in parallel.
    pub fn from_fn(layout: Layout, f: impl Fn(Real, Real, Real) -> Real + Sync) -> Self {
        let mut field = Self::zeros(layout);
        let h = layout.grid.spacing();
        let [_, n2, n3] = layout.local_dims();
        let i0 = layout.slab.i0;
        par_chunks_mut(&mut field.data, n3, |row, line| {
            let x1 = (i0 + row / n2) as Real * h[0];
            let x2 = (row % n2) as Real * h[1];
            for (k, v) in line.iter_mut().enumerate() {
                *v = f(x1, x2, k as Real * h[2]);
            }
        });
        field
    }

    /// The layout (grid + slab) of this field.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Local data slice.
    pub fn data(&self) -> &[Real] {
        &self.data
    }

    /// Mutable local data slice.
    pub fn data_mut(&mut self) -> &mut [Real] {
        &mut self.data
    }

    /// Consume into the local data vector (detached from the pool).
    pub fn into_data(self) -> Vec<Real> {
        self.data.into_vec()
    }

    /// Value at local plane `il`, `j`, `k`.
    pub fn at(&self, il: usize, j: usize, k: usize) -> Real {
        self.data[self.layout.local_idx(il, j, k)]
    }

    /// Mutable value at local plane `il`, `j`, `k`.
    pub fn at_mut(&mut self, il: usize, j: usize, k: usize) -> &mut Real {
        &mut self.data[self.layout.local_idx(il, j, k)]
    }

    // ----- elementwise operations ----------------------------------------

    /// Set every sample to `v`.
    pub fn fill(&mut self, v: Real) {
        self.data.fill(v);
    }

    /// `self *= a`.
    pub fn scale(&mut self, a: Real) {
        timing::time(Kernel::FieldOps, || {
            par_chunks_mut(&mut self.data, ELEM_CHUNK, |_, c| claire_simd::scale(a, c))
        });
    }

    /// `self += a·x` (same layout required).
    pub fn axpy(&mut self, a: Real, x: &ScalarField) {
        self.check_same_layout(x);
        let xd = &x.data;
        timing::time(Kernel::FieldOps, || {
            par_chunks_mut(&mut self.data, ELEM_CHUNK, |ci, c| {
                let base = ci * ELEM_CHUNK;
                claire_simd::axpy(a, &xd[base..base + c.len()], c);
            })
        });
    }

    /// `self = a·self + x`.
    pub fn aypx(&mut self, a: Real, x: &ScalarField) {
        self.check_same_layout(x);
        let xd = &x.data;
        timing::time(Kernel::FieldOps, || {
            par_chunks_mut(&mut self.data, ELEM_CHUNK, |ci, c| {
                let base = ci * ELEM_CHUNK;
                claire_simd::aypx(a, &xd[base..base + c.len()], c);
            })
        });
    }

    /// Copy values from another field of the same layout.
    pub fn copy_from(&mut self, x: &ScalarField) {
        self.check_same_layout(x);
        self.data.copy_from_slice(&x.data);
    }

    /// Apply `f` to every sample in place.
    pub fn map_inplace(&mut self, f: impl Fn(Real) -> Real + Sync) {
        timing::time(Kernel::FieldOps, || {
            par_chunks_mut(&mut self.data, ELEM_CHUNK, |_, c| {
                for x in c {
                    *x = f(*x);
                }
            })
        });
    }

    /// `self[i] += a · x[i] · y[i]` — fused multiply-accumulate of a product,
    /// used for `λ∇m` terms in the reduced gradient.
    pub fn add_scaled_product(&mut self, a: Real, x: &ScalarField, y: &ScalarField) {
        self.check_same_layout(x);
        self.check_same_layout(y);
        let (xd, yd) = (&x.data, &y.data);
        timing::time(Kernel::FieldOps, || {
            par_chunks_mut(&mut self.data, ELEM_CHUNK, |ci, c| {
                let base = ci * ELEM_CHUNK;
                claire_simd::add_scaled_product(
                    a,
                    &xd[base..base + c.len()],
                    &yd[base..base + c.len()],
                    c,
                );
            })
        });
    }

    // ----- fused update + reduction ---------------------------------------
    //
    // These single-pass variants halve the DRAM traffic of the PCG field-op
    // chains (update then norm): the solver is bandwidth-bound (paper §3
    // counts memory passes, not flops), so one streamed pass instead of two
    // is a direct win. `ELEM_CHUNK == SUM_BLOCK`, so the fused reduction has
    // the same block boundaries as `dot_local` — on the scalar backend the
    // fused result is bit-identical to the unfused pair.

    /// `self += a·x`, returning the local raw self-dot `Σ selfᵢ²` of the
    /// updated field from the same pass over memory.
    pub fn axpy_dot_local(&mut self, a: Real, x: &ScalarField) -> f64 {
        self.check_same_layout(x);
        let xd = &x.data;
        timing::time(Kernel::FieldOps, || {
            par_chunks_mut_sum(&mut self.data, ELEM_CHUNK, |ci, c| {
                let base = ci * ELEM_CHUNK;
                claire_simd::axpy_dot(a, &xd[base..base + c.len()], c)
            })
        })
    }

    /// `self = a·self + x`, returning the local raw self-dot `Σ selfᵢ²` of
    /// the updated field from the same pass over memory.
    pub fn aypx_norm2_local(&mut self, a: Real, x: &ScalarField) -> f64 {
        self.check_same_layout(x);
        let xd = &x.data;
        timing::time(Kernel::FieldOps, || {
            par_chunks_mut_sum(&mut self.data, ELEM_CHUNK, |ci, c| {
                let base = ci * ELEM_CHUNK;
                claire_simd::aypx_norm2(a, &xd[base..base + c.len()], c)
            })
        })
    }

    /// `self = a·x + y` in one pass — replaces the clone-then-axpy pattern
    /// (which costs a copy pass plus an update pass) at line-search call
    /// sites where `self` is a reused trial buffer.
    pub fn scale_add_from(&mut self, a: Real, x: &ScalarField, y: &ScalarField) {
        self.check_same_layout(x);
        self.check_same_layout(y);
        let (xd, yd) = (&x.data, &y.data);
        timing::time(Kernel::FieldOps, || {
            par_chunks_mut(&mut self.data, ELEM_CHUNK, |ci, c| {
                let base = ci * ELEM_CHUNK;
                claire_simd::scale_add_norm(
                    a,
                    &xd[base..base + c.len()],
                    &yd[base..base + c.len()],
                    c,
                );
            })
        });
    }

    fn check_same_layout(&self, other: &ScalarField) {
        assert_eq!(self.layout, other.layout, "field layout mismatch");
    }

    // ----- reductions ------------------------------------------------------

    /// Local (this-rank) raw dot product, accumulated in f64 over fixed-size
    /// blocks so the result is bitwise identical for every thread count.
    pub fn dot_local(&self, other: &ScalarField) -> f64 {
        self.check_same_layout(other);
        let (a, b) = (&self.data, &other.data);
        timing::time(Kernel::FieldOps, || {
            par_sum_blocks(a.len(), |r| claire_simd::dot(&a[r.clone()], &b[r]))
        })
    }

    /// Global raw dot product (sum over all grid points).
    pub fn dot(&self, other: &ScalarField, comm: &mut Comm) -> f64 {
        comm.allreduce_sum_scalar(self.dot_local(other))
    }

    /// Global L2(Ω) inner product: `∫ f·g ≈ h³ Σ f·g`.
    pub fn inner(&self, other: &ScalarField, comm: &mut Comm) -> f64 {
        self.dot(other, comm) * self.layout.grid.cell_volume() as f64
    }

    /// Global L2(Ω) norm.
    pub fn norm_l2(&self, comm: &mut Comm) -> f64 {
        self.inner(self, comm).max(0.0).sqrt()
    }

    /// Global max absolute value.
    pub fn max_abs(&self, comm: &mut Comm) -> f64 {
        let local = timing::time(Kernel::FieldOps, || par_max_abs(&self.data));
        comm.allreduce_max_scalar(local)
    }

    /// Global sum of samples.
    pub fn sum(&self, comm: &mut Comm) -> f64 {
        let local = timing::time(Kernel::FieldOps, || {
            par_sum_blocks(self.data.len(), |r| claire_simd::sum(&self.data[r]))
        });
        comm.allreduce_sum_scalar(local)
    }
}

/// A vector field `v : Ω → R³`, stored as three scalar components
/// (structure-of-arrays, like CLAIRE).
#[derive(Clone, Debug, PartialEq)]
pub struct VectorField {
    /// Components `[v1, v2, v3]`.
    pub c: [ScalarField; 3],
}

impl VectorField {
    /// Zero vector field (pooled, charged to µPDE).
    pub fn zeros(layout: Layout) -> Self {
        Self::zeros_in(layout, WsCat::Pde)
    }

    /// Zero vector field charged to an explicit workspace category.
    pub fn zeros_in(layout: Layout, cat: WsCat) -> Self {
        Self { c: std::array::from_fn(|_| ScalarField::zeros_in(layout, cat)) }
    }

    /// Sample three analytic component functions.
    pub fn from_fns(
        layout: Layout,
        f1: impl Fn(Real, Real, Real) -> Real + Sync,
        f2: impl Fn(Real, Real, Real) -> Real + Sync,
        f3: impl Fn(Real, Real, Real) -> Real + Sync,
    ) -> Self {
        Self {
            c: [
                ScalarField::from_fn(layout, f1),
                ScalarField::from_fn(layout, f2),
                ScalarField::from_fn(layout, f3),
            ],
        }
    }

    /// The layout shared by all components.
    pub fn layout(&self) -> &Layout {
        self.c[0].layout()
    }

    /// `self *= a`.
    pub fn scale(&mut self, a: Real) {
        for comp in &mut self.c {
            comp.scale(a);
        }
    }

    /// `self += a·x`.
    pub fn axpy(&mut self, a: Real, x: &VectorField) {
        for (s, xc) in self.c.iter_mut().zip(&x.c) {
            s.axpy(a, xc);
        }
    }

    /// `self = a·self + x`.
    pub fn aypx(&mut self, a: Real, x: &VectorField) {
        for (s, xc) in self.c.iter_mut().zip(&x.c) {
            s.aypx(a, xc);
        }
    }

    /// Copy from another vector field of the same layout.
    pub fn copy_from(&mut self, x: &VectorField) {
        for (s, xc) in self.c.iter_mut().zip(&x.c) {
            s.copy_from(xc);
        }
    }

    /// Set all components to zero.
    pub fn fill(&mut self, v: Real) {
        for comp in &mut self.c {
            comp.fill(v);
        }
    }

    /// `self += a·x`, returning the global L2(Ω)³ norm of the updated field
    /// — the fused form of `axpy` followed by `norm_l2`, one streamed pass
    /// over each component instead of two plus the same single allreduce.
    /// Component partials are summed in component order, so the scalar
    /// backend reproduces the unfused result bit for bit.
    pub fn axpy_norm_l2(&mut self, a: Real, x: &VectorField, comm: &mut Comm) -> f64 {
        let mut local = 0.0;
        for (s, xc) in self.c.iter_mut().zip(&x.c) {
            local += s.axpy_dot_local(a, xc);
        }
        let vol = self.layout().grid.cell_volume() as f64;
        (comm.allreduce_sum_scalar(local) * vol).max(0.0).sqrt()
    }

    /// `self = a·self + x`, returning the global L2(Ω)³ norm of the updated
    /// field (fused `aypx` + `norm_l2`, same contract as [`Self::axpy_norm_l2`]).
    pub fn aypx_norm_l2(&mut self, a: Real, x: &VectorField, comm: &mut Comm) -> f64 {
        let mut local = 0.0;
        for (s, xc) in self.c.iter_mut().zip(&x.c) {
            local += s.aypx_norm2_local(a, xc);
        }
        let vol = self.layout().grid.cell_volume() as f64;
        (comm.allreduce_sum_scalar(local) * vol).max(0.0).sqrt()
    }

    /// `self = a·x + y` per component in one pass (non-collective).
    pub fn scale_add_from(&mut self, a: Real, x: &VectorField, y: &VectorField) {
        for ((s, xc), yc) in self.c.iter_mut().zip(&x.c).zip(&y.c) {
            s.scale_add_from(a, xc, yc);
        }
    }

    /// Global raw dot product over all components.
    pub fn dot(&self, other: &VectorField, comm: &mut Comm) -> f64 {
        let local: f64 = self.c.iter().zip(&other.c).map(|(a, b)| a.dot_local(b)).sum();
        comm.allreduce_sum_scalar(local)
    }

    /// Global L2(Ω)³ inner product.
    pub fn inner(&self, other: &VectorField, comm: &mut Comm) -> f64 {
        self.dot(other, comm) * self.layout().grid.cell_volume() as f64
    }

    /// Global L2(Ω)³ norm.
    pub fn norm_l2(&self, comm: &mut Comm) -> f64 {
        self.inner(self, comm).max(0.0).sqrt()
    }

    /// Global max over components of max absolute value — used for the CFL
    /// estimate that sizes the scatter buffers (paper §3.1).
    pub fn max_abs(&self, comm: &mut Comm) -> f64 {
        let local = timing::time(Kernel::FieldOps, || {
            self.c.iter().map(|c| par_max_abs(c.data())).fold(0.0, f64::max)
        });
        comm.allreduce_max_scalar(local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::real::TWO_PI;

    fn serial(n: usize) -> Layout {
        Layout::serial(Grid::cube(n))
    }

    #[test]
    fn from_fn_samples_coordinates() {
        let f = ScalarField::from_fn(serial(4), |x, _, _| x);
        let h = TWO_PI / 4.0;
        assert!((f.at(3, 0, 0) - 3.0 * h).abs() < 1e-6);
        assert!((f.at(0, 2, 1) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = ScalarField::from_fn(serial(4), |_, _, _| 2.0);
        let b = ScalarField::from_fn(serial(4), |_, _, _| 3.0);
        a.axpy(2.0, &b); // 2 + 6 = 8
        a.scale(0.5); // 4
        assert!(a.data().iter().all(|&x| (x - 4.0).abs() < 1e-12));
    }

    #[test]
    fn l2_norm_of_sine() {
        // ∫ sin²(x) dx over [0,2π)³ = π · (2π)² ⇒ ‖sin(x1)‖ = sqrt(2π³ · 2π ...)
        let n = 32;
        let f = ScalarField::from_fn(serial(n), |x, _, _| x.sin());
        let mut comm = Comm::solo();
        let norm = f.norm_l2(&mut comm);
        let expect = (0.5 * (TWO_PI as f64).powi(3)).sqrt();
        assert!((norm - expect).abs() < 1e-5 * expect, "{norm} vs {expect}");
    }

    #[test]
    fn vector_dot_symmetry() {
        let l = serial(8);
        let v = VectorField::from_fns(l, |x, _, _| x.sin(), |_, y, _| y.cos(), |_, _, z| z.sin());
        let w =
            VectorField::from_fns(l, |x, _, _| x.cos(), |_, y, _| y.sin(), |_, _, z| 1.0 + 0.0 * z);
        let mut comm = Comm::solo();
        let a = v.dot(&w, &mut comm);
        let b = w.dot(&v, &mut comm);
        assert!((a - b).abs() < 1e-10);
    }

    #[test]
    fn add_scaled_product() {
        let l = serial(4);
        let mut acc = ScalarField::zeros(l);
        let x = ScalarField::from_fn(l, |_, _, _| 3.0);
        let y = ScalarField::from_fn(l, |_, _, _| 4.0);
        acc.add_scaled_product(0.5, &x, &y);
        assert!(acc.data().iter().all(|&v| (v - 6.0).abs() < 1e-12));
    }

    #[test]
    fn fused_field_ops_bitwise_match_unfused_on_scalar_backend() {
        claire_simd::force_backend(Some(claire_simd::Choice::Scalar));
        let l = serial(16);
        let mut comm = Comm::solo();
        let v = VectorField::from_fns(l, |x, _, _| x.sin(), |_, y, _| y.cos(), |_, _, z| z.sin());
        let w = VectorField::from_fns(
            l,
            |x, _, _| (2.0 * x).cos(),
            |_, y, _| 0.5 - y.sin(),
            |_, _, z| z.cos() * 1.5,
        );

        // axpy + norm vs fused axpy_norm_l2
        let mut a = v.clone();
        a.axpy(-0.75, &w);
        let n_unfused = a.norm_l2(&mut comm);
        let mut b = v.clone();
        let n_fused = b.axpy_norm_l2(-0.75, &w, &mut comm);
        assert_eq!(a, b);
        assert_eq!(n_unfused.to_bits(), n_fused.to_bits());

        // aypx + norm vs fused aypx_norm_l2
        let mut a = v.clone();
        a.aypx(0.3, &w);
        let n_unfused = a.norm_l2(&mut comm);
        let mut b = v.clone();
        let n_fused = b.aypx_norm_l2(0.3, &w, &mut comm);
        assert_eq!(a, b);
        assert_eq!(n_unfused.to_bits(), n_fused.to_bits());

        // clone + axpy vs single-pass scale_add_from into a reused buffer
        let mut a = w.clone();
        a.axpy(1.25, &v);
        let mut b = VectorField::zeros(l);
        b.scale_add_from(1.25, &v, &w);
        assert_eq!(a, b);
        claire_simd::force_backend(None);
    }

    #[test]
    #[should_panic(expected = "layout mismatch")]
    fn layout_mismatch_panics() {
        let mut a = ScalarField::zeros(serial(4));
        let b = ScalarField::zeros(serial(8));
        a.axpy(1.0, &b);
    }
}
