//! Scalar and vector fields on (possibly distributed) periodic grids.
//!
//! Element-wise ops and reductions run on the runtime-dispatched SIMD
//! layer (`claire-simd`): each `claire-par` worker applies the vectorized
//! kernel to its fixed-size chunk, so thread-level and data-level
//! parallelism compose and block boundaries (hence reduction order) stay
//! independent of both thread count and backend.
//!
//! Fields are generic over the element width ([`FieldElem`]: `f64` | `f32`)
//! for the mixed-precision solver core. [`ScalarField`]/[`VectorField`]
//! remain the `Real`-width aliases the rest of the system names; the f32
//! instantiation carries the inner Krylov/spectral state at half the
//! footprint. Every reduction accumulates and returns `f64` regardless of
//! the element width, so convergence logic is width-independent.

// Reductions accumulate in f64 even when `Real = f32` (the `single`
// feature); the casts are load-bearing there, so the lint is off.
#![allow(clippy::unnecessary_cast)]

use claire_mpi::Comm;
use claire_par::timing::{self, Kernel};
use claire_par::{par_chunks_mut, par_chunks_mut_sum, par_max_blocks, par_sum_blocks, SUM_BLOCK};

use crate::real::Real;
use crate::slab::Layout;
use crate::workspace::{FieldElem, PoolVec, WsCat};

/// Per-chunk element count for parallel element-wise loops. Matches the
/// reduction block so element-wise and reduction passes stream the same
/// cache-sized tiles.
const ELEM_CHUNK: usize = SUM_BLOCK;

/// Per-block max-abs partials with thread-count-independent block boundaries
/// (same contract as [`par_sum_blocks`]; max is reorder-safe anyway, but
/// keeping every reduction deterministic keeps the equivalence tests exact).
fn par_max_abs<T: FieldElem>(d: &[T]) -> f64 {
    par_max_blocks(d.len(), |r| T::kmax_abs(&d[r])).max(0.0)
}

/// A scalar field: this rank's slab of samples of a function on Ω.
///
/// Storage comes from the element width's workspace pool
/// ([`FieldElem::pool`]): constructing a field checks a buffer out, dropping
/// one checks it back in, so field churn in the solver hot path recycles
/// memory instead of allocating.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalarFieldT<T: FieldElem> {
    layout: Layout,
    data: PoolVec<T>,
}

/// The `Real`-width scalar field (what the paper's solver state stores).
pub type ScalarField = ScalarFieldT<Real>;

impl<T: FieldElem> ScalarFieldT<T> {
    /// Zero field with the given layout (pooled, charged to µPDE).
    pub fn zeros(layout: Layout) -> Self {
        Self::zeros_in(layout, WsCat::Pde)
    }

    /// Zero field charged to an explicit workspace category.
    pub fn zeros_in(layout: Layout, cat: WsCat) -> Self {
        Self { layout, data: T::pool().checkout_filled(layout.local_len(), T::ZERO, cat) }
    }

    /// Field from existing local data (must match the layout's local length).
    /// The vector migrates into the workspace pool when the field drops.
    pub fn from_data(layout: Layout, data: Vec<T>) -> Self {
        assert_eq!(data.len(), layout.local_len(), "data/layout size mismatch");
        Self { layout, data: T::pool().adopt(data, WsCat::Pde) }
    }

    /// The layout (grid + slab) of this field.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Local data slice.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable local data slice.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the local data vector (detached from the pool).
    pub fn into_data(self) -> Vec<T> {
        self.data.into_vec()
    }

    /// Value at local plane `il`, `j`, `k`.
    pub fn at(&self, il: usize, j: usize, k: usize) -> T {
        self.data[self.layout.local_idx(il, j, k)]
    }

    /// Mutable value at local plane `il`, `j`, `k`.
    pub fn at_mut(&mut self, il: usize, j: usize, k: usize) -> &mut T {
        &mut self.data[self.layout.local_idx(il, j, k)]
    }

    // ----- elementwise operations ----------------------------------------

    /// Set every sample to `v`.
    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }

    /// `self *= a`.
    pub fn scale(&mut self, a: T) {
        timing::time(Kernel::FieldOps, || {
            par_chunks_mut(&mut self.data, ELEM_CHUNK, |_, c| T::kscale(a, c))
        });
    }

    /// `self += a·x` (same layout required).
    pub fn axpy(&mut self, a: T, x: &Self) {
        self.check_same_layout(x);
        let xd = &x.data;
        timing::time(Kernel::FieldOps, || {
            par_chunks_mut(&mut self.data, ELEM_CHUNK, |ci, c| {
                let base = ci * ELEM_CHUNK;
                T::kaxpy(a, &xd[base..base + c.len()], c);
            })
        });
    }

    /// `self = a·self + x`.
    pub fn aypx(&mut self, a: T, x: &Self) {
        self.check_same_layout(x);
        let xd = &x.data;
        timing::time(Kernel::FieldOps, || {
            par_chunks_mut(&mut self.data, ELEM_CHUNK, |ci, c| {
                let base = ci * ELEM_CHUNK;
                T::kaypx(a, &xd[base..base + c.len()], c);
            })
        });
    }

    /// Copy values from another field of the same layout.
    pub fn copy_from(&mut self, x: &Self) {
        self.check_same_layout(x);
        self.data.copy_from_slice(&x.data);
    }

    /// Apply `f` to every sample in place.
    pub fn map_inplace(&mut self, f: impl Fn(T) -> T + Sync) {
        timing::time(Kernel::FieldOps, || {
            par_chunks_mut(&mut self.data, ELEM_CHUNK, |_, c| {
                for x in c {
                    *x = f(*x);
                }
            })
        });
    }

    /// `self[i] += a · x[i] · y[i]` — fused multiply-accumulate of a product,
    /// used for `λ∇m` terms in the reduced gradient.
    pub fn add_scaled_product(&mut self, a: T, x: &Self, y: &Self) {
        self.check_same_layout(x);
        self.check_same_layout(y);
        let (xd, yd) = (&x.data, &y.data);
        timing::time(Kernel::FieldOps, || {
            par_chunks_mut(&mut self.data, ELEM_CHUNK, |ci, c| {
                let base = ci * ELEM_CHUNK;
                T::kadd_scaled_product(a, &xd[base..base + c.len()], &yd[base..base + c.len()], c);
            })
        });
    }

    // ----- precision conversion (the GN demote/promote boundary) -----------

    /// Overwrite `self` with `src` converted element-by-element through f64
    /// (`U::to_f64` → `T::from_f64`). This is the mixed-precision boundary
    /// crossing: pooled destination + in-place write keep it allocation-free
    /// in the steady state.
    pub fn convert_from<U: FieldElem>(&mut self, src: &ScalarFieldT<U>) {
        assert_eq!(self.layout, src.layout, "field layout mismatch");
        let sd = &src.data;
        timing::time(Kernel::FieldOps, || {
            par_chunks_mut(&mut self.data, ELEM_CHUNK, |ci, c| {
                let base = ci * ELEM_CHUNK;
                let sv = &sd[base..base + c.len()];
                for (o, &v) in c.iter_mut().zip(sv) {
                    *o = T::from_f64(v.to_f64());
                }
            })
        });
    }

    /// A freshly pooled field holding `self` converted to width `U`.
    pub fn converted<U: FieldElem>(&self, cat: WsCat) -> ScalarFieldT<U> {
        let mut out = ScalarFieldT::<U>::zeros_in(self.layout, cat);
        out.convert_from(self);
        out
    }

    // ----- fused update + reduction ---------------------------------------
    //
    // These single-pass variants halve the DRAM traffic of the PCG field-op
    // chains (update then norm): the solver is bandwidth-bound (paper §3
    // counts memory passes, not flops), so one streamed pass instead of two
    // is a direct win. `ELEM_CHUNK == SUM_BLOCK`, so the fused reduction has
    // the same block boundaries as `dot_local` — on the scalar backend the
    // fused result is bit-identical to the unfused pair.

    /// `self += a·x`, returning the local raw self-dot `Σ selfᵢ²` of the
    /// updated field from the same pass over memory.
    pub fn axpy_dot_local(&mut self, a: T, x: &Self) -> f64 {
        self.check_same_layout(x);
        let xd = &x.data;
        timing::time(Kernel::FieldOps, || {
            par_chunks_mut_sum(&mut self.data, ELEM_CHUNK, |ci, c| {
                let base = ci * ELEM_CHUNK;
                T::kaxpy_dot(a, &xd[base..base + c.len()], c)
            })
        })
    }

    /// `self = a·self + x`, returning the local raw self-dot `Σ selfᵢ²` of
    /// the updated field from the same pass over memory.
    pub fn aypx_norm2_local(&mut self, a: T, x: &Self) -> f64 {
        self.check_same_layout(x);
        let xd = &x.data;
        timing::time(Kernel::FieldOps, || {
            par_chunks_mut_sum(&mut self.data, ELEM_CHUNK, |ci, c| {
                let base = ci * ELEM_CHUNK;
                T::kaypx_norm2(a, &xd[base..base + c.len()], c)
            })
        })
    }

    /// `self = a·x + y` in one pass — replaces the clone-then-axpy pattern
    /// (which costs a copy pass plus an update pass) at line-search call
    /// sites where `self` is a reused trial buffer.
    pub fn scale_add_from(&mut self, a: T, x: &Self, y: &Self) {
        self.check_same_layout(x);
        self.check_same_layout(y);
        let (xd, yd) = (&x.data, &y.data);
        timing::time(Kernel::FieldOps, || {
            par_chunks_mut(&mut self.data, ELEM_CHUNK, |ci, c| {
                let base = ci * ELEM_CHUNK;
                T::kscale_add_norm(a, &xd[base..base + c.len()], &yd[base..base + c.len()], c);
            })
        });
    }

    fn check_same_layout(&self, other: &Self) {
        assert_eq!(self.layout, other.layout, "field layout mismatch");
    }

    // ----- reductions ------------------------------------------------------

    /// Local (this-rank) raw dot product, accumulated in f64 over fixed-size
    /// blocks so the result is bitwise identical for every thread count.
    pub fn dot_local(&self, other: &Self) -> f64 {
        self.check_same_layout(other);
        let (a, b) = (&self.data, &other.data);
        timing::time(Kernel::FieldOps, || {
            par_sum_blocks(a.len(), |r| T::kdot(&a[r.clone()], &b[r]))
        })
    }

    /// Global raw dot product (sum over all grid points).
    pub fn dot(&self, other: &Self, comm: &mut Comm) -> f64 {
        comm.allreduce_sum_scalar(self.dot_local(other))
    }

    /// Global L2(Ω) inner product: `∫ f·g ≈ h³ Σ f·g`.
    pub fn inner(&self, other: &Self, comm: &mut Comm) -> f64 {
        self.dot(other, comm) * self.layout.grid.cell_volume() as f64
    }

    /// Global L2(Ω) norm.
    pub fn norm_l2(&self, comm: &mut Comm) -> f64 {
        self.inner(self, comm).max(0.0).sqrt()
    }

    /// Global max absolute value.
    pub fn max_abs(&self, comm: &mut Comm) -> f64 {
        let local = timing::time(Kernel::FieldOps, || par_max_abs(&self.data));
        comm.allreduce_max_scalar(local)
    }

    /// Global sum of samples.
    pub fn sum(&self, comm: &mut Comm) -> f64 {
        let local = timing::time(Kernel::FieldOps, || {
            par_sum_blocks(self.data.len(), |r| T::ksum(&self.data[r]))
        });
        comm.allreduce_sum_scalar(local)
    }
}

impl ScalarField {
    /// Sample an analytic function `f(x1, x2, x3)` at the owned grid points.
    /// Rows (fixed `il`, `j`) are sampled in parallel.
    pub fn from_fn(layout: Layout, f: impl Fn(Real, Real, Real) -> Real + Sync) -> Self {
        let mut field = Self::zeros(layout);
        let h = layout.grid.spacing();
        let [_, n2, n3] = layout.local_dims();
        let i0 = layout.slab.i0;
        par_chunks_mut(&mut field.data, n3, |row, line| {
            let x1 = (i0 + row / n2) as Real * h[0];
            let x2 = (row % n2) as Real * h[1];
            for (k, v) in line.iter_mut().enumerate() {
                *v = f(x1, x2, k as Real * h[2]);
            }
        });
        field
    }
}

/// A vector field `v : Ω → R³`, stored as three scalar components
/// (structure-of-arrays, like CLAIRE).
#[derive(Clone, Debug, PartialEq)]
pub struct VectorFieldT<T: FieldElem> {
    /// Components `[v1, v2, v3]`.
    pub c: [ScalarFieldT<T>; 3],
}

/// The `Real`-width vector field.
pub type VectorField = VectorFieldT<Real>;

impl<T: FieldElem> VectorFieldT<T> {
    /// Zero vector field (pooled, charged to µPDE).
    pub fn zeros(layout: Layout) -> Self {
        Self::zeros_in(layout, WsCat::Pde)
    }

    /// Zero vector field charged to an explicit workspace category.
    pub fn zeros_in(layout: Layout, cat: WsCat) -> Self {
        Self { c: std::array::from_fn(|_| ScalarFieldT::zeros_in(layout, cat)) }
    }

    /// The layout shared by all components.
    pub fn layout(&self) -> &Layout {
        self.c[0].layout()
    }

    /// `self *= a`.
    pub fn scale(&mut self, a: T) {
        for comp in &mut self.c {
            comp.scale(a);
        }
    }

    /// `self += a·x`.
    pub fn axpy(&mut self, a: T, x: &Self) {
        for (s, xc) in self.c.iter_mut().zip(&x.c) {
            s.axpy(a, xc);
        }
    }

    /// `self = a·self + x`.
    pub fn aypx(&mut self, a: T, x: &Self) {
        for (s, xc) in self.c.iter_mut().zip(&x.c) {
            s.aypx(a, xc);
        }
    }

    /// Copy from another vector field of the same layout.
    pub fn copy_from(&mut self, x: &Self) {
        for (s, xc) in self.c.iter_mut().zip(&x.c) {
            s.copy_from(xc);
        }
    }

    /// Set all components to zero.
    pub fn fill(&mut self, v: T) {
        for comp in &mut self.c {
            comp.fill(v);
        }
    }

    /// Overwrite `self` with `src` converted per component (the GN boundary
    /// demote/promote for search directions and Newton steps).
    pub fn convert_from<U: FieldElem>(&mut self, src: &VectorFieldT<U>) {
        for (s, xc) in self.c.iter_mut().zip(&src.c) {
            s.convert_from(xc);
        }
    }

    /// A freshly pooled vector field holding `self` converted to width `U`.
    pub fn converted<U: FieldElem>(&self, cat: WsCat) -> VectorFieldT<U> {
        let mut out = VectorFieldT::<U>::zeros_in(*self.layout(), cat);
        out.convert_from(self);
        out
    }

    /// `self += a·x`, returning the global L2(Ω)³ norm of the updated field
    /// — the fused form of `axpy` followed by `norm_l2`, one streamed pass
    /// over each component instead of two plus the same single allreduce.
    /// Component partials are summed in component order, so the scalar
    /// backend reproduces the unfused result bit for bit.
    pub fn axpy_norm_l2(&mut self, a: T, x: &Self, comm: &mut Comm) -> f64 {
        let mut local = 0.0;
        for (s, xc) in self.c.iter_mut().zip(&x.c) {
            local += s.axpy_dot_local(a, xc);
        }
        let vol = self.layout().grid.cell_volume() as f64;
        (comm.allreduce_sum_scalar(local) * vol).max(0.0).sqrt()
    }

    /// `self = a·self + x`, returning the global L2(Ω)³ norm of the updated
    /// field (fused `aypx` + `norm_l2`, same contract as [`Self::axpy_norm_l2`]).
    pub fn aypx_norm_l2(&mut self, a: T, x: &Self, comm: &mut Comm) -> f64 {
        let mut local = 0.0;
        for (s, xc) in self.c.iter_mut().zip(&x.c) {
            local += s.aypx_norm2_local(a, xc);
        }
        let vol = self.layout().grid.cell_volume() as f64;
        (comm.allreduce_sum_scalar(local) * vol).max(0.0).sqrt()
    }

    /// `self = a·x + y` per component in one pass (non-collective).
    pub fn scale_add_from(&mut self, a: T, x: &Self, y: &Self) {
        for ((s, xc), yc) in self.c.iter_mut().zip(&x.c).zip(&y.c) {
            s.scale_add_from(a, xc, yc);
        }
    }

    /// Global raw dot product over all components.
    pub fn dot(&self, other: &Self, comm: &mut Comm) -> f64 {
        let local: f64 = self.c.iter().zip(&other.c).map(|(a, b)| a.dot_local(b)).sum();
        comm.allreduce_sum_scalar(local)
    }

    /// Global L2(Ω)³ inner product.
    pub fn inner(&self, other: &Self, comm: &mut Comm) -> f64 {
        self.dot(other, comm) * self.layout().grid.cell_volume() as f64
    }

    /// Global L2(Ω)³ norm.
    pub fn norm_l2(&self, comm: &mut Comm) -> f64 {
        self.inner(self, comm).max(0.0).sqrt()
    }

    /// Global max over components of max absolute value — used for the CFL
    /// estimate that sizes the scatter buffers (paper §3.1).
    pub fn max_abs(&self, comm: &mut Comm) -> f64 {
        let local = timing::time(Kernel::FieldOps, || {
            self.c.iter().map(|c| par_max_abs(c.data())).fold(0.0, f64::max)
        });
        comm.allreduce_max_scalar(local)
    }
}

impl VectorField {
    /// Sample three analytic component functions.
    pub fn from_fns(
        layout: Layout,
        f1: impl Fn(Real, Real, Real) -> Real + Sync,
        f2: impl Fn(Real, Real, Real) -> Real + Sync,
        f3: impl Fn(Real, Real, Real) -> Real + Sync,
    ) -> Self {
        Self {
            c: [
                ScalarField::from_fn(layout, f1),
                ScalarField::from_fn(layout, f2),
                ScalarField::from_fn(layout, f3),
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use crate::real::TWO_PI;

    fn serial(n: usize) -> Layout {
        Layout::serial(Grid::cube(n))
    }

    #[test]
    fn from_fn_samples_coordinates() {
        let f = ScalarField::from_fn(serial(4), |x, _, _| x);
        let h = TWO_PI / 4.0;
        assert!((f.at(3, 0, 0) - 3.0 * h).abs() < 1e-6);
        assert!((f.at(0, 2, 1) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = ScalarField::from_fn(serial(4), |_, _, _| 2.0);
        let b = ScalarField::from_fn(serial(4), |_, _, _| 3.0);
        a.axpy(2.0, &b); // 2 + 6 = 8
        a.scale(0.5); // 4
        assert!(a.data().iter().all(|&x| (x - 4.0).abs() < 1e-12));
    }

    #[test]
    fn l2_norm_of_sine() {
        // ∫ sin²(x) dx over [0,2π)³ = π · (2π)² ⇒ ‖sin(x1)‖ = sqrt(2π³ · 2π ...)
        let n = 32;
        let f = ScalarField::from_fn(serial(n), |x, _, _| x.sin());
        let mut comm = Comm::solo();
        let norm = f.norm_l2(&mut comm);
        let expect = (0.5 * (TWO_PI as f64).powi(3)).sqrt();
        assert!((norm - expect).abs() < 1e-5 * expect, "{norm} vs {expect}");
    }

    #[test]
    fn vector_dot_symmetry() {
        let l = serial(8);
        let v = VectorField::from_fns(l, |x, _, _| x.sin(), |_, y, _| y.cos(), |_, _, z| z.sin());
        let w =
            VectorField::from_fns(l, |x, _, _| x.cos(), |_, y, _| y.sin(), |_, _, z| 1.0 + 0.0 * z);
        let mut comm = Comm::solo();
        let a = v.dot(&w, &mut comm);
        let b = w.dot(&v, &mut comm);
        assert!((a - b).abs() < 1e-10);
    }

    #[test]
    fn add_scaled_product() {
        let l = serial(4);
        let mut acc = ScalarField::zeros(l);
        let x = ScalarField::from_fn(l, |_, _, _| 3.0);
        let y = ScalarField::from_fn(l, |_, _, _| 4.0);
        acc.add_scaled_product(0.5, &x, &y);
        assert!(acc.data().iter().all(|&v| (v - 6.0).abs() < 1e-12));
    }

    #[test]
    fn fused_field_ops_bitwise_match_unfused_on_scalar_backend() {
        claire_simd::force_backend(Some(claire_simd::Choice::Scalar));
        let l = serial(16);
        let mut comm = Comm::solo();
        let v = VectorField::from_fns(l, |x, _, _| x.sin(), |_, y, _| y.cos(), |_, _, z| z.sin());
        let w = VectorField::from_fns(
            l,
            |x, _, _| (2.0 * x).cos(),
            |_, y, _| 0.5 - y.sin(),
            |_, _, z| z.cos() * 1.5,
        );

        // axpy + norm vs fused axpy_norm_l2
        let mut a = v.clone();
        a.axpy(-0.75, &w);
        let n_unfused = a.norm_l2(&mut comm);
        let mut b = v.clone();
        let n_fused = b.axpy_norm_l2(-0.75, &w, &mut comm);
        assert_eq!(a, b);
        assert_eq!(n_unfused.to_bits(), n_fused.to_bits());

        // aypx + norm vs fused aypx_norm_l2
        let mut a = v.clone();
        a.aypx(0.3, &w);
        let n_unfused = a.norm_l2(&mut comm);
        let mut b = v.clone();
        let n_fused = b.aypx_norm_l2(0.3, &w, &mut comm);
        assert_eq!(a, b);
        assert_eq!(n_unfused.to_bits(), n_fused.to_bits());

        // clone + axpy vs single-pass scale_add_from into a reused buffer
        let mut a = w.clone();
        a.axpy(1.25, &v);
        let mut b = VectorField::zeros(l);
        b.scale_add_from(1.25, &v, &w);
        assert_eq!(a, b);
        claire_simd::force_backend(None);
    }

    #[test]
    fn conversion_roundtrips_within_f32_ulp() {
        let l = serial(8);
        let f = ScalarField::from_fn(l, |x, y, z| (x + 0.5 * y).sin() * z.cos());
        let demoted: ScalarFieldT<f32> = f.converted(WsCat::GnCg);
        let mut back = ScalarField::zeros_in(l, WsCat::GnCg);
        back.convert_from(&demoted);
        for (a, b) in f.data().iter().zip(back.data()) {
            assert!(
                (a - b).abs() <= 1e-6 * a.abs().max(1.0),
                "f64→f32→f64 roundtrip out of tolerance: {a} vs {b}"
            );
        }
        // the demoted field's reductions still accumulate in f64
        let n64 = f.dot_local(&f);
        let n32 = demoted.dot_local(&demoted);
        assert!((n64 - n32).abs() <= 1e-5 * n64.max(1.0), "{n64} vs {n32}");
    }

    #[test]
    #[should_panic(expected = "layout mismatch")]
    fn layout_mismatch_panics() {
        let mut a = ScalarField::zeros(serial(4));
        let b = ScalarField::zeros(serial(8));
        a.axpy(1.0, &b);
    }
}
