//! Periodic ghost-layer exchange along the slab dimension `x1`.
//!
//! The FD kernel (§3.2) and the interpolation kernel (§3.1) both need a halo
//! of `x1`-planes from neighbouring slabs: the paper communicates "a ghost
//! layer of size O(N2·N3) to neighboring MPI ranks". This module implements
//! that exchange for arbitrary halo widths — including widths larger than a
//! neighbour's slab (a rank then receives planes from several ranks), which
//! happens for the 8th-order stencil (width 4) on thin slabs.
//!
//! Traffic is accounted under [`CommCat::Ghost`], i.e. the `ghost_comm`
//! phase of Table 2 and the `comm` column of Table 3.

use claire_mpi::{Comm, CommCat};
use claire_par::par_chunks_mut;
use claire_par::timing::{self, Kernel};

use crate::error::{ClaireError, ClaireResult};
use crate::field::ScalarField;
use crate::real::Real;
use crate::slab::Layout;
use crate::workspace::{PoolVec, WsCat, REAL_POOL};

/// A scalar field extended by `width` ghost planes on both `x1` sides.
///
/// Storage dims are `[ni + 2·width, n2, n3]`; local plane `il` of the owned
/// slab lives at storage plane `il + width`. Storage is pooled (µFD), so
/// even code paths that allocate a fresh `GhostField` per exchange recycle
/// the buffer at steady state.
#[derive(Clone, Debug)]
pub struct GhostField {
    layout: Layout,
    width: usize,
    data: PoolVec<Real>,
}

impl GhostField {
    /// Halo width in planes.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Layout of the interior (owned) slab.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Raw storage including halos.
    pub fn data(&self) -> &[Real] {
        &self.data
    }

    /// Value at owned-slab-relative plane `ii ∈ [-width, ni + width)`.
    #[inline]
    pub fn at(&self, ii: isize, j: usize, k: usize) -> Real {
        let g = self.layout.grid;
        debug_assert!(ii >= -(self.width as isize));
        debug_assert!(ii < (self.layout.slab.ni + self.width) as isize);
        let plane = (ii + self.width as isize) as usize;
        self.data[(plane * g.n[1] + j) * g.n[2] + k]
    }

    /// Bytes of halo data this exchange shipped in (both sides), for
    /// model cross-checks.
    pub fn halo_bytes(&self) -> usize {
        2 * self.width * self.layout.grid.n[1] * self.layout.grid.n[2] * std::mem::size_of::<Real>()
    }

    /// Check that `width` is a valid halo width for `layout`.
    pub fn validate(layout: &Layout, width: usize) -> ClaireResult<()> {
        let n0 = layout.grid.n[0];
        if width > n0 {
            return Err(ClaireError::Decomposition {
                context: "GhostField::alloc",
                message: format!("halo width {width} exceeds grid extent {n0}"),
            });
        }
        Ok(())
    }

    /// Zeroed ghost buffer sized for `layout` and `width`, to be filled by
    /// [`exchange_into`] — allocate once, reuse across exchanges. Returns a
    /// typed error when the halo width exceeds the grid extent.
    pub fn try_alloc(layout: Layout, width: usize) -> ClaireResult<GhostField> {
        Self::validate(&layout, width)?;
        let g = layout.grid;
        let plane = g.n[1] * g.n[2];
        let len = (layout.slab.ni + 2 * width) * plane;
        Ok(GhostField { layout, width, data: REAL_POOL.checkout_filled(len, 0.0, WsCat::Fd) })
    }

    /// Panicking convenience wrapper around [`GhostField::try_alloc`].
    pub fn alloc(layout: Layout, width: usize) -> GhostField {
        Self::try_alloc(layout, width).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Exchange ghost layers of `width` planes for `field`.
///
/// Works for any rank count, including serial (pure local periodic wrap).
/// All ranks of the communicator must call this collectively. Allocates the
/// ghost buffer; hot loops should hold one and call [`exchange_into`].
pub fn exchange(field: &ScalarField, width: usize, comm: &mut Comm) -> GhostField {
    let mut gf = GhostField::alloc(*field.layout(), width);
    exchange_into(field, comm, &mut gf);
    gf
}

/// Fill a pre-allocated ghost buffer (see [`GhostField::alloc`]) — the
/// allocation-free variant used by the FD scratch path. The interior copy is
/// parallelized over `x1`-planes; the send/receive part stays serial (it is
/// latency-bound and must follow the virtual-MPI per-rank message order).
pub fn exchange_into(field: &ScalarField, comm: &mut Comm, gf: &mut GhostField) {
    let layout = *field.layout();
    assert_eq!(gf.layout, layout, "ghost buffer layout mismatch");
    let width = gf.width;
    let g = layout.grid;
    let plane = g.n[1] * g.n[2];
    let ni = layout.slab.ni;
    let data = &mut gf.data;

    timing::time(Kernel::Ghost, || {
        // interior copy, parallel over planes
        let src = field.data();
        par_chunks_mut(&mut data[width * plane..(width + ni) * plane], plane, |pi, dst| {
            dst.copy_from_slice(&src[pi * plane..pi * plane + dst.len()]);
        });

        if layout.is_serial() {
            // periodic wrap without communication
            for w in 0..width {
                let src_lo = g.wrap(0, -(1 + w as isize)); // planes n-1, n-2, ...
                let dst_lo = width - 1 - w;
                data.copy_within(
                    (width + src_lo) * plane..(width + src_lo + 1) * plane,
                    dst_lo * plane,
                );
                let src_hi = g.wrap(0, (ni + w) as isize);
                let dst_hi = width + ni + w;
                data.copy_within(
                    (width + src_hi) * plane..(width + src_hi + 1) * plane,
                    dst_hi * plane,
                );
            }
            return;
        }

        // Global plane indices this rank needs, in halo storage order:
        // low halo: i0-width .. i0, high halo: i_end .. i_end+width (wrapped).
        // For every other rank, figure out (a) which of *my* planes it needs
        // and send them, (b) which planes I need from it and receive them.
        let p = layout.nranks;
        let me = layout.rank;

        // (plane in my halo storage) -> (owner, global plane)
        let mut needed: Vec<(usize, usize, usize)> = Vec::with_capacity(2 * width); // (storage_plane, owner, global_i)
        for w in 0..width {
            let gi = g.wrap(0, layout.slab.i0 as isize - width as isize + w as isize);
            needed.push((w, layout.owner_of_plane(gi), gi));
        }
        for w in 0..width {
            let gi = g.wrap(0, (layout.slab.i_end() + w) as isize);
            needed.push((width + ni + w, layout.owner_of_plane(gi), gi));
        }

        // Deterministically compute what each peer needs from me by replaying
        // the same rule from their perspective.
        const TAG_GHOST: u64 = 0x6805;
        for peer in 0..p {
            if peer == me {
                continue;
            }
            let pslab = layout.slab_of(peer);
            let mut planes_for_peer: Vec<usize> = Vec::new();
            for w in 0..width {
                let gi = g.wrap(0, pslab.i0 as isize - width as isize + w as isize);
                if layout.slab.owns(gi) {
                    planes_for_peer.push(gi);
                }
                let gi_hi = g.wrap(0, (pslab.i_end() + w) as isize);
                if layout.slab.owns(gi_hi) {
                    planes_for_peer.push(gi_hi);
                }
            }
            if !planes_for_peer.is_empty() {
                planes_for_peer.sort_unstable();
                planes_for_peer.dedup();
                let mut buf: Vec<Real> = Vec::with_capacity(planes_for_peer.len() * plane);
                for &gi in &planes_for_peer {
                    let il = gi - layout.slab.i0;
                    buf.extend_from_slice(&field.data()[il * plane..(il + 1) * plane]);
                }
                comm.send(peer, TAG_GHOST, CommCat::Ghost, &buf);
            }
        }

        // Receive from each owner I depend on; planes arrive sorted by global
        // index (the sender's ordering), deduplicated.
        let mut owners: Vec<usize> =
            needed.iter().map(|&(_, o, _)| o).filter(|&o| o != me).collect();
        owners.sort_unstable();
        owners.dedup();
        for owner in owners {
            let buf: Vec<Real> = comm.recv(owner, TAG_GHOST, CommCat::Ghost);
            let mut planes: Vec<usize> =
                needed.iter().filter(|&&(_, o, _)| o == owner).map(|&(_, _, gi)| gi).collect();
            planes.sort_unstable();
            planes.dedup();
            assert_eq!(buf.len(), planes.len() * plane, "ghost message size mismatch");
            for (slot, &gi) in planes.iter().enumerate() {
                for &(storage, o, need_gi) in &needed {
                    if o == owner && need_gi == gi {
                        data[storage * plane..(storage + 1) * plane]
                            .copy_from_slice(&buf[slot * plane..(slot + 1) * plane]);
                    }
                }
            }
        }

        // halo planes I own myself (tiny grids / wrap-around onto my own slab)
        for &(storage, o, gi) in &needed {
            if o == me {
                let il = gi - layout.slab.i0;
                data.copy_within((width + il) * plane..(width + il + 1) * plane, storage * plane);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use claire_mpi::{run_cluster, Topology};

    fn reference_value(g: Grid, i: isize, j: usize, k: usize) -> Real {
        let iw = g.wrap(0, i);
        (iw * 100 + j * 10 + k) as Real
    }

    fn indexed_field(layout: Layout) -> ScalarField {
        let g = layout.grid;
        let mut f = ScalarField::zeros(layout);
        for il in 0..layout.slab.ni {
            for j in 0..g.n[1] {
                for k in 0..g.n[2] {
                    *f.at_mut(il, j, k) = reference_value(g, (layout.slab.i0 + il) as isize, j, k);
                }
            }
        }
        f
    }

    fn check_halo(gf: &GhostField) {
        let l = gf.layout();
        let g = l.grid;
        let w = gf.width() as isize;
        for ii in -w..(l.slab.ni as isize + w) {
            for j in 0..g.n[1] {
                for k in 0..g.n[2] {
                    let expect = reference_value(g, l.slab.i0 as isize + ii, j, k);
                    assert_eq!(gf.at(ii, j, k), expect, "at ii={ii} j={j} k={k}");
                }
            }
        }
    }

    #[test]
    fn serial_wrap() {
        let layout = Layout::serial(Grid::new([6, 3, 2]));
        let f = indexed_field(layout);
        let mut comm = Comm::solo();
        let gf = exchange(&f, 2, &mut comm);
        check_halo(&gf);
    }

    #[test]
    fn distributed_matches_periodic_wrap() {
        for p in [2usize, 3, 4] {
            let res = run_cluster(Topology::new(p, 4), move |comm| {
                let layout = Layout::distributed(Grid::new([8, 3, 2]), comm);
                let f = indexed_field(layout);
                let gf = exchange(&f, 2, comm);
                check_halo(&gf);
                comm.stats().cat(CommCat::Ghost).bytes_sent
            });
            assert!(res.outputs.iter().all(|&b| b > 0), "ghost traffic expected for p={p}");
        }
    }

    #[test]
    fn wide_halo_spans_multiple_ranks() {
        // width 4 with slabs of 2 planes: halo needs planes from 2 ranks per side
        let res = run_cluster(Topology::new(4, 4), |comm| {
            let layout = Layout::distributed(Grid::new([8, 2, 2]), comm);
            let f = indexed_field(layout);
            let gf = exchange(&f, 4, comm);
            check_halo(&gf);
        });
        assert_eq!(res.outputs.len(), 4);
    }

    #[test]
    fn exchange_matches_over_socket_transport() {
        // Width-2 halos over 4 ranks, once per transport: every halo plane
        // must be byte-identical whether it traveled a channel or a socket.
        let f = |comm: &mut Comm| {
            let layout = Layout::distributed(Grid::new([8, 3, 2]), comm);
            let f = indexed_field(layout);
            let gf = exchange(&f, 2, comm);
            let (l, w) = (gf.layout(), gf.width() as isize);
            let mut bits = Vec::new();
            for ii in -w..(l.slab.ni as isize + w) {
                for j in 0..l.grid.n[1] {
                    for k in 0..l.grid.n[2] {
                        bits.push(gf.at(ii, j, k).to_bits());
                    }
                }
            }
            bits
        };
        let chan = run_cluster(Topology::new(4, 4), f);
        let sock = claire_ipc::run_socket_cluster(Topology::new(4, 4), f);
        assert_eq!(chan.outputs, sock.outputs, "transports must agree bitwise");
    }

    #[test]
    fn ghost_volume_matches_formula() {
        // paper: message size for ghost_comm is O(N2 N3) per side
        let res = run_cluster(Topology::new(2, 4), |comm| {
            let layout = Layout::distributed(Grid::new([8, 4, 6]), comm);
            let f = indexed_field(layout);
            let _ = exchange(&f, 1, comm);
            comm.stats().cat(CommCat::Ghost).bytes_sent as usize
        });
        let expected = 2 * 4 * 6 * std::mem::size_of::<Real>(); // two sides, one plane each
        assert!(res.outputs.iter().all(|&b| b == expected));
    }
}
