//! Floating-point precision selection.
//!
//! The paper runs CLAIRE in single precision on V100 GPUs. This reproduction
//! defaults to `f64` because the functional experiments run at much smaller
//! grid sizes where robust Krylov convergence matters more than memory
//! footprint; enabling the `single` cargo feature switches all field storage
//! to `f32` to reproduce the paper's precision configuration. Reductions
//! always accumulate in `f64` regardless.

/// Scalar type of all field data.
#[cfg(feature = "single")]
pub type Real = f32;

/// Scalar type of all field data.
#[cfg(not(feature = "single"))]
pub type Real = f64;

/// π in field precision.
pub const PI: Real = std::f64::consts::PI as Real;

/// 2π — the domain edge length of `Ω = [0, 2π)³`.
pub const TWO_PI: Real = (2.0 * std::f64::consts::PI) as Real;

/// Machine epsilon of the field precision.
pub const REAL_EPS: Real = Real::EPSILON;

/// Bytes per field scalar (the paper's `µ0`; 4 in their single-precision runs).
pub const REAL_BYTES: usize = std::mem::size_of::<Real>();
