//! The Unix-domain-socket transport: ranks as OS processes.
//!
//! Each rank binds its own listener socket (`rank-<i>.sock`) inside a shared
//! rendezvous directory, then builds a full mesh: rank `i` connects to every
//! rank `j < i` (retrying until the peer's listener exists) and accepts a
//! connection from every rank `j > i`. Every stream opens with a [`Hello`]
//! frame carrying `(rank, topology, protocol version)`; rank 0 — the
//! rendezvous point — validates that all ranks agree and releases the
//! cluster with a `Welcome` frame. Connect-before-accept is deadlock-free
//! because a bound listener queues connections in its backlog before
//! `accept` is ever called.
//!
//! Messages are length-framed binary (the serve protocol's 4-byte-BE
//! framing, shared via [`crate::frame`]) with a fixed 24-byte header. Sends
//! below the eager threshold stage header + payload into one buffer and one
//! `write`; larger sends stream the payload directly from its source slice
//! (rendezvous path — the stream socket's flow control takes the place of a
//! clear-to-send round trip). One reader thread per peer decodes frames
//! into an internal queue that [`Transport::recv`] drains.

use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use claire_grid::{ClaireError, ClaireResult};
use claire_mpi::transport::{AbortHandle, Transport, TransportError};
use claire_mpi::{
    ClusterError, ClusterResult, Comm, CommStats, LinkModel, Message, ModelClock, Topology,
};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};

use crate::frame::{self, FrameError, MAX_FRAME_BYTES};
use crate::wire::{self, Hello};

/// Default eager/rendezvous switchover: payloads up to this many bytes are
/// staged and written in one syscall; larger ones stream unstaged.
pub const DEFAULT_EAGER_THRESHOLD: usize = 256 * 1024;

/// How often a blocked receive re-checks the abort flag.
const ABORT_POLL: Duration = Duration::from_millis(2);

/// Tuning knobs for [`SocketTransport::bootstrap`].
#[derive(Clone)]
pub struct SocketOpts {
    /// Payloads at or below this size take the eager (staged, single-write)
    /// path; larger payloads stream without staging. Env override:
    /// `CLAIRE_IPC_EAGER` (bytes).
    pub eager_threshold: usize,
    /// How long to keep retrying the mesh construction before giving up
    /// (covers peers that are still starting). Env override:
    /// `CLAIRE_IPC_TIMEOUT` (seconds).
    pub bootstrap_timeout: Duration,
    /// Shared abort flag for in-process socket clusters; `None` for real
    /// worker processes (the launcher supervises those).
    pub abort: Option<Arc<AbortHandle>>,
}

impl Default for SocketOpts {
    fn default() -> Self {
        let eager = std::env::var("CLAIRE_IPC_EAGER")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_EAGER_THRESHOLD);
        let timeout = std::env::var("CLAIRE_IPC_TIMEOUT")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Duration::from_secs)
            .unwrap_or(Duration::from_secs(30));
        SocketOpts { eager_threshold: eager, bootstrap_timeout: timeout, abort: None }
    }
}

/// Path of rank `r`'s listener inside the rendezvous directory.
pub fn rank_socket_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("rank-{rank}.sock"))
}

/// A fresh, unique rendezvous directory under the system temp dir.
pub fn fresh_rendezvous_dir(label: &str) -> std::io::Result<PathBuf> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "claire-{label}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

enum Inbound {
    Msg(Message),
    PeerDown { peer: usize, detail: String },
}

/// [`Transport`] over Unix-domain sockets: one stream per peer, one reader
/// thread per stream, real bytes-on-wire accounting.
pub struct SocketTransport {
    rank: usize,
    topo: Topology,
    /// Write halves, indexed by peer rank (`None` at self).
    peers: Vec<Option<UnixStream>>,
    inbox: Receiver<Inbound>,
    readers: Vec<JoinHandle<()>>,
    eager_threshold: usize,
    abort: Option<Arc<AbortHandle>>,
    /// Reused staging buffer for the eager path.
    scratch: Vec<u8>,
    eager_msgs: u64,
    rendezvous_msgs: u64,
}

fn io_err(context: &str, e: impl std::fmt::Display) -> ClaireError {
    ClaireError::Io { context: "SocketTransport::bootstrap", message: format!("{context}: {e}") }
}

impl SocketTransport {
    /// Join the cluster rendezvous in `dir` as `rank` and build the mesh.
    ///
    /// Blocks until every peer stream is connected, validated, and rank 0
    /// has released the cluster; fails typed after `opts.bootstrap_timeout`.
    pub fn bootstrap(
        dir: &Path,
        rank: usize,
        topo: Topology,
        opts: SocketOpts,
    ) -> ClaireResult<SocketTransport> {
        let size = topo.nranks;
        assert!(rank < size, "rank {rank} out of range for {size} ranks");
        let deadline = Instant::now() + opts.bootstrap_timeout;

        let own_path = rank_socket_path(dir, rank);
        // a stale socket file from a crashed previous run would make bind fail
        let _ = std::fs::remove_file(&own_path);
        let listener = UnixListener::bind(&own_path)
            .map_err(|e| io_err(&format!("bind {}", own_path.display()), e))?;

        let mut peers: Vec<Option<UnixStream>> = (0..size).map(|_| None).collect();

        // connect to every lower rank (their listeners queue us in their
        // backlog even before they accept)
        #[allow(clippy::needless_range_loop)] // indexing `peers[j]` mirrors the mesh layout
        for j in 0..rank {
            let path = rank_socket_path(dir, j);
            let stream = loop {
                match UnixStream::connect(&path) {
                    Ok(s) => break s,
                    Err(e) => {
                        if Instant::now() >= deadline {
                            return Err(io_err(
                                &format!("connect to rank {j} at {}", path.display()),
                                e,
                            ));
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            };
            let hello = wire::encode_hello(&Hello { rank, topo });
            let mut w = &stream;
            frame::write_frame(&mut w, &hello)
                .map_err(|e| io_err(&format!("hello to rank {j}"), e))?;
            peers[j] = Some(stream);
        }

        // accept every higher rank; the Hello identifies which one connected
        for _ in rank + 1..size {
            let (stream, _) = listener.accept().map_err(|e| io_err("accept", e))?;
            let mut r = &stream;
            let hello_frame =
                frame::read_frame(&mut r, MAX_FRAME_BYTES).map_err(|e| io_err("read hello", e))?;
            let hello = wire::decode_hello(&hello_frame).map_err(|e| io_err("decode hello", e))?;
            if hello.topo != topo {
                return Err(io_err(
                    "rendezvous",
                    format!(
                        "rank {} was launched with topology {:?}, this rank with {:?}",
                        hello.rank, hello.topo, topo
                    ),
                ));
            }
            if hello.rank <= rank || hello.rank >= size || peers[hello.rank].is_some() {
                return Err(io_err(
                    "rendezvous",
                    format!("unexpected or duplicate hello from rank {}", hello.rank),
                ));
            }
            peers[hello.rank] = Some(stream);
        }

        // rank-0 rendezvous: once all hellos are in, release the cluster;
        // everyone else waits for the release before exchanging data
        if size > 1 {
            if rank == 0 {
                let welcome = wire::encode_welcome(&topo);
                for peer in peers.iter().flatten() {
                    let mut w = peer;
                    frame::write_frame(&mut w, &welcome).map_err(|e| io_err("send welcome", e))?;
                }
            } else {
                let mut r = peers[0].as_ref().expect("rank 0 stream");
                let welcome_frame = frame::read_frame(&mut r, MAX_FRAME_BYTES)
                    .map_err(|e| io_err("read welcome", e))?;
                let agreed = wire::decode_welcome(&welcome_frame)
                    .map_err(|e| io_err("decode welcome", e))?;
                if agreed != topo {
                    return Err(io_err("rendezvous", "rank 0 agreed on a different topology"));
                }
            }
        }

        // split each stream: reader threads decode frames into one queue
        let (tx, inbox) = crossbeam::channel::unbounded::<Inbound>();
        let mut readers = Vec::new();
        for (peer, slot) in peers.iter().enumerate() {
            let Some(stream) = slot else { continue };
            let read_half = stream.try_clone().map_err(|e| io_err("clone stream for reader", e))?;
            readers.push(spawn_reader(peer, read_half, tx.clone()));
        }
        drop(tx);

        Ok(SocketTransport {
            rank,
            topo,
            peers,
            inbox,
            readers,
            eager_threshold: opts.eager_threshold,
            abort: opts.abort,
            scratch: Vec::new(),
            eager_msgs: 0,
            rendezvous_msgs: 0,
        })
    }

    /// Messages sent through the eager (staged single-write) path.
    pub fn eager_msgs(&self) -> u64 {
        self.eager_msgs
    }

    /// Messages sent through the rendezvous (unstaged streaming) path.
    pub fn rendezvous_msgs(&self) -> u64 {
        self.rendezvous_msgs
    }
}

fn spawn_reader(peer: usize, stream: UnixStream, tx: Sender<Inbound>) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut r = &stream;
        loop {
            match frame::read_frame(&mut r, MAX_FRAME_BYTES) {
                Ok(payload) => match wire::decode_msg(&payload) {
                    Ok(msg) => {
                        if tx.send(Inbound::Msg(msg)).is_err() {
                            return; // transport dropped
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Inbound::PeerDown { peer, detail: e.to_string() });
                        return;
                    }
                },
                // clean close on a frame boundary: the peer finished and
                // dropped its transport — normal shutdown skew, not failure
                Err(FrameError::Closed) => return,
                Err(e) => {
                    let _ = tx.send(Inbound::PeerDown { peer, detail: e.to_string() });
                    return;
                }
            }
        }
    })
}

impl Transport for SocketTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn topo(&self) -> &Topology {
        &self.topo
    }

    fn kind(&self) -> &'static str {
        "socket"
    }

    fn send(&mut self, dst: usize, msg: Message) -> Result<u64, TransportError> {
        let header = wire::encode_msg_header(&msg);
        let frame_len = header.len() + msg.payload.len();
        let wire_bytes = (4 + frame_len) as u64;
        let stream = self.peers[dst].as_mut().ok_or_else(|| TransportError::Io {
            detail: format!("no stream to rank {dst} (self-send is not routed over sockets)"),
        })?;
        let res = if msg.payload.len() <= self.eager_threshold {
            // eager: one staged buffer, one write
            self.eager_msgs += 1;
            self.scratch.clear();
            self.scratch.reserve(4 + frame_len);
            self.scratch.extend_from_slice(&(frame_len as u32).to_be_bytes());
            self.scratch.extend_from_slice(&header);
            self.scratch.extend_from_slice(&msg.payload);
            stream.write_all(&self.scratch).and_then(|_| stream.flush()).map_err(FrameError::Io)
        } else {
            // rendezvous: stream the payload from its source, no staging copy
            self.rendezvous_msgs += 1;
            frame::write_frame_parts(stream, &[&header, &msg.payload])
        };
        res.map_err(|e| TransportError::PeerLost { peer: dst, detail: e.to_string() })?;
        Ok(wire_bytes)
    }

    fn recv(&mut self) -> Result<Message, TransportError> {
        loop {
            if let Some(abort) = &self.abort {
                if abort.is_aborted() {
                    let detail = abort.detail().unwrap_or_else(|| "peer rank failed".into());
                    return Err(TransportError::Aborted { detail });
                }
            }
            match self.inbox.recv_timeout(ABORT_POLL) {
                Ok(Inbound::Msg(msg)) => return Ok(msg),
                Ok(Inbound::PeerDown { peer, detail }) => {
                    return Err(TransportError::PeerLost { peer, detail })
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(TransportError::Io { detail: "all peer connections closed".into() })
                }
            }
        }
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        // unblock our readers (and peers' readers) so joins are bounded
        for stream in self.peers.iter().flatten() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        for h in self.readers.drain(..) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// in-process socket clusters (tests, benches, the --in-process comparison)
// ---------------------------------------------------------------------------

fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(e) = payload.downcast_ref::<TransportError>() {
        e.to_string()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "rank panicked".to_string()
    }
}

fn is_secondary(payload: &(dyn std::any::Any + Send)) -> bool {
    matches!(payload.downcast_ref::<TransportError>(), Some(TransportError::Aborted { .. }))
}

/// Run `f` on every rank of a cluster whose ranks are threads of this
/// process but whose messages travel through real Unix-domain sockets.
///
/// This exercises the full socket path — bootstrap handshake, framing,
/// eager/rendezvous sends, reader threads — without spawning processes;
/// the proptest equivalence suite and the transport bench rows use it.
/// Panics on failure; see [`try_run_socket_cluster`] for the typed variant.
pub fn run_socket_cluster<R, F>(topo: Topology, f: F) -> ClusterResult<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    match try_run_socket_cluster(topo, f) {
        Ok(res) => res,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`run_socket_cluster`]: one dead rank aborts the others and
/// surfaces as a typed [`ClusterError`].
pub fn try_run_socket_cluster<R, F>(topo: Topology, f: F) -> Result<ClusterResult<R>, ClusterError>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    let p = topo.nranks;
    let dir = fresh_rendezvous_dir("sockcluster")
        .unwrap_or_else(|e| panic!("cannot create rendezvous dir: {e}"));
    let abort = Arc::new(AbortHandle::new());

    type RankOutcome<R> = Result<(R, CommStats, ModelClock), Box<dyn std::any::Any + Send>>;
    let mut results: Vec<Option<RankOutcome<R>>> = (0..p).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(p);
        for rank in 0..p {
            let dir = dir.clone();
            let abort = Arc::clone(&abort);
            let f = &f;
            handles.push(scope.spawn(move || {
                let opts = SocketOpts { abort: Some(Arc::clone(&abort)), ..Default::default() };
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let transport = SocketTransport::bootstrap(&dir, rank, topo, opts)
                        .unwrap_or_else(|e| {
                            std::panic::panic_any(TransportError::Io { detail: e.to_string() })
                        });
                    let mut comm = Comm::from_transport(Box::new(transport), LinkModel::default());
                    let out = f(&mut comm);
                    let (stats, clock) = comm.take_results();
                    (out, stats, clock)
                }));
                match out {
                    Ok(v) => Ok(v),
                    Err(payload) => {
                        if !is_secondary(payload.as_ref()) {
                            abort.abort(describe_panic(payload.as_ref()));
                        }
                        Err(payload)
                    }
                }
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            results[rank] = Some(h.join().expect("socket cluster harness panicked"));
        }
    });
    let _ = std::fs::remove_dir_all(&dir);

    let mut primary: Option<ClusterError> = None;
    let mut fallback: Option<ClusterError> = None;
    for (rank, r) in results.iter().enumerate() {
        if let Some(Err(payload)) = r {
            let e = ClusterError { rank, detail: describe_panic(payload.as_ref()) };
            if is_secondary(payload.as_ref()) {
                fallback.get_or_insert(e);
            } else if primary.is_none() {
                primary = Some(e);
            }
        }
    }
    if let Some(e) = primary.or(fallback) {
        return Err(e);
    }

    let mut outputs = Vec::with_capacity(p);
    let mut stats = Vec::with_capacity(p);
    let mut clocks = Vec::with_capacity(p);
    for r in results {
        let (o, s, c) = r.expect("rank result missing").unwrap_or_else(|_| unreachable!());
        outputs.push(o);
        stats.push(s);
        clocks.push(c);
    }
    Ok(ClusterResult { outputs, stats, clocks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_mpi::{AlltoallMethod, CommCat};

    #[test]
    fn socket_cluster_ring_exchange() {
        let res = run_socket_cluster(Topology::new(3, 2), |comm| {
            assert_eq!(comm.transport_kind(), "socket");
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(right, 7, CommCat::Other, &[comm.rank() as u64]);
            let got: Vec<u64> = comm.recv(left, 7, CommCat::Other);
            got[0]
        });
        assert_eq!(res.outputs, vec![2, 0, 1]);
    }

    #[test]
    fn socket_send_reports_real_wire_bytes() {
        let res = run_socket_cluster(Topology::new(2, 2), |comm| {
            let peer = 1 - comm.rank();
            let got: Vec<u8> = comm.sendrecv(peer, peer, 3, CommCat::Ghost, &[0u8; 100]);
            assert_eq!(got.len(), 100);
            comm.stats().cat(CommCat::Ghost).wire_bytes
        });
        // 4-byte frame length + 24-byte header + 100 payload bytes
        assert_eq!(res.outputs, vec![128, 128]);
    }

    #[test]
    fn rendezvous_path_used_above_threshold() {
        let dir = fresh_rendezvous_dir("eager-test").unwrap();
        let topo = Topology::new(2, 2);
        let small = vec![0u8; 64];
        let big = vec![0u8; 4096];
        std::thread::scope(|scope| {
            let d = dir.clone();
            let (small, big) = (small.clone(), big.clone());
            scope.spawn(move || {
                let opts = SocketOpts { eager_threshold: 1024, ..Default::default() };
                let mut t = SocketTransport::bootstrap(&d, 0, topo, opts).unwrap();
                let mk = |payload: &[u8], tag| Message {
                    src: 0,
                    tag,
                    cat: CommCat::Other,
                    sent_clock: 0.0,
                    link_free: false,
                    payload: bytes::Bytes::copy_from_slice(payload),
                };
                t.send(1, mk(&small, 1)).unwrap();
                t.send(1, mk(&big, 2)).unwrap();
                assert_eq!((t.eager_msgs(), t.rendezvous_msgs()), (1, 1));
                // hold until the peer confirms receipt
                let done = t.recv().unwrap();
                assert_eq!(done.tag, 99);
            });
            scope.spawn(move || {
                let mut t =
                    SocketTransport::bootstrap(&dir, 1, topo, SocketOpts::default()).unwrap();
                let m1 = t.recv().unwrap();
                let m2 = t.recv().unwrap();
                assert_eq!((m1.tag, m1.payload.len()), (1, 64));
                assert_eq!((m2.tag, m2.payload.len()), (2, 4096));
                let ack = Message {
                    src: 1,
                    tag: 99,
                    cat: CommCat::Other,
                    sent_clock: 0.0,
                    link_free: false,
                    payload: bytes::Bytes::copy_from_slice(&[]),
                };
                t.send(0, ack).unwrap();
            });
        });
        let _ = std::fs::remove_dir_all(std::env::temp_dir().join("claire-eager-test"));
    }

    #[test]
    fn collectives_run_over_sockets() {
        let res = run_socket_cluster(Topology::new(4, 2), |comm| {
            let sum = comm.allreduce_sum_scalar(comm.rank() as f64 + 1.0);
            let bufs: Vec<Vec<u64>> =
                (0..comm.size()).map(|d| vec![(comm.rank() * 10 + d) as u64]).collect();
            let a2a = comm.alltoallv(&bufs, CommCat::FftTranspose, AlltoallMethod::Auto);
            comm.barrier();
            (sum, a2a[2][0])
        });
        for (r, &(sum, from2)) in res.outputs.iter().enumerate() {
            assert_eq!(sum, 10.0);
            assert_eq!(from2, (2 * 10 + r) as u64);
        }
    }

    #[test]
    fn dead_rank_yields_typed_error_not_hang() {
        let t0 = Instant::now();
        let err = try_run_socket_cluster(Topology::new(3, 2), |comm| {
            if comm.rank() == 1 {
                panic!("socket rank down");
            }
            let _: Vec<u8> = comm.recv(1, 5, CommCat::Other);
        })
        .unwrap_err();
        assert_eq!(err.rank, 1);
        assert!(err.detail.contains("socket rank down"), "{}", err.detail);
        assert!(t0.elapsed() < Duration::from_secs(20));
    }
}
