//! The length-framed byte codec shared by every CLAIRE-rs wire protocol.
//!
//! One frame is a 4-byte big-endian payload length followed by the payload.
//! This is the framing discipline `claire-serve`'s JSON protocol introduced;
//! the socket transport's binary rank messages reuse it verbatim, so the
//! codec lives here once and both protocols wrap it (`claire-serve` maps
//! [`FrameError`] onto its `WireError`).
//!
//! Semantics the callers rely on:
//!
//! * the length prefix is validated against a cap *before* allocating, so a
//!   hostile or corrupt peer cannot trigger a huge allocation;
//! * a clean EOF on a frame boundary is [`FrameError::Closed`] while EOF
//!   mid-frame is [`FrameError::Truncated`] — connection shutdown and data
//!   corruption stay distinguishable;
//! * a read timeout before the first header byte is [`FrameError::Timeout`]
//!   (pollers use short socket timeouts as idle ticks); once any byte of a
//!   frame has arrived, timeouts keep retrying — the peer has promised the
//!   rest.

use std::io::{self, Read, Write};

/// Upper bound on a frame payload (1 GiB), checked against the length
/// prefix before any allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 30;

/// Transport-level framing failure.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O error.
    Io(io::Error),
    /// Read timed out on a frame boundary (no header byte yet).
    Timeout,
    /// The peer closed the connection cleanly on a frame boundary.
    Closed,
    /// The connection ended mid-frame.
    Truncated {
        /// Bytes the frame promised.
        expected: usize,
        /// Bytes that actually arrived.
        got: usize,
    },
    /// The length prefix exceeds the configured cap.
    TooLarge {
        /// Announced payload length.
        len: usize,
        /// Cap it violated.
        max: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Timeout => write!(f, "frame read timed out"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated { expected, got } => {
                write!(f, "connection ended mid-frame ({got}/{expected} bytes)")
            }
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds cap of {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame: 4-byte big-endian payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge { len: payload.len(), max: MAX_FRAME_BYTES });
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Write one frame whose payload is the concatenation of `parts`, without
/// staging them into one buffer first.
///
/// This is the rendezvous-path send of the socket transport: the fixed
/// message header and the (possibly large) payload stream straight from
/// their source slices.
pub fn write_frame_parts(w: &mut impl Write, parts: &[&[u8]]) -> Result<(), FrameError> {
    let len: usize = parts.iter().map(|p| p.len()).sum();
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge { len, max: MAX_FRAME_BYTES });
    }
    w.write_all(&(len as u32).to_be_bytes())?;
    for p in parts {
        w.write_all(p)?;
    }
    w.flush()?;
    Ok(())
}

/// Read one frame's payload, enforcing `max` against the length prefix
/// *before* allocating.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 4];
    read_exactly(r, &mut header, true)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > max {
        return Err(FrameError::TooLarge { len, max });
    }
    let mut payload = vec![0u8; len];
    read_exactly(r, &mut payload, false).map_err(|e| match e {
        // EOF between header and payload is still a truncated frame
        FrameError::Closed => FrameError::Truncated { expected: len, got: 0 },
        other => other,
    })?;
    Ok(payload)
}

/// Fill `buf` completely. With `at_boundary`, a clean EOF or timeout at
/// byte 0 is reported as `Closed`/`Timeout`; once any byte has arrived the
/// frame is committed and only `Truncated`/`Io` can result.
fn read_exactly(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), FrameError> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if got == 0 && at_boundary {
                    FrameError::Closed
                } else {
                    FrameError::Truncated { expected: buf.len(), got }
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if got == 0 && at_boundary {
                    return Err(FrameError::Timeout);
                }
                continue;
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap(), b"");
        assert!(matches!(read_frame(&mut r, MAX_FRAME_BYTES), Err(FrameError::Closed)));
    }

    #[test]
    fn parts_concatenate_into_one_frame() {
        let mut staged = Vec::new();
        write_frame(&mut staged, b"headerpayload").unwrap();
        let mut parted = Vec::new();
        write_frame_parts(&mut parted, &[b"header", b"payload"]).unwrap();
        assert_eq!(staged, parted);
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r, 1024),
            Err(FrameError::TooLarge { len, max: 1024 }) if len == u32::MAX as usize
        ));
    }

    #[test]
    fn truncation_is_typed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let cut = &buf[..buf.len() - 2];
        let mut r = cut;
        assert!(matches!(
            read_frame(&mut r, MAX_FRAME_BYTES),
            Err(FrameError::Truncated { expected: 5, got: 3 })
        ));
    }
}
