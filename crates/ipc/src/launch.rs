//! The rank process launcher: spawn N worker processes, supervise them,
//! collect their RunReports, and reap everything on failure.
//!
//! The launcher creates a rendezvous directory, binds a `launch.sock`
//! result listener in it, and spawns one child per rank running
//! `<exe> worker-rank --dir <dir> --rank <i> --ranks <N> ...`. Workers
//! bootstrap their [`SocketTransport`](crate::socket::SocketTransport) mesh
//! inside the same directory, run the solve, and send one final
//! [`WorkerFrame`] back over `launch.sock` — a `Report` with their
//! serialized RunReport, or a `Failure` with an in-band error.
//!
//! Supervision is a poll loop over two signals: result-socket accepts and
//! child `try_wait`. A child that exits nonzero (or dies without reporting)
//! makes the launcher kill and reap every remaining child and return
//! [`ClaireError::RankFailed`] — a dead rank never turns into a hang.

use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use claire_grid::{ClaireError, ClaireResult};

use crate::frame::{self, MAX_FRAME_BYTES};
use crate::socket::fresh_rendezvous_dir;
use crate::wire::{self, WorkerFrame};

/// Environment variables the launcher explicitly forwards to workers so a
/// rank behaves exactly like the parent would have (thread pool size, SIMD
/// backend selection).
pub const FORWARDED_ENV: &[&str] = &["CLAIRE_THREADS", "CLAIRE_SIMD"];

/// Name of the launcher's result socket inside the rendezvous directory.
pub const LAUNCH_SOCKET: &str = "launch.sock";

/// Poll cadence of the supervision loop.
const POLL: Duration = Duration::from_millis(10);

/// Grace period for result frames still in the listener backlog after every
/// child has already exited cleanly.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// What to launch and how to supervise it.
pub struct LaunchSpec {
    /// Executable to spawn (normally `std::env::current_exe()`).
    pub exe: PathBuf,
    /// Number of rank processes.
    pub ranks: usize,
    /// GPUs per node in the modeled topology.
    pub gpus_per_node: usize,
    /// Extra arguments appended after the standard
    /// `worker-rank --dir … --rank … --ranks … --gpus-per-node …` prefix
    /// (solver flags, problem size, …).
    pub worker_args: Vec<String>,
    /// Wall-clock budget for the whole run before the launcher gives up and
    /// reaps the cluster.
    pub timeout: Duration,
}

impl LaunchSpec {
    /// A spec with the default five-minute supervision timeout.
    pub fn new(exe: PathBuf, ranks: usize, gpus_per_node: usize, worker_args: Vec<String>) -> Self {
        LaunchSpec { exe, ranks, gpus_per_node, worker_args, timeout: Duration::from_secs(300) }
    }
}

/// A successful launch: every rank's RunReport JSON, indexed by rank.
#[derive(Debug)]
pub struct LaunchOutcome {
    /// Rank `i`'s serialized RunReport at index `i`.
    pub reports: Vec<String>,
}

/// Kills and reaps all still-running children when dropped, so every error
/// return (and panic) leaves no orphan rank processes behind.
struct Reaper {
    children: Vec<Option<Child>>,
}

impl Reaper {
    fn kill_all(&mut self) {
        for slot in &mut self.children {
            if let Some(child) = slot {
                let _ = child.kill();
                let _ = child.wait();
                *slot = None;
            }
        }
    }
}

impl Drop for Reaper {
    fn drop(&mut self) {
        self.kill_all();
    }
}

/// Spawn and supervise a rank cluster; block until every rank has reported.
///
/// Fails typed (`ClaireError::RankFailed`) if any child exits nonzero, dies
/// without reporting, sends an in-band failure frame, or the whole run
/// exceeds `spec.timeout`; all remaining children are killed and reaped
/// before the error returns.
pub fn launch(spec: &LaunchSpec) -> ClaireResult<LaunchOutcome> {
    if spec.ranks == 0 {
        return Err(ClaireError::Config { param: "ranks", message: "must be >= 1 (got 0)".into() });
    }
    let dir = fresh_rendezvous_dir("launch").map_err(|e| io_err("create rendezvous dir", e))?;
    let result = supervise(spec, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

fn io_err(context: &'static str, e: impl std::fmt::Display) -> ClaireError {
    ClaireError::Io { context, message: e.to_string() }
}

fn supervise(spec: &LaunchSpec, dir: &Path) -> ClaireResult<LaunchOutcome> {
    let listener =
        UnixListener::bind(dir.join(LAUNCH_SOCKET)).map_err(|e| io_err("bind launch socket", e))?;
    listener.set_nonblocking(true).map_err(|e| io_err("launch socket nonblocking", e))?;

    let mut reaper = Reaper { children: Vec::with_capacity(spec.ranks) };
    for rank in 0..spec.ranks {
        let mut cmd = Command::new(&spec.exe);
        cmd.arg("worker-rank")
            .arg("--dir")
            .arg(dir)
            .arg("--rank")
            .arg(rank.to_string())
            .arg("--ranks")
            .arg(spec.ranks.to_string())
            .arg("--gpus-per-node")
            .arg(spec.gpus_per_node.to_string())
            .args(&spec.worker_args)
            .stdin(Stdio::null());
        for key in FORWARDED_ENV {
            if let Ok(val) = std::env::var(key) {
                cmd.env(key, val);
            }
        }
        match cmd.spawn() {
            Ok(child) => reaper.children.push(Some(child)),
            Err(e) => {
                reaper.kill_all();
                return Err(io_err("spawn worker rank", e));
            }
        }
    }

    let deadline = Instant::now() + spec.timeout;
    let mut reports: Vec<Option<String>> = (0..spec.ranks).map(|_| None).collect();
    let mut all_exited_at: Option<Instant> = None;

    loop {
        // drain result frames queued on the launch socket
        loop {
            match listener.accept() {
                Ok((stream, _)) => match read_worker_frame(&stream) {
                    Ok(WorkerFrame::Report { rank, json }) if rank < spec.ranks => {
                        reports[rank] = Some(json);
                    }
                    Ok(WorkerFrame::Failure { rank, message }) => {
                        reaper.kill_all();
                        return Err(ClaireError::RankFailed { rank, message });
                    }
                    Ok(WorkerFrame::Report { rank, .. }) => {
                        reaper.kill_all();
                        return Err(ClaireError::RankFailed {
                            rank: rank.min(spec.ranks),
                            message: format!("report from out-of-range rank {rank}"),
                        });
                    }
                    // a malformed result frame is not fatal on its own: the
                    // sender's exit status will surface the real failure
                    Err(_) => {}
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => {
                    reaper.kill_all();
                    return Err(io_err("accept on launch socket", e));
                }
            }
        }

        if reports.iter().all(|r| r.is_some()) {
            // every rank reported; reap children (they are exiting now)
            for slot in &mut reaper.children {
                if let Some(mut child) = slot.take() {
                    let reaped = wait_with_deadline(&mut child, Instant::now() + DRAIN_GRACE);
                    if !reaped {
                        let _ = child.kill();
                        let _ = child.wait();
                    }
                }
            }
            let reports = reports.into_iter().map(|r| r.expect("checked above")).collect();
            return Ok(LaunchOutcome { reports });
        }

        // a child that died before reporting is a failed rank
        for (rank, slot) in reaper.children.iter_mut().enumerate() {
            let Some(child) = slot else { continue };
            match child.try_wait() {
                Ok(Some(status)) => {
                    let _ = slot.take();
                    if !status.success() {
                        reaper.kill_all();
                        return Err(ClaireError::RankFailed {
                            rank,
                            message: format!("worker process exited with {status}"),
                        });
                    }
                    // exited 0 without a report yet: the frame may still be
                    // in the listener backlog — the drain loop gets a grace
                    // period (below) before this counts as a failure
                }
                Ok(None) => {}
                Err(e) => {
                    reaper.kill_all();
                    return Err(io_err("wait on worker rank", e));
                }
            }
        }

        if reaper.children.iter().all(|c| c.is_none()) {
            let exited = *all_exited_at.get_or_insert_with(Instant::now);
            if exited.elapsed() > DRAIN_GRACE {
                let rank = reports.iter().position(|r| r.is_none()).unwrap_or(0);
                return Err(ClaireError::RankFailed {
                    rank,
                    message: "worker process exited without sending a report".into(),
                });
            }
        }

        if Instant::now() >= deadline {
            let rank = reports.iter().position(|r| r.is_none()).unwrap_or(0);
            reaper.kill_all();
            return Err(ClaireError::RankFailed {
                rank,
                message: format!(
                    "launch timed out after {:?} waiting for rank {rank}",
                    spec.timeout
                ),
            });
        }
        std::thread::sleep(POLL);
    }
}

fn read_worker_frame(stream: &UnixStream) -> Result<WorkerFrame, String> {
    stream.set_nonblocking(false).map_err(|e| e.to_string())?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).map_err(|e| e.to_string())?;
    let mut r = stream;
    let payload = frame::read_frame(&mut r, MAX_FRAME_BYTES).map_err(|e| e.to_string())?;
    wire::decode_worker_frame(&payload).map_err(|e| e.to_string())
}

fn wait_with_deadline(child: &mut Child, deadline: Instant) -> bool {
    loop {
        match child.try_wait() {
            Ok(Some(_)) => return true,
            Ok(None) => {
                if Instant::now() >= deadline {
                    return false;
                }
                std::thread::sleep(POLL);
            }
            Err(_) => return false,
        }
    }
}

// ---------------------------------------------------------------------------
// worker-side helpers
// ---------------------------------------------------------------------------

fn send_worker_frame(dir: &Path, f: &WorkerFrame) -> ClaireResult<()> {
    let mut stream = UnixStream::connect(dir.join(LAUNCH_SOCKET))
        .map_err(|e| io_err("connect to launch socket", e))?;
    frame::write_frame(&mut stream, &wire::encode_worker_frame(f))
        .map_err(|e| io_err("send worker frame", e))?;
    stream.flush().map_err(|e| io_err("flush worker frame", e))?;
    Ok(())
}

/// Send this rank's RunReport back to the launcher (the worker's last act).
pub fn send_report(dir: &Path, rank: usize, json: String) -> ClaireResult<()> {
    send_worker_frame(dir, &WorkerFrame::Report { rank, json })
}

/// Report an in-band failure (solver error) to the launcher before exiting.
pub fn send_failure(dir: &Path, rank: usize, message: String) -> ClaireResult<()> {
    send_worker_frame(dir, &WorkerFrame::Failure { rank, message })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::fs::PermissionsExt;

    // launch() against the real claire-cli binary is covered by
    // tests/ipc_equivalence.rs at the workspace root; here we exercise the
    // supervision loop with shell-script stand-ins for worker processes.

    /// Write `script` as an executable stand-in worker. The script runs with
    /// the launcher's standard args (`worker-rank --dir D --rank R …`), so
    /// `$3` is the rendezvous dir and `$5` the rank.
    fn script_worker(name: &str, script: &str) -> PathBuf {
        let dir = fresh_rendezvous_dir(&format!("launchtest-{name}")).unwrap();
        let path = dir.join("worker.sh");
        std::fs::write(&path, format!("#!/bin/sh\n{script}\n")).unwrap();
        std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o755)).unwrap();
        path
    }

    #[test]
    fn zero_ranks_is_config_error() {
        let spec = LaunchSpec::new(PathBuf::from("/bin/true"), 0, 1, vec![]);
        let err = launch(&spec).unwrap_err();
        assert!(matches!(err, ClaireError::Config { param: "ranks", .. }));
    }

    #[test]
    fn child_that_dies_without_reporting_is_rank_failed() {
        let exe = script_worker("dies", "exit 7");
        let spec = LaunchSpec::new(exe, 2, 1, vec![]);
        let t0 = Instant::now();
        let err = launch(&spec).unwrap_err();
        match err {
            ClaireError::RankFailed { message, .. } => {
                assert!(message.contains("exited with"), "{message}");
            }
            other => panic!("expected RankFailed, got {other}"),
        }
        assert!(t0.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn timeout_reaps_hung_children() {
        let exe = script_worker("hangs", "sleep 600");
        let spec = LaunchSpec {
            exe,
            ranks: 1,
            gpus_per_node: 1,
            worker_args: vec![],
            timeout: Duration::from_millis(300),
        };
        let t0 = Instant::now();
        let err = launch(&spec).unwrap_err();
        match err {
            ClaireError::RankFailed { message, .. } => {
                assert!(message.contains("timed out"), "{message}");
            }
            other => panic!("expected RankFailed, got {other}"),
        }
        assert!(t0.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn reports_are_collected_in_rank_order() {
        // workers idle while this thread injects the Report frames through
        // the real worker-side helpers, out of rank order
        let exe = script_worker("reporter", "sleep 2");
        let spec = LaunchSpec::new(exe, 2, 1, vec![]);
        let dir = fresh_rendezvous_dir("launch-report-test").unwrap();
        let d = dir.clone();
        let handle = std::thread::spawn(move || supervise(&spec, &d));
        while !dir.join(LAUNCH_SOCKET).exists() {
            std::thread::sleep(Duration::from_millis(5));
        }
        send_report(&dir, 1, "{\"rank\":1}".into()).unwrap();
        send_report(&dir, 0, "{\"rank\":0}".into()).unwrap();
        let outcome = handle.join().unwrap().unwrap();
        assert_eq!(outcome.reports, vec!["{\"rank\":0}".to_string(), "{\"rank\":1}".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_band_failure_frame_kills_the_cluster() {
        let exe = script_worker("inband", "sleep 600");
        let spec = LaunchSpec::new(exe, 2, 1, vec![]);
        let dir = fresh_rendezvous_dir("launch-failure-test").unwrap();
        let d = dir.clone();
        let t0 = Instant::now();
        let handle = std::thread::spawn(move || supervise(&spec, &d));
        while !dir.join(LAUNCH_SOCKET).exists() {
            std::thread::sleep(Duration::from_millis(5));
        }
        send_failure(&dir, 1, "beta continuation diverged".into()).unwrap();
        let err = handle.join().unwrap().unwrap_err();
        assert_eq!(
            err,
            ClaireError::RankFailed { rank: 1, message: "beta continuation diverged".into() }
        );
        // the sleeping peer was killed, not waited out
        assert!(t0.elapsed() < Duration::from_secs(30));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
