//! # claire-ipc — true multi-process distributed execution
//!
//! CLAIRE-rs models a multi-node multi-GPU cluster as threads of one
//! process by default: `claire-mpi`'s channel transport moves messages
//! through in-memory queues at zero serialization cost. This crate supplies
//! the second [`Transport`](claire_mpi::Transport) implementation — real
//! rank *processes* exchanging length-framed binary messages over
//! Unix-domain sockets — plus the launcher that spawns and supervises them.
//!
//! The layering mirrors how CLAIRE's MPI build sits on an interconnect:
//!
//! * [`frame`] — the 4-byte-BE length-framed codec, shared with
//!   `claire-serve`'s wire protocol (one framing discipline per workspace);
//! * [`wire`] — binary codecs for rank data messages, the
//!   `Hello`/`Welcome` bootstrap handshake, and worker→launcher result
//!   frames;
//! * [`socket`] — [`SocketTransport`](socket::SocketTransport): full-mesh
//!   Unix-domain-socket transport with a rank-0 rendezvous, eager and
//!   rendezvous send paths, and real bytes-on-wire accounting feeding
//!   `CommStats`;
//! * [`launch`] — the process launcher behind `claire-cli launch`: spawn N
//!   worker ranks, forward `CLAIRE_THREADS`/`CLAIRE_SIMD`, collect per-rank
//!   RunReports, and reap the cluster with a typed
//!   `ClaireError::RankFailed` when a rank dies (never a hang).
//!
//! Because every collective in `claire-mpi` is built from point-to-point
//! sends in deterministic rank order, swapping the transport changes the
//! bytes' route but not their values: a multi-process solve reproduces the
//! threads-as-ranks solve bit for bit. `tests/ipc_equivalence.rs` at the
//! workspace root holds that property down.

pub mod frame;
pub mod launch;
pub mod socket;
pub mod wire;

pub use frame::{FrameError, MAX_FRAME_BYTES};
pub use launch::{launch, LaunchOutcome, LaunchSpec};
pub use socket::{
    run_socket_cluster, try_run_socket_cluster, SocketOpts, SocketTransport,
    DEFAULT_EAGER_THRESHOLD,
};
pub use wire::{Hello, WorkerFrame, IPC_VERSION};
