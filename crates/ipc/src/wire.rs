//! Binary codecs for the socket transport's frames.
//!
//! Every frame travels through [`crate::frame`]'s 4-byte-BE length framing.
//! The first payload byte is a kind discriminator:
//!
//! | kind | frame                | direction                        |
//! |------|----------------------|----------------------------------|
//! | 1    | rank data message    | rank ↔ rank                      |
//! | 2    | `Hello` handshake    | connecting rank → accepting rank |
//! | 3    | `Welcome` release    | rank 0 → every other rank        |
//! | 4    | per-rank RunReport   | worker process → launcher        |
//! | 5    | per-rank failure     | worker process → launcher        |
//!
//! The data-message header is fixed 24 bytes (kind, flags, category,
//! reserved, `src: u32`, `tag: u64`, sender clock as `f64` bits) followed by
//! the raw payload; integers are big-endian like the frame length.

use bytes::Bytes;
use claire_mpi::{CommCat, Message, Topology};

/// Protocol magic for the bootstrap handshake ("CLIP" — CLaire IPc).
pub const IPC_MAGIC: u32 = 0x434c_4950;
/// Version of the rank-to-rank protocol; bumped on any layout change.
pub const IPC_VERSION: u32 = 1;

/// Size of the encoded data-message header (after the frame length).
pub const MSG_HEADER_BYTES: usize = 24;

const KIND_MSG: u8 = 1;
const KIND_HELLO: u8 = 2;
const KIND_WELCOME: u8 = 3;
const KIND_REPORT: u8 = 4;
const KIND_FAILURE: u8 = 5;

const FLAG_LINK_FREE: u8 = 1;

/// A decode failure: the peer sent bytes that are not a valid frame of the
/// expected kind (version skew or corruption).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ipc decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn u32_at(buf: &[u8], off: usize) -> u32 {
    u32::from_be_bytes(buf[off..off + 4].try_into().unwrap())
}

fn u64_at(buf: &[u8], off: usize) -> u64 {
    u64::from_be_bytes(buf[off..off + 8].try_into().unwrap())
}

/// Encode a data message's fixed header. The payload follows it verbatim in
/// the same frame (see [`crate::frame::write_frame_parts`]).
pub fn encode_msg_header(msg: &Message) -> [u8; MSG_HEADER_BYTES] {
    let mut h = [0u8; MSG_HEADER_BYTES];
    h[0] = KIND_MSG;
    h[1] = if msg.link_free { FLAG_LINK_FREE } else { 0 };
    h[2] = msg.cat.index() as u8;
    // h[3] reserved
    h[4..8].copy_from_slice(&(msg.src as u32).to_be_bytes());
    h[8..16].copy_from_slice(&msg.tag.to_be_bytes());
    h[16..24].copy_from_slice(&msg.sent_clock.to_bits().to_be_bytes());
    h
}

/// Decode one data-message frame (header + payload) back into a [`Message`].
pub fn decode_msg(frame: &[u8]) -> Result<Message, DecodeError> {
    if frame.len() < MSG_HEADER_BYTES {
        return Err(DecodeError(format!("message frame too short: {} bytes", frame.len())));
    }
    if frame[0] != KIND_MSG {
        return Err(DecodeError(format!("expected data message, got kind {}", frame[0])));
    }
    let cat = CommCat::from_index(frame[2] as usize)
        .ok_or_else(|| DecodeError(format!("unknown traffic category {}", frame[2])))?;
    Ok(Message {
        src: u32_at(frame, 4) as usize,
        tag: u64_at(frame, 8),
        cat,
        sent_clock: f64::from_bits(u64_at(frame, 16)),
        link_free: frame[1] & FLAG_LINK_FREE != 0,
        payload: Bytes::copy_from_slice(&frame[MSG_HEADER_BYTES..]),
    })
}

/// The handshake a connecting rank opens every peer stream with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The connecting rank's id.
    pub rank: usize,
    /// Cluster shape the rank was launched with; every rank must agree.
    pub topo: Topology,
}

/// Encode a [`Hello`] frame payload.
pub fn encode_hello(h: &Hello) -> Vec<u8> {
    let mut buf = Vec::with_capacity(24);
    buf.push(KIND_HELLO);
    buf.extend_from_slice(&[0, 0, 0]); // pad to word boundary
    buf.extend_from_slice(&IPC_MAGIC.to_be_bytes());
    buf.extend_from_slice(&IPC_VERSION.to_be_bytes());
    buf.extend_from_slice(&(h.rank as u32).to_be_bytes());
    buf.extend_from_slice(&(h.topo.nranks as u32).to_be_bytes());
    buf.extend_from_slice(&(h.topo.gpus_per_node as u32).to_be_bytes());
    buf
}

/// Decode and validate a [`Hello`] frame payload.
pub fn decode_hello(frame: &[u8]) -> Result<Hello, DecodeError> {
    if frame.len() != 24 || frame[0] != KIND_HELLO {
        return Err(DecodeError("malformed hello frame".into()));
    }
    if u32_at(frame, 4) != IPC_MAGIC {
        return Err(DecodeError("bad magic: peer is not a claire rank".into()));
    }
    let version = u32_at(frame, 8);
    if version != IPC_VERSION {
        return Err(DecodeError(format!(
            "ipc protocol version mismatch: peer speaks v{version}, this rank v{IPC_VERSION}"
        )));
    }
    let nranks = u32_at(frame, 16) as usize;
    let gpus = u32_at(frame, 20) as usize;
    if nranks == 0 || gpus == 0 {
        return Err(DecodeError("hello carries an empty topology".into()));
    }
    Ok(Hello { rank: u32_at(frame, 12) as usize, topo: Topology::new(nranks, gpus) })
}

/// Encode rank 0's release message: the rendezvous is complete and every
/// rank agreed on the topology.
pub fn encode_welcome(topo: &Topology) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16);
    buf.push(KIND_WELCOME);
    buf.extend_from_slice(&[0, 0, 0]);
    buf.extend_from_slice(&IPC_VERSION.to_be_bytes());
    buf.extend_from_slice(&(topo.nranks as u32).to_be_bytes());
    buf.extend_from_slice(&(topo.gpus_per_node as u32).to_be_bytes());
    buf
}

/// Decode a welcome frame, returning the agreed topology.
pub fn decode_welcome(frame: &[u8]) -> Result<Topology, DecodeError> {
    if frame.len() != 16 || frame[0] != KIND_WELCOME {
        return Err(DecodeError("malformed welcome frame".into()));
    }
    if u32_at(frame, 4) != IPC_VERSION {
        return Err(DecodeError("welcome version mismatch".into()));
    }
    Ok(Topology::new(u32_at(frame, 8) as usize, u32_at(frame, 12) as usize))
}

/// What one worker process sends the launcher when it finishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerFrame {
    /// The rank completed; payload is its serialized RunReport.
    Report {
        /// Reporting rank.
        rank: usize,
        /// RunReport JSON.
        json: String,
    },
    /// The rank failed in-band (solver error rather than process death).
    Failure {
        /// Failing rank.
        rank: usize,
        /// Failure description.
        message: String,
    },
}

/// Encode a worker's final frame to the launcher.
pub fn encode_worker_frame(f: &WorkerFrame) -> Vec<u8> {
    let (kind, rank, body) = match f {
        WorkerFrame::Report { rank, json } => (KIND_REPORT, *rank, json.as_bytes()),
        WorkerFrame::Failure { rank, message } => (KIND_FAILURE, *rank, message.as_bytes()),
    };
    let mut buf = Vec::with_capacity(8 + body.len());
    buf.push(kind);
    buf.extend_from_slice(&[0, 0, 0]);
    buf.extend_from_slice(&(rank as u32).to_be_bytes());
    buf.extend_from_slice(body);
    buf
}

/// Decode a worker's final frame.
pub fn decode_worker_frame(frame: &[u8]) -> Result<WorkerFrame, DecodeError> {
    if frame.len() < 8 {
        return Err(DecodeError("worker frame too short".into()));
    }
    let rank = u32_at(frame, 4) as usize;
    let body = String::from_utf8(frame[8..].to_vec())
        .map_err(|_| DecodeError("worker frame body is not UTF-8".into()))?;
    match frame[0] {
        KIND_REPORT => Ok(WorkerFrame::Report { rank, json: body }),
        KIND_FAILURE => Ok(WorkerFrame::Failure { rank, message: body }),
        k => Err(DecodeError(format!("unexpected worker frame kind {k}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_header_round_trip() {
        let msg = Message {
            src: 3,
            tag: u64::MAX - 6,
            cat: CommCat::FftTranspose,
            sent_clock: 1.25e-3,
            link_free: true,
            payload: Bytes::copy_from_slice(&[9, 8, 7]),
        };
        let mut frame = encode_msg_header(&msg).to_vec();
        frame.extend_from_slice(&msg.payload);
        let back = decode_msg(&frame).unwrap();
        assert_eq!(back.src, 3);
        assert_eq!(back.tag, u64::MAX - 6);
        assert_eq!(back.cat, CommCat::FftTranspose);
        assert_eq!(back.sent_clock.to_bits(), msg.sent_clock.to_bits());
        assert!(back.link_free);
        assert_eq!(&back.payload[..], &[9, 8, 7]);
    }

    #[test]
    fn hello_welcome_round_trip() {
        let h = Hello { rank: 2, topo: Topology::new(4, 2) };
        assert_eq!(decode_hello(&encode_hello(&h)).unwrap(), h);
        let t = Topology::new(3, 4);
        assert_eq!(decode_welcome(&encode_welcome(&t)).unwrap(), t);
    }

    #[test]
    fn version_skew_is_typed() {
        let mut frame = encode_hello(&Hello { rank: 0, topo: Topology::solo() });
        frame[11] ^= 0xff; // corrupt the version word
        let err = decode_hello(&frame).unwrap_err();
        assert!(err.0.contains("version mismatch"), "{err}");
    }

    #[test]
    fn worker_frames_round_trip() {
        let r = WorkerFrame::Report { rank: 1, json: "{\"label\":\"x\"}".into() };
        assert_eq!(decode_worker_frame(&encode_worker_frame(&r)).unwrap(), r);
        let f = WorkerFrame::Failure { rank: 2, message: "solver blew up".into() };
        assert_eq!(decode_worker_frame(&encode_worker_frame(&f)).unwrap(), f);
    }
}
