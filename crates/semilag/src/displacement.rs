//! Deformation map `y(x)` and diffeomorphism diagnostics.
//!
//! The registration's deformation map is the composition of the per-step
//! characteristic maps: `y = φ∘…∘φ` (`Nt` times) with
//! `φ(x) = foot_back(x)`. We integrate the *displacement* `u = y − x`
//! (periodic, unlike `y` itself) and evaluate `det(∇y) = det(I + ∇u)` to
//! verify the computed map is a diffeomorphism — the paper's Fig. 1 notes
//! the map smoothness is "confirmed numerically".

// Component-wise update indexes u and the foot array in lockstep.
#![allow(clippy::needless_range_loop)]

use claire_grid::{Real, ScalarField, VectorField};
use claire_interp::Interpolator;
use claire_mpi::Comm;

use crate::traj::{grid_points, Trajectory};

/// Integrate the displacement field `u = y − x` of the full-interval
/// backward flow. Collective.
pub fn displacement(
    traj: &Trajectory,
    nt: usize,
    interp: &mut Interpolator,
    comm: &mut Comm,
) -> VectorField {
    let layout = *traj.div_v.layout();
    let pts = grid_points(&layout);
    let n = pts.len();
    // step displacement d(x) = φ(x) − x (small, CFL-bounded, no wrap issues)
    let step: Vec<[Real; 3]> = traj
        .foot_back
        .iter()
        .zip(&pts)
        .map(|(f, p)| [f[0] - p[0], f[1] - p[1], f[2] - p[2]])
        .collect();

    let mut u = VectorField::zeros(layout);
    for _ in 0..nt {
        // u_{j+1}(x) = (φ(x) − x) + u_j(φ(x))
        let u_at_foot = interp.interp_vector(&u, &traj.foot_back, comm);
        for d in 0..3 {
            let data = u.c[d].data_mut();
            for i in 0..n {
                data[i] = step[i][d] + u_at_foot[i][d];
            }
        }
    }
    u
}

/// Pointwise `det(I + ∇u)` via 8th-order FD gradients. Collective.
///
/// Values near 1 mean a mild deformation; any non-positive value means the
/// map is not a diffeomorphism at that point.
pub fn jacobian_det(u: &VectorField, comm: &mut Comm) -> ScalarField {
    let layout = *u.layout();
    let g: Vec<VectorField> = (0..3).map(|d| claire_diff::fd::gradient(&u.c[d], comm)).collect();
    let mut det = ScalarField::zeros(layout);
    let n = layout.local_len();
    let out = det.data_mut();
    for i in 0..n {
        // J = I + ∇u, rows are gradients of the components
        let a = [
            [1.0 + g[0].c[0].data()[i], g[0].c[1].data()[i], g[0].c[2].data()[i]],
            [g[1].c[0].data()[i], 1.0 + g[1].c[1].data()[i], g[1].c[2].data()[i]],
            [g[2].c[0].data()[i], g[2].c[1].data()[i], 1.0 + g[2].c[2].data()[i]],
        ];
        out[i] = a[0][0] * (a[1][1] * a[2][2] - a[1][2] * a[2][1])
            - a[0][1] * (a[1][0] * a[2][2] - a[1][2] * a[2][0])
            + a[0][2] * (a[1][0] * a[2][1] - a[1][1] * a[2][0]);
    }
    det
}

/// Global (min, max) of the Jacobian determinant. Collective.
#[allow(clippy::unnecessary_cast)] // load-bearing under `--features single`
pub fn det_bounds(det: &ScalarField, comm: &mut Comm) -> (f64, f64) {
    let local_min = det.data().iter().fold(f64::MAX, |m, &x| m.min(x as f64));
    let local_max = det.data().iter().fold(f64::MIN, |m, &x| m.max(x as f64));
    let max = comm.allreduce_max_scalar(local_max);
    let min = -comm.allreduce_max_scalar(-local_min);
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traj::Trajectory;
    use claire_grid::{Grid, Layout};
    use claire_interp::IpOrder;

    #[test]
    fn zero_velocity_zero_displacement() {
        let layout = Layout::serial(Grid::cube(8));
        let mut comm = Comm::solo();
        let mut ip = Interpolator::new(IpOrder::Cubic);
        let v = VectorField::zeros(layout);
        let traj = Trajectory::compute(&v, 4, &mut ip, &mut comm);
        let u = displacement(&traj, 4, &mut ip, &mut comm);
        assert!(u.max_abs(&mut comm) < 1e-12);
        let det = jacobian_det(&u, &mut comm);
        let (lo, hi) = det_bounds(&det, &mut comm);
        assert!((lo - 1.0).abs() < 1e-10 && (hi - 1.0).abs() < 1e-10);
    }

    #[test]
    fn constant_translation_displacement() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let mut ip = Interpolator::new(IpOrder::Cubic);
        let c = 0.4 as Real;
        let v = VectorField::from_fns(layout, move |_, _, _| c, |_, _, _| 0.0, |_, _, _| 0.0);
        let traj = Trajectory::compute(&v, 8, &mut ip, &mut comm);
        let u = displacement(&traj, 8, &mut ip, &mut comm);
        // y = x − c  ⇒  u1 = −c everywhere
        let err = u.c[0].data().iter().map(|&x| (x + c).abs()).fold(0.0, f64::max);
        assert!(err < 1e-6, "u1 should be −c: err {err}");
        assert!(u.c[1].max_abs(&mut comm) < 1e-9);
        let det = jacobian_det(&u, &mut comm);
        let (lo, hi) = det_bounds(&det, &mut comm);
        assert!(
            (lo - 1.0).abs() < 1e-6 && (hi - 1.0).abs() < 1e-6,
            "translation is volume preserving"
        );
    }

    #[test]
    fn smooth_velocity_is_diffeomorphic() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let mut ip = Interpolator::new(IpOrder::Cubic);
        let v = VectorField::from_fns(
            layout,
            |_, y, _| 0.3 * y.sin(),
            |x, _, _| 0.3 * x.cos(),
            |_, _, z| 0.2 * z.sin(),
        );
        let traj = Trajectory::compute(&v, 8, &mut ip, &mut comm);
        let u = displacement(&traj, 8, &mut ip, &mut comm);
        let det = jacobian_det(&u, &mut comm);
        let (lo, hi) = det_bounds(&det, &mut comm);
        assert!(lo > 0.3, "Jacobian determinant must stay positive: {lo}");
        assert!(hi < 3.0, "and bounded: {hi}");
    }
}
