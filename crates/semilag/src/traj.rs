//! Backward characteristics via 2nd-order Runge–Kutta (paper §2).
//!
//! For each grid point `x` the scheme solves `∂t y(t) = v(y(t))` backwards
//! over one time step `δt` with final condition `y(t+δt) = x` (Heun):
//!
//! ```text
//! x*   = x − δt·v(x)
//! foot = x − δt/2·(v(x) + v(x*))
//! ```
//!
//! The adjoint (continuity) equation runs in reverse time, which flips the
//! transport direction: its characteristics use `−v`. Since `v` is
//! stationary both foot-point sets are computed once per velocity and
//! reused for all `Nt` steps, together with `∇·v` and its values at the
//! adjoint foot points (needed by the source term of the continuity
//! update).

// rk2_feet threads the three velocity component slices explicitly to
// avoid re-borrowing the vector field inside the hot loop.
#![allow(clippy::too_many_arguments)]

use claire_grid::workspace::{PoolVec, WsCat, R3_POOL, REAL_POOL};
use claire_grid::{Real, ScalarField, VectorField};
use claire_interp::Interpolator;
use claire_mpi::Comm;
use claire_obs::span::span;
use claire_par::timing::{self, Kernel};
use claire_par::{par_parts, SharedSlice};

/// Pre-computed characteristic data for one stationary velocity field.
///
/// All point/value buffers come from the µSL workspace pool, so recomputing
/// a `Trajectory` every Gauss–Newton iteration is allocation-free at steady
/// state.
pub struct Trajectory {
    /// Time-step size `δt = 1/Nt`.
    pub dt: Real,
    /// Foot points of the backward characteristics of `+v` (one per owned
    /// grid point) — used by the state and incremental state equations.
    pub foot_back: PoolVec<[Real; 3]>,
    /// Foot points for the characteristics of `−v` — used by the adjoint
    /// and incremental adjoint (continuity) equations in reverse time.
    pub foot_fwd: PoolVec<[Real; 3]>,
    /// `½·δt·(∇·v)` on the grid (8th-order FD). The trapezoidal source
    /// factor of the continuity update is `exp(½·δt·(∇·v|_foot + ∇·v|_x))`;
    /// folding the constant `½·δt` into the stencil sweep here
    /// ([`claire_diff::fd::divergence_scaled`]) costs nothing and saves the
    /// consumer a multiply per point per time step.
    pub div_v: ScalarField,
    /// `½·δt·(∇·v)` interpolated at [`Trajectory::foot_fwd`].
    pub div_v_at_fwd: PoolVec<Real>,
    /// Estimated maximum displacement in grid cells (the CFL number used to
    /// size scatter buffers, paper §3.1).
    pub cfl: f64,
}

/// Physical coordinates of all locally owned grid points.
pub fn grid_points(layout: &claire_grid::Layout) -> Vec<[Real; 3]> {
    let mut out = vec![[0.0 as Real; 3]; layout.local_len()];
    grid_points_into(layout, &mut out);
    out
}

/// Fill `out` with the physical coordinates of all locally owned grid
/// points (`out.len() == layout.local_len()`).
pub fn grid_points_into(layout: &claire_grid::Layout, out: &mut [[Real; 3]]) {
    let g = layout.grid;
    let h = g.spacing();
    let [_, n2, n3] = layout.local_dims();
    let i0 = layout.slab.i0;
    assert_eq!(out.len(), layout.local_len());
    let n = out.len();
    let shared = SharedSlice::new(out);
    par_parts(n, n, |range| {
        // SAFETY: worker ranges are disjoint.
        let dst = unsafe { shared.slice_mut(range.clone()) };
        for (o, idx) in dst.iter_mut().zip(range) {
            let k = idx % n3;
            let j = (idx / n3) % n2;
            let il = idx / (n2 * n3);
            *o = [(i0 + il) as Real * h[0], j as Real * h[1], k as Real * h[2]];
        }
    });
}

impl Trajectory {
    /// Compute both characteristic families for `v` with `nt` time steps.
    ///
    /// Collective. `interp` is used (and its phase stats accumulate) for
    /// the RK2 midpoint evaluations and the `∇·v` foot values.
    pub fn compute(
        v: &VectorField,
        nt: usize,
        interp: &mut Interpolator,
        comm: &mut Comm,
    ) -> Trajectory {
        let _s = span("semilag.trajectory");
        assert!(nt >= 1, "need at least one time step");
        let layout = *v.layout();
        let dt = 1.0 as Real / nt as Real;
        let n = layout.local_len();
        let mut pts = R3_POOL.checkout_filled(n, [0.0 as Real; 3], WsCat::Sl);
        grid_points_into(&layout, &mut pts);

        // v at grid points (no interpolation needed)
        let v1 = v.c[0].data();
        let v2 = v.c[1].data();
        let v3 = v.c[2].data();

        let mut foot_back = R3_POOL.checkout_filled(n, [0.0 as Real; 3], WsCat::Sl);
        rk2_feet_into(&pts, v, v1, v2, v3, -dt, interp, comm, &mut foot_back);
        let mut foot_fwd = R3_POOL.checkout_filled(n, [0.0 as Real; 3], WsCat::Sl);
        rk2_feet_into(&pts, v, v1, v2, v3, dt, interp, comm, &mut foot_fwd);

        let div_v = claire_diff::fd::divergence_scaled(v, comm, 0.5 * dt);
        let mut div_v_at_fwd = REAL_POOL.checkout_filled(n, 0.0 as Real, WsCat::Sl);
        interp.interp_into(&div_v, &foot_fwd, comm, &mut div_v_at_fwd);

        // CFL estimate for buffer sizing (max displacement / h)
        let vmax = v.max_abs(comm);
        let hmin = layout.grid.spacing().iter().cloned().fold(Real::MAX, Real::min);
        #[allow(clippy::unnecessary_cast)] // load-bearing under `--features single`
        let cfl = vmax * dt as f64 / hmin as f64;

        Trajectory { dt, foot_back, foot_fwd, div_v, div_v_at_fwd, cfl }
    }
}

/// One RK2 (Heun) sweep: `foot = x + s·(v(x) + v(x + s·v(x)))/2` where
/// `s = ±δt` selects the transport direction. Writes into `out`
/// (`out.len() == pts.len()`); all staging buffers are pooled (µSL).
fn rk2_feet_into(
    pts: &[[Real; 3]],
    v: &VectorField,
    v1: &[Real],
    v2: &[Real],
    v3: &[Real],
    s: Real,
    interp: &mut Interpolator,
    comm: &mut Comm,
    out: &mut [[Real; 3]],
) {
    let n = pts.len();
    assert_eq!(out.len(), n);
    // Euler predictor — one independent update per grid point
    let mut mid = R3_POOL.checkout_filled(n, [0.0 as Real; 3], WsCat::Sl);
    timing::time(Kernel::SemiLag, || {
        let shared = SharedSlice::new(&mut mid);
        par_parts(n, n, |range| {
            // SAFETY: worker ranges are disjoint.
            let dst = unsafe { shared.slice_mut(range.clone()) };
            for (o, i) in dst.iter_mut().zip(range) {
                let p = &pts[i];
                *o = [p[0] + s * v1[i], p[1] + s * v2[i], p[2] + s * v3[i]];
            }
        });
    });
    // v at predictor points (off-grid)
    let mut vm = R3_POOL.checkout_filled(n, [0.0 as Real; 3], WsCat::Sl);
    interp.interp_vector_into(v, &mid, comm, &mut vm);
    // Heun corrector
    timing::time(Kernel::SemiLag, || {
        let shared = SharedSlice::new(out);
        par_parts(n, n, |range| {
            // SAFETY: worker ranges are disjoint.
            let dst = unsafe { shared.slice_mut(range.clone()) };
            for (o, i) in dst.iter_mut().zip(range) {
                let p = &pts[i];
                *o = [
                    p[0] + 0.5 * s * (v1[i] + vm[i][0]),
                    p[1] + 0.5 * s * (v2[i] + vm[i][1]),
                    p[2] + 0.5 * s * (v3[i] + vm[i][2]),
                ];
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_grid::{Grid, Layout, TWO_PI};
    use claire_interp::IpOrder;

    #[test]
    fn constant_velocity_feet_are_shifts() {
        let grid = Grid::cube(8);
        let layout = Layout::serial(grid);
        let mut comm = Comm::solo();
        let c = 0.3 as Real;
        let v = VectorField::from_fns(layout, move |_, _, _| c, |_, _, _| 0.0, |_, _, _| 0.0);
        let mut ip = Interpolator::new(IpOrder::Cubic);
        let traj = Trajectory::compute(&v, 4, &mut ip, &mut comm);
        let pts = grid_points(&layout);
        for (p, f) in pts.iter().zip(&traj.foot_back) {
            assert!((f[0] - (p[0] - c * traj.dt)).abs() < 1e-9);
            assert!((f[1] - p[1]).abs() < 1e-12);
        }
        for (p, f) in pts.iter().zip(&traj.foot_fwd) {
            assert!((f[0] - (p[0] + c * traj.dt)).abs() < 1e-9);
        }
        assert!(traj.div_v.max_abs(&mut comm) < 1e-10);
        assert!(traj.cfl > 0.0);
    }

    #[test]
    fn rk2_is_second_order_for_curved_flow() {
        // v = (sin(x2), 0, 0): exact backward trajectory from x over dt is
        // x1 - dt·sin(x2) (v constant along the trajectory since x2 fixed).
        // Use a flow where v varies along the path: v = (sin(x1), 0, 0).
        // dy/dt = sin(y); exact: tan(y/2) = tan(y0/2) e^{t}.
        let grid = Grid::cube(64);
        let layout = Layout::serial(grid);
        let mut comm = Comm::solo();
        let v = VectorField::from_fns(layout, |x, _, _| x.sin(), |_, _, _| 0.0, |_, _, _| 0.0);
        let mut errs = Vec::new();
        for &nt in &[4usize, 8] {
            let mut ip = Interpolator::new(IpOrder::Cubic);
            let traj = Trajectory::compute(&v, nt, &mut ip, &mut comm);
            let pts = grid_points(&layout);
            // check at an interior point
            let idx = layout.local_idx(20, 0, 0);
            let x0 = pts[idx][0];
            let dt = traj.dt;
            // exact solution of dy/dt = sin(y) backwards by dt
            let exact = 2.0 * ((x0 / 2.0).tan() * (-dt).exp()).atan();
            errs.push((traj.foot_back[idx][0] - exact).abs());
        }
        let order = (errs[0] / errs[1]).log2();
        assert!(order > 1.7, "RK2 should be ~2nd order: {order} ({errs:?})");
        let _ = TWO_PI;
    }
}
