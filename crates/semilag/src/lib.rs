//! Semi-Lagrangian transport solvers (paper §2).
//!
//! CLAIRE discretizes the hyperbolic PDEs of the optimality system with an
//! unconditionally stable semi-Lagrangian scheme: the advection term is
//! evaluated along backward characteristics computed with a 2nd-order
//! Runge–Kutta scheme, and off-grid values are obtained by scattered
//! interpolation (the [`claire_interp`] kernel).
//!
//! Because CLAIRE's velocity is **stationary**, the characteristic foot
//! points are identical for every time step — they are computed once per
//! velocity ([`Trajectory`]) and reused across the `Nt` steps of all four
//! transport problems:
//!
//! * the **state** equation (1b): `∂t m + v·∇m = 0` forward in time;
//! * the **adjoint** equation (3): `−∂t λ − ∇·(λv) = 0` backward in time —
//!   a continuity equation, integrated along the characteristics of `−v`
//!   with a trapezoidal exponential source term `λ ∇·v`;
//! * the **incremental state** equation (6):
//!   `∂t m̃ + v·∇m̃ = −ṽ·∇m` (Gauss–Newton linearization);
//! * the **incremental adjoint** equation (7) — same operator as (3) with
//!   final condition `λ̃(1) = −m̃(1)`.
//!
//! [`displacement`] additionally integrates the deformation map
//! `y = x + u` and its Jacobian determinant for diffeomorphism checks.

pub mod displacement;
pub mod traj;
pub mod transport;

pub use traj::Trajectory;
pub use transport::{StateSolution, Transport};
