//! The four transport solves of the optimality system.

use claire_diff::fd::FdScratch;
use claire_grid::workspace::{PoolVec, WsCat, REAL_POOL, SCALAR_FIELDS, VECTOR_FIELDS};
use claire_grid::{ScalarField, VectorField};
use claire_interp::{Interpolator, IpOrder};
use claire_mpi::Comm;
use claire_obs::span::span;
use claire_par::timing::{self, Kernel};
use claire_par::{par_parts, SharedSlice};

use crate::traj::Trajectory;

/// Solution of the state equation: the transported intensities at every
/// time step (`m[j] ≈ m(·, t_j)`, `j = 0..=nt`), optionally with their
/// gradients.
///
/// CLAIRE stores `m` for all time steps "to avoid additional PDE solves"
/// (§3); storing `∇m` as well is the paper's speed/memory trade-off that
/// buys ~15% runtime for `3·Nt·N` extra words. Both time-series containers
/// are pooled (µPDE budget), as is the storage of every field inside them.
pub struct StateSolution {
    /// `m(·, t_j)` for `j = 0..=nt`.
    pub m: PoolVec<ScalarField>,
    /// `∇m(·, t_j)` if requested (the `store_grad` option).
    pub grad_m: Option<PoolVec<VectorField>>,
}

impl StateSolution {
    /// The deformed template `m(·, 1)`.
    pub fn final_state(&self) -> &ScalarField {
        self.m.last().expect("state solution is never empty")
    }

    /// `∇m(·, t_j)`, from the cache or recomputed with 8th-order FD.
    pub fn grad_at(&self, j: usize, comm: &mut Comm) -> VectorField {
        match &self.grad_m {
            Some(g) => g[j].clone(),
            None => claire_diff::fd::gradient(&self.m[j], comm),
        }
    }
}

/// Semi-Lagrangian transport driver (fixed `Nt` and interpolation order).
pub struct Transport {
    /// Number of time steps (paper: 4/8/16 for 256³/512³/1024³).
    pub nt: usize,
    /// Interpolation kernel.
    pub order: IpOrder,
}

impl Transport {
    /// New driver.
    pub fn new(nt: usize, order: IpOrder) -> Transport {
        Transport { nt, order }
    }

    /// Solve the state equation (1b) forward: `∂t m + v·∇m = 0`,
    /// `m(0) = m0`. Returns the full time series (and gradients if
    /// `store_grad`).
    pub fn solve_state(
        &self,
        traj: &Trajectory,
        m0: &ScalarField,
        store_grad: bool,
        interp: &mut Interpolator,
        comm: &mut Comm,
    ) -> StateSolution {
        let _s = span("semilag.state");
        let mut m = SCALAR_FIELDS.checkout(self.nt + 1, WsCat::Pde);
        m.push(m0.clone());
        for j in 0..self.nt {
            let mut next = ScalarField::zeros(*m0.layout());
            interp.interp_into(&m[j], &traj.foot_back, comm, next.data_mut());
            m.push(next);
        }
        let grad_m = store_grad.then(|| {
            // one scratch (halo + temps) shared across all Nt+1 gradients
            let mut scratch = FdScratch::new();
            let mut gs = VECTOR_FIELDS.checkout(m.len(), WsCat::Pde);
            for mj in m.iter() {
                let mut g = VectorField::zeros(*mj.layout());
                claire_diff::fd::gradient_into(mj, comm, &mut g, &mut scratch);
                gs.push(g);
            }
            gs
        });
        StateSolution { m, grad_m }
    }

    /// Solve a continuity equation backward in time:
    /// `−∂t λ − ∇·(λ v) = 0` with `λ(·, 1) = final_cond`.
    ///
    /// Used for both the adjoint (3) (`λ(1) = m1 − m(1)`) and the
    /// incremental adjoint (7) (`λ̃(1) = −m̃(1)`). Returns `λ(·, t_j)` for
    /// `j = 0..=nt`. Integrates along the characteristics of `−v` with a
    /// trapezoidal exponential source for `λ ∇·v` (2nd order).
    pub fn solve_adjoint(
        &self,
        traj: &Trajectory,
        final_cond: &ScalarField,
        interp: &mut Interpolator,
        comm: &mut Comm,
    ) -> PoolVec<ScalarField> {
        let _s = span("semilag.adjoint");
        let layout = *final_cond.layout();
        let n = layout.local_len();
        let mut lambda = SCALAR_FIELDS.checkout(self.nt + 1, WsCat::Pde);
        lambda.push(final_cond.clone());
        let divv = traj.div_v.data();
        for _ in 0..self.nt {
            let mut next = ScalarField::zeros(layout);
            interp.interp_into(lambda.last().unwrap(), &traj.foot_fwd, comm, next.data_mut());
            timing::time(Kernel::SemiLag, || {
                let shared = SharedSlice::new(next.data_mut());
                par_parts(n, n, |range| {
                    // SAFETY: worker ranges are disjoint.
                    let dst = unsafe { shared.slice_mut(range.clone()) };
                    for (o, i) in dst.iter_mut().zip(range) {
                        // div_v carries the ½·δt factor already (prescaled
                        // into the divergence stencil sweep in Trajectory)
                        let src = traj.div_v_at_fwd[i] + divv[i];
                        *o *= src.exp();
                    }
                });
            });
            lambda.push(next);
        }
        lambda.reverse(); // index j now corresponds to time t_j
        lambda
    }

    /// Solve the incremental state equation (6) forward:
    /// `∂t m̃ + v·∇m̃ + ṽ·∇m = 0`, `m̃(0) = 0`. Returns `m̃(·, 1)`.
    ///
    /// Needs `∇m` at every step — taken from the [`StateSolution`] cache if
    /// present (the paper's "store the gradient of the state variable"
    /// option), otherwise recomputed with FD.
    pub fn solve_inc_state(
        &self,
        traj: &Trajectory,
        vt: &VectorField,
        state: &StateSolution,
        interp: &mut Interpolator,
        comm: &mut Comm,
    ) -> ScalarField {
        let _s = span("semilag.inc_state");
        let layout = *state.m[0].layout();
        let n = layout.local_len();
        // b_j = ṽ·∇m_j (source term), computed per step
        let bdot = |grad: &VectorField| -> ScalarField {
            let mut b = ScalarField::zeros(layout);
            b.add_scaled_product(1.0, &vt.c[0], &grad.c[0]);
            b.add_scaled_product(1.0, &vt.c[1], &grad.c[1]);
            b.add_scaled_product(1.0, &vt.c[2], &grad.c[2]);
            b
        };
        let mut mt = ScalarField::zeros(layout);
        let mut b_next = bdot(&state.grad_at(0, comm));
        let mut mt_foot = REAL_POOL.checkout_filled(n, 0.0, WsCat::Sl);
        let mut b_foot = REAL_POOL.checkout_filled(n, 0.0, WsCat::Sl);
        for j in 0..self.nt {
            let b_j = b_next;
            b_next = bdot(&state.grad_at(j + 1, comm));
            // trapezoid: m̃_{j+1}(x) = m̃_j(X) − δt/2·(b_j(X) + b_{j+1}(x))
            interp.interp_many_into(
                &[&mt, &b_j],
                &traj.foot_back,
                comm,
                &mut [&mut mt_foot, &mut b_foot],
            );
            let bn = b_next.data();
            let mut next = ScalarField::zeros(layout);
            timing::time(Kernel::SemiLag, || {
                let shared = SharedSlice::new(next.data_mut());
                par_parts(n, n, |range| {
                    // SAFETY: worker ranges are disjoint.
                    let dst = unsafe { shared.slice_mut(range.clone()) };
                    for (o, i) in dst.iter_mut().zip(range) {
                        *o = mt_foot[i] - 0.5 * traj.dt * (b_foot[i] + bn[i]);
                    }
                });
            });
            mt = next;
        }
        mt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_grid::{Grid, Layout, Real};
    use claire_mpi::{run_cluster, Topology};

    fn solo_setup(n: usize, nt: usize) -> (Layout, Transport, Interpolator, Comm) {
        let layout = Layout::serial(Grid::cube(n));
        (
            layout,
            Transport::new(nt, IpOrder::Cubic),
            Interpolator::new(IpOrder::Cubic),
            Comm::solo(),
        )
    }

    #[test]
    fn translation_transports_exactly() {
        let (layout, tr, mut ip, mut comm) = solo_setup(32, 8);
        let c = 0.5 as Real;
        let v = VectorField::from_fns(layout, move |_, _, _| c, |_, _, _| 0.0, |_, _, _| 0.0);
        let m0 = ScalarField::from_fn(layout, |x, _, _| x.sin());
        let traj = Trajectory::compute(&v, tr.nt, &mut ip, &mut comm);
        let sol = tr.solve_state(&traj, &m0, false, &mut ip, &mut comm);
        let expect = ScalarField::from_fn(layout, move |x, _, _| (x - c).sin());
        let err = sol
            .final_state()
            .data()
            .iter()
            .zip(expect.data())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 5e-4, "translation error {err}");
    }

    #[test]
    fn zero_velocity_is_identity() {
        let (layout, tr, mut ip, mut comm) = solo_setup(8, 4);
        let v = VectorField::zeros(layout);
        let m0 = ScalarField::from_fn(layout, |x, y, z| (x * y).sin() + z);
        let traj = Trajectory::compute(&v, tr.nt, &mut ip, &mut comm);
        let sol = tr.solve_state(&traj, &m0, false, &mut ip, &mut comm);
        let err = sol
            .final_state()
            .data()
            .iter()
            .zip(m0.data())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-12, "v=0 must be exact identity: {err}");
        // adjoint with v=0 is also the identity
        let lam1 = ScalarField::from_fn(layout, |x, _, _| x.cos());
        let lam = tr.solve_adjoint(&traj, &lam1, &mut ip, &mut comm);
        assert_eq!(lam.len(), tr.nt + 1);
        let err =
            lam[0].data().iter().zip(lam1.data()).map(|(&a, &b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(err < 1e-12, "adjoint with v=0: {err}");
    }

    #[test]
    fn state_solve_matches_over_socket_transport() {
        // A distributed semi-Lagrangian state solve (trajectory + ghost
        // exchanges + scattered interpolation) is bitwise transport-invariant.
        let grid = Grid::cube(8);
        let f = move |comm: &mut Comm| {
            let layout = Layout::distributed(grid, comm);
            let tr = Transport::new(4, IpOrder::Linear);
            let mut ip = Interpolator::new(IpOrder::Linear);
            let v = VectorField::from_fns(
                layout,
                |_, y, _| 0.3 * y.sin(),
                |x, _, _| 0.2 * x.cos(),
                |_, _, z| 0.1 * (2.0 * z).sin(),
            );
            let m0 = ScalarField::from_fn(layout, |x, y, z| x.sin() + (y - z).cos());
            let traj = Trajectory::compute(&v, tr.nt, &mut ip, comm);
            let sol = tr.solve_state(&traj, &m0, false, &mut ip, comm);
            sol.final_state().data().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        };
        let chan = run_cluster(Topology::new(2, 4), f);
        let sock = claire_ipc::run_socket_cluster(Topology::new(2, 4), f);
        assert_eq!(chan.outputs, sock.outputs, "transports must agree bitwise");
    }

    #[test]
    fn adjoint_conserves_mass() {
        // the continuity equation conserves ∫λ dx exactly in the continuum
        let (layout, tr, mut ip, mut comm) = solo_setup(24, 8);
        let v = VectorField::from_fns(
            layout,
            |_, y, _| 0.3 * y.sin(),
            |x, _, _| 0.2 * x.cos(),
            |_, _, z| 0.1 * (2.0 * z).sin(),
        );
        let lam1 = ScalarField::from_fn(layout, |x, y, _| 1.0 + 0.5 * (x + y).sin());
        let traj = Trajectory::compute(&v, tr.nt, &mut ip, &mut comm);
        let lam = tr.solve_adjoint(&traj, &lam1, &mut ip, &mut comm);
        let mass1 = lam1.sum(&mut comm);
        let mass0 = lam[0].sum(&mut comm);
        let rel = ((mass1 - mass0) / mass1).abs();
        assert!(rel < 5e-3, "mass drift {rel}");
    }

    #[test]
    fn incremental_state_is_directional_derivative() {
        let (layout, tr, mut ip, mut comm) = solo_setup(16, 4);
        let v = VectorField::from_fns(
            layout,
            |_, y, _| 0.2 * y.sin(),
            |x, _, _| 0.1 * x.cos(),
            |_, _, _| 0.0,
        );
        let vt = VectorField::from_fns(
            layout,
            |x, _, _| 0.5 * x.cos(),
            |_, _, z| 0.3 * z.sin(),
            |_, y, _| 0.2 * y.cos(),
        );
        let m0 = ScalarField::from_fn(layout, |x, y, z| x.sin() + (y - z).cos());

        let traj = Trajectory::compute(&v, tr.nt, &mut ip, &mut comm);
        let state = tr.solve_state(&traj, &m0, true, &mut ip, &mut comm);
        let mt = tr.solve_inc_state(&traj, &vt, &state, &mut ip, &mut comm);

        // finite-difference directional derivative
        let eps = 1e-4 as Real;
        let mut v_pert = v.clone();
        v_pert.axpy(eps, &vt);
        let traj_p = Trajectory::compute(&v_pert, tr.nt, &mut ip, &mut comm);
        let m_pert = tr.solve_state(&traj_p, &m0, false, &mut ip, &mut comm);
        let mut fd = m_pert.final_state().clone();
        fd.axpy(-1.0, state.final_state());
        fd.scale(1.0 / eps);

        let num = {
            let mut d = fd.clone();
            d.axpy(-1.0, &mt);
            d.norm_l2(&mut comm)
        };
        let den = fd.norm_l2(&mut comm).max(1e-12);
        assert!(num / den < 0.05, "incremental state mismatch: rel {num}/{den}");
    }

    #[test]
    fn store_grad_matches_recompute() {
        let (layout, tr, mut ip, mut comm) = solo_setup(12, 4);
        let v = VectorField::from_fns(
            layout,
            |_, y, _| 0.2 * y.sin(),
            |x, _, _| 0.1 * x.sin(),
            |_, _, _| 0.0,
        );
        let vt = VectorField::from_fns(layout, |x, _, _| x.cos(), |_, _, _| 0.1, |_, _, _| 0.0);
        let m0 = ScalarField::from_fn(layout, |x, y, _| (x + y).sin());
        let traj = Trajectory::compute(&v, tr.nt, &mut ip, &mut comm);
        let with = tr.solve_state(&traj, &m0, true, &mut ip, &mut comm);
        let without = tr.solve_state(&traj, &m0, false, &mut ip, &mut comm);
        let a = tr.solve_inc_state(&traj, &vt, &with, &mut ip, &mut comm);
        let b = tr.solve_inc_state(&traj, &vt, &without, &mut ip, &mut comm);
        let err = a.data().iter().zip(b.data()).map(|(&x, &y)| (x - y).abs()).fold(0.0, f64::max);
        assert!(err < 1e-12, "store_grad must not change results: {err}");
    }

    #[test]
    fn distributed_state_matches_serial() {
        let grid = Grid::new([16, 8, 8]);
        // serial reference
        let layout = Layout::serial(grid);
        let mut comm = Comm::solo();
        let mut ip = Interpolator::new(IpOrder::Linear);
        let tr = Transport::new(4, IpOrder::Linear);
        let v = VectorField::from_fns(
            layout,
            |_, y, _| 0.3 * y.sin(),
            |x, _, _| 0.2 * x.cos(),
            |_, _, _| 0.1,
        );
        let m0 = ScalarField::from_fn(layout, |x, y, z| x.sin() + (y * 2.0).cos() + z * 0.1);
        let traj = Trajectory::compute(&v, tr.nt, &mut ip, &mut comm);
        let expect =
            tr.solve_state(&traj, &m0, false, &mut ip, &mut comm).final_state().data().to_vec();

        for p in [2usize, 4] {
            let expect = expect.clone();
            let res = run_cluster(Topology::new(p, 4), move |comm| {
                let layout = Layout::distributed(grid, comm);
                let v = VectorField::from_fns(
                    layout,
                    |_, y, _| 0.3 * y.sin(),
                    |x, _, _| 0.2 * x.cos(),
                    |_, _, _| 0.1,
                );
                let m0 =
                    ScalarField::from_fn(layout, |x, y, z| x.sin() + (y * 2.0).cos() + z * 0.1);
                let mut ip = Interpolator::new(IpOrder::Linear);
                let tr = Transport::new(4, IpOrder::Linear);
                let traj = Trajectory::compute(&v, tr.nt, &mut ip, comm);
                let sol = tr.solve_state(&traj, &m0, false, &mut ip, comm);
                claire_grid::redist::gather(sol.final_state(), comm).map(|g| g.into_data())
            });
            let got = res.outputs[0].as_ref().unwrap();
            for (i, (a, b)) in got.iter().zip(&expect).enumerate() {
                assert!((a - b).abs() < 1e-10, "p={p} idx={i}: {a} vs {b}");
            }
        }
    }
}
