//! Portable wide backend: chunked scalar loops written for
//! autovectorization (`CLAIRE_SIMD=portable`).
//!
//! Every kernel processes `LANES` elements per step through fixed-size
//! array temporaries, the shape LLVM's loop vectorizer maps onto whatever
//! vector ISA the target offers — two AVX2 registers, a single AVX-512
//! register, NEON pairs — without this crate naming an instruction set.
//! The module is the AVX-512-ready seam: widening the solver to 512-bit
//! vectors means compiling this backend with `-C target-cpu`, not writing
//! new intrinsics.
//!
//! Reductions accumulate one f64 partial per lane and fold the lane
//! accumulators with a fixed-shape pairwise tree, so results are
//! deterministic for a given input (independent of thread count — the
//! caller still blocks reductions via `par_sum_blocks`), but *not* bitwise
//! equal to the scalar backend's left-to-right order. The backend sits
//! under the crate-wide ≤1e-12 relative-error equivalence contract, same
//! as AVX2.
//!
//! Sub-vector kernels where chunking buys nothing (`lagrange_weights`,
//! `cubic_accumulate`, `cpx_radix2_combine`'s strided twiddle walk)
//! delegate to the scalar reference loops.

// `Real as f64` is a real conversion under the `single` (f32) feature and
// an identity cast in the default build — keep the cast either way.
#![allow(clippy::unnecessary_cast)]

use crate::scalar;
use crate::Real;

/// Elements per chunk. Eight f64s = one AVX-512 register / two AVX2
/// registers / four NEON registers — wide enough to saturate any of them,
/// small enough that remainder handling stays cheap.
const LANES: usize = 8;

/// Fixed-shape pairwise fold of the lane accumulators:
/// `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))`.
#[inline]
fn fold_sum(acc: [f64; LANES]) -> f64 {
    ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
}

#[inline]
fn fold_max(acc: [f64; LANES]) -> f64 {
    let a = acc[0].max(acc[4]).max(acc[2].max(acc[6]));
    let b = acc[1].max(acc[5]).max(acc[3].max(acc[7]));
    a.max(b)
}

// ----- element-wise -------------------------------------------------------

pub fn scale(a: Real, y: &mut [Real]) {
    let mut chunks = y.chunks_exact_mut(LANES);
    for c in &mut chunks {
        for v in c.iter_mut() {
            *v *= a;
        }
    }
    for v in chunks.into_remainder() {
        *v *= a;
    }
}

pub fn axpy(a: Real, x: &[Real], y: &mut [Real]) {
    let n = y.len();
    let (xc, xr) = x[..n].split_at(n - n % LANES);
    let (yc, yr) = y.split_at_mut(n - n % LANES);
    for (yv, xv) in yc.chunks_exact_mut(LANES).zip(xc.chunks_exact(LANES)) {
        for l in 0..LANES {
            yv[l] += a * xv[l];
        }
    }
    for (v, &xv) in yr.iter_mut().zip(xr) {
        *v += a * xv;
    }
}

pub fn aypx(a: Real, x: &[Real], y: &mut [Real]) {
    let n = y.len();
    let (xc, xr) = x[..n].split_at(n - n % LANES);
    let (yc, yr) = y.split_at_mut(n - n % LANES);
    for (yv, xv) in yc.chunks_exact_mut(LANES).zip(xc.chunks_exact(LANES)) {
        for l in 0..LANES {
            yv[l] = a * yv[l] + xv[l];
        }
    }
    for (v, &xv) in yr.iter_mut().zip(xr) {
        *v = a * *v + xv;
    }
}

pub fn add_scaled_product(a: Real, x: &[Real], y: &[Real], s: &mut [Real]) {
    let n = s.len();
    let split = n - n % LANES;
    let (sc, sr) = s.split_at_mut(split);
    for (ci, sv) in sc.chunks_exact_mut(LANES).enumerate() {
        let base = ci * LANES;
        for l in 0..LANES {
            sv[l] += a * x[base + l] * y[base + l];
        }
    }
    for (i, v) in sr.iter_mut().enumerate() {
        *v += a * x[split + i] * y[split + i];
    }
}

// ----- fused element-wise + reduction -------------------------------------

pub fn axpy_dot(a: Real, x: &[Real], y: &mut [Real]) -> f64 {
    let n = y.len();
    let split = n - n % LANES;
    let (xc, xr) = x[..n].split_at(split);
    let (yc, yr) = y.split_at_mut(split);
    let mut acc = [0.0f64; LANES];
    for (yv, xv) in yc.chunks_exact_mut(LANES).zip(xc.chunks_exact(LANES)) {
        for l in 0..LANES {
            yv[l] += a * xv[l];
            acc[l] += yv[l] as f64 * yv[l] as f64;
        }
    }
    let mut r = fold_sum(acc);
    for (v, &xv) in yr.iter_mut().zip(xr) {
        *v += a * xv;
        r += *v as f64 * *v as f64;
    }
    r
}

pub fn aypx_norm2(a: Real, x: &[Real], y: &mut [Real]) -> f64 {
    let n = y.len();
    let split = n - n % LANES;
    let (xc, xr) = x[..n].split_at(split);
    let (yc, yr) = y.split_at_mut(split);
    let mut acc = [0.0f64; LANES];
    for (yv, xv) in yc.chunks_exact_mut(LANES).zip(xc.chunks_exact(LANES)) {
        for l in 0..LANES {
            yv[l] = a * yv[l] + xv[l];
            acc[l] += yv[l] as f64 * yv[l] as f64;
        }
    }
    let mut r = fold_sum(acc);
    for (v, &xv) in yr.iter_mut().zip(xr) {
        *v = a * *v + xv;
        r += *v as f64 * *v as f64;
    }
    r
}

pub fn scale_add_norm(a: Real, x: &[Real], y: &[Real], out: &mut [Real]) -> f64 {
    let n = out.len();
    let split = n - n % LANES;
    let (oc, or) = out.split_at_mut(split);
    let mut acc = [0.0f64; LANES];
    for (ci, ov) in oc.chunks_exact_mut(LANES).enumerate() {
        let base = ci * LANES;
        for l in 0..LANES {
            ov[l] = a * x[base + l] + y[base + l];
            acc[l] += ov[l] as f64 * ov[l] as f64;
        }
    }
    let mut r = fold_sum(acc);
    for (i, v) in or.iter_mut().enumerate() {
        *v = a * x[split + i] + y[split + i];
        r += *v as f64 * *v as f64;
    }
    r
}

// ----- reductions ---------------------------------------------------------

pub fn dot(x: &[Real], y: &[Real]) -> f64 {
    let n = x.len();
    let split = n - n % LANES;
    let mut acc = [0.0f64; LANES];
    for (xv, yv) in x[..split].chunks_exact(LANES).zip(y[..split].chunks_exact(LANES)) {
        for l in 0..LANES {
            acc[l] += xv[l] as f64 * yv[l] as f64;
        }
    }
    let mut r = fold_sum(acc);
    for i in split..n {
        r += x[i] as f64 * y[i] as f64;
    }
    r
}

pub fn sum(x: &[Real]) -> f64 {
    let n = x.len();
    let split = n - n % LANES;
    let mut acc = [0.0f64; LANES];
    for xv in x[..split].chunks_exact(LANES) {
        for l in 0..LANES {
            acc[l] += xv[l] as f64;
        }
    }
    let mut r = fold_sum(acc);
    for v in &x[split..] {
        r += *v as f64;
    }
    r
}

pub fn max_abs(x: &[Real]) -> f64 {
    let n = x.len();
    let split = n - n % LANES;
    let mut acc = [0.0f64; LANES];
    for xv in x[..split].chunks_exact(LANES) {
        for l in 0..LANES {
            acc[l] = acc[l].max((xv[l] as f64).abs());
        }
    }
    let mut r = fold_max(acc).max(0.0);
    for v in &x[split..] {
        r = r.max((*v as f64).abs());
    }
    r
}

// ----- 8th-order FD stencil ----------------------------------------------

pub fn fd8_combine(
    out: &mut [Real],
    plus: &[&[Real]; 4],
    minus: &[&[Real]; 4],
    c: &[Real; 4],
    inv_h: Real,
) {
    fd8_combine_scale(out, plus, minus, c, inv_h, 1.0 as Real)
}

pub fn fd8_combine_scale(
    out: &mut [Real],
    plus: &[&[Real]; 4],
    minus: &[&[Real]; 4],
    c: &[Real; 4],
    inv_h: Real,
    s: Real,
) {
    let ihs = inv_h * s;
    let n = out.len();
    let split = n - n % LANES;
    let (oc, or) = out.split_at_mut(split);
    for (ci, ov) in oc.chunks_exact_mut(LANES).enumerate() {
        let base = ci * LANES;
        let mut acc = [0.0 as Real; LANES];
        for (m, &cm) in c.iter().enumerate() {
            let (pm, mm) = (&plus[m][base..base + LANES], &minus[m][base..base + LANES]);
            for l in 0..LANES {
                acc[l] += cm * (pm[l] - mm[l]);
            }
        }
        for l in 0..LANES {
            ov[l] = acc[l] * ihs;
        }
    }
    for (i, ov) in or.iter_mut().enumerate() {
        let k = split + i;
        let mut acc = 0.0 as Real;
        for (m, &cm) in c.iter().enumerate() {
            acc += cm * (plus[m][k] - minus[m][k]);
        }
        *ov = acc * ihs;
    }
}

// ----- cubic interpolation (sub-vector: scalar reference) -----------------

pub fn lagrange_weights(t: Real) -> [Real; 4] {
    scalar::lagrange_weights(t)
}

pub fn cubic_accumulate(
    data: &[Real],
    base: usize,
    plane_stride: usize,
    row_stride: usize,
    w1: &[Real; 4],
    w2: &[Real; 4],
    w3: &[Real; 4],
) -> Real {
    scalar::cubic_accumulate(data, base, plane_stride, row_stride, w1, w2, w3)
}

// ----- interleaved complex kernels ---------------------------------------

/// Complexes per chunk (LANES reals = LANES/2 interleaved complexes).
const CPX_PER: usize = LANES / 2;

pub fn cpx_mul(dst: &mut [Real], src: &[Real]) {
    let n = dst.len();
    let split = n - n % LANES;
    let (dc, dr) = dst.split_at_mut(split);
    for (dv, sv) in dc.chunks_exact_mut(LANES).zip(src[..split].chunks_exact(LANES)) {
        for l in 0..CPX_PER {
            let (ar, ai) = (dv[2 * l], dv[2 * l + 1]);
            let (br, bi) = (sv[2 * l], sv[2 * l + 1]);
            dv[2 * l] = ar * br - ai * bi;
            dv[2 * l + 1] = ar * bi + ai * br;
        }
    }
    scalar::cpx_mul(dr, &src[split..]);
}

pub fn cpx_mul_into(out: &mut [Real], a: &[Real], b: &[Real]) {
    let n = out.len();
    let split = n - n % LANES;
    let (oc, or) = out.split_at_mut(split);
    for ((ov, av), bv) in oc
        .chunks_exact_mut(LANES)
        .zip(a[..split].chunks_exact(LANES))
        .zip(b[..split].chunks_exact(LANES))
    {
        for l in 0..CPX_PER {
            let (ar, ai) = (av[2 * l], av[2 * l + 1]);
            let (br, bi) = (bv[2 * l], bv[2 * l + 1]);
            ov[2 * l] = ar * br - ai * bi;
            ov[2 * l + 1] = ar * bi + ai * br;
        }
    }
    scalar::cpx_mul_into(or, &a[split..], &b[split..]);
}

pub fn cpx_conj(data: &mut [Real]) {
    for z in data.chunks_exact_mut(2) {
        z[1] = -z[1];
    }
}

pub fn cpx_conj_scale(data: &mut [Real], s: Real) {
    let n = data.len();
    let split = n - n % LANES;
    let (dc, dr) = data.split_at_mut(split);
    for dv in dc.chunks_exact_mut(LANES) {
        for l in 0..CPX_PER {
            dv[2 * l] *= s;
            dv[2 * l + 1] = -dv[2 * l + 1] * s;
        }
    }
    scalar::cpx_conj_scale(dr, s);
}

pub fn cpx_radix2_combine(lo: &mut [Real], hi: &mut [Real], tw: &[Real], ws: usize) {
    scalar::cpx_radix2_combine(lo, hi, tw, ws)
}
