//! Runtime-dispatched SIMD kernels for the solver's hot inner loops.
//!
//! The three computational kernels of the paper — scattered interpolation,
//! 8th-order FD, and FFT — are memory/ILP-bound once the solver is fixed
//! (Brunn et al., arXiv:2004.08893). CLAIRE's CUDA kernels get data-level
//! parallelism for free from the GPU's vector units; on CPU the equivalent
//! is AVX2+FMA, which this crate provides behind runtime dispatch:
//!
//! * every public kernel is a **safe slice-level function** (`axpy`,
//!   [`fd8_combine`], [`cubic_accumulate`], [`cpx_mul`], …) that picks an
//!   implementation per call from a cached process-wide backend choice;
//! * the AVX2+FMA implementation is compiled with `#[target_feature]` and
//!   only ever selected after `is_x86_feature_detected!` confirms support;
//! * the portable scalar fallback reproduces the pre-SIMD loops **exactly**
//!   (same operation order), so `CLAIRE_SIMD=scalar` is bit-identical to
//!   the historical solver;
//! * the `portable` wide backend (`CLAIRE_SIMD=portable`) runs chunked
//!   scalar loops written for autovectorization — ISA-independent lanes
//!   that serve as the AVX-512-ready seam (see the `portable` module);
//! * **fused single-pass kernels** ([`axpy_dot`], [`aypx_norm2`],
//!   [`scale_add_norm`], [`fd8_combine_scale`]) combine a BLAS-1 update
//!   with the reduction (or scale) the solver takes immediately after,
//!   halving DRAM traffic for the memory-bound PCG chains (paper §3's
//!   cost model counts passes over memory, not flops);
//! * [`F64x4`] is the portable 4-lane building block (add/mul/fma, lane
//!   shuffles, horizontal sum, masked head/tail loads) mirroring the lane
//!   semantics the AVX2 kernels use via intrinsics.
//!
//! Dispatch granularity is a kernel call (a row sweep, a reduction block,
//! a 64-point stencil), never a single vector op — a per-op branch would
//! cost more than the op itself. The backend is resolved once from the
//! `CLAIRE_SIMD` environment variable (`auto` | `avx2` | `portable` |
//! `scalar`, default `auto`) and cached; tests and benches can override it
//! in-process with [`force_backend`].
//!
//! # Equivalence contract
//!
//! FMA contracts `a·b + c` into one rounding, so the AVX2 backend is not
//! bit-identical to the scalar one. The contract (enforced by the proptest
//! suite in `tests/`) is ≤ 1e-12 *relative* error against the scalar path
//! per kernel call, and strict bitwise determinism *within* a backend:
//! results never depend on thread count, timing, or allocation state —
//! only on the input values and the selected backend.
//!
//! With the `single` feature (f32 fields) the vector backend is compiled
//! out and every kernel takes the scalar path.

/// Field scalar type — mirrors `claire_grid::Real` (kept in sync by the
/// `single` feature, which `claire-grid/single` forwards here).
#[cfg(not(feature = "single"))]
pub type Real = f64;
/// Field scalar type — mirrors `claire_grid::Real`.
#[cfg(feature = "single")]
pub type Real = f32;

/// True when the f64 AVX2+FMA backend is compiled in for this build.
#[cfg(all(target_arch = "x86_64", not(feature = "single")))]
const AVX2_COMPILED: bool = true;
#[cfg(not(all(target_arch = "x86_64", not(feature = "single"))))]
const AVX2_COMPILED: bool = false;

#[cfg(all(target_arch = "x86_64", not(feature = "single")))]
mod avx2;
mod elem;
#[cfg(not(feature = "single"))]
pub mod f32k;
mod portable;
mod scalar;
mod vector;
#[allow(dead_code)] // wide bodies are unused by the cold f64 arm under `single`
mod xk;

pub use elem::Elem;
pub use vector::F64x4;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Once;

/// The implementation actually executing kernel calls.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar loops, bit-identical to the pre-SIMD solver.
    Scalar,
    /// AVX2+FMA vector kernels (f64 builds on x86-64 with detected support).
    Avx2,
    /// Chunked autovectorizable loops — ISA-independent wide backend.
    Portable,
}

impl Backend {
    /// Stable label used in `RunReport` and bench rows.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Portable => "portable",
        }
    }
}

/// A requested backend (what `CLAIRE_SIMD` expresses); resolves to a
/// [`Backend`] depending on what the host supports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Choice {
    /// Use AVX2 when compiled in and detected, scalar otherwise (default).
    Auto,
    /// Require AVX2; falls back to scalar with a warning if unavailable.
    Avx2,
    /// The chunked autovectorizable wide backend (always available).
    Portable,
    /// Force the portable scalar path.
    Scalar,
}

impl Choice {
    /// Parse a `CLAIRE_SIMD` value; `None` for unrecognized strings.
    pub fn parse(s: &str) -> Option<Choice> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => Some(Choice::Auto),
            "avx2" => Some(Choice::Avx2),
            "portable" => Some(Choice::Portable),
            "scalar" => Some(Choice::Scalar),
            _ => None,
        }
    }
}

/// Whether the AVX2+FMA backend can run on this host (compiled in *and*
/// detected at runtime).
pub fn avx2_available() -> bool {
    #[cfg(all(target_arch = "x86_64", not(feature = "single")))]
    {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }
    #[cfg(not(all(target_arch = "x86_64", not(feature = "single"))))]
    {
        false
    }
}

// 0 = unresolved, 1 = scalar, 2 = avx2, 3 = portable.
static BACKEND: AtomicU8 = AtomicU8::new(0);
static WARN_ONCE: Once = Once::new();

fn resolve(choice: Choice) -> Backend {
    match choice {
        Choice::Scalar => Backend::Scalar,
        Choice::Portable => Backend::Portable,
        Choice::Auto => {
            if avx2_available() {
                Backend::Avx2
            } else {
                Backend::Scalar
            }
        }
        Choice::Avx2 => {
            if avx2_available() {
                Backend::Avx2
            } else {
                WARN_ONCE.call_once(|| {
                    eprintln!(
                        "claire-simd: CLAIRE_SIMD=avx2 requested but AVX2+FMA is {} — \
                         falling back to the scalar backend",
                        if AVX2_COMPILED { "not detected on this host" } else { "not compiled in" }
                    );
                });
                Backend::Scalar
            }
        }
    }
}

fn resolve_from_env() -> Backend {
    let choice = match std::env::var("CLAIRE_SIMD") {
        Ok(v) => Choice::parse(&v).unwrap_or_else(|| {
            WARN_ONCE.call_once(|| {
                eprintln!("claire-simd: unrecognized CLAIRE_SIMD={v:?}; using auto");
            });
            Choice::Auto
        }),
        Err(_) => Choice::Auto,
    };
    let b = resolve(choice);
    BACKEND.store(b as u8 + 1, Ordering::Relaxed);
    b
}

/// The backend executing kernel calls, resolved on first use from
/// `CLAIRE_SIMD` (or from the last [`force_backend`] override) and cached.
#[inline]
pub fn active_backend() -> Backend {
    match BACKEND.load(Ordering::Relaxed) {
        1 => Backend::Scalar,
        2 => Backend::Avx2,
        3 => Backend::Portable,
        _ => resolve_from_env(),
    }
}

/// Override the dispatched backend in-process (tests / benches A/B runs).
/// `None` clears the override so the next kernel call re-reads
/// `CLAIRE_SIMD`. Takes effect for subsequent kernel calls process-wide.
pub fn force_backend(choice: Option<Choice>) {
    match choice {
        Some(c) => BACKEND.store(resolve(c) as u8 + 1, Ordering::Relaxed),
        None => BACKEND.store(0, Ordering::Relaxed),
    }
}

/// Shorthand used by every kernel wrapper: route one call to the dispatched
/// backend. The AVX2 arm only exists when compiled in; `Backend::Avx2` can
/// never be cached otherwise, so the fallthrough to scalar is unreachable
/// on those targets but keeps the match exhaustive.
macro_rules! dispatch {
    ($avx2:expr, $portable:expr, $scalar:expr) => {{
        match active_backend() {
            #[cfg(all(target_arch = "x86_64", not(feature = "single")))]
            // SAFETY: Backend::Avx2 is only ever cached after
            // `is_x86_feature_detected!("avx2")` + `("fma")` succeeded.
            Backend::Avx2 => unsafe { $avx2 },
            Backend::Portable => $portable,
            _ => $scalar,
        }
    }};
}

// ----- element-wise field kernels ---------------------------------------

/// `y[i] *= a`.
pub fn scale(a: Real, y: &mut [Real]) {
    dispatch!(avx2::scale(a, y), portable::scale(a, y), scalar::scale(a, y))
}

/// `y[i] += a · x[i]` (slices must have equal length).
pub fn axpy(a: Real, x: &[Real], y: &mut [Real]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    dispatch!(avx2::axpy(a, x, y), portable::axpy(a, x, y), scalar::axpy(a, x, y))
}

/// `y[i] = a · y[i] + x[i]` (slices must have equal length).
pub fn aypx(a: Real, x: &[Real], y: &mut [Real]) {
    assert_eq!(x.len(), y.len(), "aypx length mismatch");
    dispatch!(avx2::aypx(a, x, y), portable::aypx(a, x, y), scalar::aypx(a, x, y))
}

/// `s[i] += a · x[i] · y[i]` (slices must have equal length).
pub fn add_scaled_product(a: Real, x: &[Real], y: &[Real], s: &mut [Real]) {
    assert_eq!(x.len(), s.len(), "add_scaled_product length mismatch");
    assert_eq!(y.len(), s.len(), "add_scaled_product length mismatch");
    dispatch!(
        avx2::add_scaled_product(a, x, y, s),
        portable::add_scaled_product(a, x, y, s),
        scalar::add_scaled_product(a, x, y, s)
    )
}

// ----- fused element-wise + reduction kernels -----------------------------
//
// Each fuses a BLAS-1 update with the reduction the solver computes right
// after it, turning two passes over DRAM into one. On the scalar backend
// the fused kernel is bit-identical to its unfused pair run back to back
// (same per-element expression, same left-to-right reduction order); the
// vector backends sit under the crate's ≤1e-12 equivalence contract.

/// Fused `axpy` + self-dot: `y[i] += a · x[i]`, returning `Σ y'[i]²` of the
/// *updated* values in f64 — the residual-norm half of a PCG iteration in
/// the same pass as the residual update.
pub fn axpy_dot(a: Real, x: &[Real], y: &mut [Real]) -> f64 {
    assert_eq!(x.len(), y.len(), "axpy_dot length mismatch");
    dispatch!(avx2::axpy_dot(a, x, y), portable::axpy_dot(a, x, y), scalar::axpy_dot(a, x, y))
}

/// Fused `aypx` + self-dot: `y[i] = a · y[i] + x[i]`, returning `Σ y'[i]²`
/// of the updated values in f64 (search-direction update with its norm).
pub fn aypx_norm2(a: Real, x: &[Real], y: &mut [Real]) -> f64 {
    assert_eq!(x.len(), y.len(), "aypx_norm2 length mismatch");
    dispatch!(avx2::aypx_norm2(a, x, y), portable::aypx_norm2(a, x, y), scalar::aypx_norm2(a, x, y))
}

/// Fused scaled-add into a fresh buffer + self-dot:
/// `out[i] = a · x[i] + y[i]`, returning `Σ out[i]²` in f64. Replaces the
/// clone-then-axpy(-then-norm) multi-pass chain (line-search trials,
/// warm-start residuals) with a single read-read-write pass.
pub fn scale_add_norm(a: Real, x: &[Real], y: &[Real], out: &mut [Real]) -> f64 {
    assert_eq!(x.len(), out.len(), "scale_add_norm length mismatch");
    assert_eq!(y.len(), out.len(), "scale_add_norm length mismatch");
    dispatch!(
        avx2::scale_add_norm(a, x, y, out),
        portable::scale_add_norm(a, x, y, out),
        scalar::scale_add_norm(a, x, y, out)
    )
}

// ----- reductions (f64 accumulation regardless of `Real`) ----------------

/// `Σ x[i]·y[i]` accumulated in f64. Callers keep determinism across
/// thread counts by invoking this on fixed-size blocks (`par_sum_blocks`).
pub fn dot(x: &[Real], y: &[Real]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    dispatch!(avx2::dot(x, y), portable::dot(x, y), scalar::dot(x, y))
}

/// `Σ x[i]` accumulated in f64.
pub fn sum(x: &[Real]) -> f64 {
    dispatch!(avx2::sum(x), portable::sum(x), scalar::sum(x))
}

/// `max_i |x[i]|` as f64 (0 for an empty slice).
pub fn max_abs(x: &[Real]) -> f64 {
    dispatch!(avx2::max_abs(x), portable::max_abs(x), scalar::max_abs(x))
}

// ----- 8th-order FD stencil ----------------------------------------------

/// One contiguous row of the central-difference combine:
/// `out[k] = inv_h · Σ_m c[m] · (plus[m][k] − minus[m][k])`.
///
/// `plus[m]`/`minus[m]` are the rows at offsets `±(m+1)` along the
/// differentiated dimension; all slices must be at least `out.len()` long.
/// Serves all three dimensions of the FD8 sweep: x1/x2 rows are naturally
/// contiguous in x3, and the x3 (periodic) sweep vectorizes its interior
/// with shifted sub-slices of the same row.
pub fn fd8_combine(
    out: &mut [Real],
    plus: &[&[Real]; 4],
    minus: &[&[Real]; 4],
    c: &[Real; 4],
    inv_h: Real,
) {
    for m in 0..4 {
        assert!(plus[m].len() >= out.len(), "fd8_combine plus[{m}] too short");
        assert!(minus[m].len() >= out.len(), "fd8_combine minus[{m}] too short");
    }
    dispatch!(
        avx2::fd8_combine(out, plus, minus, c, inv_h),
        portable::fd8_combine(out, plus, minus, c, inv_h),
        scalar::fd8_combine(out, plus, minus, c, inv_h)
    )
}

/// [`fd8_combine`] with a folded output scale:
/// `out[k] = s · inv_h · Σ_m c[m] · (plus[m][k] − minus[m][k])`.
///
/// The scale costs nothing extra — `inv_h·s` is folded into the single
/// per-point multiply the unscaled kernel already performs — so a
/// derivative-then-scale chain collapses from two memory passes into one.
/// With `s == 1` every backend produces bits identical to [`fd8_combine`].
pub fn fd8_combine_scale(
    out: &mut [Real],
    plus: &[&[Real]; 4],
    minus: &[&[Real]; 4],
    c: &[Real; 4],
    inv_h: Real,
    s: Real,
) {
    for m in 0..4 {
        assert!(plus[m].len() >= out.len(), "fd8_combine_scale plus[{m}] too short");
        assert!(minus[m].len() >= out.len(), "fd8_combine_scale minus[{m}] too short");
    }
    dispatch!(
        avx2::fd8_combine_scale(out, plus, minus, c, inv_h, s),
        portable::fd8_combine_scale(out, plus, minus, c, inv_h, s),
        scalar::fd8_combine_scale(out, plus, minus, c, inv_h, s)
    )
}

// ----- cubic interpolation -----------------------------------------------

/// Cubic Lagrange basis weights at fraction `t ∈ [0,1)` for node offsets
/// `{−1, 0, 1, 2}` — the weight-evaluation half of the 64-point kernel.
pub fn lagrange_weights(t: Real) -> [Real; 4] {
    dispatch!(avx2::lagrange_weights(t), portable::lagrange_weights(t), scalar::lagrange_weights(t))
}

/// The 64-point (4×4×4) weighted accumulation of the cubic kernel on a
/// wrap-free support:
/// `Σ_{a,b,c} w1[a]·w2[b]·w3[c] · data[base + a·plane_stride + b·row_stride + c]`.
///
/// The caller guarantees the support does not cross a periodic seam in
/// x2/x3 (the seam case stays on the scalar gather path in `claire-interp`).
pub fn cubic_accumulate(
    data: &[Real],
    base: usize,
    plane_stride: usize,
    row_stride: usize,
    w1: &[Real; 4],
    w2: &[Real; 4],
    w3: &[Real; 4],
) -> Real {
    let last = base + 3 * plane_stride + 3 * row_stride;
    assert!(last + 4 <= data.len(), "cubic_accumulate support out of bounds");
    dispatch!(
        avx2::cubic_accumulate(data, base, plane_stride, row_stride, w1, w2, w3),
        portable::cubic_accumulate(data, base, plane_stride, row_stride, w1, w2, w3),
        scalar::cubic_accumulate(data, base, plane_stride, row_stride, w1, w2, w3)
    )
}

// ----- interleaved complex kernels (re,im pairs; two complexes/vector) ----

/// Element-wise complex multiply `dst[j] *= src[j]` on interleaved
/// `[re, im, re, im, …]` slices of equal even length.
pub fn cpx_mul(dst: &mut [Real], src: &[Real]) {
    assert_eq!(dst.len(), src.len(), "cpx_mul length mismatch");
    assert_eq!(dst.len() % 2, 0, "cpx_mul needs interleaved re/im pairs");
    dispatch!(avx2::cpx_mul(dst, src), portable::cpx_mul(dst, src), scalar::cpx_mul(dst, src))
}

/// Element-wise complex multiply `out[j] = a[j] · b[j]` (interleaved).
pub fn cpx_mul_into(out: &mut [Real], a: &[Real], b: &[Real]) {
    assert_eq!(out.len(), a.len(), "cpx_mul_into length mismatch");
    assert_eq!(out.len(), b.len(), "cpx_mul_into length mismatch");
    assert_eq!(out.len() % 2, 0, "cpx_mul_into needs interleaved re/im pairs");
    dispatch!(
        avx2::cpx_mul_into(out, a, b),
        portable::cpx_mul_into(out, a, b),
        scalar::cpx_mul_into(out, a, b)
    )
}

/// In-place complex conjugate of an interleaved slice.
pub fn cpx_conj(data: &mut [Real]) {
    assert_eq!(data.len() % 2, 0, "cpx_conj needs interleaved re/im pairs");
    dispatch!(avx2::cpx_conj(data), portable::cpx_conj(data), scalar::cpx_conj(data))
}

/// In-place fused conjugate-and-scale: `z[j] = conj(z[j]) · s` (interleaved)
/// — the tail of the inverse FFT (`1/n` normalization).
pub fn cpx_conj_scale(data: &mut [Real], s: Real) {
    assert_eq!(data.len() % 2, 0, "cpx_conj_scale needs interleaved re/im pairs");
    dispatch!(
        avx2::cpx_conj_scale(data, s),
        portable::cpx_conj_scale(data, s),
        scalar::cpx_conj_scale(data, s)
    )
}

/// Radix-2 DIT butterfly combine over interleaved half-spectra:
/// for each `k`, with `w = tw[k·ws]` (complex index into the global
/// twiddle table), `lo[k], hi[k] = lo[k] + w·hi[k], lo[k] − w·hi[k]`.
///
/// Uses the half-period symmetry `w_{k+m} = −w_k` of the twiddle table, so
/// only the first half of the table is read (indices `k·ws < tw.len()/2`).
pub fn cpx_radix2_combine(lo: &mut [Real], hi: &mut [Real], tw: &[Real], ws: usize) {
    assert_eq!(lo.len(), hi.len(), "cpx_radix2_combine half length mismatch");
    assert_eq!(lo.len() % 2, 0, "cpx_radix2_combine needs interleaved re/im pairs");
    let m = lo.len() / 2;
    if m > 0 {
        assert!(2 * ((m - 1) * ws) + 1 < tw.len(), "cpx_radix2_combine twiddle table too short");
    }
    dispatch!(
        avx2::cpx_radix2_combine(lo, hi, tw, ws),
        portable::cpx_radix2_combine(lo, hi, tw, ws),
        scalar::cpx_radix2_combine(lo, hi, tw, ws)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choice_parsing() {
        assert_eq!(Choice::parse("auto"), Some(Choice::Auto));
        assert_eq!(Choice::parse(""), Some(Choice::Auto));
        assert_eq!(Choice::parse("AVX2"), Some(Choice::Avx2));
        assert_eq!(Choice::parse(" scalar "), Some(Choice::Scalar));
        assert_eq!(Choice::parse("portable"), Some(Choice::Portable));
        assert_eq!(Choice::parse("neon"), None);
    }

    #[test]
    fn forced_portable_backend_sticks() {
        force_backend(Some(Choice::Portable));
        assert_eq!(active_backend(), Backend::Portable);
        assert_eq!(active_backend().label(), "portable");
        force_backend(None);
    }

    #[test]
    fn forced_scalar_backend_sticks() {
        force_backend(Some(Choice::Scalar));
        assert_eq!(active_backend(), Backend::Scalar);
        assert_eq!(active_backend().label(), "scalar");
        force_backend(None);
    }

    #[test]
    fn auto_matches_detection() {
        force_backend(Some(Choice::Auto));
        let expect = if avx2_available() { Backend::Avx2 } else { Backend::Scalar };
        assert_eq!(active_backend(), expect);
        force_backend(None);
    }

    #[test]
    fn avx2_request_never_panics() {
        force_backend(Some(Choice::Avx2));
        let b = active_backend();
        assert!(b == Backend::Avx2 || !avx2_available());
        force_backend(None);
    }

    #[test]
    fn scalar_kernels_match_reference_loops() {
        force_backend(Some(Choice::Scalar));
        let x: Vec<Real> = (0..13).map(|i| i as Real * 0.5 - 3.0).collect();
        let mut y: Vec<Real> = (0..13).map(|i| 1.0 - i as Real * 0.25).collect();
        let mut expect = y.clone();
        for (e, &xv) in expect.iter_mut().zip(&x) {
            *e += 2.5 * xv;
        }
        axpy(2.5, &x, &mut y);
        assert_eq!(y, expect);
        let d = dot(&x, &y);
        #[allow(clippy::unnecessary_cast)] // Real = f32 under `single`
        let dref: f64 = x.iter().zip(&y).map(|(&a, &b)| a as f64 * b as f64).sum();
        assert_eq!(d, dref);
        force_backend(None);
    }

    #[test]
    fn fused_scalar_kernels_bitwise_match_unfused_pairs() {
        force_backend(Some(Choice::Scalar));
        let x: Vec<Real> = (0..37).map(|i| (i as Real).sin() * 2.0 - 0.7).collect();
        let y0: Vec<Real> = (0..37).map(|i| (i as Real).cos() + 0.3).collect();

        let mut yf = y0.clone();
        let df = axpy_dot(1.5, &x, &mut yf);
        let mut yu = y0.clone();
        axpy(1.5, &x, &mut yu);
        assert_eq!(yf, yu);
        assert_eq!(df, dot(&yu, &yu));

        let mut yf = y0.clone();
        let nf = aypx_norm2(-0.25, &x, &mut yf);
        let mut yu = y0.clone();
        aypx(-0.25, &x, &mut yu);
        assert_eq!(yf, yu);
        assert_eq!(nf, dot(&yu, &yu));

        let mut of = vec![0.0 as Real; x.len()];
        let nf = scale_add_norm(0.8, &x, &y0, &mut of);
        let ou: Vec<Real> = x.iter().zip(&y0).map(|(&a, &b)| 0.8 * a + b).collect();
        assert_eq!(of, ou);
        assert_eq!(nf, dot(&ou, &ou));
        force_backend(None);
    }

    #[test]
    fn portable_fused_kernels_match_scalar_within_tolerance() {
        let x: Vec<Real> = (0..131).map(|i| (i as Real * 0.37).sin() - 0.4).collect();
        let y0: Vec<Real> = (0..131).map(|i| (i as Real * 0.11).cos() * 1.5).collect();

        force_backend(Some(Choice::Scalar));
        let mut ys = y0.clone();
        let ds = axpy_dot(1.25, &x, &mut ys);
        force_backend(Some(Choice::Portable));
        let mut yp = y0.clone();
        let dp = axpy_dot(1.25, &x, &mut yp);
        force_backend(None);

        for (a, b) in ys.iter().zip(&yp) {
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "{a} vs {b}");
        }
        assert!((ds - dp).abs() <= 1e-12 * ds.abs().max(1.0), "{ds} vs {dp}");
    }

    #[test]
    fn fd8_combine_scale_with_unit_scale_matches_unscaled() {
        force_backend(Some(Choice::Scalar));
        let n = 24;
        let rows: Vec<Vec<Real>> =
            (0..8).map(|m| (0..n).map(|k| ((m * n + k) as Real * 0.13).sin()).collect()).collect();
        let plus = [&rows[0][..], &rows[1][..], &rows[2][..], &rows[3][..]];
        let minus = [&rows[4][..], &rows[5][..], &rows[6][..], &rows[7][..]];
        let c = [0.8 as Real, -0.2, 0.038, -0.0035];
        let mut a = vec![0.0 as Real; n];
        let mut b = vec![0.0 as Real; n];
        fd8_combine(&mut a, &plus, &minus, &c, 3.5);
        fd8_combine_scale(&mut b, &plus, &minus, &c, 3.5, 1.0);
        assert_eq!(a, b);
        force_backend(None);
    }
}
