//! The precision seam: a field element type the solver's generic hot path
//! can be instantiated over.
//!
//! [`Elem`] is implemented for exactly `f64` and `f32`. Whichever width
//! equals [`crate::Real`] routes through the crate's primary dispatched
//! kernels (bit-identical to the monomorphic path — the f64 mode of the
//! mixed-precision solver must reproduce historical results exactly); the
//! other width routes through its own dispatched arms (`f32k` in a default
//! build) or, for the cold f64-under-`single` combination, the scalar
//! reference loops.
//!
//! Reductions return `f64` for every element width — PCG's convergence
//! logic, Armijo decisions, and reported norms stay in double even when the
//! vectors they summarize are stored in single (the mixed-precision design
//! of the companion GPU work: f32 storage + wire traffic, f64 control flow).

use core::fmt::{Debug, Display};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A scalar field element the solver core can be generic over (f64 | f32).
///
/// The `k*` associated functions mirror the crate's free kernel functions
/// one-for-one (same contracts, same asserts via the delegated target) and
/// dispatch over the same process-wide backend choice.
pub trait Elem:
    Copy
    + Send
    + Sync
    + 'static
    + Default
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Storage size in bytes (8 | 4) — feeds pool accounting, comm payload
    /// sizing, and the roofline bytes model.
    const BYTES: usize;
    /// Stable label for reports and bench rows (`"f64"` | `"f32"`).
    const LABEL: &'static str;

    /// Demote/convert from f64 (identity for f64).
    fn from_f64(x: f64) -> Self;
    /// Promote to f64 (exact for both widths).
    fn to_f64(self) -> f64;

    /// `y[i] *= a`.
    fn kscale(a: Self, y: &mut [Self]);
    /// `y[i] += a · x[i]`.
    fn kaxpy(a: Self, x: &[Self], y: &mut [Self]);
    /// `y[i] = a · y[i] + x[i]`.
    fn kaypx(a: Self, x: &[Self], y: &mut [Self]);
    /// `s[i] += a · x[i] · y[i]`.
    fn kadd_scaled_product(a: Self, x: &[Self], y: &[Self], s: &mut [Self]);
    /// Fused `axpy` + self-dot of the updated values (f64 accumulation).
    fn kaxpy_dot(a: Self, x: &[Self], y: &mut [Self]) -> f64;
    /// Fused `aypx` + self-dot of the updated values (f64 accumulation).
    fn kaypx_norm2(a: Self, x: &[Self], y: &mut [Self]) -> f64;
    /// `out[i] = a · x[i] + y[i]` + self-dot (f64 accumulation).
    fn kscale_add_norm(a: Self, x: &[Self], y: &[Self], out: &mut [Self]) -> f64;
    /// `Σ x[i]·y[i]` in f64.
    fn kdot(x: &[Self], y: &[Self]) -> f64;
    /// `Σ x[i]` in f64.
    fn ksum(x: &[Self]) -> f64;
    /// `max |x[i]|` in f64.
    fn kmax_abs(x: &[Self]) -> f64;
    /// Interleaved complex `dst[j] *= src[j]`.
    fn kcpx_mul(dst: &mut [Self], src: &[Self]);
    /// Interleaved complex `out[j] = a[j] · b[j]`.
    fn kcpx_mul_into(out: &mut [Self], a: &[Self], b: &[Self]);
    /// Interleaved complex conjugate in place.
    fn kcpx_conj(data: &mut [Self]);
    /// Interleaved fused conjugate-and-scale.
    fn kcpx_conj_scale(data: &mut [Self], s: Self);
    /// Radix-2 DIT butterfly combine over interleaved half-spectra.
    fn kcpx_radix2_combine(lo: &mut [Self], hi: &mut [Self], tw: &[Self], ws: usize);
}

macro_rules! delegate_elem {
    ($t:ty, $bytes:expr, $label:expr, $path:path) => {
        impl Elem for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const BYTES: usize = $bytes;
            const LABEL: &'static str = $label;

            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }

            #[inline]
            fn kscale(a: Self, y: &mut [Self]) {
                use $path as k;
                k::scale(a, y)
            }
            #[inline]
            fn kaxpy(a: Self, x: &[Self], y: &mut [Self]) {
                use $path as k;
                k::axpy(a, x, y)
            }
            #[inline]
            fn kaypx(a: Self, x: &[Self], y: &mut [Self]) {
                use $path as k;
                k::aypx(a, x, y)
            }
            #[inline]
            fn kadd_scaled_product(a: Self, x: &[Self], y: &[Self], s: &mut [Self]) {
                use $path as k;
                k::add_scaled_product(a, x, y, s)
            }
            #[inline]
            fn kaxpy_dot(a: Self, x: &[Self], y: &mut [Self]) -> f64 {
                use $path as k;
                k::axpy_dot(a, x, y)
            }
            #[inline]
            fn kaypx_norm2(a: Self, x: &[Self], y: &mut [Self]) -> f64 {
                use $path as k;
                k::aypx_norm2(a, x, y)
            }
            #[inline]
            fn kscale_add_norm(a: Self, x: &[Self], y: &[Self], out: &mut [Self]) -> f64 {
                use $path as k;
                k::scale_add_norm(a, x, y, out)
            }
            #[inline]
            fn kdot(x: &[Self], y: &[Self]) -> f64 {
                use $path as k;
                k::dot(x, y)
            }
            #[inline]
            fn ksum(x: &[Self]) -> f64 {
                use $path as k;
                k::sum(x)
            }
            #[inline]
            fn kmax_abs(x: &[Self]) -> f64 {
                use $path as k;
                k::max_abs(x)
            }
            #[inline]
            fn kcpx_mul(dst: &mut [Self], src: &[Self]) {
                use $path as k;
                k::cpx_mul(dst, src)
            }
            #[inline]
            fn kcpx_mul_into(out: &mut [Self], a: &[Self], b: &[Self]) {
                use $path as k;
                k::cpx_mul_into(out, a, b)
            }
            #[inline]
            fn kcpx_conj(data: &mut [Self]) {
                use $path as k;
                k::cpx_conj(data)
            }
            #[inline]
            fn kcpx_conj_scale(data: &mut [Self], s: Self) {
                use $path as k;
                k::cpx_conj_scale(data, s)
            }
            #[inline]
            fn kcpx_radix2_combine(lo: &mut [Self], hi: &mut [Self], tw: &[Self], ws: usize) {
                use $path as k;
                k::cpx_radix2_combine(lo, hi, tw, ws)
            }
        }
    };
}

/// Re-export shim so `delegate_elem!` can target the crate-level `Real`
/// kernels through a plain module path.
mod real_k {
    pub use crate::{
        add_scaled_product, axpy, axpy_dot, aypx, aypx_norm2, cpx_conj, cpx_conj_scale, cpx_mul,
        cpx_mul_into, cpx_radix2_combine, dot, max_abs, scale, scale_add_norm, sum,
    };
}

// Default build: f64 is `Real` (primary dispatched kernels), f32 gets its
// own dispatched arms.
#[cfg(not(feature = "single"))]
delegate_elem!(f64, 8, "f64", self::real_k);
#[cfg(not(feature = "single"))]
delegate_elem!(f32, 4, "f32", crate::f32k);

// `single` build: f32 is `Real`; f64 is the cold off-width (scalar
// reference loops — nothing in the single-precision hot path uses it).
#[cfg(feature = "single")]
delegate_elem!(f32, 4, "f32", self::real_k);

#[cfg(feature = "single")]
mod f64_cold {
    //! Scalar-only arms for the f64 off-width under the `single` feature,
    //! shaped like a kernel module so `delegate_elem!` can target it.
    use crate::xk;

    pub fn scale(a: f64, y: &mut [f64]) {
        xk::scalar_scale(a, y)
    }
    pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), y.len(), "axpy length mismatch");
        xk::scalar_axpy(a, x, y)
    }
    pub fn aypx(a: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), y.len(), "aypx length mismatch");
        xk::scalar_aypx(a, x, y)
    }
    pub fn add_scaled_product(a: f64, x: &[f64], y: &[f64], s: &mut [f64]) {
        assert_eq!(x.len(), s.len(), "add_scaled_product length mismatch");
        assert_eq!(y.len(), s.len(), "add_scaled_product length mismatch");
        xk::scalar_add_scaled_product(a, x, y, s)
    }
    pub fn axpy_dot(a: f64, x: &[f64], y: &mut [f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "axpy_dot length mismatch");
        xk::scalar_axpy_dot(a, x, y)
    }
    pub fn aypx_norm2(a: f64, x: &[f64], y: &mut [f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "aypx_norm2 length mismatch");
        xk::scalar_aypx_norm2(a, x, y)
    }
    pub fn scale_add_norm(a: f64, x: &[f64], y: &[f64], out: &mut [f64]) -> f64 {
        assert_eq!(x.len(), out.len(), "scale_add_norm length mismatch");
        assert_eq!(y.len(), out.len(), "scale_add_norm length mismatch");
        xk::scalar_scale_add_norm(a, x, y, out)
    }
    pub fn dot(x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "dot length mismatch");
        xk::scalar_dot(x, y)
    }
    pub fn sum(x: &[f64]) -> f64 {
        xk::scalar_sum(x)
    }
    pub fn max_abs(x: &[f64]) -> f64 {
        xk::scalar_max_abs(x)
    }
    pub fn cpx_mul(dst: &mut [f64], src: &[f64]) {
        assert_eq!(dst.len(), src.len(), "cpx_mul length mismatch");
        assert_eq!(dst.len() % 2, 0, "cpx_mul needs interleaved re/im pairs");
        xk::scalar_cpx_mul(dst, src)
    }
    pub fn cpx_mul_into(out: &mut [f64], a: &[f64], b: &[f64]) {
        assert_eq!(out.len(), a.len(), "cpx_mul_into length mismatch");
        assert_eq!(out.len(), b.len(), "cpx_mul_into length mismatch");
        assert_eq!(out.len() % 2, 0, "cpx_mul_into needs interleaved re/im pairs");
        xk::scalar_cpx_mul_into(out, a, b)
    }
    pub fn cpx_conj(data: &mut [f64]) {
        assert_eq!(data.len() % 2, 0, "cpx_conj needs interleaved re/im pairs");
        xk::scalar_cpx_conj(data)
    }
    pub fn cpx_conj_scale(data: &mut [f64], s: f64) {
        assert_eq!(data.len() % 2, 0, "cpx_conj_scale needs interleaved re/im pairs");
        xk::scalar_cpx_conj_scale(data, s)
    }
    pub fn cpx_radix2_combine(lo: &mut [f64], hi: &mut [f64], tw: &[f64], ws: usize) {
        assert_eq!(lo.len(), hi.len(), "cpx_radix2_combine half length mismatch");
        assert_eq!(lo.len() % 2, 0, "cpx_radix2_combine needs interleaved re/im pairs");
        let m = lo.len() / 2;
        if m > 0 {
            assert!(
                2 * ((m - 1) * ws) + 1 < tw.len(),
                "cpx_radix2_combine twiddle table too short"
            );
        }
        xk::scalar_cpx_radix2_combine(lo, hi, tw, ws)
    }
}

#[cfg(feature = "single")]
delegate_elem!(f64, 8, "f64", self::f64_cold);

#[cfg(test)]
mod tests {
    use super::*;

    fn l2_generic<T: Elem>(v: &[T]) -> f64 {
        T::kdot(v, v).sqrt()
    }

    #[test]
    fn elem_consts_and_conversions() {
        assert_eq!(<f64 as Elem>::BYTES, 8);
        assert_eq!(<f32 as Elem>::BYTES, 4);
        assert_eq!(<f64 as Elem>::LABEL, "f64");
        assert_eq!(<f32 as Elem>::LABEL, "f32");
        assert_eq!(<f32 as Elem>::from_f64(1.5).to_f64(), 1.5);
        assert_eq!(<f64 as Elem>::from_f64(-2.25), -2.25);
    }

    #[test]
    fn generic_kernels_agree_across_widths() {
        let xs64: Vec<f64> = (0..57).map(|i| (i as f64 * 0.21).sin()).collect();
        let xs32: Vec<f32> = xs64.iter().map(|&v| v as f32).collect();
        let n64 = l2_generic(&xs64);
        let n32 = l2_generic(&xs32);
        assert!((n64 - n32).abs() <= 1e-5 * n64.max(1.0), "{n64} vs {n32}");

        let mut y64 = vec![0.5f64; 57];
        let mut y32 = vec![0.5f32; 57];
        let d64 = <f64 as Elem>::kaxpy_dot(2.0, &xs64, &mut y64);
        let d32 = <f32 as Elem>::kaxpy_dot(2.0, &xs32, &mut y32);
        assert!((d64 - d32).abs() <= 1e-4 * d64.abs().max(1.0), "{d64} vs {d32}");
    }

    #[test]
    fn real_width_elem_is_bit_identical_to_primary_kernels() {
        use crate::Real;
        let x: Vec<Real> = (0..41).map(|i| (i as Real * 0.13).cos()).collect();
        let mut ya: Vec<Real> = (0..41).map(|i| i as Real * 0.01 - 0.2).collect();
        let mut yb = ya.clone();
        let da = <Real as Elem>::kaxpy_dot(1.75, &x, &mut ya);
        let db = crate::axpy_dot(1.75, &x, &mut yb);
        assert_eq!(ya, yb);
        assert_eq!(da, db);
    }
}
