//! Portable scalar fallback — the reference semantics of every kernel.
//!
//! These loops reproduce the pre-SIMD solver's operation order exactly
//! (separate multiply and add, left-to-right accumulation), so the scalar
//! backend is bit-identical to the historical code and serves as the
//! reference side of the ≤1e-12 SIMD equivalence contract.

// `Real as f64` is a real conversion under the `single` (f32) feature and
// an identity cast in the default build — keep the cast either way.
#![allow(clippy::unnecessary_cast)]

use crate::Real;

pub fn scale(a: Real, y: &mut [Real]) {
    for v in y {
        *v *= a;
    }
}

pub fn axpy(a: Real, x: &[Real], y: &mut [Real]) {
    for (v, &xv) in y.iter_mut().zip(x) {
        *v += a * xv;
    }
}

pub fn aypx(a: Real, x: &[Real], y: &mut [Real]) {
    for (v, &xv) in y.iter_mut().zip(x) {
        *v = a * *v + xv;
    }
}

pub fn add_scaled_product(a: Real, x: &[Real], y: &[Real], s: &mut [Real]) {
    for (i, v) in s.iter_mut().enumerate() {
        *v += a * x[i] * y[i];
    }
}

// Fused single-pass variants: the per-element update is the same
// expression as the unfused kernel and the reduction visits the updated
// values left to right, so each fused scalar kernel is bit-identical to
// running its unfused pair (update, then `dot`/norm) back to back.

pub fn axpy_dot(a: Real, x: &[Real], y: &mut [Real]) -> f64 {
    let mut acc = 0.0f64;
    for (v, &xv) in y.iter_mut().zip(x) {
        *v += a * xv;
        acc += *v as f64 * *v as f64;
    }
    acc
}

pub fn aypx_norm2(a: Real, x: &[Real], y: &mut [Real]) -> f64 {
    let mut acc = 0.0f64;
    for (v, &xv) in y.iter_mut().zip(x) {
        *v = a * *v + xv;
        acc += *v as f64 * *v as f64;
    }
    acc
}

pub fn scale_add_norm(a: Real, x: &[Real], y: &[Real], out: &mut [Real]) -> f64 {
    let mut acc = 0.0f64;
    for (i, v) in out.iter_mut().enumerate() {
        *v = a * x[i] + y[i];
        acc += *v as f64 * *v as f64;
    }
    acc
}

pub fn dot(x: &[Real], y: &[Real]) -> f64 {
    x.iter().zip(y).map(|(&a, &b)| a as f64 * b as f64).sum()
}

pub fn sum(x: &[Real]) -> f64 {
    x.iter().map(|&v| v as f64).sum()
}

pub fn max_abs(x: &[Real]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max((v as f64).abs()))
}

pub fn fd8_combine(
    out: &mut [Real],
    plus: &[&[Real]; 4],
    minus: &[&[Real]; 4],
    c: &[Real; 4],
    inv_h: Real,
) {
    for (k, ov) in out.iter_mut().enumerate() {
        let mut acc = 0.0 as Real;
        for (m, &cm) in c.iter().enumerate() {
            acc += cm * (plus[m][k] - minus[m][k]);
        }
        *ov = acc * inv_h;
    }
}

pub fn fd8_combine_scale(
    out: &mut [Real],
    plus: &[&[Real]; 4],
    minus: &[&[Real]; 4],
    c: &[Real; 4],
    inv_h: Real,
    s: Real,
) {
    // `inv_h·s` folds once up front; with `s == 1` the product is exactly
    // `inv_h`, so the unscaled kernel can delegate here bit-identically.
    let ihs = inv_h * s;
    for (k, ov) in out.iter_mut().enumerate() {
        let mut acc = 0.0 as Real;
        for (m, &cm) in c.iter().enumerate() {
            acc += cm * (plus[m][k] - minus[m][k]);
        }
        *ov = acc * ihs;
    }
}

pub fn lagrange_weights(t: Real) -> [Real; 4] {
    let t1 = t - 1.0;
    let t2 = t - 2.0;
    let tp = t + 1.0;
    [-t * t1 * t2 / 6.0, tp * t1 * t2 / 2.0, -tp * t * t2 / 2.0, tp * t * t1 / 6.0]
}

pub fn cubic_accumulate(
    data: &[Real],
    base: usize,
    plane_stride: usize,
    row_stride: usize,
    w1: &[Real; 4],
    w2: &[Real; 4],
    w3: &[Real; 4],
) -> Real {
    let mut acc = 0.0 as Real;
    for (a, &wa) in w1.iter().enumerate() {
        let pa = base + a * plane_stride;
        for (b, &wb) in w2.iter().enumerate() {
            let wab = wa * wb;
            let row = &data[pa + b * row_stride..pa + b * row_stride + 4];
            for (c, &wc) in w3.iter().enumerate() {
                acc += wab * wc * row[c];
            }
        }
    }
    acc
}

pub fn cpx_mul(dst: &mut [Real], src: &[Real]) {
    for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
        let (ar, ai) = (d[0], d[1]);
        let (br, bi) = (s[0], s[1]);
        d[0] = ar * br - ai * bi;
        d[1] = ar * bi + ai * br;
    }
}

pub fn cpx_mul_into(out: &mut [Real], a: &[Real], b: &[Real]) {
    for ((o, x), y) in out.chunks_exact_mut(2).zip(a.chunks_exact(2)).zip(b.chunks_exact(2)) {
        let (ar, ai) = (x[0], x[1]);
        let (br, bi) = (y[0], y[1]);
        o[0] = ar * br - ai * bi;
        o[1] = ar * bi + ai * br;
    }
}

pub fn cpx_conj(data: &mut [Real]) {
    for z in data.chunks_exact_mut(2) {
        z[1] = -z[1];
    }
}

pub fn cpx_conj_scale(data: &mut [Real], s: Real) {
    for z in data.chunks_exact_mut(2) {
        z[0] *= s;
        z[1] = -z[1] * s;
    }
}

pub fn cpx_radix2_combine(lo: &mut [Real], hi: &mut [Real], tw: &[Real], ws: usize) {
    let m = lo.len() / 2;
    for k in 0..m {
        let (wr, wi) = (tw[2 * k * ws], tw[2 * k * ws + 1]);
        let (t0r, t0i) = (lo[2 * k], lo[2 * k + 1]);
        let (t1r, t1i) = (hi[2 * k], hi[2 * k + 1]);
        let xr = wr * t1r - wi * t1i;
        let xi = wr * t1i + wi * t1r;
        lo[2 * k] = t0r + xr;
        lo[2 * k + 1] = t0i + xi;
        hi[2 * k] = t0r - xr;
        hi[2 * k + 1] = t0i - xi;
    }
}
