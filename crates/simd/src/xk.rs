//! Cross-precision kernel bodies shared by the non-`Real` element type.
//!
//! The crate's primary kernel surface (`scale`, `axpy_dot`, `cpx_mul`, …)
//! is monomorphic over [`crate::Real`]. The mixed-precision solver core
//! additionally needs the *other* width — f32 in a default build, f64 under
//! the `single` feature — so the loop bodies live here once, generic over
//! [`Xs`], and are instantiated per width by the dispatch wrappers in
//! `lib.rs` (`f32k`) and by the [`crate::Elem`] impls.
//!
//! Loop shapes deliberately mirror the monomorphic backends:
//!
//! * `scalar_*` reproduces `scalar.rs` exactly (same per-element
//!   expressions, same left-to-right reduction order, f64 accumulation);
//! * `wide_*` reproduces `portable.rs` — `LANES = 8` chunks with the fixed
//!   fold shape `((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))` and a scalar
//!   remainder — so every width keeps the determinism contract: results
//!   depend only on input values and the selected backend, never on thread
//!   count or allocation state.
//!
//! The AVX2 arm for f32 is *these same wide bodies* compiled under
//! `#[target_feature(enable = "avx2,fma")]` (see `f32k` in `lib.rs`): the
//! bodies are `#[inline(always)]`, so they inline into the feature-gated
//! wrapper and autovectorize at the full 8-lane f32 width.

/// Scalar widths the cross-precision kernels are generic over.
pub(crate) trait Xs:
    Copy
    + PartialOrd
    + core::ops::Add<Output = Self>
    + core::ops::Sub<Output = Self>
    + core::ops::Mul<Output = Self>
    + core::ops::Div<Output = Self>
    + core::ops::Neg<Output = Self>
    + core::ops::AddAssign
    + core::ops::MulAssign
{
    const ZERO: Self;
    const ONE: Self;
    fn f64(self) -> f64;
    fn of(x: f64) -> Self;
}

impl Xs for f32 {
    const ZERO: f32 = 0.0;
    const ONE: f32 = 1.0;
    #[inline(always)]
    fn f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn of(x: f64) -> f32 {
        x as f32
    }
}

impl Xs for f64 {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    #[inline(always)]
    fn f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn of(x: f64) -> f64 {
        x
    }
}

// ----- scalar reference loops (mirror scalar.rs) --------------------------

#[inline(always)]
pub(crate) fn scalar_scale<T: Xs>(a: T, y: &mut [T]) {
    for v in y {
        *v *= a;
    }
}

#[inline(always)]
pub(crate) fn scalar_axpy<T: Xs>(a: T, x: &[T], y: &mut [T]) {
    for (v, &xv) in y.iter_mut().zip(x) {
        *v += a * xv;
    }
}

#[inline(always)]
pub(crate) fn scalar_aypx<T: Xs>(a: T, x: &[T], y: &mut [T]) {
    for (v, &xv) in y.iter_mut().zip(x) {
        *v = a * *v + xv;
    }
}

#[inline(always)]
pub(crate) fn scalar_add_scaled_product<T: Xs>(a: T, x: &[T], y: &[T], s: &mut [T]) {
    for ((sv, &xv), &yv) in s.iter_mut().zip(x).zip(y) {
        *sv += a * xv * yv;
    }
}

#[inline(always)]
pub(crate) fn scalar_axpy_dot<T: Xs>(a: T, x: &[T], y: &mut [T]) -> f64 {
    let mut acc = 0.0f64;
    for (v, &xv) in y.iter_mut().zip(x) {
        *v += a * xv;
        acc += v.f64() * v.f64();
    }
    acc
}

#[inline(always)]
pub(crate) fn scalar_aypx_norm2<T: Xs>(a: T, x: &[T], y: &mut [T]) -> f64 {
    let mut acc = 0.0f64;
    for (v, &xv) in y.iter_mut().zip(x) {
        *v = a * *v + xv;
        acc += v.f64() * v.f64();
    }
    acc
}

#[inline(always)]
pub(crate) fn scalar_scale_add_norm<T: Xs>(a: T, x: &[T], y: &[T], out: &mut [T]) -> f64 {
    let mut acc = 0.0f64;
    for ((o, &xv), &yv) in out.iter_mut().zip(x).zip(y) {
        *o = a * xv + yv;
        acc += o.f64() * o.f64();
    }
    acc
}

#[inline(always)]
pub(crate) fn scalar_dot<T: Xs>(x: &[T], y: &[T]) -> f64 {
    let mut acc = 0.0f64;
    for (&a, &b) in x.iter().zip(y) {
        acc += a.f64() * b.f64();
    }
    acc
}

#[inline(always)]
pub(crate) fn scalar_sum<T: Xs>(x: &[T]) -> f64 {
    let mut acc = 0.0f64;
    for &v in x {
        acc += v.f64();
    }
    acc
}

#[inline(always)]
pub(crate) fn scalar_max_abs<T: Xs>(x: &[T]) -> f64 {
    let mut m = 0.0f64;
    for &v in x {
        let a = v.f64().abs();
        if a > m {
            m = a;
        }
    }
    m
}

#[inline(always)]
pub(crate) fn scalar_fd8_combine_scale<T: Xs>(
    out: &mut [T],
    plus: &[&[T]; 4],
    minus: &[&[T]; 4],
    c: &[T; 4],
    inv_h: T,
    s: T,
) {
    let ihs = inv_h * s;
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = c[0] * (plus[0][k] - minus[0][k]);
        acc += c[1] * (plus[1][k] - minus[1][k]);
        acc += c[2] * (plus[2][k] - minus[2][k]);
        acc += c[3] * (plus[3][k] - minus[3][k]);
        *o = acc * ihs;
    }
}

#[inline(always)]
pub(crate) fn scalar_lagrange_weights<T: Xs>(t: T) -> [T; 4] {
    let t1 = t - T::ONE;
    let t2 = t - T::of(2.0);
    let tp = t + T::ONE;
    [
        -t * t1 * t2 / T::of(6.0),
        tp * t1 * t2 / T::of(2.0),
        -tp * t * t2 / T::of(2.0),
        tp * t * t1 / T::of(6.0),
    ]
}

#[inline(always)]
pub(crate) fn scalar_cubic_accumulate<T: Xs>(
    data: &[T],
    base: usize,
    plane_stride: usize,
    row_stride: usize,
    w1: &[T; 4],
    w2: &[T; 4],
    w3: &[T; 4],
) -> T {
    let mut acc = T::ZERO;
    for (a, &wa) in w1.iter().enumerate() {
        let pa = base + a * plane_stride;
        for (b, &wb) in w2.iter().enumerate() {
            let row = &data[pa + b * row_stride..pa + b * row_stride + 4];
            let wab = wa * wb;
            acc += wab * (w3[0] * row[0] + w3[1] * row[1] + w3[2] * row[2] + w3[3] * row[3]);
        }
    }
    acc
}

#[inline(always)]
pub(crate) fn scalar_cpx_mul<T: Xs>(dst: &mut [T], src: &[T]) {
    for (d, s) in dst.chunks_exact_mut(2).zip(src.chunks_exact(2)) {
        let (ar, ai) = (d[0], d[1]);
        let (br, bi) = (s[0], s[1]);
        d[0] = ar * br - ai * bi;
        d[1] = ar * bi + ai * br;
    }
}

#[inline(always)]
pub(crate) fn scalar_cpx_mul_into<T: Xs>(out: &mut [T], a: &[T], b: &[T]) {
    for ((o, x), y) in out.chunks_exact_mut(2).zip(a.chunks_exact(2)).zip(b.chunks_exact(2)) {
        let (ar, ai) = (x[0], x[1]);
        let (br, bi) = (y[0], y[1]);
        o[0] = ar * br - ai * bi;
        o[1] = ar * bi + ai * br;
    }
}

#[inline(always)]
pub(crate) fn scalar_cpx_conj<T: Xs>(data: &mut [T]) {
    for z in data.chunks_exact_mut(2) {
        z[1] = -z[1];
    }
}

#[inline(always)]
pub(crate) fn scalar_cpx_conj_scale<T: Xs>(data: &mut [T], s: T) {
    for z in data.chunks_exact_mut(2) {
        z[0] *= s;
        z[1] = -z[1] * s;
    }
}

#[inline(always)]
pub(crate) fn scalar_cpx_radix2_combine<T: Xs>(lo: &mut [T], hi: &mut [T], tw: &[T], ws: usize) {
    let m = lo.len() / 2;
    for k in 0..m {
        let (wr, wi) = (tw[2 * k * ws], tw[2 * k * ws + 1]);
        let (t0r, t0i) = (lo[2 * k], lo[2 * k + 1]);
        let (t1r, t1i) = (hi[2 * k], hi[2 * k + 1]);
        let xr = wr * t1r - wi * t1i;
        let xi = wr * t1i + wi * t1r;
        lo[2 * k] = t0r + xr;
        lo[2 * k + 1] = t0i + xi;
        hi[2 * k] = t0r - xr;
        hi[2 * k + 1] = t0i - xi;
    }
}

// ----- wide chunked loops (mirror portable.rs) ----------------------------

pub(crate) const LANES: usize = 8;

/// Fixed-shape fold of 8 f64 partials; matches `portable::fold_sum`.
#[inline(always)]
fn fold_sum(acc: [f64; LANES]) -> f64 {
    ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
}

#[inline(always)]
fn fold_max(acc: [f64; LANES]) -> f64 {
    let a = acc[0].max(acc[4]).max(acc[2].max(acc[6]));
    let b = acc[1].max(acc[5]).max(acc[3].max(acc[7]));
    a.max(b)
}

#[inline(always)]
fn split<T>(x: &[T]) -> (&[T], &[T]) {
    x.split_at(x.len() - x.len() % LANES)
}

#[inline(always)]
fn split_mut<T>(x: &mut [T]) -> (&mut [T], &mut [T]) {
    let n = x.len();
    x.split_at_mut(n - n % LANES)
}

#[inline(always)]
pub(crate) fn wide_scale<T: Xs>(a: T, y: &mut [T]) {
    let (body, tail) = split_mut(y);
    for c in body.chunks_exact_mut(LANES) {
        for v in c {
            *v *= a;
        }
    }
    scalar_scale(a, tail);
}

#[inline(always)]
pub(crate) fn wide_axpy<T: Xs>(a: T, x: &[T], y: &mut [T]) {
    let (xb, xt) = split(x);
    let (yb, yt) = split_mut(y);
    for (yc, xc) in yb.chunks_exact_mut(LANES).zip(xb.chunks_exact(LANES)) {
        for (v, &xv) in yc.iter_mut().zip(xc) {
            *v += a * xv;
        }
    }
    scalar_axpy(a, xt, yt);
}

#[inline(always)]
pub(crate) fn wide_aypx<T: Xs>(a: T, x: &[T], y: &mut [T]) {
    let (xb, xt) = split(x);
    let (yb, yt) = split_mut(y);
    for (yc, xc) in yb.chunks_exact_mut(LANES).zip(xb.chunks_exact(LANES)) {
        for (v, &xv) in yc.iter_mut().zip(xc) {
            *v = a * *v + xv;
        }
    }
    scalar_aypx(a, xt, yt);
}

#[inline(always)]
pub(crate) fn wide_add_scaled_product<T: Xs>(a: T, x: &[T], y: &[T], s: &mut [T]) {
    let (xb, xt) = split(x);
    let (yb, yt) = split(y);
    let (sb, st) = split_mut(s);
    for ((sc, xc), yc) in
        sb.chunks_exact_mut(LANES).zip(xb.chunks_exact(LANES)).zip(yb.chunks_exact(LANES))
    {
        for ((sv, &xv), &yv) in sc.iter_mut().zip(xc).zip(yc) {
            *sv += a * xv * yv;
        }
    }
    scalar_add_scaled_product(a, xt, yt, st);
}

#[inline(always)]
pub(crate) fn wide_axpy_dot<T: Xs>(a: T, x: &[T], y: &mut [T]) -> f64 {
    let (xb, xt) = split(x);
    let (yb, yt) = split_mut(y);
    let mut acc = [0.0f64; LANES];
    for (yc, xc) in yb.chunks_exact_mut(LANES).zip(xb.chunks_exact(LANES)) {
        for ((v, &xv), l) in yc.iter_mut().zip(xc).zip(acc.iter_mut()) {
            *v += a * xv;
            *l += v.f64() * v.f64();
        }
    }
    fold_sum(acc) + scalar_axpy_dot(a, xt, yt)
}

#[inline(always)]
pub(crate) fn wide_aypx_norm2<T: Xs>(a: T, x: &[T], y: &mut [T]) -> f64 {
    let (xb, xt) = split(x);
    let (yb, yt) = split_mut(y);
    let mut acc = [0.0f64; LANES];
    for (yc, xc) in yb.chunks_exact_mut(LANES).zip(xb.chunks_exact(LANES)) {
        for ((v, &xv), l) in yc.iter_mut().zip(xc).zip(acc.iter_mut()) {
            *v = a * *v + xv;
            *l += v.f64() * v.f64();
        }
    }
    let mut r = fold_sum(acc);
    r += scalar_aypx_norm2(a, xt, yt);
    r
}

#[inline(always)]
pub(crate) fn wide_scale_add_norm<T: Xs>(a: T, x: &[T], y: &[T], out: &mut [T]) -> f64 {
    let (xb, xt) = split(x);
    let (yb, yt) = split(y);
    let (ob, ot) = split_mut(out);
    let mut acc = [0.0f64; LANES];
    for ((oc, xc), yc) in
        ob.chunks_exact_mut(LANES).zip(xb.chunks_exact(LANES)).zip(yb.chunks_exact(LANES))
    {
        for (((o, &xv), &yv), l) in oc.iter_mut().zip(xc).zip(yc).zip(acc.iter_mut()) {
            *o = a * xv + yv;
            *l += o.f64() * o.f64();
        }
    }
    fold_sum(acc) + scalar_scale_add_norm(a, xt, yt, ot)
}

#[inline(always)]
pub(crate) fn wide_dot<T: Xs>(x: &[T], y: &[T]) -> f64 {
    let (xb, xt) = split(x);
    let (yb, yt) = split(y);
    let mut acc = [0.0f64; LANES];
    for (xc, yc) in xb.chunks_exact(LANES).zip(yb.chunks_exact(LANES)) {
        for ((&a, &b), l) in xc.iter().zip(yc).zip(acc.iter_mut()) {
            *l += a.f64() * b.f64();
        }
    }
    fold_sum(acc) + scalar_dot(xt, yt)
}

#[inline(always)]
pub(crate) fn wide_sum<T: Xs>(x: &[T]) -> f64 {
    let (xb, xt) = split(x);
    let mut acc = [0.0f64; LANES];
    for xc in xb.chunks_exact(LANES) {
        for (&v, l) in xc.iter().zip(acc.iter_mut()) {
            *l += v.f64();
        }
    }
    fold_sum(acc) + scalar_sum(xt)
}

#[inline(always)]
pub(crate) fn wide_max_abs<T: Xs>(x: &[T]) -> f64 {
    let (xb, xt) = split(x);
    let mut acc = [0.0f64; LANES];
    for xc in xb.chunks_exact(LANES) {
        for (&v, l) in xc.iter().zip(acc.iter_mut()) {
            let a = v.f64().abs();
            if a > *l {
                *l = a;
            }
        }
    }
    fold_max(acc).max(scalar_max_abs(xt))
}

#[inline(always)]
pub(crate) fn wide_fd8_combine_scale<T: Xs>(
    out: &mut [T],
    plus: &[&[T]; 4],
    minus: &[&[T]; 4],
    c: &[T; 4],
    inv_h: T,
    s: T,
) {
    let ihs = inv_h * s;
    let n = out.len();
    let body = n - n % LANES;
    let mut k = 0;
    while k < body {
        for j in 0..LANES {
            let i = k + j;
            let mut acc = c[0] * (plus[0][i] - minus[0][i]);
            acc += c[1] * (plus[1][i] - minus[1][i]);
            acc += c[2] * (plus[2][i] - minus[2][i]);
            acc += c[3] * (plus[3][i] - minus[3][i]);
            out[i] = acc * ihs;
        }
        k += LANES;
    }
    while k < n {
        let mut acc = c[0] * (plus[0][k] - minus[0][k]);
        acc += c[1] * (plus[1][k] - minus[1][k]);
        acc += c[2] * (plus[2][k] - minus[2][k]);
        acc += c[3] * (plus[3][k] - minus[3][k]);
        out[k] = acc * ihs;
        k += 1;
    }
}

#[inline(always)]
pub(crate) fn wide_cpx_mul<T: Xs>(dst: &mut [T], src: &[T]) {
    let (db, dt) = split_mut(dst);
    let (sb, st) = split(src);
    for (dc, sc) in db.chunks_exact_mut(LANES).zip(sb.chunks_exact(LANES)) {
        scalar_cpx_mul(dc, sc);
    }
    scalar_cpx_mul(dt, st);
}

#[inline(always)]
pub(crate) fn wide_cpx_mul_into<T: Xs>(out: &mut [T], a: &[T], b: &[T]) {
    let (ob, ot) = split_mut(out);
    let (ab, at) = split(a);
    let (bb, bt) = split(b);
    for ((oc, ac), bc) in
        ob.chunks_exact_mut(LANES).zip(ab.chunks_exact(LANES)).zip(bb.chunks_exact(LANES))
    {
        scalar_cpx_mul_into(oc, ac, bc);
    }
    scalar_cpx_mul_into(ot, at, bt);
}

#[inline(always)]
pub(crate) fn wide_cpx_conj<T: Xs>(data: &mut [T]) {
    let (b, t) = split_mut(data);
    for c in b.chunks_exact_mut(LANES) {
        scalar_cpx_conj(c);
    }
    scalar_cpx_conj(t);
}

#[inline(always)]
pub(crate) fn wide_cpx_conj_scale<T: Xs>(data: &mut [T], s: T) {
    let (b, t) = split_mut(data);
    for c in b.chunks_exact_mut(LANES) {
        scalar_cpx_conj_scale(c, s);
    }
    scalar_cpx_conj_scale(t, s);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_matches_scalar_f32() {
        let x: Vec<f32> = (0..131).map(|i| (i as f32 * 0.37).sin() - 0.4).collect();
        let y0: Vec<f32> = (0..131).map(|i| (i as f32 * 0.11).cos() * 1.5).collect();
        let mut ys = y0.clone();
        let ds = scalar_axpy_dot(1.25f32, &x, &mut ys);
        let mut yw = y0.clone();
        let dw = wide_axpy_dot(1.25f32, &x, &mut yw);
        for (a, b) in ys.iter().zip(&yw) {
            assert!((a - b).abs() <= 1e-5 * a.abs().max(1.0), "{a} vs {b}");
        }
        assert!((ds - dw).abs() <= 1e-5 * ds.abs().max(1.0));
        assert!((scalar_dot(&x, &y0) - wide_dot(&x, &y0)).abs() <= 1e-5);
    }

    #[test]
    fn lagrange_weights_partition_unity() {
        let w = scalar_lagrange_weights(0.3f32);
        let s: f32 = w.iter().sum();
        assert!((s - 1.0).abs() < 1e-5, "weights must sum to 1: {s}");
    }
}
