//! AVX2+FMA kernel implementations (f64 only).
//!
//! Every function is compiled with `#[target_feature(enable = "avx2,fma")]`
//! and must only be called after runtime detection (the dispatcher in
//! `lib.rs` guarantees this). Layout conventions:
//!
//! * real slices are processed 4 lanes (one `__m256d`) at a time with a
//!   masked tail (`_mm256_maskload_pd`/`_mm256_maskstore_pd`) or a scalar
//!   remainder for reductions;
//! * complex slices are interleaved `[re, im, re, im, …]`, two complexes
//!   per vector; the complex product uses the `movedup`/`permute`/
//!   `fmaddsub` shuffle idiom (no gathers anywhere);
//! * reductions accumulate in 4 f64 lanes and fold with a fixed-shape
//!   horizontal sum, so results are deterministic for a given input.

use core::arch::x86_64::*;

#[target_feature(enable = "avx2,fma")]
unsafe fn tail_mask(rem: usize) -> __m256i {
    let on = -1i64;
    match rem {
        1 => _mm256_setr_epi64x(on, 0, 0, 0),
        2 => _mm256_setr_epi64x(on, on, 0, 0),
        _ => _mm256_setr_epi64x(on, on, on, 0),
    }
}

/// Fixed-shape horizontal sum: `(l0 + l2) + (l1 + l3)`.
#[target_feature(enable = "avx2,fma")]
unsafe fn hsum(v: __m256d) -> f64 {
    let lo = _mm256_castpd256_pd128(v);
    let hi = _mm256_extractf128_pd(v, 1);
    let s = _mm_add_pd(lo, hi);
    _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
}

#[target_feature(enable = "avx2,fma")]
unsafe fn hmax(v: __m256d) -> f64 {
    let lo = _mm256_castpd256_pd128(v);
    let hi = _mm256_extractf128_pd(v, 1);
    let s = _mm_max_pd(lo, hi);
    _mm_cvtsd_f64(_mm_max_sd(s, _mm_unpackhi_pd(s, s)))
}

// ----- element-wise -------------------------------------------------------

#[target_feature(enable = "avx2,fma")]
pub unsafe fn scale(a: f64, y: &mut [f64]) {
    let av = _mm256_set1_pd(a);
    let n = y.len();
    let p = y.as_mut_ptr();
    let mut i = 0;
    while i + 4 <= n {
        _mm256_storeu_pd(p.add(i), _mm256_mul_pd(_mm256_loadu_pd(p.add(i)), av));
        i += 4;
    }
    if i < n {
        let m = tail_mask(n - i);
        let v = _mm256_maskload_pd(p.add(i), m);
        _mm256_maskstore_pd(p.add(i), m, _mm256_mul_pd(v, av));
    }
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    let av = _mm256_set1_pd(a);
    let n = y.len();
    let px = x.as_ptr();
    let py = y.as_mut_ptr();
    let mut i = 0;
    while i + 4 <= n {
        let xv = _mm256_loadu_pd(px.add(i));
        let yv = _mm256_loadu_pd(py.add(i));
        _mm256_storeu_pd(py.add(i), _mm256_fmadd_pd(av, xv, yv));
        i += 4;
    }
    if i < n {
        let m = tail_mask(n - i);
        let xv = _mm256_maskload_pd(px.add(i), m);
        let yv = _mm256_maskload_pd(py.add(i), m);
        _mm256_maskstore_pd(py.add(i), m, _mm256_fmadd_pd(av, xv, yv));
    }
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn aypx(a: f64, x: &[f64], y: &mut [f64]) {
    let av = _mm256_set1_pd(a);
    let n = y.len();
    let px = x.as_ptr();
    let py = y.as_mut_ptr();
    let mut i = 0;
    while i + 4 <= n {
        let xv = _mm256_loadu_pd(px.add(i));
        let yv = _mm256_loadu_pd(py.add(i));
        _mm256_storeu_pd(py.add(i), _mm256_fmadd_pd(av, yv, xv));
        i += 4;
    }
    if i < n {
        let m = tail_mask(n - i);
        let xv = _mm256_maskload_pd(px.add(i), m);
        let yv = _mm256_maskload_pd(py.add(i), m);
        _mm256_maskstore_pd(py.add(i), m, _mm256_fmadd_pd(av, yv, xv));
    }
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn add_scaled_product(a: f64, x: &[f64], y: &[f64], s: &mut [f64]) {
    let av = _mm256_set1_pd(a);
    let n = s.len();
    let px = x.as_ptr();
    let py = y.as_ptr();
    let ps = s.as_mut_ptr();
    let mut i = 0;
    while i + 4 <= n {
        let ax = _mm256_mul_pd(av, _mm256_loadu_pd(px.add(i)));
        let yv = _mm256_loadu_pd(py.add(i));
        let sv = _mm256_loadu_pd(ps.add(i));
        _mm256_storeu_pd(ps.add(i), _mm256_fmadd_pd(ax, yv, sv));
        i += 4;
    }
    if i < n {
        let m = tail_mask(n - i);
        let ax = _mm256_mul_pd(av, _mm256_maskload_pd(px.add(i), m));
        let yv = _mm256_maskload_pd(py.add(i), m);
        let sv = _mm256_maskload_pd(ps.add(i), m);
        _mm256_maskstore_pd(ps.add(i), m, _mm256_fmadd_pd(ax, yv, sv));
    }
}

// ----- fused element-wise + reduction -------------------------------------

#[target_feature(enable = "avx2,fma")]
pub unsafe fn axpy_dot(a: f64, x: &[f64], y: &mut [f64]) -> f64 {
    let av = _mm256_set1_pd(a);
    let n = y.len();
    let px = x.as_ptr();
    let py = y.as_mut_ptr();
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        let xv = _mm256_loadu_pd(px.add(i));
        let yv = _mm256_loadu_pd(py.add(i));
        let upd = _mm256_fmadd_pd(av, xv, yv);
        _mm256_storeu_pd(py.add(i), upd);
        acc = _mm256_fmadd_pd(upd, upd, acc);
        i += 4;
    }
    let mut r = hsum(acc);
    while i < n {
        y[i] += a * x[i];
        r += y[i] * y[i];
        i += 1;
    }
    r
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn aypx_norm2(a: f64, x: &[f64], y: &mut [f64]) -> f64 {
    let av = _mm256_set1_pd(a);
    let n = y.len();
    let px = x.as_ptr();
    let py = y.as_mut_ptr();
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        let xv = _mm256_loadu_pd(px.add(i));
        let yv = _mm256_loadu_pd(py.add(i));
        let upd = _mm256_fmadd_pd(av, yv, xv);
        _mm256_storeu_pd(py.add(i), upd);
        acc = _mm256_fmadd_pd(upd, upd, acc);
        i += 4;
    }
    let mut r = hsum(acc);
    while i < n {
        y[i] = a * y[i] + x[i];
        r += y[i] * y[i];
        i += 1;
    }
    r
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn scale_add_norm(a: f64, x: &[f64], y: &[f64], out: &mut [f64]) -> f64 {
    let av = _mm256_set1_pd(a);
    let n = out.len();
    let px = x.as_ptr();
    let py = y.as_ptr();
    let po = out.as_mut_ptr();
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        let xv = _mm256_loadu_pd(px.add(i));
        let yv = _mm256_loadu_pd(py.add(i));
        let upd = _mm256_fmadd_pd(av, xv, yv);
        _mm256_storeu_pd(po.add(i), upd);
        acc = _mm256_fmadd_pd(upd, upd, acc);
        i += 4;
    }
    let mut r = hsum(acc);
    while i < n {
        out[i] = a * x[i] + y[i];
        r += out[i] * out[i];
        i += 1;
    }
    r
}

// ----- reductions ---------------------------------------------------------

#[target_feature(enable = "avx2,fma")]
pub unsafe fn dot(x: &[f64], y: &[f64]) -> f64 {
    let n = x.len();
    let px = x.as_ptr();
    let py = y.as_ptr();
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        acc = _mm256_fmadd_pd(_mm256_loadu_pd(px.add(i)), _mm256_loadu_pd(py.add(i)), acc);
        i += 4;
    }
    let mut r = hsum(acc);
    while i < n {
        r += x[i] * y[i];
        i += 1;
    }
    r
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn sum(x: &[f64]) -> f64 {
    let n = x.len();
    let px = x.as_ptr();
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(px.add(i)));
        i += 4;
    }
    let mut r = hsum(acc);
    while i < n {
        r += x[i];
        i += 1;
    }
    r
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn max_abs(x: &[f64]) -> f64 {
    let n = x.len();
    let px = x.as_ptr();
    // clear the sign bit: |v| = v & 0x7ff…f
    let abs_mask = _mm256_set1_pd(f64::from_bits(0x7fff_ffff_ffff_ffff));
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        acc = _mm256_max_pd(acc, _mm256_and_pd(_mm256_loadu_pd(px.add(i)), abs_mask));
        i += 4;
    }
    let mut r = hmax(acc).max(0.0);
    while i < n {
        r = r.max(x[i].abs());
        i += 1;
    }
    r
}

// ----- 8th-order FD stencil ----------------------------------------------

#[target_feature(enable = "avx2,fma")]
pub unsafe fn fd8_combine(
    out: &mut [f64],
    plus: &[&[f64]; 4],
    minus: &[&[f64]; 4],
    c: &[f64; 4],
    inv_h: f64,
) {
    fd8_combine_scale(out, plus, minus, c, inv_h, 1.0)
}

/// [`fd8_combine`] with a folded output scale: `inv_h·s` is broadcast once,
/// so the fused kernel costs the same as the unscaled one (and is identical
/// to it when `s == 1`).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn fd8_combine_scale(
    out: &mut [f64],
    plus: &[&[f64]; 4],
    minus: &[&[f64]; 4],
    c: &[f64; 4],
    inv_h: f64,
    s: f64,
) {
    let n = out.len();
    let po = out.as_mut_ptr();
    let pp: [*const f64; 4] =
        [plus[0].as_ptr(), plus[1].as_ptr(), plus[2].as_ptr(), plus[3].as_ptr()];
    let pm: [*const f64; 4] =
        [minus[0].as_ptr(), minus[1].as_ptr(), minus[2].as_ptr(), minus[3].as_ptr()];
    let cv: [__m256d; 4] =
        [_mm256_set1_pd(c[0]), _mm256_set1_pd(c[1]), _mm256_set1_pd(c[2]), _mm256_set1_pd(c[3])];
    let ih = _mm256_set1_pd(inv_h * s);
    let mut i = 0;
    while i + 4 <= n {
        let mut acc = _mm256_mul_pd(
            cv[0],
            _mm256_sub_pd(_mm256_loadu_pd(pp[0].add(i)), _mm256_loadu_pd(pm[0].add(i))),
        );
        acc = _mm256_fmadd_pd(
            cv[1],
            _mm256_sub_pd(_mm256_loadu_pd(pp[1].add(i)), _mm256_loadu_pd(pm[1].add(i))),
            acc,
        );
        acc = _mm256_fmadd_pd(
            cv[2],
            _mm256_sub_pd(_mm256_loadu_pd(pp[2].add(i)), _mm256_loadu_pd(pm[2].add(i))),
            acc,
        );
        acc = _mm256_fmadd_pd(
            cv[3],
            _mm256_sub_pd(_mm256_loadu_pd(pp[3].add(i)), _mm256_loadu_pd(pm[3].add(i))),
            acc,
        );
        _mm256_storeu_pd(po.add(i), _mm256_mul_pd(acc, ih));
        i += 4;
    }
    if i < n {
        let m = tail_mask(n - i);
        let mut acc = _mm256_mul_pd(
            cv[0],
            _mm256_sub_pd(_mm256_maskload_pd(pp[0].add(i), m), _mm256_maskload_pd(pm[0].add(i), m)),
        );
        for j in 1..4 {
            acc = _mm256_fmadd_pd(
                cv[j],
                _mm256_sub_pd(
                    _mm256_maskload_pd(pp[j].add(i), m),
                    _mm256_maskload_pd(pm[j].add(i), m),
                ),
                acc,
            );
        }
        _mm256_maskstore_pd(po.add(i), m, _mm256_mul_pd(acc, ih));
    }
}

// ----- cubic interpolation -----------------------------------------------

#[target_feature(enable = "avx2,fma")]
pub unsafe fn lagrange_weights(t: f64) -> [f64; 4] {
    let t1 = t - 1.0;
    let t2 = t - 2.0;
    let tp = t + 1.0;
    let v1 = _mm256_setr_pd(-t, tp, -tp, tp);
    let v2 = _mm256_setr_pd(t1, t1, t, t);
    let v3 = _mm256_setr_pd(t2, t2, t2, t1);
    let d = _mm256_setr_pd(1.0 / 6.0, 0.5, 0.5, 1.0 / 6.0);
    let w = _mm256_mul_pd(_mm256_mul_pd(_mm256_mul_pd(v1, v2), v3), d);
    let mut out = [0.0f64; 4];
    _mm256_storeu_pd(out.as_mut_ptr(), w);
    out
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn cubic_accumulate(
    data: &[f64],
    base: usize,
    plane_stride: usize,
    row_stride: usize,
    w1: &[f64; 4],
    w2: &[f64; 4],
    w3: &[f64; 4],
) -> f64 {
    let p = data.as_ptr();
    let w3v = _mm256_loadu_pd(w3.as_ptr());
    let mut acc = _mm256_setzero_pd();
    for (a, &wa) in w1.iter().enumerate() {
        let pa = base + a * plane_stride;
        for (b, &wb) in w2.iter().enumerate() {
            let row = _mm256_loadu_pd(p.add(pa + b * row_stride));
            let w = _mm256_mul_pd(_mm256_set1_pd(wa * wb), w3v);
            acc = _mm256_fmadd_pd(row, w, acc);
        }
    }
    hsum(acc)
}

// ----- interleaved complex kernels ---------------------------------------

/// Complex product of packed pairs: even lanes get `re`, odd lanes `im`.
#[target_feature(enable = "avx2,fma")]
unsafe fn cpx_mul_v(a: __m256d, b: __m256d) -> __m256d {
    let br = _mm256_movedup_pd(b); // [b0.re, b0.re, b1.re, b1.re]
    let bi = _mm256_permute_pd(b, 0xF); // [b0.im, b0.im, b1.im, b1.im]
    let asw = _mm256_permute_pd(a, 0x5); // [a0.im, a0.re, a1.im, a1.re]
                                         // even: a.re·b.re − a.im·b.im; odd: a.im·b.re + a.re·b.im
    _mm256_fmaddsub_pd(a, br, _mm256_mul_pd(asw, bi))
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn cpx_mul(dst: &mut [f64], src: &[f64]) {
    let n = dst.len();
    let pd = dst.as_mut_ptr();
    let ps = src.as_ptr();
    let mut i = 0;
    while i + 4 <= n {
        let r = cpx_mul_v(_mm256_loadu_pd(pd.add(i)), _mm256_loadu_pd(ps.add(i)));
        _mm256_storeu_pd(pd.add(i), r);
        i += 4;
    }
    if i < n {
        let (ar, ai) = (dst[i], dst[i + 1]);
        let (br, bi) = (src[i], src[i + 1]);
        dst[i] = ar * br - ai * bi;
        dst[i + 1] = ar * bi + ai * br;
    }
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn cpx_mul_into(out: &mut [f64], a: &[f64], b: &[f64]) {
    let n = out.len();
    let po = out.as_mut_ptr();
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut i = 0;
    while i + 4 <= n {
        let r = cpx_mul_v(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i)));
        _mm256_storeu_pd(po.add(i), r);
        i += 4;
    }
    if i < n {
        let (ar, ai) = (a[i], a[i + 1]);
        let (br, bi) = (b[i], b[i + 1]);
        out[i] = ar * br - ai * bi;
        out[i + 1] = ar * bi + ai * br;
    }
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn cpx_conj(data: &mut [f64]) {
    let n = data.len();
    let p = data.as_mut_ptr();
    let flip = _mm256_setr_pd(0.0, -0.0, 0.0, -0.0);
    let mut i = 0;
    while i + 4 <= n {
        _mm256_storeu_pd(p.add(i), _mm256_xor_pd(_mm256_loadu_pd(p.add(i)), flip));
        i += 4;
    }
    if i < n {
        data[i + 1] = -data[i + 1];
    }
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn cpx_conj_scale(data: &mut [f64], s: f64) {
    let n = data.len();
    let p = data.as_mut_ptr();
    let sv = _mm256_setr_pd(s, -s, s, -s);
    let mut i = 0;
    while i + 4 <= n {
        _mm256_storeu_pd(p.add(i), _mm256_mul_pd(_mm256_loadu_pd(p.add(i)), sv));
        i += 4;
    }
    if i < n {
        data[i] *= s;
        data[i + 1] = -data[i + 1] * s;
    }
}

#[target_feature(enable = "avx2,fma")]
pub unsafe fn cpx_radix2_combine(lo: &mut [f64], hi: &mut [f64], tw: &[f64], ws: usize) {
    let m = lo.len() / 2;
    let pl = lo.as_mut_ptr();
    let ph = hi.as_mut_ptr();
    let pt = tw.as_ptr();
    let mut k = 0;
    while k + 2 <= m {
        // two twiddles, strided in the global table: w_k and w_{k+1}
        let w0 = _mm_loadu_pd(pt.add(2 * k * ws));
        let w1 = _mm_loadu_pd(pt.add(2 * (k + 1) * ws));
        let w = _mm256_set_m128d(w1, w0);
        let t0 = _mm256_loadu_pd(pl.add(2 * k));
        let t1 = _mm256_loadu_pd(ph.add(2 * k));
        let x = cpx_mul_v(w, t1);
        _mm256_storeu_pd(pl.add(2 * k), _mm256_add_pd(t0, x));
        _mm256_storeu_pd(ph.add(2 * k), _mm256_sub_pd(t0, x));
        k += 2;
    }
    if k < m {
        let (wr, wi) = (tw[2 * k * ws], tw[2 * k * ws + 1]);
        let (t0r, t0i) = (lo[2 * k], lo[2 * k + 1]);
        let (t1r, t1i) = (hi[2 * k], hi[2 * k + 1]);
        let xr = wr * t1r - wi * t1i;
        let xi = wr * t1i + wi * t1r;
        lo[2 * k] = t0r + xr;
        lo[2 * k + 1] = t0i + xi;
        hi[2 * k] = t0r - xr;
        hi[2 * k + 1] = t0i - xi;
    }
}
