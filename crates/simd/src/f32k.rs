//! f32 kernel arms behind the same runtime backend dispatch as the `Real`
//! kernels — the SIMD layer of the mixed-precision inner solve.
//!
//! Only compiled when `Real = f64` (default build): under the `single`
//! feature the crate-level kernels already are f32 and this module would be
//! redundant. Function-for-function this mirrors the public `Real` surface
//! (same asserts, same backend semantics):
//!
//! * `scalar` arm: the reference loops from `xk` (f64 accumulation for
//!   every reduction, so mixed-mode dots/norms lose no more precision than
//!   the element storage already did);
//! * `portable` arm: `xk`'s 8-lane chunked loops;
//! * `avx2` arm: the *same* chunked bodies compiled under
//!   `#[target_feature(enable = "avx2,fma")]` — the bodies are
//!   `#[inline(always)]`, so they inline into the feature-gated wrapper and
//!   the autovectorizer emits full-width 8-lane f32 AVX2+FMA code without a
//!   second hand-written intrinsics file.
//!
//! Equivalence contract: within a backend results are bitwise deterministic;
//! across backends they agree to ≤ 1e-5 relative error (f32 elementwise
//! rounding; reductions still accumulate in f64).

use crate::xk;
use crate::{active_backend, Backend};

/// AVX2+FMA instantiations of the wide f32 bodies. Safe to call only after
/// runtime detection — the dispatcher guarantees `Backend::Avx2` is cached
/// exclusively when `avx2` + `fma` were detected.
#[cfg(target_arch = "x86_64")]
mod avx2f {
    use crate::xk;

    macro_rules! wrap {
        ($name:ident, $body:ident, ($($arg:ident : $ty:ty),*) $(-> $ret:ty)?) => {
            #[target_feature(enable = "avx2,fma")]
            pub unsafe fn $name($($arg: $ty),*) $(-> $ret)? {
                xk::$body::<f32>($($arg),*)
            }
        };
    }

    wrap!(scale, wide_scale, (a: f32, y: &mut [f32]));
    wrap!(axpy, wide_axpy, (a: f32, x: &[f32], y: &mut [f32]));
    wrap!(aypx, wide_aypx, (a: f32, x: &[f32], y: &mut [f32]));
    wrap!(add_scaled_product, wide_add_scaled_product,
        (a: f32, x: &[f32], y: &[f32], s: &mut [f32]));
    wrap!(axpy_dot, wide_axpy_dot, (a: f32, x: &[f32], y: &mut [f32]) -> f64);
    wrap!(aypx_norm2, wide_aypx_norm2, (a: f32, x: &[f32], y: &mut [f32]) -> f64);
    wrap!(scale_add_norm, wide_scale_add_norm,
        (a: f32, x: &[f32], y: &[f32], out: &mut [f32]) -> f64);
    wrap!(dot, wide_dot, (x: &[f32], y: &[f32]) -> f64);
    wrap!(sum, wide_sum, (x: &[f32]) -> f64);
    wrap!(max_abs, wide_max_abs, (x: &[f32]) -> f64);
    wrap!(cpx_mul, wide_cpx_mul, (dst: &mut [f32], src: &[f32]));
    wrap!(cpx_mul_into, wide_cpx_mul_into, (out: &mut [f32], a: &[f32], b: &[f32]));
    wrap!(cpx_conj, wide_cpx_conj, (data: &mut [f32]));
    wrap!(cpx_conj_scale, wide_cpx_conj_scale, (data: &mut [f32], s: f32));
    wrap!(cpx_radix2_combine, scalar_cpx_radix2_combine,
        (lo: &mut [f32], hi: &mut [f32], tw: &[f32], ws: usize));

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn fd8_combine_scale(
        out: &mut [f32],
        plus: &[&[f32]; 4],
        minus: &[&[f32]; 4],
        c: &[f32; 4],
        inv_h: f32,
        s: f32,
    ) {
        xk::wide_fd8_combine_scale::<f32>(out, plus, minus, c, inv_h, s)
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn cubic_accumulate(
        data: &[f32],
        base: usize,
        plane_stride: usize,
        row_stride: usize,
        w1: &[f32; 4],
        w2: &[f32; 4],
        w3: &[f32; 4],
    ) -> f32 {
        xk::scalar_cubic_accumulate::<f32>(data, base, plane_stride, row_stride, w1, w2, w3)
    }
}

/// f32 counterpart of the crate-level `dispatch!`: the AVX2 arm exists on
/// x86-64 (runtime-detected); elsewhere it is cfg-stripped and `Avx2` can
/// never be cached, so the `_` fallthrough to scalar is unreachable there.
macro_rules! dispatch32 {
    ($avx2:expr, $portable:expr, $scalar:expr) => {{
        match active_backend() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: Backend::Avx2 is only cached after avx2+fma detection.
            Backend::Avx2 => unsafe { $avx2 },
            Backend::Portable => $portable,
            _ => $scalar,
        }
    }};
}

/// `y[i] *= a` (f32).
pub fn scale(a: f32, y: &mut [f32]) {
    dispatch32!(avx2f::scale(a, y), xk::wide_scale(a, y), xk::scalar_scale(a, y))
}

/// `y[i] += a · x[i]` (f32).
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    dispatch32!(avx2f::axpy(a, x, y), xk::wide_axpy(a, x, y), xk::scalar_axpy(a, x, y))
}

/// `y[i] = a · y[i] + x[i]` (f32).
pub fn aypx(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "aypx length mismatch");
    dispatch32!(avx2f::aypx(a, x, y), xk::wide_aypx(a, x, y), xk::scalar_aypx(a, x, y))
}

/// `s[i] += a · x[i] · y[i]` (f32).
pub fn add_scaled_product(a: f32, x: &[f32], y: &[f32], s: &mut [f32]) {
    assert_eq!(x.len(), s.len(), "add_scaled_product length mismatch");
    assert_eq!(y.len(), s.len(), "add_scaled_product length mismatch");
    dispatch32!(
        avx2f::add_scaled_product(a, x, y, s),
        xk::wide_add_scaled_product(a, x, y, s),
        xk::scalar_add_scaled_product(a, x, y, s)
    )
}

/// Fused `axpy` + self-dot (f32 storage, f64 accumulation).
pub fn axpy_dot(a: f32, x: &[f32], y: &mut [f32]) -> f64 {
    assert_eq!(x.len(), y.len(), "axpy_dot length mismatch");
    dispatch32!(avx2f::axpy_dot(a, x, y), xk::wide_axpy_dot(a, x, y), xk::scalar_axpy_dot(a, x, y))
}

/// Fused `aypx` + self-dot (f32 storage, f64 accumulation).
pub fn aypx_norm2(a: f32, x: &[f32], y: &mut [f32]) -> f64 {
    assert_eq!(x.len(), y.len(), "aypx_norm2 length mismatch");
    dispatch32!(
        avx2f::aypx_norm2(a, x, y),
        xk::wide_aypx_norm2(a, x, y),
        xk::scalar_aypx_norm2(a, x, y)
    )
}

/// Fused scaled-add into a fresh buffer + self-dot (f32).
pub fn scale_add_norm(a: f32, x: &[f32], y: &[f32], out: &mut [f32]) -> f64 {
    assert_eq!(x.len(), out.len(), "scale_add_norm length mismatch");
    assert_eq!(y.len(), out.len(), "scale_add_norm length mismatch");
    dispatch32!(
        avx2f::scale_add_norm(a, x, y, out),
        xk::wide_scale_add_norm(a, x, y, out),
        xk::scalar_scale_add_norm(a, x, y, out)
    )
}

/// `Σ x[i]·y[i]` accumulated in f64.
pub fn dot(x: &[f32], y: &[f32]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    dispatch32!(avx2f::dot(x, y), xk::wide_dot(x, y), xk::scalar_dot(x, y))
}

/// `Σ x[i]` accumulated in f64.
pub fn sum(x: &[f32]) -> f64 {
    dispatch32!(avx2f::sum(x), xk::wide_sum(x), xk::scalar_sum(x))
}

/// `max_i |x[i]|` as f64 (0 for an empty slice).
pub fn max_abs(x: &[f32]) -> f64 {
    dispatch32!(avx2f::max_abs(x), xk::wide_max_abs(x), xk::scalar_max_abs(x))
}

/// f32 arm of [`crate::fd8_combine_scale`] (same slice-length contract).
pub fn fd8_combine_scale(
    out: &mut [f32],
    plus: &[&[f32]; 4],
    minus: &[&[f32]; 4],
    c: &[f32; 4],
    inv_h: f32,
    s: f32,
) {
    for m in 0..4 {
        assert!(plus[m].len() >= out.len(), "fd8_combine_scale plus[{m}] too short");
        assert!(minus[m].len() >= out.len(), "fd8_combine_scale minus[{m}] too short");
    }
    dispatch32!(
        avx2f::fd8_combine_scale(out, plus, minus, c, inv_h, s),
        xk::wide_fd8_combine_scale(out, plus, minus, c, inv_h, s),
        xk::scalar_fd8_combine_scale(out, plus, minus, c, inv_h, s)
    )
}

/// f32 cubic Lagrange basis weights at fraction `t ∈ [0,1)`.
pub fn lagrange_weights(t: f32) -> [f32; 4] {
    xk::scalar_lagrange_weights(t)
}

/// f32 arm of [`crate::cubic_accumulate`] (same bounds contract).
pub fn cubic_accumulate(
    data: &[f32],
    base: usize,
    plane_stride: usize,
    row_stride: usize,
    w1: &[f32; 4],
    w2: &[f32; 4],
    w3: &[f32; 4],
) -> f32 {
    let last = base + 3 * plane_stride + 3 * row_stride;
    assert!(last + 4 <= data.len(), "cubic_accumulate support out of bounds");
    dispatch32!(
        avx2f::cubic_accumulate(data, base, plane_stride, row_stride, w1, w2, w3),
        xk::scalar_cubic_accumulate(data, base, plane_stride, row_stride, w1, w2, w3),
        xk::scalar_cubic_accumulate(data, base, plane_stride, row_stride, w1, w2, w3)
    )
}

/// Element-wise complex multiply `dst[j] *= src[j]` (interleaved f32).
pub fn cpx_mul(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "cpx_mul length mismatch");
    assert_eq!(dst.len() % 2, 0, "cpx_mul needs interleaved re/im pairs");
    dispatch32!(avx2f::cpx_mul(dst, src), xk::wide_cpx_mul(dst, src), xk::scalar_cpx_mul(dst, src))
}

/// Element-wise complex multiply `out[j] = a[j] · b[j]` (interleaved f32).
pub fn cpx_mul_into(out: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(out.len(), a.len(), "cpx_mul_into length mismatch");
    assert_eq!(out.len(), b.len(), "cpx_mul_into length mismatch");
    assert_eq!(out.len() % 2, 0, "cpx_mul_into needs interleaved re/im pairs");
    dispatch32!(
        avx2f::cpx_mul_into(out, a, b),
        xk::wide_cpx_mul_into(out, a, b),
        xk::scalar_cpx_mul_into(out, a, b)
    )
}

/// In-place complex conjugate (interleaved f32).
pub fn cpx_conj(data: &mut [f32]) {
    assert_eq!(data.len() % 2, 0, "cpx_conj needs interleaved re/im pairs");
    dispatch32!(avx2f::cpx_conj(data), xk::wide_cpx_conj(data), xk::scalar_cpx_conj(data))
}

/// In-place fused conjugate-and-scale (interleaved f32).
pub fn cpx_conj_scale(data: &mut [f32], s: f32) {
    assert_eq!(data.len() % 2, 0, "cpx_conj_scale needs interleaved re/im pairs");
    dispatch32!(
        avx2f::cpx_conj_scale(data, s),
        xk::wide_cpx_conj_scale(data, s),
        xk::scalar_cpx_conj_scale(data, s)
    )
}

/// Radix-2 DIT butterfly combine (interleaved f32 half-spectra); same
/// twiddle-table contract as [`crate::cpx_radix2_combine`].
pub fn cpx_radix2_combine(lo: &mut [f32], hi: &mut [f32], tw: &[f32], ws: usize) {
    assert_eq!(lo.len(), hi.len(), "cpx_radix2_combine half length mismatch");
    assert_eq!(lo.len() % 2, 0, "cpx_radix2_combine needs interleaved re/im pairs");
    let m = lo.len() / 2;
    if m > 0 {
        assert!(2 * ((m - 1) * ws) + 1 < tw.len(), "cpx_radix2_combine twiddle table too short");
    }
    dispatch32!(
        avx2f::cpx_radix2_combine(lo, hi, tw, ws),
        xk::scalar_cpx_radix2_combine(lo, hi, tw, ws),
        xk::scalar_cpx_radix2_combine(lo, hi, tw, ws)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{force_backend, Choice};

    fn probe(n: usize) -> (Vec<f32>, Vec<f32>) {
        let x: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin() - 0.4).collect();
        let y: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).cos() * 1.5).collect();
        (x, y)
    }

    #[test]
    fn backends_agree_on_fused_kernels() {
        let (x, y0) = probe(133);
        let mut results = Vec::new();
        for c in [Choice::Scalar, Choice::Portable, Choice::Avx2] {
            force_backend(Some(c));
            let mut y = y0.clone();
            let d = axpy_dot(1.25, &x, &mut y);
            let mut p = y0.clone();
            let n2 = aypx_norm2(-0.5, &x, &mut p);
            let mut o = vec![0.0f32; x.len()];
            let sn = scale_add_norm(0.8, &x, &y0, &mut o);
            results.push((y, d, p, n2, o, sn));
        }
        force_backend(None);
        let (ys, ds, ps, ns, os, ss) = &results[0];
        for (y, d, p, n2, o, sn) in &results[1..] {
            for (a, b) in ys.iter().zip(y) {
                assert!((a - b).abs() <= 1e-5 * a.abs().max(1.0), "{a} vs {b}");
            }
            assert!((ds - d).abs() <= 1e-5 * ds.abs().max(1.0));
            for (a, b) in ps.iter().zip(p) {
                assert!((a - b).abs() <= 1e-5 * a.abs().max(1.0));
            }
            assert!((ns - n2).abs() <= 1e-5 * ns.abs().max(1.0));
            for (a, b) in os.iter().zip(o) {
                assert!((a - b).abs() <= 1e-5 * a.abs().max(1.0));
            }
            assert!((ss - sn).abs() <= 1e-5 * ss.abs().max(1.0));
        }
    }

    #[test]
    fn reductions_accumulate_in_f64() {
        // 2²⁴ + 1 is not representable in f32; an f32 accumulator would
        // stall, the mandated f64 accumulation must not.
        let big = vec![1.0f32; 1 << 12];
        for c in [Choice::Scalar, Choice::Portable, Choice::Avx2] {
            force_backend(Some(c));
            let s = sum(&big) + 16_777_216.0;
            assert_eq!(s, 16_777_216.0 + (1 << 12) as f64);
        }
        force_backend(None);
    }

    #[test]
    fn cpx_kernels_match_reference() {
        let (a0, b) = probe(64);
        for c in [Choice::Scalar, Choice::Portable, Choice::Avx2] {
            force_backend(Some(c));
            let mut a = a0.clone();
            cpx_mul(&mut a, &b);
            for k in 0..32 {
                let (ar, ai) = (a0[2 * k], a0[2 * k + 1]);
                let (br, bi) = (b[2 * k], b[2 * k + 1]);
                let er = ar * br - ai * bi;
                let ei = ar * bi + ai * br;
                assert!((a[2 * k] - er).abs() <= 1e-5 * er.abs().max(1.0));
                assert!((a[2 * k + 1] - ei).abs() <= 1e-5 * ei.abs().max(1.0));
            }
        }
        force_backend(None);
    }
}
