//! `F64x4` — the portable 4-lane vector the kernels are specified against.
//!
//! This type is the *semantic model* of one AVX2 `__m256d`: the runtime
//! kernels in `avx2.rs` perform exactly these lane operations via
//! intrinsics, and the proptest suite checks the two agree. It is safe and
//! available on every target, so shared code (tests, reference kernels,
//! future ports) can be written against it without `unsafe` or feature
//! detection. `mul_add` is a *fused* multiply-add per lane, matching the
//! FMA instruction the AVX2 backend issues — which is exactly why the
//! vector backends are not bit-identical to the scalar path (one rounding
//! instead of two).

/// Four f64 lanes with value semantics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C, align(32))]
pub struct F64x4(pub [f64; 4]);

impl F64x4 {
    /// All lanes zero.
    pub const ZERO: F64x4 = F64x4([0.0; 4]);

    /// Broadcast one value to all lanes.
    #[inline]
    pub fn splat(v: f64) -> F64x4 {
        F64x4([v; 4])
    }

    /// Load 4 lanes from the front of a slice (panics if `s.len() < 4`).
    #[inline]
    pub fn load(s: &[f64]) -> F64x4 {
        F64x4([s[0], s[1], s[2], s[3]])
    }

    /// Masked tail load: up to 4 leading elements, missing lanes zero —
    /// the portable equivalent of `_mm256_maskload_pd`.
    #[inline]
    pub fn load_partial(s: &[f64]) -> F64x4 {
        let mut out = [0.0; 4];
        for (o, &v) in out.iter_mut().zip(s.iter().take(4)) {
            *o = v;
        }
        F64x4(out)
    }

    /// Store all 4 lanes to the front of a slice.
    #[inline]
    pub fn store(self, s: &mut [f64]) {
        s[..4].copy_from_slice(&self.0);
    }

    /// Masked tail store: writes `min(4, s.len())` leading lanes — the
    /// portable equivalent of `_mm256_maskstore_pd`.
    #[inline]
    pub fn store_partial(self, s: &mut [f64]) {
        for (o, &v) in s.iter_mut().zip(self.0.iter()) {
            *o = v;
        }
    }

    /// Fused multiply-add per lane: `self · b + c` with a single rounding.
    #[inline]
    pub fn mul_add(self, b: F64x4, c: F64x4) -> F64x4 {
        F64x4(std::array::from_fn(|i| self.0[i].mul_add(b.0[i], c.0[i])))
    }

    /// Lane rotation by `N` (gather-free shuffle): lane `i` takes the value
    /// of lane `(i + N) % 4`.
    #[inline]
    pub fn rotate_lanes_left<const N: usize>(self) -> F64x4 {
        F64x4(std::array::from_fn(|i| self.0[(i + N) % 4]))
    }

    /// Swap lanes pairwise (`[1, 0, 3, 2]`) — the re/im swap of the
    /// interleaved complex product (`_mm256_permute_pd(x, 0x5)`).
    #[inline]
    pub fn swap_pairs(self) -> F64x4 {
        F64x4([self.0[1], self.0[0], self.0[3], self.0[2]])
    }

    /// Fixed-shape horizontal sum `(l0 + l2) + (l1 + l3)` — the same fold
    /// the AVX2 reductions use (128-bit halves, then the final pair).
    #[inline]
    pub fn hsum(self) -> f64 {
        (self.0[0] + self.0[2]) + (self.0[1] + self.0[3])
    }
}

impl std::ops::Add for F64x4 {
    type Output = F64x4;
    #[inline]
    fn add(self, o: F64x4) -> F64x4 {
        F64x4(std::array::from_fn(|i| self.0[i] + o.0[i]))
    }
}

impl std::ops::Sub for F64x4 {
    type Output = F64x4;
    #[inline]
    fn sub(self, o: F64x4) -> F64x4 {
        F64x4(std::array::from_fn(|i| self.0[i] - o.0[i]))
    }
}

impl std::ops::Mul for F64x4 {
    type Output = F64x4;
    #[inline]
    fn mul(self, o: F64x4) -> F64x4 {
        F64x4(std::array::from_fn(|i| self.0[i] * o.0[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_ops() {
        let a = F64x4([1.0, 2.0, 3.0, 4.0]);
        let b = F64x4::splat(2.0);
        assert_eq!((a + b).0, [3.0, 4.0, 5.0, 6.0]);
        assert_eq!((a * b).0, [2.0, 4.0, 6.0, 8.0]);
        assert_eq!((a - b).0, [-1.0, 0.0, 1.0, 2.0]);
        assert_eq!(a.mul_add(b, a).0, [3.0, 6.0, 9.0, 12.0]);
        assert_eq!(a.hsum(), 10.0);
        assert_eq!(a.swap_pairs().0, [2.0, 1.0, 4.0, 3.0]);
        assert_eq!(a.rotate_lanes_left::<1>().0, [2.0, 3.0, 4.0, 1.0]);
    }

    #[test]
    fn masked_tail_roundtrip() {
        let src = [5.0, 6.0, 7.0];
        let v = F64x4::load_partial(&src);
        assert_eq!(v.0, [5.0, 6.0, 7.0, 0.0]);
        let mut dst = [0.0; 3];
        v.store_partial(&mut dst);
        assert_eq!(dst, src);
    }
}
