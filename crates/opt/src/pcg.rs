//! Matrix-free preconditioned conjugate gradients on vector fields.
//!
//! The solver is generic over the field element width `T` (the
//! mixed-precision seam): the outer Gauss–Newton driver runs it at [`Real`]
//! (f64) by default, or at `f32` when the inner Krylov solve is demoted.
//! All reductions (`inner`, fused norms) accumulate in f64 regardless of
//! `T`, so only the streamed field storage and matvec traffic narrow.

use claire_grid::{FieldElem, Real, VectorField, VectorFieldT};
use claire_mpi::Comm;
use claire_obs::{metrics::Counter, span::span};

static PCG_ITERS: Counter = Counter::new("pcg.iters");
static PCG_SOLVES: Counter = Counter::new("pcg.solves");

/// PCG options.
#[derive(Clone, Copy, Debug)]
pub struct PcgConfig {
    /// Relative residual tolerance (`‖r‖/‖b‖`).
    pub tol_rel: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Record the residual history (Fig. 3 traces).
    pub trace: bool,
}

impl Default for PcgConfig {
    fn default() -> Self {
        Self { tol_rel: 1e-6, max_iter: 500, trace: false }
    }
}

/// Outcome of a PCG solve.
#[derive(Clone, Debug)]
pub struct PcgResult {
    /// Iterations performed.
    pub iters: usize,
    /// Final relative (true) residual.
    pub rel_residual: f64,
    /// Whether the tolerance was met within the iteration cap.
    pub converged: bool,
    /// Relative residual after each iteration (index 0 = initial), if
    /// tracing was enabled.
    pub trace: Vec<f64>,
}

/// The operator pair PCG iterates with: the SPD system operator and a
/// preconditioner. One object provides both so a single mutable context
/// (e.g. the registration problem) can back them.
///
/// Generic over element width; `T` defaults to [`Real`] so existing f64
/// operators (`impl PcgOperator for …`) are unchanged.
pub trait PcgOperator<T: FieldElem = Real> {
    /// `A·p`.
    fn apply(&mut self, p: &VectorFieldT<T>, comm: &mut Comm) -> VectorFieldT<T>;
    /// `M·r ≈ A⁻¹ r`. Default: identity (unpreconditioned CG).
    fn prec(&mut self, r: &VectorFieldT<T>, _comm: &mut Comm) -> VectorFieldT<T> {
        r.clone()
    }
}

/// Adapter building a [`PcgOperator`] from two closures (testing and simple
/// operators with disjoint captures).
pub struct FnOps<A, M>(pub A, pub M)
where
    A: FnMut(&VectorField, &mut Comm) -> VectorField,
    M: FnMut(&VectorField, &mut Comm) -> VectorField;

impl<A, M> PcgOperator for FnOps<A, M>
where
    A: FnMut(&VectorField, &mut Comm) -> VectorField,
    M: FnMut(&VectorField, &mut Comm) -> VectorField,
{
    fn apply(&mut self, p: &VectorField, comm: &mut Comm) -> VectorField {
        (self.0)(p, comm)
    }
    fn prec(&mut self, r: &VectorField, comm: &mut Comm) -> VectorField {
        (self.1)(r, comm)
    }
}

/// Solve `A x = b` for SPD `A` with preconditioner `M ≈ A⁻¹`.
///
/// `x0` seeds the iteration (zero if `None`). Collective. At `T = f64` the
/// scalar recurrences (`α`, `β`) are computed in f64 and applied through
/// the identity `from_f64`, so this is bit-identical to a hard-coded f64
/// solver; at `T = f32` the recurrences stay f64 (reductions accumulate in
/// f64) and only the field updates round.
pub fn pcg<T: FieldElem, O: PcgOperator<T>>(
    b: &VectorFieldT<T>,
    x0: Option<&VectorFieldT<T>>,
    cfg: &PcgConfig,
    ops: &mut O,
    comm: &mut Comm,
) -> (VectorFieldT<T>, PcgResult) {
    let _s = span("pcg");
    PCG_SOLVES.inc();
    let layout = *b.layout();

    let mut x = match x0 {
        Some(v) => v.clone(),
        None => VectorFieldT::zeros(layout),
    };
    // r = b − A x. Cold start has r == b, so one fused reduction serves both
    // ‖b‖ and the initial residual; warm start fuses the residual update with
    // its norm (single pass over r instead of update + separate norm pass).
    let mut r = b.clone();
    let (bnorm, mut rel) = if x0.is_some() {
        let bnorm = b.norm_l2(comm).max(f64::MIN_POSITIVE);
        let ax = ops.apply(&x, comm);
        (bnorm, r.axpy_norm_l2(-T::ONE, &ax, comm) / bnorm)
    } else {
        let bn_raw = r.norm_l2(comm);
        let bnorm = bn_raw.max(f64::MIN_POSITIVE);
        (bnorm, bn_raw / bnorm)
    };
    let mut trace = Vec::new();
    if cfg.trace {
        trace.push(rel);
    }
    if rel <= cfg.tol_rel {
        return (x, PcgResult { iters: 0, rel_residual: rel, converged: true, trace });
    }

    let mut z = ops.prec(&r, comm);
    let mut p = z.clone();
    let mut rz = r.inner(&z, comm);
    let mut iters = 0;

    for _ in 0..cfg.max_iter {
        let q = ops.apply(&p, comm);
        let pq = p.inner(&q, comm);
        if pq <= 0.0 || !pq.is_finite() {
            // Gauss–Newton Hessians are SPSD; treat non-positive curvature
            // as convergence to the best available step (defensive guard).
            break;
        }
        let alpha = rz / pq;
        x.axpy(T::from_f64(alpha), &p);
        // fused residual update + norm: one streamed pass over r per
        // iteration instead of two (the solver's dominant field-op chain)
        let rnorm = r.axpy_norm_l2(T::from_f64(-alpha), &q, comm);
        iters += 1;
        PCG_ITERS.inc();

        rel = rnorm / bnorm;
        if cfg.trace {
            trace.push(rel);
        }
        if rel <= cfg.tol_rel {
            return (x, PcgResult { iters, rel_residual: rel, converged: true, trace });
        }

        z = ops.prec(&r, comm);
        let rz_new = r.inner(&z, comm);
        let beta = rz_new / rz;
        rz = rz_new;
        // p = z + β p
        p.aypx(T::from_f64(beta), &z);
    }

    (x, PcgResult { iters, rel_residual: rel, converged: rel <= cfg.tol_rel, trace })
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_grid::{Grid, Layout, Real, ScalarField, ScalarFieldT, WsCat};
    use proptest::prelude::*;

    /// Diagonal SPD test operator: componentwise scaling by (2 + sin²(x)).
    fn diag_coeff(layout: Layout) -> ScalarField {
        ScalarField::from_fn(layout, |x, y, z| 2.0 + (x + y + z).sin().powi(2))
    }

    fn apply_diag(coef: &ScalarField, v: &VectorField) -> VectorField {
        let mut out = v.clone();
        for c in &mut out.c {
            for (o, &d) in c.data_mut().iter_mut().zip(coef.data()) {
                *o *= d;
            }
        }
        out
    }

    #[test]
    fn solves_diagonal_system() {
        let layout = Layout::serial(Grid::cube(8));
        let mut comm = Comm::solo();
        let coef = diag_coeff(layout);
        let xtrue =
            VectorField::from_fns(layout, |x, _, _| x.sin(), |_, y, _| y.cos(), |_, _, z| z);
        let b = apply_diag(&coef, &xtrue);
        let cfg = PcgConfig { tol_rel: 1e-10, max_iter: 200, trace: true };
        let (x, res) = pcg(
            &b,
            None,
            &cfg,
            &mut FnOps(
                |v: &VectorField, _: &mut Comm| apply_diag(&coef, v),
                |r: &VectorField, _: &mut Comm| r.clone(),
            ),
            &mut comm,
        );
        assert!(res.converged, "rel {}", res.rel_residual);
        let mut d = x.clone();
        d.axpy(-1.0, &xtrue);
        assert!(d.norm_l2(&mut comm) < 1e-8);
        // trace is monotone-ish and ends below tolerance
        assert!(res.trace.len() == res.iters + 1);
        assert!(*res.trace.last().unwrap() <= 1e-10);
    }

    #[test]
    fn exact_preconditioner_converges_in_one_iteration() {
        let layout = Layout::serial(Grid::cube(8));
        let mut comm = Comm::solo();
        let coef = diag_coeff(layout);
        let b = VectorField::from_fns(
            layout,
            |x, _, _| x.cos(),
            |_, y, _| y.sin(),
            |_, _, z| 1.0 + 0.0 * z,
        );
        let cfg = PcgConfig { tol_rel: 1e-10, max_iter: 50, trace: false };
        let inv = |r: &VectorField, _: &mut Comm| {
            let mut out = r.clone();
            for c in &mut out.c {
                for (o, &d) in c.data_mut().iter_mut().zip(coef.data()) {
                    *o /= d;
                }
            }
            out
        };
        let (_, res) = pcg(
            &b,
            None,
            &cfg,
            &mut FnOps(|v: &VectorField, _: &mut Comm| apply_diag(&coef, v), inv),
            &mut comm,
        );
        assert!(res.converged);
        assert!(res.iters <= 2, "exact preconditioner should converge immediately: {}", res.iters);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let layout = Layout::serial(Grid::cube(8));
        let mut comm = Comm::solo();
        let coef = diag_coeff(layout);
        let xtrue =
            VectorField::from_fns(layout, |x, _, _| x.sin(), |_, y, _| y, |_, _, z| z.cos());
        let b = apply_diag(&coef, &xtrue);
        let cfg = PcgConfig { tol_rel: 1e-8, max_iter: 300, trace: false };
        let (_, cold) = pcg(
            &b,
            None,
            &cfg,
            &mut FnOps(
                |v: &VectorField, _: &mut Comm| apply_diag(&coef, v),
                |r: &VectorField, _: &mut Comm| r.clone(),
            ),
            &mut comm,
        );
        // warm start at the exact solution: zero iterations needed
        let x0 = xtrue.clone();
        let (_, warm) = pcg(
            &b,
            Some(&x0),
            &cfg,
            &mut FnOps(
                |v: &VectorField, _: &mut Comm| apply_diag(&coef, v),
                |r: &VectorField, _: &mut Comm| r.clone(),
            ),
            &mut comm,
        );
        assert!(warm.iters == 0, "warm start at solution needs no iterations: {}", warm.iters);
        assert!(cold.iters > 0);
        let _ = Real::EPSILON;
    }

    /// Diagonal SPD operator at f32 width for the mixed-agreement proptest.
    struct Diag32<'a>(&'a ScalarFieldT<f32>);

    impl PcgOperator<f32> for Diag32<'_> {
        fn apply(&mut self, v: &VectorFieldT<f32>, _: &mut Comm) -> VectorFieldT<f32> {
            let mut out = v.clone();
            for c in &mut out.c {
                for (o, &d) in c.data_mut().iter_mut().zip(self.0.data()) {
                    *o *= d;
                }
            }
            out
        }
    }

    proptest! {
        /// Mixed-precision agreement (the documented inner-solve tolerance):
        /// an f32 PCG solve of the same well-conditioned SPD system tracks
        /// the f64 solve to 1e-4 relative in the solution. Reductions
        /// accumulate in f64 in both widths, so the gap is pure streamed
        /// f32 rounding (~κ·ε_f32).
        #[test]
        fn f32_pcg_tracks_f64(seed in 0u64..40) {
            let layout = Layout::serial(Grid::cube(8));
            let mut comm = Comm::solo();
            let s = 0.1 + (seed as f64) * 0.17;
            let coef = ScalarField::from_fn(layout, move |x, y, z| {
                2.0 + ((x + 2.0 * y + z) * s).sin().powi(2)
            });
            let b = VectorField::from_fns(
                layout,
                move |x, _, _| (x * s).sin(),
                |_, y, _| y.cos(),
                |_, _, z| 0.5 * z,
            );
            let cfg = PcgConfig { tol_rel: 1e-5, max_iter: 200, trace: false };
            let (x64, r64) = pcg(
                &b,
                None,
                &cfg,
                &mut FnOps(
                    |v: &VectorField, _: &mut Comm| apply_diag(&coef, v),
                    |r: &VectorField, _: &mut Comm| r.clone(),
                ),
                &mut comm,
            );
            let coef32: ScalarFieldT<f32> = coef.converted(WsCat::Other);
            let b32: VectorFieldT<f32> = b.converted(WsCat::Other);
            let (x32, r32) = pcg(&b32, None, &cfg, &mut Diag32(&coef32), &mut comm);
            prop_assert!(r64.converged && r32.converged,
                "f64 rel {} / f32 rel {}", r64.rel_residual, r32.rel_residual);
            let mut d: VectorField = x32.converted(WsCat::Other);
            d.axpy(-1.0, &x64);
            let rel = d.norm_l2(&mut comm) / x64.norm_l2(&mut comm).max(1e-30);
            prop_assert!(rel < 1e-4, "solutions diverged: rel {rel}");
        }
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let layout = Layout::serial(Grid::cube(4));
        let mut comm = Comm::solo();
        let b = VectorField::zeros(layout);
        let cfg = PcgConfig::default();
        let (x, res) = pcg(
            &b,
            None,
            &cfg,
            &mut FnOps(
                |v: &VectorField, _: &mut Comm| v.clone(),
                |r: &VectorField, _: &mut Comm| r.clone(),
            ),
            &mut comm,
        );
        assert_eq!(res.iters, 0);
        assert!(x.norm_l2(&mut comm) == 0.0);
    }
}
