//! Matrix-free optimization: PCG and Gauss–Newton–Krylov (paper §2).
//!
//! CLAIRE solves `g(v) = 0` with a reduced-space Gauss–Newton–Krylov
//! method globalized by an Armijo line search (Algorithm 2). The Newton
//! step `H ṽ = −g` is solved by a matrix-free preconditioned conjugate
//! gradient method — the Hessian is never assembled, only its action on a
//! vector is available (two incremental PDE solves per matvec).
//!
//! This crate provides the two generic drivers:
//!
//! * [`pcg::pcg`] — preconditioned CG over [`VectorField`]s with a residual
//!   trace (the quantity plotted in the paper's Fig. 3);
//! * [`gn::gauss_newton`] — the outer Newton iteration with the paper's
//!   forcing sequence `εK = min(√‖g‖rel, 0.5)`, Armijo backtracking, and a
//!   per-component timing breakdown (the PC/Obj/Grad/Hess columns of
//!   Table 6 and Fig. 4).
//!
//! The registration-specific physics (objective, gradient, Hessian,
//! preconditioners) live in `claire-core` behind the [`gn::GnProblem`]
//! trait.
//!
//! [`VectorField`]: claire_grid::VectorField

pub mod gn;
pub mod pcg;

pub use gn::{gauss_newton, gauss_newton_hooked, GnConfig, GnProblem, GnState, GnStats, StopCheck};
pub use pcg::{pcg, FnOps, PcgConfig, PcgOperator, PcgResult};
