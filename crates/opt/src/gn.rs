//! The reduced-space Gauss–Newton–Krylov driver (paper Algorithm 2).

use std::time::Instant;

use claire_grid::{Real, VectorField, VectorFieldT, WsCat};
use claire_mpi::Comm;
use claire_obs::{
    metrics::{Counter, Gauge},
    records,
    span::span,
};

static GN_OBJ_EVALS: Counter = Counter::new("gn.obj_evals");
static GN_HESS_APPLIES: Counter = Counter::new("gn.hess_applies");
static GN_CONVERGED: Gauge = Gauge::new("gn.converged");

use crate::pcg::{pcg, PcgConfig, PcgOperator};

/// The registration problem interface the driver optimizes.
///
/// `claire-core` implements this with the PDE-constrained objective; tests
/// use small algebraic problems.
pub trait GnProblem {
    /// Objective `J(v)` (solves the state equation internally).
    fn objective(&mut self, v: &VectorField, comm: &mut Comm) -> f64;

    /// Reduced gradient `g(v)` (eq. 2). Must leave the problem's internal
    /// state (state/adjoint trajectories) positioned at `v`, since
    /// [`GnProblem::hess_vec`] is evaluated there.
    fn gradient(&mut self, v: &VectorField, comm: &mut Comm) -> VectorField;

    /// Gauss–Newton Hessian matvec `H(v)·ṽ` (eq. 5) at the last gradient
    /// point.
    fn hess_vec(&mut self, vt: &VectorField, comm: &mut Comm) -> VectorField;

    /// Apply the preconditioner to a Krylov residual; `eps_k` is the outer
    /// PCG tolerance (the inner solve of InvH0 uses `εH0·εK`).
    fn precond(&mut self, r: &VectorField, eps_k: f64, comm: &mut Comm) -> VectorField;

    /// Called after a Gauss–Newton step is accepted (InvH0 refreshes its
    /// deformed template here).
    fn new_iterate(&mut self, _v: &VectorField, _comm: &mut Comm) {}

    /// Single-precision preconditioner application for the mixed-precision
    /// inner Krylov solve ([`GnConfig::mixed`]). Problems with a native f32
    /// preconditioner (f32 spectral mirrors) override this; the default
    /// promotes the residual, applies [`GnProblem::precond`] in f64, and
    /// demotes the result — correct but without the bandwidth win.
    fn precond32(
        &mut self,
        r: &VectorFieldT<f32>,
        eps_k: f64,
        comm: &mut Comm,
    ) -> VectorFieldT<f32> {
        let r64: VectorField = r.converted(WsCat::GnCg);
        self.precond(&r64, eps_k, comm).converted(WsCat::GnCg)
    }
}

/// Gauss–Newton options.
#[derive(Clone, Copy, Debug)]
pub struct GnConfig {
    /// Cap on Gauss–Newton iterations.
    pub max_iter: usize,
    /// Relative gradient tolerance `εN` (paper: 5e−2).
    pub grad_rtol: f64,
    /// Cap on PCG iterations per Newton step.
    pub max_pcg: usize,
    /// Fix the PCG iteration count (the paper's scaling runs use 10 fixed
    /// iterations "to avoid discrepancies arising from relative
    /// tolerances"). Overrides the forcing sequence when set.
    pub fixed_pcg: Option<usize>,
    /// Armijo sufficient-decrease constant.
    pub armijo_c1: f64,
    /// Max line-search backtracks.
    pub max_linesearch: usize,
    /// Print per-iteration progress on rank 0.
    pub verbose: bool,
    /// Run the inner Newton-PCG solve in f32 (mixed precision): the GN
    /// right-hand side is demoted at the solve boundary, Hessian matvecs
    /// promote/demote around the f64 physics, the preconditioner goes
    /// through [`GnProblem::precond32`], and the resulting step is promoted
    /// back to f64. Outer iterate, gradient, objective, and convergence
    /// checks stay f64.
    pub mixed: bool,
}

impl Default for GnConfig {
    fn default() -> Self {
        Self {
            max_iter: 50,
            grad_rtol: 5e-2,
            max_pcg: 100,
            fixed_pcg: None,
            armijo_c1: 1e-4,
            max_linesearch: 20,
            verbose: false,
            mixed: false,
        }
    }
}

/// Wall or modeled seconds per solver component (Table 6 / Fig. 4 columns).
#[derive(Clone, Copy, Debug, Default)]
pub struct Breakdown {
    /// Preconditioner applications.
    pub pc: f64,
    /// Objective evaluations (state solves + line search).
    pub obj: f64,
    /// Gradient evaluations (state + adjoint solves).
    pub grad: f64,
    /// Hessian matvecs (incremental state + adjoint solves).
    pub hess: f64,
    /// Whole solver.
    pub total: f64,
}

impl Breakdown {
    /// Time outside the four instrumented components ("Other" in Fig. 4).
    pub fn other(&self) -> f64 {
        (self.total - self.pc - self.obj - self.grad - self.hess).max(0.0)
    }
}

/// Stop-check consulted at the top of every Gauss–Newton iteration (the
/// cooperative-cancellation seam used by `claire-serve`). It receives the
/// 0-based iteration index about to run; returning `true` stops the solve
/// before that iteration does any work, leaving the current iterate as the
/// result and setting [`GnStats::cancelled`]. Iterations are never
/// interrupted mid-flight — a cancelled solve finishes the PCG/line-search
/// it is inside and stops at the next boundary.
pub type StopCheck<'a> = &'a (dyn Fn(usize) -> bool + 'a);

/// Statistics of one Gauss–Newton solve.
#[derive(Clone, Debug, Default)]
pub struct GnStats {
    /// Gauss–Newton iterations performed.
    pub gn_iters: usize,
    /// PCG iterations accumulated over all Newton steps.
    pub pcg_iters_total: usize,
    /// Objective evaluations (≥ one per line-search trial).
    pub obj_evals: usize,
    /// Hessian matvecs.
    pub hess_applies: usize,
    /// Preconditioner applications.
    pub pc_applies: usize,
    /// Relative gradient norm after each iteration.
    pub grad_rel_history: Vec<f64>,
    /// Objective value after each iteration.
    pub objective_history: Vec<f64>,
    /// Wall-clock breakdown.
    pub time: Breakdown,
    /// Modeled (virtual cluster) breakdown.
    pub modeled: Breakdown,
    /// Whether the gradient tolerance was reached.
    pub converged: bool,
    /// Whether a [`StopCheck`] ended the solve early.
    pub cancelled: bool,
    /// Final relative gradient norm.
    pub grad_rel: f64,
}

/// Timing/count tally shared by the f64 and mixed Newton-step operator
/// wrappers (Table 6 breakdown columns).
#[derive(Default)]
struct OpsTally {
    t_hess: f64,
    t_pc: f64,
    m_hess: f64,
    m_pc: f64,
    n_hess: usize,
    n_pc: usize,
}

/// Newton-step operator wrapper: times Hessian matvecs and preconditioner
/// applications for the Table 6 breakdown.
struct TimedNewtonOps<'a, P: GnProblem> {
    problem: &'a mut P,
    eps_k: f64,
    tally: OpsTally,
}

impl<P: GnProblem> PcgOperator for TimedNewtonOps<'_, P> {
    fn apply(&mut self, p: &VectorField, comm: &mut Comm) -> VectorField {
        let _s = span("hess_matvec");
        let t = Instant::now();
        let m = comm.clock().now();
        let out = self.problem.hess_vec(p, comm);
        self.tally.t_hess += t.elapsed().as_secs_f64();
        self.tally.m_hess += comm.clock().now() - m;
        self.tally.n_hess += 1;
        out
    }
    fn prec(&mut self, r: &VectorField, comm: &mut Comm) -> VectorField {
        let _s = span("precond");
        let t = Instant::now();
        let m = comm.clock().now();
        let out = self.problem.precond(r, self.eps_k, comm);
        self.tally.t_pc += t.elapsed().as_secs_f64();
        self.tally.m_pc += comm.clock().now() - m;
        self.tally.n_pc += 1;
        out
    }
}

/// Mixed-precision Newton-step operator: the PCG vectors are f32, the
/// Hessian physics stays f64. `apply` promotes the Krylov direction into a
/// reused f64 scratch field, runs the f64 matvec, and demotes the result;
/// `prec` goes straight to the problem's f32 preconditioner hook. The
/// promote/demote passes are streamed conversions charged to µGN/CG.
struct MixedNewtonOps<'a, P: GnProblem> {
    problem: &'a mut P,
    eps_k: f64,
    /// f64 promote target, reused across every matvec of the solve.
    p64: VectorField,
    tally: OpsTally,
}

impl<P: GnProblem> PcgOperator<f32> for MixedNewtonOps<'_, P> {
    fn apply(&mut self, p: &VectorFieldT<f32>, comm: &mut Comm) -> VectorFieldT<f32> {
        let _s = span("hess_matvec");
        let t = Instant::now();
        let m = comm.clock().now();
        self.p64.convert_from(p);
        let out = self.problem.hess_vec(&self.p64, comm).converted(WsCat::GnCg);
        self.tally.t_hess += t.elapsed().as_secs_f64();
        self.tally.m_hess += comm.clock().now() - m;
        self.tally.n_hess += 1;
        out
    }
    fn prec(&mut self, r: &VectorFieldT<f32>, comm: &mut Comm) -> VectorFieldT<f32> {
        let _s = span("precond");
        let t = Instant::now();
        let m = comm.clock().now();
        let out = self.problem.precond32(r, self.eps_k, comm);
        self.tally.t_pc += t.elapsed().as_secs_f64();
        self.tally.m_pc += comm.clock().now() - m;
        self.tally.n_pc += 1;
        out
    }
}

/// Run the Gauss–Newton–Krylov solver from `v0`. Collective.
pub fn gauss_newton<P: GnProblem>(
    problem: &mut P,
    v0: VectorField,
    cfg: &GnConfig,
    comm: &mut Comm,
) -> (VectorField, GnStats) {
    gauss_newton_hooked(problem, v0, cfg, None, comm)
}

/// Resumable Gauss–Newton state: the solver loop broken into single
/// iterations.
///
/// [`gauss_newton_hooked`] is a thin loop over this type. `claire-core`'s
/// `BatchSolver` drives several `GnState`s round-robin so K registration
/// pairs interleave at GN-iteration granularity — the arithmetic of a solve
/// is identical either way, because [`GnState::step`] *is* the loop body.
pub struct GnState {
    v: VectorField,
    stats: GnStats,
    g0norm: Option<f64>,
    finished: bool,
    t_total: f64,
    m_total: f64,
}

impl GnState {
    /// Start a solve at `v0`. No work happens until [`GnState::step`].
    pub fn new(v0: VectorField, cfg: &GnConfig) -> GnState {
        let mut stats = GnStats::default();
        // size histories up front: at most one entry per iteration, so the
        // per-iteration pushes in `step` never reallocate
        stats.grad_rel_history.reserve(cfg.max_iter + 1);
        stats.objective_history.reserve(cfg.max_iter + 1);
        GnState {
            v: v0,
            stats,
            g0norm: None,
            finished: cfg.max_iter == 0,
            t_total: 0.0,
            m_total: 0.0,
        }
    }

    /// Whether the solve is over (converged, stagnated, iteration cap, or
    /// cancelled). Once true, [`GnState::step`] is a no-op.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// The current iterate.
    pub fn v(&self) -> &VectorField {
        &self.v
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &GnStats {
        &self.stats
    }

    /// Mark the solve cancelled (a [`StopCheck`] fired at this boundary).
    /// The current iterate stays the result.
    pub fn cancel(&mut self) {
        self.stats.cancelled = true;
        self.finished = true;
    }

    /// Run exactly one Gauss–Newton iteration (gradient, Newton-PCG,
    /// Armijo line search). Returns [`GnState::finished`] afterwards.
    /// Collective.
    pub fn step<P: GnProblem>(&mut self, problem: &mut P, cfg: &GnConfig, comm: &mut Comm) -> bool {
        if self.finished {
            return true;
        }
        let t0 = Instant::now();
        let m0 = comm.clock().now();
        self.step_body(problem, cfg, comm);
        self.t_total += t0.elapsed().as_secs_f64();
        self.m_total += comm.clock().now() - m0;
        self.finished
    }

    fn step_body<P: GnProblem>(&mut self, problem: &mut P, cfg: &GnConfig, comm: &mut Comm) {
        let stats = &mut self.stats;
        let _iter_span = span("gn.iter");
        // gradient
        let t0 = Instant::now();
        let m0 = comm.clock().now();
        let g = {
            let _s = span("gradient");
            problem.gradient(&self.v, comm)
        };
        stats.time.grad += t0.elapsed().as_secs_f64();
        stats.modeled.grad += comm.clock().now() - m0;

        let gnorm = g.norm_l2(comm);
        let g0 = *self.g0norm.get_or_insert(gnorm.max(f64::MIN_POSITIVE));
        let rel = gnorm / g0;
        stats.grad_rel_history.push(rel);
        stats.grad_rel = rel;
        if cfg.verbose && comm.rank() == 0 {
            eprintln!(
                "GN iter {:3}: |g|_rel = {rel:9.3e}, pcg_total = {}",
                stats.gn_iters, stats.pcg_iters_total
            );
        }
        if rel <= cfg.grad_rtol {
            stats.converged = true;
            self.finished = true;
            return;
        }

        // Newton step: H ṽ = −g
        let eps_k = (rel.sqrt()).min(0.5);
        let pcg_cfg = PcgConfig {
            tol_rel: if cfg.fixed_pcg.is_some() { 0.0 } else { eps_k },
            max_iter: cfg.fixed_pcg.unwrap_or(cfg.max_pcg),
            trace: false,
        };
        let mut rhs = g.clone();
        rhs.scale(-1.0 as Real);

        let (step, pcg_res, tally) = if cfg.mixed {
            // Mixed precision: demote the right-hand side at the solve
            // boundary, run the Krylov iteration entirely in f32, promote
            // the step back. The f64 branch below is untouched.
            let rhs32: VectorFieldT<f32> = rhs.converted(WsCat::GnCg);
            let mut ops = MixedNewtonOps {
                problem,
                eps_k,
                p64: VectorField::zeros_in(*self.v.layout(), WsCat::GnCg),
                tally: OpsTally::default(),
            };
            let (step32, res) = pcg(&rhs32, None, &pcg_cfg, &mut ops, comm);
            (step32.converted(WsCat::GnCg), res, ops.tally)
        } else {
            let mut ops = TimedNewtonOps { problem, eps_k, tally: OpsTally::default() };
            let (step, res) = pcg(&rhs, None, &pcg_cfg, &mut ops, comm);
            (step, res, ops.tally)
        };
        stats.time.hess += tally.t_hess;
        stats.time.pc += tally.t_pc;
        stats.modeled.hess += tally.m_hess;
        stats.modeled.pc += tally.m_pc;
        stats.hess_applies += tally.n_hess;
        stats.pc_applies += tally.n_pc;
        stats.pcg_iters_total += pcg_res.iters;

        // Armijo line search on J
        let ls_span = span("linesearch");
        let t0 = Instant::now();
        let m0 = comm.clock().now();
        let j0 = problem.objective(&self.v, comm);
        stats.obj_evals += 1;
        let slope = g.inner(&step, comm);
        let mut alpha = 1.0 as Real;
        let mut accepted = false;
        let mut j_new = j0;
        // One trial buffer for the whole backtracking loop; each trial is a
        // single fused pass `trial = α·step + v` instead of clone (copy pass)
        // + axpy (update pass), and acceptance swaps buffers instead of
        // copying.
        let mut trial = VectorField::zeros(*self.v.layout());
        for _ in 0..cfg.max_linesearch {
            trial.scale_add_from(alpha, &step, &self.v);
            let j = problem.objective(&trial, comm);
            stats.obj_evals += 1;
            if j <= j0 + cfg.armijo_c1 * alpha as f64 * slope {
                std::mem::swap(&mut self.v, &mut trial);
                stats.objective_history.push(j);
                accepted = true;
                j_new = j;
                break;
            }
            alpha *= 0.5;
        }
        stats.time.obj += t0.elapsed().as_secs_f64();
        stats.modeled.obj += comm.clock().now() - m0;
        drop(ls_span);
        records::push_gn(stats.gn_iters, j_new, rel, pcg_res.iters);
        stats.gn_iters += 1;

        if !accepted {
            // line search failed — stagnation; stop with current iterate
            self.finished = true;
            return;
        }
        problem.new_iterate(&self.v, comm);
        if stats.gn_iters >= cfg.max_iter {
            self.finished = true;
        }
    }

    /// Close out the solve: stamp the accumulated totals into the stats and
    /// bump the end-of-solve metrics. Consumes the state.
    pub fn finish(mut self) -> (VectorField, GnStats) {
        self.stats.time.total = self.t_total;
        self.stats.modeled.total = self.m_total;
        GN_OBJ_EVALS.add(self.stats.obj_evals as u64);
        GN_HESS_APPLIES.add(self.stats.hess_applies as u64);
        GN_CONVERGED.set(if self.stats.converged { 1.0 } else { 0.0 });
        (self.v, self.stats)
    }
}

/// [`gauss_newton`] with a cooperative [`StopCheck`] evaluated at every
/// iteration boundary (before the iteration's gradient is computed).
/// Collective; every rank must pass an equivalent check so the ranks agree
/// on when to stop.
pub fn gauss_newton_hooked<P: GnProblem>(
    problem: &mut P,
    v0: VectorField,
    cfg: &GnConfig,
    stop: Option<StopCheck<'_>>,
    comm: &mut Comm,
) -> (VectorField, GnStats) {
    let mut state = GnState::new(v0, cfg);
    while !state.finished() {
        if let Some(check) = stop {
            if check(state.stats().gn_iters) {
                state.cancel();
                break;
            }
        }
        state.step(problem, cfg, comm);
    }
    state.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_grid::{Grid, Layout, ScalarField};

    /// J(v) = ½⟨v − a, D(v − a)⟩ with diagonal SPD D.
    struct Quadratic {
        a: VectorField,
        d: ScalarField,
    }

    impl Quadratic {
        fn apply_d(&self, v: &VectorField) -> VectorField {
            let mut out = v.clone();
            for c in &mut out.c {
                for (o, &d) in c.data_mut().iter_mut().zip(self.d.data()) {
                    *o *= d;
                }
            }
            out
        }
    }

    impl GnProblem for Quadratic {
        fn objective(&mut self, v: &VectorField, comm: &mut Comm) -> f64 {
            let mut e = v.clone();
            e.axpy(-1.0, &self.a);
            let de = self.apply_d(&e);
            0.5 * e.inner(&de, comm)
        }
        fn gradient(&mut self, v: &VectorField, _comm: &mut Comm) -> VectorField {
            let mut e = v.clone();
            e.axpy(-1.0, &self.a);
            self.apply_d(&e)
        }
        fn hess_vec(&mut self, vt: &VectorField, _comm: &mut Comm) -> VectorField {
            self.apply_d(vt)
        }
        fn precond(&mut self, r: &VectorField, _eps: f64, _comm: &mut Comm) -> VectorField {
            r.clone()
        }
    }

    #[test]
    fn quadratic_converges_fast() {
        let layout = Layout::serial(Grid::cube(8));
        let mut comm = Comm::solo();
        let mut prob = Quadratic {
            a: VectorField::from_fns(layout, |x, _, _| x.sin(), |_, y, _| y.cos(), |_, _, z| z),
            d: ScalarField::from_fn(layout, |x, _, _| 1.5 + x.sin().powi(2)),
        };
        let cfg = GnConfig { grad_rtol: 1e-8, max_iter: 10, ..Default::default() };
        let (v, stats) = gauss_newton(&mut prob, VectorField::zeros(layout), &cfg, &mut comm);
        assert!(stats.converged, "rel grad {}", stats.grad_rel);
        assert!(
            stats.gn_iters <= 8,
            "inexact Newton with the εK forcing should converge quickly: {}",
            stats.gn_iters
        );
        let mut e = v.clone();
        e.axpy(-1.0, &prob.a);
        assert!(e.norm_l2(&mut comm) < 1e-5);
        // objective history is monotone decreasing
        for w in stats.objective_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn mixed_mode_converges_to_same_solution() {
        let layout = Layout::serial(Grid::cube(8));
        let mut comm = Comm::solo();
        let make = || Quadratic {
            a: VectorField::from_fns(layout, |x, _, _| x.sin(), |_, y, _| y.cos(), |_, _, z| z),
            d: ScalarField::from_fn(layout, |x, _, _| 1.5 + x.sin().powi(2)),
        };
        let cfg64 = GnConfig { grad_rtol: 1e-6, max_iter: 20, ..Default::default() };
        let cfg32 = GnConfig { mixed: true, ..cfg64 };
        let (v64, s64) = gauss_newton(&mut make(), VectorField::zeros(layout), &cfg64, &mut comm);
        let (v32, s32) = gauss_newton(&mut make(), VectorField::zeros(layout), &cfg32, &mut comm);
        assert!(s64.converged && s32.converged, "{} {}", s64.grad_rel, s32.grad_rel);
        // the outer convergence check is f64 in both modes; the f32 inner
        // solve only perturbs the step, which the line search absorbs
        let mut d = v32.clone();
        d.axpy(-1.0, &v64);
        let rel = d.norm_l2(&mut comm) / v64.norm_l2(&mut comm).max(1e-30);
        assert!(rel < 1e-4, "mixed solution drifted: rel {rel}");
        // final objectives agree to the documented mixed tolerance
        let j64 = *s64.objective_history.last().unwrap();
        let j32 = *s32.objective_history.last().unwrap();
        assert!((j64 - j32).abs() <= 1e-6 * j64.abs() + 1e-10, "{j64} vs {j32}");
    }

    #[test]
    fn mixed_mode_default_precond32_round_trips() {
        // A problem that never overrides precond32 must still work: the
        // default promotes, applies the f64 preconditioner, and demotes.
        let layout = Layout::serial(Grid::cube(4));
        let mut comm = Comm::solo();
        let mut prob = Quadratic {
            a: VectorField::from_fns(layout, |x, _, _| x.cos(), |_, _, _| 0.25, |_, _, z| z.sin()),
            d: ScalarField::from_fn(layout, |_, y, _| 2.0 + y.cos().powi(2)),
        };
        let cfg = GnConfig { grad_rtol: 1e-5, max_iter: 15, mixed: true, ..Default::default() };
        let (_, stats) = gauss_newton(&mut prob, VectorField::zeros(layout), &cfg, &mut comm);
        assert!(stats.converged, "rel grad {}", stats.grad_rel);
        assert!(stats.pc_applies > 0);
    }

    #[test]
    fn fixed_pcg_runs_exact_count() {
        let layout = Layout::serial(Grid::cube(4));
        let mut comm = Comm::solo();
        let mut prob = Quadratic {
            a: VectorField::from_fns(layout, |x, _, _| x.cos(), |_, _, _| 0.5, |_, _, z| z.sin()),
            d: ScalarField::from_fn(layout, |_, y, _| 2.0 + y.cos().powi(2)),
        };
        let cfg = GnConfig {
            max_iter: 2,
            grad_rtol: 1e-30, // only satisfiable by an exactly-zero gradient
            fixed_pcg: Some(3),
            ..Default::default()
        };
        let (_, stats) = gauss_newton(&mut prob, VectorField::zeros(layout), &cfg, &mut comm);
        // Two GN steps, unless the first step already drove the gradient
        // below 1e-30 relative (FMA-based backends can land there on this
        // quadratic), in which case the loop legitimately stops after one.
        if stats.converged {
            assert_eq!(stats.gn_iters, 1);
            assert!(stats.grad_rel <= 1e-30, "{}", stats.grad_rel);
        } else {
            assert_eq!(stats.gn_iters, 2);
        }
        // 3 PCG iterations per GN step, unless it converged to machine zero early
        assert!(
            stats.pcg_iters_total <= 6 && stats.pcg_iters_total >= 3,
            "{}",
            stats.pcg_iters_total
        );
    }

    #[test]
    fn stop_check_halts_at_iteration_boundary() {
        let layout = Layout::serial(Grid::cube(4));
        let mut comm = Comm::solo();
        let mut prob = Quadratic {
            a: VectorField::from_fns(layout, |x, _, _| x.sin(), |_, y, _| y.cos(), |_, _, z| z),
            d: ScalarField::from_fn(layout, |_, _, _| 2.0),
        };
        let cfg = GnConfig { grad_rtol: 1e-30, max_iter: 50, ..Default::default() };
        let seen = std::cell::Cell::new(0usize);
        let check = |k: usize| {
            seen.set(seen.get().max(k + 1));
            k >= 1 // run iteration 0, stop at the boundary of iteration 1
        };
        let (_, stats) = gauss_newton_hooked(
            &mut prob,
            VectorField::zeros(layout),
            &cfg,
            Some(&check),
            &mut comm,
        );
        assert!(stats.cancelled);
        assert!(!stats.converged);
        assert_eq!(stats.gn_iters, 1, "exactly one iteration ran");
        assert_eq!(seen.get(), 2, "check saw boundaries 0 and 1");

        // a check that immediately stops performs zero work
        let always = |_k: usize| true;
        let (_, stats) = gauss_newton_hooked(
            &mut prob,
            VectorField::zeros(layout),
            &cfg,
            Some(&always),
            &mut comm,
        );
        assert!(stats.cancelled);
        assert_eq!(stats.gn_iters, 0);
        assert_eq!(stats.obj_evals, 0);
    }

    #[test]
    fn timing_breakdown_populated() {
        let layout = Layout::serial(Grid::cube(4));
        let mut comm = Comm::solo();
        let mut prob = Quadratic {
            a: VectorField::from_fns(layout, |x, _, _| x.sin(), |_, _, _| 0.0, |_, _, _| 0.0),
            d: ScalarField::from_fn(layout, |_, _, _| 2.0),
        };
        let cfg = GnConfig { grad_rtol: 1e-10, ..Default::default() };
        let (_, stats) = gauss_newton(&mut prob, VectorField::zeros(layout), &cfg, &mut comm);
        assert!(stats.time.total > 0.0);
        assert!(stats.time.total + 1e-9 >= stats.time.grad);
        assert!(stats.hess_applies > 0 && stats.pc_applies > 0 && stats.obj_evals > 0);
    }
}
