//! Criterion benchmarks of the preconditioner applications (Fig. 3 /
//! Table 6 cost side): one application of InvA vs InvH0 vs 2LInvH0, and
//! one Gauss–Newton Hessian matvec for scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use claire_core::{PrecondKind, RegProblem, RegistrationConfig};
use claire_data::truth::fig3_problem;
use claire_grid::{Grid, Layout};
use claire_interp::IpOrder;
use claire_mpi::Comm;
use claire_opt::GnProblem;

fn make_problem(pc: PrecondKind, comm: &mut Comm) -> (RegProblem, claire_grid::VectorField) {
    let layout = Layout::serial(Grid::cube(16));
    let data = fig3_problem(layout, comm);
    let cfg = RegistrationConfig {
        nt: 4,
        ip_order: IpOrder::Linear,
        precond: pc,
        continuation: false,
        ..Default::default()
    };
    let mut prob = RegProblem::new(data.template, data.reference, cfg, comm)
        .expect("matching layouts by construction");
    prob.set_beta(5e-2);
    let g = prob.gradient(&data.v_true, comm);
    (prob, g)
}

fn bench_precond_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("precond_apply_16^3");
    for pc in [PrecondKind::InvA, PrecondKind::InvH0, PrecondKind::TwoLevelInvH0] {
        let mut comm = Comm::solo();
        let (mut prob, g) = make_problem(pc, &mut comm);
        group.bench_function(pc.label(), |b| {
            b.iter(|| black_box(prob.precond(black_box(&g), 0.1, &mut comm)))
        });
    }
    group.finish();
}

fn bench_hessian_matvec(c: &mut Criterion) {
    let mut comm = Comm::solo();
    let (mut prob, g) = make_problem(PrecondKind::InvA, &mut comm);
    c.bench_function("hessian_matvec_16^3", |b| {
        b.iter(|| black_box(prob.hess_vec(black_box(&g), &mut comm)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_precond_apply, bench_hessian_matvec
}
criterion_main!(benches);
