//! Criterion ablation benchmarks for the paper's design choices:
//! store-∇m vs recompute in the Hessian matvec (§4.2: ~15% end-to-end)
//! and linear vs cubic interpolation in the transport solve (§3.1).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use claire_core::{PrecondKind, RegProblem, RegistrationConfig};
use claire_data::truth::fig3_problem;
use claire_grid::{Grid, Layout};
use claire_interp::{Interpolator, IpOrder};
use claire_mpi::Comm;
use claire_opt::GnProblem;
use claire_semilag::{Trajectory, Transport};

fn bench_store_grad(c: &mut Criterion) {
    let mut group = c.benchmark_group("hess_matvec_store_grad_16^3");
    for (name, store) in [("recompute", false), ("store", true)] {
        let mut comm = Comm::solo();
        let layout = Layout::serial(Grid::cube(16));
        let data = fig3_problem(layout, &mut comm);
        let cfg = RegistrationConfig {
            nt: 4,
            ip_order: IpOrder::Linear,
            store_grad: store,
            precond: PrecondKind::InvA,
            continuation: false,
            ..Default::default()
        };
        let mut prob = RegProblem::new(data.template, data.reference, cfg, &mut comm)
            .expect("matching layouts by construction");
        prob.set_beta(1e-2);
        let g = prob.gradient(&data.v_true, &mut comm);
        group.bench_function(name, |b| {
            b.iter(|| black_box(prob.hess_vec(black_box(&g), &mut comm)))
        });
    }
    group.finish();
}

fn bench_transport_order(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_solve_24^3_nt4");
    let layout = Layout::serial(Grid::cube(24));
    for order in [IpOrder::Linear, IpOrder::Cubic] {
        let mut comm = Comm::solo();
        let m0 = claire_data::brain::subject("na10", layout, &mut comm);
        let v = claire_data::brain::random_smooth_velocity(layout, 42, 0.4, 2);
        let mut ip = Interpolator::new(order);
        let tr = Transport::new(4, order);
        let traj = Trajectory::compute(&v, 4, &mut ip, &mut comm);
        group.bench_function(order.kernel_name(), |b| {
            b.iter(|| black_box(tr.solve_state(&traj, black_box(&m0), false, &mut ip, &mut comm)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_store_grad, bench_transport_order
}
criterion_main!(benches);
