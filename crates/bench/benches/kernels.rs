//! Criterion micro-benchmarks of the three computational kernels
//! (paper §3: interpolation, finite differences, FFT) plus the ghost
//! exchange primitive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use claire_fft::{DistFft, Fft3};
use claire_grid::{ghost, Grid, Layout, ScalarField, TWO_PI};
use claire_interp::{Interpolator, IpOrder};
use claire_mpi::Comm;

fn test_field(n: usize) -> ScalarField {
    ScalarField::from_fn(Layout::serial(Grid::cube(n)), |x, y, z| {
        (x + 0.3).sin() * (2.0 * y).cos() + (z - 0.1 * x).sin()
    })
}

fn bench_fd(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd_gradient");
    for n in [16usize, 32] {
        let f = test_field(n);
        let mut comm = Comm::solo();
        group.bench_with_input(BenchmarkId::from_parameter(format!("{n}^3")), &n, |b, _| {
            b.iter(|| black_box(claire_diff::fd::gradient(black_box(&f), &mut comm)))
        });
    }
    group.finish();
}

fn bench_interp(c: &mut Criterion) {
    let mut group = c.benchmark_group("interp_kernel");
    let n = 32;
    let f = test_field(n);
    let queries: Vec<[claire_grid::Real; 3]> = (0..4096)
        .map(|i| {
            let r = |s: u64| {
                let a = (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(s);
                ((a >> 16) % 100_000) as claire_grid::Real / 100_000.0 * TWO_PI
            };
            [r(1), r(2), r(3)]
        })
        .collect();
    for (name, order) in [("GPU-TXTLIN", IpOrder::Linear), ("GPU-TXTLAG", IpOrder::Cubic)] {
        let mut comm = Comm::solo();
        let mut ip = Interpolator::new(order);
        group.bench_function(name, |b| {
            b.iter(|| black_box(ip.interp(black_box(&f), black_box(&queries), &mut comm)))
        });
    }
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft3d_r2c_pair");
    for n in [16usize, 32] {
        let grid = Grid::cube(n);
        let f = test_field(n);
        let plan = Fft3::new(grid);
        let mut spec = vec![claire_fft::Cpx::ZERO; plan.spectral_len()];
        let mut out = vec![0.0 as claire_grid::Real; grid.len()];
        group.bench_with_input(BenchmarkId::from_parameter(format!("{n}^3")), &n, |b, _| {
            b.iter(|| {
                plan.forward(black_box(f.data()), &mut spec);
                plan.inverse(&mut spec, &mut out);
                black_box(&out);
            })
        });
    }
    group.finish();
}

fn bench_dist_fft_solo(c: &mut Criterion) {
    // single-rank slab plan falls back to the 3D path, like the paper
    let grid = Grid::cube(32);
    let f = test_field(32);
    let mut comm = Comm::solo();
    let dfft = DistFft::new(grid, &comm);
    c.bench_function("dist_fft_solo_32^3", |b| {
        b.iter(|| {
            let spec = dfft.forward(black_box(&f), &mut comm);
            black_box(dfft.inverse(spec, &mut comm))
        })
    });
}

fn bench_ghost(c: &mut Criterion) {
    let f = test_field(32);
    let mut comm = Comm::solo();
    c.bench_function("ghost_exchange_w4_32^3", |b| {
        b.iter(|| black_box(ghost::exchange(black_box(&f), 4, &mut comm)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fd, bench_interp, bench_fft, bench_dist_fft_solo, bench_ghost
}
criterion_main!(benches);
