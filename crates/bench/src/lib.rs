//! Benchmark harness for CLAIRE-rs: regenerates every table and figure of
//! the paper's evaluation (§4).
//!
//! Each `src/bin/tableN.rs` / `src/bin/figN.rs` binary corresponds to one
//! table or figure:
//!
//! | binary | paper artifact | what it runs |
//! |---|---|---|
//! | `fig3`   | Fig. 3  | PCG residual traces for InvA/InvH0/2LInvH0 at the true solution |
//! | `table2` | Table 2 | semi-Lagrangian phase breakdown: functional small-scale + modeled paper scale |
//! | `table3` | Table 3 | FD kernel strong/weak scaling |
//! | `table4` | Table 4 | MPI vs P2P all-to-all bandwidth |
//! | `table5` | Table 5 | distributed FFT weak/strong scaling |
//! | `table6` | Table 6 | full registrations (NIREP-like + CLARITY-like phantoms) |
//! | `fig4`   | Fig. 4  | runtime-breakdown bars for the Table 6 runs |
//! | `table7` | Table 7 | full-solver strong/weak scaling (functional + modeled) |
//! | `fig5`   | Fig. 5  | kernel-fraction bars for Table 7 |
//! | `ablation` | §4 text | store-∇m, IP order, P2P switch, β floor |
//!
//! Functional runs execute on the virtual cluster at CPU-feasible sizes
//! (the `CLAIRE_BENCH_N` environment variable scales them); paper-scale
//! numbers come from the calibrated model (`claire-perf`) and are printed
//! next to the published values.

use std::io::Write;

/// Base grid extent for functional runs (default 32; override with the
/// `CLAIRE_BENCH_N` environment variable).
pub fn bench_n() -> usize {
    std::env::var("CLAIRE_BENCH_N").ok().and_then(|s| s.parse().ok()).unwrap_or(32)
}

/// Render a simple horizontal bar of `value` against `max` (Fig. 4/5
/// text-mode bars).
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = if max > 0.0 { ((value / max) * width as f64).round() as usize } else { 0 };
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '█' } else { '·' });
    }
    s
}

/// Format a `[n1, n2, n3]` size like the paper (`512x256x256` or `256^3`).
pub fn fmt_size(n: [usize; 3]) -> String {
    if n[0] == n[1] && n[1] == n[2] {
        format!("{}^3", n[0])
    } else {
        format!("{}x{}x{}", n[0], n[1], n[2])
    }
}

/// Append a JSON record of an experiment result to `results/<name>.json`
/// (one JSON document per line) for EXPERIMENTS.md bookkeeping.
pub fn record_json(name: &str, json: &str) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(format!("{name}.jsonl")))
    {
        let _ = writeln!(f, "{json}");
    }
}

/// Print a section header.
pub fn header(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_renders_proportionally() {
        assert_eq!(bar(5.0, 10.0, 10), "█████·····");
        assert_eq!(bar(0.0, 10.0, 4), "····");
        assert_eq!(bar(10.0, 10.0, 4), "████");
        assert_eq!(bar(1.0, 0.0, 3), "···");
    }

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size([256, 256, 256]), "256^3");
        assert_eq!(fmt_size([512, 256, 256]), "512x256x256");
    }
}
