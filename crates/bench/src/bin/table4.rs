//! Table 4: MPI vs peer-to-peer all-to-all bandwidth.
//!
//! The measured link characteristics of the paper's system cannot be
//! reproduced on this host; this binary evaluates the calibrated link
//! model at exactly the paper's operating points (slab volumes of
//! 256³…1024³ over 4…128 ranks) and prints model vs published bandwidth,
//! plus which method the 512 kB auto-switch picks.

use claire_bench::{fmt_size, header};
use claire_mpi::{AlltoallMethod, LinkModel, Topology};
use claire_perf::paper::{TABLE4, TABLE45_TASKS};

fn main() {
    let link = LinkModel::default();
    header("Table 4 — sustained all-to-all bandwidth (GB/s): model (m) vs paper (p)");
    println!(
        "{:>14} {:>5} | {:>8} {:>8} | {:>8} {:>8} | {:>6} {:>9}",
        "size", "tasks", "MPI m", "MPI p", "P2P m", "P2P p", "switch", "pair vol"
    );
    let mut agree = 0usize;
    let mut total = 0usize;
    for row in &TABLE4 {
        let n = row.size;
        for (ti, &p) in TABLE45_TASKS.iter().enumerate() {
            let topo = Topology::longhorn(p);
            // local slab volume per rank: 8·N1·N2·(N3/2+1)/p bytes (Table 4 caption)
            let per_rank = 8 * n[0] * n[1] * (n[2] / 2 + 1) / p;
            let per_pair = per_rank / p;
            let bw_mpi = link.alltoall_bandwidth(per_rank, &topo, AlltoallMethod::VendorMpi) / 1e9;
            let bw_p2p = link.alltoall_bandwidth(per_rank, &topo, AlltoallMethod::PeerToPeer) / 1e9;
            let picked = AlltoallMethod::Auto.resolve(per_pair, &topo);
            let sw = match picked {
                AlltoallMethod::PeerToPeer => "P2P",
                AlltoallMethod::VendorMpi => "MPI",
                AlltoallMethod::Auto => "?",
            };
            // does the model agree with the paper about which method wins?
            let paper_winner_p2p = row.p2p[ti] > row.mpi[ti];
            let model_winner_p2p = bw_p2p > bw_mpi;
            total += 1;
            if paper_winner_p2p == model_winner_p2p {
                agree += 1;
            }
            println!(
                "{:>14} {:>5} | {:>8.1} {:>8.1} | {:>8.1} {:>8.1} | {:>6} {:>8}k",
                fmt_size(n),
                p,
                bw_mpi,
                row.mpi[ti],
                bw_p2p,
                row.p2p[ti],
                sw,
                per_pair / 1024
            );
        }
    }
    println!(
        "\nwinner agreement (model picks the same faster method as the paper): {agree}/{total} cells"
    );
    println!("shape check: P2P ≈ NVLink on one node (~36 GB/s), beats MPI for large per-pair");
    println!("volumes, collapses below the 512 kB switch where the vendor MPI wins.");
}
