//! Table 5: distributed 3D FFT (slab decomposition) scaling.
//!
//! Part A: functional forward+inverse transforms on the virtual cluster
//! at CPU-feasible sizes (verifies the communication pattern and measures
//! transpose traffic). Part B: paper-scale model vs published runtimes.

use claire_bench::{bench_n, fmt_size, header, record_json};
use claire_fft::DistFft;
use claire_grid::{Grid, Layout, ScalarField};
use claire_mpi::AlltoallMethod;
use claire_mpi::{run_cluster, CommCat, Topology};
use claire_perf::paper::{TABLE45_TASKS, TABLE5};
use claire_perf::{fft_pair_time, Machine};

fn main() {
    let n = bench_n();
    header("Table 5A — functional forward+inverse slab FFT on the virtual cluster");
    println!(
        "{:>14} {:>5} | {:>12} {:>14} | {:>16} {:>14}",
        "size", "ranks", "wall (s)", "modeled (s)", "transpose bytes", "bytes (formula)"
    );
    for p in [1usize, 2, 4] {
        let size = [n, n, n];
        let grid = Grid::new(size);
        let res = run_cluster(Topology::new(p, 4), move |comm| {
            let layout = Layout::distributed(grid, comm);
            let f =
                ScalarField::from_fn(layout, |x, y, z| (x + 0.2).sin() * y.cos() + (2.0 * z).sin());
            let dfft = DistFft::new(grid, comm);
            let t0 = std::time::Instant::now();
            let m0 = comm.clock().now();
            let spec = dfft.forward(&f, comm);
            let _ = dfft.inverse(spec, comm);
            (
                t0.elapsed().as_secs_f64(),
                comm.clock().now() - m0,
                comm.stats().cat(CommCat::FftTranspose).bytes_sent,
            )
        });
        let wall = res.outputs.iter().map(|o| o.0).fold(0.0, f64::max);
        let modeled = res.outputs.iter().map(|o| o.1).fold(0.0, f64::max);
        let bytes: u64 = res.outputs.iter().map(|o| o.2).sum();
        // closed form: pair ships 2 × (p-1)/p of the complex cube (16 B/f64 pair)
        let ncpx = (n * n * (n / 2 + 1)) as u64;
        let cpx_bytes = 2 * std::mem::size_of::<claire_grid::Real>() as u64;
        let formula = if p == 1 { 0 } else { 2 * ncpx * cpx_bytes * (p as u64 - 1) / p as u64 };
        println!(
            "{:>14} {:>5} | {:>12.3e} {:>14.3e} | {:>16} {:>14}",
            fmt_size(size),
            p,
            wall,
            modeled,
            bytes,
            formula
        );
        record_json(
            "table5",
            &format!(
                "{{\"size\":{size:?},\"p\":{p},\"wall\":{wall:.4e},\"transpose_bytes\":{bytes}}}"
            ),
        );
    }

    header("Table 5B — paper scale (ms per forward+inverse): model (m) vs published (p)");
    print!("{:>14} | {:>8} {:>8} |", "size", "1rank m", "1rank p");
    for t in TABLE45_TASKS {
        print!(" {:>7}m {:>7}p |", t, t);
    }
    println!();
    let machine = Machine::longhorn();
    for row in &TABLE5 {
        let m1 = fft_pair_time(&machine, row.size, 1, AlltoallMethod::Auto);
        print!(
            "{:>14} | {:>8.2} {:>8} |",
            fmt_size(row.size),
            m1.total() * 1e3,
            row.slab1.map(|v| format!("{v:.2}")).unwrap_or_else(|| "oom".into())
        );
        for (ti, &p) in TABLE45_TASKS.iter().enumerate() {
            let t = fft_pair_time(&machine, row.size, p, AlltoallMethod::Auto);
            print!(" {:>8.2} {:>8.2} |", t.total() * 1e3, row.ranks[ti]);
        }
        println!();
    }
    println!("\nshape check: single-node runs near cuFFT speed; scaling beyond one node first");
    println!("pays the off-node all-to-all, then wins back time for the large grids.");
}
