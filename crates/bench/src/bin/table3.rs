//! Table 3: scalability of the 8th-order FD first-derivative kernel.
//!
//! Part A: functional strong/weak scaling of `∇f` on the virtual cluster
//! (wall time, ghost traffic). Part B: paper-scale model vs published.

use claire_bench::{bench_n, fmt_size, header, record_json};
use claire_grid::{Grid, Layout, ScalarField};
use claire_mpi::{run_cluster, CommCat, Topology};
use claire_perf::paper::TABLE3;
use claire_perf::{fd_time, Machine};

fn main() {
    let n = bench_n();
    header("Table 3A — functional FD gradient on the virtual cluster");
    println!(
        "{:>5} {:>14} | {:>12} {:>14} | {:>12}",
        "GPUs", "size", "wall total", "modeled total", "ghost bytes"
    );
    let mut cases: Vec<(usize, [usize; 3])> = vec![(1, [n, n, n])];
    for p in [2usize, 4] {
        cases.push((p, [n, n, n])); // strong scaling
    }
    cases.push((2, [2 * n, n, n])); // weak scaling
    cases.push((4, [2 * n, 2 * n, n]));
    for (p, size) in cases {
        let grid = Grid::new(size);
        let res = run_cluster(Topology::new(p, 4), move |comm| {
            let layout = Layout::distributed(grid, comm);
            let f =
                ScalarField::from_fn(layout, |x, y, z| (x + 0.3).sin() * (2.0 * y).cos() + z.sin());
            let t0 = std::time::Instant::now();
            let m0 = comm.clock().now();
            let _ = claire_diff::fd::gradient(&f, comm);
            (
                t0.elapsed().as_secs_f64(),
                comm.clock().now() - m0,
                comm.stats().cat(CommCat::Ghost).bytes_sent,
            )
        });
        let wall = res.outputs.iter().map(|o| o.0).fold(0.0, f64::max);
        let modeled = res.outputs.iter().map(|o| o.1).fold(0.0, f64::max);
        let bytes: u64 = res.outputs.iter().map(|o| o.2).sum();
        println!(
            "{:>5} {:>14} | {:>12.3e} {:>14.3e} | {:>12}",
            p,
            fmt_size(size),
            wall,
            modeled,
            bytes
        );
        record_json(
            "table3",
            &format!("{{\"p\":{p},\"size\":{size:?},\"wall\":{wall:.4e},\"modeled\":{modeled:.4e},\"ghost_bytes\":{bytes}}}"),
        );
    }

    header("Table 3B — paper scale: modeled (m) vs published (p)");
    println!(
        "{:>5} {:>14} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10} | {:>7} {:>7}",
        "GPUs",
        "size",
        "comm m",
        "comm p",
        "kernel m",
        "kernel p",
        "total m",
        "total p",
        "%c m",
        "%c p"
    );
    let machine = Machine::longhorn();
    for row in &TABLE3 {
        let t = fd_time(&machine, row.size, row.gpus);
        let pct_p = if row.total > 0.0 { 100.0 * row.comm / row.total } else { 0.0 };
        println!(
            "{:>5} {:>14} | {:>10.2e} {:>10.2e} | {:>10.2e} {:>10.2e} | {:>10.2e} {:>10.2e} | {:>7.1} {:>7.1}",
            row.gpus, fmt_size(row.size),
            t.comm, row.comm, t.compute, row.kernel, t.total(), row.total,
            t.comm_pct(), pct_p
        );
    }
    println!("\nshape check: kernel scales ~1/p (strong) and stays constant (weak); the ghost");
    println!("exchange is ~constant, so its share grows — communication dominates beyond 8 GPUs.");
}
