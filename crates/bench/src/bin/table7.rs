//! Table 7: strong and weak scaling of the full solver (SYN dataset).
//!
//! Part A runs the *functional* experiment on the virtual cluster: the
//! paper's fixed-work configuration (5 Gauss–Newton iterations × 10 PCG
//! iterations, InvA, β = 1e−3, Nt = 4, linear interpolation) on the SYN
//! problem, at CPU-feasible sizes over 1–4 virtual GPUs. It reports
//! modeled time, modeled % communication, measured traffic, and the
//! memory-model estimate. Part B prints the paper-scale model against all
//! 17 published rows.
//!
//! With `--proc` the Part A ranks talk over the Unix-domain-socket
//! transport instead of in-process channels — the same wire path a
//! `claire-cli launch` cluster uses — so the traffic column reports real
//! framed bytes and the wall column includes genuine socket latency. The
//! numbers trajectory (mismatch, iterations, collective counts) is
//! bitwise-identical between the two modes.

use claire_bench::{bench_n, fmt_size, header, record_json};
use claire_core::{memory, observe, Claire, PrecondKind, RegistrationConfig};
use claire_data::syn::syn_problem;
use claire_grid::Layout;
use claire_interp::IpOrder;
use claire_mpi::{run_cluster, Topology};
use claire_perf::paper::TABLE7;
use claire_perf::{solver_time, Machine, SolverCounts};

fn main() {
    let n = bench_n();
    let proc_mode = std::env::args().any(|a| a == "--proc");
    let transport = if proc_mode { "socket transport" } else { "in-process channels" };
    header(&format!(
        "Table 7A — functional fixed-work solves (5 GN x 10 PCG, InvA, SYN) on the virtual cluster ({transport})",
    ));
    println!(
        "{:>12} {:>5} | {:>10} {:>12} {:>8} | {:>14} {:>10}",
        "size", "GPUs", "wall (s)", "modeled (s)", "%comm", "total MB sent", "mem model"
    );
    for (size, p) in [
        ([n, n, n], 1usize),
        ([n, n, n], 2),
        ([n, n, n], 4),
        ([2 * n, n, n], 2),
        ([2 * n, 2 * n, n], 4),
    ] {
        let grid = claire_grid::Grid::new(size);
        // Arm observability once per case; rank 0 assembles the RunReport
        // (spans are per-thread, the comm ledger per-rank; kernel timers
        // aggregate across the whole virtual cluster).
        observe::begin();
        let solve = move |comm: &mut claire_mpi::Comm| {
            let layout = Layout::distributed(grid, comm);
            let prob = syn_problem(size, comm);
            let _ = layout;
            let cfg = RegistrationConfig::builder()
                .nt(4)
                .ip_order(IpOrder::Linear)
                .precond(PrecondKind::InvA)
                .continuation(false)
                .beta(1e-3)
                .fixed_pcg(Some(10))
                .max_gn_iter(5)
                .grad_rtol(1e-30) // run all 5 iterations, as the paper fixes the work
                .build()
                .expect("valid configuration");
            let t0 = std::time::Instant::now();
            let mut claire = Claire::new(cfg);
            let (_, report) =
                claire.register_from(&prob.template, &prob.reference, None, "SYN", comm);
            let run =
                (comm.rank() == 0).then(|| observe::collect_run_report("table7", &report, comm));
            (t0.elapsed().as_secs_f64(), run)
        };
        let res = if proc_mode {
            claire_ipc::run_socket_cluster(Topology::new(p, 4), solve)
        } else {
            run_cluster(Topology::new(p, 4), solve)
        };
        let wall = res.outputs.iter().map(|o| o.0).fold(0.0, f64::max);
        let modeled = res.modeled_wall_time();
        let pct = 100.0 * res.modeled_comm_fraction();
        let mb = res.total_stats().total_bytes() as f64 / 1e6;
        let mem = memory::estimate(grid, 4, p, IpOrder::Linear, 4).total_gb();
        println!(
            "{:>12} {:>5} | {:>10.2} {:>12.4} {:>8.1} | {:>14.2} {:>9.3}G",
            fmt_size(size),
            p,
            wall,
            modeled,
            pct,
            mb,
            mem
        );
        let run = res.outputs[0].1.as_ref().expect("rank 0 collects the run report");
        println!(
            "{:>12}       | phases: fft {:.3}s  ip {:.3}s  fd {:.3}s   rank-0 collectives: {}",
            "",
            run.phases.fft_secs,
            run.phases.ip_secs,
            run.phases.fd_secs,
            run.collectives
                .iter()
                .map(|c| format!("{} x{}", c.op, c.calls))
                .collect::<Vec<_>>()
                .join(", ")
        );
        record_json("table7", &serde_json::to_string(run).unwrap());
    }

    header("Table 7B — paper scale: modeled (m) vs published (p)");
    println!(
        "{:>8} {:>5} | {:>8} {:>8} {:>5} {:>5} | {:>7} {:>7} | {:>7} {:>7} | {:>8} {:>8} {:>5} {:>5} | {:>6} {:>6}",
        "size", "GPUs", "FFT m", "FFT p", "%c m", "%c p", "SL m", "SL p", "FD m", "FD p",
        "all m", "all p", "%c m", "%c p", "GB m", "GB p"
    );
    let machine = Machine::longhorn();
    let counts = SolverCounts::table7();
    for row in &TABLE7 {
        let b = solver_time(&machine, row.size, row.gpus, &counts);
        let t = b.total();
        println!(
            "{:>8} {:>5} | {:>8.2} {:>8.2} {:>5.0} {:>5.0} | {:>7.2} {:>7.2} | {:>7.2} {:>7.2} | {:>8.2} {:>8.2} {:>5.0} {:>5.0} | {:>6.2} {:>6.2}",
            fmt_size(row.size), row.gpus,
            b.fft.total(), row.fft.0, b.fft.comm_pct(), row.fft.1,
            b.sl.total(), row.sl.0,
            b.fd.total(), row.fd.0,
            t.total(), row.overall.0, t.comm_pct(), row.overall.1,
            b.memory_gb, row.memory_gb
        );
    }
    println!("\nshape check: FFT dominates; %comm grows towards ~90% at scale; strong scaling of");
    println!(
        "512^3 saturates (communication-bound); 2048^3 on 256 GPUs is memory-limited (~12.5 GB)."
    );
}
