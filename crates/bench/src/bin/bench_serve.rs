//! Load generator for the `claire-serve` registration job service.
//!
//! Emits `BENCH_serve.json` (or the path given as the first non-flag CLI
//! argument). Four phases:
//!
//! 1. **Calibration** — one synthetic job on a 1-worker service measures
//!    the per-job service time this host sustains.
//! 2. **Concurrency levels** — for ≥ 2 worker counts, an *open-loop*
//!    producer submits jobs at a fixed rate derived from the calibration
//!    (offered load ≈ 1.25× the level's service capacity) using
//!    `try_submit`, so overload shows up as rejections rather than
//!    producer back-off. Reports throughput and end-to-end latency
//!    percentiles (p50/p95/p99) per level.
//! 3. **Overload** — a burst of back-to-back submissions against a
//!    capacity-2 queue demonstrates bounded-queue backpressure: the run
//!    fails unless some submissions are rejected and exactly
//!    `capacity + workers`-bounded work is accepted.
//! 4. **Batching** — the same identical-spec burst through one worker with
//!    job coalescing off vs on; reports jobs/s both ways, the speedup, and
//!    the largest batch the scheduler formed.
//! 5. **Networked** — the same jobs submitted through a loopback
//!    `NetServer` + `Client` pair: closed-loop end-to-end latency
//!    (p50/p95) with the result cache off, then cache-hit throughput with
//!    it on. These two emit `results` rows (`serve_net_e2e`,
//!    `serve_net_cache_hit`, jobs/s as `pairs_per_sec`) so `check_bench`
//!    gates them against `results/baselines/BENCH_serve.json`.
//!
//! `--smoke` shrinks the workload for CI (8³ grids, few jobs) while still
//! exercising every phase.

use std::time::{Duration, Instant};

use claire_core::{PrecondKind, RegistrationConfig};
use claire_serve::{
    Client, JobInput, JobSpec, JobStatus, NetServer, NetServerConfig, RegistrationService,
    ServiceConfig, SubmitError, WireJobSpec,
};
use serde::Serialize;

#[derive(Serialize)]
struct LevelRow {
    workers: usize,
    queue_capacity: usize,
    offered_rate_hz: f64,
    submitted: usize,
    completed: usize,
    rejected: usize,
    throughput_jobs_per_s: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

#[derive(Serialize)]
struct OverloadRow {
    workers: usize,
    queue_capacity: usize,
    submitted: usize,
    accepted: usize,
    rejected: usize,
}

#[derive(Serialize)]
struct BatchingRow {
    workers: usize,
    jobs: usize,
    max_batch: usize,
    seq_jobs_per_s: f64,
    batched_jobs_per_s: f64,
    /// Batched over sequential throughput on the same burst.
    batching_speedup: f64,
    /// Largest coalesced batch the scheduler actually formed.
    largest_batch: usize,
}

/// One gated row of the networked phase (`check_bench` keys on
/// `(kernel, n, threads, backend)` and gates `pairs_per_sec`).
#[derive(Serialize)]
struct NetRow {
    kernel: String,
    n: u64,
    threads: u64,
    backend: String,
    jobs: usize,
    pairs_per_sec: f64,
    p50_ms: f64,
    p95_ms: f64,
    /// Content-hash cache hits observed server-side during this row.
    cache_hits: u64,
}

#[derive(Serialize)]
struct Report {
    host_threads: usize,
    smoke: bool,
    calibration_run_secs: f64,
    levels: Vec<LevelRow>,
    overload: OverloadRow,
    batching: BatchingRow,
    /// Networked rows, under the standard perf-gate schema.
    results: Vec<NetRow>,
}

struct Workload {
    grid: usize,
    jobs_per_level: usize,
    overload_jobs: usize,
}

fn job_config() -> RegistrationConfig {
    RegistrationConfig {
        nt: 2,
        max_gn_iter: 2,
        max_pcg_iter: 4,
        continuation: false,
        precond: PrecondKind::InvA,
        verbose: false,
        ..Default::default()
    }
}

fn spec(label: String, grid: usize) -> JobSpec {
    JobSpec::new(label, job_config(), JobInput::Synthetic { n: [grid; 3] })
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// One job on a quiet 1-worker service: the baseline service time.
fn calibrate(grid: usize) -> f64 {
    let mut svc =
        RegistrationService::start(ServiceConfig::default().workers(1).collect_reports(false));
    let id = svc.submit(spec("calibrate".into(), grid)).expect("calibration admission");
    let res = svc.wait(id).expect("calibration job known");
    assert_eq!(res.status, JobStatus::Succeeded, "calibration failed: {:?}", res.error);
    svc.shutdown();
    res.run_time.as_secs_f64().max(1e-4)
}

/// Open-loop load at ~1.25× the level's service capacity.
fn run_level(workers: usize, per_job_secs: f64, w: &Workload) -> LevelRow {
    let queue_capacity = w.jobs_per_level;
    let mut svc = RegistrationService::start(
        ServiceConfig::default()
            .workers(workers)
            .queue_capacity(queue_capacity)
            .collect_reports(false),
    );
    let offered_rate_hz = 1.25 * workers as f64 / per_job_secs;
    let interval = Duration::from_secs_f64(1.0 / offered_rate_hz);

    let t0 = Instant::now();
    let mut ids = Vec::new();
    let mut rejected = 0usize;
    for j in 0..w.jobs_per_level {
        match svc.try_submit(spec(format!("w{workers}-j{j}"), w.grid)) {
            Ok(id) => ids.push(id),
            Err(SubmitError::QueueFull) => rejected += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
        // open loop: the producer holds its rate regardless of completions
        std::thread::sleep(interval);
    }
    let mut latencies_ms: Vec<f64> = ids
        .iter()
        .map(|&id| {
            let res = svc.wait(id).expect("submitted job known");
            assert_eq!(res.status, JobStatus::Succeeded, "{:?}", res.error);
            res.total.as_secs_f64() * 1e3
        })
        .collect();
    let elapsed = t0.elapsed().as_secs_f64();
    svc.shutdown();

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    LevelRow {
        workers,
        queue_capacity,
        offered_rate_hz,
        submitted: w.jobs_per_level,
        completed: ids.len(),
        rejected,
        throughput_jobs_per_s: ids.len() as f64 / elapsed.max(1e-9),
        p50_ms: percentile(&latencies_ms, 50.0),
        p95_ms: percentile(&latencies_ms, 95.0),
        p99_ms: percentile(&latencies_ms, 99.0),
    }
}

/// Back-to-back burst against a tiny queue: rejections must occur.
fn run_overload(w: &Workload) -> OverloadRow {
    let queue_capacity = 2;
    let mut svc = RegistrationService::start(
        ServiceConfig::default().workers(1).queue_capacity(queue_capacity).collect_reports(false),
    );
    let mut accepted = Vec::new();
    let mut rejected = 0usize;
    for j in 0..w.overload_jobs {
        match svc.try_submit(spec(format!("burst-{j}"), w.grid)) {
            Ok(id) => accepted.push(id),
            Err(SubmitError::QueueFull) => rejected += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    for id in &accepted {
        let res = svc.wait(*id).expect("accepted job known");
        assert_eq!(res.status, JobStatus::Succeeded, "{:?}", res.error);
    }
    svc.shutdown();
    assert!(
        rejected > 0,
        "bounded queue must reject under a {}-job burst at capacity {queue_capacity}",
        w.overload_jobs
    );
    OverloadRow {
        workers: 1,
        queue_capacity,
        submitted: w.overload_jobs,
        accepted: accepted.len(),
        rejected,
    }
}

/// Identical-spec burst through one worker, coalescing off vs on: the
/// service-level view of `BatchSolver` setup amortization. The first job
/// usually starts solo before companions queue up; the rest coalesce into
/// batches of up to `max_batch`.
fn run_batching(w: &Workload) -> BatchingRow {
    let jobs = w.overload_jobs;
    let max_batch = 8usize;
    let mut rates = [0.0f64; 2];
    let mut largest = 0usize;
    for (i, batching) in [false, true].into_iter().enumerate() {
        let mut svc = RegistrationService::start(
            ServiceConfig::default()
                .workers(1)
                .queue_capacity(jobs)
                .collect_reports(true)
                .batching(batching)
                .max_batch(max_batch),
        );
        let t0 = Instant::now();
        let ids: Vec<_> = (0..jobs)
            .map(|j| svc.submit(spec(format!("batching-{j}"), w.grid)).expect("burst admission"))
            .collect();
        for id in &ids {
            let res = svc.wait(*id).expect("submitted job known");
            assert_eq!(res.status, JobStatus::Succeeded, "{:?}", res.error);
            if batching {
                if let Some(run) = &res.run {
                    largest = largest.max(run.scheduling.batch_size);
                }
            }
        }
        let elapsed = t0.elapsed().as_secs_f64();
        svc.shutdown();
        rates[i] = jobs as f64 / elapsed.max(1e-9);
    }
    BatchingRow {
        workers: 1,
        jobs,
        max_batch,
        seq_jobs_per_s: rates[0],
        batched_jobs_per_s: rates[1],
        batching_speedup: rates[1] / rates[0].max(1e-9),
        largest_batch: largest,
    }
}

/// Closed-loop submissions over loopback TCP, result cache off: the wire
/// protocol's end-to-end overhead on top of the solve itself.
fn run_net_e2e(w: &Workload) -> NetRow {
    let cfg = ServiceConfig::default()
        .workers(1)
        .queue_capacity(w.jobs_per_level.max(4))
        .collect_reports(false);
    let mut server = NetServer::bind("127.0.0.1:0", NetServerConfig::default().service(cfg))
        .expect("bind loopback server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let mut latencies_ms = Vec::with_capacity(w.jobs_per_level);
    let t0 = Instant::now();
    for j in 0..w.jobs_per_level {
        let wire = WireJobSpec::from_spec(&spec(format!("net-{j}"), w.grid));
        let t = Instant::now();
        let adm = client.submit(&wire).expect("net submission");
        let res = client.wait(adm.id).expect("net result");
        assert_eq!(res.status, JobStatus::Succeeded, "{:?}", res.error);
        assert!(!adm.cached, "cache is off in the e2e row");
        latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    server.shutdown();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    NetRow {
        kernel: "serve_net_e2e".into(),
        n: w.grid as u64,
        threads: 1,
        backend: String::new(),
        jobs: w.jobs_per_level,
        pairs_per_sec: w.jobs_per_level as f64 / elapsed.max(1e-9),
        p50_ms: percentile(&latencies_ms, 50.0),
        p95_ms: percentile(&latencies_ms, 95.0),
        cache_hits: 0,
    }
}

/// Identical submissions against a cache-enabled server: after one warm-up
/// solve every request is served from the content-hash cache, so this row
/// measures pure protocol + cache throughput.
fn run_net_cache(w: &Workload) -> NetRow {
    let cfg = ServiceConfig::default()
        .workers(1)
        .queue_capacity(4)
        .collect_reports(false)
        .result_cache(8);
    let mut server = NetServer::bind("127.0.0.1:0", NetServerConfig::default().service(cfg))
        .expect("bind loopback server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let wire = WireJobSpec::from_spec(&spec("net-cache".into(), w.grid));
    let warm = client.submit(&wire).expect("warm-up submission");
    assert!(!warm.cached);
    let res = client.wait(warm.id).expect("warm-up result");
    assert_eq!(res.status, JobStatus::Succeeded, "{:?}", res.error);

    let hits = w.overload_jobs;
    let mut latencies_ms = Vec::with_capacity(hits);
    let t0 = Instant::now();
    for _ in 0..hits {
        let t = Instant::now();
        let adm = client.submit(&wire).expect("cache-hit submission");
        assert!(adm.cached, "identical content must hit the cache");
        let res = client.wait(adm.id).expect("cache-hit result");
        assert_eq!(res.status, JobStatus::Succeeded);
        assert!(res.cached);
        latencies_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = server.service().cache_stats();
    assert_eq!(server.service().solver_invocations(), 1, "hits must not run the solver");
    server.shutdown();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    NetRow {
        kernel: "serve_net_cache_hit".into(),
        n: w.grid as u64,
        threads: 1,
        backend: String::new(),
        jobs: hits,
        pairs_per_sec: hits as f64 / elapsed.max(1e-9),
        p50_ms: percentile(&latencies_ms, 50.0),
        p95_ms: percentile(&latencies_ms, 95.0),
        cache_hits: stats.hits,
    }
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_serve.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let w = if smoke {
        // Pin intra-solver parallelism in the CI smoke config so the run
        // does not depend on the host's concurrency (grid sizes are pinned
        // by the workload below).
        claire_par::set_threads(1);
        Workload { grid: 8, jobs_per_level: 4, overload_jobs: 8 }
    } else {
        Workload { grid: 16, jobs_per_level: 12, overload_jobs: 16 }
    };
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    eprintln!("bench_serve: calibrating ({}^3 job)...", w.grid);
    let per_job = calibrate(w.grid);
    eprintln!("bench_serve: per-job service time {:.1} ms", per_job * 1e3);

    let mut levels = Vec::new();
    for workers in [1usize, 2] {
        eprintln!(
            "bench_serve: level workers={workers}, {} jobs, offered {:.2} jobs/s...",
            w.jobs_per_level,
            1.25 * workers as f64 / per_job
        );
        let row = run_level(workers, per_job, &w);
        eprintln!(
            "bench_serve:   throughput {:.2} jobs/s, p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms, rejected {}",
            row.throughput_jobs_per_s, row.p50_ms, row.p95_ms, row.p99_ms, row.rejected
        );
        levels.push(row);
    }

    eprintln!("bench_serve: overload burst ({} jobs, capacity 2)...", w.overload_jobs);
    let overload = run_overload(&w);
    eprintln!(
        "bench_serve:   accepted {}, rejected {} — bounded-queue backpressure holds",
        overload.accepted, overload.rejected
    );

    eprintln!(
        "bench_serve: batching burst ({} identical jobs, coalescing off vs on)...",
        w.overload_jobs
    );
    let batching = run_batching(&w);
    eprintln!(
        "bench_serve:   sequential {:.2} jobs/s, batched {:.2} jobs/s ({:.2}x), largest batch {}",
        batching.seq_jobs_per_s,
        batching.batched_jobs_per_s,
        batching.batching_speedup,
        batching.largest_batch
    );

    eprintln!("bench_serve: networked e2e over loopback ({} jobs, cache off)...", w.jobs_per_level);
    let net_e2e = run_net_e2e(&w);
    eprintln!(
        "bench_serve:   {:.2} jobs/s end-to-end, p50 {:.1} ms, p95 {:.1} ms",
        net_e2e.pairs_per_sec, net_e2e.p50_ms, net_e2e.p95_ms
    );
    eprintln!("bench_serve: networked cache hits ({} identical jobs)...", w.overload_jobs);
    let net_cache = run_net_cache(&w);
    eprintln!(
        "bench_serve:   {:.2} hits/s, p50 {:.2} ms ({} server-side hits, 1 solve)",
        net_cache.pairs_per_sec, net_cache.p50_ms, net_cache.cache_hits
    );

    let report = Report {
        host_threads: host,
        smoke,
        calibration_run_secs: per_job,
        levels,
        overload,
        batching,
        results: vec![net_e2e, net_cache],
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_serve.json");
    eprintln!("wrote {out_path}");
}
