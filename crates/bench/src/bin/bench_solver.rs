//! Solver bench smoke-run: ns/grid-point and heap allocations per
//! steady-state Gauss–Newton iteration.
//!
//! Emits `BENCH_solver.json` in the repo root (or the path given as the
//! first CLI argument). Complements `bench_kernels` (isolated kernels) by
//! timing whole Gauss–Newton iterations of the end-to-end solver, with a
//! counting global allocator sampled at iteration boundaries — the number
//! the workspace-pool + plan-cache work drives to zero.
//!
//! Configuration is pinned for cross-host comparability: 1 thread
//! (claire-par serial fallback), 32³ and 48³ grids, nt = 2, InvA, no
//! continuation, once per requested SIMD backend (`scalar`, `portable`,
//! and `auto`). A warm-up solve fills the pools and plan caches before
//! the measured solve, so the reported rows describe the steady state.
//! The GN iteration includes the fused PCG field-op chains, so its
//! `ns_per_point` row gates the fusion work end to end, and its
//! `allocs_per_iter` field asserts the fused loop stayed allocation-free.
//!
//! Each configuration runs at both precisions (`gn_iteration` /
//! `gn_iteration_mixed`), and a `pcg_h0` / `pcg_h0_mixed` row pair times a
//! fixed-iteration inner PCG on the zero-velocity Hessian at 64³ and 96³
//! — both widths on the identical schedule — so the committed baseline
//! pins the mixed-precision speedup of the PCG-dominated phase.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use claire_core::{Claire, Precision, PrecondKind, RegistrationConfig, SolverHooks};
use claire_diff::SpectralT;
use claire_fft::FftElem;
use claire_grid::{Grid, Layout, Real, ScalarField, VectorField, VectorFieldT, WsCat};
use claire_mpi::Comm;
use claire_opt::{pcg, PcgConfig, PcgOperator};
use claire_par::alloc_counter::{allocation_count, CountingAlloc};
use claire_par::set_threads;
use serde::Serialize;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[derive(Serialize)]
struct SolverRow {
    kernel: String,
    n: usize,
    threads: usize,
    backend: String,
    nt: usize,
    gn_iters: usize,
    /// Mean wall-clock ns per grid point per steady-state GN iteration
    /// (first iteration excluded — it warms per-solve state).
    ns_per_point: f64,
    total_ms: f64,
    /// Heap allocations per steady-state GN iteration (max over the
    /// measured tail; 0 = the pool/plan-cache hot path holds).
    allocs_per_iter: u64,
}

#[derive(Serialize)]
struct Report {
    threads: usize,
    results: Vec<SolverRow>,
}

fn blob_pair(layout: Layout, shift: Real) -> (ScalarField, ScalarField) {
    let blob = move |cx: Real| {
        move |x: Real, y: Real, z: Real| {
            let d2 = (x - cx).powi(2) + (y - 3.0).powi(2) + (z - 3.0).powi(2);
            (-d2 / 1.2).exp()
        }
    };
    (ScalarField::from_fn(layout, blob(3.0)), ScalarField::from_fn(layout, blob(3.0 + shift)))
}

fn bench_grid(n: usize, backend: &str, precision: Precision) -> SolverRow {
    let nt = 2;
    let cfg = RegistrationConfig {
        nt,
        precond: PrecondKind::InvA,
        continuation: false,
        grid_continuation: false,
        beta_target: 1e-2,
        max_gn_iter: 6,
        max_pcg_iter: 5,
        grad_rtol: 1e-14, // run all iterations; this measures cost, not fit
        precision,
        verbose: false,
        ..Default::default()
    };
    let mut comm = Comm::solo();
    let layout = Layout::serial(Grid::cube(n));
    let (m0, m1) = blob_pair(layout, 0.5);

    // warm-up: fill workspace pools and FFT plan caches
    let _ = Claire::new(cfg).register(&m0, &m1, &mut comm);

    // measured solve: sample wall clock + allocation counter per boundary
    let samples: Arc<Mutex<Vec<(Instant, u64)>>> = Arc::new(Mutex::new(Vec::with_capacity(64)));
    let sink = samples.clone();
    let hooks = SolverHooks {
        cancel: None,
        on_gn_iter: Some(Arc::new(move |_| {
            sink.lock().unwrap().push((Instant::now(), allocation_count()));
        })),
    };
    let t0 = Instant::now();
    let (_, report) = Claire::with_hooks(cfg, hooks).register(&m0, &m1, &mut comm);
    let total_ms = t0.elapsed().as_secs_f64() * 1e3;

    let s = samples.lock().unwrap();
    assert!(s.len() >= 3, "expected several GN boundaries, got {}", s.len());
    // skip the first gap (per-solve warm-up) when averaging
    let gaps: Vec<(f64, u64)> = s
        .windows(2)
        .skip(1)
        .map(|w| ((w[1].0 - w[0].0).as_nanos() as f64, w[1].1 - w[0].1))
        .collect();
    let points = (n * n * n) as f64;
    let ns_per_point = gaps.iter().map(|g| g.0).sum::<f64>() / (gaps.len() as f64 * points);
    let allocs_per_iter = gaps.iter().map(|g| g.1).max().unwrap_or(0);

    SolverRow {
        kernel: match precision {
            Precision::F64 => "gn_iteration".to_string(),
            Precision::Mixed => "gn_iteration_mixed".to_string(),
        },
        n,
        threads: 1,
        backend: backend.to_string(),
        nt,
        gn_iters: report.gn_iters,
        ns_per_point,
        total_ms,
        allocs_per_iter,
    }
}

/// The zero-velocity Hessian `H0 = βA + ∇m̄ ⊗ ∇m̄` solved by PCG with the
/// `(βA)⁻¹` left preconditioner — the paper's inner solve, and the part of
/// a Gauss-Newton iteration the mixed-precision seam runs at f32. Same
/// operator structure as claire-core's `InvH0` apply, generic over the
/// element width so the `pcg_h0` / `pcg_h0_mixed` row pair isolates the
/// PCG-dominated phase at both widths.
struct H0Bench<'a, T: FftElem> {
    spectral: &'a SpectralT<T>,
    grad: &'a VectorFieldT<T>,
    beta: f64,
}

impl<T: FftElem> PcgOperator<T> for H0Bench<'_, T> {
    fn apply(&mut self, s: &VectorFieldT<T>, comm: &mut Comm) -> VectorFieldT<T> {
        let mut out = self.spectral.reg_apply(s, self.beta, comm);
        let mut w = claire_grid::ScalarFieldT::<T>::zeros(*s.layout());
        for d in 0..3 {
            w.add_scaled_product(T::ONE, &self.grad.c[d], &s.c[d]);
        }
        for d in 0..3 {
            out.c[d].add_scaled_product(T::ONE, &self.grad.c[d], &w);
        }
        out
    }

    fn prec(&mut self, r: &VectorFieldT<T>, comm: &mut Comm) -> VectorFieldT<T> {
        self.spectral.reg_inv(r, self.beta, comm)
    }
}

/// ns per grid point per inner-PCG iteration on the H0 system at element
/// width `T`, pinned to a fixed iteration count (`tol_rel = 0`) so both
/// widths run the identical schedule and the row pair measures pure
/// per-iteration cost.
fn bench_pcg_h0<T: FftElem>(n: usize, backend: &str, kernel: &str) -> SolverRow {
    let layout = Layout::serial(Grid::cube(n));
    let mut comm = Comm::solo();
    let spectral = SpectralT::<T>::new(layout.grid, &comm);
    let grad64 = VectorField::from_fns(
        layout,
        |x, y, _| (x - 3.0) * (-(x - 3.0) * (x - 3.0) - (y - 3.0) * (y - 3.0)).exp(),
        |_, y, z| (y - 3.0) * (-(y - 3.0) * (y - 3.0) - (z - 3.0) * (z - 3.0)).exp(),
        |x, _, z| (z - 3.0) * (-(z - 3.0) * (z - 3.0) - (x - 3.0) * (x - 3.0)).exp(),
    );
    let rhs64 = VectorField::from_fns(
        layout,
        |x, y, z| (x + 0.5 * y).sin() * z.cos(),
        |x, y, z| (y + 0.5 * z).sin() * x.cos(),
        |x, y, z| (z + 0.5 * x).sin() * y.cos(),
    );
    let grad: VectorFieldT<T> = grad64.converted(WsCat::Other);
    let rhs: VectorFieldT<T> = rhs64.converted(WsCat::Other);
    let mut ops = H0Bench { spectral: &spectral, grad: &grad, beta: 1e-2 };
    let iters = 12usize;
    let cfg = PcgConfig { tol_rel: 0.0, max_iter: iters, trace: false };

    // warm-up: plan the FFTs, fill the width's workspace pools
    let _ = pcg(&rhs, None, &cfg, &mut ops, &mut comm);

    let reps = 3usize;
    let mut best = std::time::Duration::MAX;
    let mut allocs = u64::MAX;
    let mut done = 0usize;
    for _ in 0..3 {
        let a0 = allocation_count();
        let t0 = Instant::now();
        for _ in 0..reps {
            let (_, res) = pcg(&rhs, None, &cfg, &mut ops, &mut comm);
            done = res.iters;
        }
        best = best.min(t0.elapsed());
        allocs = allocs.min(allocation_count() - a0);
    }
    assert_eq!(done, iters, "fixed-iteration PCG must run the pinned schedule");
    let points = (n * n * n) as f64;
    SolverRow {
        kernel: kernel.to_string(),
        n,
        threads: 1,
        backend: backend.to_string(),
        nt: 0,
        gn_iters: iters,
        ns_per_point: best.as_nanos() as f64 / (reps as f64 * iters as f64 * points),
        total_ms: best.as_secs_f64() * 1e3,
        allocs_per_iter: allocs / (reps as u64 * iters as u64),
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_solver.json".into());
    set_threads(1); // pinned: serial fallback, deterministic row set

    let mut results = Vec::new();
    for (choice, backend) in [
        (claire_simd::Choice::Scalar, "scalar"),
        (claire_simd::Choice::Portable, "portable"),
        (claire_simd::Choice::Auto, "auto"),
    ] {
        claire_simd::force_backend(Some(choice));
        for n in [32usize, 48] {
            for precision in [Precision::F64, Precision::Mixed] {
                eprintln!(
                    "bench_solver: {n}^3, 1 thread, backend={backend}, {}...",
                    precision.label()
                );
                let row = bench_grid(n, backend, precision);
                eprintln!(
                    "bench_solver:   {:.1} ns/pt per GN iter, {} alloc(s)/iter over {} iters",
                    row.ns_per_point, row.allocs_per_iter, row.gn_iters
                );
                results.push(row);
            }
        }
        // the PCG-dominated phase in isolation: identical fixed-iteration
        // inner solves at f64 and f32 widths. Larger grids than the GN rows:
        // the mixed win is halved memory traffic, which only shows once the
        // working set leaves the last-level cache.
        for n in [64usize, 96] {
            let r64 = bench_pcg_h0::<f64>(n, backend, "pcg_h0");
            let r32 = bench_pcg_h0::<f32>(n, backend, "pcg_h0_mixed");
            eprintln!(
                "bench_solver:   pcg_h0 {n}^3 {:.1} ns/pt vs mixed {:.1} ns/pt ({:.2}x)",
                r64.ns_per_point,
                r32.ns_per_point,
                r64.ns_per_point / r32.ns_per_point
            );
            results.push(r64);
            results.push(r32);
        }
    }
    claire_simd::force_backend(None); // back to env-based resolution
    set_threads(0); // restore default resolution

    let report = Report { threads: 1, results };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_solver.json");
    eprintln!("wrote {out_path}");
}
