//! Solver bench smoke-run: ns/grid-point and heap allocations per
//! steady-state Gauss–Newton iteration.
//!
//! Emits `BENCH_solver.json` in the repo root (or the path given as the
//! first CLI argument). Complements `bench_kernels` (isolated kernels) by
//! timing whole Gauss–Newton iterations of the end-to-end solver, with a
//! counting global allocator sampled at iteration boundaries — the number
//! the workspace-pool + plan-cache work drives to zero.
//!
//! Configuration is pinned for cross-host comparability: 1 thread
//! (claire-par serial fallback), 32³ and 48³ grids, nt = 2, InvA, no
//! continuation, once per requested SIMD backend (`scalar`, `portable`,
//! and `auto`). A warm-up solve fills the pools and plan caches before
//! the measured solve, so the reported rows describe the steady state.
//! The GN iteration includes the fused PCG field-op chains, so its
//! `ns_per_point` row gates the fusion work end to end, and its
//! `allocs_per_iter` field asserts the fused loop stayed allocation-free.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use claire_core::{Claire, PrecondKind, RegistrationConfig, SolverHooks};
use claire_grid::{Grid, Layout, Real, ScalarField};
use claire_mpi::Comm;
use claire_par::alloc_counter::{allocation_count, CountingAlloc};
use claire_par::set_threads;
use serde::Serialize;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[derive(Serialize)]
struct SolverRow {
    kernel: String,
    n: usize,
    threads: usize,
    backend: String,
    nt: usize,
    gn_iters: usize,
    /// Mean wall-clock ns per grid point per steady-state GN iteration
    /// (first iteration excluded — it warms per-solve state).
    ns_per_point: f64,
    total_ms: f64,
    /// Heap allocations per steady-state GN iteration (max over the
    /// measured tail; 0 = the pool/plan-cache hot path holds).
    allocs_per_iter: u64,
}

#[derive(Serialize)]
struct Report {
    threads: usize,
    results: Vec<SolverRow>,
}

fn blob_pair(layout: Layout, shift: Real) -> (ScalarField, ScalarField) {
    let blob = move |cx: Real| {
        move |x: Real, y: Real, z: Real| {
            let d2 = (x - cx).powi(2) + (y - 3.0).powi(2) + (z - 3.0).powi(2);
            (-d2 / 1.2).exp()
        }
    };
    (ScalarField::from_fn(layout, blob(3.0)), ScalarField::from_fn(layout, blob(3.0 + shift)))
}

fn bench_grid(n: usize, backend: &str) -> SolverRow {
    let nt = 2;
    let cfg = RegistrationConfig {
        nt,
        precond: PrecondKind::InvA,
        continuation: false,
        grid_continuation: false,
        beta_target: 1e-2,
        max_gn_iter: 6,
        max_pcg_iter: 5,
        grad_rtol: 1e-14, // run all iterations; this measures cost, not fit
        verbose: false,
        ..Default::default()
    };
    let mut comm = Comm::solo();
    let layout = Layout::serial(Grid::cube(n));
    let (m0, m1) = blob_pair(layout, 0.5);

    // warm-up: fill workspace pools and FFT plan caches
    let _ = Claire::new(cfg).register(&m0, &m1, &mut comm);

    // measured solve: sample wall clock + allocation counter per boundary
    let samples: Arc<Mutex<Vec<(Instant, u64)>>> = Arc::new(Mutex::new(Vec::with_capacity(64)));
    let sink = samples.clone();
    let hooks = SolverHooks {
        cancel: None,
        on_gn_iter: Some(Arc::new(move |_| {
            sink.lock().unwrap().push((Instant::now(), allocation_count()));
        })),
    };
    let t0 = Instant::now();
    let (_, report) = Claire::with_hooks(cfg, hooks).register(&m0, &m1, &mut comm);
    let total_ms = t0.elapsed().as_secs_f64() * 1e3;

    let s = samples.lock().unwrap();
    assert!(s.len() >= 3, "expected several GN boundaries, got {}", s.len());
    // skip the first gap (per-solve warm-up) when averaging
    let gaps: Vec<(f64, u64)> = s
        .windows(2)
        .skip(1)
        .map(|w| ((w[1].0 - w[0].0).as_nanos() as f64, w[1].1 - w[0].1))
        .collect();
    let points = (n * n * n) as f64;
    let ns_per_point = gaps.iter().map(|g| g.0).sum::<f64>() / (gaps.len() as f64 * points);
    let allocs_per_iter = gaps.iter().map(|g| g.1).max().unwrap_or(0);

    SolverRow {
        kernel: "gn_iteration".to_string(),
        n,
        threads: 1,
        backend: backend.to_string(),
        nt,
        gn_iters: report.gn_iters,
        ns_per_point,
        total_ms,
        allocs_per_iter,
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_solver.json".into());
    set_threads(1); // pinned: serial fallback, deterministic row set

    let mut results = Vec::new();
    for (choice, backend) in [
        (claire_simd::Choice::Scalar, "scalar"),
        (claire_simd::Choice::Portable, "portable"),
        (claire_simd::Choice::Auto, "auto"),
    ] {
        claire_simd::force_backend(Some(choice));
        for n in [32usize, 48] {
            eprintln!("bench_solver: {n}^3, 1 thread, backend={backend}...");
            let row = bench_grid(n, backend);
            eprintln!(
                "bench_solver:   {:.1} ns/pt per GN iter, {} alloc(s)/iter over {} iters",
                row.ns_per_point, row.allocs_per_iter, row.gn_iters
            );
            results.push(row);
        }
    }
    claire_simd::force_backend(None); // back to env-based resolution
    set_threads(0); // restore default resolution

    let report = Report { threads: 1, results };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_solver.json");
    eprintln!("wrote {out_path}");
}
