//! Table 2: weak scaling of the semi-Lagrangian interpolation kernel.
//!
//! Part A runs the *functional* experiment on the virtual cluster at
//! CPU-feasible sizes: advect a brain phantom with a registration-scale
//! velocity (cubic interpolation, Nt = 4) and report the five instrumented
//! phases — wall time on this host, plus byte-accurate traffic.
//!
//! Part B regenerates the paper-scale table from the calibrated model and
//! prints it next to the published values.

use claire_bench::{bench_n, fmt_size, header, record_json};
use claire_data::brain;
use claire_grid::{Layout, ScalarField};
use claire_interp::{Interpolator, IpOrder};
use claire_mpi::{run_cluster, CommCat, Topology};
use claire_perf::paper::TABLE2;
use claire_perf::{sl_phases, Machine};
use claire_semilag::{Trajectory, Transport};

fn main() {
    let n = bench_n();
    header("Table 2A — functional semi-Lagrangian advection on the virtual cluster");
    println!(
        "{:>14} {:>5} | {:>11} {:>11} {:>11} {:>13} {:>11} | {:>12} {:>12}",
        "size",
        "GPUs",
        "ghost_comm",
        "interp_comm",
        "scatter_comm",
        "interp_kernel",
        "scatter_buf",
        "ghost bytes",
        "scatter bytes"
    );
    // weak scaling: 1 -> 2 -> 4 virtual GPUs, growing the grid alongside
    let cases = [([n, n, n], 1usize), ([2 * n, n, n], 2), ([2 * n, 2 * n, n], 4)];
    for (size, p) in cases {
        let grid = claire_grid::Grid::new(size);
        let res = run_cluster(Topology::new(p, 4), move |comm| {
            let layout = Layout::distributed(grid, comm);
            let m0 = brain::subject("na10", layout, comm);
            let v = brain::random_smooth_velocity(layout, 42, 0.4, 2);
            let mut ip = Interpolator::new(IpOrder::Cubic);
            let transport = Transport::new(4, IpOrder::Cubic);
            let traj = Trajectory::compute(&v, 4, &mut ip, comm);
            ip.reset_stats(); // isolate the advection itself, like the paper
            let g0 = comm.stats().cat(CommCat::Ghost).bytes_sent;
            let s0 = comm.stats().cat(CommCat::Scatter).bytes_sent;
            let _m: ScalarField = {
                let mut sol = transport.solve_state(&traj, &m0, false, &mut ip, comm);
                sol.m.pop().unwrap()
            };
            let ghost_bytes = comm.stats().cat(CommCat::Ghost).bytes_sent - g0;
            let scatter_bytes = comm.stats().cat(CommCat::Scatter).bytes_sent - s0;
            (ip.stats, ghost_bytes, scatter_bytes)
        });
        // report rank 0 (ranks are symmetric for this workload)
        let (stats, gb, sb) = &res.outputs[0];
        let w = stats.wall;
        println!(
            "{:>14} {:>5} | {:>11.3e} {:>11.3e} {:>11.3e} {:>13.3e} {:>11.3e} | {:>12} {:>12}",
            fmt_size(size),
            p,
            w.ghost_comm,
            w.interp_comm,
            w.scatter_comm,
            w.interp_kernel,
            w.scatter_mpi_buffer,
            gb,
            sb
        );
        record_json(
            "table2",
            &format!(
                "{{\"size\":{size:?},\"p\":{p},\"wall_kernel\":{:.4e},\"ghost_bytes\":{gb},\"scatter_bytes\":{sb}}}",
                w.interp_kernel
            ),
        );
    }

    header("Table 2B — paper scale: modeled (this work) vs published (paper)");
    println!(
        "{:>14} {:>5} | {:>22} {:>22} {:>22} {:>24} {:>22} {:>18}",
        "size",
        "GPUs",
        "ghost_comm m|p",
        "interp_comm m|p",
        "scatter_comm m|p",
        "interp_kernel m|p",
        "scatter_buf m|p",
        "total m|p"
    );
    let machine = Machine::longhorn();
    for row in &TABLE2 {
        let m = sl_phases(&machine, row.size, row.gpus, true, 4);
        println!(
            "{:>14} {:>5} | {:>10.2e} {:>10.2e}  {:>10.2e} {:>10.2e}  {:>10.2e} {:>10.2e}  {:>11.2e} {:>11.2e}  {:>10.2e} {:>10.2e}  {:>8.2e} {:>8.2e}",
            fmt_size(row.size), row.gpus,
            m.ghost_comm, row.ghost_comm,
            m.interp_comm, row.interp_comm,
            m.scatter_comm, row.scatter_comm,
            m.interp_kernel, row.interp_kernel,
            m.scatter_mpi_buffer, row.scatter_mpi_buffer,
            m.total(), row.total,
        );
    }
    println!(
        "\nshape check: interp_kernel ~constant under weak scaling; ghost/scatter/interp comm"
    );
    println!("roughly double whenever N2 or N3 doubles; communication dominates beyond 16 GPUs.");
}
