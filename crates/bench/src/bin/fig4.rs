//! Fig. 4: runtime-breakdown bars (PC / Objective / Gradient / Hessian /
//! Other) for the Table 6 registrations.
//!
//! Runs the na10 → na01 registration with each preconditioner and renders
//! the allocated-runtime bars the paper visualizes, using the modeled
//! V100 timings (and wall times for reference). Paper shape: the Newton
//! step (Hessian + PC) dominates; 2LInvH0 shrinks the PC share vs InvH0
//! and the Hessian share vs InvA.

use claire_bench::{bar, bench_n, header, record_json};
use claire_core::{Claire, PrecondKind, RegistrationConfig};
use claire_data::brain;
use claire_grid::{Grid, Layout};
use claire_interp::IpOrder;
use claire_mpi::Comm;

fn main() {
    let n = bench_n();
    let mut comm = Comm::solo();
    let layout = Layout::serial(Grid::cube(n));
    let reference = brain::subject("na01", layout, &mut comm);
    let template = brain::subject("na10", layout, &mut comm);

    header(&format!(
        "Fig. 4 — solver runtime breakdown at {n}^3 (na10 → na01, modeled V100 seconds)"
    ));
    let mut rows = Vec::new();
    for pc in [PrecondKind::InvA, PrecondKind::InvH0, PrecondKind::TwoLevelInvH0] {
        let cfg = RegistrationConfig::builder()
            .nt(4)
            .ip_order(IpOrder::Cubic) // see table6.rs: cubic at coarse grids
            .precond(pc)
            .max_gn_iter(10)
            .build()
            .expect("valid configuration");
        let mut claire = Claire::new(cfg);
        let (_, r) = claire.register_from(&template, &reference, None, "na10", &mut comm);
        rows.push(r);
    }
    let max_total = rows.iter().map(|r| r.modeled_total).fold(0.0, f64::max);
    for r in &rows {
        let other =
            (r.modeled_total - r.modeled_pc - r.modeled_obj - r.modeled_grad - r.modeled_hess)
                .max(0.0);
        println!(
            "{:>8}  |{}| total {:.3e}s",
            r.pc,
            bar(r.modeled_total, max_total, 40),
            r.modeled_total
        );
        println!(
            "          PC {:.3e} / Obj {:.3e} / Grad {:.3e} / Hess {:.3e} / Other {:.3e}",
            r.modeled_pc, r.modeled_obj, r.modeled_grad, r.modeled_hess, other
        );
        record_json("fig4", &serde_json::to_string(&r).unwrap());
    }

    println!("\npaper reference (256^3, na10, seconds): ");
    println!(
        "  InvReg : PC 0.558 / Obj 0.25  / Grad 0.525 / Hess 4.76 / Other 1.52   (total 7.61)"
    );
    println!(
        "  InvH0  : PC 3.17  / Obj 0.248 / Grad 0.525 / Hess 1.91 / Other 1.4    (total 7.25)"
    );
    println!(
        "  2LInvH0: PC 1.22  / Obj 0.249 / Grad 0.526 / Hess 2.01 / Other 1.45   (total 5.45)"
    );
    println!("\nshape check: InvA spends its time in Hessian matvecs; InvH0 moves that cost into");
    println!("the preconditioner; 2LInvH0 cuts the PC cost ~2-3x by solving on the coarse grid.");
}
