//! Fig. 3: PCG residual vs iterations for the three preconditioners.
//!
//! Reproduces the paper's setup: the reference image is synthesized by
//! transporting the template with a known velocity `v⋆`, and the
//! reduced-space Hessian system `H ṽ = −g` is solved *at the true
//! solution* `v = v⋆` for β ∈ {5e−1, 1e−1, 5e−2} and three grid sizes
//! (scaled down from the paper's 128³/256³/512³ per DESIGN.md).
//!
//! Expected shape (paper Fig. 3): InvA needs the most iterations and
//! degrades as β shrinks; InvH0 and 2LInvH0 converge in far fewer
//! iterations and are nearly β- and mesh-independent.

use claire_bench::{bench_n, fmt_size, header, record_json};
use claire_core::{PrecondKind, RegProblem, RegistrationConfig};
use claire_data::truth::fig3_problem;
use claire_grid::{Grid, Layout, VectorField};
use claire_interp::IpOrder;
use claire_mpi::Comm;
use claire_opt::{pcg, GnProblem, PcgConfig, PcgOperator};
use claire_perf::paper::FIG3;

struct HessOps<'a> {
    prob: &'a mut RegProblem,
    eps_k: f64,
}

impl PcgOperator for HessOps<'_> {
    fn apply(&mut self, p: &VectorField, comm: &mut Comm) -> VectorField {
        self.prob.hess_vec(p, comm)
    }
    fn prec(&mut self, r: &VectorField, comm: &mut Comm) -> VectorField {
        self.prob.precond(r, self.eps_k, comm)
    }
}

fn iters_to(trace: &[f64], tol: f64) -> String {
    match trace.iter().position(|&r| r <= tol) {
        Some(i) => format!("{i}"),
        None => format!(">{}", trace.len().saturating_sub(1)),
    }
}

fn main() {
    let n0 = bench_n() / 2;
    let sizes = [n0, n0 * 3 / 2, n0 * 2];
    let betas = [5e-1, 1e-1, 5e-2];
    let pcs = [PrecondKind::InvA, PrecondKind::InvH0, PrecondKind::TwoLevelInvH0];

    header("Fig. 3 — PCG convergence at the true solution (reproduced)");
    println!(
        "{:>8} {:>8} | {:>10} {:>10} {:>10}   (PCG iterations to rel. residual 1e-2 / 1e-4 / 1e-6)",
        "N", "beta", "InvA", "InvH0", "2LInvH0"
    );

    let mut comm = Comm::solo();
    for &n in &sizes {
        let n = (n / 2) * 2; // even for the coarse grid
        let layout = Layout::serial(Grid::cube(n.max(8)));
        let prob_data = fig3_problem(layout, &mut comm);
        for &beta in &betas {
            let mut cells: Vec<String> = Vec::new();
            for &pc in &pcs {
                let cfg = RegistrationConfig::builder()
                    .nt(4)
                    .ip_order(IpOrder::Cubic)
                    .precond(pc)
                    .continuation(false)
                    .build()
                    .expect("valid configuration");
                let mut prob = RegProblem::new(
                    prob_data.template.clone(),
                    prob_data.reference.clone(),
                    cfg,
                    &mut comm,
                )
                .expect("matching layouts by construction");
                prob.set_beta(beta);
                // linearize at the true solution
                let g = prob.gradient(&prob_data.v_true.clone(), &mut comm);
                let mut rhs = g.clone();
                rhs.scale(-1.0);
                let pcg_cfg = PcgConfig { tol_rel: 1e-6, max_iter: 50, trace: true };
                let mut ops = HessOps { prob: &mut prob, eps_k: 1e-1 };
                let (_, res) = pcg(&rhs, None, &pcg_cfg, &mut ops, &mut comm);
                cells.push(format!(
                    "{}/{}/{}",
                    iters_to(&res.trace, 1e-2),
                    iters_to(&res.trace, 1e-4),
                    iters_to(&res.trace, 1e-6)
                ));
                record_json(
                    "fig3",
                    &format!(
                        "{{\"n\":{n},\"beta\":{beta},\"pc\":\"{}\",\"iters\":{},\"rel_residual\":{:.3e},\"trace\":{:?}}}",
                        pc.label(),
                        res.iters,
                        res.rel_residual,
                        res.trace
                    ),
                );
            }
            println!(
                "{:>8} {:>8.0e} | {:>10} {:>10} {:>10}",
                fmt_size([n, n, n]),
                beta,
                cells[0],
                cells[1],
                cells[2]
            );
        }
    }

    header("Fig. 3 — paper reference (iterations to ~1e-6, read from plots)");
    println!("{:>8} | {:>10} {:>10} {:>10}", "beta", "InvA", "InvH0", "2LInvH0");
    for e in &FIG3 {
        println!(
            "{:>8.0e} | {:>10} {:>10} {:>10}",
            e.beta,
            if e.inva_iters >= 50 { ">50".to_string() } else { e.inva_iters.to_string() },
            e.invh0_iters,
            e.two_level_iters
        );
    }
    println!(
        "\nshape check: InvA worst and β-sensitive; InvH0/2LInvH0 few iterations, ~β-independent."
    );
}
