//! Ablations for the design choices the paper calls out in the text:
//!
//! 1. **store-∇m** — "storing the gradient of the state variable reduces
//!    the runtime by approximately 15% (but increases the memory
//!    pressure)";
//! 2. **interpolation order** — GPU-TXTLIN vs GPU-TXTLAG accuracy/speed;
//! 3. **P2P switch** — the 512 kB threshold between the vendor MPI and
//!    peer-to-peer all-to-all (§3.3);
//! 4. **β floor in H0** — "if we use a lower bound of 5e−2 for β in (9),
//!    the preconditioner remains effective even for vanishing βs".

use claire_bench::{bench_n, header};
use claire_core::{PrecondKind, RegProblem, RegistrationConfig};
use claire_data::truth::fig3_problem;
use claire_grid::{Grid, Layout, ScalarField, VectorField};
use claire_interp::{Interpolator, IpOrder};
use claire_mpi::{AlltoallMethod, Comm, LinkModel, Topology};
use claire_opt::GnProblem;
use claire_semilag::{Trajectory, Transport};

fn main() {
    let n = bench_n();
    let mut comm = Comm::solo();
    let layout = Layout::serial(Grid::cube(n));

    // ---- 1. store-grad ----------------------------------------------------
    header("Ablation 1 — store ∇m vs recompute (Hessian matvec cost)");
    let prob_data = fig3_problem(layout, &mut comm);
    for &store in &[false, true] {
        let cfg = RegistrationConfig::builder()
            .nt(4)
            .ip_order(IpOrder::Linear)
            .store_grad(store)
            .precond(PrecondKind::InvA)
            .continuation(false)
            .build()
            .expect("valid configuration");
        let mut prob = RegProblem::new(
            prob_data.template.clone(),
            prob_data.reference.clone(),
            cfg,
            &mut comm,
        )
        .expect("matching layouts by construction");
        prob.set_beta(1e-2);
        let m0 = comm.clock().now();
        let g = prob.gradient(&prob_data.v_true.clone(), &mut comm);
        let grad_modeled = comm.clock().now() - m0;
        let t0 = std::time::Instant::now();
        let m1 = comm.clock().now();
        for _ in 0..5 {
            let _ = prob.hess_vec(&g, &mut comm);
        }
        println!(
            "store_grad = {store:5}: 5 Hessian matvecs wall {:.3}s, modeled {:.4e}s (gradient modeled {:.4e}s)",
            t0.elapsed().as_secs_f64(),
            comm.clock().now() - m1,
            grad_modeled
        );
    }
    println!("expected: storing ∇m removes (Nt+1) FD gradients per matvec (~15% end-to-end in the paper).");

    // ---- 2. interpolation order -------------------------------------------
    header("Ablation 2 — GPU-TXTLIN vs GPU-TXTLAG vs GPU-TXTSPL");
    let m0img = claire_data::brain::subject("na10", layout, &mut comm);
    let v = claire_data::brain::random_smooth_velocity(layout, 42, 0.4, 2);
    let spectral = claire_diff::Spectral::new(layout.grid, &comm);
    for order in [IpOrder::Linear, IpOrder::Cubic, IpOrder::CubicSpline] {
        let mut ip = Interpolator::new(order);
        let tr = Transport::new(4, order);
        let traj = Trajectory::compute(&v, 4, &mut ip, &mut comm);
        // TXTSPL reads B-spline coefficients: prefilter the transported
        // field each step — this is exactly the extra global step that made
        // the paper prefer TXTLAG in the distributed setting (§3.1).
        let mut prefilter_time = 0.0f64;
        let prepare = |f: &ScalarField, comm: &mut Comm, acc: &mut f64| -> ScalarField {
            if order.needs_prefilter() {
                let t = std::time::Instant::now();
                let out = spectral.bspline_prefilter(f, comm);
                *acc += t.elapsed().as_secs_f64();
                out
            } else {
                f.clone()
            }
        };
        let t0 = std::time::Instant::now();
        // one-step-at-a-time advection so the spline path can re-prefilter
        let mut cur = m0img.clone();
        for _ in 0..4 {
            let coef = prepare(&cur, &mut comm, &mut prefilter_time);
            let vals = ip.interp(&coef, &traj.foot_back, &mut comm);
            cur = ScalarField::from_data(layout, vals);
        }
        let wall = t0.elapsed().as_secs_f64();
        // transport forward then backward: measures scheme dissipation
        let vneg = {
            let mut w = v.clone();
            w.scale(-1.0);
            w
        };
        let traj_back = Trajectory::compute(&vneg, 4, &mut ip, &mut comm);
        let mut back = cur.clone();
        for _ in 0..4 {
            let coef = prepare(&back, &mut comm, &mut prefilter_time);
            let vals = ip.interp(&coef, &traj_back.foot_back, &mut comm);
            back = ScalarField::from_data(layout, vals);
        }
        let mut d: ScalarField = back.clone();
        d.axpy(-1.0, &m0img);
        let err = d.norm_l2(&mut comm) / m0img.norm_l2(&mut comm);
        println!(
            "{:12} ({}): advection wall {:.3}s (prefilter {:.3}s), round-trip error {:.3e}",
            format!("{order:?}"),
            order.kernel_name(),
            wall,
            prefilter_time,
            err
        );
        let _ = tr;
    }
    println!(
        "expected: cubic ~{}x the flops of linear but far more accurate; the spline",
        482 / 30
    );
    println!("kernel matches cubic accuracy but pays a global prefilter per advected field —");
    println!("the communication the paper avoids by choosing GPU-TXTLAG for multi-GPU runs.");

    // ---- 3. P2P switch ------------------------------------------------------
    header("Ablation 3 — all-to-all method vs per-pair volume (512 kB switch)");
    let link = LinkModel::default();
    let topo = Topology::longhorn(16);
    println!("{:>12} | {:>9} {:>9} {:>7} | auto picks", "pair vol", "MPI GB/s", "P2P GB/s", "best");
    for kb in [32usize, 128, 256, 512, 1024, 4096] {
        let per_rank = kb * 1024 * topo.nranks;
        let mpi = link.alltoall_bandwidth(per_rank, &topo, AlltoallMethod::VendorMpi) / 1e9;
        let p2p = link.alltoall_bandwidth(per_rank, &topo, AlltoallMethod::PeerToPeer) / 1e9;
        let auto = AlltoallMethod::Auto.resolve(kb * 1024, &topo);
        println!(
            "{:>10}kB | {:>9.2} {:>9.2} {:>7} | {:?}",
            kb,
            mpi,
            p2p,
            if p2p > mpi { "P2P" } else { "MPI" },
            auto
        );
    }

    // ---- 4. beta floor in H0 -----------------------------------------------
    header("Ablation 4 — β floor (5e-2) inside InvH0 for vanishing β");
    for &(floor, label) in &[(5e-2, "with floor (paper)"), (1e-12, "without floor")] {
        let cfg = RegistrationConfig::builder()
            .nt(4)
            .ip_order(IpOrder::Cubic)
            .precond(PrecondKind::InvH0)
            .beta_floor(floor)
            .continuation(false)
            .build()
            .expect("valid configuration");
        let mut prob = RegProblem::new(
            prob_data.template.clone(),
            prob_data.reference.clone(),
            cfg,
            &mut comm,
        )
        .expect("matching layouts by construction");
        let beta = 5e-4; // vanishing β regime
        prob.set_beta(beta);
        let g = prob.gradient(&prob_data.v_true.clone(), &mut comm);
        let s = prob.precond(&g, 0.1, &mut comm);
        let amp = s.norm_l2(&mut comm) / g.norm_l2(&mut comm);
        println!(
            "{label:>20}: inner CG iters = {:>3}, amplification |s|/|r| = {:.3e}",
            prob.pc.inner_iters, amp
        );
    }
    println!(
        "expected: without the floor the inner solve works much harder (or stagnates) as β → 0."
    );
    let _: Option<VectorField> = None;
}
