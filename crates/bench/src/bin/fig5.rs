//! Fig. 5: kernel-fraction bars (FFT / SL / FD / Other) for the Table 7
//! strong- and weak-scaling experiments, rendered from the calibrated
//! model at paper scale next to the published fractions.

use claire_bench::{bar, fmt_size, header};
use claire_perf::paper::TABLE7;
use claire_perf::{solver_time, Machine, SolverCounts};

fn main() {
    let machine = Machine::longhorn();
    let counts = SolverCounts::table7();

    header("Fig. 5 (top) — strong scaling 512^3 (modeled seconds: FFT / SL / FD / Other)");
    let strong: Vec<_> = TABLE7.iter().filter(|r| r.size == [512, 512, 512]).collect();
    let max = strong
        .iter()
        .map(|r| solver_time(&machine, r.size, r.gpus, &counts).total().total())
        .fold(0.0, f64::max);
    for r in &strong {
        let b = solver_time(&machine, r.size, r.gpus, &counts);
        println!(
            "{:>8}, {:>3} GPUs |{}| {:.2} / {:.2} / {:.2} / {:.2}   (paper: {:.2} / {:.2} / {:.2})",
            fmt_size(r.size),
            r.gpus,
            bar(b.total().total(), max, 32),
            b.fft.total(),
            b.sl.total(),
            b.fd.total(),
            b.other.total(),
            r.fft.0,
            r.sl.0,
            r.fd.0,
        );
    }

    header("Fig. 5 (bottom) — weak scaling 512^3/4 -> 2048^3/256");
    let weak: Vec<_> = TABLE7
        .iter()
        .filter(|r| {
            (r.size == [512, 512, 512] && r.gpus == 4)
                || (r.size == [1024, 1024, 1024] && r.gpus == 32)
                || (r.size == [2048, 2048, 2048] && r.gpus == 256)
        })
        .collect();
    let max = weak
        .iter()
        .map(|r| solver_time(&machine, r.size, r.gpus, &counts).total().total())
        .fold(0.0, f64::max);
    for r in &weak {
        let b = solver_time(&machine, r.size, r.gpus, &counts);
        println!(
            "{:>8}, {:>3} GPUs |{}| {:.2} / {:.2} / {:.2} / {:.2}   (paper: {:.2} / {:.2} / {:.2})",
            fmt_size(r.size),
            r.gpus,
            bar(b.total().total(), max, 32),
            b.fft.total(),
            b.sl.total(),
            b.fd.total(),
            b.other.total(),
            r.fft.0,
            r.sl.0,
            r.fd.0,
        );
    }
    println!(
        "\nshape check: \"the runtime is dominated by the FFT kernel\" and \"almost the entire"
    );
    println!("runtime of our solver is spent in the three main computational kernels\".");
}
