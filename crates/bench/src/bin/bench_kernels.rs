//! Kernel bench smoke-run: per-kernel ns/grid-point, threads 1 vs. 8,
//! per SIMD backend.
//!
//! Emits `BENCH_kernels.json` in the repo root (or the path given as the
//! first CLI argument). Measures the three computational kernels of the
//! paper (§3) — 8th-order FD gradient, 3D FFT round-trip, cubic Lagrange
//! interpolation — plus an axpy stream op, at 64³ and 128³, once with the
//! parallel layer pinned to 1 thread and once at a fixed 8 threads. Both
//! thread counts and both grid sizes are pinned so the emitted row set is
//! identical on every host — `check_bench` diffs these rows against the
//! committed baseline, and host-dependent rows would break that diff.
//! When 8 exceeds the host's concurrency the row is flagged
//! `oversubscribed` (the parallel path is still exercised).
//!
//! Every kernel is measured once per *requested* SIMD backend: `scalar`
//! (the reference loops), `portable` (chunked wide loops written for
//! autovectorization), and `auto` (runtime feature detection — AVX2+FMA
//! where the host has it). Rows are tagged with the requested name, not
//! the resolved one, so the row keys stay host-independent; the scalar and
//! portable passes only emit the stable threads==1 rows that gate CI.
//!
//! Two extra row families feed the roofline story:
//! - `axpy_norm_fused` / `axpy_norm_unfused` time the PCG residual-update
//!   chain (`r += αq` then `‖r‖²`) as one fused pass vs. the separate
//!   update + reduction — the measured gap is the §3 traffic reduction
//!   the fused field ops exist for, gated per backend at threads==1;
//! - a `roofline` array reports achieved bytes/sec for the streaming
//!   field-op rows as a percentage of the host's STREAM-probed DRAM peak
//!   (`claire_perf::machine::host_roofline`), gated by `check_bench` as a
//!   higher-is-better metric.

use std::time::Instant;

use claire_diff::fd::{self, FdScratch};
use claire_fft::{Cpx, DistFft, Fft3};
use claire_grid::{Grid, Layout, Real, ScalarField, VectorField};
use claire_interp::{Interpolator, IpOrder};
use claire_mpi::{run_cluster, AlltoallMethod, Comm, CommCat, Topology};
use claire_par::{set_threads, timing};
use serde::Serialize;

#[derive(Serialize)]
struct BenchRow {
    kernel: String,
    n: usize,
    threads: usize,
    backend: String,
    oversubscribed: bool,
    reps: usize,
    total_ms: f64,
    ns_per_point: f64,
}

#[derive(Serialize)]
struct CounterRow {
    name: String,
    calls: u64,
    total_ms: f64,
}

/// Achieved-bandwidth row: modeled streaming traffic of one kernel call
/// divided by its measured time, as a fraction of the host DRAM peak.
#[derive(Serialize)]
struct RooflineRow {
    kernel: String,
    n: usize,
    threads: usize,
    backend: String,
    /// Streaming passes over the field the kernel makes per call.
    passes: f64,
    achieved_gbps: f64,
    pct_of_peak: f64,
}

#[derive(Serialize)]
struct Report {
    host_threads: usize,
    grids: Vec<usize>,
    /// Host DRAM peak (bytes/sec) the `roofline` rows are normalized by.
    dram_peak_bps: f64,
    /// False when `CLAIRE_DRAM_PEAK` pinned the peak instead of the probe.
    dram_peak_probed: bool,
    results: Vec<BenchRow>,
    roofline: Vec<RooflineRow>,
    timing_counters: Vec<CounterRow>,
}

fn test_field(n: usize) -> ScalarField {
    ScalarField::from_fn(Layout::serial(Grid::cube(n)), |x, y, z| {
        (x + 0.3 * y).sin() * (2.0 * z).cos() + (z - 0.1 * x).sin()
    })
}

/// Time `reps` runs of `f` and convert to a result row.
///
/// Reports the fastest of five timed batches: the minimum is far less
/// sensitive to scheduler noise than a single batch, which matters because
/// check_bench gates these rows and the sub-ns/pt kernels (axpy) finish in
/// ~100µs per batch.
fn measure(
    kernel: &str,
    n: usize,
    threads: usize,
    oversubscribed: bool,
    reps: usize,
    mut f: impl FnMut(),
) -> BenchRow {
    f(); // warm-up (first-touch, plan setup inside closures is hoisted out)
    let mut total = std::time::Duration::MAX;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        total = total.min(t0.elapsed());
    }
    let points = (n * n * n * reps) as f64;
    BenchRow {
        kernel: kernel.to_string(),
        n,
        threads,
        backend: String::new(), // filled in by bench_at
        oversubscribed,
        reps,
        total_ms: total.as_secs_f64() * 1e3,
        ns_per_point: total.as_nanos() as f64 / points,
    }
}

fn bench_at(
    n: usize,
    threads: usize,
    oversubscribed: bool,
    backend: &str,
    out: &mut Vec<BenchRow>,
) {
    let mut push = |mut r: BenchRow| {
        r.backend = backend.to_string();
        out.push(r);
    };
    set_threads(threads);
    let reps = if n >= 128 { 2 } else { 5 };
    let f = test_field(n);
    let grid = f.layout().grid;

    // FD8 gradient (allocation-free variant, scratch reused across reps)
    {
        let mut comm = Comm::solo();
        let mut g = VectorField::zeros(*f.layout());
        let mut scratch = FdScratch::new();
        push(measure("fd_gradient", n, threads, oversubscribed, reps, || {
            fd::gradient_into(&f, &mut comm, &mut g, &mut scratch);
        }));
    }

    // serial 3D FFT round-trip (the single-rank cuFFT path)
    {
        let plan = Fft3::new(grid);
        let mut spec = vec![Cpx::ZERO; plan.spectral_len()];
        let mut back = vec![0.0 as Real; grid.len()];
        push(measure("fft_roundtrip", n, threads, oversubscribed, reps, || {
            plan.forward(f.data(), &mut spec);
            plan.inverse(&mut spec, &mut back);
        }));
    }

    // cubic Lagrange interpolation, one off-grid query per grid point
    {
        let h = grid.spacing();
        let queries: Vec<[Real; 3]> = claire_semilag::traj::grid_points(f.layout())
            .into_iter()
            .map(|p| [p[0] + 0.37 * h[0], p[1] - 0.21 * h[1], p[2] + 0.11 * h[2]])
            .collect();
        let mut comm = Comm::solo();
        let mut ip = Interpolator::new(IpOrder::Cubic);
        push(measure("interp_cubic", n, threads, oversubscribed, reps, || {
            std::hint::black_box(ip.interp(&f, &queries, &mut comm));
        }));
    }

    // axpy stream op (memory-bandwidth bound)
    {
        let g = test_field(n);
        let mut a = f.clone();
        push(measure("axpy", n, threads, oversubscribed, reps * 4, || {
            a.axpy(1.0000001, &g);
        }));
    }

    // PCG residual-update chain, unfused (update pass + reduction pass)
    // vs. fused (one pass). Both rows stream the same fields with the
    // same arithmetic; the delta is pure DRAM traffic.
    {
        let g = test_field(n);
        let mut a = f.clone();
        push(measure("axpy_norm_unfused", n, threads, oversubscribed, reps * 4, || {
            a.axpy(1.0000001, &g);
            std::hint::black_box(a.dot_local(&a));
        }));
        let mut a = f.clone();
        push(measure("axpy_norm_fused", n, threads, oversubscribed, reps * 4, || {
            std::hint::black_box(a.axpy_dot_local(1.0000001, &g));
        }));
    }

    // distributed FFT round-trip on a 2-rank virtual cluster (slab
    // decomposition + alltoallv transpose; wall time includes the
    // in-process channel traffic both ranks generate)
    {
        let row = run_cluster(Topology::new(2, 2), move |comm| {
            let layout = Layout::distributed(grid, comm);
            let f = ScalarField::from_fn(layout, |x, y, z| {
                (x + 0.3 * y).sin() * (2.0 * z).cos() + (z - 0.1 * x).sin()
            });
            let dfft = DistFft::new(grid, comm);
            measure("fft_dist_roundtrip_p2", n, threads, oversubscribed, reps, || {
                let spec = dfft.forward(&f, comm);
                std::hint::black_box(dfft.inverse(spec, comm));
            })
        })
        .outputs
        .remove(0);
        push(row);
    }
}

/// f32 arms of the three §3 compute kernels plus the fused PCG stream op,
/// at the same loop structure as their f64 counterparts — the element
/// width is the only variable, so the f64-row / `_f32`-row gap is the
/// mixed-precision traffic reduction the roofline model predicts (~2× on
/// bandwidth-bound kernels). Rows are threads==1 only (the stable gated
/// set); both timing and `pct_of_peak` roofline rows gate in CI.
fn bench_f32_at(n: usize, backend: &str, out: &mut Vec<BenchRow>) {
    set_threads(1);
    let reps = if n >= 128 { 2 } else { 5 };
    let grid = Grid::cube(n);
    let h = grid.spacing()[0];
    let src: Vec<f32> = test_field(n).data().iter().map(|&v| v as f32).collect();
    let mut push = |mut r: BenchRow| {
        r.backend = backend.to_string();
        out.push(r);
    };

    // FD8 gradient: three stencil sweeps (one per dim) over an f32 field,
    // expressed as the same contiguous-x3-row combines as claire-diff's
    // sweeps — periodic neighbour rows for x1/x2, shifted views for x3.
    {
        let c: [f32; 4] = claire_diff::fd::FD8.map(|v| v as f32);
        let inv_h = (1.0 / h) as f32;
        let mut g = vec![0.0f32; n * n * n];
        let row = |p: usize, j: usize| p * n * n + j * n;
        push(measure("fd_gradient_f32", n, 1, false, reps, || {
            for dim in 0..3usize {
                match dim {
                    0 | 1 => {
                        for i in 0..n {
                            for j in 0..n {
                                let neigh = |m: usize, up: bool| {
                                    let d = m + 1;
                                    let (pi, pj) = match (dim, up) {
                                        (0, true) => ((i + d) % n, j),
                                        (0, false) => ((i + n - d) % n, j),
                                        (1, true) => (i, (j + d) % n),
                                        _ => (i, (j + n - d) % n),
                                    };
                                    let b = row(pi, pj);
                                    &src[b..b + n]
                                };
                                let plus = std::array::from_fn(|m| neigh(m, true));
                                let minus = std::array::from_fn(|m| neigh(m, false));
                                let b = row(i, j);
                                claire_simd::f32k::fd8_combine_scale(
                                    &mut g[b..b + n],
                                    &plus,
                                    &minus,
                                    &c,
                                    inv_h,
                                    1.0,
                                );
                            }
                        }
                    }
                    _ => {
                        for r in 0..n * n {
                            let sr = &src[r * n..(r + 1) * n];
                            let o = &mut g[r * n..(r + 1) * n];
                            for k in (0..4).chain(n - 4..n) {
                                let mut acc = 0.0f32;
                                for (m, &cm) in c.iter().enumerate() {
                                    let d = m + 1;
                                    acc += cm * (sr[(k + d) % n] - sr[(k + n - d) % n]);
                                }
                                o[k] = acc * inv_h;
                            }
                            let plus = [&sr[5..], &sr[6..], &sr[7..], &sr[8..]];
                            let minus = [&sr[3..], &sr[2..], &sr[1..], &sr[0..]];
                            claire_simd::f32k::fd8_combine_scale(
                                &mut o[4..n - 4],
                                &plus,
                                &minus,
                                &c,
                                inv_h,
                                1.0,
                            );
                        }
                    }
                }
                std::hint::black_box(&g);
            }
        }));
    }

    // Cubic Lagrange interpolation: one off-grid query per grid point at
    // the same fractional offsets as the f64 row, on a ghost-extended f32
    // copy (2 planes per side along x1, the cubic support width).
    {
        let gw = 2usize;
        let mut ext = vec![0.0f32; (n + 2 * gw) * n * n];
        for p in 0..n + 2 * gw {
            let sp = (p + n - gw) % n;
            ext[p * n * n..(p + 1) * n * n].copy_from_slice(&src[sp * n * n..(sp + 1) * n * n]);
        }
        // fractions of the query offsets (+0.37h, −0.21h, +0.11h)
        let (t1, t2, t3) = (0.37f32, 0.79f32, 0.11f32);
        let mut vals = vec![0.0f32; n * n * n];
        push(measure("interp_cubic_f32", n, 1, false, reps, || {
            let w1 = claire_simd::f32k::lagrange_weights(t1);
            let w2 = claire_simd::f32k::lagrange_weights(t2);
            let w3 = claire_simd::f32k::lagrange_weights(t3);
            for i in 0..n {
                for j in 0..n {
                    // x2 base is j−1 (offset −0.21h); x3 base is k
                    let b2 = (j + n - 1) % n;
                    for k in 0..n {
                        let v = if b2 >= 1 && b2 + 2 < n && k >= 1 && k + 2 < n {
                            let base = ((i + gw - 1) * n + (b2 - 1)) * n + (k - 1);
                            claire_simd::f32k::cubic_accumulate(&ext, base, n * n, n, &w1, &w2, &w3)
                        } else {
                            let mut acc = 0.0f32;
                            for (a, &wa) in w1.iter().enumerate() {
                                let ii = i + gw + a - 1;
                                for (b, &wb) in w2.iter().enumerate() {
                                    let jj = (b2 + n + b - 1) % n;
                                    let wab = wa * wb;
                                    for (cix, &wc) in w3.iter().enumerate() {
                                        let kk = (k + n + cix - 1) % n;
                                        acc += wab * wc * ext[(ii * n + jj) * n + kk];
                                    }
                                }
                            }
                            acc
                        };
                        vals[(i * n + j) * n + k] = v;
                    }
                }
            }
            std::hint::black_box(&vals);
        }));
    }

    // fused axpy+dot stream op (the PCG residual-update chain) at f32
    {
        let x: Vec<f32> = test_field(n).data().iter().map(|&v| v as f32).collect();
        let mut y = src.clone();
        push(measure("axpy_dot_f32", n, 1, false, reps * 4, || {
            std::hint::black_box(claire_simd::f32k::axpy_dot(1.0000001, &x, &mut y));
        }));
    }
}

/// Socket-transport collectives over real Unix-domain sockets: the FFT
/// alltoallv transpose payload and a width-4 ghost exchange at `n`³, on 2
/// and 4 ranks. Unlike the in-process channel rows these cross the kernel
/// socket layer (framing, eager/rendezvous negotiation, reader threads),
/// so they track the per-message cost a multi-process launch pays. Rows
/// are threads==1 so `check_bench` gates them against the baseline.
fn bench_socket(n: usize, backend: &str, out: &mut Vec<BenchRow>) {
    set_threads(1);
    let grid = Grid::cube(n);
    for p in [2usize, 4] {
        let rows = claire_ipc::run_socket_cluster(Topology::new(p, 2), move |comm| {
            // alltoallv with the per-pair volume of a slab-transpose at n³
            let per_dest = grid.len() / (p * p);
            let bufs: Vec<Vec<Real>> = (0..p).map(|d| vec![0.5 + d as Real; per_dest]).collect();
            let a2a = measure(&format!("alltoallv_sock_p{p}"), n, 1, false, 5, || {
                std::hint::black_box(comm.alltoallv(
                    &bufs,
                    CommCat::FftTranspose,
                    AlltoallMethod::Auto,
                ));
            });
            // width-4 halo exchange on a distributed field (FD8 stencil width)
            let layout = Layout::distributed(grid, comm);
            let f = ScalarField::from_fn(layout, |x, y, z| (x + 0.3 * y).sin() + z);
            let gx = measure(&format!("ghost_sock_p{p}"), n, 1, false, 5, || {
                std::hint::black_box(claire_grid::ghost::exchange(&f, 4, comm));
            });
            [a2a, gx]
        })
        .outputs
        .remove(0);
        for mut r in rows {
            r.backend = backend.to_string();
            out.push(r);
        }
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_kernels.json".into());
    let host_par = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // Pinned thread configs so the emitted row set — the (kernel, n,
    // threads) keys baseline diffing relies on — is identical on every
    // host: serial (threads=1, the stable rows `check_bench` compares) and
    // a fixed 8-thread run that exercises the parallel path everywhere.
    // `oversubscribed` records whether 8 exceeds the host's concurrency.
    let configs = [(1usize, false), (8usize, 8 > host_par)];

    timing::reset();
    let mut results = Vec::new();
    for (choice, backend) in [
        (claire_simd::Choice::Scalar, "scalar"),
        (claire_simd::Choice::Portable, "portable"),
        (claire_simd::Choice::Auto, "auto"),
    ] {
        claire_simd::force_backend(Some(choice));
        for n in [64usize, 128] {
            for &(threads, over) in &configs {
                // the scalar and portable passes exist to gate the vectorized
                // speedup; only their stable threads==1 rows are comparable,
                // so skip the rest
                if backend != "auto" && threads != 1 {
                    continue;
                }
                eprintln!("bench: {n}^3 with {threads} thread(s), backend={backend}...");
                bench_at(n, threads, over, backend, &mut results);
            }
            eprintln!("bench: {n}^3 f32 kernel arms, backend={backend}...");
            bench_f32_at(n, backend, &mut results);
        }
        // socket rows cost real syscalls, not SIMD lanes; one pass suffices
        if backend == "auto" {
            eprintln!("bench: socket-transport collectives at 64^3, backend={backend}...");
            bench_socket(64, backend, &mut results);
        }
    }
    claire_simd::force_backend(None); // back to env-based resolution
    set_threads(0); // restore default resolution

    // Roofline rows for the streaming kernels, where the pass count is
    // exact: achieved bytes/sec = passes × element size ÷ measured
    // ns/point, normalized by the host STREAM peak. The element size comes
    // from the row's actual width (4 bytes for the `_f32` arms, the size
    // of `Real` otherwise) — not a hard-coded 8. Only the stable
    // threads==1 rows. Values can exceed 100%: the bench fields (1–16 MiB)
    // are partly cache-resident while the probe streams a 24 MiB working
    // set — the gate tracks relative drift, not the absolute DRAM ceiling.
    let host = claire_perf::machine::host_roofline();
    let passes_of = |kernel: &str| -> Option<f64> {
        match kernel {
            "axpy" => Some(3.0),              // read x, read + write y
            "axpy_norm_fused" => Some(3.0),   // same pass also reduces
            "axpy_norm_unfused" => Some(4.0), // + one re-read for the dot
            "axpy_dot_f32" => Some(3.0),      // fused chain, f32 elements
            "fd_gradient_f32" => Some(6.0),   // 3 dims × (read + write)
            "interp_cubic_f32" => Some(2.0),  // gather (cached) + write
            _ => None,
        }
    };
    let roofline: Vec<RooflineRow> = results
        .iter()
        .filter(|r| r.threads == 1)
        .filter_map(|r| {
            let passes = passes_of(&r.kernel)?;
            let elem_bytes =
                if r.kernel.ends_with("_f32") { 4.0 } else { std::mem::size_of::<Real>() as f64 };
            let achieved = passes * elem_bytes / (r.ns_per_point * 1e-9);
            Some(RooflineRow {
                kernel: r.kernel.clone(),
                n: r.n,
                threads: r.threads,
                backend: r.backend.clone(),
                passes,
                achieved_gbps: achieved / 1e9,
                pct_of_peak: 100.0 * achieved / host.dram_bw,
            })
        })
        .collect();

    let counters = timing::snapshot()
        .into_iter()
        .filter(|s| s.calls > 0)
        .map(|s| CounterRow {
            name: s.name.to_string(),
            calls: s.calls,
            total_ms: s.nanos as f64 / 1e6,
        })
        .collect();

    let report = Report {
        host_threads: host_par,
        grids: vec![64, 128],
        dram_peak_bps: host.dram_bw,
        dram_peak_probed: host.probed,
        results,
        roofline,
        timing_counters: counters,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_kernels.json");
    eprintln!("wrote {out_path}");
}
