//! Batched-registration bench: pairs/sec for K-pair `BatchSolver` runs vs
//! the sequential process-per-job baseline.
//!
//! Emits `BENCH_batch.json` in the repo root (or the path given as the
//! first CLI argument). The quantity of interest is *amortization*: a
//! sequential service that launches one solver process per registration
//! pays process startup, FFT planning, workspace-pool warm-up, and
//! preconditioner scaffolding for every pair, while a K-pair batch pays
//! them once. Both sides are therefore measured the same way — the parent
//! spawns this binary in `--worker` mode and times the child's wall clock:
//!
//!   seq_cold:  8 child processes, one pair each (sum of wall clocks)
//!   batch_kN:  1 child process running a K-pair `BatchSolver`
//!
//! Rows are deterministic for CI gating: threads pinned to 1, fixed smoke
//! grid, best-of-7 wall clocks, K ∈ {1, 4, 8}, once per SIMD backend.
//! `check_bench` gates the `pairs_per_sec` column (a drop beyond the
//! threshold fails CI). The headline `speedup_k8_vs_seq` — batch pairs/sec
//! at K=8 over the sequential process-per-pair rate — is recorded per
//! backend.

use std::process::Command;
use std::time::Instant;

use claire_core::{BatchPair, BatchSolver, Claire, PrecondKind, RegistrationConfig};
use claire_grid::{Grid, Layout, Real, ScalarField};
use claire_mpi::Comm;
use claire_par::set_threads;
use serde::Serialize;

/// Smoke grid: small enough that per-pair setup is a visible fraction of
/// the solve, the regime batching is for (high-throughput small jobs).
const SMOKE_N: usize = 8;

#[derive(Serialize)]
struct BatchRow {
    kernel: String,
    n: usize,
    threads: usize,
    backend: String,
    /// Pairs solved per run (K).
    pairs: usize,
    /// Registration pairs completed per second (best of 3 runs).
    pairs_per_sec: f64,
    total_ms: f64,
}

#[derive(Serialize)]
struct SpeedupRow {
    backend: String,
    /// pairs/sec at K=8 (one batch process) over the process-per-pair rate.
    speedup_k8_vs_seq: f64,
}

#[derive(Serialize)]
struct Report {
    threads: usize,
    smoke_grid: usize,
    /// Wall clock of a no-op `--worker` child: the pure process-launch cost
    /// every sequential job pays before any solver work (best of 3).
    proc_spawn_ms: f64,
    results: Vec<BatchRow>,
    speedups: Vec<SpeedupRow>,
}

/// Pinned smoke config: few, fixed iterations (`grad_rtol` unreachable) so
/// every pair runs the same work and setup is a visible fraction of it.
fn config() -> RegistrationConfig {
    RegistrationConfig {
        nt: 1,
        precond: PrecondKind::InvA,
        continuation: false,
        grid_continuation: false,
        beta_target: 1e-2,
        max_gn_iter: 1,
        max_pcg_iter: 1,
        grad_rtol: 1e-14,
        verbose: false,
        ..Default::default()
    }
}

fn blob_pair(layout: Layout, shift: Real) -> (ScalarField, ScalarField) {
    let blob = move |cx: Real| {
        move |x: Real, y: Real, z: Real| {
            let d2 = (x - cx).powi(2) + (y - 3.0).powi(2) + (z - 3.0).powi(2);
            (-d2 / 1.2).exp()
        }
    };
    (ScalarField::from_fn(layout, blob(3.0)), ScalarField::from_fn(layout, blob(3.0 + shift)))
}

fn shift(i: usize) -> Real {
    0.5 - 0.03 * i as Real
}

/// Child-process entry: solve one pair (`seq`) or a K-pair batch (`batch`),
/// then exit. The parent times the whole process, so startup, planning, and
/// pool warm-up are all on the clock — exactly what a process-per-job
/// deployment pays.
fn run_worker(mode: &str, backend: &str, k: usize) {
    set_threads(1);
    let choice = match backend {
        "scalar" => claire_simd::Choice::Scalar,
        _ => claire_simd::Choice::Auto,
    };
    claire_simd::force_backend(Some(choice));
    let layout = Layout::serial(Grid::cube(SMOKE_N));
    match mode {
        "noop" => {}
        "seq" => {
            // One pair per process; `k` selects which pair of the batch
            // workload this process handles.
            let (m0, m1) = blob_pair(layout, shift(k));
            let mut comm = Comm::solo();
            let _ = Claire::new(config()).register(&m0, &m1, &mut comm);
        }
        "batch" => {
            let pairs: Vec<BatchPair> = (0..k)
                .map(|i| {
                    let (m0, m1) = blob_pair(layout, shift(i));
                    BatchPair::new(format!("p{i}"), m0, m1)
                })
                .collect();
            let outcome = BatchSolver::new(config()).solve(pairs).expect("valid batch");
            assert!(outcome.items.iter().all(|i| i.outcome.is_ok()), "batch member failed");
        }
        other => panic!("unknown worker mode {other}"),
    }
}

/// Spawn one `--worker` child and return its wall-clock seconds.
fn spawn_worker(mode: &str, backend: &str, k: usize) -> f64 {
    let exe = std::env::current_exe().expect("current_exe");
    let t0 = Instant::now();
    let status = Command::new(exe)
        .args(["--worker", mode, backend, &k.to_string()])
        .status()
        .expect("spawn bench_batch worker");
    let secs = t0.elapsed().as_secs_f64();
    assert!(status.success(), "worker {mode} k={k} failed: {status}");
    secs
}

/// All phases for one backend, interleaved: each rep measures the 8-child
/// sequential baseline and every batch size back to back, so a noisy
/// window on the host degrades all phases of that rep alike instead of
/// biasing whichever phase happened to run during it. Best-of-7 per phase.
/// Returns (seq_total, batch_k1, batch_k4, batch_k8) seconds.
fn bench_all(backend: &str) -> (f64, [f64; 3]) {
    let mut seq_best = f64::INFINITY;
    let mut batch_best = [f64::INFINITY; 3];
    for _ in 0..7 {
        let total: f64 = (0..8).map(|i| spawn_worker("seq", backend, i)).sum();
        seq_best = seq_best.min(total);
        for (slot, k) in [1usize, 4, 8].into_iter().enumerate() {
            batch_best[slot] = batch_best[slot].min(spawn_worker("batch", backend, k));
        }
    }
    (seq_best, batch_best)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--worker") {
        run_worker(&args[2], &args[3], args[4].parse().expect("worker k"));
        return;
    }
    let out_path = args.get(1).cloned().unwrap_or_else(|| "BENCH_batch.json".into());

    let n = SMOKE_N;
    let mut spawn_ms = f64::INFINITY;
    for _ in 0..7 {
        spawn_ms = spawn_ms.min(spawn_worker("noop", "scalar", 0) * 1e3);
    }
    eprintln!("bench_batch: worker process launch costs {spawn_ms:.1} ms");

    let mut results = Vec::new();
    let mut speedups = Vec::new();
    for backend in ["scalar", "auto"] {
        eprintln!("bench_batch: {n}^3, process-per-pair baseline, backend={backend}...");
        // the same 8-pair workload as batch_k8, one process per pair: long
        // enough a measurement that scheduler noise averages out
        let (seq_secs, batch_secs) = bench_all(backend);
        let seq_rate = 8.0 / seq_secs;
        eprintln!("bench_batch:   seq_cold {seq_rate:.2} pairs/s");
        results.push(BatchRow {
            kernel: "seq_cold".into(),
            n,
            threads: 1,
            backend: backend.into(),
            pairs: 8,
            pairs_per_sec: seq_rate,
            total_ms: seq_secs * 1e3,
        });

        let mut k8_rate = 0.0;
        for (slot, k) in [1usize, 4, 8].into_iter().enumerate() {
            let secs = batch_secs[slot];
            let rate = k as f64 / secs;
            eprintln!("bench_batch:   batch_k{k} {rate:.2} pairs/s");
            if k == 8 {
                k8_rate = rate;
            }
            results.push(BatchRow {
                kernel: format!("batch_k{k}"),
                n,
                threads: 1,
                backend: backend.into(),
                pairs: k,
                pairs_per_sec: rate,
                total_ms: secs * 1e3,
            });
        }

        let speedup = k8_rate / seq_rate;
        eprintln!("bench_batch: backend={backend}: K=8 batch is {speedup:.2}x the sequential rate");
        if speedup < 1.5 {
            eprintln!("bench_batch: WARNING: speedup below the 1.5x amortization target");
        }
        speedups.push(SpeedupRow { backend: backend.into(), speedup_k8_vs_seq: speedup });
    }

    let report = Report { threads: 1, smoke_grid: n, proc_spawn_ms: spawn_ms, results, speedups };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_batch.json");
    eprintln!("wrote {out_path}");
}
