//! CI perf-regression gate: diff a fresh bench JSON against its committed
//! baseline.
//!
//! ```text
//! check_bench <fresh.json> <baseline.json> [--threshold <frac>]
//! ```
//!
//! Works on any report with a `results` array (and optionally a
//! `roofline` array) of rows keyed by `(kernel, n, threads, backend)`
//! carrying one gated metric — `ns_per_point` (lower is better:
//! `BENCH_kernels.json`, `BENCH_solver.json`), `pairs_per_sec` (higher is
//! better: `BENCH_batch.json` throughput rows), or `pct_of_peak` (higher
//! is better: the `roofline` achieved-bandwidth rows, normalized per host
//! by the STREAM probe so the baseline transfers across machines). Rows
//! without a `backend` field (pre-SIMD baselines) match rows with an
//! empty one. Only `threads == 1` rows are compared: they are the stable
//! ones (multi-thread rows measure scheduler noise as much as code). A
//! row regresses when its fresh metric moves in the bad direction by more
//! than the threshold (default 30%): `ns_per_point` above baseline,
//! `pairs_per_sec` / `pct_of_peak` below it. Any regression prints a
//! delta table covering every gated row type and exits non-zero, failing
//! `ci.sh`. Rows with an `allocs_per_iter` field additionally fail on any
//! increase — allocation regressions are exact, not noisy.
//!
//! A missing baseline file is seeded from the fresh run (and the gate
//! passes): the first CI run on a host commits its own reference. The
//! seed is announced with a GitHub `::warning::` annotation so it is
//! visible on the workflow summary, not silently green.

use serde::Value;

struct Row {
    kernel: String,
    n: u64,
    threads: u64,
    backend: String,
    /// Gated metric value plus its display unit.
    value: f64,
    unit: &'static str,
    /// `pairs_per_sec` rows gate on drops, `ns_per_point` rows on rises.
    higher_is_better: bool,
    allocs_per_iter: Option<u64>,
}

/// One comparison outcome, kept for the failure delta table.
struct Delta {
    kernel: String,
    n: u64,
    backend: String,
    unit: &'static str,
    base: f64,
    fresh: Option<f64>,
    delta: f64,
    status: &'static str,
}

/// Pure comparison: every baseline row is matched against the fresh run
/// by `(kernel, n, backend, unit)` and classified. A baseline row with no
/// fresh counterpart is a `MISSING` delta — a silently dropped bench row
/// must fail the gate just like a slow one, otherwise deleting a bench
/// "fixes" its regression. `compared` counts the rows that matched.
fn compare(baseline: &[Row], fresh: &[Row], threshold: f64) -> (Vec<Delta>, usize) {
    let mut deltas: Vec<Delta> = Vec::new();
    let mut compared = 0usize;
    for b in baseline {
        // unit participates in the key: a kernel can carry both a timing row
        // and a roofline row under the same (kernel, n, backend) triple
        let Some(f) = fresh.iter().find(|f| {
            f.kernel == b.kernel && f.n == b.n && f.backend == b.backend && f.unit == b.unit
        }) else {
            deltas.push(Delta {
                kernel: b.kernel.clone(),
                n: b.n,
                backend: b.backend.clone(),
                unit: b.unit,
                base: b.value,
                fresh: None,
                delta: 0.0,
                status: "MISSING",
            });
            continue;
        };
        compared += 1;
        let delta = f.value / b.value - 1.0;
        // the bad direction flips with the metric: slower (ns up) or less
        // throughput (pairs/s down)
        let regressed = if b.higher_is_better { delta < -threshold } else { delta > threshold };
        let mut status = if regressed { "REGRESSED" } else { "ok" };
        if let (Some(fa), Some(ba)) = (f.allocs_per_iter, b.allocs_per_iter) {
            if fa > ba {
                status = "ALLOC-REGRESSED";
            }
        }
        deltas.push(Delta {
            kernel: b.kernel.clone(),
            n: b.n,
            backend: b.backend.clone(),
            unit: b.unit,
            base: b.value,
            fresh: Some(f.value),
            delta,
            status,
        });
    }
    (deltas, compared)
}

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Num(x) => Some(*x),
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(n) => Some(*n),
        Value::Int(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn load_rows(path: &str) -> Vec<Row> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("check_bench: cannot read {path}: {e}"));
    let doc = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("check_bench: {path} is not valid JSON: {e}"));
    let Some(Value::Array(rows)) = get(&doc, "results") else {
        panic!("check_bench: {path} has no `results` array");
    };
    // `roofline` rows (achieved bandwidth as % of host DRAM peak) gate
    // alongside the timing rows; older baselines simply lack the array
    let empty = Vec::new();
    let roofline = match get(&doc, "roofline") {
        Some(Value::Array(rows)) => rows,
        _ => &empty,
    };
    rows.iter()
        .chain(roofline.iter())
        .filter_map(|r| {
            let (value, unit, higher_is_better) =
                if let Some(v) = get(r, "ns_per_point").and_then(as_f64) {
                    (v, "ns/pt", false)
                } else if let Some(v) = get(r, "pairs_per_sec").and_then(as_f64) {
                    (v, "pairs/s", true)
                } else if let Some(v) = get(r, "pct_of_peak").and_then(as_f64) {
                    (v, "%peak", true)
                } else {
                    return None; // row carries no gated metric
                };
            Some(Row {
                kernel: match get(r, "kernel")? {
                    Value::Str(s) => s.clone(),
                    _ => return None,
                },
                n: as_u64(get(r, "n")?)?,
                threads: as_u64(get(r, "threads")?)?,
                backend: match get(r, "backend") {
                    Some(Value::Str(s)) => s.clone(),
                    _ => String::new(), // pre-SIMD reports carry no backend
                },
                value,
                unit,
                higher_is_better,
                allocs_per_iter: get(r, "allocs_per_iter").and_then(as_u64),
            })
        })
        .filter(|r| r.threads == 1) // only the stable serial rows gate CI
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.30f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            let v = it.next().expect("--threshold needs a value");
            threshold = v.parse().expect("--threshold must be a fraction, e.g. 0.30");
        } else {
            paths.push(a.clone());
        }
    }
    let [fresh_path, baseline_path] = paths.as_slice() else {
        eprintln!("usage: check_bench <fresh.json> <baseline.json> [--threshold <frac>]");
        std::process::exit(2);
    };

    if !std::path::Path::new(baseline_path).exists() {
        if let Some(dir) = std::path::Path::new(baseline_path).parent() {
            std::fs::create_dir_all(dir).expect("create baseline dir");
        }
        std::fs::copy(fresh_path, baseline_path).expect("seed baseline");
        println!("check_bench: no baseline at {baseline_path}; seeded from {fresh_path}");
        // GitHub Actions annotation: surface the unarmed gate on the
        // workflow summary instead of passing silently
        println!(
            "::warning file={baseline_path}::check_bench seeded a missing baseline from \
             {fresh_path}; commit it to arm the perf gate"
        );
        return;
    }

    let fresh = load_rows(fresh_path);
    let baseline = load_rows(baseline_path);

    println!(
        "{:<24} {:>5} {:<8} {:<8} {:>12} {:>12} {:>8}  status",
        "kernel", "n", "backend", "unit", "base", "fresh", "delta"
    );
    let (deltas, compared) = compare(&baseline, &fresh, threshold);
    for d in &deltas {
        match d.fresh {
            Some(fr) => println!(
                "{:<24} {:>5} {:<8} {:<8} {:>12.1} {:>12.1} {:>7.1}%  {}",
                d.kernel,
                d.n,
                d.backend,
                d.unit,
                d.base,
                fr,
                d.delta * 100.0,
                d.status
            ),
            None => println!(
                "{:<24} {:>5} {:<8} {:<8} {:>12.1} {:>12} {:>8}  {}",
                d.kernel, d.n, d.backend, d.unit, d.base, "-", "-", d.status
            ),
        }
    }
    // rows the fresh run emits that the baseline lacks are informational —
    // committing a refreshed baseline arms the gate for them
    for f in &fresh {
        let known = baseline.iter().any(|b| {
            b.kernel == f.kernel && b.n == f.n && b.backend == f.backend && b.unit == f.unit
        });
        if !known {
            println!(
                "{:<24} {:>5} {:<8} {:<8} {:>12} {:>12.1} {:>8}  NEW (not gated)",
                f.kernel, f.n, f.backend, f.unit, "-", f.value, "-"
            );
        }
    }
    if compared == 0 {
        eprintln!(
            "check_bench: no comparable threads==1 rows between {fresh_path} and {baseline_path}"
        );
        std::process::exit(1);
    }
    let offending: Vec<&Delta> = deltas.iter().filter(|d| d.status != "ok").collect();
    if !offending.is_empty() {
        eprintln!();
        eprintln!("check_bench: offending rows (threshold {:.0}%):", threshold * 100.0);
        eprintln!(
            "  {:<24} {:>5} {:<8} {:<8} {:>12} {:>12} {:>8}  status",
            "kernel", "n", "backend", "unit", "base", "fresh", "delta"
        );
        for d in &offending {
            match d.fresh {
                Some(fr) => eprintln!(
                    "  {:<24} {:>5} {:<8} {:<8} {:>12.1} {:>12.1} {:>7.1}%  {}",
                    d.kernel,
                    d.n,
                    d.backend,
                    d.unit,
                    d.base,
                    fr,
                    d.delta * 100.0,
                    d.status
                ),
                None => eprintln!(
                    "  {:<24} {:>5} {:<8} {:<8} {:>12.1} {:>12} {:>8}  {}",
                    d.kernel, d.n, d.backend, d.unit, d.base, "-", "-", d.status
                ),
            }
        }
        eprintln!(
            "check_bench: {} row(s) regressed beyond {:.0}% vs {baseline_path}",
            offending.len(),
            threshold * 100.0
        );
        std::process::exit(1);
    }
    println!("check_bench: {compared} row(s) within {:.0}% of {baseline_path}", threshold * 100.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(kernel: &str, value: f64, higher_is_better: bool, allocs: Option<u64>) -> Row {
        Row {
            kernel: kernel.to_string(),
            n: 32,
            threads: 1,
            backend: "scalar".to_string(),
            value,
            unit: if higher_is_better { "pairs/s" } else { "ns/pt" },
            higher_is_better,
            allocs_per_iter: allocs,
        }
    }

    #[test]
    fn within_threshold_is_ok() {
        let base = vec![row("axpy", 10.0, false, None)];
        let fresh = vec![row("axpy", 12.0, false, None)];
        let (deltas, compared) = compare(&base, &fresh, 0.30);
        assert_eq!(compared, 1);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].status, "ok");
    }

    #[test]
    fn slower_timing_row_regresses() {
        let base = vec![row("axpy", 10.0, false, None)];
        let fresh = vec![row("axpy", 14.0, false, None)];
        let (deltas, _) = compare(&base, &fresh, 0.30);
        assert_eq!(deltas[0].status, "REGRESSED");
    }

    #[test]
    fn lower_throughput_row_regresses() {
        let base = vec![row("batch", 100.0, true, None)];
        let fresh = vec![row("batch", 60.0, true, None)];
        let (deltas, _) = compare(&base, &fresh, 0.30);
        assert_eq!(deltas[0].status, "REGRESSED");
        // the same drop in a lower-is-better metric would be an improvement
        let (deltas, _) =
            compare(&[row("t", 100.0, false, None)], &[row("t", 60.0, false, None)], 0.30);
        assert_eq!(deltas[0].status, "ok");
    }

    #[test]
    fn alloc_increase_fails_exactly() {
        let base = vec![row("gn_iteration", 10.0, false, Some(0))];
        let fresh = vec![row("gn_iteration", 10.0, false, Some(1))];
        let (deltas, _) = compare(&base, &fresh, 0.30);
        assert_eq!(deltas[0].status, "ALLOC-REGRESSED");
    }

    #[test]
    fn missing_baseline_row_is_named_and_offending() {
        // a fresh run that silently drops a gated row must fail, and the
        // delta must name the row so the failure is actionable
        let base = vec![row("pcg_h0_mixed", 10.0, false, None), row("axpy", 5.0, false, None)];
        let fresh = vec![row("axpy", 5.0, false, None)];
        let (deltas, compared) = compare(&base, &fresh, 0.30);
        assert_eq!(compared, 1);
        let missing: Vec<&Delta> = deltas.iter().filter(|d| d.status == "MISSING").collect();
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].kernel, "pcg_h0_mixed");
        assert!(missing[0].fresh.is_none());
        // MISSING participates in the same status != "ok" filter main uses
        assert!(deltas.iter().any(|d| d.status != "ok"));
    }

    #[test]
    fn unit_participates_in_row_key() {
        // a timing row must not satisfy a roofline row of the same kernel
        let mut roof = row("axpy", 40.0, true, None);
        roof.unit = "%peak";
        let base = vec![row("axpy", 10.0, false, None), roof];
        let fresh = vec![row("axpy", 10.0, false, None)];
        let (deltas, compared) = compare(&base, &fresh, 0.30);
        assert_eq!(compared, 1);
        assert!(deltas.iter().any(|d| d.status == "MISSING" && d.unit == "%peak"));
    }
}
