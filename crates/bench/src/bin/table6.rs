//! Table 6: full registration runs on NIREP-like and CLARITY-like data.
//!
//! Runs the complete β-continuation Gauss–Newton–Krylov solver on the
//! phantom datasets (grid sizes scaled per DESIGN.md; set `CLAIRE_BENCH_N`
//! to go bigger) for all three preconditioners, and prints the same
//! columns as the paper's Table 6 — once with wall times on this host and
//! once with modeled V100 times — followed by the published rows.

use claire_bench::{bench_n, header, record_json};
use claire_core::{observe, Claire, PrecondKind, RegistrationConfig, RegistrationReport};
use claire_data::{brain, clarity};
use claire_grid::{Grid, Layout};
use claire_interp::IpOrder;
use claire_mpi::Comm;
use claire_obs::report::RunReport;
use claire_perf::paper::TABLE6;

/// Run one registration with observability on and return the unified
/// [`RunReport`] — span tree, kernel phases, GN trace, and traffic — next
/// to the Table 6 row.
fn run_one(
    data: &str,
    m0: &claire_grid::ScalarField,
    m1: &claire_grid::ScalarField,
    pc: PrecondKind,
    eps_h0: f64,
    comm: &mut Comm,
) -> (RegistrationReport, RunReport) {
    // NOTE: the paper's Table 6 uses linear interpolation at >= 256^3; at
    // the scaled-down grids of this reproduction the linear kernel's
    // forward/adjoint inconsistency dominates the gradient, so we use the
    // cubic (GPU-TXTLAG) kernel here (see EXPERIMENTS.md).
    let cfg = RegistrationConfig::builder()
        .nt(4)
        .ip_order(IpOrder::Cubic)
        .precond(pc)
        .beta(5e-4)
        .eps_h0(eps_h0)
        .max_gn_iter(10)
        .verbose(false)
        .build()
        .expect("valid configuration");
    observe::begin(); // fresh spans/metrics/kernel timers per run
    let mut claire = Claire::new(cfg);
    let (_, report) = claire.register_from(m0, m1, None, data, comm);
    let run = observe::collect_run_report(data, &report, comm);
    (report, run)
}

/// One-line FFT/IP/FD phase summary from the run report (Table 7's runtime
/// shares, here per Table 6 row).
fn phase_line(run: &RunReport) -> String {
    let p = &run.phases;
    format!(
        "         └ phases: fft {:.3}s  ip {:.3}s  fd {:.3}s  other {:.3}s   gn_trace {} records",
        p.fft_secs,
        p.ip_secs,
        p.fd_secs,
        p.other_secs,
        run.gn_trace.len()
    )
}

fn main() {
    let n = bench_n();
    let mut comm = Comm::solo();
    let layout = Layout::serial(Grid::cube(n));

    header(&format!("Table 6 — full registrations at {n}^3 (NIREP-like phantoms, β → 5e-4)"));
    println!("{}", RegistrationReport::header());
    let reference = brain::subject("na01", layout, &mut comm);
    let mut reports = Vec::new();
    for subject in ["na02", "na03", "na10"] {
        let template = brain::subject(subject, layout, &mut comm);
        for pc in [PrecondKind::InvA, PrecondKind::InvH0, PrecondKind::TwoLevelInvH0] {
            let (r, run) = run_one(subject, &template, &reference, pc, 1e-3, &mut comm);
            println!("{}", r.row());
            println!("{}", phase_line(&run));
            record_json("table6", &serde_json::to_string(&run).unwrap());
            reports.push(r);
        }
    }

    header(&format!("Table 6 — CLARITY-like registration at {}x{}x{} (εH0 = 1e-2)", 2 * n, n, n));
    let clarity_layout = Layout::serial(Grid::new([2 * n, n, n]));
    let (c0, c1) = clarity::pair(clarity_layout, &mut comm);
    for pc in [PrecondKind::InvA, PrecondKind::TwoLevelInvH0] {
        let (r, run) = run_one("clarity", &c0, &c1, pc, 1e-2, &mut comm);
        println!("{}", r.row());
        println!("{}", phase_line(&run));
        record_json("table6", &serde_json::to_string(&run).unwrap());
        reports.push(r);
    }

    header("Table 6 — modeled V100 runtimes for the same runs");
    println!("{}", RegistrationReport::header());
    for r in &reports {
        println!("{}", r.row_modeled());
    }

    header("Table 6 — paper reference (selected rows)");
    println!(
        "{:>8} {:>8} {:>14} {:>5} {:>4} {:>5} {:>9} {:>9} {:>9}",
        "data", "PC", "size", "GPUs", "GN", "PCG", "mism.", "|g|_rel", "total(s)"
    );
    for row in &TABLE6 {
        println!(
            "{:>8} {:>8} {:>4}x{}x{} {:>5} {:>4} {:>5} {:>9.2e} {:>9.2e} {:>9.3}",
            row.data,
            row.pc,
            row.size[0],
            row.size[1],
            row.size[2],
            row.gpus,
            row.gn,
            row.pcg,
            row.mismatch,
            row.grad_rel,
            row.total
        );
    }

    // headline shape checks
    let pcg_of = |data: &str, pc: &str| {
        reports.iter().find(|r| r.data == data && r.pc == pc).map(|r| r.pcg_iters).unwrap_or(0)
    };
    println!("\nshape check (paper: InvH0 variants cut outer PCG iterations 2-3x vs InvA):");
    for s in ["na02", "na03", "na10"] {
        println!(
            "  {s}: PCG InvA = {}, InvH0 = {}, 2LInvH0 = {}",
            pcg_of(s, "InvA"),
            pcg_of(s, "InvH0"),
            pcg_of(s, "2LInvH0")
        );
    }
}
