//! 1D complex FFT plans: mixed-radix Cooley–Tukey and Bluestein.

use claire_grid::{ClaireError, ClaireResult, Real};
use claire_simd::Elem;

use crate::complex::{as_real, as_real_mut, Cpx, CpxT};
use crate::factor::{is_smooth, next_pow2, smallest_prime_factor};

/// A planned 1D complex FFT of fixed length, generic over element width.
///
/// {2,3,5}-smooth lengths take the recursive mixed-radix Cooley–Tukey path;
/// any other length uses Bluestein's chirp-z algorithm on top of a
/// power-of-two plan. The forward transform uses the `e^{-i k x}` sign
/// convention; [`Fft1dT::inverse`] includes the `1/n` normalization, so
/// `inverse(forward(x)) == x`. Twiddle/chirp tables are evaluated in f64 and
/// rounded once to `T`, so the f64 instantiation is bit-identical to a
/// direct f64 plan.
pub struct Fft1dT<T> {
    n: usize,
    kind: Kind<T>,
}

/// Field-precision ([`Real`]) 1D plan — the solver's default path.
pub type Fft1d = Fft1dT<Real>;

enum Kind<T> {
    /// Twiddle table `w[j] = e^{-2πi j / n}` for the recursive path.
    Smooth { tw: Vec<CpxT<T>> },
    Bluestein {
        /// `chirp[j] = e^{-iπ j²/n}` (j² reduced mod 2n for accuracy).
        chirp: Vec<CpxT<T>>,
        /// Power-of-two inner plan of length `m`.
        inner: Box<Fft1dT<T>>,
        /// FFT of the chirp convolution kernel, length `m`.
        kernel_hat: Vec<CpxT<T>>,
        m: usize,
    },
}

impl<T: Elem> Fft1dT<T> {
    /// Plan a transform of length `n >= 1`. Panicking convenience wrapper
    /// around [`Fft1dT::try_new`].
    pub fn new(n: usize) -> Fft1dT<T> {
        Fft1dT::try_new(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Plan a transform, rejecting the empty length with a typed error.
    pub fn try_new(n: usize) -> ClaireResult<Fft1dT<T>> {
        if n < 1 {
            return Err(ClaireError::Config {
                param: "n",
                message: "FFT length must be positive (got 0)".to_string(),
            });
        }
        Ok(Self::plan(n))
    }

    fn plan(n: usize) -> Fft1dT<T> {
        if is_smooth(n) || n == 1 {
            let tw = (0..n)
                .map(|j| {
                    let theta = -2.0 * std::f64::consts::PI * j as f64 / n as f64;
                    CpxT::new(T::from_f64(theta.cos()), T::from_f64(theta.sin()))
                })
                .collect();
            Fft1dT { n, kind: Kind::Smooth { tw } }
        } else {
            let m = next_pow2(2 * n - 1);
            let inner = Box::new(Fft1dT::new(m));
            // chirp[j] = e^{-iπ j²/n}; reduce j² modulo 2n to keep the
            // argument small (the chirp has period 2n in j).
            let chirp: Vec<CpxT<T>> = (0..n)
                .map(|j| {
                    let jsq = (j * j) % (2 * n);
                    let theta = -std::f64::consts::PI * jsq as f64 / n as f64;
                    CpxT::new(T::from_f64(theta.cos()), T::from_f64(theta.sin()))
                })
                .collect();
            let mut kernel = vec![CpxT::ZERO; m];
            kernel[0] = chirp[0].conj();
            for j in 1..n {
                kernel[j] = chirp[j].conj();
                kernel[m - j] = chirp[j].conj();
            }
            let mut scratch = vec![CpxT::ZERO; m];
            inner.forward(&mut kernel, &mut scratch);
            Fft1dT { n, kind: Kind::Bluestein { chirp, inner, kernel_hat: kernel, m } }
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (lengths are positive); present for lint symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Required scratch length for [`Fft1dT::forward`]/[`Fft1dT::inverse`].
    pub fn scratch_len(&self) -> usize {
        match &self.kind {
            Kind::Smooth { .. } => self.n,
            Kind::Bluestein { m, .. } => 2 * m,
        }
    }

    /// In-place forward DFT (`e^{-ikx}` convention, unnormalized).
    ///
    /// `scratch` must have at least [`Fft1dT::scratch_len`] elements.
    pub fn forward(&self, data: &mut [CpxT<T>], scratch: &mut [CpxT<T>]) {
        assert_eq!(data.len(), self.n, "data length mismatch");
        assert!(scratch.len() >= self.scratch_len(), "scratch too small");
        match &self.kind {
            Kind::Smooth { tw } => {
                if self.n == 1 {
                    return;
                }
                let (src, _) = scratch.split_at_mut(self.n);
                src.copy_from_slice(data);
                fft_rec(src, 1, data, self.n, 1, tw);
            }
            Kind::Bluestein { chirp, inner, kernel_hat, m } => {
                let (a, inner_scratch) = scratch.split_at_mut(*m);
                a.fill(CpxT::ZERO);
                T::kcpx_mul_into(as_real_mut(&mut a[..self.n]), as_real(data), as_real(chirp));
                inner.forward(a, inner_scratch);
                T::kcpx_mul(as_real_mut(a), as_real(kernel_hat));
                inner.inverse(a, inner_scratch);
                T::kcpx_mul_into(as_real_mut(data), as_real(&a[..self.n]), as_real(chirp));
            }
        }
    }

    /// In-place inverse DFT including the `1/n` normalization.
    pub fn inverse(&self, data: &mut [CpxT<T>], scratch: &mut [CpxT<T>]) {
        T::kcpx_conj(as_real_mut(data));
        self.forward(data, scratch);
        let s = T::ONE / T::from_f64(self.n as f64);
        T::kcpx_conj_scale(as_real_mut(data), s);
    }
}

/// Recursive mixed-radix DIT step.
///
/// Computes `out[0..n] = DFT_n(inp[0], inp[s], inp[2s], …)` where the
/// current sub-transform's twiddle `w_n^t` is the global table entry
/// `tw[(t · ws) mod N]` (invariant: `n · ws == N == tw.len()`).
fn fft_rec<T: Elem>(
    inp: &[CpxT<T>],
    s: usize,
    out: &mut [CpxT<T>],
    n: usize,
    ws: usize,
    tw: &[CpxT<T>],
) {
    if n == 1 {
        out[0] = inp[0];
        return;
    }
    // Off-width arm only: stop the recursion at unrolled small DFTs. The
    // primary (`Real`) width keeps the historical single-element leaves —
    // its spectra are pinned bit-for-bit against pre-seam results — while
    // the f32 inner-solve arm trades that pedigree for eliminating the
    // per-leaf call and modular-index overhead that dominates small
    // transforms. The width check monomorphizes to a constant.
    if n <= 5 && T::BYTES != core::mem::size_of::<Real>() {
        dft_small(inp, s, out, n, ws, tw);
        return;
    }
    let r = smallest_prime_factor(n);
    let m = n / r;
    for q in 0..r {
        // SAFETY of indices: sub-sequence q has m elements at stride s·r.
        fft_rec(&inp[q * s..], s * r, &mut out[q * m..(q + 1) * m], m, ws * r, tw);
    }
    // combine r sub-DFTs: X[p·m + k] = Σ_q w^{q(k+pm)} · Sub_q[k]
    let nn = tw.len();
    if r == 2 {
        // Radix-2 butterfly, the hot combine of power-of-two lengths. Uses
        // the half-period symmetry w^{k+m} = −w^k, so only the first half
        // of the twiddle table is read and the whole pass runs as one SIMD
        // kernel over interleaved re/im pairs.
        let (lo, hi) = out.split_at_mut(m);
        // off-width arm: short combines inline — the dispatched kernel's
        // call and assert overhead outweighs SIMD on a handful of pairs
        if m <= 16 && T::BYTES != core::mem::size_of::<Real>() {
            for k in 0..m {
                let t = tw[k * ws] * hi[k];
                hi[k] = lo[k] - t;
                lo[k] += t;
            }
            return;
        }
        T::kcpx_radix2_combine(as_real_mut(lo), as_real_mut(hi), as_real(tw), ws);
        return;
    }
    let mut temp = [CpxT::ZERO; 8];
    debug_assert!(r <= 8, "smooth radix should be 2, 3, or 5");
    for k in 0..m {
        for (q, t) in temp.iter_mut().enumerate().take(r) {
            *t = out[q * m + k];
        }
        for p in 0..r {
            let kk = k + p * m;
            let mut acc = temp[0];
            for (q, &t) in temp.iter().enumerate().take(r).skip(1) {
                acc += tw[(kk * q * ws) % nn] * t;
            }
            out[kk] = acc;
        }
    }
}

/// Unrolled strided DFTs of length 2–5, the recursion base cases of the
/// off-width arm. Radix 2 and 4 use exact ±1/±i rotations; 3 and 5 read
/// the global twiddle table (`w_n^k = tw[k·ws]`) so their constants match
/// the planned values.
fn dft_small<T: Elem>(
    inp: &[CpxT<T>],
    s: usize,
    out: &mut [CpxT<T>],
    n: usize,
    ws: usize,
    tw: &[CpxT<T>],
) {
    match n {
        2 => {
            let (a, b) = (inp[0], inp[s]);
            out[0] = a + b;
            out[1] = a - b;
        }
        4 => {
            let (x0, x1, x2, x3) = (inp[0], inp[s], inp[2 * s], inp[3 * s]);
            let (t0, t1) = (x0 + x2, x0 - x2);
            let t2 = x1 + x3;
            let d = x1 - x3;
            let j = CpxT::new(d.im, -d.re); // −i·(x1 − x3)
            out[0] = t0 + t2;
            out[1] = t1 + j;
            out[2] = t0 - t2;
            out[3] = t1 - j;
        }
        _ => {
            // 3 or 5: direct DFT against the global table
            let nn = tw.len();
            for p in 0..n {
                let mut acc = inp[0];
                for q in 1..n {
                    acc += tw[(p * q * ws) % nn] * inp[q * s];
                }
                out[p] = acc;
            }
        }
    }
}

/// Reference O(n²) DFT for testing (`sign = -1` forward, `+1` inverse
/// without normalization).
pub fn dft_naive(input: &[Cpx], sign: f64) -> Vec<Cpx> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Cpx::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let theta = sign * 2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64;
                acc += Cpx::new(theta.cos() as Real, theta.sin() as Real) * x;
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: &[Cpx], b: &[Cpx], tol: f64) {
        assert_eq!(a.len(), b.len());
        let scale = b.iter().map(|z| z.abs()).fold(1.0, f64::max);
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let d = (*x - *y).abs();
            assert!(d <= tol * scale, "mismatch at {i}: {x:?} vs {y:?} (d={d})");
        }
    }

    fn run_against_naive(n: usize) {
        let input: Vec<Cpx> = (0..n)
            .map(|j| Cpx::new(((j * 7 + 1) % 5) as Real - 2.0, ((j * 3) % 7) as Real / 7.0))
            .collect();
        let plan = Fft1d::new(n);
        let mut data = input.clone();
        let mut scratch = vec![Cpx::ZERO; plan.scratch_len()];
        plan.forward(&mut data, &mut scratch);
        let expect = dft_naive(&input, -1.0);
        assert_close(&data, &expect, 1e-9);
        plan.inverse(&mut data, &mut scratch);
        assert_close(&data, &input, 1e-9);
    }

    #[test]
    fn matches_naive_smooth_sizes() {
        for n in [1usize, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 20, 27, 30, 32, 45, 60, 64, 128] {
            run_against_naive(n);
        }
    }

    #[test]
    fn matches_naive_nirep_axis() {
        run_against_naive(300); // 2²·3·5² — NIREP's 256×300×256
    }

    #[test]
    fn matches_naive_bluestein_sizes() {
        for n in [7usize, 11, 13, 14, 17, 21, 49, 97, 101] {
            run_against_naive(n);
        }
    }

    #[test]
    fn delta_transforms_to_flat() {
        let n = 16;
        let plan = Fft1d::new(n);
        let mut data = vec![Cpx::ZERO; n];
        data[0] = Cpx::ONE;
        let mut scratch = vec![Cpx::ZERO; plan.scratch_len()];
        plan.forward(&mut data, &mut scratch);
        for z in &data {
            assert!((z.re - 1.0).abs() < 1e-10 && z.im.abs() < 1e-10);
        }
    }

    #[test]
    fn parseval() {
        let n = 30;
        let input: Vec<Cpx> =
            (0..n).map(|j| Cpx::new((j as Real).sin(), (j as Real).cos())).collect();
        let plan = Fft1d::new(n);
        let mut data = input.clone();
        let mut scratch = vec![Cpx::ZERO; plan.scratch_len()];
        plan.forward(&mut data, &mut scratch);
        let e_time: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let e_freq: f64 = data.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((e_time - e_freq).abs() < 1e-8 * e_time);
    }

    #[test]
    fn f32_plan_tracks_f64_plan() {
        // The f32 instantiation runs the same algorithm on demoted twiddles;
        // both smooth and Bluestein lengths must agree with the f64 plan to
        // single-precision accuracy.
        for n in [16usize, 30, 97] {
            let input: Vec<Cpx> = (0..n)
                .map(|j| Cpx::new(((j * 5 + 2) % 9) as Real - 4.0, ((j * 11) % 13) as Real / 6.5))
                .collect();
            let p64 = Fft1d::new(n);
            let mut d64 = input.clone();
            let mut s64 = vec![Cpx::ZERO; p64.scratch_len()];
            p64.forward(&mut d64, &mut s64);

            let p32 = Fft1dT::<f32>::new(n);
            let mut d32: Vec<CpxT<f32>> = input.iter().map(|z| z.cast()).collect();
            let mut s32 = vec![CpxT::<f32>::ZERO; p32.scratch_len()];
            p32.forward(&mut d32, &mut s32);

            let scale = d64.iter().map(|z| z.abs()).fold(1.0f64, f64::max);
            for (a, b) in d32.iter().zip(&d64) {
                let d = (a.cast::<f64>() - *b).abs();
                assert!(d < 1e-4 * scale, "n={n}: {a:?} vs {b:?}");
            }
            p32.inverse(&mut d32, &mut s32);
            for (a, b) in d32.iter().zip(&input) {
                assert!((a.cast::<f64>() - *b).abs() < 1e-5, "{a:?} vs {b:?}");
            }
        }
    }

    proptest! {
        #[test]
        fn roundtrip_random(n in 1usize..80, seed in 0u64..1000) {
            let input: Vec<Cpx> = (0..n)
                .map(|j| {
                    let a = ((j as u64).wrapping_mul(6364136223846793005).wrapping_add(seed)) as f64;
                    Cpx::new(((a % 1000.0) / 500.0 - 1.0) as Real, ((a % 777.0) / 388.0 - 1.0) as Real)
                })
                .collect();
            let plan = Fft1d::new(n);
            let mut data = input.clone();
            let mut scratch = vec![Cpx::ZERO; plan.scratch_len()];
            plan.forward(&mut data, &mut scratch);
            plan.inverse(&mut data, &mut scratch);
            for (x, y) in data.iter().zip(&input) {
                prop_assert!((*x - *y).abs() < 1e-8, "{x:?} vs {y:?}");
            }
        }
    }
}
