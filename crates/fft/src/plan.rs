//! 1D complex FFT plans: mixed-radix Cooley–Tukey and Bluestein.

use claire_grid::{ClaireError, ClaireResult, Real};

use crate::complex::{as_real, as_real_mut, Cpx};
use crate::factor::{is_smooth, next_pow2, smallest_prime_factor};

/// A planned 1D complex FFT of fixed length.
///
/// {2,3,5}-smooth lengths take the recursive mixed-radix Cooley–Tukey path;
/// any other length uses Bluestein's chirp-z algorithm on top of a
/// power-of-two plan. The forward transform uses the `e^{-i k x}` sign
/// convention; [`Fft1d::inverse`] includes the `1/n` normalization, so
/// `inverse(forward(x)) == x`.
pub struct Fft1d {
    n: usize,
    kind: Kind,
}

enum Kind {
    /// Twiddle table `w[j] = e^{-2πi j / n}` for the recursive path.
    Smooth { tw: Vec<Cpx> },
    Bluestein {
        /// `chirp[j] = e^{-iπ j²/n}` (j² reduced mod 2n for accuracy).
        chirp: Vec<Cpx>,
        /// Power-of-two inner plan of length `m`.
        inner: Box<Fft1d>,
        /// FFT of the chirp convolution kernel, length `m`.
        kernel_hat: Vec<Cpx>,
        m: usize,
    },
}

impl Fft1d {
    /// Plan a transform of length `n >= 1`. Panicking convenience wrapper
    /// around [`Fft1d::try_new`].
    pub fn new(n: usize) -> Fft1d {
        Fft1d::try_new(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Plan a transform, rejecting the empty length with a typed error.
    pub fn try_new(n: usize) -> ClaireResult<Fft1d> {
        if n < 1 {
            return Err(ClaireError::Config {
                param: "n",
                message: "FFT length must be positive (got 0)".to_string(),
            });
        }
        Ok(Self::plan(n))
    }

    fn plan(n: usize) -> Fft1d {
        if is_smooth(n) || n == 1 {
            let tw = (0..n)
                .map(|j| {
                    let theta = -2.0 * std::f64::consts::PI * j as f64 / n as f64;
                    Cpx::new(theta.cos() as Real, theta.sin() as Real)
                })
                .collect();
            Fft1d { n, kind: Kind::Smooth { tw } }
        } else {
            let m = next_pow2(2 * n - 1);
            let inner = Box::new(Fft1d::new(m));
            // chirp[j] = e^{-iπ j²/n}; reduce j² modulo 2n to keep the
            // argument small (the chirp has period 2n in j).
            let chirp: Vec<Cpx> = (0..n)
                .map(|j| {
                    let jsq = (j * j) % (2 * n);
                    let theta = -std::f64::consts::PI * jsq as f64 / n as f64;
                    Cpx::new(theta.cos() as Real, theta.sin() as Real)
                })
                .collect();
            let mut kernel = vec![Cpx::ZERO; m];
            kernel[0] = chirp[0].conj();
            for j in 1..n {
                kernel[j] = chirp[j].conj();
                kernel[m - j] = chirp[j].conj();
            }
            let mut scratch = vec![Cpx::ZERO; m];
            inner.forward(&mut kernel, &mut scratch);
            Fft1d { n, kind: Kind::Bluestein { chirp, inner, kernel_hat: kernel, m } }
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (lengths are positive); present for lint symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Required scratch length for [`Fft1d::forward`]/[`Fft1d::inverse`].
    pub fn scratch_len(&self) -> usize {
        match &self.kind {
            Kind::Smooth { .. } => self.n,
            Kind::Bluestein { m, .. } => 2 * m,
        }
    }

    /// In-place forward DFT (`e^{-ikx}` convention, unnormalized).
    ///
    /// `scratch` must have at least [`Fft1d::scratch_len`] elements.
    pub fn forward(&self, data: &mut [Cpx], scratch: &mut [Cpx]) {
        assert_eq!(data.len(), self.n, "data length mismatch");
        assert!(scratch.len() >= self.scratch_len(), "scratch too small");
        match &self.kind {
            Kind::Smooth { tw } => {
                if self.n == 1 {
                    return;
                }
                let (src, _) = scratch.split_at_mut(self.n);
                src.copy_from_slice(data);
                fft_rec(src, 1, data, self.n, 1, tw);
            }
            Kind::Bluestein { chirp, inner, kernel_hat, m } => {
                let (a, inner_scratch) = scratch.split_at_mut(*m);
                a.fill(Cpx::ZERO);
                claire_simd::cpx_mul_into(
                    as_real_mut(&mut a[..self.n]),
                    as_real(data),
                    as_real(chirp),
                );
                inner.forward(a, inner_scratch);
                claire_simd::cpx_mul(as_real_mut(a), as_real(kernel_hat));
                inner.inverse(a, inner_scratch);
                claire_simd::cpx_mul_into(as_real_mut(data), as_real(&a[..self.n]), as_real(chirp));
            }
        }
    }

    /// In-place inverse DFT including the `1/n` normalization.
    pub fn inverse(&self, data: &mut [Cpx], scratch: &mut [Cpx]) {
        claire_simd::cpx_conj(as_real_mut(data));
        self.forward(data, scratch);
        let s = 1.0 as Real / self.n as Real;
        claire_simd::cpx_conj_scale(as_real_mut(data), s);
    }
}

/// Recursive mixed-radix DIT step.
///
/// Computes `out[0..n] = DFT_n(inp[0], inp[s], inp[2s], …)` where the
/// current sub-transform's twiddle `w_n^t` is the global table entry
/// `tw[(t · ws) mod N]` (invariant: `n · ws == N == tw.len()`).
fn fft_rec(inp: &[Cpx], s: usize, out: &mut [Cpx], n: usize, ws: usize, tw: &[Cpx]) {
    if n == 1 {
        out[0] = inp[0];
        return;
    }
    let r = smallest_prime_factor(n);
    let m = n / r;
    for q in 0..r {
        // SAFETY of indices: sub-sequence q has m elements at stride s·r.
        fft_rec(&inp[q * s..], s * r, &mut out[q * m..(q + 1) * m], m, ws * r, tw);
    }
    // combine r sub-DFTs: X[p·m + k] = Σ_q w^{q(k+pm)} · Sub_q[k]
    let nn = tw.len();
    if r == 2 {
        // Radix-2 butterfly, the hot combine of power-of-two lengths. Uses
        // the half-period symmetry w^{k+m} = −w^k, so only the first half
        // of the twiddle table is read and the whole pass runs as one SIMD
        // kernel over interleaved re/im pairs.
        let (lo, hi) = out.split_at_mut(m);
        claire_simd::cpx_radix2_combine(as_real_mut(lo), as_real_mut(hi), as_real(tw), ws);
        return;
    }
    let mut temp = [Cpx::ZERO; 8];
    debug_assert!(r <= 8, "smooth radix should be 2, 3, or 5");
    for k in 0..m {
        for (q, t) in temp.iter_mut().enumerate().take(r) {
            *t = out[q * m + k];
        }
        for p in 0..r {
            let kk = k + p * m;
            let mut acc = temp[0];
            for (q, &t) in temp.iter().enumerate().take(r).skip(1) {
                acc += tw[(kk * q * ws) % nn] * t;
            }
            out[kk] = acc;
        }
    }
}

/// Reference O(n²) DFT for testing (`sign = -1` forward, `+1` inverse
/// without normalization).
pub fn dft_naive(input: &[Cpx], sign: f64) -> Vec<Cpx> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Cpx::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let theta = sign * 2.0 * std::f64::consts::PI * (j * k % n) as f64 / n as f64;
                acc += Cpx::new(theta.cos() as Real, theta.sin() as Real) * x;
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: &[Cpx], b: &[Cpx], tol: f64) {
        assert_eq!(a.len(), b.len());
        let scale = b.iter().map(|z| z.abs()).fold(1.0, f64::max);
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let d = (*x - *y).abs();
            assert!(d <= tol * scale, "mismatch at {i}: {x:?} vs {y:?} (d={d})");
        }
    }

    fn run_against_naive(n: usize) {
        let input: Vec<Cpx> = (0..n)
            .map(|j| Cpx::new(((j * 7 + 1) % 5) as Real - 2.0, ((j * 3) % 7) as Real / 7.0))
            .collect();
        let plan = Fft1d::new(n);
        let mut data = input.clone();
        let mut scratch = vec![Cpx::ZERO; plan.scratch_len()];
        plan.forward(&mut data, &mut scratch);
        let expect = dft_naive(&input, -1.0);
        assert_close(&data, &expect, 1e-9);
        plan.inverse(&mut data, &mut scratch);
        assert_close(&data, &input, 1e-9);
    }

    #[test]
    fn matches_naive_smooth_sizes() {
        for n in [1usize, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 20, 27, 30, 32, 45, 60, 64, 128] {
            run_against_naive(n);
        }
    }

    #[test]
    fn matches_naive_nirep_axis() {
        run_against_naive(300); // 2²·3·5² — NIREP's 256×300×256
    }

    #[test]
    fn matches_naive_bluestein_sizes() {
        for n in [7usize, 11, 13, 14, 17, 21, 49, 97, 101] {
            run_against_naive(n);
        }
    }

    #[test]
    fn delta_transforms_to_flat() {
        let n = 16;
        let plan = Fft1d::new(n);
        let mut data = vec![Cpx::ZERO; n];
        data[0] = Cpx::ONE;
        let mut scratch = vec![Cpx::ZERO; plan.scratch_len()];
        plan.forward(&mut data, &mut scratch);
        for z in &data {
            assert!((z.re - 1.0).abs() < 1e-10 && z.im.abs() < 1e-10);
        }
    }

    #[test]
    fn parseval() {
        let n = 30;
        let input: Vec<Cpx> =
            (0..n).map(|j| Cpx::new((j as Real).sin(), (j as Real).cos())).collect();
        let plan = Fft1d::new(n);
        let mut data = input.clone();
        let mut scratch = vec![Cpx::ZERO; plan.scratch_len()];
        plan.forward(&mut data, &mut scratch);
        let e_time: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let e_freq: f64 = data.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((e_time - e_freq).abs() < 1e-8 * e_time);
    }

    proptest! {
        #[test]
        fn roundtrip_random(n in 1usize..80, seed in 0u64..1000) {
            let input: Vec<Cpx> = (0..n)
                .map(|j| {
                    let a = ((j as u64).wrapping_mul(6364136223846793005).wrapping_add(seed)) as f64;
                    Cpx::new(((a % 1000.0) / 500.0 - 1.0) as Real, ((a % 777.0) / 388.0 - 1.0) as Real)
                })
                .collect();
            let plan = Fft1d::new(n);
            let mut data = input.clone();
            let mut scratch = vec![Cpx::ZERO; plan.scratch_len()];
            plan.forward(&mut data, &mut scratch);
            plan.inverse(&mut data, &mut scratch);
            for (x, y) in data.iter().zip(&input) {
                prop_assert!((*x - *y).abs() < 1e-8, "{x:?} vs {y:?}");
            }
        }
    }
}
