//! Real ↔ half-complex 1D transforms (even lengths).
//!
//! The image and velocity fields are real, so the innermost (x3) transform
//! of the 3D FFT is real-to-complex: length-`n` real input produces
//! `n/2 + 1` complex outputs (the rest follows by Hermitian symmetry).
//! Implemented with the standard trick of packing the even/odd samples into
//! a complex sequence of half the length.

use claire_grid::{ClaireError, ClaireResult, Real};
use claire_simd::Elem;

use crate::complex::{as_real, as_real_mut, CpxT};
use crate::plan::Fft1dT;

/// Planned real↔half-complex transform of even length `n`, generic over
/// element width.
pub struct RealFft1dT<T> {
    n: usize,
    half: Fft1dT<T>,
    /// Unpacking twiddles `w^k = e^{-2πik/n}` for `k = 0..=n/2`.
    w: Vec<CpxT<T>>,
}

/// Field-precision ([`Real`]) real↔half-complex plan.
pub type RealFft1d = RealFft1dT<Real>;

impl<T: Elem> RealFft1dT<T> {
    /// Plan a real transform; `n` must be even and ≥ 2. Panicking
    /// convenience wrapper around [`RealFft1dT::try_new`].
    pub fn new(n: usize) -> RealFft1dT<T> {
        RealFft1dT::try_new(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Plan a real transform, rejecting odd or tiny lengths with a typed
    /// error instead of a panic deep inside the plan cache.
    pub fn try_new(n: usize) -> ClaireResult<RealFft1dT<T>> {
        if n < 2 || !n.is_multiple_of(2) {
            return Err(ClaireError::Config {
                param: "n",
                message: format!("real FFT needs even n >= 2, got {n}"),
            });
        }
        let w = (0..=n / 2)
            .map(|k| {
                let theta = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
                CpxT::new(T::from_f64(theta.cos()), T::from_f64(theta.sin()))
            })
            .collect();
        Ok(RealFft1dT { n, half: Fft1dT::try_new(n / 2)?, w })
    }

    /// Real length `n`.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; for lint symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of complex outputs `n/2 + 1`.
    pub fn spectral_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Required scratch (complex elements).
    pub fn scratch_len(&self) -> usize {
        self.n / 2 + self.half.scratch_len()
    }

    /// Forward r2c: `input.len() == n`, `out.len() == n/2 + 1`.
    pub fn forward(&self, input: &[T], out: &mut [CpxT<T>], scratch: &mut [CpxT<T>]) {
        let m = self.n / 2;
        assert_eq!(input.len(), self.n);
        assert_eq!(out.len(), m + 1);
        assert!(scratch.len() >= self.scratch_len());
        let half = T::from_f64(0.5);
        let (z, inner_scratch) = scratch.split_at_mut(m);
        // pack even/odd samples into z[j] = (input[2j], input[2j+1]) — a
        // pure reinterpretation of the interleaved storage, so memcpy
        as_real_mut(z).copy_from_slice(input);
        self.half.forward(z, inner_scratch);
        for k in 0..=m {
            // indices wrap with period m: z[m] := z[0]
            let zk = if k == m { z[0] } else { z[k] };
            let zmk = if k == 0 { z[0] } else { z[m - k] };
            let e = (zk + zmk.conj()).scale(half);
            let o = (zk - zmk.conj()).scale(half).mul_i().scale(-T::ONE); // -i(z-ẑ)/2
            out[k] = e + self.w[k] * o;
        }
    }

    /// Inverse c2r with `1/n` normalization: `spec.len() == n/2 + 1`,
    /// `out.len() == n`.
    pub fn inverse(&self, spec: &[CpxT<T>], out: &mut [T], scratch: &mut [CpxT<T>]) {
        let m = self.n / 2;
        assert_eq!(spec.len(), m + 1);
        assert_eq!(out.len(), self.n);
        assert!(scratch.len() >= self.scratch_len());
        let half = T::from_f64(0.5);
        let (z, inner_scratch) = scratch.split_at_mut(m);
        for (k, zk) in z.iter_mut().enumerate() {
            let xk = spec[k];
            let xmk = spec[m - k].conj();
            let e = (xk + xmk).scale(half);
            // o[k] = w^{-k} (x[k] - conj(x[m-k]))/2; w^{-k} = conj(w^k)
            let o = self.w[k].conj() * (xk - xmk).scale(half);
            *zk = e + o.mul_i();
        }
        self.half.inverse(z, inner_scratch);
        // unpack (z[j].re, z[j].im) -> (out[2j], out[2j+1]): memcpy again
        out.copy_from_slice(as_real(z));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Cpx;
    use crate::plan::dft_naive;
    use proptest::prelude::*;

    fn naive_r2c(input: &[Real]) -> Vec<Cpx> {
        let z: Vec<Cpx> = input.iter().map(|&x| Cpx::real(x)).collect();
        let full = dft_naive(&z, -1.0);
        full[..input.len() / 2 + 1].to_vec()
    }

    fn check_size(n: usize) {
        let input: Vec<Real> = (0..n).map(|j| ((j * j + 3) % 11) as Real - 5.0).collect();
        let plan = RealFft1d::new(n);
        let mut spec = vec![Cpx::ZERO; plan.spectral_len()];
        let mut scratch = vec![Cpx::ZERO; plan.scratch_len()];
        plan.forward(&input, &mut spec, &mut scratch);
        let expect = naive_r2c(&input);
        for (k, (a, b)) in spec.iter().zip(&expect).enumerate() {
            assert!((*a - *b).abs() < 1e-8, "n={n} k={k}: {a:?} vs {b:?}");
        }
        let mut back = vec![0.0 as Real; n];
        plan.inverse(&spec, &mut back, &mut scratch);
        for (a, b) in back.iter().zip(&input) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn matches_naive_various_even_sizes() {
        for n in [2usize, 4, 6, 8, 10, 12, 16, 30, 32, 64, 300] {
            check_size(n);
        }
    }

    #[test]
    fn dc_and_nyquist_are_real() {
        let n = 16;
        let input: Vec<Real> = (0..n).map(|j| (j as Real * 0.7).sin()).collect();
        let plan = RealFft1d::new(n);
        let mut spec = vec![Cpx::ZERO; plan.spectral_len()];
        let mut scratch = vec![Cpx::ZERO; plan.scratch_len()];
        plan.forward(&input, &mut spec, &mut scratch);
        assert!(spec[0].im.abs() < 1e-10, "DC must be real");
        assert!(spec[n / 2].im.abs() < 1e-10, "Nyquist must be real");
    }

    #[test]
    fn f32_real_plan_tracks_f64() {
        let n = 32;
        let input: Vec<Real> = (0..n).map(|j| ((j * 13 + 5) % 17) as Real / 8.5 - 1.0).collect();
        let p64 = RealFft1d::new(n);
        let mut s64 = vec![Cpx::ZERO; p64.spectral_len()];
        let mut sc64 = vec![Cpx::ZERO; p64.scratch_len()];
        p64.forward(&input, &mut s64, &mut sc64);

        let in32: Vec<f32> = input.iter().map(|&x| x as f32).collect();
        let p32 = RealFft1dT::<f32>::new(n);
        let mut s32 = vec![CpxT::<f32>::ZERO; p32.spectral_len()];
        let mut sc32 = vec![CpxT::<f32>::ZERO; p32.scratch_len()];
        p32.forward(&in32, &mut s32, &mut sc32);
        for (a, b) in s32.iter().zip(&s64) {
            assert!((a.cast::<f64>() - *b).abs() < 1e-4, "{a:?} vs {b:?}");
        }
        let mut back = vec![0.0f32; n];
        p32.inverse(&s32, &mut back, &mut sc32);
        for (a, b) in back.iter().zip(&input) {
            assert!((*a as f64 - b).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_length_rejected() {
        RealFft1d::new(7);
    }

    proptest! {
        #[test]
        fn roundtrip_random(half_n in 1usize..60, seed in 0u64..500) {
            let n = 2 * half_n;
            let input: Vec<Real> = (0..n)
                .map(|j| {
                    let a = (j as u64).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(seed);
                    ((a % 2000) as Real) / 1000.0 - 1.0
                })
                .collect();
            let plan = RealFft1d::new(n);
            let mut spec = vec![Cpx::ZERO; plan.spectral_len()];
            let mut scratch = vec![Cpx::ZERO; plan.scratch_len()];
            plan.forward(&input, &mut spec, &mut scratch);
            let mut back = vec![0.0; n];
            plan.inverse(&spec, &mut back, &mut scratch);
            for (a, b) in back.iter().zip(&input) {
                prop_assert!((a - b).abs() < 1e-8);
            }
        }
    }
}
