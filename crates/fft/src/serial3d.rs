//! Serial 3D real↔complex FFT — the single-rank ("cuFFT 3D") path.
//!
//! Each of the three passes is a batch of independent 1-D transforms (rows
//! along x3, strided lines along x2/x1); like cuFFT's batched plans, the
//! batch is split across worker threads via `claire-par`, with per-worker
//! line/scratch buffers and disjoint writes into the spectral array.

// Strided line gathers: explicit indices keep the stride math readable.
#![allow(clippy::needless_range_loop)]

use std::sync::Arc;

use claire_grid::{Grid, Real, WsCat};
use claire_par::timing::{self, Kernel};
use claire_par::{par_parts, SharedSlice};

use crate::cache;
use crate::complex::CpxT;
use crate::plan::Fft1dT;
use crate::real::RealFft1dT;
use crate::FftElem;

/// Planned 3D real↔complex transform on a full (serial) grid, generic over
/// element width.
///
/// Real input has dims `[n1, n2, n3]` (x3 fastest); spectral output has dims
/// `[n1, n2, n3/2 + 1]` in the same ordering. Forward is unnormalized;
/// inverse includes `1/N`, so the pair is an identity. The 1-D factor plans
/// come from the process-wide [`cache`], so constructing an `Fft3T` for an
/// already-seen grid does no planning work.
pub struct Fft3T<T: FftElem> {
    grid: Grid,
    r3: Arc<RealFft1dT<T>>,
    c2: Arc<Fft1dT<T>>,
    c1: Arc<Fft1dT<T>>,
}

/// Field-precision ([`Real`]) serial 3D plan.
pub type Fft3 = Fft3T<Real>;

/// Marker closure type for the unscaled inverse path (never called).
type NoScale<T> = fn(usize, usize, usize) -> T;

impl<T: FftElem> Fft3T<T> {
    /// Plan transforms for `grid` (requires even `n3`).
    pub fn new(grid: Grid) -> Fft3T<T> {
        Fft3T {
            grid,
            r3: cache::real_fft1d_t(grid.n[2]),
            c2: cache::fft1d_t(grid.n[1]),
            c1: cache::fft1d_t(grid.n[0]),
        }
    }

    /// The grid this plan is for.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Number of complex spectral coefficients `n1·n2·(n3/2+1)`.
    pub fn spectral_len(&self) -> usize {
        let [n1, n2, _] = self.grid.n;
        n1 * n2 * self.n3c()
    }

    /// Spectral extent along x3: `n3/2 + 1`.
    pub fn n3c(&self) -> usize {
        self.grid.n[2] / 2 + 1
    }

    fn scratch_len(&self) -> usize {
        self.r3.scratch_len().max(self.c2.scratch_len()).max(self.c1.scratch_len())
    }

    /// Forward r2c transform: `real.len() == N`, `out.len() == spectral_len()`.
    pub fn forward(&self, real: &[T], out: &mut [CpxT<T>]) {
        let [n1, n2, n3] = self.grid.n;
        let n3c = self.n3c();
        assert_eq!(real.len(), self.grid.len());
        assert_eq!(out.len(), self.spectral_len());
        let scratch_len = self.scratch_len();

        timing::time(Kernel::FftSerial, || {
            // x3: real-to-complex per (i, j) row — rows are disjoint output
            // chunks, split across workers with per-worker scratch
            let shared = SharedSlice::new(out);
            par_parts(n1 * n2, n1 * n2 * n3, |rows| {
                let mut scratch =
                    T::cpx_pool().checkout_filled(scratch_len, CpxT::ZERO, WsCat::Fft);
                for row in rows {
                    // SAFETY: row ranges are disjoint across workers.
                    let dst = unsafe { shared.slice_mut(row * n3c..(row + 1) * n3c) };
                    self.r3.forward(&real[row * n3..(row + 1) * n3], dst, &mut scratch);
                }
            });
            // x2: complex FFT with stride n3c, batched over (i, k) lines
            par_parts(n1 * n3c, n1 * n3c * n2, |lines| {
                let mut scratch =
                    T::cpx_pool().checkout_filled(scratch_len, CpxT::ZERO, WsCat::Fft);
                let mut line = T::cpx_pool().checkout_filled(n2, CpxT::ZERO, WsCat::Fft);
                for t in lines {
                    let (i, k) = (t / n3c, t % n3c);
                    let base = i * n2 * n3c + k;
                    // SAFETY: distinct (i, k) touch disjoint strided indices.
                    unsafe {
                        for j in 0..n2 {
                            line[j] = shared.read(base + j * n3c);
                        }
                        self.c2.forward(&mut line, &mut scratch);
                        for j in 0..n2 {
                            shared.write(base + j * n3c, line[j]);
                        }
                    }
                }
            });
            // x1: complex FFT with stride n2·n3c, batched over (j, k) lines
            let stride = n2 * n3c;
            par_parts(stride, stride * n1, |lines| {
                let mut scratch =
                    T::cpx_pool().checkout_filled(scratch_len, CpxT::ZERO, WsCat::Fft);
                let mut line1 = T::cpx_pool().checkout_filled(n1, CpxT::ZERO, WsCat::Fft);
                for jk in lines {
                    // SAFETY: distinct jk touch disjoint strided indices.
                    unsafe {
                        for i in 0..n1 {
                            line1[i] = shared.read(i * stride + jk);
                        }
                        self.c1.forward(&mut line1, &mut scratch);
                        for i in 0..n1 {
                            shared.write(i * stride + jk, line1[i]);
                        }
                    }
                }
            });
        });
    }

    /// Inverse c2r transform (normalized): `spec.len() == spectral_len()`,
    /// `out.len() == N`. `spec` is consumed as scratch.
    pub fn inverse(&self, spec: &mut [CpxT<T>], out: &mut [T]) {
        self.inverse_opt(spec, out, None::<&NoScale<T>>);
    }

    /// Inverse transform with a per-coefficient scale fused into the first
    /// (x1) pass: each coefficient is multiplied by `scale(i, j, k)` —
    /// global spectral indices — as it is first gathered, saving a separate
    /// pass over the spectral array. Applying a symbol this way performs
    /// the exact same per-element multiply the standalone scaling pass
    /// would, so results are bit-identical to scale-then-`inverse`.
    pub fn inverse_scaled<S>(&self, spec: &mut [CpxT<T>], out: &mut [T], scale: &S)
    where
        S: Fn(usize, usize, usize) -> T + Sync,
    {
        self.inverse_opt(spec, out, Some(scale));
    }

    fn inverse_opt<S>(&self, spec: &mut [CpxT<T>], out: &mut [T], scale: Option<&S>)
    where
        S: Fn(usize, usize, usize) -> T + Sync,
    {
        let [n1, n2, n3] = self.grid.n;
        let n3c = self.n3c();
        assert_eq!(spec.len(), self.spectral_len());
        assert_eq!(out.len(), self.grid.len());
        let scratch_len = self.scratch_len();

        timing::time(Kernel::FftSerial, || {
            let shared = SharedSlice::new(spec);
            // x1 inverse (with the optional symbol fused into the gather)
            let stride = n2 * n3c;
            par_parts(stride, stride * n1, |lines| {
                let mut scratch =
                    T::cpx_pool().checkout_filled(scratch_len, CpxT::ZERO, WsCat::Fft);
                let mut line1 = T::cpx_pool().checkout_filled(n1, CpxT::ZERO, WsCat::Fft);
                for jk in lines {
                    // SAFETY: distinct jk touch disjoint strided indices.
                    unsafe {
                        match scale {
                            None => {
                                for i in 0..n1 {
                                    line1[i] = shared.read(i * stride + jk);
                                }
                            }
                            Some(f) => {
                                let (j, k) = (jk / n3c, jk % n3c);
                                for i in 0..n1 {
                                    line1[i] = shared.read(i * stride + jk).scale(f(i, j, k));
                                }
                            }
                        }
                        self.c1.inverse(&mut line1, &mut scratch);
                        for i in 0..n1 {
                            shared.write(i * stride + jk, line1[i]);
                        }
                    }
                }
            });
            // x2 inverse
            par_parts(n1 * n3c, n1 * n3c * n2, |lines| {
                let mut scratch =
                    T::cpx_pool().checkout_filled(scratch_len, CpxT::ZERO, WsCat::Fft);
                let mut line = T::cpx_pool().checkout_filled(n2, CpxT::ZERO, WsCat::Fft);
                for t in lines {
                    let (i, k) = (t / n3c, t % n3c);
                    let base = i * n2 * n3c + k;
                    // SAFETY: distinct (i, k) touch disjoint strided indices.
                    unsafe {
                        for j in 0..n2 {
                            line[j] = shared.read(base + j * n3c);
                        }
                        self.c2.inverse(&mut line, &mut scratch);
                        for j in 0..n2 {
                            shared.write(base + j * n3c, line[j]);
                        }
                    }
                }
            });
            // x3 inverse (c2r): rows are disjoint spec/output chunks
            let out_shared = SharedSlice::new(out);
            par_parts(n1 * n2, n1 * n2 * n3, |rows| {
                let mut scratch =
                    T::cpx_pool().checkout_filled(scratch_len, CpxT::ZERO, WsCat::Fft);
                for row in rows {
                    // SAFETY: spec/out row ranges are disjoint across workers
                    // and spec is only read during this pass.
                    let src = unsafe { &*shared.slice_mut(row * n3c..(row + 1) * n3c) };
                    let dst = unsafe { out_shared.slice_mut(row * n3..(row + 1) * n3) };
                    self.r3.inverse(src, dst, &mut scratch);
                }
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Cpx;
    use claire_grid::{Layout, ScalarField, TWO_PI};

    #[test]
    fn roundtrip_identity() {
        let grid = Grid::new([4, 6, 8]);
        let f = ScalarField::from_fn(Layout::serial(grid), |x, y, z| {
            (x.sin() * (2.0 * y).cos()) + z * 0.1
        });
        let plan = Fft3::new(grid);
        let mut spec = vec![Cpx::ZERO; plan.spectral_len()];
        plan.forward(f.data(), &mut spec);
        let mut back = vec![0.0 as Real; grid.len()];
        plan.inverse(&mut spec, &mut back);
        for (a, b) in back.iter().zip(f.data()) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn f32_roundtrip_identity() {
        let grid = Grid::new([4, 6, 8]);
        let f = ScalarField::from_fn(Layout::serial(grid), |x, y, z| {
            (x.sin() * (2.0 * y).cos()) + z * 0.1
        });
        let f32_data: Vec<f32> = f.data().iter().map(|&x| x as f32).collect();
        let plan = Fft3T::<f32>::new(grid);
        let mut spec = vec![CpxT::<f32>::ZERO; plan.spectral_len()];
        plan.forward(&f32_data, &mut spec);
        let mut back = vec![0.0f32; grid.len()];
        plan.inverse(&mut spec, &mut back);
        for (a, b) in back.iter().zip(&f32_data) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn inverse_scaled_matches_scale_then_inverse() {
        // The fused symbol application must be bit-identical to an explicit
        // elementwise scaling pass followed by the plain inverse.
        let grid = Grid::new([6, 4, 8]);
        let f = ScalarField::from_fn(Layout::serial(grid), |x, y, z| {
            (x - 0.2 * y).cos() + (3.0 * z).sin()
        });
        let plan = Fft3::new(grid);
        let n3c = plan.n3c();
        let [_, n2, _] = grid.n;
        let sym = |i: usize, j: usize, k: usize| 1.0 / (1.0 + (i * i + j * j + k * k) as Real);

        let mut spec = vec![Cpx::ZERO; plan.spectral_len()];
        plan.forward(f.data(), &mut spec);

        // reference: separate scaling pass, then inverse
        let mut spec_ref = spec.clone();
        for i in 0..grid.n[0] {
            for j in 0..n2 {
                for k in 0..n3c {
                    let idx = (i * n2 + j) * n3c + k;
                    spec_ref[idx] = spec_ref[idx].scale(sym(i, j, k));
                }
            }
        }
        let mut out_ref = vec![0.0 as Real; grid.len()];
        plan.inverse(&mut spec_ref, &mut out_ref);

        let mut out_fused = vec![0.0 as Real; grid.len()];
        plan.inverse_scaled(&mut spec, &mut out_fused, &sym);
        for (a, b) in out_fused.iter().zip(&out_ref) {
            assert_eq!(a.to_bits(), b.to_bits(), "fused symbol must be bit-identical");
        }
    }

    #[test]
    fn single_mode_lands_in_right_bin() {
        // f = cos(2·x1) has spectral mass only at k1 = ±2, k2 = k3 = 0.
        let grid = Grid::cube(8);
        let f = ScalarField::from_fn(Layout::serial(grid), |x, _, _| (2.0 * x).cos());
        let plan = Fft3::new(grid);
        let mut spec = vec![Cpx::ZERO; plan.spectral_len()];
        plan.forward(f.data(), &mut spec);
        let n3c = plan.n3c();
        let n = grid.len() as Real;
        for i in 0..8 {
            for j in 0..8 {
                for k in 0..n3c {
                    let v = spec[(i * 8 + j) * n3c + k];
                    let expect = if (i == 2 || i == 6) && j == 0 && k == 0 { n / 2.0 } else { 0.0 };
                    assert!(
                        (v.re - expect).abs() < 1e-6 * n && v.im.abs() < 1e-6 * n,
                        "bin ({i},{j},{k}) = {v:?}, expect {expect}"
                    );
                }
            }
        }
    }

    #[test]
    fn parseval_3d() {
        let grid = Grid::new([4, 4, 6]);
        let f = ScalarField::from_fn(Layout::serial(grid), |x, y, z| {
            (x + 0.5 * y).sin() + (z - x).cos()
        });
        let plan = Fft3::new(grid);
        let mut spec = vec![Cpx::ZERO; plan.spectral_len()];
        plan.forward(f.data(), &mut spec);
        let e_time: f64 = f.data().iter().map(|&x| x * x).sum();
        // Hermitian half-spectrum: interior k3 bins count twice.
        let [_, _, n3] = grid.n;
        let n3c = plan.n3c();
        let mut e_freq = 0.0f64;
        for (idx, z) in spec.iter().enumerate() {
            let k = idx % n3c;
            let w = if k == 0 || k == n3 / 2 { 1.0 } else { 2.0 };
            e_freq += w * z.norm_sqr();
        }
        e_freq /= grid.len() as f64;
        assert!((e_time - e_freq).abs() < 1e-6 * e_time.max(1.0), "{e_time} vs {e_freq}");
    }

    #[test]
    fn constant_field_is_dc_only() {
        let grid = Grid::cube(4);
        let f = vec![3.0 as Real; grid.len()];
        let plan = Fft3::new(grid);
        let mut spec = vec![Cpx::ZERO; plan.spectral_len()];
        plan.forward(&f, &mut spec);
        assert!((spec[0].re - 3.0 * grid.len() as Real).abs() < 1e-8);
        assert!(spec[1..].iter().all(|z| z.abs() < 1e-8));
        let _ = TWO_PI; // silence unused import when asserts compile out
    }
}
