//! Complex arithmetic, generic over the element width.
//!
//! [`CpxT<T>`] is the generic complex number used by every plan in this
//! crate; [`Cpx`] is the field-precision ([`Real`]) alias the solver's f64
//! path uses. The mixed-precision inner solve instantiates the same plans
//! with `CpxT<f32>`, halving spectral storage and transpose wire traffic.

use claire_grid::Real;
use claire_simd::Elem;

/// A complex number over element type `T` (`f32` or `f64`).
///
/// Deliberately minimal: just what the FFT and the spectral operators need.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct CpxT<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// A complex number in field precision ([`Real`]).
pub type Cpx = CpxT<Real>;

// SAFETY: repr(C) struct of two Pod floats — no padding (align == size of
// each member), any bit pattern valid.
unsafe impl<T: claire_mpi::Pod> claire_mpi::Pod for CpxT<T> {}

impl<T: Elem> CpxT<T> {
    /// 0 + 0i.
    pub const ZERO: CpxT<T> = CpxT { re: T::ZERO, im: T::ZERO };
    /// 1 + 0i.
    pub const ONE: CpxT<T> = CpxT { re: T::ONE, im: T::ZERO };

    /// Construct from real and imaginary parts.
    #[inline]
    pub fn new(re: T, im: T) -> CpxT<T> {
        CpxT { re, im }
    }

    /// Purely real value.
    #[inline]
    pub fn real(re: T) -> CpxT<T> {
        CpxT { re, im: T::ZERO }
    }

    /// `e^{iθ} = cos θ + i sin θ` (argument evaluated in f64, then rounded
    /// to `T` — identical to direct evaluation when `T` is f64).
    #[inline]
    pub fn cis(theta: T) -> CpxT<T> {
        let t = theta.to_f64();
        CpxT { re: T::from_f64(t.cos()), im: T::from_f64(t.sin()) }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> CpxT<T> {
        CpxT { re: self.re, im: -self.im }
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> T {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> T {
        T::from_f64(self.norm_sqr().to_f64().sqrt())
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, a: T) -> CpxT<T> {
        CpxT { re: self.re * a, im: self.im * a }
    }

    /// Multiply by `i` (90° rotation) — the spectral first derivative.
    #[inline]
    pub fn mul_i(self) -> CpxT<T> {
        CpxT { re: -self.im, im: self.re }
    }

    /// Demote/promote to another element width (used at the precision seam).
    #[inline]
    pub fn cast<U: Elem>(self) -> CpxT<U> {
        CpxT { re: U::from_f64(self.re.to_f64()), im: U::from_f64(self.im.to_f64()) }
    }
}

/// Reinterpret a complex slice as interleaved `[re, im, re, im, …]` floats —
/// the layout the `claire-simd` complex kernels operate on.
#[inline]
pub fn as_real<T: Elem>(z: &[CpxT<T>]) -> &[T] {
    // SAFETY: CpxT is repr(C) { re: T, im: T } — no padding, same alignment
    // as T — so a slice of n CpxT is exactly 2n Ts.
    unsafe { std::slice::from_raw_parts(z.as_ptr() as *const T, z.len() * 2) }
}

/// Mutable variant of [`as_real`].
#[inline]
pub fn as_real_mut<T: Elem>(z: &mut [CpxT<T>]) -> &mut [T] {
    // SAFETY: see `as_real`.
    unsafe { std::slice::from_raw_parts_mut(z.as_mut_ptr() as *mut T, z.len() * 2) }
}

impl<T: Elem> std::ops::Add for CpxT<T> {
    type Output = CpxT<T>;
    #[inline]
    fn add(self, o: CpxT<T>) -> CpxT<T> {
        CpxT { re: self.re + o.re, im: self.im + o.im }
    }
}

impl<T: Elem> std::ops::Sub for CpxT<T> {
    type Output = CpxT<T>;
    #[inline]
    fn sub(self, o: CpxT<T>) -> CpxT<T> {
        CpxT { re: self.re - o.re, im: self.im - o.im }
    }
}

impl<T: Elem> std::ops::Mul for CpxT<T> {
    type Output = CpxT<T>;
    #[inline]
    fn mul(self, o: CpxT<T>) -> CpxT<T> {
        CpxT { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
    }
}

impl<T: Elem> std::ops::Neg for CpxT<T> {
    type Output = CpxT<T>;
    #[inline]
    fn neg(self) -> CpxT<T> {
        CpxT { re: -self.re, im: -self.im }
    }
}

impl<T: Elem> std::ops::AddAssign for CpxT<T> {
    #[inline]
    fn add_assign(&mut self, o: CpxT<T>) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl<T: Elem> std::ops::MulAssign for CpxT<T> {
    #[inline]
    fn mul_assign(&mut self, o: CpxT<T>) {
        *self = *self * o;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplication_rotates() {
        let i = Cpx::new(0.0, 1.0);
        assert_eq!(i * i, Cpx::new(-1.0, 0.0));
        let z = Cpx::new(2.0, 3.0);
        assert_eq!(z.mul_i(), i * z);
    }

    #[test]
    fn cis_unit_circle() {
        let z = Cpx::cis(claire_grid::PI / 2.0);
        assert!((z.re).abs() < 1e-6);
        assert!((z.im - 1.0).abs() < 1e-6);
        assert!((z.abs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn conj_product_is_norm() {
        let z = Cpx::new(3.0, -4.0);
        let p = z * z.conj();
        assert!((p.re - 25.0).abs() < 1e-6);
        assert!(p.im.abs() < 1e-6);
    }

    #[test]
    fn f32_arithmetic_and_cast_roundtrip() {
        let z = CpxT::<f32>::new(3.0, -4.0);
        assert_eq!(z.norm_sqr(), 25.0f32);
        let w: Cpx = z.cast();
        assert_eq!(w, Cpx::new(3.0, -4.0));
        let back: CpxT<f32> = w.cast();
        assert_eq!(back, z);
        assert_eq!(CpxT::<f32>::ONE * z, z);
    }
}
