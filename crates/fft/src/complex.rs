//! Complex arithmetic in field precision.

use claire_grid::Real;

/// A complex number in field precision ([`Real`]).
///
/// Deliberately minimal: just what the FFT and the spectral operators need.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct Cpx {
    /// Real part.
    pub re: Real,
    /// Imaginary part.
    pub im: Real,
}

// SAFETY: repr(C) struct of two Reals — no padding, any bit pattern valid.
unsafe impl claire_mpi::Pod for Cpx {}

impl Cpx {
    /// 0 + 0i.
    pub const ZERO: Cpx = Cpx { re: 0.0, im: 0.0 };
    /// 1 + 0i.
    pub const ONE: Cpx = Cpx { re: 1.0, im: 0.0 };

    /// Construct from real and imaginary parts.
    #[inline]
    pub fn new(re: Real, im: Real) -> Cpx {
        Cpx { re, im }
    }

    /// Purely real value.
    #[inline]
    pub fn real(re: Real) -> Cpx {
        Cpx { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: Real) -> Cpx {
        Cpx { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Cpx {
        Cpx { re: self.re, im: -self.im }
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sqr(self) -> Real {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[inline]
    pub fn abs(self) -> Real {
        self.norm_sqr().sqrt()
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, a: Real) -> Cpx {
        Cpx { re: self.re * a, im: self.im * a }
    }

    /// Multiply by `i` (90° rotation) — the spectral first derivative.
    #[inline]
    pub fn mul_i(self) -> Cpx {
        Cpx { re: -self.im, im: self.re }
    }
}

/// Reinterpret a complex slice as interleaved `[re, im, re, im, …]` reals —
/// the layout the `claire-simd` complex kernels operate on.
#[inline]
pub fn as_real(z: &[Cpx]) -> &[Real] {
    // SAFETY: Cpx is repr(C) { re: Real, im: Real } — no padding, same
    // alignment as Real — so a slice of n Cpx is exactly 2n Reals.
    unsafe { std::slice::from_raw_parts(z.as_ptr() as *const Real, z.len() * 2) }
}

/// Mutable variant of [`as_real`].
#[inline]
pub fn as_real_mut(z: &mut [Cpx]) -> &mut [Real] {
    // SAFETY: see `as_real`.
    unsafe { std::slice::from_raw_parts_mut(z.as_mut_ptr() as *mut Real, z.len() * 2) }
}

impl std::ops::Add for Cpx {
    type Output = Cpx;
    #[inline]
    fn add(self, o: Cpx) -> Cpx {
        Cpx { re: self.re + o.re, im: self.im + o.im }
    }
}

impl std::ops::Sub for Cpx {
    type Output = Cpx;
    #[inline]
    fn sub(self, o: Cpx) -> Cpx {
        Cpx { re: self.re - o.re, im: self.im - o.im }
    }
}

impl std::ops::Mul for Cpx {
    type Output = Cpx;
    #[inline]
    fn mul(self, o: Cpx) -> Cpx {
        Cpx { re: self.re * o.re - self.im * o.im, im: self.re * o.im + self.im * o.re }
    }
}

impl std::ops::Neg for Cpx {
    type Output = Cpx;
    #[inline]
    fn neg(self) -> Cpx {
        Cpx { re: -self.re, im: -self.im }
    }
}

impl std::ops::AddAssign for Cpx {
    #[inline]
    fn add_assign(&mut self, o: Cpx) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl std::ops::MulAssign for Cpx {
    #[inline]
    fn mul_assign(&mut self, o: Cpx) {
        *self = *self * o;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplication_rotates() {
        let i = Cpx::new(0.0, 1.0);
        assert_eq!(i * i, Cpx::new(-1.0, 0.0));
        let z = Cpx::new(2.0, 3.0);
        assert_eq!(z.mul_i(), i * z);
    }

    #[test]
    fn cis_unit_circle() {
        let z = Cpx::cis(claire_grid::PI / 2.0);
        assert!((z.re).abs() < 1e-6);
        assert!((z.im - 1.0).abs() < 1e-6);
        assert!((z.abs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn conj_product_is_norm() {
        let z = Cpx::new(3.0, -4.0);
        let p = z * z.conj();
        assert!((p.re - 25.0).abs() < 1e-6);
        assert!(p.im.abs() < 1e-6);
    }
}
