//! Fast Fourier transforms for CLAIRE-rs.
//!
//! CLAIRE needs 3D FFTs for its spectral operators (vector Laplacian,
//! inverse regularization, Leray projection, spectral restriction and
//! prolongation). The paper replaces the CPU code's pencil-decomposed
//! AccFFT with cuFFT on a single GPU and, across GPUs, a **2D slab
//! decomposition**: batched 2D FFTs in the x2–x3 plane, an all-to-all
//! transpose to an x2 decomposition, and batched 1D FFTs along x1 (§3.3).
//! This crate reproduces exactly that structure in pure Rust:
//!
//! * [`Cpx`]/[`CpxT`] — complex numbers, generic over element width;
//! * [`Fft1d`] — 1D complex FFT: mixed-radix Cooley–Tukey for {2,3,5}-smooth
//!   lengths, Bluestein's algorithm otherwise (so NIREP's 300-point axis
//!   works too);
//! * [`RealFft1d`] — real↔half-complex 1D transforms (even lengths) via the
//!   standard pack-into-complex trick;
//! * [`Fft3`] — serial 3D real↔complex transform (the "cuFFT 3D" path used
//!   on a single rank);
//! * [`dist::DistFft`] — the distributed slab transform with the paper's
//!   transpose communication pattern, instrumented under
//!   [`CommCat::FftTranspose`](claire_mpi::CommCat::FftTranspose);
//! * [`cache`] — process-wide plan cache: twiddle tables, factorizations and
//!   Bluestein kernels are computed once per length/grid and shared (`Arc`)
//!   across every plan built afterwards, including the β- and
//!   grid-continuation levels of the solver.
//!
//! Every plan is generic over [`FftElem`] (`f32` or `f64`): the
//! mixed-precision solver runs its inner Krylov/FFT path in f32, halving
//! spectral memory and transpose wire traffic, while the f64 instantiation
//! is bit-identical to the historically monomorphic code.
//!
//! Spectral data uses the half-spectrum convention: for real input of dims
//! `[n1, n2, n3]`, the transform is complex of dims `[n1, n2, n3/2 + 1]`.

pub mod cache;
pub mod complex;
pub mod dist;
pub mod factor;
pub mod plan;
pub mod real;
pub mod serial3d;

pub use claire_grid::{ClaireError, ClaireResult};
pub use complex::{Cpx, CpxT};
pub use dist::{DistFft, DistFftT, DistSpectral, DistSpectralT};
pub use plan::{Fft1d, Fft1dT};
pub use real::{RealFft1d, RealFft1dT};
pub use serial3d::{Fft3, Fft3T};

/// Shared pool for field-precision complex work buffers (per-worker
/// transform scratch, gathered lines, transpose staging) — all charged to
/// the µFFT budget.
pub static CPX_POOL: claire_grid::Pool<Cpx> = claire_grid::Pool::new();

/// Off-width complex pool: f32 spectral scratch for the mixed-precision
/// inner solve (half the bytes of [`CPX_POOL`] buffers).
#[cfg(not(feature = "single"))]
pub static CPX32_POOL: claire_grid::Pool<CpxT<f32>> = claire_grid::Pool::new();

/// Off-width complex pool under the `single` feature (Real = f32): f64
/// complex scratch for code that explicitly asks for double.
#[cfg(feature = "single")]
pub static CPX64_POOL: claire_grid::Pool<CpxT<f64>> = claire_grid::Pool::new();

/// Element widths the FFT stack can transform.
///
/// Extends [`claire_grid::FieldElem`] (pooled field storage + SIMD kernels)
/// with what the spectral layer needs: wire-safety ([`claire_mpi::Pod`]) for
/// the transpose all-to-all, a width-matched complex buffer pool, and a
/// width-matched plan cache. Implemented for exactly `f32` and `f64`.
pub trait FftElem: claire_grid::FieldElem + claire_mpi::Pod {
    /// Pool for complex scratch of this width.
    fn cpx_pool() -> &'static claire_grid::Pool<CpxT<Self>>;
    /// Process-wide plan cache for this width.
    fn caches() -> &'static cache::Caches<Self>;
}

impl FftElem for f64 {
    fn cpx_pool() -> &'static claire_grid::Pool<CpxT<f64>> {
        #[cfg(not(feature = "single"))]
        {
            &CPX_POOL
        }
        #[cfg(feature = "single")]
        {
            &CPX64_POOL
        }
    }
    fn caches() -> &'static cache::Caches<f64> {
        &cache::CACHES_F64
    }
}

impl FftElem for f32 {
    fn cpx_pool() -> &'static claire_grid::Pool<CpxT<f32>> {
        #[cfg(not(feature = "single"))]
        {
            &CPX32_POOL
        }
        #[cfg(feature = "single")]
        {
            &CPX_POOL
        }
    }
    fn caches() -> &'static cache::Caches<f32> {
        &cache::CACHES_F32
    }
}
