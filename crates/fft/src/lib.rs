//! Fast Fourier transforms for CLAIRE-rs.
//!
//! CLAIRE needs 3D FFTs for its spectral operators (vector Laplacian,
//! inverse regularization, Leray projection, spectral restriction and
//! prolongation). The paper replaces the CPU code's pencil-decomposed
//! AccFFT with cuFFT on a single GPU and, across GPUs, a **2D slab
//! decomposition**: batched 2D FFTs in the x2–x3 plane, an all-to-all
//! transpose to an x2 decomposition, and batched 1D FFTs along x1 (§3.3).
//! This crate reproduces exactly that structure in pure Rust:
//!
//! * [`Cpx`] — complex numbers in field precision;
//! * [`Fft1d`] — 1D complex FFT: mixed-radix Cooley–Tukey for {2,3,5}-smooth
//!   lengths, Bluestein's algorithm otherwise (so NIREP's 300-point axis
//!   works too);
//! * [`RealFft1d`] — real↔half-complex 1D transforms (even lengths) via the
//!   standard pack-into-complex trick;
//! * [`Fft3`] — serial 3D real↔complex transform (the "cuFFT 3D" path used
//!   on a single rank);
//! * [`dist::DistFft`] — the distributed slab transform with the paper's
//!   transpose communication pattern, instrumented under
//!   [`CommCat::FftTranspose`](claire_mpi::CommCat::FftTranspose);
//! * [`cache`] — process-wide plan cache: twiddle tables, factorizations and
//!   Bluestein kernels are computed once per length/grid and shared (`Arc`)
//!   across every plan built afterwards, including the β- and
//!   grid-continuation levels of the solver.
//!
//! Spectral data uses the half-spectrum convention: for real input of dims
//! `[n1, n2, n3]`, the transform is complex of dims `[n1, n2, n3/2 + 1]`.

pub mod cache;
pub mod complex;
pub mod dist;
pub mod factor;
pub mod plan;
pub mod real;
pub mod serial3d;

pub use claire_grid::{ClaireError, ClaireResult};
pub use complex::Cpx;
pub use dist::{DistFft, DistSpectral};
pub use plan::Fft1d;
pub use real::RealFft1d;
pub use serial3d::Fft3;

/// Shared pool for complex work buffers (per-worker transform scratch,
/// gathered lines, transpose staging) — all charged to the µFFT budget.
pub static CPX_POOL: claire_grid::Pool<Cpx> = claire_grid::Pool::new();
