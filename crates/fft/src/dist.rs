//! Distributed 3D FFT with the paper's 2D slab decomposition (§3.3).
//!
//! Real space is decomposed in `x1` (the grid's slab layout); spectral space
//! is decomposed in `x2`. The real-to-complex transform runs in three steps:
//!
//! 1. batched 2D FFTs in the local x2–x3 planes (r2c along x3, then complex
//!    along x2) — all data local;
//! 2. an all-to-all transpose from the x1 decomposition to the x2
//!    decomposition (traffic category
//!    [`CommCat::FftTranspose`](claire_mpi::CommCat::FftTranspose); per-rank
//!    volume `O(N/p − N/p²)` as analysed in the paper);
//! 3. batched 1D complex FFTs along x1, now fully local.
//!
//! The inverse runs the three steps in reverse with inverse transforms. On a
//! single rank the plan falls back to the serial 3D transform, exactly like
//! the paper falls back to cuFFT's 3D FFT ("to avoid additional operations,
//! in particular an explicit transpose").
//!
//! Everything is generic over the element width [`FftElem`]: the mixed-
//! precision inner solve transforms `f32` fields, which halves the
//! all-to-all transpose payload on the wire (the dominant collective of the
//! inner Krylov iteration).

// The strided gather/scatter loops index several arrays with coupled
// offsets; iterator adapters would obscure the stride math.
#![allow(clippy::needless_range_loop)]

use std::sync::Arc;

use claire_grid::{
    ClaireError, ClaireResult, Grid, Layout, PoolVec, Real, ScalarFieldT, Slab, WsCat,
};
use claire_mpi::{AlltoallMethod, Comm, CommCat};
use claire_obs::span::span;
use claire_par::timing::{self, Kernel};
use claire_par::{par_map_collect_work, par_parts, SharedSlice};

use crate::cache;
use crate::complex::CpxT;
use crate::plan::Fft1dT;
use crate::real::RealFft1dT;
use crate::serial3d::Fft3T;
use crate::FftElem;

/// Spectral coefficients distributed in x2 slabs, generic over width.
///
/// Local dims are `[n1, nj, n3c]` with `nj` the owned x2 extent and
/// `n3c = n3/2 + 1`; x1 is fully local (slowest), x3 fastest.
#[derive(Clone, Debug)]
pub struct DistSpectralT<T: FftElem> {
    /// Global real-space grid.
    pub grid: Grid,
    /// Owned x2 range.
    pub x2_slab: Slab,
    /// Complex coefficients, dims `[n1, nj, n3c]` (pooled, µFFT budget).
    pub data: PoolVec<CpxT<T>>,
}

/// Field-precision ([`Real`]) distributed spectrum.
pub type DistSpectral = DistSpectralT<Real>;

impl<T: FftElem> DistSpectralT<T> {
    /// Spectral extent along x3.
    pub fn n3c(&self) -> usize {
        self.grid.n[2] / 2 + 1
    }

    /// Zeroed spectral storage for the given grid/slab.
    pub fn zeros(grid: Grid, x2_slab: Slab) -> DistSpectralT<T> {
        let len = grid.n[0] * x2_slab.ni * (grid.n[2] / 2 + 1);
        DistSpectralT {
            grid,
            x2_slab,
            data: T::cpx_pool().checkout_filled(len, CpxT::ZERO, WsCat::Fft),
        }
    }

    /// Linear index of `(i, jl, k)` — global x1 `i`, local x2 `jl`, x3 `k`.
    #[inline]
    pub fn idx(&self, i: usize, jl: usize, k: usize) -> usize {
        (i * self.x2_slab.ni + jl) * self.n3c() + k
    }

    /// Global x2 index of local row `jl`.
    #[inline]
    pub fn j_global(&self, jl: usize) -> usize {
        self.x2_slab.i0 + jl
    }
}

/// Marker closure type for the unscaled inverse path (never called).
type NoScale<T> = fn(usize, usize, usize) -> T;

/// Planned distributed 3D real↔complex FFT for one rank of a cluster.
// The strided gather/scatter loops below index several arrays with
// coupled offsets; iterator adapters would obscure the stride math.
#[allow(clippy::needless_range_loop)]
pub struct DistFftT<T: FftElem> {
    grid: Grid,
    nranks: usize,
    rank: usize,
    method: AlltoallMethod,
    serial: Option<Arc<Fft3T<T>>>,
    r3: Arc<RealFft1dT<T>>,
    c2: Arc<Fft1dT<T>>,
    c1: Arc<Fft1dT<T>>,
}

/// Field-precision ([`Real`]) distributed FFT plan.
pub type DistFft = DistFftT<Real>;

impl<T: FftElem> DistFftT<T> {
    /// Plan for the calling rank of `comm` with the paper's production
    /// communication switch ([`AlltoallMethod::Auto`]).
    /// Panicking convenience wrapper around [`DistFftT::try_new`].
    pub fn new(grid: Grid, comm: &Comm) -> DistFftT<T> {
        DistFftT::try_new(grid, comm).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Plan for the calling rank of `comm`, rejecting grids the slab
    /// decomposition cannot split across `comm.size()` ranks.
    pub fn try_new(grid: Grid, comm: &Comm) -> ClaireResult<DistFftT<T>> {
        DistFftT::try_with_method(grid, comm, AlltoallMethod::Auto)
    }

    /// Plan with an explicit all-to-all method (for Table 4/5 studies).
    /// Panicking convenience wrapper around [`DistFftT::try_with_method`].
    pub fn with_method(grid: Grid, comm: &Comm, method: AlltoallMethod) -> DistFftT<T> {
        DistFftT::try_with_method(grid, comm, method).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Plan with an explicit all-to-all method, returning a typed error when
    /// the slab decomposition needs more planes than the grid has.
    pub fn try_with_method(
        grid: Grid,
        comm: &Comm,
        method: AlltoallMethod,
    ) -> ClaireResult<DistFftT<T>> {
        let p = comm.size();
        if p > grid.n[0] || p > grid.n[1] {
            return Err(ClaireError::Decomposition {
                context: "DistFft::new",
                message: format!(
                    "slab decomposition needs p <= min(n1, n2); got p = {p} for grid {}x{}x{}",
                    grid.n[0], grid.n[1], grid.n[2]
                ),
            });
        }
        Ok(DistFftT {
            grid,
            nranks: p,
            rank: comm.rank(),
            method,
            serial: if p == 1 { Some(cache::fft3_t(grid)) } else { None },
            r3: cache::real_fft1d_t(grid.n[2]),
            c2: cache::fft1d_t(grid.n[1]),
            c1: cache::fft1d_t(grid.n[0]),
        })
    }

    /// The grid this plan transforms.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// This rank's spectral x2 slab.
    pub fn x2_slab(&self) -> Slab {
        Slab::of_rank(self.grid.n[1], self.nranks, self.rank)
    }

    fn scratch_len(&self) -> usize {
        self.r3.scratch_len().max(self.c2.scratch_len()).max(self.c1.scratch_len())
    }

    /// Step 1: batched 2-D FFT of `ni` local x2–x3 planes (r2c along x3,
    /// complex along x2), split across workers like the serial plan.
    fn planes2d_forward(&self, src: &[T], work: &mut [CpxT<T>], ni: usize) {
        let [_, n2, n3] = self.grid.n;
        let n3c = n3 / 2 + 1;
        let scratch_len = self.scratch_len();
        let shared = SharedSlice::new(work);
        par_parts(ni * n2, ni * n2 * n3, |rows| {
            let mut scratch = T::cpx_pool().checkout_filled(scratch_len, CpxT::ZERO, WsCat::Fft);
            for row in rows {
                // SAFETY: row ranges are disjoint across workers.
                let dst = unsafe { shared.slice_mut(row * n3c..(row + 1) * n3c) };
                self.r3.forward(&src[row * n3..(row + 1) * n3], dst, &mut scratch);
            }
        });
        par_parts(ni * n3c, ni * n3c * n2, |lines| {
            let mut scratch = T::cpx_pool().checkout_filled(scratch_len, CpxT::ZERO, WsCat::Fft);
            let mut line = T::cpx_pool().checkout_filled(n2, CpxT::ZERO, WsCat::Fft);
            for t in lines {
                let (il, k) = (t / n3c, t % n3c);
                let base = il * n2 * n3c + k;
                // SAFETY: distinct (il, k) touch disjoint strided indices.
                unsafe {
                    for j in 0..n2 {
                        line[j] = shared.read(base + j * n3c);
                    }
                    self.c2.forward(&mut line, &mut scratch);
                    for j in 0..n2 {
                        shared.write(base + j * n3c, line[j]);
                    }
                }
            }
        });
    }

    /// Step 1 inverse: batched inverse 2-D FFT of `ni` planes, then c2r.
    fn planes2d_inverse(&self, work: &mut [CpxT<T>], out: &mut [T], ni: usize) {
        let [_, n2, n3] = self.grid.n;
        let n3c = n3 / 2 + 1;
        let scratch_len = self.scratch_len();
        let shared = SharedSlice::new(work);
        par_parts(ni * n3c, ni * n3c * n2, |lines| {
            let mut scratch = T::cpx_pool().checkout_filled(scratch_len, CpxT::ZERO, WsCat::Fft);
            let mut line = T::cpx_pool().checkout_filled(n2, CpxT::ZERO, WsCat::Fft);
            for t in lines {
                let (il, k) = (t / n3c, t % n3c);
                let base = il * n2 * n3c + k;
                // SAFETY: distinct (il, k) touch disjoint strided indices.
                unsafe {
                    for j in 0..n2 {
                        line[j] = shared.read(base + j * n3c);
                    }
                    self.c2.inverse(&mut line, &mut scratch);
                    for j in 0..n2 {
                        shared.write(base + j * n3c, line[j]);
                    }
                }
            }
        });
        let out_shared = SharedSlice::new(out);
        par_parts(ni * n2, ni * n2 * n3, |rows| {
            let mut scratch = T::cpx_pool().checkout_filled(scratch_len, CpxT::ZERO, WsCat::Fft);
            for row in rows {
                // SAFETY: work/out row ranges are disjoint across workers and
                // work is only read during this pass.
                let src = unsafe { &*shared.slice_mut(row * n3c..(row + 1) * n3c) };
                let dst = unsafe { out_shared.slice_mut(row * n3..(row + 1) * n3) };
                self.r3.inverse(src, dst, &mut scratch);
            }
        });
    }

    /// Step 3: batched 1-D complex FFT along x1 with the given jk-stride,
    /// one pencil per (j, k), split across workers. When `scale` is set
    /// (inverse only), each coefficient is multiplied by
    /// `scale(i, j_global, k)` as it is first gathered — the fused spectral
    /// symbol application, one pass instead of two.
    fn pencils_x1_opt<S>(
        &self,
        data: &mut [CpxT<T>],
        stride: usize,
        inverse: bool,
        j0: usize,
        scale: Option<&S>,
    ) where
        S: Fn(usize, usize, usize) -> T + Sync,
    {
        let n1 = self.grid.n[0];
        let n3c = self.grid.n[2] / 2 + 1;
        let scratch_len = self.scratch_len();
        let shared = SharedSlice::new(data);
        par_parts(stride, stride * n1, |lines| {
            let mut scratch = T::cpx_pool().checkout_filled(scratch_len, CpxT::ZERO, WsCat::Fft);
            let mut line1 = T::cpx_pool().checkout_filled(n1, CpxT::ZERO, WsCat::Fft);
            for jk in lines {
                // SAFETY: distinct jk touch disjoint strided indices.
                unsafe {
                    match scale {
                        None => {
                            for i in 0..n1 {
                                line1[i] = shared.read(i * stride + jk);
                            }
                        }
                        Some(f) => {
                            let (j, k) = (j0 + jk / n3c, jk % n3c);
                            for i in 0..n1 {
                                line1[i] = shared.read(i * stride + jk).scale(f(i, j, k));
                            }
                        }
                    }
                    if inverse {
                        self.c1.inverse(&mut line1, &mut scratch);
                    } else {
                        self.c1.forward(&mut line1, &mut scratch);
                    }
                    for i in 0..n1 {
                        shared.write(i * stride + jk, line1[i]);
                    }
                }
            }
        });
    }

    fn pencils_x1(&self, data: &mut [CpxT<T>], stride: usize, inverse: bool) {
        self.pencils_x1_opt(data, stride, inverse, 0, None::<&NoScale<T>>);
    }

    /// Forward r2c transform of a slab-distributed field.
    pub fn forward(&self, field: &ScalarFieldT<T>, comm: &mut Comm) -> DistSpectralT<T> {
        let _s = span("fft.forward");
        assert_eq!(field.layout().grid, self.grid, "field grid mismatch");
        let [n1, n2, n3] = self.grid.n;
        let n3c = n3 / 2 + 1;

        if let Some(serial) = &self.serial {
            let mut spec = DistSpectralT::zeros(self.grid, Slab::full(n2));
            serial.forward(field.data(), &mut spec.data);
            return spec;
        }

        let ni = field.layout().slab.ni;

        // step 1: 2D FFT per local x1 plane
        let mut work = T::cpx_pool().checkout_filled(ni * n2 * n3c, CpxT::ZERO, WsCat::Fft);
        timing::time(Kernel::FftDist, || {
            self.planes2d_forward(field.data(), &mut work, ni);
        });

        // step 2: transpose x1-slabs -> x2-slabs; pack one block per
        // destination rank in parallel
        let p = self.nranks;
        let bufs: Vec<Vec<CpxT<T>>> = timing::time(Kernel::FftTranspose, || {
            par_map_collect_work(p, ni * n2 * n3c / p.max(1), |dst| {
                let js = Slab::of_rank(n2, p, dst);
                let mut buf = Vec::with_capacity(ni * js.ni * n3c);
                // rows j ∈ js are consecutive at fixed il, so the whole
                // destination-rank stripe of a plane is one contiguous run —
                // one large memcpy per plane instead of one per row
                for il in 0..ni {
                    let base = (il * n2 + js.i0) * n3c;
                    buf.extend_from_slice(&work[base..base + js.ni * n3c]);
                }
                buf
            })
        });
        let parts = {
            let _c = span("fft.transpose_comm");
            comm.alltoallv(&bufs, CommCat::FftTranspose, self.method)
        };

        let my_js = self.x2_slab();
        let nj = my_js.ni;
        let mut spec = DistSpectralT::zeros(self.grid, my_js);
        timing::time(Kernel::FftTranspose, || {
            // unpack: each source block covers a disjoint global-x1 range
            let shared = SharedSlice::new(&mut spec.data);
            par_parts(p, n1 * nj * n3c, |srcs| {
                for src in srcs {
                    let part = &parts[src];
                    let src_slab = Slab::of_rank(n1, p, src);
                    assert_eq!(part.len(), src_slab.ni * nj * n3c, "transpose block size mismatch");
                    // all nj rows of one global-x1 plane are contiguous in
                    // both the packed block and the spectral storage — one
                    // plane-sized memcpy instead of nj row copies
                    let run = nj * n3c;
                    let mut it = 0;
                    for il in 0..src_slab.ni {
                        let i = src_slab.i0 + il;
                        let base = i * run;
                        // SAFETY: src slabs partition x1, so blocks are disjoint.
                        let dst = unsafe { shared.slice_mut(base..base + run) };
                        dst.copy_from_slice(&part[it..it + run]);
                        it += run;
                    }
                }
            });
        });

        // step 3: 1D FFT along x1 (stride nj·n3c)
        timing::time(Kernel::FftDist, || {
            self.pencils_x1(&mut spec.data, nj * n3c, false);
        });
        spec
    }

    /// Inverse c2r transform back to a slab-distributed real field.
    pub fn inverse(&self, spec: DistSpectralT<T>, comm: &mut Comm) -> ScalarFieldT<T> {
        self.inverse_opt(spec, comm, None::<&NoScale<T>>)
    }

    /// Inverse transform with a per-coefficient scale fused into the first
    /// (x1-pencil) pass: each coefficient is multiplied by
    /// `scale(i, j, k)` — global spectral indices — as it is first
    /// gathered, saving a separate pass over the spectral array. The
    /// per-element multiply is identical to a standalone scaling pass, so
    /// results are bit-identical to scale-then-[`DistFftT::inverse`].
    pub fn inverse_scaled<S>(
        &self,
        spec: DistSpectralT<T>,
        comm: &mut Comm,
        scale: &S,
    ) -> ScalarFieldT<T>
    where
        S: Fn(usize, usize, usize) -> T + Sync,
    {
        self.inverse_opt(spec, comm, Some(scale))
    }

    fn inverse_opt<S>(
        &self,
        mut spec: DistSpectralT<T>,
        comm: &mut Comm,
        scale: Option<&S>,
    ) -> ScalarFieldT<T>
    where
        S: Fn(usize, usize, usize) -> T + Sync,
    {
        let _s = span("fft.inverse");
        assert_eq!(spec.grid, self.grid, "spectral grid mismatch");
        let [n1, n2, n3] = self.grid.n;
        let n3c = n3 / 2 + 1;
        let layout = if self.nranks == 1 {
            Layout::serial(self.grid)
        } else {
            Layout {
                grid: self.grid,
                slab: Slab::of_rank(n1, self.nranks, self.rank),
                nranks: self.nranks,
                rank: self.rank,
            }
        };

        if let Some(serial) = &self.serial {
            let mut out = ScalarFieldT::zeros_in(layout, WsCat::Fft);
            match scale {
                None => serial.inverse(&mut spec.data, out.data_mut()),
                Some(f) => serial.inverse_scaled(&mut spec.data, out.data_mut(), f),
            }
            return out;
        }

        let nj = spec.x2_slab.ni;

        // step 3': inverse 1D along x1 (with the optional fused symbol)
        timing::time(Kernel::FftDist, || {
            self.pencils_x1_opt(&mut spec.data, nj * n3c, true, spec.x2_slab.i0, scale);
        });

        // step 2': transpose x2-slabs -> x1-slabs; parallel pack per rank
        let p = self.nranks;
        let bufs: Vec<Vec<CpxT<T>>> = timing::time(Kernel::FftTranspose, || {
            par_map_collect_work(p, n1 * nj * n3c / p.max(1), |dst| {
                let is = Slab::of_rank(n1, p, dst);
                let mut buf = Vec::with_capacity(is.ni * nj * n3c);
                // all nj local rows of a global-x1 plane are contiguous in
                // spectral storage — one plane-sized memcpy per plane
                for il in 0..is.ni {
                    let base = spec.idx(is.i0 + il, 0, 0);
                    buf.extend_from_slice(&spec.data[base..base + nj * n3c]);
                }
                buf
            })
        });
        let parts = {
            let _c = span("fft.transpose_comm");
            comm.alltoallv(&bufs, CommCat::FftTranspose, self.method)
        };

        let ni = layout.slab.ni;
        let mut work = T::cpx_pool().checkout_filled(ni * n2 * n3c, CpxT::ZERO, WsCat::Fft);
        timing::time(Kernel::FftTranspose, || {
            // unpack: each source block covers a disjoint global-x2 range
            let shared = SharedSlice::new(&mut work);
            par_parts(p, ni * n2 * n3c, |srcs| {
                for src in srcs {
                    let part = &parts[src];
                    let src_js = Slab::of_rank(n2, p, src);
                    assert_eq!(part.len(), ni * src_js.ni * n3c, "transpose block size mismatch");
                    // rows j ∈ src_js are consecutive at fixed il — one
                    // stripe-sized memcpy per plane instead of per-row copies
                    let run = src_js.ni * n3c;
                    let mut it = 0;
                    for il in 0..ni {
                        let base = (il * n2 + src_js.i0) * n3c;
                        // SAFETY: src slabs partition x2, so blocks are disjoint.
                        let dst = unsafe { shared.slice_mut(base..base + run) };
                        dst.copy_from_slice(&part[it..it + run]);
                        it += run;
                    }
                }
            });
        });

        // step 1': inverse 2D per plane
        let mut out = ScalarFieldT::zeros_in(layout, WsCat::Fft);
        timing::time(Kernel::FftDist, || {
            self.planes2d_inverse(&mut work, out.data_mut(), ni);
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Cpx;
    use crate::serial3d::Fft3;
    use claire_grid::{redist, ScalarField};
    use claire_mpi::{run_cluster, Topology};

    fn test_field(layout: Layout) -> ScalarField {
        ScalarField::from_fn(layout, |x, y, z| {
            (x + 0.3).sin() * (2.0 * y).cos() + (z - 0.7 * x).sin() + 0.25
        })
    }

    #[test]
    fn distributed_matches_serial() {
        let grid = Grid::new([8, 6, 4]);
        // serial reference
        let sf = test_field(Layout::serial(grid));
        let plan = Fft3::new(grid);
        let mut ref_spec = vec![Cpx::ZERO; plan.spectral_len()];
        plan.forward(sf.data(), &mut ref_spec);

        for p in [1usize, 2, 3, 4] {
            let ref_spec = ref_spec.clone();
            let res = run_cluster(Topology::new(p, 4), move |comm| {
                let layout = Layout::distributed(grid, comm);
                let f = test_field(layout);
                let dfft = DistFft::new(grid, comm);
                let spec = dfft.forward(&f, comm);
                // compare owned x2 rows against the serial spectrum
                let n3c = spec.n3c();
                let mut max_err = 0.0f64;
                for i in 0..grid.n[0] {
                    for jl in 0..spec.x2_slab.ni {
                        let j = spec.j_global(jl);
                        for k in 0..n3c {
                            let mine = spec.data[spec.idx(i, jl, k)];
                            let refv = ref_spec[(i * grid.n[1] + j) * n3c + k];
                            max_err = max_err.max((mine - refv).abs() as f64);
                        }
                    }
                }
                // roundtrip
                let back = dfft.inverse(spec, comm);
                let mut rt_err = 0.0f64;
                for (a, b) in back.data().iter().zip(f.data()) {
                    rt_err = rt_err.max((a - b).abs());
                }
                (max_err, rt_err)
            });
            for (i, &(se, re)) in res.outputs.iter().enumerate() {
                assert!(se < 1e-8, "p={p} rank={i}: spectral err {se}");
                assert!(re < 1e-8, "p={p} rank={i}: roundtrip err {re}");
            }
        }
    }

    #[test]
    fn f32_distributed_roundtrip() {
        // The f32 instantiation must roundtrip across ranks to single
        // precision, exercising the f32 transpose payload end to end.
        let grid = Grid::new([8, 6, 4]);
        let res = run_cluster(Topology::new(3, 4), move |comm| {
            let layout = Layout::distributed(grid, comm);
            let f64_field = test_field(layout);
            let f: ScalarFieldT<f32> = f64_field.converted(WsCat::Fft);
            let dfft = DistFftT::<f32>::new(grid, comm);
            let spec = dfft.forward(&f, comm);
            let back = dfft.inverse(spec, comm);
            let mut rt_err = 0.0f64;
            for (a, b) in back.data().iter().zip(f.data()) {
                rt_err = rt_err.max((a - b).abs() as f64);
            }
            rt_err
        });
        for (i, &re) in res.outputs.iter().enumerate() {
            assert!(re < 1e-4, "rank={i}: f32 roundtrip err {re}");
        }
    }

    #[test]
    fn inverse_scaled_matches_scale_then_inverse() {
        // The fused symbol application must be bit-identical to a separate
        // elementwise scaling pass followed by the plain inverse, on every
        // rank count (serial fallback and true distributed path).
        let grid = Grid::new([8, 6, 4]);
        let n3c = grid.n[2] / 2 + 1;
        let sym =
            move |i: usize, j: usize, k: usize| 1.0 / (1.0 + (i + 2 * j + 3 * k) as Real * 0.25);
        for p in [1usize, 3] {
            let res = run_cluster(Topology::new(p, 4), move |comm| {
                let layout = Layout::distributed(grid, comm);
                let f = test_field(layout);
                let dfft = DistFft::new(grid, comm);

                let spec = dfft.forward(&f, comm);
                let mut spec_ref = spec.clone();
                for i in 0..grid.n[0] {
                    for jl in 0..spec_ref.x2_slab.ni {
                        let j = spec_ref.j_global(jl);
                        for k in 0..n3c {
                            let idx = spec_ref.idx(i, jl, k);
                            spec_ref.data[idx] = spec_ref.data[idx].scale(sym(i, j, k));
                        }
                    }
                }
                let ref_out = dfft.inverse(spec_ref, comm);
                let fused_out = dfft.inverse_scaled(spec, comm, &sym);
                let bits_match = ref_out
                    .data()
                    .iter()
                    .zip(fused_out.data())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                bits_match
            });
            for (i, &ok) in res.outputs.iter().enumerate() {
                assert!(ok, "p={p} rank={i}: fused inverse must be bit-identical");
            }
        }
    }

    #[test]
    fn transpose_traffic_recorded() {
        let grid = Grid::new([8, 8, 8]);
        let res = run_cluster(Topology::new(4, 4), move |comm| {
            let layout = Layout::distributed(grid, comm);
            let f = test_field(layout);
            let dfft = DistFft::new(grid, comm);
            let spec = dfft.forward(&f, comm);
            let _ = dfft.inverse(spec, comm);
            comm.stats().cat(CommCat::FftTranspose).bytes_sent
        });
        // per-rank forward volume: (p-1)/p of the local spectral block
        let n3c = 8 / 2 + 1;
        let local = 2 * 8 * n3c * std::mem::size_of::<Cpx>(); // ni * n2 * n3c
        let expect_one_way = local * 3 / 4;
        for &b in &res.outputs {
            assert_eq!(b as usize, 2 * expect_one_way, "forward + inverse transposes");
        }
    }

    #[test]
    fn f32_transpose_traffic_is_half() {
        // Same transpose schedule, f32 coefficients: exactly half the bytes
        // of the f64 plan on the wire.
        let grid = Grid::new([8, 8, 8]);
        let res = run_cluster(Topology::new(4, 4), move |comm| {
            let layout = Layout::distributed(grid, comm);
            let f: ScalarFieldT<f32> = test_field(layout).converted(WsCat::Fft);
            let dfft = DistFftT::<f32>::new(grid, comm);
            let spec = dfft.forward(&f, comm);
            let _ = dfft.inverse(spec, comm);
            comm.stats().cat(CommCat::FftTranspose).bytes_sent
        });
        let n3c = 8 / 2 + 1;
        let local = 2 * 8 * n3c * std::mem::size_of::<CpxT<f32>>();
        let expect_one_way = local * 3 / 4;
        for &b in &res.outputs {
            assert_eq!(b as usize, 2 * expect_one_way, "f32 transposes carry half the bytes");
        }
    }

    #[test]
    fn transform_matches_over_socket_transport() {
        // Same mixed-radix grid, same 3-rank cluster — once over crossbeam
        // channels, once over real Unix-domain sockets. The transpose
        // schedule is deterministic, so every spectrum and roundtrip bit
        // must match.
        let grid = Grid::new([8, 6, 4]);
        let f = move |comm: &mut Comm| {
            let layout = Layout::distributed(grid, comm);
            let f = test_field(layout);
            let dfft = DistFft::new(grid, comm);
            let spec = dfft.forward(&f, comm);
            let mut bits: Vec<_> =
                spec.data.iter().flat_map(|c| [c.re.to_bits(), c.im.to_bits()]).collect();
            let back = dfft.inverse(spec, comm);
            bits.extend(back.data().iter().map(|x| x.to_bits()));
            bits
        };
        let chan = run_cluster(Topology::new(3, 4), f);
        let sock = claire_ipc::run_socket_cluster(Topology::new(3, 4), f);
        assert_eq!(chan.outputs, sock.outputs, "transports must agree bitwise");
    }

    #[test]
    fn roundtrip_through_gather() {
        // end-to-end sanity: forward+inverse on 3 ranks reproduces the
        // serial field after gathering.
        let grid = Grid::new([6, 6, 6]);
        let res = run_cluster(Topology::new(3, 4), move |comm| {
            let layout = Layout::distributed(grid, comm);
            let f = test_field(layout);
            let dfft = DistFft::new(grid, comm);
            let spec = dfft.forward(&f, comm);
            let back = dfft.inverse(spec, comm);
            redist::gather(&back, comm).map(|g| g.into_data())
        });
        let gathered = res.outputs[0].as_ref().unwrap();
        let reference = test_field(Layout::serial(grid));
        for (a, b) in gathered.iter().zip(reference.data()) {
            assert!((a - b).abs() < 1e-8);
        }
    }
}
