//! Process-wide FFT plan cache.
//!
//! Planning a transform (twiddle tables, factorization, Bluestein chirp
//! kernels) is far more expensive than executing it on the small-to-medium
//! grids of a continuation schedule, and the paper's solver re-plans the
//! same grids over and over: every β-continuation level reuses the grid,
//! grid continuation revisits each coarse level, and the two-level
//! preconditioner plans both fine and coarse transforms per refresh. This
//! module memoizes plans per length/grid behind `Arc`s so each is computed
//! exactly once per process and shared by every [`Fft3`]/`DistFft` built
//! afterwards — including across the virtual-MPI worker threads of
//! `run_cluster`, which share these statics.
//!
//! Plans are cached **per element width**: the f64 path and the
//! mixed-precision f32 path each get their own [`Caches`] instance, looked
//! up through [`FftElem::caches`], so a mixed-mode solve warms both without
//! either evicting the other.
//!
//! Hit/miss counters feed the `memory.fft_plan_cache` block of the
//! observability RunReport.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use claire_grid::{Grid, Real};

use crate::plan::Fft1dT;
use crate::real::RealFft1dT;
use crate::serial3d::Fft3T;
use crate::FftElem;

/// Plan cache for one element width (see [`FftElem::caches`]).
pub struct Caches<T: FftElem> {
    pub(crate) fft1d: Mutex<BTreeMap<usize, Arc<Fft1dT<T>>>>,
    pub(crate) real1d: Mutex<BTreeMap<usize, Arc<RealFft1dT<T>>>>,
    pub(crate) fft3: Mutex<BTreeMap<[usize; 3], Arc<Fft3T<T>>>>,
}

impl<T: FftElem> Caches<T> {
    pub(crate) const fn new() -> Caches<T> {
        Caches {
            fft1d: Mutex::new(BTreeMap::new()),
            real1d: Mutex::new(BTreeMap::new()),
            fft3: Mutex::new(BTreeMap::new()),
        }
    }

    fn plans(&self) -> usize {
        self.fft1d.lock().unwrap().len()
            + self.real1d.lock().unwrap().len()
            + self.fft3.lock().unwrap().len()
    }

    fn clear(&self) {
        self.fft1d.lock().unwrap().clear();
        self.real1d.lock().unwrap().clear();
        self.fft3.lock().unwrap().clear();
    }
}

pub(crate) static CACHES_F64: Caches<f64> = Caches::new();
pub(crate) static CACHES_F32: Caches<f32> = Caches::new();

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn get_or_plan<K: Ord + Copy, V>(
    cache: &Mutex<BTreeMap<K, Arc<V>>>,
    key: K,
    plan: impl FnOnce() -> V,
) -> Arc<V> {
    if let Some(v) = cache.lock().unwrap().get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(v);
    }
    // Plan outside the lock: planning may itself consult this cache (Fft3
    // plans its 1-D factors through it) and can be slow. A racing planner
    // for the same key wastes one plan; the first insert wins.
    MISSES.fetch_add(1, Ordering::Relaxed);
    let v = Arc::new(plan());
    Arc::clone(cache.lock().unwrap().entry(key).or_insert(v))
}

/// Shared 1-D complex plan for length `n` at width `T`.
pub fn fft1d_t<T: FftElem>(n: usize) -> Arc<Fft1dT<T>> {
    get_or_plan(&T::caches().fft1d, n, || Fft1dT::new(n))
}

/// Shared 1-D real↔half-complex plan for even length `n` at width `T`.
pub fn real_fft1d_t<T: FftElem>(n: usize) -> Arc<RealFft1dT<T>> {
    get_or_plan(&T::caches().real1d, n, || RealFft1dT::new(n))
}

/// Shared serial 3-D plan for `grid` at width `T`.
pub fn fft3_t<T: FftElem>(grid: Grid) -> Arc<Fft3T<T>> {
    get_or_plan(&T::caches().fft3, grid.n, || Fft3T::new(grid))
}

/// Shared 1-D complex plan for length `n` (field precision).
pub fn fft1d(n: usize) -> Arc<Fft1dT<Real>> {
    fft1d_t::<Real>(n)
}

/// Shared 1-D real↔half-complex plan for even length `n` (field precision).
pub fn real_fft1d(n: usize) -> Arc<RealFft1dT<Real>> {
    real_fft1d_t::<Real>(n)
}

/// Shared serial 3-D plan for `grid` (field precision).
pub fn fft3(grid: Grid) -> Arc<Fft3T<Real>> {
    fft3_t::<Real>(grid)
}

/// Snapshot of the plan cache counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Plans currently cached (1-D complex + 1-D real + 3-D, both widths).
    pub plans: u64,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to plan.
    pub misses: u64,
}

/// Current plan-cache statistics (aggregated over both element widths).
pub fn stats() -> CacheStats {
    CacheStats {
        plans: (CACHES_F64.plans() + CACHES_F32.plans()) as u64,
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

/// Reset the hit/miss counters (cached plans are kept — warm is the point).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// Drop every cached plan (counters are kept). Plans still held by live
/// `Arc`s stay usable; the next lookup re-plans. This exists for benchmarks
/// that model a cold process (e.g. `bench_batch`'s sequential baseline) —
/// production code should never need it.
pub fn clear() {
    CACHES_F64.clear();
    CACHES_F32.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_returns_same_plan() {
        let a = fft1d(40);
        let b = fft1d(40);
        assert!(Arc::ptr_eq(&a, &b), "repeated lookups must share one plan");
        let r1 = real_fft1d(40);
        let r2 = real_fft1d(40);
        assert!(Arc::ptr_eq(&r1, &r2));
        let g = Grid::new([4, 6, 8]);
        assert!(Arc::ptr_eq(&fft3(g), &fft3(g)));
    }

    #[test]
    fn widths_get_distinct_plans() {
        let a = fft1d_t::<f64>(24);
        let b = fft1d_t::<f32>(24);
        // distinct cache instances: planning one width must not satisfy the
        // other width's lookup
        assert!(Arc::ptr_eq(&a, &fft1d_t::<f64>(24)));
        assert!(Arc::ptr_eq(&b, &fft1d_t::<f32>(24)));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let before = stats();
        let _ = fft1d(977); // Bluestein length, certainly un-planned so far
        let mid = stats();
        assert_eq!(mid.misses, before.misses + 1);
        let _ = fft1d(977);
        let after = stats();
        assert_eq!(after.hits, mid.hits + 1);
        assert!(after.plans >= 1);
    }
}
