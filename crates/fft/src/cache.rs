//! Process-wide FFT plan cache.
//!
//! Planning a transform (twiddle tables, factorization, Bluestein chirp
//! kernels) is far more expensive than executing it on the small-to-medium
//! grids of a continuation schedule, and the paper's solver re-plans the
//! same grids over and over: every β-continuation level reuses the grid,
//! grid continuation revisits each coarse level, and the two-level
//! preconditioner plans both fine and coarse transforms per refresh. This
//! module memoizes plans per length/grid behind `Arc`s so each is computed
//! exactly once per process and shared by every [`Fft3`]/`DistFft` built
//! afterwards — including across the virtual-MPI worker threads of
//! `run_cluster`, which share these statics.
//!
//! Hit/miss counters feed the `memory.fft_plan_cache` block of the
//! observability RunReport.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use claire_grid::Grid;

use crate::plan::Fft1d;
use crate::real::RealFft1d;
use crate::serial3d::Fft3;

static FFT1D: Mutex<BTreeMap<usize, Arc<Fft1d>>> = Mutex::new(BTreeMap::new());
static REAL1D: Mutex<BTreeMap<usize, Arc<RealFft1d>>> = Mutex::new(BTreeMap::new());
static FFT3: Mutex<BTreeMap<[usize; 3], Arc<Fft3>>> = Mutex::new(BTreeMap::new());

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn get_or_plan<K: Ord + Copy, V>(
    cache: &Mutex<BTreeMap<K, Arc<V>>>,
    key: K,
    plan: impl FnOnce() -> V,
) -> Arc<V> {
    if let Some(v) = cache.lock().unwrap().get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(v);
    }
    // Plan outside the lock: planning may itself consult this cache (Fft3
    // plans its 1-D factors through it) and can be slow. A racing planner
    // for the same key wastes one plan; the first insert wins.
    MISSES.fetch_add(1, Ordering::Relaxed);
    let v = Arc::new(plan());
    Arc::clone(cache.lock().unwrap().entry(key).or_insert(v))
}

/// Shared 1-D complex plan for length `n`.
pub fn fft1d(n: usize) -> Arc<Fft1d> {
    get_or_plan(&FFT1D, n, || Fft1d::new(n))
}

/// Shared 1-D real↔half-complex plan for even length `n`.
pub fn real_fft1d(n: usize) -> Arc<RealFft1d> {
    get_or_plan(&REAL1D, n, || RealFft1d::new(n))
}

/// Shared serial 3-D plan for `grid`.
pub fn fft3(grid: Grid) -> Arc<Fft3> {
    get_or_plan(&FFT3, grid.n, || Fft3::new(grid))
}

/// Snapshot of the plan cache counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Plans currently cached (1-D complex + 1-D real + 3-D).
    pub plans: u64,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to plan.
    pub misses: u64,
}

/// Current plan-cache statistics.
pub fn stats() -> CacheStats {
    CacheStats {
        plans: (FFT1D.lock().unwrap().len()
            + REAL1D.lock().unwrap().len()
            + FFT3.lock().unwrap().len()) as u64,
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

/// Reset the hit/miss counters (cached plans are kept — warm is the point).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// Drop every cached plan (counters are kept). Plans still held by live
/// `Arc`s stay usable; the next lookup re-plans. This exists for benchmarks
/// that model a cold process (e.g. `bench_batch`'s sequential baseline) —
/// production code should never need it.
pub fn clear() {
    FFT1D.lock().unwrap().clear();
    REAL1D.lock().unwrap().clear();
    FFT3.lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_returns_same_plan() {
        let a = fft1d(40);
        let b = fft1d(40);
        assert!(Arc::ptr_eq(&a, &b), "repeated lookups must share one plan");
        let r1 = real_fft1d(40);
        let r2 = real_fft1d(40);
        assert!(Arc::ptr_eq(&r1, &r2));
        let g = Grid::new([4, 6, 8]);
        assert!(Arc::ptr_eq(&fft3(g), &fft3(g)));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let before = stats();
        let _ = fft1d(977); // Bluestein length, certainly un-planned so far
        let mid = stats();
        assert_eq!(mid.misses, before.misses + 1);
        let _ = fft1d(977);
        let after = stats();
        assert_eq!(after.hits, mid.hits + 1);
        assert!(after.plans >= 1);
    }
}
