//! Integer factorization helpers for FFT planning.

/// Smallest prime factor of `n >= 2`.
pub fn smallest_prime_factor(n: usize) -> usize {
    debug_assert!(n >= 2);
    if n.is_multiple_of(2) {
        return 2;
    }
    let mut f = 3;
    while f * f <= n {
        if n.is_multiple_of(f) {
            return f;
        }
        f += 2;
    }
    n
}

/// Whether `n` factors entirely into 2, 3, and 5 (fast mixed-radix path).
pub fn is_smooth(mut n: usize) -> bool {
    if n == 0 {
        return false;
    }
    for p in [2usize, 3, 5] {
        while n.is_multiple_of(p) {
            n /= p;
        }
    }
    n == 1
}

/// Smallest power of two `>= n`.
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// Prime factorization of `n` in non-decreasing order.
pub fn factorize(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    while n > 1 {
        let f = smallest_prime_factor(n);
        out.push(f);
        n /= f;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_of_composites() {
        assert_eq!(factorize(360), vec![2, 2, 2, 3, 3, 5]);
        assert_eq!(factorize(97), vec![97]);
        assert_eq!(factorize(1), Vec::<usize>::new());
    }

    #[test]
    fn smoothness() {
        assert!(is_smooth(256));
        assert!(is_smooth(300)); // 2²·3·5² — the NIREP axis length
        assert!(!is_smooth(97));
        assert!(!is_smooth(14)); // contains 7
    }

    #[test]
    fn pow2() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(17), 32);
        assert_eq!(next_pow2(64), 64);
    }
}
