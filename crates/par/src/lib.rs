//! Shared-memory parallel kernel execution for CLAIRE-rs.
//!
//! The GPU implementation of CLAIRE (Brunn et al., SC 2020) launches each
//! kernel over a grid of thread blocks; every output element is computed by
//! exactly one thread. This crate reproduces that execution model on a
//! multicore CPU: each kernel splits its *output* index space into contiguous
//! chunks and hands one chunk per worker thread, so every output element is
//! written by exactly one thread and no synchronization is needed inside a
//! kernel. Workers are plain `std::thread::scope` scoped threads — the crate
//! has no dependencies and no global pool, which keeps the virtual-MPI
//! ranks-as-threads substrate (each rank may itself fan out) free of
//! pool-reentrancy hazards.
//!
//! Determinism: every parallel construct here produces *bitwise identical*
//! results for every thread count, including the serial fallback. Element-wise
//! kernels (stencils, FFT lines, interpolation) are trivially deterministic
//! because each output element's computation never crosses a chunk boundary.
//! Reductions ([`par_sum_blocks`]) accumulate fixed-size blocks whose
//! boundaries depend only on the problem size — never on the thread count —
//! and combine the per-block partials in index order.
//!
//! Thread-count resolution (first match wins):
//! 1. [`set_local_threads`] per-thread budget (how `claire-serve` partitions
//!    the machine across concurrent jobs — each worker thread gets a slice),
//! 2. [`set_threads`] process-wide programmatic override,
//! 3. `CLAIRE_THREADS` environment variable,
//! 4. `RAYON_NUM_THREADS` environment variable (honored for familiarity),
//! 5. `std::thread::available_parallelism()`.
//!
//! With a resolved count of 1 every construct degenerates to a plain serial
//! loop on the calling thread — no threads are spawned, no atomics touched.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod alloc_counter;
pub mod timing;

/// Work-size floor below which kernels should stay serial: spawning scoped
/// threads costs tens of microseconds, which only pays off once a kernel
/// touches at least this many grid points / queries.
pub const MIN_PAR_LEN: usize = 1 << 13;

/// Fixed reduction-block length for [`par_sum_blocks`]. Block boundaries are
/// a function of the problem size only, so partial sums — and therefore the
/// final sum — are bitwise identical for every thread count.
pub const SUM_BLOCK: usize = 4096;

/// 0 = no override; otherwise the value set via [`set_threads`].
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// 0 = no per-thread budget; otherwise the value set via
    /// [`set_local_threads`] on this thread.
    static LOCAL_THREADS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Force the worker-thread count for subsequent kernels (`0` clears the
/// override and returns resolution to the environment). Mirrors
/// `rayon::ThreadPoolBuilder::num_threads`, but takes effect immediately —
/// there is no pool to rebuild.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Give the *calling thread* its own worker-thread budget for subsequent
/// kernels (`0` clears it). Takes precedence over every other resolution
/// source, so a pool of job workers can partition the machine: each worker
/// sets its slice once at startup and all kernels it launches — including
/// the scoped threads they spawn — stay within it. `claire-serve` uses this
/// so N concurrent registrations don't oversubscribe the host.
pub fn set_local_threads(n: usize) {
    LOCAL_THREADS.with(|c| c.set(n));
}

/// The calling thread's budget set via [`set_local_threads`] (0 = none).
pub fn local_threads() -> usize {
    LOCAL_THREADS.with(|c| c.get())
}

/// Run `f` with the calling thread's budget forced to `n`, restoring the
/// previous per-thread budget afterwards (including on panic).
pub fn with_local_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|c| c.set(self.0));
        }
    }
    let guard = Restore(LOCAL_THREADS.with(|c| c.replace(n)));
    let out = f();
    drop(guard);
    out
}

fn env_threads(var: &str) -> Option<usize> {
    std::env::var(var).ok()?.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

/// The worker-thread count kernels will use, resolved as documented on the
/// crate: per-thread budget, global override, `CLAIRE_THREADS`,
/// `RAYON_NUM_THREADS`, hardware.
pub fn num_threads() -> usize {
    let local = local_threads();
    if local > 0 {
        return local;
    }
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = env_threads("CLAIRE_THREADS") {
        return n;
    }
    if let Some(n) = env_threads("RAYON_NUM_THREADS") {
        return n;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Run `f` with the thread count forced to `n`, restoring the previous
/// override afterwards (including on panic). Intended for tests comparing
/// serial and parallel execution of the same kernel.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let guard = Restore(THREAD_OVERRIDE.swap(n, Ordering::Relaxed));
    let out = f();
    drop(guard);
    out
}

/// True when a kernel over `len` output elements should engage worker
/// threads: more than one thread resolved and the work clears [`MIN_PAR_LEN`].
pub fn par_enabled(len: usize) -> bool {
    len >= MIN_PAR_LEN && num_threads() > 1
}

/// Split `0..n` into `parts` contiguous ranges differing in length by at most
/// one (the GPU grid→block split, with blocks as large as possible).
fn split_range(n: usize, parts: usize, part: usize) -> std::ops::Range<usize> {
    let lo = n * part / parts;
    let hi = n * (part + 1) / parts;
    lo..hi
}

/// Execute `f(range)` over a partition of `0..n` items into contiguous
/// per-thread ranges, with the serial-vs-parallel decision made on
/// `total_work` (e.g. items × elements-per-item) rather than the item count —
/// a batch of 4096 FFT pencils is worth threading even though 4096 alone is
/// below [`MIN_PAR_LEN`]. `f` runs once per worker (serially: once with
/// `0..n`); it may read shared state freely but must own its writes (e.g.
/// through [`SharedSlice`] with disjoint indices).
pub fn par_parts<F>(n: usize, total_work: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let nt = if par_enabled(total_work) { num_threads().min(n.max(1)) } else { 1 };
    if nt <= 1 {
        f(0..n);
        return;
    }
    std::thread::scope(|s| {
        for t in 1..nt {
            let f = &f;
            s.spawn(move || f(split_range(n, nt, t)));
        }
        f(split_range(n, nt, 0));
    });
}

/// [`par_parts`] where each item is one unit of work.
pub fn par_range<F>(n: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    par_parts(n, n, f)
}

fn effective_threads(n: usize) -> usize {
    if !par_enabled(n) {
        return 1;
    }
    num_threads().min(n.max(1))
}

/// Split `data` into chunks of exactly `chunk` elements (last may be short)
/// and run `f(chunk_index, chunk)` for each, distributing contiguous runs of
/// chunks across worker threads. The per-chunk index lets kernels recover
/// their position in the output index space (plane number, pencil number, …).
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk length must be positive");
    let len = data.len();
    let nchunks = len.div_ceil(chunk);
    let nt = effective_threads(len).min(nchunks.max(1));
    if nt <= 1 {
        for (ci, c) in data.chunks_mut(chunk).enumerate() {
            f(ci, c);
        }
        return;
    }
    std::thread::scope(|s| {
        let mut rest = data;
        let mut chunk_base = 0usize;
        for t in 0..nt {
            let r = split_range(nchunks, nt, t);
            let elems = ((r.end - r.start) * chunk).min(rest.len());
            let (mine, tail) = rest.split_at_mut(elems);
            rest = tail;
            let base = chunk_base;
            chunk_base += r.end - r.start;
            let f = &f;
            if t + 1 == nt {
                for (ci, c) in mine.chunks_mut(chunk).enumerate() {
                    f(base + ci, c);
                }
            } else {
                s.spawn(move || {
                    for (ci, c) in mine.chunks_mut(chunk).enumerate() {
                        f(base + ci, c);
                    }
                });
            }
        }
    });
}

/// Fused mutate-and-reduce over fixed-size chunks: like [`par_chunks_mut`],
/// but `f(chunk_index, chunk)` also returns a per-chunk partial (sum) and the
/// partials are combined in chunk order. Because the chunk boundaries depend
/// only on `chunk` and `data.len()` — never on the thread count — the result
/// is bitwise identical for every thread count, exactly like
/// [`par_sum_blocks`] with `chunk == SUM_BLOCK`. This is the substrate for
/// fused field-op kernels (update + norm in one pass over memory), which is
/// where a bandwidth-bound solver wins: one DRAM pass instead of two.
/// Steady-state allocation-free (partials live in a reused thread-local
/// buffer).
pub fn par_chunks_mut_sum<T, F>(data: &mut [T], chunk: usize, f: F) -> f64
where
    T: Send,
    F: Fn(usize, &mut [T]) -> f64 + Sync,
{
    assert!(chunk > 0, "chunk length must be positive");
    let len = data.len();
    if len == 0 {
        return 0.0;
    }
    let nchunks = len.div_ceil(chunk);
    with_reduce_partials(
        nchunks,
        |partials| {
            let shared = SharedSlice::new(partials);
            let nt = effective_threads(len).min(nchunks.max(1));
            if nt <= 1 {
                for (ci, c) in data.chunks_mut(chunk).enumerate() {
                    // SAFETY: serial loop — each partial written exactly once.
                    unsafe { shared.write(ci, f(ci, c)) };
                }
                return;
            }
            std::thread::scope(|s| {
                let mut rest = data;
                let mut chunk_base = 0usize;
                for t in 0..nt {
                    let r = split_range(nchunks, nt, t);
                    let elems = ((r.end - r.start) * chunk).min(rest.len());
                    let (mine, tail) = rest.split_at_mut(elems);
                    rest = tail;
                    let base = chunk_base;
                    chunk_base += r.end - r.start;
                    let f = &f;
                    if t + 1 == nt {
                        for (ci, c) in mine.chunks_mut(chunk).enumerate() {
                            // SAFETY: chunk ranges are disjoint across workers,
                            // so each partial slot is written by exactly one.
                            unsafe { shared.write(base + ci, f(base + ci, c)) };
                        }
                    } else {
                        s.spawn(move || {
                            for (ci, c) in mine.chunks_mut(chunk).enumerate() {
                                // SAFETY: as above — disjoint chunk ranges.
                                unsafe { shared.write(base + ci, f(base + ci, c)) };
                            }
                        });
                    }
                }
            });
        },
        |p| p.iter().sum(),
    )
}

/// Map `f` over `0..n` collecting results in index order. Each worker fills a
/// contiguous segment of the output directly, so ordering — and therefore the
/// result — is identical for every thread count.
pub fn par_map_collect<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    par_map_collect_work(n, 1, f)
}

/// [`par_map_collect`] with the serial-vs-parallel decision made on
/// `n · work_per_item` (see [`par_parts`]) — used when each mapped item
/// covers many grid points (reduction blocks, FFT lines).
pub fn par_map_collect_work<R, F>(n: usize, work_per_item: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut out: Vec<R> = Vec::with_capacity(n);
    {
        let spare = out.spare_capacity_mut();
        let shared = SharedUninit { ptr: spare.as_mut_ptr(), len: n };
        par_parts(n, n.saturating_mul(work_per_item.max(1)), |r| {
            for i in r {
                // SAFETY: par_range hands out disjoint index ranges, so each
                // slot is written exactly once before set_len below.
                unsafe { shared.write(i, f(i)) };
            }
        });
    }
    // SAFETY: every index in 0..n was initialized by exactly one worker.
    unsafe { out.set_len(n) };
    out
}

struct SharedUninit<R> {
    ptr: *mut std::mem::MaybeUninit<R>,
    len: usize,
}

unsafe impl<R: Send> Sync for SharedUninit<R> {}

impl<R> SharedUninit<R> {
    /// # Safety
    /// Each index must be written by at most one thread.
    unsafe fn write(&self, i: usize, v: R) {
        debug_assert!(i < self.len);
        unsafe { (*self.ptr.add(i)).write(v) };
    }
}

thread_local! {
    /// Reused per-block partial buffer for [`par_sum_blocks`] /
    /// [`par_max_blocks`]: after the first reduction on a thread the buffer's
    /// capacity is retained, so steady-state reductions are allocation-free.
    static REDUCE_PARTIALS: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Run a block reduction: `fill` writes one partial per block into the
/// (reused) scratch buffer, `finish` folds the partials in block order.
fn with_reduce_partials<R>(
    nblocks: usize,
    fill: impl FnOnce(&mut [f64]),
    finish: impl FnOnce(&[f64]) -> R,
) -> R {
    REDUCE_PARTIALS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut buf) => {
            buf.clear();
            buf.resize(nblocks, 0.0);
            fill(&mut buf);
            finish(&buf)
        }
        // re-entrant reduction on this thread (a block closure itself
        // reducing): fall back to a fresh buffer
        Err(_) => {
            let mut buf = vec![0.0; nblocks];
            fill(&mut buf);
            finish(&buf)
        }
    })
}

fn par_fill_blocks<F>(n: usize, partials: &mut [f64], f: &F)
where
    F: Fn(std::ops::Range<usize>) -> f64 + Sync,
{
    let nblocks = partials.len();
    let shared = SharedSlice::new(partials);
    par_parts(nblocks, n, |r| {
        for b in r {
            let lo = b * SUM_BLOCK;
            // SAFETY: par_parts hands out disjoint block ranges, so each
            // partial slot is written by exactly one worker.
            unsafe { shared.write(b, f(lo..(lo + SUM_BLOCK).min(n))) };
        }
    });
}

/// Deterministic parallel sum: `f(block_range)` computes the partial sum of
/// one fixed-size block ([`SUM_BLOCK`] elements; boundaries independent of the
/// thread count) and the partials are combined in block order. Returns 0.0
/// for `n == 0`. Steady-state allocation-free (partials live in a reused
/// thread-local buffer).
pub fn par_sum_blocks<F>(n: usize, f: F) -> f64
where
    F: Fn(std::ops::Range<usize>) -> f64 + Sync,
{
    if n == 0 {
        return 0.0;
    }
    let nblocks = n.div_ceil(SUM_BLOCK);
    with_reduce_partials(nblocks, |p| par_fill_blocks(n, p, &f), |p| p.iter().sum())
}

/// Deterministic parallel max: like [`par_sum_blocks`] but the per-block
/// partials are combined with `f64::max`. Returns `f64::NEG_INFINITY` for
/// `n == 0`.
pub fn par_max_blocks<F>(n: usize, f: F) -> f64
where
    F: Fn(std::ops::Range<usize>) -> f64 + Sync,
{
    if n == 0 {
        return f64::NEG_INFINITY;
    }
    let nblocks = n.div_ceil(SUM_BLOCK);
    with_reduce_partials(
        nblocks,
        |p| par_fill_blocks(n, p, &f),
        |p| p.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x)),
    )
}

/// A raw view of a mutable slice that many threads may write through, for
/// kernels whose natural output decomposition is *strided* rather than
/// contiguous (e.g. the x2/x3 FFT pencil stages, ghost-plane unpack). The
/// caller is responsible for index disjointness across threads.
#[derive(Clone, Copy)]
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _life: std::marker::PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wrap `data` for disjoint multi-threaded writes.
    pub fn new(data: &'a mut [T]) -> SharedSlice<'a, T> {
        SharedSlice { ptr: data.as_mut_ptr(), len: data.len(), _life: std::marker::PhantomData }
    }

    /// Element count of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Write one element.
    ///
    /// # Safety
    /// `i` must be in bounds and no other thread may concurrently read or
    /// write index `i`.
    #[inline]
    pub unsafe fn write(&self, i: usize, v: T) {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) = v };
    }

    /// Read one element.
    ///
    /// # Safety
    /// `i` must be in bounds and no other thread may concurrently write
    /// index `i`.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) }
    }

    /// Mutable view of a contiguous index range.
    ///
    /// # Safety
    /// The range must be in bounds and no other thread may concurrently read
    /// or write any index in it (across *all* outstanding views).
    #[inline]
    pub unsafe fn slice_mut(&self, r: std::ops::Range<usize>) -> &'a mut [T] {
        debug_assert!(r.start <= r.end && r.end <= self.len);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(r.start), r.end - r.start) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_range() {
        for n in [0usize, 1, 7, 100] {
            for parts in 1..=8 {
                let mut covered = 0;
                for p in 0..parts {
                    covered += split_range(n, parts, p).len();
                }
                assert_eq!(covered, n, "n={n} parts={parts}");
            }
        }
    }

    #[test]
    fn chunks_visit_every_chunk_once() {
        let n = MIN_PAR_LEN * 2 + 17;
        let mut data = vec![0u32; n];
        with_threads(4, || {
            par_chunks_mut(&mut data, 100, |ci, c| {
                for v in c.iter_mut() {
                    *v += 1 + ci as u32;
                }
            });
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (i / 100) as u32, "element {i}");
        }
    }

    #[test]
    fn map_collect_matches_serial() {
        let n = MIN_PAR_LEN + 3;
        let serial = with_threads(1, || par_map_collect(n, |i| i * i));
        let par = with_threads(8, || par_map_collect(n, |i| i * i));
        assert_eq!(serial, par);
    }

    #[test]
    fn chunks_mut_sum_bitwise_stable_and_matches_two_passes() {
        let n = MIN_PAR_LEN * 3 + 29;
        let base: Vec<f64> = (0..n).map(|i| ((i * 2654435761) % 997) as f64 * 1e-3).collect();
        let run = |nt: usize| {
            let mut data = base.clone();
            let s = with_threads(nt, || {
                par_chunks_mut_sum(&mut data, SUM_BLOCK, |_, c| {
                    let mut acc = 0.0;
                    for v in c.iter_mut() {
                        *v = *v * 2.0 + 1.0;
                        acc += *v * *v;
                    }
                    acc
                })
            });
            (data, s)
        };
        let (d1, s1) = run(1);
        // two-pass reference with the same block boundaries
        let mut dref = base.clone();
        for v in dref.iter_mut() {
            *v = *v * 2.0 + 1.0;
        }
        let sref = par_sum_blocks(n, |r| dref[r].iter().map(|x| x * x).sum());
        assert_eq!(d1, dref);
        assert_eq!(s1.to_bits(), sref.to_bits());
        for nt in [2, 3, 8] {
            let (d, s) = run(nt);
            assert_eq!(d, d1, "nt={nt}");
            assert_eq!(s.to_bits(), s1.to_bits(), "nt={nt}");
        }
    }

    #[test]
    fn sum_blocks_bitwise_stable_across_threads() {
        let n = MIN_PAR_LEN * 3 + 7;
        let data: Vec<f64> = (0..n).map(|i| ((i * 2654435761) % 1000) as f64 * 1e-3).collect();
        let sum_at = |nt: usize| {
            with_threads(nt, || par_sum_blocks(n, |r| data[r].iter().map(|x| x * x + 0.5).sum()))
        };
        let s1 = sum_at(1);
        for nt in [2, 3, 8] {
            assert_eq!(s1.to_bits(), sum_at(nt).to_bits(), "nt={nt}");
        }
    }

    #[test]
    fn shared_slice_disjoint_writes() {
        let n = MIN_PAR_LEN * 2;
        let mut data = vec![0.0f64; n];
        let shared = SharedSlice::new(&mut data);
        with_threads(4, || {
            par_range(n, |r| {
                for i in r {
                    unsafe { shared.write(i, i as f64) };
                }
            });
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as f64));
    }

    #[test]
    fn threshold_keeps_small_work_serial() {
        with_threads(8, || {
            assert!(!par_enabled(16));
            assert!(par_enabled(MIN_PAR_LEN));
        });
        with_threads(1, || assert!(!par_enabled(1 << 20)));
    }

    #[test]
    fn env_resolution_override_wins() {
        with_threads(3, || assert_eq!(num_threads(), 3));
    }

    #[test]
    fn local_budget_beats_global_override() {
        with_threads(8, || {
            assert_eq!(num_threads(), 8);
            with_local_threads(2, || assert_eq!(num_threads(), 2));
            assert_eq!(num_threads(), 8, "budget restored after scope");
        });
    }

    #[test]
    fn local_budget_is_per_thread() {
        with_local_threads(3, || {
            assert_eq!(local_threads(), 3);
            let other = std::thread::spawn(local_threads).join().unwrap();
            assert_eq!(other, 0, "budget must not leak to other threads");
        });
        assert_eq!(local_threads(), 0);
    }

    #[test]
    fn local_budget_restored_on_panic() {
        let caught = std::panic::catch_unwind(|| with_local_threads(5, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(local_threads(), 0);
    }

    #[test]
    fn kernels_respect_local_budget() {
        // a parallel map under a 1-thread budget matches the serial result
        let n = MIN_PAR_LEN + 9;
        let serial = with_local_threads(1, || par_map_collect(n, |i| i * 3));
        let par = with_local_threads(4, || par_map_collect(n, |i| i * 3));
        assert_eq!(serial, par);
    }
}
