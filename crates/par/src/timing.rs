//! Per-kernel timing counters.
//!
//! Each parallelized kernel family has one [`Kernel`] slot holding an atomic
//! call count and accumulated wall-clock nanoseconds. Counters cover the
//! whole kernel invocation (serial or parallel), so comparing snapshots taken
//! under different thread counts measures the realized speedup directly.

use claire_obs::metrics::Counter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The instrumented kernel families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Finite-difference stencil application (per-axis derivative).
    Fd,
    /// Single-rank 3-D FFT (forward or inverse).
    FftSerial,
    /// Distributed FFT compute stages (2-D plane + 1-D pencil passes).
    FftDist,
    /// Transpose pack/unpack around the FFT all-to-all.
    FftTranspose,
    /// Scattered-data interpolation kernel (per-query evaluation).
    Interp,
    /// Ghost-layer pack/unpack and interior copy.
    Ghost,
    /// Element-wise field algebra (axpy, scale, dot, …).
    FieldOps,
    /// Semi-Lagrangian RK2 trajectory integration.
    SemiLag,
}

const NKERNELS: usize = 8;

const NAMES: [&str; NKERNELS] =
    ["fd", "fft_serial", "fft_dist", "fft_transpose", "interp", "ghost", "field_ops", "semilag"];

struct Slot {
    calls: AtomicU64,
    nanos: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_SLOT: Slot = Slot { calls: AtomicU64::new(0), nanos: AtomicU64::new(0) };

static SLOTS: [Slot; NKERNELS] = [ZERO_SLOT; NKERNELS];

// Mirror counters in the claire-obs registry so kernel activity shows up in
// `obs::metrics::snapshot()` (and hence RunReport.metrics) alongside solver
// counters. The local SLOTS stay authoritative for `snapshot()`/`reset()`.
static OBS_CALLS: [Counter; NKERNELS] = [
    Counter::new("kernel.fd.calls"),
    Counter::new("kernel.fft_serial.calls"),
    Counter::new("kernel.fft_dist.calls"),
    Counter::new("kernel.fft_transpose.calls"),
    Counter::new("kernel.interp.calls"),
    Counter::new("kernel.ghost.calls"),
    Counter::new("kernel.field_ops.calls"),
    Counter::new("kernel.semilag.calls"),
];
static OBS_NANOS: [Counter; NKERNELS] = [
    Counter::new("kernel.fd.nanos"),
    Counter::new("kernel.fft_serial.nanos"),
    Counter::new("kernel.fft_dist.nanos"),
    Counter::new("kernel.fft_transpose.nanos"),
    Counter::new("kernel.interp.nanos"),
    Counter::new("kernel.ghost.nanos"),
    Counter::new("kernel.field_ops.nanos"),
    Counter::new("kernel.semilag.nanos"),
];

impl Kernel {
    fn index(self) -> usize {
        match self {
            Kernel::Fd => 0,
            Kernel::FftSerial => 1,
            Kernel::FftDist => 2,
            Kernel::FftTranspose => 3,
            Kernel::Interp => 4,
            Kernel::Ghost => 5,
            Kernel::FieldOps => 6,
            Kernel::SemiLag => 7,
        }
    }

    /// Stable snake_case name used in reports and `BENCH_kernels.json`.
    pub fn name(self) -> &'static str {
        NAMES[self.index()]
    }
}

/// Run `f`, charging its wall time to `k`.
pub fn time<R>(k: Kernel, f: impl FnOnce() -> R) -> R {
    let t0 = Instant::now();
    let out = f();
    let nanos = t0.elapsed().as_nanos() as u64;
    let slot = &SLOTS[k.index()];
    slot.calls.fetch_add(1, Ordering::Relaxed);
    slot.nanos.fetch_add(nanos, Ordering::Relaxed);
    if claire_obs::enabled() {
        OBS_CALLS[k.index()].inc();
        OBS_NANOS[k.index()].add(nanos);
    }
    out
}

/// One kernel's accumulated counters.
#[derive(Clone, Copy, Debug)]
pub struct KernelStat {
    /// Stable kernel name (see [`Kernel::name`]).
    pub name: &'static str,
    /// Invocations since the last [`reset`].
    pub calls: u64,
    /// Accumulated wall-clock nanoseconds across those invocations.
    pub nanos: u64,
}

/// Counters for every kernel family, in declaration order (including
/// never-invoked ones, with zero calls).
pub fn snapshot() -> Vec<KernelStat> {
    (0..NKERNELS)
        .map(|i| KernelStat {
            name: NAMES[i],
            calls: SLOTS[i].calls.load(Ordering::Relaxed),
            nanos: SLOTS[i].nanos.load(Ordering::Relaxed),
        })
        .collect()
}

/// Zero all counters.
pub fn reset() {
    for s in &SLOTS {
        s.calls.store(0, Ordering::Relaxed);
        s.nanos.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_accumulates() {
        reset();
        let v = time(Kernel::Fd, || 41 + 1);
        assert_eq!(v, 42);
        time(Kernel::Fd, || std::thread::sleep(std::time::Duration::from_millis(1)));
        let snap = snapshot();
        let fd = snap.iter().find(|s| s.name == "fd").unwrap();
        assert_eq!(fd.calls, 2);
        assert!(fd.nanos >= 1_000_000, "expected >=1ms accumulated, got {}", fd.nanos);
        reset();
        assert!(snapshot().iter().all(|s| s.calls == 0 && s.nanos == 0));
    }
}
