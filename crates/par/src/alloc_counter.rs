//! A counting global allocator for allocation-regression harnesses.
//!
//! [`CountingAlloc`] wraps the system allocator and counts every
//! allocation (and allocated byte) that goes through it. Binaries that
//! want the counts install it as their global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: claire_par::alloc_counter::CountingAlloc =
//!     claire_par::alloc_counter::CountingAlloc::new();
//! ```
//!
//! The counters are process-global statics, so [`allocation_count`] /
//! [`allocated_bytes`] read zero unless the wrapper actually is the global
//! allocator. The zero-allocation tier-1 test and `bench_solver` both use
//! this to sample allocations at Gauss–Newton iteration boundaries and
//! prove the solver hot path is allocation-free at steady state.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// System-allocator wrapper that counts allocations. Install with
/// `#[global_allocator]`; construction alone does nothing.
pub struct CountingAlloc;

impl CountingAlloc {
    /// The (stateless) wrapper; counters live in statics.
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        CountingAlloc::new()
    }
}

// SAFETY: defers to `System` for every operation; the counters are
// lock-free atomics, so no allocation or reentrancy happens in the hooks.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growing realloc acquires memory even when it extends in place;
        // count it like a fresh allocation of the delta.
        if new_size > layout.size() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add((new_size - layout.size()) as u64, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocations observed since process start (0 if [`CountingAlloc`]
/// is not the global allocator).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested since process start.
pub fn allocated_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}
