//! NIREP-like brain phantom (substitute for the 16 NIREP MRI subjects).
//!
//! A canonical "brain" — cortex shell, white-matter interior, ventricles,
//! subcortical nuclei — built from smooth periodic bumps, warped by a
//! per-subject random smooth diffeomorphism. Subjects are named like the
//! NIREP individuals (`na01` … `na16`); the same name always produces the
//! same image. Intensities lie in `[0, 1]` like normalized T1 MRI.

// The Fourier-mode coefficient tuples are local to this generator.
#![allow(clippy::type_complexity)]

use claire_grid::{Layout, Real, ScalarField, VectorField, PI};
use claire_interp::{Interpolator, IpOrder};
use claire_mpi::Comm;
use claire_semilag::{Trajectory, Transport};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A smooth periodic bump centred at `c` with half-widths `w` (Gaussian in
/// the periodic sine-distance, so the field is C∞ and periodic).
fn bump(x: [Real; 3], c: [Real; 3], w: [Real; 3]) -> Real {
    let mut q = 0.0 as Real;
    for d in 0..3 {
        // periodic distance via sin((x − c)/2): equals (x−c)/2 near c
        let s = (0.5 * (x[d] - c[d])).sin() * 2.0;
        q += (s / w[d]) * (s / w[d]);
    }
    (-q).exp()
}

/// The canonical (atlas) brain phantom.
pub fn canonical(layout: Layout) -> ScalarField {
    let c = [PI, PI, PI];
    ScalarField::from_fn(layout, move |x1, x2, x3| {
        let x = [x1, x2, x3];
        // head: broad ellipsoid
        let head = bump(x, c, [2.0, 1.7, 1.6]);
        // white matter: brighter interior
        let wm = bump(x, c, [1.3, 1.1, 1.0]);
        // ventricles: two dark slots near the centre
        let v1 = bump(x, [c[0], c[1] - 0.35, c[2] + 0.15], [0.45, 0.18, 0.35]);
        let v2 = bump(x, [c[0], c[1] + 0.35, c[2] + 0.15], [0.45, 0.18, 0.35]);
        // subcortical nuclei
        let n1 = bump(x, [c[0] - 0.5, c[1] - 0.6, c[2] - 0.3], [0.25, 0.25, 0.25]);
        let n2 = bump(x, [c[0] + 0.5, c[1] + 0.6, c[2] - 0.3], [0.25, 0.25, 0.25]);
        let val = 0.55 * head + 0.35 * wm - 0.5 * (v1 + v2) + 0.25 * (n1 + n2);
        val.clamp(0.0, 1.0)
    })
}

/// A random smooth velocity: superposition of a few low-frequency Fourier
/// modes, seeded deterministically. `amplitude` bounds `max |v|` roughly;
/// `max_mode` bounds the spatial frequency.
pub fn random_smooth_velocity(
    layout: Layout,
    seed: u64,
    amplitude: f64,
    max_mode: usize,
) -> VectorField {
    let mut rng = StdRng::seed_from_u64(seed);
    // per component: sum of `nmodes` products of sin/cos with random phase
    let mut make_coeffs = |n: usize| -> Vec<(Real, [i32; 3], [Real; 3])> {
        (0..n)
            .map(|_| {
                let amp = rng.random_range(-1.0..1.0) as Real;
                let k = [
                    rng.random_range(1..=max_mode as i32),
                    rng.random_range(1..=max_mode as i32),
                    rng.random_range(1..=max_mode as i32),
                ];
                let phase = [
                    rng.random_range(0.0..std::f64::consts::TAU) as Real,
                    rng.random_range(0.0..std::f64::consts::TAU) as Real,
                    rng.random_range(0.0..std::f64::consts::TAU) as Real,
                ];
                (amp, k, phase)
            })
            .collect()
    };
    let comps: Vec<Vec<(Real, [i32; 3], [Real; 3])>> = (0..3).map(|_| make_coeffs(4)).collect();
    let norm = amplitude as Real / 4.0;
    let eval = move |coeffs: &[(Real, [i32; 3], [Real; 3])], x: [Real; 3]| -> Real {
        coeffs
            .iter()
            .map(|(a, k, p)| {
                a * (k[0] as Real * x[0] + p[0]).sin()
                    * (k[1] as Real * x[1] + p[1]).sin()
                    * (k[2] as Real * x[2] + p[2]).cos()
            })
            .sum::<Real>()
            * norm
    };
    let (c0, c1, c2) = (comps[0].clone(), comps[1].clone(), comps[2].clone());
    VectorField::from_fns(
        layout,
        move |x, y, z| eval(&c0, [x, y, z]),
        move |x, y, z| eval(&c1, [x, y, z]),
        move |x, y, z| eval(&c2, [x, y, z]),
    )
}

/// Subject index (1-based) from a NIREP-style name (`na01` … `na16`).
pub fn subject_index(name: &str) -> Option<u64> {
    name.strip_prefix("na").and_then(|s| s.parse::<u64>().ok())
}

/// Generate subject `name` (e.g. `"na10"`): the canonical brain warped by
/// a subject-specific random smooth diffeomorphism. `na01` *is* the
/// canonical atlas (like the NIREP reference subject). Collective.
pub fn subject(name: &str, layout: Layout, comm: &mut Comm) -> ScalarField {
    let idx = subject_index(name)
        .unwrap_or_else(|| panic!("subject names look like na01..na16, got {name}"));
    let atlas = canonical(layout);
    if idx <= 1 {
        return atlas;
    }
    let v = random_smooth_velocity(layout, 1000 + idx, 0.35, 2);
    let mut interp = Interpolator::new(IpOrder::Cubic);
    let transport = Transport::new(4, IpOrder::Cubic);
    let traj = Trajectory::compute(&v, transport.nt, &mut interp, comm);
    let mut sol = transport.solve_state(&traj, &atlas, false, &mut interp, comm);
    sol.m.pop().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_grid::Grid;

    #[test]
    fn canonical_is_bounded_and_structured() {
        let layout = Layout::serial(Grid::cube(24));
        let b = canonical(layout);
        assert!(b.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // centre is bright, corner is dark
        assert!(b.at(12, 12, 12) > 0.5);
        assert!(b.at(0, 0, 0) < 0.05);
    }

    #[test]
    fn subjects_are_deterministic_and_distinct() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let a1 = subject("na02", layout, &mut comm);
        let a2 = subject("na02", layout, &mut comm);
        assert_eq!(a1, a2, "same name, same image");
        let b = subject("na03", layout, &mut comm);
        let mut d = a1.clone();
        d.axpy(-1.0, &b);
        assert!(d.norm_l2(&mut comm) > 1e-3, "different subjects must differ");
    }

    #[test]
    fn na01_is_the_atlas() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        assert_eq!(subject("na01", layout, &mut comm), canonical(layout));
    }

    #[test]
    fn random_velocity_amplitude_respected() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let v = random_smooth_velocity(layout, 7, 0.3, 2);
        let m = v.max_abs(&mut comm);
        assert!(m > 0.01 && m < 0.5, "max |v| = {m}");
    }

    #[test]
    fn subject_name_parsing() {
        assert_eq!(subject_index("na10"), Some(10));
        assert_eq!(subject_index("na01"), Some(1));
        assert_eq!(subject_index("foo"), None);
    }
}
