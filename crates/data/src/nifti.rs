//! Minimal NIfTI-1 (.nii, single file) reader/writer.
//!
//! Replaces the paper's `niftilib` dependency for image I/O. Supports the
//! subset CLAIRE needs: 3D volumes, float32/float64 data, little-endian,
//! no compression, data at offset 352 (the standard single-file layout).

use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

use claire_grid::{Grid, Layout, Real, ScalarField};

/// NIfTI-1 datatype codes.
const DT_FLOAT32: i16 = 16;
const DT_FLOAT64: i16 = 64;
/// Header size and single-file magic.
const HDR_SIZE: i32 = 348;
const VOX_OFFSET: f32 = 352.0;

/// Write a serial-layout scalar field as `.nii` (float32).
pub fn write(path: &Path, field: &ScalarField) -> std::io::Result<()> {
    assert!(field.layout().is_serial(), "gather the field before writing");
    let g = field.layout().grid;
    let mut hdr = [0u8; 352];

    let put_i32 =
        |h: &mut [u8], off: usize, v: i32| h[off..off + 4].copy_from_slice(&v.to_le_bytes());
    let put_i16 =
        |h: &mut [u8], off: usize, v: i16| h[off..off + 2].copy_from_slice(&v.to_le_bytes());
    let put_f32 =
        |h: &mut [u8], off: usize, v: f32| h[off..off + 4].copy_from_slice(&v.to_le_bytes());

    put_i32(&mut hdr, 0, HDR_SIZE);
    // dim[0..7]: rank 3 then nx, ny, nz (note: NIfTI is x-fastest; we store
    // our x3-fastest array with dim1 = n3 so the file is self-consistent)
    put_i16(&mut hdr, 40, 3);
    put_i16(&mut hdr, 42, g.n[2] as i16);
    put_i16(&mut hdr, 44, g.n[1] as i16);
    put_i16(&mut hdr, 46, g.n[0] as i16);
    put_i16(&mut hdr, 48, 1);
    put_i16(&mut hdr, 70, DT_FLOAT32); // datatype
    put_i16(&mut hdr, 72, 32); // bitpix
                               // pixdim
    let h = g.spacing();
    put_f32(&mut hdr, 76, 1.0);
    put_f32(&mut hdr, 80, h[2] as f32);
    put_f32(&mut hdr, 84, h[1] as f32);
    put_f32(&mut hdr, 88, h[0] as f32);
    put_f32(&mut hdr, 108, VOX_OFFSET);
    put_f32(&mut hdr, 112, 1.0); // scl_slope
                                 // magic "n+1\0"
    hdr[344..348].copy_from_slice(b"n+1\0");

    let mut f = File::create(path)?;
    f.write_all(&hdr)?;
    let mut buf = Vec::with_capacity(field.data().len() * 4);
    for &v in field.data() {
        buf.extend_from_slice(&(v as f32).to_le_bytes());
    }
    f.write_all(&buf)
}

/// Read a `.nii` file written by [`write`] (or any single-file float32/
/// float64 little-endian NIfTI-1 volume).
pub fn read(path: &Path) -> std::io::Result<ScalarField> {
    let mut f = File::open(path)?;
    let mut raw = Vec::new();
    f.read_to_end(&mut raw)?;
    let err = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
    if raw.len() < 352 {
        return Err(err("file too short for a NIfTI-1 header"));
    }
    let get_i32 = |off: usize| i32::from_le_bytes(raw[off..off + 4].try_into().unwrap());
    let get_i16 = |off: usize| i16::from_le_bytes(raw[off..off + 2].try_into().unwrap());
    let get_f32 = |off: usize| f32::from_le_bytes(raw[off..off + 4].try_into().unwrap());
    if get_i32(0) != HDR_SIZE {
        return Err(err("bad sizeof_hdr (big-endian or not NIfTI-1?)"));
    }
    if &raw[344..347] != b"n+1" {
        return Err(err("not a single-file NIfTI-1 (.nii) volume"));
    }
    let rank = get_i16(40);
    if !(3..=4).contains(&rank) {
        return Err(err("only 3D volumes are supported"));
    }
    let n3 = get_i16(42) as usize;
    let n2 = get_i16(44) as usize;
    let n1 = get_i16(46) as usize;
    let datatype = get_i16(70);
    let offset = get_f32(108) as usize;
    let nvox = n1 * n2 * n3;

    let mut data = Vec::with_capacity(nvox);
    match datatype {
        DT_FLOAT32 => {
            if raw.len() < offset + 4 * nvox {
                return Err(err("truncated voxel data"));
            }
            for i in 0..nvox {
                let b = &raw[offset + 4 * i..offset + 4 * i + 4];
                data.push(f32::from_le_bytes(b.try_into().unwrap()) as Real);
            }
        }
        DT_FLOAT64 => {
            if raw.len() < offset + 8 * nvox {
                return Err(err("truncated voxel data"));
            }
            for i in 0..nvox {
                let b = &raw[offset + 8 * i..offset + 8 * i + 8];
                data.push(f64::from_le_bytes(b.try_into().unwrap()) as Real);
            }
        }
        other => return Err(err(&format!("unsupported NIfTI datatype {other}"))),
    }
    let grid = Grid::new([n1, n2, n3]);
    Ok(ScalarField::from_data(Layout::serial(grid), data))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("claire_rs_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip() {
        let layout = Layout::serial(Grid::new([6, 4, 8]));
        let f = ScalarField::from_fn(layout, |x, y, z| (x + 2.0 * y).sin() + z * 0.1);
        let path = tmpfile("roundtrip.nii");
        write(&path, &f).unwrap();
        let g = read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(g.layout().grid, f.layout().grid);
        for (a, b) in g.data().iter().zip(f.data()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn header_is_standard() {
        let layout = Layout::serial(Grid::new([4, 4, 4]));
        let f = ScalarField::from_fn(layout, |_, _, _| 0.5);
        let path = tmpfile("header.nii");
        write(&path, &f).unwrap();
        let raw = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(i32::from_le_bytes(raw[0..4].try_into().unwrap()), 348);
        assert_eq!(&raw[344..347], b"n+1");
        assert_eq!(raw.len(), 352 + 64 * 4);
    }

    #[test]
    fn rejects_garbage() {
        let path = tmpfile("garbage.nii");
        std::fs::write(&path, vec![0u8; 400]).unwrap();
        let res = read(&path);
        std::fs::remove_file(&path).ok();
        assert!(res.is_err());
    }
}
