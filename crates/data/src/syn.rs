//! The paper's analytic SYN test problem (§4).
//!
//! Template `m0(x) = Σ_{i=1..3} sin²(x_i)/3`; reference `m1` computed by
//! solving the forward transport problem (1b) with initial condition `m0`
//! and the analytic velocity
//!
//! ```text
//! v(x) = (sin x3 · cos x2,  sin x1 · cos x3,  sin x2 · cos x1)
//! ```
//!
//! (the paper's `v := (sin xi cos xk ...)_(i,k)=(3,2),(1,3),(2,1)`). The
//! SYN dataset drives the strong/weak scaling study (Table 7, Fig. 5).

use claire_grid::{Layout, ScalarField, VectorField};
use claire_interp::{Interpolator, IpOrder};
use claire_mpi::Comm;
use claire_semilag::{Trajectory, Transport};

/// A synthetic registration problem: template, reference, and the velocity
/// that generated the reference.
pub struct SynProblem {
    /// Template image `m0`.
    pub template: ScalarField,
    /// Reference image `m1 = m0 ∘ y⁻¹` (transported template).
    pub reference: ScalarField,
    /// The generating velocity.
    pub true_velocity: VectorField,
}

/// The paper's analytic SYN velocity field.
pub fn syn_velocity(layout: Layout) -> VectorField {
    VectorField::from_fns(
        layout,
        |_, x2, x3| x3.sin() * x2.cos(),
        |x1, _, x3| x1.sin() * x3.cos(),
        |x1, x2, _| x2.sin() * x1.cos(),
    )
}

/// The paper's analytic SYN template `m0(x) = Σ sin²(x_i) / 3`.
pub fn syn_template(layout: Layout) -> ScalarField {
    ScalarField::from_fn(layout, |x1, x2, x3| {
        (x1.sin().powi(2) + x2.sin().powi(2) + x3.sin().powi(2)) / 3.0
    })
}

/// Build the SYN problem on `n` grid points (distributed over `comm`).
/// Collective (solves the forward problem for `m1`).
pub fn syn_problem(n: [usize; 3], comm: &mut Comm) -> SynProblem {
    let layout = if comm.is_solo() {
        Layout::serial(claire_grid::Grid::new(n))
    } else {
        Layout::distributed(claire_grid::Grid::new(n), comm)
    };
    let template = syn_template(layout);
    let true_velocity = syn_velocity(layout);
    let mut interp = Interpolator::new(IpOrder::Cubic);
    let transport = Transport::new(4, IpOrder::Cubic);
    let traj = Trajectory::compute(&true_velocity, transport.nt, &mut interp, comm);
    let mut sol = transport.solve_state(&traj, &template, false, &mut interp, comm);
    SynProblem { reference: sol.m.pop().unwrap(), template, true_velocity }
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_grid::Grid;

    #[test]
    fn template_in_unit_range() {
        let layout = Layout::serial(Grid::cube(16));
        let m0 = syn_template(layout);
        assert!(m0.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn reference_differs_from_template() {
        let mut comm = Comm::solo();
        let prob = syn_problem([16, 16, 16], &mut comm);
        let mut d = prob.reference.clone();
        d.axpy(-1.0, &prob.template);
        let rel = d.norm_l2(&mut comm) / prob.template.norm_l2(&mut comm);
        assert!(rel > 0.05, "transport should move the image: rel diff {rel}");
    }

    #[test]
    fn velocity_is_order_one() {
        let mut comm = Comm::solo();
        let layout = Layout::serial(Grid::cube(8));
        let v = syn_velocity(layout);
        let m = v.max_abs(&mut comm);
        assert!(m <= 1.0 + 1e-12 && m > 0.9, "max |v| = {m}");
    }
}
