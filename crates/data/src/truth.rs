//! Ground-truth-velocity problems (the Fig. 3 experimental setup).
//!
//! The paper studies preconditioner convergence "at the true solution": a
//! reference image is synthesized by transporting the template with a known
//! velocity `v⋆`, and the Hessian system is solved at `v = v⋆` — the point
//! where the PCG is hardest and where a zero-velocity approximation could
//! plausibly break down.

use claire_grid::{Layout, ScalarField, VectorField};
use claire_interp::{Interpolator, IpOrder};
use claire_mpi::Comm;
use claire_semilag::{Trajectory, Transport};

use crate::brain::random_smooth_velocity;

/// A problem whose exact solution velocity is known.
pub struct TruthProblem {
    /// Template image.
    pub template: ScalarField,
    /// Reference `m1` = template transported by `v_true`.
    pub reference: ScalarField,
    /// The generating velocity (the registration's exact solution).
    pub v_true: VectorField,
}

/// Transport `template` with `v_true` to synthesize the reference.
/// Collective.
pub fn with_velocity(
    template: ScalarField,
    v_true: VectorField,
    nt: usize,
    comm: &mut Comm,
) -> TruthProblem {
    let mut interp = Interpolator::new(IpOrder::Cubic);
    let transport = Transport::new(nt, IpOrder::Cubic);
    let traj = Trajectory::compute(&v_true, nt, &mut interp, comm);
    let mut sol = transport.solve_state(&traj, &template, false, &mut interp, comm);
    TruthProblem { reference: sol.m.pop().unwrap(), template, v_true }
}

/// The Fig. 3 setup scaled to this grid: a brain-phantom template (na10
/// analogue) and a smooth registration-scale velocity. Collective.
pub fn fig3_problem(layout: Layout, comm: &mut Comm) -> TruthProblem {
    let template = crate::brain::subject("na10", layout, comm);
    let v_true = random_smooth_velocity(layout, 42, 0.4, 2);
    with_velocity(template, v_true, 4, comm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_grid::Grid;

    #[test]
    fn truth_velocity_reduces_mismatch_to_near_zero() {
        // transporting the template with v_true must reproduce the
        // reference almost exactly (same discretization path)
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let prob = fig3_problem(layout, &mut comm);
        let mut interp = Interpolator::new(IpOrder::Cubic);
        let transport = Transport::new(4, IpOrder::Cubic);
        let traj = Trajectory::compute(&prob.v_true, 4, &mut interp, &mut comm);
        let sol = transport.solve_state(&traj, &prob.template, false, &mut interp, &mut comm);
        let mut d = sol.final_state().clone();
        d.axpy(-1.0, &prob.reference);
        assert!(d.max_abs(&mut comm) < 1e-12, "same path must be exact");
    }

    #[test]
    fn problem_is_nontrivial() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let prob = fig3_problem(layout, &mut comm);
        let mut d = prob.reference.clone();
        d.axpy(-1.0, &prob.template);
        assert!(d.norm_l2(&mut comm) > 1e-3, "reference must differ from template");
        assert!(prob.v_true.norm_l2(&mut comm) > 0.0);
    }
}
