//! CLARITY-like phantom (substitute for the µm-resolution CLARITY
//! microscopy volumes of paper Fig. 2 and Table 6).
//!
//! CLARITY data differs from MRI in two ways that matter for the solver:
//! the grids are strongly anisotropic (e.g. 1024×768×768 crops of
//! 20K×24K×1.3K volumes) and the images carry much more high-frequency
//! content (cell-level speckle, vessels), which makes the Hessian systems
//! harder — the paper uses a looser `εH0 = 1e−2` there. This phantom
//! reproduces both properties: a smooth tissue envelope, multiplicative
//! speckle with a short correlation length, and bright vessel-like tubes.

use claire_grid::{Layout, Real, ScalarField, PI};
use claire_interp::{Interpolator, IpOrder};
use claire_mpi::Comm;
use claire_semilag::{Trajectory, Transport};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::brain::random_smooth_velocity;

/// Deterministic per-voxel hash noise in `[-1, 1]` (white, then smoothed
/// by the caller-controlled speckle frequency mix below).
fn hash_noise(i: u64, j: u64, k: u64, seed: u64) -> Real {
    let mut h = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(i.wrapping_mul(0xD1B54A32D192ED03))
        .wrapping_add(j.wrapping_mul(0xA24BAED4963EE407))
        .wrapping_add(k.wrapping_mul(0x9FB21C651E98DF25));
    h ^= h >> 32;
    h = h.wrapping_mul(0xD6E8FEB86659FD93);
    h ^= h >> 32;
    ((h % 100_000) as Real / 50_000.0) - 1.0
}

/// Generate a CLARITY-like volume with subject-specific warp and speckle.
///
/// `seed` controls both the speckle realization and the warp; the same
/// seed is reproducible (generation is rank-local; `_comm` is kept for
/// signature symmetry with the other dataset constructors).
pub fn volume(layout: Layout, seed: u64, _comm: &mut Comm) -> ScalarField {
    let g = layout.grid;
    let c = [PI, PI, PI];
    let mut rng = StdRng::seed_from_u64(seed);

    // vessel tubes: sinusoidal centre lines through the tissue
    let vessels: Vec<(Real, Real, Real, Real)> = (0..6)
        .map(|_| {
            (
                rng.random_range(0.6..5.6) as Real,                   // x2 offset
                rng.random_range(0.6..5.6) as Real,                   // x3 offset
                rng.random_range(0.5..2.0) as Real,                   // wiggle frequency
                rng.random_range(0.0..std::f64::consts::TAU) as Real, // phase
            )
        })
        .collect();

    let h = g.spacing();
    let slab_i0 = layout.slab.i0;
    let mut f = ScalarField::zeros(layout);
    let [ni, n2, n3] = layout.local_dims();
    for il in 0..ni {
        let gi = slab_i0 + il;
        let x1 = gi as Real * h[0];
        for j in 0..n2 {
            let x2 = j as Real * h[1];
            for k in 0..n3 {
                let x3 = k as Real * h[2];
                // smooth tissue envelope (anisotropy-aware)
                let mut q = 0.0;
                for (d, &x) in [x1, x2, x3].iter().enumerate() {
                    let s = (0.5 * (x - c[d])).sin() * 2.0;
                    q += (s / 2.0) * (s / 2.0);
                }
                let envelope = (-q * 1.4).exp();
                // speckle: two octaves of hash noise (high-frequency)
                let sp = 0.6 * hash_noise(gi as u64, j as u64, k as u64, seed)
                    + 0.4 * hash_noise(gi as u64 / 2, j as u64 / 2, k as u64 / 2, seed ^ 0xABCD);
                // vessels: bright tubes along x1
                let mut ves = 0.0 as Real;
                for &(o2, o3, fq, ph) in &vessels {
                    let c2 = o2 + 0.3 * (fq * x1 + ph).sin();
                    let c3 = o3 + 0.3 * (fq * x1 + ph).cos();
                    let d2 = (x2 - c2).powi(2) + (x3 - c3).powi(2);
                    ves += (-d2 / 0.02).exp();
                }
                let val = envelope * (0.45 + 0.25 * sp) + 0.6 * ves * envelope;
                *f.at_mut(il, j, k) = val.clamp(0.0, 1.0);
            }
        }
    }
    f
}

/// A CLARITY registration pair: two "subjects" (different speckle + warp),
/// like the paper's Cocaine 175 → Control 189 registration. Collective.
pub fn pair(layout: Layout, comm: &mut Comm) -> (ScalarField, ScalarField) {
    let control = volume(layout, 189, comm);
    // the second subject: same anatomy class, different warp
    let base = volume(layout, 189, comm);
    let v = random_smooth_velocity(layout, 175, 0.3, 2);
    let mut interp = Interpolator::new(IpOrder::Cubic);
    let transport = Transport::new(4, IpOrder::Cubic);
    let traj = Trajectory::compute(&v, transport.nt, &mut interp, comm);
    let mut sol = transport.solve_state(&traj, &base, false, &mut interp, comm);
    let cocaine = sol.m.pop().unwrap();
    (cocaine, control)
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_grid::Grid;

    #[test]
    fn volume_has_high_frequency_content() {
        let layout = Layout::serial(Grid::new([16, 12, 12]));
        let mut comm = Comm::solo();
        let f = volume(layout, 189, &mut comm);
        assert!(f.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // speckle: neighbouring voxels differ much more than in a smooth
        // image — compare voxel-difference energy against total energy
        let mut diff_energy = 0.0f64;
        let mut count = 0;
        for i in 0..15 {
            for j in 0..12 {
                for k in 0..12 {
                    let d = f.at(i + 1, j, k) - f.at(i, j, k);
                    diff_energy += d * d;
                    count += 1;
                }
            }
        }
        let rms = (diff_energy / count as f64).sqrt();
        assert!(rms > 0.02, "speckle should produce voxel-scale variation: rms {rms}");
    }

    #[test]
    fn deterministic_per_seed() {
        let layout = Layout::serial(Grid::new([8, 8, 8]));
        let mut comm = Comm::solo();
        let a = volume(layout, 1, &mut comm);
        let b = volume(layout, 1, &mut comm);
        let c = volume(layout, 2, &mut comm);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn pair_is_registerable() {
        let layout = Layout::serial(Grid::new([16, 12, 12]));
        let mut comm = Comm::solo();
        let (m0, m1) = pair(layout, &mut comm);
        let mut d = m0.clone();
        d.axpy(-1.0, &m1);
        let rel = d.norm_l2(&mut comm) / m1.norm_l2(&mut comm);
        assert!(rel > 0.01 && rel < 1.0, "pair should differ but share anatomy: {rel}");
    }
}
