//! Registration-quality metrics.
//!
//! The NIREP evaluation protocol the paper builds on assesses registration
//! accuracy through volumetric overlap of anatomical labels; the paper
//! itself reports relative mismatch (Table 6) and states the achieved
//! accuracy equals prior CLAIRE work, which reports Dice overlap. These
//! helpers provide both.

use claire_grid::{Real, ScalarField};
use claire_mpi::Comm;

/// Dice–Sørensen overlap of the level sets `{a > threshold}` and
/// `{b > threshold}`: `2|A∩B| / (|A| + |B|)` ∈ [0, 1]. Collective.
pub fn dice(a: &ScalarField, b: &ScalarField, threshold: Real, comm: &mut Comm) -> f64 {
    let (mut inter, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
    for (&x, &y) in a.data().iter().zip(b.data()) {
        let ia = x > threshold;
        let ib = y > threshold;
        na += f64::from(ia as u8);
        nb += f64::from(ib as u8);
        inter += f64::from((ia && ib) as u8);
    }
    let mut sums = [inter, na, nb];
    comm.allreduce_sum(&mut sums);
    let denom = sums[1] + sums[2];
    if denom == 0.0 {
        1.0 // both sets empty: perfect (vacuous) agreement
    } else {
        2.0 * sums[0] / denom
    }
}

/// Jaccard index of the same level sets: `|A∩B| / |A∪B|`. Collective.
pub fn jaccard(a: &ScalarField, b: &ScalarField, threshold: Real, comm: &mut Comm) -> f64 {
    let d = dice(a, b, threshold, comm);
    if d == 0.0 {
        0.0
    } else {
        d / (2.0 - d)
    }
}

/// Relative L2 mismatch `‖a − b‖ / ‖r − b‖` (1.0 = no better than the
/// unregistered baseline `r`). Collective.
pub fn rel_mismatch(
    a: &ScalarField,
    b: &ScalarField,
    baseline: &ScalarField,
    comm: &mut Comm,
) -> f64 {
    let mut num = a.clone();
    num.axpy(-1.0, b);
    let mut den = baseline.clone();
    den.axpy(-1.0, b);
    num.norm_l2(comm) / den.norm_l2(comm).max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_grid::{Grid, Layout};

    fn ball(layout: Layout, cx: Real, r: Real) -> ScalarField {
        ScalarField::from_fn(layout, move |x, y, z| {
            let d2 = (x - cx).powi(2) + (y - 3.0).powi(2) + (z - 3.0).powi(2);
            if d2 < r * r {
                1.0
            } else {
                0.0
            }
        })
    }

    #[test]
    fn identical_sets_have_dice_one() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let a = ball(layout, 3.0, 1.0);
        assert!((dice(&a, &a, 0.5, &mut comm) - 1.0).abs() < 1e-12);
        assert!((jaccard(&a, &a, 0.5, &mut comm) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_sets_have_dice_zero() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let a = ball(layout, 1.0, 0.6);
        let b = ball(layout, 5.0, 0.6);
        assert_eq!(dice(&a, &b, 0.5, &mut comm), 0.0);
        assert_eq!(jaccard(&a, &b, 0.5, &mut comm), 0.0);
    }

    #[test]
    fn overlap_decreases_with_shift() {
        let layout = Layout::serial(Grid::cube(24));
        let mut comm = Comm::solo();
        let a = ball(layout, 3.0, 1.2);
        let near = ball(layout, 3.3, 1.2);
        let far = ball(layout, 4.2, 1.2);
        let d_near = dice(&a, &near, 0.5, &mut comm);
        let d_far = dice(&a, &far, 0.5, &mut comm);
        assert!(d_near > d_far, "{d_near} vs {d_far}");
        assert!(d_near > 0.7 && d_far < 0.7);
    }

    #[test]
    fn empty_sets_are_vacuously_perfect() {
        let layout = Layout::serial(Grid::cube(8));
        let mut comm = Comm::solo();
        let z = ScalarField::zeros(layout);
        assert_eq!(dice(&z, &z, 0.5, &mut comm), 1.0);
    }

    #[test]
    fn rel_mismatch_baseline_is_one() {
        let layout = Layout::serial(Grid::cube(8));
        let mut comm = Comm::solo();
        let a = ball(layout, 3.0, 1.0);
        let b = ball(layout, 3.5, 1.0);
        assert!((rel_mismatch(&a, &b, &a, &mut comm) - 1.0).abs() < 1e-12);
        assert_eq!(rel_mismatch(&b, &b, &a, &mut comm), 0.0);
    }
}
