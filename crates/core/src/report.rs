//! Registration reports — the rows of the paper's Table 6.

use serde::Serialize;

/// Everything Table 6 reports about one registration run, plus
//  diffeomorphism diagnostics and modeled (virtual-cluster) timings.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct RegistrationReport {
    /// Dataset label (e.g. `na02`).
    pub data: String,
    /// Preconditioner label (`InvA`, `InvH0`, `2LInvH0`).
    pub pc: String,
    /// Solver arithmetic width label (`f64` or `mixed`).
    pub precision: String,
    /// Global grid.
    pub grid: [usize; 3],
    /// Semi-Lagrangian time steps.
    pub nt: usize,
    /// Ranks (virtual GPUs).
    pub nranks: usize,
    /// Gauss–Newton iterations (`GN` column).
    pub gn_iters: usize,
    /// Accumulated PCG iterations (`PCG` column).
    pub pcg_iters: usize,
    /// Relative mismatch `‖m(1) − m1‖/‖m0 − m1‖` (`mism.` column).
    pub rel_mismatch: f64,
    /// Relative gradient norm (`‖g‖rel` column).
    pub grad_rel: f64,
    /// Applications of InvA (`[A]` column).
    pub n_inva: usize,
    /// Applications of InvH0/2LInvH0 (`[B|C]` column).
    pub n_invh0: usize,
    /// Inner PCG iterations to invert H0, total (`total` column).
    pub inner_cg_total: usize,
    /// Inner PCG iterations per application (`avg.` column).
    pub inner_cg_avg: f64,
    /// Wall seconds in the preconditioner (`PC`).
    pub time_pc: f64,
    /// Wall seconds in objective evaluations (`Obj`).
    pub time_obj: f64,
    /// Wall seconds in gradient evaluations (`Grad`).
    pub time_grad: f64,
    /// Wall seconds in Hessian matvecs (`Hess`).
    pub time_hess: f64,
    /// Wall seconds total (`Total`).
    pub time_total: f64,
    /// Modeled V100-cluster seconds, same breakdown.
    pub modeled_pc: f64,
    /// Modeled seconds in objective evaluations.
    pub modeled_obj: f64,
    /// Modeled seconds in gradient evaluations.
    pub modeled_grad: f64,
    /// Modeled seconds in Hessian matvecs.
    pub modeled_hess: f64,
    /// Modeled seconds total.
    pub modeled_total: f64,
    /// Minimum of `det(∇y)` (diffeomorphism check; must be > 0).
    pub jac_det_min: f64,
    /// Maximum of `det(∇y)`.
    pub jac_det_max: f64,
    /// Modeled memory per rank (paper formula, single-precision words).
    pub memory_bytes_per_rank: u64,
}

impl RegistrationReport {
    /// Table 6 header.
    pub fn header() -> String {
        format!(
            "{:8} {:8} {:>4} {:>5} {:>9} {:>9} {:>5} {:>5} {:>6} {:>5} | {:>8} {:>8} {:>8} {:>8} {:>8}",
            "data", "PC", "GN", "PCG", "mism.", "|g|_rel", "[A]", "[B|C]", "total", "avg.",
            "PC", "Obj", "Grad", "Hess", "Total"
        )
    }

    /// One Table 6 row (wall times).
    pub fn row(&self) -> String {
        format!(
            "{:8} {:8} {:>4} {:>5} {:>9.2e} {:>9.2e} {:>5} {:>5} {:>6} {:>5.1} | {:>8.2e} {:>8.2e} {:>8.2e} {:>8.2e} {:>8.2e}",
            self.data,
            self.pc,
            self.gn_iters,
            self.pcg_iters,
            self.rel_mismatch,
            self.grad_rel,
            self.n_inva,
            self.n_invh0,
            self.inner_cg_total,
            self.inner_cg_avg,
            self.time_pc,
            self.time_obj,
            self.time_grad,
            self.time_hess,
            self.time_total,
        )
    }

    /// One Table 6 row with *modeled* V100 timings (the paper-comparable
    /// numbers).
    pub fn row_modeled(&self) -> String {
        format!(
            "{:8} {:8} {:>4} {:>5} {:>9.2e} {:>9.2e} {:>5} {:>5} {:>6} {:>5.1} | {:>8.2e} {:>8.2e} {:>8.2e} {:>8.2e} {:>8.2e}",
            self.data,
            self.pc,
            self.gn_iters,
            self.pcg_iters,
            self.rel_mismatch,
            self.grad_rel,
            self.n_inva,
            self.n_invh0,
            self.inner_cg_total,
            self.inner_cg_avg,
            self.modeled_pc,
            self.modeled_obj,
            self.modeled_grad,
            self.modeled_hess,
            self.modeled_total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RegistrationReport {
        RegistrationReport {
            data: "na02".into(),
            pc: "2LInvH0".into(),
            precision: "f64".into(),
            grid: [32, 32, 32],
            nt: 4,
            nranks: 1,
            gn_iters: 14,
            pcg_iters: 28,
            rel_mismatch: 2.79e-2,
            grad_rel: 3.23e-2,
            n_inva: 3,
            n_invh0: 25,
            inner_cg_total: 294,
            inner_cg_avg: 11.8,
            time_pc: 1.04,
            time_obj: 0.205,
            time_grad: 0.435,
            time_hess: 1.52,
            time_total: 4.44,
            modeled_pc: 1.0,
            modeled_obj: 0.2,
            modeled_grad: 0.4,
            modeled_hess: 1.5,
            modeled_total: 4.4,
            jac_det_min: 0.4,
            jac_det_max: 2.1,
            memory_bytes_per_rank: 5_090_000_000,
        }
    }

    #[test]
    fn rows_render() {
        let r = sample();
        assert!(RegistrationReport::header().contains("PCG"));
        assert!(r.row().contains("2LInvH0"));
        assert!(r.row_modeled().contains("na02"));
    }

    #[test]
    fn serializes_to_json() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"gn_iters\":14"));
    }
}
