//! Hessian preconditioners: InvA, InvH0, 2LInvH0 (paper §2, Algorithm 1).
//!
//! * `InvA` — the spectral benchmark `s = (βA)⁻¹ r` (eq. 8): two FFTs and
//!   a Hadamard product per application.
//! * `InvH0` — the paper's zero-velocity preconditioner: approximately
//!   invert `H0 = βA + ∇m̄ ⊗ ∇m̄` (eq. 9) with an inner PCG that is
//!   left-preconditioned by `(βA)⁻¹` and runs to relative tolerance
//!   `εH0·εK`. The matvec needs **no PDE solves** — this is the whole
//!   point: each outer Hessian application costs two transport solves, an
//!   H0 application costs two FFTs.
//! * `2LInvH0` — the two-level variant: restrict the residual and `∇m̄` to
//!   a half-resolution grid, solve (9) there, prolong, and add the
//!   high-frequency part of `(βA)⁻¹ r` (Algorithm 1).
//!
//! Two refinements from the paper are implemented: `m̄` is the *deformed
//! template at the current iterate* (refreshed each Gauss–Newton
//! iteration), and β inside H0 is floored at 5e−2 ("if β < 5e−2, we set β
//! in (9) to 5e−2"), which keeps the preconditioner effective for
//! vanishing β.

use std::sync::Arc;

use claire_diff::{Spectral, SpectralT, TwoLevel, TwoLevelT};
use claire_fft::FftElem;
use claire_grid::{Real, ScalarField, ScalarFieldT, VectorField, VectorFieldT, WsCat};
use claire_mpi::Comm;
use claire_opt::{pcg, PcgConfig, PcgOperator};

use crate::config::{Precision, PrecondKind, RegistrationConfig};
use crate::problem::SolverScaffold;

/// The zero-velocity Hessian `H0 = βA + ∇m̄ ⊗ ∇m̄` on one grid, generic over
/// element width (f64 for the standard path, f32 for the mixed-precision
/// inner solve).
struct H0Ops<'a, T: FftElem = Real> {
    spectral: &'a SpectralT<T>,
    grad_mbar: &'a VectorFieldT<T>,
    beta: f64,
}

impl<T: FftElem> PcgOperator<T> for H0Ops<'_, T> {
    fn apply(&mut self, s: &VectorFieldT<T>, comm: &mut Comm) -> VectorFieldT<T> {
        let mut out = self.spectral.reg_apply(s, self.beta, comm);
        // rank-one-per-point term: ∇m̄ (∇m̄ · s)
        let layout = *s.layout();
        let mut w = ScalarFieldT::zeros(layout);
        for d in 0..3 {
            w.add_scaled_product(T::ONE, &self.grad_mbar.c[d], &s.c[d]);
        }
        for d in 0..3 {
            out.c[d].add_scaled_product(T::ONE, &self.grad_mbar.c[d], &w);
        }
        out
    }

    /// Left preconditioner `(βA)⁻¹` — "this adds vanishing computational
    /// costs".
    fn prec(&mut self, r: &VectorFieldT<T>, comm: &mut Comm) -> VectorFieldT<T> {
        self.spectral.reg_inv(r, self.beta, comm)
    }
}

/// f32 mirrors for the mixed-precision inner solve: the spectral operators
/// are planned at f32 width (plans cached per width, shared process-wide),
/// and `∇m̄` is demoted on every [`PrecondState::refresh`]. Built only when
/// [`RegistrationConfig::precision`] is [`Precision::Mixed`].
struct MixedMirror {
    /// Fine-grid spectral operators at f32.
    spectral: SpectralT<f32>,
    /// Grid transfers at f32 (2LInvH0 only).
    two_level: Option<TwoLevelT<f32>>,
    /// Coarse-grid spectral operators at f32 (2LInvH0 only).
    spectral_c: Option<SpectralT<f32>>,
    /// `∇m̄` demoted to f32 (refreshed with the f64 original).
    grad_mbar: VectorFieldT<f32>,
    /// Coarse `∇m̄` demoted to f32 (2LInvH0 only).
    grad_mbar_c: Option<VectorFieldT<f32>>,
}

impl MixedMirror {
    /// Plan the f32 mirrors; demotes the freshly computed fine/coarse `∇m̄`.
    fn new(
        kind: PrecondKind,
        grid: claire_grid::Grid,
        grad_mbar: &VectorField,
        grad_mbar_c: Option<&VectorField>,
        comm: &mut Comm,
    ) -> MixedMirror {
        let spectral = SpectralT::<f32>::new(grid, comm);
        let (two_level, spectral_c) = if kind == PrecondKind::TwoLevelInvH0 {
            let tl = TwoLevelT::<f32>::new(grid, comm);
            let sc = SpectralT::<f32>::new(tl.coarse_grid(), comm);
            (Some(tl), Some(sc))
        } else {
            (None, None)
        };
        MixedMirror {
            spectral,
            two_level,
            spectral_c,
            grad_mbar: grad_mbar.converted(WsCat::GnCg),
            grad_mbar_c: grad_mbar_c.map(|g| g.converted(WsCat::GnCg)),
        }
    }
}

/// Preconditioner state and application counters (Table 6 columns).
pub struct PrecondState {
    /// Configured kind for β ≤ 5e−1.
    pub kind: PrecondKind,
    eps_h0: f64,
    beta_floor: f64,
    max_inner: usize,
    /// `∇m̄` on the fine grid (m̄ = deformed template at current iterate).
    grad_mbar: VectorField,
    /// Grid-transfer operators (2LInvH0 only); `Arc` so a batch of
    /// problems on one grid shares one set.
    two_level: Option<Arc<TwoLevel>>,
    /// Spectral operators on the coarse grid (2LInvH0 only); shared like
    /// `two_level`.
    spectral_c: Option<Arc<Spectral>>,
    /// `∇m̄` restricted to the coarse grid (2LInvH0 only).
    grad_mbar_c: Option<VectorField>,
    /// Persistent FD scratch so per-iteration refreshes reuse ghost/tmp
    /// buffers instead of allocating.
    fd_scratch: claire_diff::fd::FdScratch,
    /// f32 operator/field mirrors (mixed precision only).
    mixed: Option<MixedMirror>,
    /// Applications of InvA (`[A]` column; includes continuation levels
    /// with β > 5e−1).
    pub n_inva: usize,
    /// Applications of InvH0 / 2LInvH0 (`[B|C]` column).
    pub n_invh0: usize,
    /// Total inner PCG iterations spent inverting H0.
    pub inner_iters: usize,
}

impl PrecondState {
    /// Build preconditioner state; `m0` seeds `m̄` before the first
    /// Gauss–Newton iteration. Collective.
    pub fn new(cfg: &RegistrationConfig, m0: &ScalarField, comm: &mut Comm) -> PrecondState {
        let grid = m0.layout().grid;
        let grad_mbar = claire_diff::fd::gradient(m0, comm);
        let (two_level, spectral_c, grad_mbar_c) = if cfg.precond == PrecondKind::TwoLevelInvH0 {
            let tl = Arc::new(TwoLevel::new(grid, comm));
            let sc = Arc::new(Spectral::new(tl.coarse_grid(), comm));
            let gc = tl.restrict_vector(&grad_mbar, comm);
            (Some(tl), Some(sc), Some(gc))
        } else {
            (None, None, None)
        };
        let mixed = (cfg.precision == Precision::Mixed)
            .then(|| MixedMirror::new(cfg.precond, grid, &grad_mbar, grad_mbar_c.as_ref(), comm));
        PrecondState {
            kind: cfg.precond,
            eps_h0: cfg.eps_h0,
            beta_floor: cfg.beta_floor,
            max_inner: cfg.max_inner_iter,
            grad_mbar,
            two_level,
            spectral_c,
            grad_mbar_c,
            fd_scratch: claire_diff::fd::FdScratch::new(),
            mixed,
            n_inva: 0,
            n_invh0: 0,
            inner_iters: 0,
        }
    }

    /// [`PrecondState::new`] drawing the grid-dependent scaffolding
    /// (`TwoLevel`, coarse `Spectral`) from a shared [`SolverScaffold`]
    /// instead of building private copies. Only the per-pair `∇m̄` fields
    /// are computed here. Collective.
    pub(crate) fn with_scaffold(
        cfg: &RegistrationConfig,
        m0: &ScalarField,
        scaffold: &SolverScaffold,
        comm: &mut Comm,
    ) -> PrecondState {
        let grad_mbar = claire_diff::fd::gradient(m0, comm);
        let (two_level, spectral_c, grad_mbar_c) = if cfg.precond == PrecondKind::TwoLevelInvH0 {
            match (&scaffold.two_level, &scaffold.spectral_c) {
                (Some(tl), Some(sc)) => {
                    let gc = tl.restrict_vector(&grad_mbar, comm);
                    (Some(Arc::clone(tl)), Some(Arc::clone(sc)), Some(gc))
                }
                // scaffold built for a different preconditioner kind:
                // fall back to private copies
                _ => {
                    let tl = Arc::new(TwoLevel::new(m0.layout().grid, comm));
                    let sc = Arc::new(Spectral::new(tl.coarse_grid(), comm));
                    let gc = tl.restrict_vector(&grad_mbar, comm);
                    (Some(tl), Some(sc), Some(gc))
                }
            }
        } else {
            (None, None, None)
        };
        let mixed = (cfg.precision == Precision::Mixed).then(|| {
            MixedMirror::new(cfg.precond, m0.layout().grid, &grad_mbar, grad_mbar_c.as_ref(), comm)
        });
        PrecondState {
            kind: cfg.precond,
            eps_h0: cfg.eps_h0,
            beta_floor: cfg.beta_floor,
            max_inner: cfg.max_inner_iter,
            grad_mbar,
            two_level,
            spectral_c,
            grad_mbar_c,
            fd_scratch: claire_diff::fd::FdScratch::new(),
            mixed,
            n_inva: 0,
            n_invh0: 0,
            inner_iters: 0,
        }
    }

    /// Refresh `m̄` with the current deformed template (paper: "we replace
    /// m0 in (9) with the deformed template image obtained for the current
    /// iterate"). Collective.
    pub fn refresh(&mut self, mbar: &ScalarField, comm: &mut Comm) {
        if self.kind == PrecondKind::InvA {
            return; // InvA never uses m̄
        }
        claire_diff::fd::gradient_into(mbar, comm, &mut self.grad_mbar, &mut self.fd_scratch);
        if let Some(tl) = &self.two_level {
            self.grad_mbar_c = Some(tl.restrict_vector(&self.grad_mbar, comm));
        }
        // keep the f32 mirrors in lockstep: demote in place (pooled, no
        // steady-state allocation)
        if let Some(mx) = &mut self.mixed {
            mx.grad_mbar.convert_from(&self.grad_mbar);
            if let (Some(gc32), Some(gc)) = (&mut mx.grad_mbar_c, &self.grad_mbar_c) {
                gc32.convert_from(gc);
            }
        }
    }

    /// Whether the f32 mirrors are available (mixed-precision configured).
    pub fn has_mixed(&self) -> bool {
        self.mixed.is_some()
    }

    /// Effective kind at the current β: the continuation always uses InvA
    /// while the problem is regularization-dominated (β > 5e−1).
    pub fn effective_kind(&self, beta: f64) -> PrecondKind {
        if beta > 5e-1 {
            PrecondKind::InvA
        } else {
            self.kind
        }
    }

    /// Average inner PCG iterations per InvH0 application.
    pub fn inner_avg(&self) -> f64 {
        if self.n_invh0 == 0 {
            0.0
        } else {
            self.inner_iters as f64 / self.n_invh0 as f64
        }
    }

    /// Apply the preconditioner to Krylov residual `r` at the current β
    /// with outer tolerance `eps_k`. Collective.
    pub fn apply(
        &mut self,
        r: &VectorField,
        eps_k: f64,
        beta: f64,
        spectral: &Spectral,
        comm: &mut Comm,
    ) -> VectorField {
        match self.effective_kind(beta) {
            PrecondKind::InvA => {
                self.n_inva += 1;
                spectral.reg_inv(r, beta, comm)
            }
            PrecondKind::InvH0 => {
                self.n_invh0 += 1;
                let beta_h0 = beta.max(self.beta_floor);
                let x0 = spectral.reg_inv(r, beta_h0, comm);
                let cfg = PcgConfig {
                    tol_rel: (self.eps_h0 * eps_k).min(0.5),
                    max_iter: self.max_inner,
                    trace: false,
                };
                let mut ops = H0Ops { spectral, grad_mbar: &self.grad_mbar, beta: beta_h0 };
                let (s, res) = pcg(r, Some(&x0), &cfg, &mut ops, comm);
                self.inner_iters += res.iters;
                s
            }
            PrecondKind::TwoLevelInvH0 => {
                self.n_invh0 += 1;
                let beta_h0 = beta.max(self.beta_floor);
                let tl = self.two_level.as_ref().expect("2LInvH0 state missing");
                let sc_ops = self.spectral_c.as_ref().expect("coarse spectral missing");
                let gc = self.grad_mbar_c.as_ref().expect("coarse ∇m̄ missing");

                // sf ← (βA)⁻¹ r
                let sf = spectral.reg_inv(r, beta_h0, comm);
                // coarse solve of (9) with restricted residual
                let rc = tl.restrict_vector(r, comm);
                let x0c = tl.restrict_vector(&sf, comm);
                let cfg = PcgConfig {
                    tol_rel: (self.eps_h0 * eps_k).min(0.5),
                    max_iter: self.max_inner,
                    trace: false,
                };
                let mut ops = H0Ops { spectral: sc_ops.as_ref(), grad_mbar: gc, beta: beta_h0 };
                let (sc, res) = pcg(&rc, Some(&x0c), &cfg, &mut ops, comm);
                self.inner_iters += res.iters;
                // sf ← PROLONG(sc) + HIGHPASS(sf)
                let mut out = tl.prolong_vector(&sc, comm);
                let high = tl.highpass_vector(&sf, comm);
                out.axpy(1.0, &high);
                out
            }
        }
    }

    /// [`PrecondState::apply`] at f32 width — the mixed-precision inner
    /// solve path. Spectral work, the inner H0 PCG, and (for 2LInvH0) the
    /// grid-transfer collectives all run on f32 fields, halving their
    /// memory and wire traffic. Returns `None` when the f32 mirrors were
    /// not built (precision is `F64`); callers fall back to
    /// promote-apply-demote. Collective.
    pub fn apply32(
        &mut self,
        r: &VectorFieldT<f32>,
        eps_k: f64,
        beta: f64,
        comm: &mut Comm,
    ) -> Option<VectorFieldT<f32>> {
        let mx = self.mixed.as_ref()?;
        Some(match self.effective_kind(beta) {
            PrecondKind::InvA => {
                self.n_inva += 1;
                mx.spectral.reg_inv(r, beta, comm)
            }
            PrecondKind::InvH0 => {
                self.n_invh0 += 1;
                let beta_h0 = beta.max(self.beta_floor);
                let x0 = mx.spectral.reg_inv(r, beta_h0, comm);
                let cfg = PcgConfig {
                    tol_rel: (self.eps_h0 * eps_k).min(0.5),
                    max_iter: self.max_inner,
                    trace: false,
                };
                let mut ops =
                    H0Ops { spectral: &mx.spectral, grad_mbar: &mx.grad_mbar, beta: beta_h0 };
                let (s, res) = pcg(r, Some(&x0), &cfg, &mut ops, comm);
                self.inner_iters += res.iters;
                s
            }
            PrecondKind::TwoLevelInvH0 => {
                self.n_invh0 += 1;
                let beta_h0 = beta.max(self.beta_floor);
                let tl = mx.two_level.as_ref().expect("2LInvH0 f32 state missing");
                let sc_ops = mx.spectral_c.as_ref().expect("coarse f32 spectral missing");
                let gc = mx.grad_mbar_c.as_ref().expect("coarse f32 ∇m̄ missing");

                // sf ← (βA)⁻¹ r
                let sf = mx.spectral.reg_inv(r, beta_h0, comm);
                // coarse solve of (9) with restricted residual
                let rc = tl.restrict_vector(r, comm);
                let x0c = tl.restrict_vector(&sf, comm);
                let cfg = PcgConfig {
                    tol_rel: (self.eps_h0 * eps_k).min(0.5),
                    max_iter: self.max_inner,
                    trace: false,
                };
                let mut ops = H0Ops { spectral: sc_ops, grad_mbar: gc, beta: beta_h0 };
                let (sc, res) = pcg(&rc, Some(&x0c), &cfg, &mut ops, comm);
                self.inner_iters += res.iters;
                // sf ← PROLONG(sc) + HIGHPASS(sf)
                let mut out = tl.prolong_vector(&sc, comm);
                let high = tl.highpass_vector(&sf, comm);
                out.axpy(1.0, &high);
                out
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use claire_grid::{Grid, Layout};

    fn setup(kind: PrecondKind, comm: &mut Comm) -> (PrecondState, Spectral, Layout) {
        let layout = Layout::serial(Grid::cube(16));
        let m0 = ScalarField::from_fn(layout, |x, y, z| {
            (-((x - 3.0).powi(2) + (y - 3.0).powi(2) + (z - 3.0).powi(2))).exp()
        });
        let cfg = RegistrationConfig { precond: kind, ..Default::default() };
        let pc = PrecondState::new(&cfg, &m0, comm);
        let sp = Spectral::new(layout.grid, comm);
        (pc, sp, layout)
    }

    fn probe(layout: Layout) -> VectorField {
        VectorField::from_fns(
            layout,
            |x, _, _| x.sin(),
            |_, y, _| (2.0 * y).cos(),
            |_, _, z| 0.3 * z.sin(),
        )
    }

    #[test]
    fn inva_is_exact_inverse_of_reg() {
        let mut comm = Comm::solo();
        let (mut pc, sp, layout) = setup(PrecondKind::InvA, &mut comm);
        let beta = 0.1;
        let v = probe(layout);
        let av = sp.reg_apply(&v, beta, &mut comm);
        let back = pc.apply(&av, 0.5, beta, &sp, &mut comm);
        let mut d = back.clone();
        d.axpy(-1.0, &v);
        assert!(d.norm_l2(&mut comm) < 1e-8);
        assert_eq!(pc.n_inva, 1);
    }

    #[test]
    fn invh0_approximately_inverts_h0() {
        let mut comm = Comm::solo();
        let (mut pc, sp, layout) = setup(PrecondKind::InvH0, &mut comm);
        let beta = 0.1;
        let v = probe(layout);
        // r = H0 v
        let gm = pc.grad_mbar.clone();
        let mut ops = H0Ops { spectral: &sp, grad_mbar: &gm, beta };
        let r = ops.apply(&v, &mut comm);
        let s = pc.apply(&r, 1e-3, beta, &sp, &mut comm);
        let mut d = s.clone();
        d.axpy(-1.0, &v);
        let rel = d.norm_l2(&mut comm) / v.norm_l2(&mut comm);
        assert!(rel < 1e-3, "InvH0 should invert H0 accurately: rel {rel}");
        assert!(pc.inner_iters > 0);
        assert_eq!(pc.n_invh0, 1);
    }

    #[test]
    fn beta_floor_respected() {
        // With β far below the floor, InvH0 must still act like a bounded
        // operator (the floored system), not blow up.
        let mut comm = Comm::solo();
        let (mut pc, sp, layout) = setup(PrecondKind::InvH0, &mut comm);
        let beta = 1e-5; // << 5e-2 floor
        let r = probe(layout);
        let s = pc.apply(&r, 0.1, beta, &sp, &mut comm);
        let amp = s.norm_l2(&mut comm) / r.norm_l2(&mut comm);
        // (β_floor·A)⁻¹ caps amplification at 1/(β_floor·(1+0)) = 20
        assert!(amp < 25.0, "amplification {amp} suggests the floor was ignored");
    }

    #[test]
    fn two_level_matches_fine_on_smooth_residuals() {
        let mut comm = Comm::solo();
        let (mut pc2, sp, layout) = setup(PrecondKind::TwoLevelInvH0, &mut comm);
        let (mut pc1, _, _) = setup(PrecondKind::InvH0, &mut comm);
        let beta = 0.1;
        // a residual with only low-frequency content
        let r = VectorField::from_fns(
            layout,
            |x, _, _| x.sin(),
            |_, y, _| y.cos(),
            |_, _, z| (2.0 * z).sin(),
        );
        let s1 = pc1.apply(&r, 1e-4, beta, &sp, &mut comm);
        let s2 = pc2.apply(&r, 1e-4, beta, &sp, &mut comm);
        let mut d = s1.clone();
        d.axpy(-1.0, &s2);
        let rel = d.norm_l2(&mut comm) / s1.norm_l2(&mut comm);
        assert!(rel < 0.1, "2LInvH0 should agree with InvH0 on smooth data: rel {rel}");
    }

    #[test]
    fn continuation_switch_to_inva_for_large_beta() {
        let mut comm = Comm::solo();
        let (mut pc, sp, layout) = setup(PrecondKind::TwoLevelInvH0, &mut comm);
        assert_eq!(pc.effective_kind(1.0), PrecondKind::InvA);
        assert_eq!(pc.effective_kind(0.1), PrecondKind::TwoLevelInvH0);
        let r = probe(layout);
        let _ = pc.apply(&r, 0.5, 1.0, &sp, &mut comm);
        assert_eq!((pc.n_inva, pc.n_invh0), (1, 0));
        let _ = pc.apply(&r, 0.5, 0.1, &sp, &mut comm);
        assert_eq!((pc.n_inva, pc.n_invh0), (1, 1));
    }
}
