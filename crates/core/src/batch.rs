//! Batched multi-pair registration: K solves on one grid, interleaved at
//! Gauss–Newton-iteration granularity.
//!
//! Per-solve setup — FFT plans, workspace-pool warm-up, preconditioner
//! scaffolding (`TwoLevel` transfer operators, coarse spectral symbols) —
//! is identical for every image pair on the same grid. [`BatchSolver`]
//! amortizes it: one [`SolverScaffold`](crate::problem::SolverScaffold) and
//! one warm pool/plan family back all K pairs, and the pairs' Gauss–Newton
//! iterations run round-robin (pair 1 iter i, pair 2 iter i, …) so the hot
//! working set of each kernel stays cache- and pool-resident across pairs.
//! Pairs retire as soon as their own continuation schedule converges; the
//! rest keep iterating.
//!
//! The arithmetic is *identical* to K independent [`Claire`](crate::Claire)
//! solves: each pair has its own [`RegProblem`], its own β-continuation
//! state, and steps through the same [`GnState`] loop body — interleaving
//! only changes the order in which independent solves touch the shared
//! (immutable) scaffolding. `tests/batch_equivalence.rs` pins this down
//! bitwise on both SIMD backends.
//!
//! Per-pair [`SolverHooks`] (cancellation, deadlines, iteration observers)
//! fire at that pair's own iteration boundaries, exactly as in the
//! sequential driver; a cancelled pair retires early with
//! [`ClaireError::Cancelled`] while the rest of the batch continues.

use std::time::Instant;

use claire_fft::cache as fft_cache;
use claire_grid::{workspace, ClaireError, ClaireResult, ScalarField, VectorField};
use claire_mpi::Comm;
use claire_obs::{records, span::span};
use claire_opt::{GnConfig, GnState, GnStats};

use crate::config::RegistrationConfig;
use crate::problem::{RegProblem, SolverScaffold};
use crate::report::RegistrationReport;
use crate::solver::{
    accumulate, build_report, coarse_solvable, level_gn_config, CancelToken, SolverHooks,
};

/// One registration job in a batch: a (template, reference) pair plus its
/// own control hooks.
pub struct BatchPair {
    /// Dataset label for the pair's report.
    pub label: String,
    /// Template image `m0`.
    pub template: ScalarField,
    /// Reference image `m1`.
    pub reference: ScalarField,
    /// Per-pair cancellation/observation hooks.
    pub hooks: SolverHooks,
}

impl BatchPair {
    /// A pair with default (empty) hooks.
    pub fn new(label: impl Into<String>, template: ScalarField, reference: ScalarField) -> Self {
        BatchPair { label: label.into(), template, reference, hooks: SolverHooks::default() }
    }

    /// Attach hooks (builder style).
    pub fn with_hooks(mut self, hooks: SolverHooks) -> Self {
        self.hooks = hooks;
        self
    }
}

/// Pool and plan-cache activity attributed to one batch member.
///
/// The pools and the FFT plan cache are process-global, so their raw
/// counters cover the whole batch. Because the interleave is sequential
/// within one [`BatchSolver::solve`] call, sampling the counters around
/// each member's own steps yields **exact per-member deltas** for event
/// counts (checkouts, misses, plan hits). Byte *levels* (peak, in-use) are
/// properties of the shared pool family and are deliberately not split per
/// member — summing them across members would double-count shared buffers.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemberMemStats {
    /// Pool checkouts by this member, per [`workspace::WsCat`] index.
    pub cat_checkouts: [u64; 6],
    /// Pool misses (fresh allocations) by this member, per category index.
    pub cat_misses: [u64; 6],
    /// FFT plan-cache hits during this member's construction and steps.
    pub fft_plan_hits: u64,
    /// FFT plan-cache misses (plans computed) for this member.
    pub fft_plan_misses: u64,
}

impl MemberMemStats {
    /// Total pool checkouts across categories.
    pub fn pool_checkouts(&self) -> u64 {
        self.cat_checkouts.iter().sum()
    }

    /// Total pool misses across categories.
    pub fn pool_misses(&self) -> u64 {
        self.cat_misses.iter().sum()
    }

    fn add_delta(
        &mut self,
        ws0: &[workspace::CatStats; 6],
        ws1: &[workspace::CatStats; 6],
        fft0: fft_cache::CacheStats,
        fft1: fft_cache::CacheStats,
    ) {
        for i in 0..6 {
            self.cat_checkouts[i] += ws1[i].checkouts.saturating_sub(ws0[i].checkouts);
            self.cat_misses[i] += ws1[i].misses.saturating_sub(ws0[i].misses);
        }
        self.fft_plan_hits += fft1.hits.saturating_sub(fft0.hits);
        self.fft_plan_misses += fft1.misses.saturating_sub(fft0.misses);
    }
}

/// Whole-batch accounting.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchStats {
    /// Number of pairs in the batch.
    pub pairs: usize,
    /// Interleave rounds executed (a round steps every active pair once).
    pub rounds: usize,
    /// Seconds spent on shared + per-pair setup (scaffold planning, problem
    /// construction) across all grid levels. Amortized over `pairs`.
    pub setup_secs: f64,
    /// Seconds spent in the interleaved iterations and report assembly.
    pub solve_secs: f64,
}

/// Result for one batch member.
pub struct BatchItem {
    /// The pair's label, as submitted.
    pub label: String,
    /// The solve result: velocity + report, or the per-pair error
    /// (cancellation, deadline, invalid input).
    pub outcome: ClaireResult<(VectorField, RegistrationReport)>,
    /// Gauss–Newton statistics accumulated over the pair's β-levels on the
    /// finest grid (default-empty when the pair failed before iterating).
    pub gn: GnStats,
    /// Pool/plan-cache activity attributed to this member.
    pub memory: MemberMemStats,
}

/// The full outcome of a batch solve: one item per pair, same order as
/// submitted, plus whole-batch stats.
pub struct BatchOutcome {
    /// Per-pair results, in submission order.
    pub items: Vec<BatchItem>,
    /// Whole-batch accounting.
    pub stats: BatchStats,
}

/// Registration solver for K pairs sharing one grid and configuration.
///
/// ```no_run
/// # use claire_core::{batch::{BatchPair, BatchSolver}, RegistrationConfig};
/// # use claire_grid::{Grid, Layout, ScalarField};
/// # let layout = Layout::serial(Grid::cube(16));
/// # let (m0a, m1a) = (ScalarField::zeros(layout), ScalarField::zeros(layout));
/// # let (m0b, m1b) = (ScalarField::zeros(layout), ScalarField::zeros(layout));
/// let solver = BatchSolver::new(RegistrationConfig::default());
/// let outcome = solver
///     .solve(vec![BatchPair::new("a", m0a, m1a), BatchPair::new("b", m0b, m1b)])
///     .unwrap();
/// for item in &outcome.items {
///     let (v, report) = item.outcome.as_ref().unwrap();
///     println!("{}: mismatch {:.3}", item.label, report.rel_mismatch);
/// }
/// ```
pub struct BatchSolver {
    /// Configuration applied to every pair.
    pub cfg: RegistrationConfig,
    thread_budget: usize,
}

impl BatchSolver {
    /// New batch solver; every pair uses `cfg`.
    pub fn new(cfg: RegistrationConfig) -> BatchSolver {
        BatchSolver { cfg, thread_budget: 0 }
    }

    /// Cap the worker threads the whole batch may use (0 = inherit the
    /// ambient budget). A batch is *one* unit of schedulable work: without
    /// a cap, a K-pair batch on a claire-serve worker would inherit the
    /// worker's single-job slice and still be just one kernel at a time —
    /// correct — but an explicit budget lets the scheduler hand a batch the
    /// slice it actually merged (e.g. the K jobs' combined share) without
    /// oversubscribing claire-par.
    pub fn with_thread_budget(mut self, threads: usize) -> BatchSolver {
        self.thread_budget = threads;
        self
    }

    /// Solve all `pairs`. Returns per-pair outcomes in submission order;
    /// the call itself only fails for batch-level misuse (empty batch,
    /// mixed layouts, invalid config) — per-pair failures (cancellation,
    /// deadlines) are reported inside the affected [`BatchItem`] while the
    /// remaining pairs complete normally.
    pub fn solve(&self, pairs: Vec<BatchPair>) -> ClaireResult<BatchOutcome> {
        self.cfg.validate()?;
        if pairs.is_empty() {
            return Err(ClaireError::Config {
                param: "batch",
                message: "batch must contain at least one pair".into(),
            });
        }
        let layout = *pairs[0].template.layout();
        for p in &pairs {
            if *p.template.layout() != layout || *p.reference.layout() != layout {
                return Err(ClaireError::LayoutMismatch {
                    context: "BatchSolver::solve",
                    message: format!(
                        "all batch members must share one grid/layout; pair {:?} differs \
                         from the batch grid {:?}",
                        p.label, layout.grid.n
                    ),
                });
            }
        }
        if self.thread_budget > 0 {
            claire_par::with_local_threads(self.thread_budget, || self.solve_inner(pairs))
        } else {
            self.solve_inner(pairs)
        }
    }

    fn solve_inner(&self, pairs: Vec<BatchPair>) -> ClaireResult<BatchOutcome> {
        let _batch_span = span("batch.solve");
        let k = pairs.len();
        let t0 = Instant::now();
        let mut comms: Vec<Comm> = (0..k).map(|_| Comm::solo()).collect();
        let mut mem: Vec<MemberMemStats> = vec![MemberMemStats::default(); k];
        let mut rounds = 0usize;
        let mut setup_secs = 0.0f64;

        let labels: Vec<String> = pairs.iter().map(|p| p.label.clone()).collect();
        let inputs: Vec<PairInput> = pairs
            .into_iter()
            .map(|p| PairInput {
                label: p.label,
                hooks: p.hooks,
                m0: p.template,
                m1: p.reference,
                v_init: None,
            })
            .collect();

        let results =
            solve_level(&self.cfg, inputs, &mut comms, &mut mem, &mut rounds, &mut setup_secs);

        let mut items = Vec::with_capacity(k);
        for (((res, label), comm), mem) in
            results.into_iter().zip(labels).zip(comms.iter_mut()).zip(mem)
        {
            let item = match res {
                Ok((mut problem, v, stats)) => {
                    let report = build_report(&self.cfg, &mut problem, &v, &label, comm, &stats);
                    BatchItem { label, outcome: Ok((v, report)), gn: stats, memory: mem }
                }
                Err(e) => BatchItem { label, outcome: Err(e), gn: GnStats::default(), memory: mem },
            };
            items.push(item);
        }
        let solve_secs = (t0.elapsed().as_secs_f64() - setup_secs).max(0.0);
        Ok(BatchOutcome { items, stats: BatchStats { pairs: k, rounds, setup_secs, solve_secs } })
    }
}

/// One pair's inputs for a grid level.
struct PairInput {
    label: String,
    hooks: SolverHooks,
    m0: ScalarField,
    m1: ScalarField,
    v_init: Option<VectorField>,
}

type PairResult = Result<(RegProblem, VectorField, GnStats), ClaireError>;

/// Solve every pair on the inputs' grid (recursing to the half-resolution
/// grid first when grid continuation applies, exactly like
/// `Claire::try_register_from`). Returns per-pair results in order.
fn solve_level(
    cfg: &RegistrationConfig,
    mut inputs: Vec<PairInput>,
    comms: &mut [Comm],
    mem: &mut [MemberMemStats],
    rounds: &mut usize,
    setup_secs: &mut f64,
) -> Vec<PairResult> {
    let layout = *inputs[0].m0.layout();
    let k = inputs.len();
    let mut failed: Vec<Option<ClaireError>> = (0..k).map(|_| None).collect();

    // coarse-to-fine grid continuation: solve the whole batch at half
    // resolution first, prolonging each velocity as that pair's warm start
    if cfg.grid_continuation && coarse_solvable(&layout) {
        let tl = claire_diff::TwoLevel::new(layout.grid, &comms[0]);
        let mut coarse_cfg = *cfg;
        coarse_cfg.grid_continuation = layout.grid.n.iter().all(|&n| n >= 16);
        let coarse_inputs: Vec<PairInput> = inputs
            .iter_mut()
            .zip(comms.iter_mut())
            .map(|(p, comm)| PairInput {
                label: p.label.clone(),
                hooks: p.hooks.clone(),
                m0: tl.restrict(&p.m0, comm),
                m1: tl.restrict(&p.m1, comm),
                v_init: p.v_init.take(),
            })
            .collect();
        let coarse = solve_level(&coarse_cfg, coarse_inputs, comms, mem, rounds, setup_secs);
        for (i, res) in coarse.into_iter().enumerate() {
            match res {
                Ok((_, vc, _)) => inputs[i].v_init = Some(tl.prolong_vector(&vc, &mut comms[i])),
                Err(e) => failed[i] = Some(e),
            }
        }
    }

    // shared per-grid scaffolding (FFT symbols, 2LInvH0 transfer operators)
    let t_setup = Instant::now();
    let scaffold = SolverScaffold::new(cfg, layout.grid, &mut comms[0]);
    let betas = cfg.beta_schedule();
    let gn_cfg = level_gn_config(cfg);

    let mut out: Vec<Option<PairResult>> = (0..k).map(|_| None).collect();
    let mut drivers: Vec<Option<PairDriver>> = Vec::with_capacity(k);
    for (i, p) in inputs.into_iter().enumerate() {
        if let Some(e) = failed[i].take() {
            out[i] = Some(Err(e));
            drivers.push(None);
            continue;
        }
        let ws0 = workspace::stats();
        let fft0 = fft_cache::stats();
        match RegProblem::with_scaffold(p.m0, p.m1, *cfg, &scaffold, &mut comms[i]) {
            Ok(mut problem) => {
                problem.set_beta(betas[0]);
                let state =
                    GnState::new(p.v_init.unwrap_or_else(|| VectorField::zeros(layout)), &gn_cfg);
                let hooked = p.hooks.cancel.is_some() || p.hooks.on_gn_iter.is_some();
                // reserve the whole-run histories up front so retiring a
                // pair (accumulate on level close) never allocates inside
                // a measured interleave round
                let mut total = GnStats::default();
                let cap = betas.len() * (gn_cfg.max_iter + 1);
                total.grad_rel_history.reserve(cap);
                total.objective_history.reserve(cap);
                drivers.push(Some(PairDriver {
                    hooks: p.hooks,
                    hooked,
                    problem,
                    state: Some(state),
                    v: None,
                    level: 0,
                    base: 0,
                    total,
                    outcome_err: None,
                    done: false,
                }));
            }
            Err(e) => {
                out[i] = Some(Err(e));
                drivers.push(None);
            }
        }
        mem[i].add_delta(&ws0, &workspace::stats(), fft0, fft_cache::stats());
    }
    *setup_secs += t_setup.elapsed().as_secs_f64();

    // the interleave: step every active pair once per round
    loop {
        let mut any = false;
        for (i, slot) in drivers.iter_mut().enumerate() {
            let Some(drv) = slot else { continue };
            if drv.done {
                continue;
            }
            any = true;
            let ws0 = workspace::stats();
            let fft0 = fft_cache::stats();
            drv.advance(cfg, &gn_cfg, &betas, &mut comms[i]);
            mem[i].add_delta(&ws0, &workspace::stats(), fft0, fft_cache::stats());
        }
        if !any {
            break;
        }
        *rounds += 1;
    }

    for (i, slot) in drivers.into_iter().enumerate() {
        if let Some(drv) = slot {
            out[i] = Some(match drv.outcome_err {
                Some(e) => Err(e),
                None => Ok((
                    drv.problem,
                    drv.v.expect("finished driver holds final velocity"),
                    drv.total,
                )),
            });
        }
    }
    out.into_iter().map(|r| r.expect("every pair resolved")).collect()
}

/// One pair's in-flight solver state during the interleave.
struct PairDriver {
    hooks: SolverHooks,
    hooked: bool,
    problem: RegProblem,
    /// Current β-level's Gauss–Newton state (`None` transiently while a
    /// level is being closed).
    state: Option<GnState>,
    /// Final velocity, set once all levels are done.
    v: Option<VectorField>,
    level: usize,
    /// Cumulative GN iterations before the current level (hook indices are
    /// cumulative across levels, matching `Claire`).
    base: usize,
    total: GnStats,
    outcome_err: Option<ClaireError>,
    done: bool,
}

impl PairDriver {
    /// Run one Gauss–Newton iteration boundary + iteration for this pair:
    /// fire observers, poll cancellation, step, and roll to the next
    /// β-level (or retire) when the current level finishes. The sequence of
    /// boundaries and iterations this pair sees is identical to a
    /// sequential `Claire` solve.
    fn advance(
        &mut self,
        cfg: &RegistrationConfig,
        gn_cfg: &GnConfig,
        betas: &[f64],
        comm: &mut Comm,
    ) {
        if self.hooked {
            let k = self.base + self.state.as_ref().map_or(0, |s| s.stats().gn_iters);
            if let Some(cb) = &self.hooks.on_gn_iter {
                cb(k);
            }
            if let Some(reason) = self.hooks.cancel.as_ref().and_then(CancelToken::stop_reason) {
                let mut state = self.state.take().expect("active driver has a level state");
                state.cancel();
                let (v, stats) = state.finish();
                accumulate(&mut self.total, &stats);
                self.v = Some(v);
                self.outcome_err = Some(ClaireError::Cancelled {
                    context: "BatchSolver::solve",
                    message: format!(
                        "{} after {} Gauss-Newton iteration(s) at beta level {}",
                        reason.label(),
                        self.total.gn_iters,
                        self.level
                    ),
                });
                self.done = true;
                return;
            }
        }
        records::set_context(self.level, betas[self.level]);
        let state = self.state.as_mut().expect("active driver has a level state");
        if state.step(&mut self.problem, gn_cfg, comm) {
            let (v, stats) = self.state.take().unwrap().finish();
            accumulate(&mut self.total, &stats);
            self.level += 1;
            if self.level < betas.len() {
                if cfg.verbose && comm.rank() == 0 {
                    eprintln!(
                        "== continuation level {}: beta = {:.3e} ==",
                        self.level, betas[self.level]
                    );
                }
                self.problem.set_beta(betas[self.level]);
                self.base = self.total.gn_iters;
                self.state = Some(GnState::new(v, gn_cfg));
            } else {
                self.v = Some(v);
                self.done = true;
            }
        }
    }
}
