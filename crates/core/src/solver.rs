//! The end-to-end registration driver with β-continuation.
//!
//! "The suggested setting for CLAIRE is to use a β-continuation scheme":
//! the problem is solved for a decreasing sequence of β, each level warm-
//! starting from the previous velocity; InvA preconditions the strongly
//! regularized levels (β > 5e−1), the configured InvH0 variant the rest.

use claire_diff::TwoLevel;
use claire_grid::{ClaireResult, ScalarField, VectorField};
use claire_interp::Interpolator;
use claire_mpi::Comm;
use claire_obs::{records, span::span};
use claire_opt::{gauss_newton, GnConfig, GnStats};
use claire_semilag::{displacement, Trajectory};

use crate::config::RegistrationConfig;
use crate::memory;
use crate::problem::RegProblem;
use crate::report::RegistrationReport;

/// The CLAIRE registration solver.
pub struct Claire {
    /// Configuration used for every [`Claire::register`] call.
    pub cfg: RegistrationConfig,
}

impl Claire {
    /// New solver with the given configuration.
    pub fn new(cfg: RegistrationConfig) -> Claire {
        Claire { cfg }
    }

    /// Register `m0` (template) to `m1` (reference): find `v` minimizing
    /// (1). Returns the velocity and a Table 6-style report. Collective.
    /// Panicking convenience wrapper around [`Claire::try_register`].
    pub fn register(
        &mut self,
        m0: &ScalarField,
        m1: &ScalarField,
        comm: &mut Comm,
    ) -> (VectorField, RegistrationReport) {
        self.try_register(m0, m1, comm).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Claire::register`]: returns a typed error on mismatched
    /// template/reference layouts instead of panicking.
    pub fn try_register(
        &mut self,
        m0: &ScalarField,
        m1: &ScalarField,
        comm: &mut Comm,
    ) -> ClaireResult<(VectorField, RegistrationReport)> {
        self.try_register_from(m0, m1, None, "data", comm)
    }

    /// [`Claire::register`] with an initial velocity guess and a dataset
    /// label for the report. Panicking convenience wrapper around
    /// [`Claire::try_register_from`].
    pub fn register_from(
        &mut self,
        m0: &ScalarField,
        m1: &ScalarField,
        v_init: Option<VectorField>,
        label: &str,
        comm: &mut Comm,
    ) -> (VectorField, RegistrationReport) {
        self.try_register_from(m0, m1, v_init, label, comm).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Claire::register_from`].
    pub fn try_register_from(
        &mut self,
        m0: &ScalarField,
        m1: &ScalarField,
        v_init: Option<VectorField>,
        label: &str,
        comm: &mut Comm,
    ) -> ClaireResult<(VectorField, RegistrationReport)> {
        let _solve = span("solve");
        let layout = *m0.layout();
        let mut v_init = v_init;

        // coarse-to-fine grid continuation: solve the whole problem at half
        // resolution first and prolong the velocity as the initial guess
        if self.cfg.grid_continuation && coarse_solvable(&layout) {
            let tl = TwoLevel::new(layout.grid, comm);
            let m0c = tl.restrict(m0, comm);
            let m1c = tl.restrict(m1, comm);
            let mut coarse_cfg = self.cfg;
            coarse_cfg.grid_continuation = layout.grid.n.iter().all(|&n| n >= 16);
            let mut coarse = Claire::new(coarse_cfg);
            if self.cfg.verbose && comm.rank() == 0 {
                eprintln!("== grid continuation: solving at {:?} ==", tl.coarse_grid().n);
            }
            let (vc, _) = coarse.try_register_from(&m0c, &m1c, v_init.take(), label, comm)?;
            v_init = Some(tl.prolong_vector(&vc, comm));
        }

        let mut problem = RegProblem::new(m0.clone(), m1.clone(), self.cfg, comm)?;
        let mut v = v_init.unwrap_or_else(|| VectorField::zeros(layout));

        let mut total = GnStats::default();
        for (level, beta) in self.cfg.beta_schedule().into_iter().enumerate() {
            let _lvl = span("beta_level");
            records::set_context(level, beta);
            problem.set_beta(beta);
            let gn_cfg = GnConfig {
                max_iter: self.cfg.max_gn_iter,
                grad_rtol: self.cfg.grad_rtol,
                max_pcg: self.cfg.max_pcg_iter,
                fixed_pcg: self.cfg.fixed_pcg,
                verbose: self.cfg.verbose,
                ..Default::default()
            };
            if self.cfg.verbose && comm.rank() == 0 {
                eprintln!("== continuation level {level}: beta = {beta:.3e} ==");
            }
            let (v_new, stats) = gauss_newton(&mut problem, v, &gn_cfg, comm);
            v = v_new;
            accumulate(&mut total, &stats);
        }

        let report = self.build_report(&mut problem, &v, label, comm, &total);
        Ok((v, report))
    }

    fn build_report(
        &self,
        problem: &mut RegProblem,
        v: &VectorField,
        label: &str,
        comm: &mut Comm,
        stats: &GnStats,
    ) -> RegistrationReport {
        let layout = problem.layout();
        let rel_mismatch = problem.rel_mismatch(v, comm);

        // diffeomorphism diagnostics
        let mut interp = Interpolator::new(self.cfg.ip_order);
        let traj = Trajectory::compute(v, self.cfg.nt, &mut interp, comm);
        let u = displacement::displacement(&traj, self.cfg.nt, &mut interp, comm);
        let det = displacement::jacobian_det(&u, comm);
        let (jac_det_min, jac_det_max) = displacement::det_bounds(&det, comm);

        let mem = memory::estimate(layout.grid, self.cfg.nt, layout.nranks, self.cfg.ip_order, 4);

        RegistrationReport {
            data: label.to_string(),
            pc: self.cfg.precond.label().to_string(),
            grid: layout.grid.n,
            nt: self.cfg.nt,
            nranks: layout.nranks,
            gn_iters: stats.gn_iters,
            pcg_iters: stats.pcg_iters_total,
            rel_mismatch,
            grad_rel: stats.grad_rel,
            n_inva: problem.pc.n_inva,
            n_invh0: problem.pc.n_invh0,
            inner_cg_total: problem.pc.inner_iters,
            inner_cg_avg: problem.pc.inner_avg(),
            time_pc: stats.time.pc,
            time_obj: stats.time.obj,
            time_grad: stats.time.grad,
            time_hess: stats.time.hess,
            time_total: stats.time.total,
            modeled_pc: stats.modeled.pc,
            modeled_obj: stats.modeled.obj,
            modeled_grad: stats.modeled.grad,
            modeled_hess: stats.modeled.hess,
            modeled_total: stats.modeled.total,
            jac_det_min,
            jac_det_max,
            memory_bytes_per_rank: mem.total(),
        }
    }
}

/// Whether the half-resolution grid still supports this layout's rank
/// count and the spectral coarsening (even dims ≥ 8 so the 2LInvH0
/// preconditioner's own coarse grid stays valid too).
fn coarse_solvable(layout: &claire_grid::Layout) -> bool {
    layout.grid.n.iter().all(|&n| n >= 16 && n % 4 == 0)
        && layout.nranks <= layout.grid.n[0] / 2
        && layout.nranks <= layout.grid.n[1] / 2
}

/// Accumulate per-level Gauss–Newton statistics into a whole-run total.
fn accumulate(total: &mut GnStats, level: &GnStats) {
    total.gn_iters += level.gn_iters;
    total.pcg_iters_total += level.pcg_iters_total;
    total.obj_evals += level.obj_evals;
    total.hess_applies += level.hess_applies;
    total.pc_applies += level.pc_applies;
    total.grad_rel_history.extend_from_slice(&level.grad_rel_history);
    total.objective_history.extend_from_slice(&level.objective_history);
    total.time.pc += level.time.pc;
    total.time.obj += level.time.obj;
    total.time.grad += level.time.grad;
    total.time.hess += level.time.hess;
    total.time.total += level.time.total;
    total.modeled.pc += level.modeled.pc;
    total.modeled.obj += level.modeled.obj;
    total.modeled.grad += level.modeled.grad;
    total.modeled.hess += level.modeled.hess;
    total.modeled.total += level.modeled.total;
    total.converged = level.converged;
    total.grad_rel = level.grad_rel;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrecondKind;
    use claire_grid::{Grid, Layout, Real};

    /// A pair of Gaussian-blob images offset by a small translation.
    fn blob_pair(layout: Layout, shift: Real) -> (ScalarField, ScalarField) {
        let blob = move |cx: Real| {
            move |x: Real, y: Real, z: Real| {
                let d2 = (x - cx).powi(2) + (y - 3.0).powi(2) + (z - 3.0).powi(2);
                (-d2 / 1.2).exp()
            }
        };
        (ScalarField::from_fn(layout, blob(3.0)), ScalarField::from_fn(layout, blob(3.0 + shift)))
    }

    #[test]
    fn registration_reduces_mismatch() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let (m0, m1) = blob_pair(layout, 0.5);
        let cfg = RegistrationConfig {
            nt: 4,
            precond: PrecondKind::InvA,
            beta_target: 1e-2,
            max_gn_iter: 10,
            ..Default::default()
        };
        let mut claire = Claire::new(cfg);
        let (v, report) = claire.register(&m0, &m1, &mut comm);
        assert!(
            report.rel_mismatch < 0.35,
            "registration should reduce the mismatch substantially: {}",
            report.rel_mismatch
        );
        assert!(report.gn_iters >= 1);
        assert!(v.norm_l2(&mut comm) > 0.0);
        assert!(report.jac_det_min > 0.0, "map must stay diffeomorphic: {}", report.jac_det_min);
    }

    #[test]
    fn grid_continuation_produces_valid_registration() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let (m0, m1) = blob_pair(layout, 0.5);
        let cfg = RegistrationConfig {
            nt: 4,
            precond: PrecondKind::InvA,
            beta_target: 1e-2,
            max_gn_iter: 8,
            grid_continuation: true,
            ..Default::default()
        };
        let mut claire = Claire::new(cfg);
        let (_, report) = claire.register(&m0, &m1, &mut comm);
        assert!(report.rel_mismatch < 0.4, "mismatch {}", report.rel_mismatch);
        assert!(report.jac_det_min > 0.0);
    }

    #[test]
    fn preconditioned_variants_reach_similar_mismatch() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let (m0, m1) = blob_pair(layout, 0.4);
        let mut results = Vec::new();
        for kind in [PrecondKind::InvA, PrecondKind::InvH0, PrecondKind::TwoLevelInvH0] {
            let cfg = RegistrationConfig {
                nt: 4,
                precond: kind,
                beta_target: 1e-2,
                max_gn_iter: 8,
                ..Default::default()
            };
            let mut claire = Claire::new(cfg);
            let (_, report) = claire.register(&m0, &m1, &mut comm);
            results.push((kind, report.rel_mismatch, report.pcg_iters));
        }
        for (kind, mism, _) in &results {
            assert!(*mism < 0.5, "{kind:?}: mismatch {mism}");
        }
        // the paper's headline: InvH0 variants need far fewer outer PCG
        // iterations than InvA
        let inva_pcg = results[0].2;
        let h0_pcg = results[1].2;
        assert!(
            h0_pcg <= inva_pcg,
            "InvH0 ({h0_pcg}) should not need more PCG iterations than InvA ({inva_pcg})"
        );
    }
}
