//! The end-to-end registration driver with β-continuation.
//!
//! "The suggested setting for CLAIRE is to use a β-continuation scheme":
//! the problem is solved for a decreasing sequence of β, each level warm-
//! starting from the previous velocity; InvA preconditions the strongly
//! regularized levels (β > 5e−1), the configured InvH0 variant the rest.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use claire_diff::TwoLevel;
use claire_grid::{ClaireError, ClaireResult, ScalarField, VectorField};
use claire_interp::Interpolator;
use claire_mpi::Comm;
use claire_obs::{records, span::span};
use claire_opt::{gauss_newton_hooked, GnConfig, GnStats};
use claire_semilag::{displacement, Trajectory};

use crate::config::RegistrationConfig;
use crate::memory;
use crate::problem::RegProblem;
use crate::report::RegistrationReport;

/// Why a solve stopped before reaching its convergence criterion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The token's deadline passed.
    DeadlineExpired,
}

impl StopReason {
    /// Short human-readable description (used in [`ClaireError::Cancelled`]).
    pub fn label(self) -> &'static str {
        match self {
            StopReason::Cancelled => "cancelled",
            StopReason::DeadlineExpired => "deadline expired",
        }
    }
}

struct TokenInner {
    created: Instant,
    cancelled: AtomicBool,
    /// Deadline as nanoseconds after `created`; `u64::MAX` = none.
    deadline_nanos: AtomicU64,
}

/// Shared cooperative-cancellation handle for a solve.
///
/// Cloning shares the underlying flag: any clone may [`CancelToken::cancel`]
/// or arm a deadline, and the solver polls [`CancelToken::stop_reason`] at
/// every Gauss–Newton iteration boundary (see [`SolverHooks`]). A tripped
/// token makes [`Claire::try_register`] return [`ClaireError::Cancelled`]
/// instead of a result; the solver's internal state stays consistent, so the
/// same `Claire` value can run further solves afterwards.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// Fresh token: not cancelled, no deadline.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(TokenInner {
                created: Instant::now(),
                cancelled: AtomicBool::new(false),
                deadline_nanos: AtomicU64::new(u64::MAX),
            }),
        }
    }

    /// Request cancellation. Idempotent; takes effect at the solver's next
    /// iteration boundary.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Arm (or tighten) a deadline `d` from now. The earliest armed deadline
    /// wins; there is no way to extend one.
    pub fn set_deadline_in(&self, d: Duration) {
        let nanos =
            self.inner.created.elapsed().saturating_add(d).as_nanos().min(u64::MAX as u128 - 1)
                as u64;
        self.inner.deadline_nanos.fetch_min(nanos, Ordering::Relaxed);
    }

    /// Whether an armed deadline has passed.
    pub fn deadline_expired(&self) -> bool {
        let d = self.inner.deadline_nanos.load(Ordering::Relaxed);
        d != u64::MAX && self.inner.created.elapsed().as_nanos() as u64 >= d
    }

    /// Why the solve should stop, if it should. Explicit cancellation takes
    /// precedence over an expired deadline.
    pub fn stop_reason(&self) -> Option<StopReason> {
        if self.is_cancelled() {
            Some(StopReason::Cancelled)
        } else if self.deadline_expired() {
            Some(StopReason::DeadlineExpired)
        } else {
            None
        }
    }
}

/// Observation and control hooks threaded through a solve.
///
/// `cancel` is polled at every Gauss–Newton iteration boundary (across all
/// β-continuation levels and the coarse grid-continuation solve);
/// `on_gn_iter` fires at the same boundaries with the cumulative iteration
/// index, *before* the cancel check — so an observer can trip the token and
/// have the solve stop before that iteration runs. `claire-serve` uses this
/// seam for job cancellation, deadlines, and its scheduler tests.
#[derive(Clone, Default)]
pub struct SolverHooks {
    /// Cooperative cancellation handle.
    pub cancel: Option<CancelToken>,
    /// Called with the cumulative GN iteration index at each boundary.
    pub on_gn_iter: Option<Arc<dyn Fn(usize) + Send + Sync>>,
}

impl SolverHooks {
    /// Hooks that only carry a cancel token.
    pub fn with_cancel(token: CancelToken) -> SolverHooks {
        SolverHooks { cancel: Some(token), on_gn_iter: None }
    }
}

/// The CLAIRE registration solver.
pub struct Claire {
    /// Configuration used for every [`Claire::register`] call.
    pub cfg: RegistrationConfig,
    /// Cancellation/observation hooks (default: none).
    pub hooks: SolverHooks,
}

impl Claire {
    /// New solver with the given configuration.
    pub fn new(cfg: RegistrationConfig) -> Claire {
        Claire { cfg, hooks: SolverHooks::default() }
    }

    /// New solver with cancellation/observation hooks.
    pub fn with_hooks(cfg: RegistrationConfig, hooks: SolverHooks) -> Claire {
        Claire { cfg, hooks }
    }

    /// Register `m0` (template) to `m1` (reference): find `v` minimizing
    /// (1). Returns the velocity and a Table 6-style report. Collective.
    /// Panicking convenience wrapper around [`Claire::try_register`].
    pub fn register(
        &mut self,
        m0: &ScalarField,
        m1: &ScalarField,
        comm: &mut Comm,
    ) -> (VectorField, RegistrationReport) {
        self.try_register(m0, m1, comm).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Claire::register`]: returns a typed error on mismatched
    /// template/reference layouts instead of panicking.
    pub fn try_register(
        &mut self,
        m0: &ScalarField,
        m1: &ScalarField,
        comm: &mut Comm,
    ) -> ClaireResult<(VectorField, RegistrationReport)> {
        self.try_register_from(m0, m1, None, "data", comm)
    }

    /// [`Claire::register`] with an initial velocity guess and a dataset
    /// label for the report. Panicking convenience wrapper around
    /// [`Claire::try_register_from`].
    pub fn register_from(
        &mut self,
        m0: &ScalarField,
        m1: &ScalarField,
        v_init: Option<VectorField>,
        label: &str,
        comm: &mut Comm,
    ) -> (VectorField, RegistrationReport) {
        self.try_register_from(m0, m1, v_init, label, comm).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Claire::register_from`].
    pub fn try_register_from(
        &mut self,
        m0: &ScalarField,
        m1: &ScalarField,
        v_init: Option<VectorField>,
        label: &str,
        comm: &mut Comm,
    ) -> ClaireResult<(VectorField, RegistrationReport)> {
        let _solve = span("solve");
        let layout = *m0.layout();
        let mut v_init = v_init;

        // coarse-to-fine grid continuation: solve the whole problem at half
        // resolution first and prolong the velocity as the initial guess
        if self.cfg.grid_continuation && coarse_solvable(&layout) {
            let tl = TwoLevel::new(layout.grid, comm);
            let m0c = tl.restrict(m0, comm);
            let m1c = tl.restrict(m1, comm);
            let mut coarse_cfg = self.cfg;
            coarse_cfg.grid_continuation = layout.grid.n.iter().all(|&n| n >= 16);
            let mut coarse = Claire::with_hooks(coarse_cfg, self.hooks.clone());
            if self.cfg.verbose && comm.rank() == 0 {
                eprintln!("== grid continuation: solving at {:?} ==", tl.coarse_grid().n);
            }
            let (vc, _) = coarse.try_register_from(&m0c, &m1c, v_init.take(), label, comm)?;
            v_init = Some(tl.prolong_vector(&vc, comm));
        }

        let mut problem = RegProblem::new(m0.clone(), m1.clone(), self.cfg, comm)?;
        let mut v = v_init.unwrap_or_else(|| VectorField::zeros(layout));

        let mut total = GnStats::default();
        for (level, beta) in self.cfg.beta_schedule().into_iter().enumerate() {
            let _lvl = span("beta_level");
            records::set_context(level, beta);
            problem.set_beta(beta);
            let gn_cfg = level_gn_config(&self.cfg);
            if self.cfg.verbose && comm.rank() == 0 {
                eprintln!("== continuation level {level}: beta = {beta:.3e} ==");
            }
            // cooperative cancellation: observers fire first, then the token
            // is polled, at every GN iteration boundary of this level
            let base = total.gn_iters;
            let stopped = std::cell::Cell::new(None::<StopReason>);
            let check = |k: usize| {
                if let Some(cb) = &self.hooks.on_gn_iter {
                    cb(base + k);
                }
                match self.hooks.cancel.as_ref().and_then(CancelToken::stop_reason) {
                    Some(reason) => {
                        stopped.set(Some(reason));
                        true
                    }
                    None => false,
                }
            };
            let hooked = self.hooks.cancel.is_some() || self.hooks.on_gn_iter.is_some();
            let stop: Option<claire_opt::StopCheck<'_>> = if hooked { Some(&check) } else { None };
            let (v_new, stats) = gauss_newton_hooked(&mut problem, v, &gn_cfg, stop, comm);
            v = v_new;
            accumulate(&mut total, &stats);
            if let Some(reason) = stopped.get() {
                return Err(ClaireError::Cancelled {
                    context: "Claire::register",
                    message: format!(
                        "{} after {} Gauss-Newton iteration(s) at beta level {level}",
                        reason.label(),
                        total.gn_iters
                    ),
                });
            }
        }

        let report = build_report(&self.cfg, &mut problem, &v, label, comm, &total);
        Ok((v, report))
    }
}

/// Gauss–Newton options for one β-continuation level of `cfg`. Shared by
/// [`Claire`] and `BatchSolver` so the two paths run identical iterations.
pub(crate) fn level_gn_config(cfg: &RegistrationConfig) -> GnConfig {
    GnConfig {
        max_iter: cfg.max_gn_iter,
        grad_rtol: cfg.grad_rtol,
        max_pcg: cfg.max_pcg_iter,
        fixed_pcg: cfg.fixed_pcg,
        verbose: cfg.verbose,
        mixed: cfg.precision == crate::config::Precision::Mixed,
        ..Default::default()
    }
}

/// Assemble the Table 6-style report for a finished solve. Collective
/// (computes the final mismatch and diffeomorphism diagnostics).
pub(crate) fn build_report(
    cfg: &RegistrationConfig,
    problem: &mut RegProblem,
    v: &VectorField,
    label: &str,
    comm: &mut Comm,
    stats: &GnStats,
) -> RegistrationReport {
    let layout = problem.layout();
    let rel_mismatch = problem.rel_mismatch(v, comm);

    // diffeomorphism diagnostics
    let mut interp = Interpolator::new(cfg.ip_order);
    let traj = Trajectory::compute(v, cfg.nt, &mut interp, comm);
    let u = displacement::displacement(&traj, cfg.nt, &mut interp, comm);
    let det = displacement::jacobian_det(&u, comm);
    let (jac_det_min, jac_det_max) = displacement::det_bounds(&det, comm);

    let mem = memory::estimate(layout.grid, cfg.nt, layout.nranks, cfg.ip_order, 4);

    RegistrationReport {
        data: label.to_string(),
        pc: cfg.precond.label().to_string(),
        precision: cfg.precision.label().to_string(),
        grid: layout.grid.n,
        nt: cfg.nt,
        nranks: layout.nranks,
        gn_iters: stats.gn_iters,
        pcg_iters: stats.pcg_iters_total,
        rel_mismatch,
        grad_rel: stats.grad_rel,
        n_inva: problem.pc.n_inva,
        n_invh0: problem.pc.n_invh0,
        inner_cg_total: problem.pc.inner_iters,
        inner_cg_avg: problem.pc.inner_avg(),
        time_pc: stats.time.pc,
        time_obj: stats.time.obj,
        time_grad: stats.time.grad,
        time_hess: stats.time.hess,
        time_total: stats.time.total,
        modeled_pc: stats.modeled.pc,
        modeled_obj: stats.modeled.obj,
        modeled_grad: stats.modeled.grad,
        modeled_hess: stats.modeled.hess,
        modeled_total: stats.modeled.total,
        jac_det_min,
        jac_det_max,
        memory_bytes_per_rank: mem.total(),
    }
}

/// Whether the half-resolution grid still supports this layout's rank
/// count and the spectral coarsening (even dims ≥ 8 so the 2LInvH0
/// preconditioner's own coarse grid stays valid too).
pub(crate) fn coarse_solvable(layout: &claire_grid::Layout) -> bool {
    layout.grid.n.iter().all(|&n| n >= 16 && n % 4 == 0)
        && layout.nranks <= layout.grid.n[0] / 2
        && layout.nranks <= layout.grid.n[1] / 2
}

/// Accumulate per-level Gauss–Newton statistics into a whole-run total.
pub(crate) fn accumulate(total: &mut GnStats, level: &GnStats) {
    total.gn_iters += level.gn_iters;
    total.pcg_iters_total += level.pcg_iters_total;
    total.obj_evals += level.obj_evals;
    total.hess_applies += level.hess_applies;
    total.pc_applies += level.pc_applies;
    total.grad_rel_history.extend_from_slice(&level.grad_rel_history);
    total.objective_history.extend_from_slice(&level.objective_history);
    total.time.pc += level.time.pc;
    total.time.obj += level.time.obj;
    total.time.grad += level.time.grad;
    total.time.hess += level.time.hess;
    total.time.total += level.time.total;
    total.modeled.pc += level.modeled.pc;
    total.modeled.obj += level.modeled.obj;
    total.modeled.grad += level.modeled.grad;
    total.modeled.hess += level.modeled.hess;
    total.modeled.total += level.modeled.total;
    total.converged = level.converged;
    total.grad_rel = level.grad_rel;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrecondKind;
    use claire_grid::{Grid, Layout, Real};

    /// A pair of Gaussian-blob images offset by a small translation.
    fn blob_pair(layout: Layout, shift: Real) -> (ScalarField, ScalarField) {
        let blob = move |cx: Real| {
            move |x: Real, y: Real, z: Real| {
                let d2 = (x - cx).powi(2) + (y - 3.0).powi(2) + (z - 3.0).powi(2);
                (-d2 / 1.2).exp()
            }
        };
        (ScalarField::from_fn(layout, blob(3.0)), ScalarField::from_fn(layout, blob(3.0 + shift)))
    }

    #[test]
    fn registration_reduces_mismatch() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let (m0, m1) = blob_pair(layout, 0.5);
        let cfg = RegistrationConfig {
            nt: 4,
            precond: PrecondKind::InvA,
            beta_target: 1e-2,
            max_gn_iter: 10,
            ..Default::default()
        };
        let mut claire = Claire::new(cfg);
        let (v, report) = claire.register(&m0, &m1, &mut comm);
        assert!(
            report.rel_mismatch < 0.35,
            "registration should reduce the mismatch substantially: {}",
            report.rel_mismatch
        );
        assert!(report.gn_iters >= 1);
        assert!(v.norm_l2(&mut comm) > 0.0);
        assert!(report.jac_det_min > 0.0, "map must stay diffeomorphic: {}", report.jac_det_min);
    }

    #[test]
    fn grid_continuation_produces_valid_registration() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let (m0, m1) = blob_pair(layout, 0.5);
        let cfg = RegistrationConfig {
            nt: 4,
            precond: PrecondKind::InvA,
            beta_target: 1e-2,
            max_gn_iter: 8,
            grid_continuation: true,
            ..Default::default()
        };
        let mut claire = Claire::new(cfg);
        let (_, report) = claire.register(&m0, &m1, &mut comm);
        assert!(report.rel_mismatch < 0.4, "mismatch {}", report.rel_mismatch);
        assert!(report.jac_det_min > 0.0);
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_iteration() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let (m0, m1) = blob_pair(layout, 0.5);
        let cfg = RegistrationConfig { nt: 2, max_gn_iter: 10, ..Default::default() };
        let token = CancelToken::new();
        token.cancel();
        let iters = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let seen = iters.clone();
        let hooks = SolverHooks {
            cancel: Some(token),
            on_gn_iter: Some(Arc::new(move |_| {
                seen.fetch_add(1, Ordering::Relaxed);
            })),
        };
        let mut claire = Claire::with_hooks(cfg, hooks);
        let err = claire.try_register(&m0, &m1, &mut comm).unwrap_err();
        assert!(matches!(err, ClaireError::Cancelled { .. }), "{err}");
        assert!(err.to_string().contains("cancelled"), "{err}");
        assert_eq!(iters.load(Ordering::Relaxed), 1, "only the first boundary is visited");
    }

    #[test]
    fn cancel_mid_solve_stops_at_next_boundary() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let (m0, m1) = blob_pair(layout, 0.5);
        let cfg = RegistrationConfig {
            nt: 2,
            precond: PrecondKind::InvA,
            continuation: false,
            beta_target: 1e-2,
            max_gn_iter: 25,
            grad_rtol: 1e-12,
            ..Default::default()
        };
        let token = CancelToken::new();
        let trip = token.clone();
        let boundaries = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let seen = boundaries.clone();
        let hooks = SolverHooks {
            cancel: Some(token),
            on_gn_iter: Some(Arc::new(move |k| {
                seen.fetch_add(1, Ordering::Relaxed);
                if k == 1 {
                    trip.cancel(); // cancel at the boundary of iteration 1
                }
            })),
        };
        let mut claire = Claire::with_hooks(cfg, hooks);
        let err = claire.try_register(&m0, &m1, &mut comm).unwrap_err();
        assert!(matches!(err, ClaireError::Cancelled { .. }), "{err}");
        // boundaries 0 and 1 were visited, then the solve stopped: iteration
        // 1 never ran, i.e. the cancel took effect within one GN iteration
        assert_eq!(boundaries.load(Ordering::Relaxed), 2);
        assert!(err.to_string().contains("after 1 Gauss-Newton"), "{err}");
    }

    #[test]
    fn expired_deadline_reports_deadline_reason() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let (m0, m1) = blob_pair(layout, 0.5);
        let cfg = RegistrationConfig { nt: 2, max_gn_iter: 10, ..Default::default() };
        let token = CancelToken::new();
        token.set_deadline_in(Duration::ZERO);
        assert!(token.deadline_expired());
        assert_eq!(token.stop_reason(), Some(StopReason::DeadlineExpired));
        let mut claire = Claire::with_hooks(cfg, SolverHooks::with_cancel(token));
        let err = claire.try_register(&m0, &m1, &mut comm).unwrap_err();
        assert!(err.to_string().contains("deadline expired"), "{err}");
    }

    #[test]
    fn preconditioned_variants_reach_similar_mismatch() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let (m0, m1) = blob_pair(layout, 0.4);
        let mut results = Vec::new();
        for kind in [PrecondKind::InvA, PrecondKind::InvH0, PrecondKind::TwoLevelInvH0] {
            let cfg = RegistrationConfig {
                nt: 4,
                precond: kind,
                beta_target: 1e-2,
                max_gn_iter: 8,
                ..Default::default()
            };
            let mut claire = Claire::new(cfg);
            let (_, report) = claire.register(&m0, &m1, &mut comm);
            results.push((kind, report.rel_mismatch, report.pcg_iters));
        }
        for (kind, mism, _) in &results {
            assert!(*mism < 0.5, "{kind:?}: mismatch {mism}");
        }
        // the paper's headline: InvH0 variants need far fewer outer PCG
        // iterations than InvA
        let inva_pcg = results[0].2;
        let h0_pcg = results[1].2;
        assert!(
            h0_pcg <= inva_pcg,
            "InvH0 ({h0_pcg}) should not need more PCG iterations than InvA ({inva_pcg})"
        );
    }

    /// Mixed precision is a solver *implementation* choice, not a model
    /// change: the f32 inner Krylov path must converge to the same final
    /// mismatch as the f64 path within the documented mixed tolerance
    /// (~κ·ε_f32 on the Newton step, which the f64 outer Gauss-Newton
    /// absorbs — see DESIGN.md §18), for every preconditioner.
    #[test]
    fn mixed_precision_converges_to_same_mismatch() {
        let layout = Layout::serial(Grid::cube(16));
        let mut comm = Comm::solo();
        let (m0, m1) = blob_pair(layout, 0.4);
        for kind in [PrecondKind::InvA, PrecondKind::InvH0, PrecondKind::TwoLevelInvH0] {
            let cfg64 = RegistrationConfig {
                nt: 4,
                precond: kind,
                beta_target: 1e-2,
                max_gn_iter: 8,
                precision: crate::config::Precision::F64,
                ..Default::default()
            };
            let cfg32 = RegistrationConfig { precision: crate::config::Precision::Mixed, ..cfg64 };
            let (_, r64) = Claire::new(cfg64).register(&m0, &m1, &mut comm);
            let (_, r32) = Claire::new(cfg32).register(&m0, &m1, &mut comm);
            assert_eq!(r64.precision, "f64");
            assert_eq!(r32.precision, "mixed");
            let tol = 1e-3 * r64.rel_mismatch + 1e-6;
            assert!(
                (r64.rel_mismatch - r32.rel_mismatch).abs() <= tol,
                "{kind:?}: mixed mismatch {} vs f64 {} (tol {tol})",
                r32.rel_mismatch,
                r64.rel_mismatch
            );
            assert!(r32.jac_det_min > 0.0, "{kind:?}: mixed map must stay diffeomorphic");
        }
    }
}
