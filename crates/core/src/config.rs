//! Registration configuration.

use serde::Serialize;

/// Hessian preconditioner selection (paper §2, Algorithm 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum PrecondKind {
    /// Spectral inverse of the regularization operator, `(βA)⁻¹` — the
    /// benchmark used in prior CLAIRE versions (`[A]` in Table 6).
    InvA,
    /// Zero-velocity Hessian approximation solved iteratively (`[B]`).
    InvH0,
    /// Two-level (half-resolution) variant of InvH0 (`[C]`) — the paper's
    /// most effective choice.
    TwoLevelInvH0,
}

impl PrecondKind {
    /// Table 6 label.
    pub fn label(self) -> &'static str {
        match self {
            PrecondKind::InvA => "InvA",
            PrecondKind::InvH0 => "InvH0",
            PrecondKind::TwoLevelInvH0 => "2LInvH0",
        }
    }
}

/// Interpolation order re-export for configuration ergonomics.
pub use claire_interp::IpOrder;

/// Full registration configuration (paper defaults).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct RegistrationConfig {
    /// Semi-Lagrangian time steps `Nt` (paper: 4 at 256³, 8 at 512³, 16 at
    /// 1024³).
    pub nt: usize,
    /// Interpolation kernel (paper's production runs use linear).
    #[serde(skip_serializing)]
    pub ip_order: IpOrder,
    /// Store `∇m` time series (≈15% faster Hessian matvecs, higher memory).
    pub store_grad: bool,
    /// Preconditioner used for β ≤ 5e−1 (InvA is always used above).
    pub precond: PrecondKind,
    /// Target regularization parameter of the continuation (paper: 5e−4).
    pub beta_target: f64,
    /// Initial β of the continuation.
    pub beta_init: f64,
    /// Continuation reduction factor per level.
    pub beta_reduction: f64,
    /// Run the continuation at all (false = solve at `beta_target` only).
    pub continuation: bool,
    /// Coarse-to-fine grid continuation: solve on the half-resolution grid
    /// first and prolong the velocity as the fine-grid initial guess
    /// (CLAIRE's grid-continuation scheme; combined with β-continuation).
    pub grid_continuation: bool,
    /// Inner tolerance scale `εH0` (paper: 1e−3 NIREP, 1e−2 CLARITY).
    pub eps_h0: f64,
    /// Lower bound for β inside H0 (paper: 5e−2).
    pub beta_floor: f64,
    /// Relative gradient tolerance `εN` per continuation level.
    pub grad_rtol: f64,
    /// Gauss–Newton iteration cap per continuation level.
    pub max_gn_iter: usize,
    /// PCG iteration cap per Newton step.
    pub max_pcg_iter: usize,
    /// Inner (H0) PCG iteration cap.
    pub max_inner_iter: usize,
    /// Fixed PCG iterations (Table 7 scaling mode), disables the forcing
    /// sequence when set.
    pub fixed_pcg: Option<usize>,
    /// Print progress on rank 0.
    pub verbose: bool,
}

impl Default for RegistrationConfig {
    fn default() -> Self {
        Self {
            nt: 4,
            ip_order: IpOrder::Linear,
            store_grad: false,
            precond: PrecondKind::TwoLevelInvH0,
            beta_target: 5e-4,
            beta_init: 1.0,
            beta_reduction: 0.1,
            continuation: true,
            grid_continuation: false,
            eps_h0: 1e-3,
            beta_floor: 5e-2,
            grad_rtol: 5e-2,
            max_gn_iter: 25,
            max_pcg_iter: 100,
            max_inner_iter: 50,
            fixed_pcg: None,
            verbose: false,
        }
    }
}

impl RegistrationConfig {
    /// The β-continuation schedule: `beta_init`, reduced by
    /// `beta_reduction` per level, ending exactly at `beta_target`.
    pub fn beta_schedule(&self) -> Vec<f64> {
        if !self.continuation {
            return vec![self.beta_target];
        }
        let mut betas = Vec::new();
        let mut b = self.beta_init;
        while b > self.beta_target * 1.0000001 {
            betas.push(b);
            b *= self.beta_reduction;
        }
        betas.push(self.beta_target);
        betas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_schedule_hits_target() {
        let cfg = RegistrationConfig::default();
        let s = cfg.beta_schedule();
        assert_eq!(s.first().copied(), Some(1.0));
        assert_eq!(s.last().copied(), Some(5e-4));
        for w in s.windows(2) {
            assert!(w[1] < w[0], "schedule must decrease: {s:?}");
        }
    }

    #[test]
    fn no_continuation_is_single_level() {
        let cfg = RegistrationConfig { continuation: false, ..Default::default() };
        assert_eq!(cfg.beta_schedule(), vec![5e-4]);
    }

    #[test]
    fn labels() {
        assert_eq!(PrecondKind::InvA.label(), "InvA");
        assert_eq!(PrecondKind::TwoLevelInvH0.label(), "2LInvH0");
    }
}
