//! Registration configuration and its validating builder.

use claire_grid::{ClaireError, ClaireResult};
use serde::Serialize;

/// Hessian preconditioner selection (paper §2, Algorithm 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum PrecondKind {
    /// Spectral inverse of the regularization operator, `(βA)⁻¹` — the
    /// benchmark used in prior CLAIRE versions (`[A]` in Table 6).
    InvA,
    /// Zero-velocity Hessian approximation solved iteratively (`[B]`).
    InvH0,
    /// Two-level (half-resolution) variant of InvH0 (`[C]`) — the paper's
    /// most effective choice.
    TwoLevelInvH0,
}

impl PrecondKind {
    /// Table 6 label.
    pub fn label(self) -> &'static str {
        match self {
            PrecondKind::InvA => "InvA",
            PrecondKind::InvH0 => "InvH0",
            PrecondKind::TwoLevelInvH0 => "2LInvH0",
        }
    }
}

/// Interpolation order re-export for configuration ergonomics.
pub use claire_interp::IpOrder;

/// Solver arithmetic width (the mixed-precision seam, CLAIRE's GPU-era
/// optimization): `F64` runs everything in double precision; `Mixed` keeps
/// the outer Gauss–Newton iterate, gradient, objective, and reported
/// mismatch in f64 but demotes the inner Krylov solve — PCG vectors,
/// spectral preconditioner, FFTs, and their collective payloads — to f32,
/// halving the memory traffic and wire bytes of the solver's dominant
/// phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Precision {
    /// Full double precision (bit-identical to the pre-seam solver).
    F64,
    /// f32 inner Krylov/FFT path under the f64 outer Gauss–Newton loop.
    Mixed,
}

impl Precision {
    /// Stable report label (`f64` / `mixed`) — the `"precision"` key of the
    /// RunReport schema.
    pub fn label(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::Mixed => "mixed",
        }
    }

    /// Read `CLAIRE_PRECISION` (`mixed`/`f32`/`single` → [`Precision::Mixed`],
    /// anything else or unset → [`Precision::F64`]).
    pub fn from_env() -> Precision {
        match std::env::var("CLAIRE_PRECISION").ok().as_deref() {
            Some("mixed") | Some("f32") | Some("single") => Precision::Mixed,
            _ => Precision::F64,
        }
    }
}

/// Full registration configuration (paper defaults).
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct RegistrationConfig {
    /// Semi-Lagrangian time steps `Nt` (paper: 4 at 256³, 8 at 512³, 16 at
    /// 1024³).
    pub nt: usize,
    /// Interpolation kernel (paper's production runs use linear).
    #[serde(skip_serializing)]
    pub ip_order: IpOrder,
    /// Store `∇m` time series (≈15% faster Hessian matvecs, higher memory).
    pub store_grad: bool,
    /// Preconditioner used for β ≤ 5e−1 (InvA is always used above).
    pub precond: PrecondKind,
    /// Target regularization parameter of the continuation (paper: 5e−4).
    pub beta_target: f64,
    /// Initial β of the continuation.
    pub beta_init: f64,
    /// Continuation reduction factor per level.
    pub beta_reduction: f64,
    /// Run the continuation at all (false = solve at `beta_target` only).
    pub continuation: bool,
    /// Coarse-to-fine grid continuation: solve on the half-resolution grid
    /// first and prolong the velocity as the fine-grid initial guess
    /// (CLAIRE's grid-continuation scheme; combined with β-continuation).
    pub grid_continuation: bool,
    /// Inner tolerance scale `εH0` (paper: 1e−3 NIREP, 1e−2 CLARITY).
    pub eps_h0: f64,
    /// Lower bound for β inside H0 (paper: 5e−2).
    pub beta_floor: f64,
    /// Relative gradient tolerance `εN` per continuation level.
    pub grad_rtol: f64,
    /// Gauss–Newton iteration cap per continuation level.
    pub max_gn_iter: usize,
    /// PCG iteration cap per Newton step.
    pub max_pcg_iter: usize,
    /// Inner (H0) PCG iteration cap.
    pub max_inner_iter: usize,
    /// Fixed PCG iterations (Table 7 scaling mode), disables the forcing
    /// sequence when set.
    pub fixed_pcg: Option<usize>,
    /// Arithmetic width of the inner Krylov/FFT path (default: the
    /// `CLAIRE_PRECISION` environment selection, `F64` when unset).
    pub precision: Precision,
    /// Print progress on rank 0.
    pub verbose: bool,
}

impl Default for RegistrationConfig {
    fn default() -> Self {
        Self {
            nt: 4,
            ip_order: IpOrder::Linear,
            store_grad: false,
            precond: PrecondKind::TwoLevelInvH0,
            beta_target: 5e-4,
            beta_init: 1.0,
            beta_reduction: 0.1,
            continuation: true,
            grid_continuation: false,
            eps_h0: 1e-3,
            beta_floor: 5e-2,
            grad_rtol: 5e-2,
            max_gn_iter: 25,
            max_pcg_iter: 100,
            max_inner_iter: 50,
            fixed_pcg: None,
            precision: Precision::from_env(),
            verbose: false,
        }
    }
}

impl RegistrationConfig {
    /// Start a validating builder seeded with the paper defaults.
    ///
    /// ```
    /// use claire_core::RegistrationConfig;
    /// let cfg = RegistrationConfig::builder().nt(4).beta(1e-2).build().unwrap();
    /// assert_eq!(cfg.nt, 4);
    /// assert_eq!(cfg.beta_target, 1e-2);
    /// ```
    pub fn builder() -> RegistrationConfigBuilder {
        RegistrationConfigBuilder { cfg: RegistrationConfig::default() }
    }

    /// Check invariants the solver assumes; [`RegistrationConfigBuilder::build`]
    /// calls this, and hand-assembled configs can call it directly.
    pub fn validate(&self) -> ClaireResult<()> {
        fn bad(param: &'static str, message: String) -> ClaireError {
            ClaireError::Config { param, message }
        }
        if self.nt < 1 {
            return Err(bad("nt", format!("need at least 1 time step, got {}", self.nt)));
        }
        if !(self.beta_target > 0.0 && self.beta_target.is_finite()) {
            return Err(bad(
                "beta_target",
                format!("must be positive and finite, got {}", self.beta_target),
            ));
        }
        if !self.beta_init.is_finite() {
            // NaN/∞ would pass the ordering check below (NaN comparisons are
            // false) and then hang the β-schedule loop
            return Err(bad("beta_init", format!("must be finite, got {}", self.beta_init)));
        }
        if self.beta_init < self.beta_target {
            return Err(bad(
                "beta_init",
                format!("must be >= beta_target ({}), got {}", self.beta_target, self.beta_init),
            ));
        }
        if !(self.beta_reduction > 0.0 && self.beta_reduction < 1.0) {
            return Err(bad(
                "beta_reduction",
                format!("must lie in (0, 1), got {}", self.beta_reduction),
            ));
        }
        if !(self.eps_h0 > 0.0 && self.eps_h0 <= 1.0) {
            return Err(bad("eps_h0", format!("must lie in (0, 1], got {}", self.eps_h0)));
        }
        if !(self.beta_floor > 0.0 && self.beta_floor.is_finite()) {
            return Err(bad(
                "beta_floor",
                format!("must be positive and finite, got {}", self.beta_floor),
            ));
        }
        if !(self.grad_rtol > 0.0 && self.grad_rtol.is_finite()) {
            return Err(bad(
                "grad_rtol",
                format!("must be positive and finite, got {}", self.grad_rtol),
            ));
        }
        if self.max_gn_iter < 1 || self.max_pcg_iter < 1 || self.max_inner_iter < 1 {
            return Err(bad(
                "max_gn_iter",
                format!(
                    "iteration caps must be >= 1, got gn={} pcg={} inner={}",
                    self.max_gn_iter, self.max_pcg_iter, self.max_inner_iter
                ),
            ));
        }
        if let Some(fixed) = self.fixed_pcg {
            if fixed < 1 {
                return Err(bad("fixed_pcg", format!("must be >= 1 when set, got {fixed}")));
            }
        }
        Ok(())
    }

    /// The β-continuation schedule: `beta_init`, reduced by
    /// `beta_reduction` per level, ending exactly at `beta_target`.
    pub fn beta_schedule(&self) -> Vec<f64> {
        if !self.continuation {
            return vec![self.beta_target];
        }
        let mut betas = Vec::new();
        let mut b = self.beta_init;
        while b > self.beta_target * 1.0000001 {
            betas.push(b);
            b *= self.beta_reduction;
        }
        betas.push(self.beta_target);
        betas
    }
}

/// Fluent, validating constructor for [`RegistrationConfig`].
///
/// Every setter overrides one field of the paper-default configuration;
/// [`RegistrationConfigBuilder::build`] runs [`RegistrationConfig::validate`]
/// so impossible configurations are rejected with a typed
/// [`ClaireError::Config`] instead of a mid-solve panic.
#[derive(Clone, Debug)]
pub struct RegistrationConfigBuilder {
    cfg: RegistrationConfig,
}

impl RegistrationConfigBuilder {
    /// Semi-Lagrangian time steps.
    pub fn nt(mut self, nt: usize) -> Self {
        self.cfg.nt = nt;
        self
    }

    /// Target regularization weight; also disables the continuation start
    /// below it (use [`Self::beta_init`] to restore a higher start).
    pub fn beta(mut self, beta_target: f64) -> Self {
        self.cfg.beta_target = beta_target;
        if self.cfg.beta_init < beta_target {
            self.cfg.beta_init = beta_target;
        }
        self
    }

    /// Initial β of the continuation.
    pub fn beta_init(mut self, beta_init: f64) -> Self {
        self.cfg.beta_init = beta_init;
        self
    }

    /// Continuation reduction factor per level.
    pub fn beta_reduction(mut self, factor: f64) -> Self {
        self.cfg.beta_reduction = factor;
        self
    }

    /// Run the β-continuation (true by default).
    pub fn continuation(mut self, on: bool) -> Self {
        self.cfg.continuation = on;
        self
    }

    /// Coarse-to-fine grid continuation.
    pub fn grid_continuation(mut self, on: bool) -> Self {
        self.cfg.grid_continuation = on;
        self
    }

    /// Hessian preconditioner.
    pub fn precond(mut self, pc: PrecondKind) -> Self {
        self.cfg.precond = pc;
        self
    }

    /// Interpolation kernel order.
    pub fn ip_order(mut self, order: IpOrder) -> Self {
        self.cfg.ip_order = order;
        self
    }

    /// Store `∇m` time series.
    pub fn store_grad(mut self, on: bool) -> Self {
        self.cfg.store_grad = on;
        self
    }

    /// Inner tolerance scale `εH0`.
    pub fn eps_h0(mut self, eps: f64) -> Self {
        self.cfg.eps_h0 = eps;
        self
    }

    /// Lower bound for β inside H0.
    pub fn beta_floor(mut self, floor: f64) -> Self {
        self.cfg.beta_floor = floor;
        self
    }

    /// Relative gradient tolerance `εN`.
    pub fn grad_rtol(mut self, tol: f64) -> Self {
        self.cfg.grad_rtol = tol;
        self
    }

    /// Gauss–Newton iteration cap per continuation level.
    pub fn max_gn_iter(mut self, cap: usize) -> Self {
        self.cfg.max_gn_iter = cap;
        self
    }

    /// PCG iteration cap per Newton step.
    pub fn max_pcg_iter(mut self, cap: usize) -> Self {
        self.cfg.max_pcg_iter = cap;
        self
    }

    /// Inner (H0) PCG iteration cap.
    pub fn max_inner_iter(mut self, cap: usize) -> Self {
        self.cfg.max_inner_iter = cap;
        self
    }

    /// Fix the PCG iteration count (scaling-study mode).
    pub fn fixed_pcg(mut self, iters: Option<usize>) -> Self {
        self.cfg.fixed_pcg = iters;
        self
    }

    /// Inner Krylov/FFT arithmetic width (overrides `CLAIRE_PRECISION`).
    pub fn precision(mut self, p: Precision) -> Self {
        self.cfg.precision = p;
        self
    }

    /// Print progress on rank 0.
    pub fn verbose(mut self, on: bool) -> Self {
        self.cfg.verbose = on;
        self
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> ClaireResult<RegistrationConfig> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_schedule_hits_target() {
        let cfg = RegistrationConfig::default();
        let s = cfg.beta_schedule();
        assert_eq!(s.first().copied(), Some(1.0));
        assert_eq!(s.last().copied(), Some(5e-4));
        for w in s.windows(2) {
            assert!(w[1] < w[0], "schedule must decrease: {s:?}");
        }
    }

    #[test]
    fn no_continuation_is_single_level() {
        let cfg = RegistrationConfig { continuation: false, ..Default::default() };
        assert_eq!(cfg.beta_schedule(), vec![5e-4]);
    }

    #[test]
    fn labels() {
        assert_eq!(PrecondKind::InvA.label(), "InvA");
        assert_eq!(PrecondKind::TwoLevelInvH0.label(), "2LInvH0");
        assert_eq!(Precision::F64.label(), "f64");
        assert_eq!(Precision::Mixed.label(), "mixed");
    }

    #[test]
    fn builder_sets_precision() {
        let cfg = RegistrationConfig::builder().precision(Precision::Mixed).build().unwrap();
        assert_eq!(cfg.precision, Precision::Mixed);
        let cfg = RegistrationConfig::builder().precision(Precision::F64).build().unwrap();
        assert_eq!(cfg.precision, Precision::F64);
    }

    #[test]
    fn builder_applies_fields_and_validates() {
        let cfg = RegistrationConfig::builder()
            .nt(8)
            .beta(1e-2)
            .precond(PrecondKind::InvA)
            .max_gn_iter(5)
            .build()
            .unwrap();
        assert_eq!(cfg.nt, 8);
        assert_eq!(cfg.beta_target, 1e-2);
        assert_eq!(cfg.precond, PrecondKind::InvA);
        assert_eq!(cfg.max_gn_iter, 5);
        // untouched fields keep paper defaults
        assert_eq!(cfg.max_pcg_iter, RegistrationConfig::default().max_pcg_iter);
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(RegistrationConfig::builder().nt(0).build().is_err());
        assert!(RegistrationConfig::builder().beta(-1.0).build().is_err());
        assert!(RegistrationConfig::builder().beta_reduction(1.5).build().is_err());
        assert!(RegistrationConfig::builder().eps_h0(0.0).build().is_err());
        assert!(RegistrationConfig::builder().grad_rtol(0.0).build().is_err());
        assert!(RegistrationConfig::builder().fixed_pcg(Some(0)).build().is_err());
        let err = RegistrationConfig::builder().nt(0).build().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("nt"), "error should name the parameter: {msg}");
    }

    #[test]
    fn builder_rejects_non_finite_fields() {
        // each of these previously slipped through: NaN fails every ordering
        // comparison, ∞ fails none
        let nan_init = RegistrationConfig::builder().beta_init(f64::NAN).build();
        assert!(nan_init.is_err(), "NaN beta_init must be rejected");
        assert!(nan_init.unwrap_err().to_string().contains("beta_init"));

        let inf_init = RegistrationConfig::builder().beta_init(f64::INFINITY).build();
        assert!(inf_init.is_err(), "infinite beta_init would hang beta_schedule()");

        let inf_target =
            RegistrationConfig::builder().beta(f64::INFINITY).beta_init(f64::INFINITY).build();
        assert!(inf_target.is_err(), "infinite beta_target must be rejected");

        let inf_rtol = RegistrationConfig::builder().grad_rtol(f64::INFINITY).build();
        assert!(inf_rtol.is_err(), "infinite grad_rtol must be rejected");
        assert!(RegistrationConfig::builder().grad_rtol(f64::NAN).build().is_err());

        let inf_floor = RegistrationConfig::builder().beta_floor(f64::INFINITY).build();
        assert!(inf_floor.is_err(), "infinite beta_floor must be rejected");
        assert!(RegistrationConfig::builder().beta_floor(f64::NAN).build().is_err());

        // schedule stays well-defined for everything that validates
        let ok = RegistrationConfig::builder().beta(1e-3).beta_init(0.5).build().unwrap();
        assert!(ok.beta_schedule().len() < 64);
    }

    #[test]
    fn beta_raises_init_when_needed() {
        let cfg = RegistrationConfig::builder().beta(2.0).build().unwrap();
        assert!(cfg.beta_init >= cfg.beta_target);
    }
}
