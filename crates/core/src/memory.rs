//! Memory-footprint model (paper §3):
//!
//! ```text
//! µtotal ≈ µPDE + µFFT + µFD + µSL + µGN/CG + µIP + µAPI
//!        = ((24 + Nt) + 7 + 2 + 11 + 30)·N·µ0/p + µIP + µAPI
//!        = (74 + Nt)·N·µ0/p + µIP + µAPI
//! ```
//!
//! with `µ0` the scalar word size (4 B in the paper's single-precision
//! runs), `N = N1·N2·N3`, `p` ranks, and the interpolation ghost-layer
//! buffers `µIP ≈ 30·d·N2·N3·µ0` with polynomial degree `d`. The runtime
//! API overhead `µAPI` (cuFFT/PETSc internals) is not modeled, as in the
//! paper.

use claire_grid::Grid;
use claire_interp::IpOrder;
use serde::Serialize;

/// Per-rank memory estimate, broken into the paper's components.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct MemoryEstimate {
    /// PDE state storage `(24 + Nt)·N·µ0/p` (includes the `m` time series).
    pub pde: u64,
    /// FFT work buffers `7·N·µ0/p`.
    pub fft: u64,
    /// FD work buffers `2·N·µ0/p`.
    pub fd: u64,
    /// Semi-Lagrangian buffers `11·N·µ0/p`.
    pub sl: u64,
    /// Gauss–Newton/CG vectors `30·N·µ0/p`.
    pub gn_cg: u64,
    /// Interpolation ghost layers `30·d·N2·N3·µ0`.
    pub ip: u64,
}

impl MemoryEstimate {
    /// Total bytes per rank.
    pub fn total(&self) -> u64 {
        self.pde + self.fft + self.fd + self.sl + self.gn_cg + self.ip
    }

    /// Total in GiB (as Table 7's "memory" column, which reports GB/GPU).
    pub fn total_gb(&self) -> f64 {
        self.total() as f64 / 1e9
    }
}

/// Estimate the per-rank memory footprint.
///
/// `word` is the scalar size in bytes: pass 4 to reproduce the paper's
/// single-precision numbers regardless of the build's `Real`.
pub fn estimate(
    grid: Grid,
    nt: usize,
    nranks: usize,
    order: IpOrder,
    word: usize,
) -> MemoryEstimate {
    let n = grid.len() as u64;
    let per_rank = |units: u64| units * n * word as u64 / nranks as u64;
    let d = match order {
        IpOrder::Linear => 1u64,
        IpOrder::Cubic | IpOrder::CubicSpline => 3u64,
    };
    MemoryEstimate {
        pde: per_rank(24 + nt as u64),
        fft: per_rank(7),
        fd: per_rank(2),
        sl: per_rank(11),
        gn_cg: per_rank(30),
        ip: 30 * d * (grid.n[1] * grid.n[2] * word) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_headline_formula() {
        // (74 + Nt)·N·µ0/p dominates; check against the closed form.
        let grid = Grid::cube(256);
        let est = estimate(grid, 4, 1, IpOrder::Linear, 4);
        let closed = (74 + 4) as u64 * grid.len() as u64 * 4;
        let field_terms = est.pde + est.fft + est.fd + est.sl + est.gn_cg;
        assert_eq!(field_terms, closed);
    }

    #[test]
    fn single_gpu_256_fits_v100() {
        // paper Table 7: 256³ on 1 GPU uses ~5.09 GB; the model should land
        // in that ballpark (same order, below the 16 GB V100 capacity)
        let est = estimate(Grid::cube(256), 4, 1, IpOrder::Linear, 4);
        let gb = est.total_gb();
        assert!(gb > 3.0 && gb < 8.0, "modeled {gb} GB");
    }

    #[test]
    fn scaling_with_ranks() {
        let e1 = estimate(Grid::cube(128), 4, 1, IpOrder::Linear, 4);
        let e4 = estimate(Grid::cube(128), 4, 4, IpOrder::Linear, 4);
        // field storage divides by p; ghost layers do not
        assert_eq!(e4.pde, e1.pde / 4);
        assert_eq!(e4.ip, e1.ip);
        assert!(e4.total() < e1.total());
    }

    #[test]
    fn largest_paper_run_fits() {
        // 2048³ on 256 GPUs: paper reports 12.5 GB per GPU
        let est = estimate(Grid::cube(2048), 4, 256, IpOrder::Linear, 4);
        let gb = est.total_gb();
        assert!(gb > 8.0 && gb < 16.0, "modeled {gb} GB per GPU for the 2048³ run");
    }
}
