//! CLAIRE-rs core: constrained large-deformation diffeomorphic image
//! registration.
//!
//! Implements the paper's optimal-control formulation (eq. 1): given a
//! template `m0` and a reference `m1`, find a stationary velocity `v`
//! minimizing
//!
//! ```text
//! J(v) = ½‖m(·,1) − m1‖²_{L²} + β/2 · reg(v)
//! s.t.  ∂t m + v·∇m = 0,  m(·,0) = m0
//! ```
//!
//! with an H1 regularization operator `A`. The solver is the paper's
//! reduced-space Gauss–Newton–Krylov method (Algorithm 2) with three
//! Hessian preconditioners:
//!
//! * [`PrecondKind::InvA`] — the spectral benchmark `(βA)⁻¹` (eq. 8);
//! * [`PrecondKind::InvH0`] — the paper's new zero-velocity preconditioner
//!   `H0 = βA + ∇m̄ ⊗ ∇m̄` solved by an inner PCG (eq. 9);
//! * [`PrecondKind::TwoLevelInvH0`] — its coarse-grid variant (`2LInvH0`,
//!   Algorithm 1).
//!
//! [`Claire`] wires everything together with the β-continuation scheme
//! (InvA while β > 5e−1, the configured preconditioner afterwards) and
//! produces [`report::RegistrationReport`]s containing exactly the columns
//! of the paper's Table 6.

pub mod batch;
pub mod config;
pub mod memory;
pub mod metrics;
pub mod observe;
pub mod precond;
pub mod problem;
pub mod report;
pub mod solver;

pub use batch::{BatchItem, BatchOutcome, BatchPair, BatchSolver, BatchStats, MemberMemStats};
pub use claire_grid::workspace;
pub use claire_grid::{ClaireError, ClaireResult, Pool, PoolVec, WsCat};
pub use config::{IpOrder, Precision, PrecondKind, RegistrationConfig, RegistrationConfigBuilder};
pub use observe::{begin as begin_observing, collect_run_report};
pub use problem::{RegProblem, SolverScaffold};
pub use report::RegistrationReport;
pub use solver::{CancelToken, Claire, SolverHooks, StopReason};
