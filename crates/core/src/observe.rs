//! Assembling a [`RunReport`] from a finished solve.
//!
//! The observability layer (claire-obs) collects spans, metrics, and GN
//! records globally while a solve runs; claire-par accumulates per-kernel
//! timers; claire-mpi accumulates per-category and per-collective traffic.
//! [`collect_run_report`] drains all of them into one JSON-serializable
//! [`RunReport`] keyed by the solve's [`RegistrationReport`].
//!
//! Typical use (this is what `claire-cli --report` does):
//!
//! ```no_run
//! use claire_core::observe;
//! # let config = claire_core::RegistrationConfig::default();
//! # let (m0, m1): (claire_grid::ScalarField, claire_grid::ScalarField) = unimplemented!();
//! # let mut comm = claire_mpi::Comm::solo();
//! observe::begin(); // enable + reset spans/metrics/records/kernel timers
//! let (v, report) = claire_core::Claire::new(config).register(&m0, &m1, &mut comm);
//! let run = observe::collect_run_report("na02", &report, &comm);
//! println!("{}", run.span_summary());
//! std::fs::write("run.json", run.to_json()).unwrap();
//! ```

use claire_mpi::{CollOp, Comm, CommCat};
use claire_obs::report::{
    CollectiveEntry, CommPhaseEntry, KernelEntry, MemoryCatEntry, MemoryInfo, PhaseShares,
    RooflineInfo, RooflineKernelEntry, RunReport, RunSummary,
};
use claire_obs::{metrics, records, span};

use crate::report::RegistrationReport;

/// Arm the observability layer for a fresh run: enables collection and
/// resets spans, metrics, GN records, and the claire-par kernel timers.
pub fn begin() {
    claire_obs::begin();
    claire_par::timing::reset();
    claire_grid::workspace::reset_stats();
    claire_fft::cache::reset_stats();
}

/// Drain every telemetry source into a unified [`RunReport`].
///
/// Call once, after the solve, on the rank whose ledger should be reported
/// (rank 0 by convention; with `Comm::solo` there is only one). Draining
/// consumes the span tree and GN records — a second call returns empty
/// `spans`/`gn_trace`.
pub fn collect_run_report(label: &str, report: &RegistrationReport, comm: &Comm) -> RunReport {
    let mut run = RunReport::new(label);
    run.grid = report.grid;
    run.nranks = report.nranks;
    run.nt = report.nt;
    run.precond = report.pc.clone();
    run.backend = claire_simd::active_backend().label().to_string();
    run.transport = comm.transport_kind().to_string();
    run.precision = report.precision.clone();

    run.summary = RunSummary {
        gn_iters: report.gn_iters,
        pcg_iters: report.pcg_iters,
        obj_evals: metric_value(&metrics::snapshot(), "gn.obj_evals") as usize,
        hess_applies: metric_value(&metrics::snapshot(), "gn.hess_applies") as usize,
        rel_mismatch: report.rel_mismatch,
        grad_rel: report.grad_rel,
        jac_det_min: report.jac_det_min,
        jac_det_max: report.jac_det_max,
        time_total: report.time_total,
        modeled_total: report.modeled_total,
        converged: metric_value(&metrics::snapshot(), "gn.converged") >= 1.0,
    };

    run.kernels = claire_par::timing::snapshot()
        .into_iter()
        .filter(|k| k.calls > 0)
        .map(|k| KernelEntry {
            name: k.name.to_string(),
            calls: k.calls,
            secs: k.nanos as f64 * 1e-9,
        })
        .collect();
    run.phases = PhaseShares::from_kernels(&run.kernels, report.time_total);

    let stats = comm.stats();
    run.comm = CommCat::ALL
        .iter()
        .map(|&c| {
            let s = stats.cat(c);
            CommPhaseEntry {
                phase: c.label().to_string(),
                bytes: s.bytes_sent,
                msgs: s.msgs_sent,
                wire_bytes: s.wire_bytes,
                modeled_secs: s.modeled_secs,
            }
        })
        .filter(|e| e.bytes > 0 || e.msgs > 0 || e.wire_bytes > 0)
        .collect();
    run.collectives = CollOp::ALL
        .iter()
        .map(|&op| {
            let s = stats.coll(op);
            CollectiveEntry { op: op.label().to_string(), calls: s.calls, bytes: s.bytes }
        })
        .filter(|e| e.calls > 0)
        .collect();

    run.metrics = metrics::snapshot();
    run.memory = collect_memory(report.memory_bytes_per_rank);
    run.roofline = collect_roofline(&run.kernels, report.grid, report.nranks);
    run.gn_trace = records::take_gn();
    run.spans = span::take_spans();
    run
}

/// Per-kernel achieved bytes/sec against the host DRAM roofline: measured
/// kernel seconds (claire-par timers) divided into modeled streaming traffic
/// (`claire_perf::machine::kernel_traffic_bytes`), as a percentage of the
/// STREAM-probed (or `CLAIRE_DRAM_PEAK`-pinned) host peak.
fn collect_roofline(kernels: &[KernelEntry], grid: [usize; 3], nranks: usize) -> RooflineInfo {
    let host = claire_perf::machine::host_roofline();
    let points = (grid[0] * grid[1] * grid[2] / nranks.max(1)) as u64;
    let real_bytes = std::mem::size_of::<claire_grid::Real>() as u64;
    let entries = kernels
        .iter()
        .filter(|k| k.calls > 0 && k.secs > 0.0)
        .filter_map(|k| {
            let per_call = claire_perf::machine::kernel_traffic_bytes(&k.name, points, real_bytes)?;
            let modeled_bytes = per_call * k.calls as f64;
            let achieved_bps = modeled_bytes / k.secs;
            Some(RooflineKernelEntry {
                kernel: k.name.clone(),
                calls: k.calls,
                secs: k.secs,
                modeled_bytes,
                achieved_bps,
                pct_of_peak: 100.0 * achieved_bps / host.dram_bw,
            })
        })
        .collect();
    RooflineInfo { dram_peak_bps: host.dram_bw, probed: host.probed, kernels: entries }
}

/// Snapshot the workspace pools and the FFT plan cache into the report's
/// `memory` block, next to the analytic §3 per-rank estimate.
fn collect_memory(modeled_bytes: u64) -> MemoryInfo {
    use claire_grid::workspace::{self, WsCat};
    let per_cat = workspace::stats();
    let total = workspace::total_stats();
    let fft = claire_fft::cache::stats();
    MemoryInfo {
        pool_checkouts: total.checkouts,
        pool_misses: total.misses,
        pool_peak_bytes: total.peak_bytes,
        pool_in_use_bytes: total.in_use_bytes,
        categories: WsCat::ALL
            .iter()
            .zip(per_cat.iter())
            .filter(|(_, s)| s.checkouts > 0)
            .map(|(c, s)| MemoryCatEntry {
                cat: c.label().to_string(),
                checkouts: s.checkouts,
                misses: s.misses,
                peak_bytes: s.peak_bytes,
            })
            .collect(),
        fft_plans: fft.plans,
        fft_plan_hits: fft.hits,
        fft_plan_misses: fft.misses,
        result_cache_hits: 0,
        result_cache_misses: 0,
        modeled_bytes,
    }
}

fn metric_value(entries: &[metrics::MetricEntry], key: &str) -> f64 {
    entries.iter().find(|e| e.key == key).map(|e| e.value).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PrecondKind, RegistrationConfig};
    use claire_grid::{Grid, Layout, ScalarField};

    fn gaussian(layout: Layout, cx: f64, cy: f64, cz: f64) -> ScalarField {
        ScalarField::from_fn(layout, move |x, y, z| {
            let d2 = (x - cx).powi(2) + (y - cy).powi(2) + (z - cz).powi(2);
            (-d2 / 0.5).exp()
        })
    }

    #[test]
    fn collects_full_report_from_solo_solve() {
        let layout = Layout::serial(Grid::cube(8));
        let pi = std::f64::consts::PI;
        let m0 = gaussian(layout, pi, pi, pi);
        let m1 = gaussian(layout, pi + 0.3, pi, pi);
        let config = RegistrationConfig {
            nt: 2,
            max_gn_iter: 2,
            max_pcg_iter: 4,
            continuation: false,
            precond: PrecondKind::InvA,
            verbose: false,
            ..Default::default()
        };

        begin();
        let mut comm = Comm::solo();
        let (_, report) = crate::Claire::new(config).register(&m0, &m1, &mut comm);
        let run = collect_run_report("unit", &report, &comm);
        claire_obs::set_enabled(false);

        assert_eq!(run.grid, [8, 8, 8]);
        assert!(run.summary.gn_iters >= 1);
        assert!(!run.kernels.is_empty(), "kernel timers should have fired");
        assert!(!run.spans.is_empty(), "span tree should be non-empty");
        assert!(run.spans.iter().any(|s| s.name == "solve"));
        assert!(!run.gn_trace.is_empty(), "per-iteration records expected");
        assert!(run.memory.pool_checkouts > 0, "workspace pool should be in use");
        assert!(run.memory.pool_peak_bytes > 0);
        assert!(run.memory.modeled_bytes > 0, "analytic model should be attached");
        assert!(
            run.memory.categories.iter().any(|c| c.cat == "pde"),
            "µPDE category expected in the breakdown"
        );
        assert!(run.memory.fft_plans > 0, "plan cache should have planned");
        assert!(run.roofline.dram_peak_bps > 0.0, "host roofline should be calibrated");
        assert!(!run.roofline.kernels.is_empty(), "roofline entries expected");
        for k in &run.roofline.kernels {
            assert!(k.modeled_bytes > 0.0 && k.achieved_bps > 0.0, "{}", k.kernel);
            assert!(k.pct_of_peak.is_finite() && k.pct_of_peak > 0.0, "{}", k.kernel);
        }
        // Draining is one-shot (spans are thread-local, so this is exact
        // even with other tests running concurrently).
        let again = collect_run_report("unit2", &report, &comm);
        assert!(again.spans.is_empty());
        // JSON document carries every schema key.
        let json = run.to_json();
        for key in claire_obs::report::SCHEMA_KEYS {
            assert!(json.contains(&format!("\"{key}\"")), "missing key {key}");
        }
    }
}
