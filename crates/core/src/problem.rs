//! The PDE-constrained registration problem (objective, gradient, Hessian).

use std::sync::Arc;

use claire_diff::{Spectral, TwoLevel};
use claire_grid::{ClaireError, ClaireResult, Layout, Real, ScalarField, VectorField};
use claire_interp::Interpolator;
use claire_mpi::Comm;
use claire_opt::GnProblem;
use claire_semilag::{StateSolution, Trajectory, Transport};

use crate::config::{PrecondKind, RegistrationConfig};
use crate::precond::PrecondState;

/// Pair-independent solver machinery for one grid: the spectral operators
/// and (for `2LInvH0`) the grid-transfer/coarse-spectral scaffolding.
///
/// Everything here depends only on the grid and the preconditioner kind —
/// never on the images — so one scaffold can back any number of
/// [`RegProblem`]s on the same grid. `BatchSolver` builds one per batch and
/// shares it across all K members; [`RegProblem::new`] builds a private one.
/// All shared pieces are immutable (`&self` methods only), so sharing does
/// not change any arithmetic.
pub struct SolverScaffold {
    pub(crate) grid: claire_grid::Grid,
    pub(crate) spectral: Arc<Spectral>,
    pub(crate) two_level: Option<Arc<TwoLevel>>,
    pub(crate) spectral_c: Option<Arc<Spectral>>,
}

impl SolverScaffold {
    /// Plan the shared machinery for `grid` under `cfg`. Collective (plans
    /// FFTs on the fine and, for `2LInvH0`, the coarse grid).
    pub fn new(
        cfg: &RegistrationConfig,
        grid: claire_grid::Grid,
        comm: &mut Comm,
    ) -> SolverScaffold {
        let spectral = Arc::new(Spectral::new(grid, comm));
        let (two_level, spectral_c) = if cfg.precond == PrecondKind::TwoLevelInvH0 {
            let tl = TwoLevel::new(grid, comm);
            let sc = Arc::new(Spectral::new(tl.coarse_grid(), comm));
            (Some(Arc::new(tl)), Some(sc))
        } else {
            (None, None)
        };
        SolverScaffold { grid, spectral, two_level, spectral_c }
    }
}

/// State cached at the last gradient point (needed by Hessian matvecs).
struct Current {
    traj: Trajectory,
    state: StateSolution,
}

/// The registration problem for one (template, reference) pair at one β.
///
/// Implements [`GnProblem`]; the β-continuation driver ([`crate::Claire`])
/// re-uses one `RegProblem` across levels via [`RegProblem::set_beta`].
pub struct RegProblem {
    layout: Layout,
    cfg: RegistrationConfig,
    beta: f64,
    m0: ScalarField,
    m1: ScalarField,
    transport: Transport,
    /// Shared interpolator (accumulates Table 2 phase stats).
    pub interp: Interpolator,
    spectral: Arc<Spectral>,
    /// Preconditioner state and counters.
    pub pc: PrecondState,
    cur: Option<Current>,
}

impl RegProblem {
    /// Build the problem. Collective (plans FFTs, computes `∇m0`). Returns
    /// a typed error when the template and reference layouts differ or the
    /// grid dimensions are unusable for the spectral/stencil machinery.
    pub fn new(
        m0: ScalarField,
        m1: ScalarField,
        cfg: RegistrationConfig,
        comm: &mut Comm,
    ) -> ClaireResult<RegProblem> {
        let layout = *m0.layout();
        check_layouts(&m0, &m1, "RegProblem::new")?;
        validate_grid(layout.grid)?;
        let scaffold = SolverScaffold::new(&cfg, layout.grid, comm);
        Self::with_scaffold(m0, m1, cfg, &scaffold, comm)
    }

    /// [`RegProblem::new`] backed by a pre-built [`SolverScaffold`] — the
    /// batch path: K problems on one grid share one scaffold instead of
    /// planning K copies. The scaffold's grid must match the images' grid.
    pub fn with_scaffold(
        m0: ScalarField,
        m1: ScalarField,
        cfg: RegistrationConfig,
        scaffold: &SolverScaffold,
        comm: &mut Comm,
    ) -> ClaireResult<RegProblem> {
        let layout = *m0.layout();
        check_layouts(&m0, &m1, "RegProblem::with_scaffold")?;
        validate_grid(layout.grid)?;
        if scaffold.grid != layout.grid {
            return Err(ClaireError::LayoutMismatch {
                context: "RegProblem::with_scaffold",
                message: format!(
                    "scaffold grid {:?} != image grid {:?}",
                    scaffold.grid.n, layout.grid.n
                ),
            });
        }
        let pc = PrecondState::with_scaffold(&cfg, &m0, scaffold, comm);
        Ok(RegProblem {
            layout,
            beta: cfg.beta_init,
            transport: Transport::new(cfg.nt, cfg.ip_order),
            interp: Interpolator::new(cfg.ip_order),
            spectral: Arc::clone(&scaffold.spectral),
            pc,
            cur: None,
            cfg,
            m0,
            m1,
        })
    }

    /// The field layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Current regularization parameter.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Set β (continuation level change invalidates nothing but the scale).
    pub fn set_beta(&mut self, beta: f64) {
        self.beta = beta;
    }

    /// Access the spectral operators.
    pub fn spectral(&self) -> &Spectral {
        self.spectral.as_ref()
    }

    /// Template image.
    pub fn template(&self) -> &ScalarField {
        &self.m0
    }

    /// Reference image.
    pub fn reference(&self) -> &ScalarField {
        &self.m1
    }

    /// Transport driver (shared `Nt` and order).
    pub fn transport(&self) -> &Transport {
        &self.transport
    }

    /// Solve the state equation at `v` and return `m(·, 1)`. Collective.
    pub fn deformed_template(&mut self, v: &VectorField, comm: &mut Comm) -> ScalarField {
        let traj = Trajectory::compute(v, self.cfg.nt, &mut self.interp, comm);
        let mut sol = self.transport.solve_state(&traj, &self.m0, false, &mut self.interp, comm);
        sol.m.pop().unwrap()
    }

    /// Relative mismatch `‖m(1) − m1‖ / ‖m0 − m1‖` at `v`. Collective.
    pub fn rel_mismatch(&mut self, v: &VectorField, comm: &mut Comm) -> f64 {
        let m_final = self.deformed_template(v, comm);
        let mut num = m_final;
        num.axpy(-1.0, &self.m1);
        let mut den = self.m0.clone();
        den.axpy(-1.0, &self.m1);
        num.norm_l2(comm) / den.norm_l2(comm).max(f64::MIN_POSITIVE)
    }
}

fn check_layouts(m0: &ScalarField, m1: &ScalarField, context: &'static str) -> ClaireResult<()> {
    if m0.layout() != m1.layout() {
        return Err(ClaireError::LayoutMismatch {
            context,
            message: format!(
                "template layout {:?} != reference layout {:?}",
                m0.layout(),
                m1.layout()
            ),
        });
    }
    Ok(())
}

/// Validate grid dimensions up front so misconfigured problems fail with a
/// typed error at construction instead of a panic deep inside the FFT plan
/// cache (real transform needs even `n3`) or the ghost exchange (the
/// 8th-order stencil needs a width-4 halo to fit in `n1`).
fn validate_grid(grid: claire_grid::Grid) -> ClaireResult<()> {
    let [n1, n2, n3] = grid.n;
    if n3 < 2 || !n3.is_multiple_of(2) {
        return Err(ClaireError::Config {
            param: "grid",
            message: format!(
                "innermost dimension n3 must be even and >= 2 for the real FFT, got {n3} \
                 (grid {n1}x{n2}x{n3})"
            ),
        });
    }
    if n1 < claire_diff::fd::FD8_WIDTH {
        return Err(ClaireError::Config {
            param: "grid",
            message: format!(
                "n1 must be >= {} for the 8th-order stencil halo, got {n1} (grid {n1}x{n2}x{n3})",
                claire_diff::fd::FD8_WIDTH
            ),
        });
    }
    Ok(())
}

/// `∫ λ(t) ∇m(t) dt` by trapezoidal quadrature over the stored series.
fn lambda_grad_integral(
    layout: Layout,
    nt: usize,
    state: &StateSolution,
    lambda: &[ScalarField],
    comm: &mut Comm,
) -> VectorField {
    let dt = 1.0 as Real / nt as Real;
    let mut acc = VectorField::zeros(layout);
    for (j, lam) in lambda.iter().enumerate() {
        let w = if j == 0 || j == nt { 0.5 * dt } else { dt };
        // borrow the stored gradient when available instead of cloning it
        match &state.grad_m {
            Some(gs) => {
                for d in 0..3 {
                    acc.c[d].add_scaled_product(w, lam, &gs[j].c[d]);
                }
            }
            None => {
                let grad = claire_diff::fd::gradient(&state.m[j], comm);
                for d in 0..3 {
                    acc.c[d].add_scaled_product(w, lam, &grad.c[d]);
                }
            }
        }
    }
    acc
}

impl GnProblem for RegProblem {
    /// `J(v) = ½‖m(1) − m1‖² + β/2 ⟨Av, v⟩` (eq. 1a).
    fn objective(&mut self, v: &VectorField, comm: &mut Comm) -> f64 {
        let m_final = self.deformed_template(v, comm);
        let mut resid = m_final;
        resid.axpy(-1.0, &self.m1);
        let data_term = 0.5 * resid.inner(&resid, comm);
        let av = self.spectral.reg_apply(v, self.beta, comm);
        let reg_term = 0.5 * v.inner(&av, comm);
        data_term + reg_term
    }

    /// `g(v) = βAv + ∫ λ ∇m dt` (eq. 2); refreshes the preconditioner's
    /// deformed template, as the paper prescribes, "at the beginning of
    /// each Gauss-Newton iteration".
    fn gradient(&mut self, v: &VectorField, comm: &mut Comm) -> VectorField {
        let traj = Trajectory::compute(v, self.cfg.nt, &mut self.interp, comm);
        let state = self.transport.solve_state(
            &traj,
            &self.m0,
            self.cfg.store_grad,
            &mut self.interp,
            comm,
        );

        // adjoint final condition λ(1) = m1 − m(1)
        let mut lam1 = self.m1.clone();
        lam1.axpy(-1.0, state.final_state());
        let lambda = self.transport.solve_adjoint(&traj, &lam1, &mut self.interp, comm);

        // refresh m̄ for InvH0/2LInvH0
        let mbar = state.final_state().clone();
        self.pc.refresh(&mbar, comm);

        let mut g = self.spectral.reg_apply(v, self.beta, comm);
        let integral = lambda_grad_integral(self.layout, self.cfg.nt, &state, &lambda, comm);
        g.axpy(1.0, &integral);
        self.cur = Some(Current { traj, state });
        g
    }

    /// Gauss–Newton matvec `Hṽ = βAṽ + ∫ λ̃ ∇m dt` (eq. 5), requiring the
    /// incremental state (6) and incremental adjoint (7) solves.
    fn hess_vec(&mut self, vt: &VectorField, comm: &mut Comm) -> VectorField {
        let cur =
            self.cur.take().expect("hess_vec called before gradient (no linearization point)");
        // solve (6): m̃(1)
        let mt_final =
            self.transport.solve_inc_state(&cur.traj, vt, &cur.state, &mut self.interp, comm);
        // solve (7): λ̃ with final condition −m̃(1)
        let mut lt1 = mt_final;
        lt1.scale(-1.0);
        let lambda_t = self.transport.solve_adjoint(&cur.traj, &lt1, &mut self.interp, comm);
        let mut hv = self.spectral.reg_apply(vt, self.beta, comm);
        let integral = lambda_grad_integral(self.layout, self.cfg.nt, &cur.state, &lambda_t, comm);
        self.cur = Some(cur);
        hv.axpy(1.0, &integral);
        hv
    }

    fn precond(&mut self, r: &VectorField, eps_k: f64, comm: &mut Comm) -> VectorField {
        self.pc.apply(r, eps_k, self.beta, &self.spectral, comm)
    }

    /// Native f32 preconditioner for the mixed-precision inner solve: runs
    /// on the f32 spectral mirrors when the config built them, so the
    /// preconditioner's FFTs, Hadamard products, and (2LInvH0) transfer
    /// collectives stream half the bytes. Falls back to
    /// promote-apply-demote when precision is `F64` but the driver asked
    /// for f32 anyway.
    fn precond32(
        &mut self,
        r: &claire_grid::VectorFieldT<f32>,
        eps_k: f64,
        comm: &mut Comm,
    ) -> claire_grid::VectorFieldT<f32> {
        if let Some(s) = self.pc.apply32(r, eps_k, self.beta, comm) {
            return s;
        }
        let r64: VectorField = r.converted(claire_grid::WsCat::GnCg);
        self.pc
            .apply(&r64, eps_k, self.beta, &self.spectral, comm)
            .converted(claire_grid::WsCat::GnCg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrecondKind;
    use claire_grid::Grid;

    fn small_problem(n: usize, comm: &mut Comm) -> RegProblem {
        let layout = Layout::serial(Grid::cube(n));
        // blobs wide enough to be resolved at n³ (σ ≈ 1.4 ⇒ ~3.6 points/σ
        // at n = 16); cubic interpolation keeps the discrete adjoint
        // consistent with the discrete forward operator.
        let m0 = ScalarField::from_fn(layout, |x, y, z| {
            (-((x - 3.0).powi(2) + (y - 3.0).powi(2) + (z - 3.0).powi(2)) / 2.0).exp()
        });
        let m1 = ScalarField::from_fn(layout, |x, y, z| {
            (-((x - 3.4).powi(2) + (y - 3.0).powi(2) + (z - 3.0).powi(2)) / 2.0).exp()
        });
        let cfg = RegistrationConfig {
            nt: 4,
            ip_order: claire_interp::IpOrder::Cubic,
            precond: PrecondKind::InvA,
            ..Default::default()
        };
        RegProblem::new(m0, m1, cfg, comm).expect("matching layouts by construction")
    }

    fn test_velocity(layout: Layout) -> VectorField {
        VectorField::from_fns(
            layout,
            |_, y, _| 0.1 * y.sin(),
            |x, _, _| 0.08 * x.cos(),
            |_, _, z| 0.05 * z.sin(),
        )
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut comm = Comm::solo();
        let mut prob = small_problem(16, &mut comm);
        prob.set_beta(0.1);
        let layout = prob.layout();
        let v = test_velocity(layout);
        let g = prob.gradient(&v, &mut comm);

        // directional derivative along a smooth probe direction
        let w = VectorField::from_fns(
            layout,
            |x, _, _| 0.3 * x.sin(),
            |_, y, _| 0.2 * (2.0 * y).cos(),
            |_, _, z| 0.1 * z.cos(),
        );
        let eps = 1e-4 as Real;
        let mut vp = v.clone();
        vp.axpy(eps, &w);
        let mut vm = v.clone();
        vm.axpy(-eps, &w);
        let jp = prob.objective(&vp, &mut comm);
        let jm = prob.objective(&vm, &mut comm);
        let fd = (jp - jm) / (2.0 * eps as f64);
        let gw = g.inner(&w, &mut comm);
        let rel = ((fd - gw) / fd.abs().max(1e-12)).abs();
        assert!(rel < 6e-2, "gradient check failed: fd={fd:.6e} vs <g,w>={gw:.6e} rel={rel:.2e}");
    }

    #[test]
    fn hessian_is_symmetric() {
        let mut comm = Comm::solo();
        let mut prob = small_problem(10, &mut comm);
        prob.set_beta(0.1);
        let layout = prob.layout();
        let v = test_velocity(layout);
        let _ = prob.gradient(&v, &mut comm); // set linearization point

        let x = VectorField::from_fns(
            layout,
            |x, _, _| x.sin(),
            |_, y, _| y.cos(),
            |_, _, z| 0.5 * z.sin(),
        );
        let y = VectorField::from_fns(
            layout,
            |_, y, _| (2.0 * y).sin(),
            |x, _, _| 0.3 * x.cos(),
            |_, _, z| z.cos(),
        );
        let hx = prob.hess_vec(&x, &mut comm);
        let hy = prob.hess_vec(&y, &mut comm);
        let a = x.inner(&hy, &mut comm);
        let b = y.inner(&hx, &mut comm);
        let rel = ((a - b) / a.abs().max(1e-12)).abs();
        assert!(rel < 5e-2, "<x,Hy>={a:.6e} vs <y,Hx>={b:.6e} rel={rel:.2e}");
    }

    #[test]
    fn hessian_is_positive_semidefinite() {
        let mut comm = Comm::solo();
        let mut prob = small_problem(10, &mut comm);
        prob.set_beta(0.05);
        let layout = prob.layout();
        let v = test_velocity(layout);
        let _ = prob.gradient(&v, &mut comm);
        for seed in 0..3 {
            let s = seed as Real;
            let x = VectorField::from_fns(
                layout,
                move |x, _, _| (x + s).sin(),
                move |_, y, _| (y - s).cos(),
                move |_, _, z| (2.0 * z + s).sin(),
            );
            let hx = prob.hess_vec(&x, &mut comm);
            let xhx = x.inner(&hx, &mut comm);
            assert!(xhx > 0.0, "curvature must be positive: {xhx}");
        }
    }

    #[test]
    fn unusable_grid_dims_are_typed_errors() {
        let mut comm = Comm::solo();
        // odd innermost dimension: the real FFT along x3 cannot be planned
        let layout = Layout::serial(Grid::new([8, 8, 7]));
        let m0 = ScalarField::zeros(layout);
        let m1 = ScalarField::zeros(layout);
        let err = match RegProblem::new(m0, m1, RegistrationConfig::default(), &mut comm) {
            Ok(_) => panic!("odd n3 must be rejected up front"),
            Err(e) => e,
        };
        match err {
            ClaireError::Config { param, message } => {
                assert_eq!(param, "grid");
                assert!(message.contains("even"), "message: {message}");
            }
            other => panic!("expected Config error, got {other:?}"),
        }
        // too-thin x1 extent: the FD8 halo does not fit
        let layout = Layout::serial(Grid::new([2, 8, 8]));
        let m0 = ScalarField::zeros(layout);
        let m1 = ScalarField::zeros(layout);
        let err = match RegProblem::new(m0, m1, RegistrationConfig::default(), &mut comm) {
            Ok(_) => panic!("thin n1 must be rejected up front"),
            Err(e) => e,
        };
        assert!(matches!(err, ClaireError::Config { param: "grid", .. }), "got {err:?}");
    }

    #[test]
    fn zero_velocity_gradient_is_data_driven() {
        let mut comm = Comm::solo();
        let mut prob = small_problem(12, &mut comm);
        prob.set_beta(0.1);
        let v = VectorField::zeros(prob.layout());
        let g = prob.gradient(&v, &mut comm);
        // with v = 0, g = ∫λ∇m0 — nonzero because the images differ
        assert!(g.norm_l2(&mut comm) > 1e-8);
        // objective at zero velocity is the pure data term
        let j = prob.objective(&v, &mut comm);
        let mm = prob.rel_mismatch(&v, &mut comm);
        assert!((mm - 1.0).abs() < 1e-10, "rel mismatch at v=0 is 1 by definition: {mm}");
        assert!(j > 0.0);
    }
}
