//! Per-rank traffic accounting and the logical modeled clock.
//!
//! Two ledgers are kept per rank:
//!
//! * [`CommStats`] counts bytes, messages, and wall time blocked per
//!   [`CommCat`]. The categories are named after the runtime components of
//!   the paper's Table 2 so that reproduction harnesses can print the same
//!   breakdown (`ghost_comm`, `scatter_comm`, `interp_comm`, ...).
//! * [`ModelClock`] is a logical timestamp that advances by *modeled* GPU
//!   compute time and *modeled* link time (via [`crate::LinkModel`]); it is
//!   the quantity the paper-scale tables are generated from.

use std::time::Duration;

/// Traffic category, mirroring the paper's instrumented phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CommCat {
    /// Ghost-layer exchange for FD stencils and interpolation supports
    /// (`ghost_comm` in Table 2, `comm` in Table 3).
    Ghost,
    /// Sending off-rank query points of backward characteristics
    /// (`scatter_comm` in Table 2).
    Scatter,
    /// Returning interpolated values to the owner of the query point
    /// (`interp_comm` in Table 2).
    InterpValues,
    /// All-to-all transposes of the distributed FFT (§3.3).
    FftTranspose,
    /// Reductions, broadcasts, and scalar control traffic.
    Reduce,
    /// Field scatter/gather for I/O and test harnesses.
    FieldRedist,
    /// Anything else.
    Other,
}

impl CommCat {
    /// All categories, for iteration/reporting.
    pub const ALL: [CommCat; 7] = [
        CommCat::Ghost,
        CommCat::Scatter,
        CommCat::InterpValues,
        CommCat::FftTranspose,
        CommCat::Reduce,
        CommCat::FieldRedist,
        CommCat::Other,
    ];

    /// Stable dense index for array-backed counters.
    pub fn index(self) -> usize {
        match self {
            CommCat::Ghost => 0,
            CommCat::Scatter => 1,
            CommCat::InterpValues => 2,
            CommCat::FftTranspose => 3,
            CommCat::Reduce => 4,
            CommCat::FieldRedist => 5,
            CommCat::Other => 6,
        }
    }

    /// Inverse of [`CommCat::index`], for decoding wire messages.
    pub fn from_index(i: usize) -> Option<CommCat> {
        CommCat::ALL.get(i).copied()
    }

    /// Human-readable label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            CommCat::Ghost => "ghost_comm",
            CommCat::Scatter => "scatter_comm",
            CommCat::InterpValues => "interp_comm",
            CommCat::FftTranspose => "fft_transpose",
            CommCat::Reduce => "reduce",
            CommCat::FieldRedist => "field_redist",
            CommCat::Other => "other",
        }
    }
}

/// Counters for one traffic category.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CatStats {
    /// Bytes sent by this rank in this category (logical payload bytes;
    /// identical across transports).
    pub bytes_sent: u64,
    /// Messages sent by this rank in this category.
    pub msgs_sent: u64,
    /// Bytes that actually crossed a wire for this category, including
    /// framing and control traffic. 0 on the in-process channel transport;
    /// real bytes-on-wire on the socket transport.
    pub wire_bytes: u64,
    /// Wall-clock time this rank spent blocked in receives/collectives.
    pub wall_blocked: Duration,
    /// Modeled communication seconds attributed to this category.
    pub modeled_secs: f64,
}

/// A communication operation, for per-collective call/byte accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollOp {
    /// Point-to-point sends issued directly by user code.
    P2p,
    /// [`crate::Comm::barrier`] / `barrier_clock_sync`.
    Barrier,
    /// [`crate::Comm::allreduce`].
    Allreduce,
    /// [`crate::Comm::broadcast`].
    Broadcast,
    /// [`crate::Comm::gatherv`].
    Gatherv,
    /// [`crate::Comm::scatterv`].
    Scatterv,
    /// [`crate::Comm::alltoallv`].
    Alltoallv,
}

impl CollOp {
    /// All operations, for iteration/reporting.
    pub const ALL: [CollOp; 7] = [
        CollOp::P2p,
        CollOp::Barrier,
        CollOp::Allreduce,
        CollOp::Broadcast,
        CollOp::Gatherv,
        CollOp::Scatterv,
        CollOp::Alltoallv,
    ];

    /// Stable dense index for array-backed counters.
    pub fn index(self) -> usize {
        match self {
            CollOp::P2p => 0,
            CollOp::Barrier => 1,
            CollOp::Allreduce => 2,
            CollOp::Broadcast => 3,
            CollOp::Gatherv => 4,
            CollOp::Scatterv => 5,
            CollOp::Alltoallv => 6,
        }
    }

    /// Operation name as reported (MPI naming, lowercase).
    pub fn label(self) -> &'static str {
        match self {
            CollOp::P2p => "p2p",
            CollOp::Barrier => "barrier",
            CollOp::Allreduce => "allreduce",
            CollOp::Broadcast => "broadcast",
            CollOp::Gatherv => "gatherv",
            CollOp::Scatterv => "scatterv",
            CollOp::Alltoallv => "alltoallv",
        }
    }
}

/// Call/byte counters for one communication operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CollStats {
    /// Times this rank invoked the operation.
    pub calls: u64,
    /// Payload bytes this rank contributed to those invocations.
    pub bytes: u64,
}

/// Per-rank traffic ledger.
#[derive(Clone, Debug, Default)]
pub struct CommStats {
    cats: [CatStats; 7],
    colls: [CollStats; 7],
}

impl CommStats {
    /// Counters for one category.
    pub fn cat(&self, cat: CommCat) -> &CatStats {
        &self.cats[cat.index()]
    }

    pub(crate) fn cat_mut(&mut self, cat: CommCat) -> &mut CatStats {
        &mut self.cats[cat.index()]
    }

    /// Call/byte counters for one communication operation.
    pub fn coll(&self, op: CollOp) -> &CollStats {
        &self.colls[op.index()]
    }

    pub(crate) fn record_coll(&mut self, op: CollOp, bytes: u64) {
        let c = &mut self.colls[op.index()];
        c.calls += 1;
        c.bytes += bytes;
    }

    /// Total bytes sent across all categories.
    pub fn total_bytes(&self) -> u64 {
        self.cats.iter().map(|c| c.bytes_sent).sum()
    }

    /// Total modeled communication seconds across all categories.
    pub fn total_modeled_secs(&self) -> f64 {
        self.cats.iter().map(|c| c.modeled_secs).sum()
    }

    /// Merge another rank's ledger into this one (for cluster-wide totals).
    pub fn merge(&mut self, other: &CommStats) {
        for (a, b) in self.cats.iter_mut().zip(other.cats.iter()) {
            a.bytes_sent += b.bytes_sent;
            a.msgs_sent += b.msgs_sent;
            a.wire_bytes += b.wire_bytes;
            a.wall_blocked += b.wall_blocked;
            a.modeled_secs += b.modeled_secs;
        }
        for (a, b) in self.colls.iter_mut().zip(other.colls.iter()) {
            a.calls += b.calls;
            a.bytes += b.bytes;
        }
    }
}

/// Logical per-rank clock for the parallel-discrete-event timing model.
///
/// `compute` and `comm` are tracked separately so harnesses can report the
/// "% communication" columns of the paper's Tables 3 and 7; `now()` is their
/// monotone combination used for message timestamps.
#[derive(Clone, Copy, Debug, Default)]
pub struct ModelClock {
    now: f64,
    compute: f64,
    comm: f64,
}

impl ModelClock {
    /// Current logical time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Accumulated modeled compute seconds.
    pub fn compute_secs(&self) -> f64 {
        self.compute
    }

    /// Accumulated modeled communication seconds (including waits).
    pub fn comm_secs(&self) -> f64 {
        self.comm
    }

    /// Advance by modeled compute time.
    pub fn advance_compute(&mut self, secs: f64) {
        debug_assert!(secs >= 0.0);
        self.now += secs;
        self.compute += secs;
    }

    /// Advance by modeled communication time.
    pub fn advance_comm(&mut self, secs: f64) {
        debug_assert!(secs >= 0.0);
        self.now += secs;
        self.comm += secs;
    }

    /// Synchronize with an event completing at logical time `t` (e.g. a
    /// message arrival); any induced wait is accounted as communication.
    pub fn sync_to(&mut self, t: f64) {
        if t > self.now {
            self.comm += t - self.now;
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_split_accounting() {
        let mut c = ModelClock::default();
        c.advance_compute(1.0);
        c.advance_comm(0.5);
        c.sync_to(2.0); // waits 0.5
        c.sync_to(1.0); // no-op, in the past
        assert!((c.now() - 2.0).abs() < 1e-12);
        assert!((c.compute_secs() - 1.0).abs() < 1e-12);
        assert!((c.comm_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_merge_and_totals() {
        let mut a = CommStats::default();
        a.cat_mut(CommCat::Ghost).bytes_sent = 100;
        a.cat_mut(CommCat::Ghost).msgs_sent = 2;
        let mut b = CommStats::default();
        b.cat_mut(CommCat::Ghost).bytes_sent = 50;
        b.cat_mut(CommCat::Scatter).bytes_sent = 7;
        a.merge(&b);
        assert_eq!(a.cat(CommCat::Ghost).bytes_sent, 150);
        assert_eq!(a.total_bytes(), 157);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(CommCat::Ghost.label(), "ghost_comm");
        assert_eq!(CommCat::Scatter.label(), "scatter_comm");
        assert_eq!(CommCat::InterpValues.label(), "interp_comm");
    }
}
