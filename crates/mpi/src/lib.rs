//! Virtual-cluster message-passing substrate for CLAIRE-rs.
//!
//! The paper (Brunn et al., SC 2020) runs CLAIRE on a multi-node multi-GPU
//! system (TACC Longhorn: 4 NVIDIA V100 per node, CUDA-aware IBM Spectrum
//! MPI). This crate substitutes that environment with a *virtual cluster*:
//! every MPI rank ("one GPU per rank" in the paper) becomes an OS thread, and
//! messages travel through in-process channels instead of NVLink/InfiniBand.
//!
//! The message layer itself is pluggable: [`Comm`] is generic over a
//! [`Transport`] (tagged point-to-point send/recv), with the in-process
//! [`ChannelTransport`] as the zero-cost default. The `claire-ipc` crate
//! provides a Unix-domain-socket transport so ranks can be real OS
//! processes with disjoint address spaces — the paper's actual execution
//! model. All collectives reduce in a fixed rank order over the transport
//! primitives, so results are bitwise identical whichever transport runs.
//!
//! The substitution preserves two things the paper's evaluation depends on:
//!
//! 1. **Semantics.** [`Comm`] exposes the MPI-like operations CLAIRE uses:
//!    tagged point-to-point send/recv, barriers, reductions, broadcast,
//!    gather, and the all-to-all-v exchange that backs the distributed FFT
//!    transpose. Distributed kernels built on top behave exactly like their
//!    MPI counterparts (including message ordering and completion semantics).
//! 2. **Accounting.** Every operation records its traffic in a per-rank
//!    [`CommStats`] ledger, bucketed by [`CommCat`] so the five phases of the
//!    paper's Table 2 (`ghost_comm`, `scatter_comm`, `interp_comm`, ...) can
//!    be reported. In parallel, a logical [`ModelClock`](stats::ModelClock)
//!    advances per rank using a calibrated α–β link model ([`LinkModel`]) so
//!    that *modeled* runtimes at paper scale can be produced even though the
//!    host has no GPUs.
//!
//! The modeled clock implements a small parallel-discrete-event scheme:
//! every message carries the sender's logical timestamp; a receive sets the
//! receiver's clock to `max(own, sender + latency + bytes/bandwidth)`;
//! collectives synchronize to the maximum participant clock. Compute kernels
//! advance the clock through [`Comm::advance_compute`] using the roofline
//! costs of the paper's §3.
//!
//! # Example
//!
//! ```
//! use claire_mpi::{run_cluster, Topology, CommCat};
//!
//! // 4 ranks, 2 "GPUs" per node -> 2 nodes.
//! let topo = Topology::new(4, 2);
//! let result = run_cluster(topo, |comm| {
//!     // ring exchange: send rank id to the right neighbour
//!     let right = (comm.rank() + 1) % comm.size();
//!     let left = (comm.rank() + comm.size() - 1) % comm.size();
//!     comm.send(right, 7, CommCat::Other, &[comm.rank() as u64]);
//!     let got: Vec<u64> = comm.recv(left, 7, CommCat::Other);
//!     got[0]
//! });
//! assert_eq!(result.outputs, vec![3, 0, 1, 2]);
//! ```

pub mod cluster;
pub mod comm;
pub mod message;
pub mod model;
pub mod pod;
pub mod stats;
pub mod topology;
pub mod transport;

pub use cluster::{run_cluster, try_run_cluster, ClusterError, ClusterResult};
pub use comm::Comm;
pub use message::Message;
pub use model::{AlltoallMethod, LinkModel};
pub use pod::Pod;
pub use stats::{CatStats, CollOp, CollStats, CommCat, CommStats, ModelClock};
pub use topology::Topology;
pub use transport::{AbortHandle, ChannelTransport, Transport, TransportError};
