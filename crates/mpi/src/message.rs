//! Wire format of the virtual cluster.

use crate::stats::CommCat;
use bytes::Bytes;

/// A message in flight between two virtual ranks.
///
/// The payload is an owned byte buffer ([`Bytes`]), mirroring the raw device
/// buffers CUDA-aware MPI moves between GPUs. `sent_clock` carries the
/// sender's logical timestamp for the discrete-event timing model.
#[derive(Clone, Debug)]
pub struct Message {
    /// Sending rank.
    pub src: usize,
    /// User tag; receives match on `(src, tag)` in FIFO order.
    pub tag: u64,
    /// Traffic category for accounting.
    pub cat: CommCat,
    /// Sender's logical clock at send time.
    pub sent_clock: f64,
    /// If true, the receiver only synchronizes clocks and does not charge
    /// per-message link time (used by collectives that charge a single
    /// collective-level cost instead).
    pub link_free: bool,
    /// Raw payload bytes.
    pub payload: Bytes,
}
